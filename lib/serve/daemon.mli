(** The persistent re-optimization daemon behind [dtr-serve].

    Loads a scenario once and keeps the expensive state resident across
    events: the incumbent weight setting, its per-destination ECMP routing
    bases for both classes (recomputed only when the weights or the graph
    change — traffic updates leave routing untouched), the retained
    critical set for warm re-optimization, and a bounded LRU of what-if
    pricing results keyed by (graph, matrix, weights) epochs and failure
    set.

    Event handling is synchronous and deterministic: a fixed request
    sequence against a fixed seed produces the same state trajectory at any
    job count.  Randomness is split by stream, mirroring [dtr-opt]'s
    conventions: synthetic traffic perturbations draw from
    [Rng.create (seed + 2)], warm re-optimizations from
    [Rng.create (seed + 3)], and a [reoptimize full] builds a {e fresh}
    [Rng.create (seed + 1)] — exactly the stream a cold
    [dtr-opt optimize] on the same matrices would use, which is what makes
    the warm-vs-cold identity tests byte-exact. *)

(** Periodic OpenMetrics dumps: [write] receives one whole exposition
    snapshot (terminated by ["# EOF"]) after every [every] handled events;
    [every = 0] leaves only on-demand snapshots ({!exposition} or the
    [metrics] protocol request). *)
type metrics_sink = { write : string -> unit; every : int }

type config = {
  scenario : Dtr_core.Scenario.t;
  incumbent : Dtr_core.Weights.t;
  critical : int list;  (** retained critical arcs (empty: none yet) *)
  fraction : float option;  (** passed through to [reoptimize full] *)
  seed : int;  (** the scenario seed; RNG streams derive from it *)
  exec : Dtr_exec.Exec.t;
  cache_capacity : int;  (** pricing-LRU capacity (entries) *)
  metrics : metrics_sink option;
}

type t

val create : config -> t

val incumbent : t -> Dtr_core.Weights.t
(** The current incumbent setting (shared, do not mutate). *)

val cache_stats : t -> Dtr_util.Lru.stats

val exposition : t -> string
(** One OpenMetrics v1 text snapshot (daemon counters, cache and pruning
    state, per-event-kind latency histograms, rolling gauges), terminated
    by ["# EOF"].  The same text the [metrics] protocol request returns
    inline. *)

val handle_line : t -> string -> string * bool
(** Process one request line; returns the response line (no newline) and
    whether the daemon should keep running ([false] after [shutdown]).
    Never raises: malformed input and handler failures become error
    envelopes. *)

val run_pipe : t -> in_channel -> out_channel -> unit
(** Blocking request/response loop until EOF or [shutdown]; each response
    is flushed before the next read. *)

val run_socket : t -> socket:string -> ?stdio:in_channel * out_channel -> unit -> unit
(** Serve a Unix-domain socket at [socket] (unlinking any stale file), and
    optionally a stdio pipe pair alongside it, with one [select] loop.
    Clients are newline-delimited as in pipe mode; a [shutdown] from any
    client stops the daemon.  EOF on stdio merely stops watching it. *)
