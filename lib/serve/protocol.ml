module Json = Dtr_util.Json
module Perturb = Dtr_traffic.Perturb

let schema = "dtr-serve/1"

type arc_ref = By_id of int | By_endpoints of int * int

type failure_spec =
  | F_arc of arc_ref
  | F_edge of arc_ref
  | F_node of int
  | F_srlg of int

type reopt_mode = Warm | Full

type event =
  | Hello
  | Tm_update of Perturb.event
  | Link_down of arc_ref
  | Link_up of arc_ref
  | Srlg_down of int
  | Resize of { max_util : float option; step : float option }
  | Eval of { failure : failure_spec option }
  | Reoptimize of {
      mode : reopt_mode;
      max_sweeps : int option;
      max_rounds : int option;
      target : (float * float) option;
    }
  | Stats
  | Metrics
  | Shutdown

type request = { id : int; event : event }
type error_code = Parse_error | Unknown_event | Bad_request | Bad_arc | Internal

let error_code_name = function
  | Parse_error -> "parse_error"
  | Unknown_event -> "unknown_event"
  | Bad_request -> "bad_request"
  | Bad_arc -> "bad_arc"
  | Internal -> "internal"

let event_name = function
  | Hello -> "hello"
  | Tm_update _ -> "tm_update"
  | Link_down _ -> "link_down"
  | Link_up _ -> "link_up"
  | Srlg_down _ -> "srlg_down"
  | Resize _ -> "resize"
  | Eval _ -> "eval"
  | Reoptimize _ -> "reoptimize"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

(* --- request parsing ----------------------------------------------------- *)

let ( let* ) = Result.bind
let bad msg = Error (Bad_request, msg)

let int_field j key =
  match Json.member key j with
  | Some v -> (
      match Json.to_int_opt v with
      | Some i -> Ok (Some i)
      | None -> bad (Printf.sprintf "%S must be an integer" key))
  | None -> Ok None

let float_field j key =
  match Json.member key j with
  | Some v -> (
      match Json.to_float_opt v with
      | Some f -> Ok (Some f)
      | None -> bad (Printf.sprintf "%S must be a number" key))
  | None -> Ok None

let require what = function Some x -> Ok x | None -> bad (what ^ " is required")

(* An arc is named either by id ("arc") or by endpoints ("src"/"dst"). *)
let arc_ref_of j =
  let* arc = int_field j "arc" in
  match arc with
  | Some id -> Ok (By_id id)
  | None -> (
      let* src = int_field j "src" in
      let* dst = int_field j "dst" in
      match (src, dst) with
      | Some u, Some v -> Ok (By_endpoints (u, v))
      | _ -> bad "arc events need \"arc\" or both \"src\" and \"dst\"")

let failure_spec_of j =
  match Json.member "failure" j with
  | None -> Ok None
  | Some f -> (
      let* node = int_field f "node" in
      match node with
      | Some v -> Ok (Some (F_node v))
      | None -> (
          let* srlg = int_field f "srlg" in
          match srlg with
          | Some gid -> Ok (Some (F_srlg gid))
          | None -> (
              let* edge = int_field f "edge" in
              match edge with
              | Some id -> Ok (Some (F_edge (By_id id)))
              | None ->
                  let* r = arc_ref_of f in
                  Ok (Some (F_arc r)))))

let tm_update_of j =
  match Json.member "model" j with
  | Some (Json.Str "gaussian") ->
      let* eps = float_field j "eps" in
      let* eps = require "\"eps\"" eps in
      Ok (Tm_update (Perturb.Gaussian { eps }))
  | Some (Json.Str "hotspot") ->
      let* direction =
        match Json.member "direction" j with
        | Some (Json.Str "upload") -> Ok Perturb.Upload
        | Some (Json.Str "download") -> Ok Perturb.Download
        | Some _ -> bad "\"direction\" must be \"upload\" or \"download\""
        | None -> Ok Perturb.Upload
      in
      let d = Perturb.default_hotspot in
      let* server_fraction = float_field j "server_fraction" in
      let* client_fraction = float_field j "client_fraction" in
      let* factor_min = float_field j "factor_min" in
      let* factor_max = float_field j "factor_max" in
      let spec =
        Perturb.
          {
            server_fraction =
              Option.value server_fraction ~default:d.server_fraction;
            client_fraction =
              Option.value client_fraction ~default:d.client_fraction;
            factor_min = Option.value factor_min ~default:d.factor_min;
            factor_max = Option.value factor_max ~default:d.factor_max;
          }
      in
      Ok (Tm_update (Perturb.Hotspot { spec; direction }))
  | Some _ -> bad "\"model\" must be \"gaussian\" or \"hotspot\""
  | None -> bad "\"model\" is required"

let reoptimize_of j =
  let* mode =
    match Json.member "mode" j with
    | Some (Json.Str "warm") | None -> Ok Warm
    | Some (Json.Str "full") -> Ok Full
    | Some _ -> bad "\"mode\" must be \"warm\" or \"full\""
  in
  let* max_sweeps = int_field j "max_sweeps" in
  let* max_rounds = int_field j "max_rounds" in
  let* target_lambda = float_field j "target_lambda" in
  let* target_phi = float_field j "target_phi" in
  let* target =
    match (target_lambda, target_phi) with
    | None, None -> Ok None
    | Some l, Some p -> Ok (Some (l, p))
    | _ -> bad "\"target_lambda\" and \"target_phi\" must be given together"
  in
  Ok (Reoptimize { mode; max_sweeps; max_rounds; target })

let resize_of j =
  let* max_util = float_field j "max_util" in
  let* step = float_field j "step" in
  Ok (Resize { max_util; step })

let event_of j = function
  | "hello" -> Ok Hello
  | "tm_update" -> tm_update_of j
  | "link_down" ->
      let* r = arc_ref_of j in
      Ok (Link_down r)
  | "link_up" ->
      let* r = arc_ref_of j in
      Ok (Link_up r)
  | "srlg_down" ->
      let* gid = int_field j "group" in
      let* gid = require "\"group\"" gid in
      Ok (Srlg_down gid)
  | "resize" -> resize_of j
  | "eval" ->
      let* failure = failure_spec_of j in
      Ok (Eval { failure })
  | "reoptimize" -> reoptimize_of j
  | "stats" -> Ok Stats
  | "metrics" -> Ok Metrics
  | "shutdown" -> Ok Shutdown
  | kind -> Error (Unknown_event, Printf.sprintf "unknown event %S" kind)

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (Parse_error, msg)
  | Ok (Json.Obj _ as j) -> (
      let* id =
        match Json.member "id" j with
        | Some v -> (
            match Json.to_int_opt v with
            | Some i -> Ok i
            | None -> bad "\"id\" must be an integer")
        | None -> bad "\"id\" is required"
      in
      match Json.member "event" j with
      | Some (Json.Str kind) ->
          let* event = event_of j kind in
          Ok { id; event }
      | Some _ -> bad "\"event\" must be a string"
      | None -> bad "\"event\" is required")
  | Ok _ -> Error (Parse_error, "request must be a JSON object")

(* --- response printing --------------------------------------------------- *)

let ok_response ~id ~event result =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str schema);
         ("id", Json.Num (float_of_int id));
         ("ok", Json.Bool true);
         ("event", Json.Str event);
         ("result", result);
       ])

let error_response ~id ~code ~message =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str schema);
         ( "id",
           match id with
           | Some i -> Json.Num (float_of_int i)
           | None -> Json.Null );
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("code", Json.Str (error_code_name code));
               ("message", Json.Str message);
             ] );
       ])
