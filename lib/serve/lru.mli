(** Bounded least-recently-used cache for the daemon's pricing results.

    The serve daemon answers repeated what-if queries against slowly-moving
    state (failure set, matrix epoch, incumbent weights); this cache bounds
    the memory those answers pin while keeping the hot keys resident.
    Capacity is small by design — eviction is an O(capacity) scan, which at
    the daemon's cache sizes costs less than the hashing it saves. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency on a hit; counts a hit or a miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Recency- and stats-neutral membership probe. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts or replaces; at capacity, the least-recently-used entry is
    evicted first.  An insert counts as a use. *)

val clear : ('k, 'v) t -> unit
(** Drops every entry (stats survive; no evictions are counted). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

val stats : ('k, 'v) t -> stats
