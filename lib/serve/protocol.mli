(** The [dtr-serve/1] wire protocol.

    Newline-delimited JSON over a byte stream (stdin/stdout or a
    Unix-domain socket).  Each request is one object
    [{"id": N, "event": "<kind>", ...}]; each response is one envelope

    {v
      {"schema": "dtr-serve/1", "id": N, "ok": true,
       "event": "<kind>", "result": {...}}
      {"schema": "dtr-serve/1", "id": N, "ok": false,
       "error": {"code": "<code>", "message": "..."}}
    v}

    The same schema-versioning discipline as [dtr-obs-report] applies:
    additive changes keep the [/1] name, renames or removals bump it.  This
    module is pure parsing/printing on {!Dtr_util.Json.t}; the daemon
    interprets the events. *)

module Json = Dtr_util.Json

val schema : string
(** ["dtr-serve/1"]. *)

(** How a link event or an eval query names arcs. *)
type arc_ref =
  | By_id of int  (** ["arc": id] *)
  | By_endpoints of int * int  (** ["src": u, "dst": v] *)

(** What-if failure of an [eval] query, applied on top of the daemon's
    currently-failed arcs. *)
type failure_spec =
  | F_arc of arc_ref
  | F_edge of arc_ref  (** the arc and its reverse *)
  | F_node of int
  | F_srlg of int
      (** ["srlg": group] — every member link (both directions) of the
          daemon's geographic SRLG group with that id *)

type reopt_mode = Warm | Full

type event =
  | Hello
  | Tm_update of Dtr_traffic.Perturb.event
  | Link_down of arc_ref
  | Link_up of arc_ref
  | Srlg_down of int
      (** ["group": id] — fail every member link of the SRLG group, as one
          correlated conduit-cut event *)
  | Resize of { max_util : float option; step : float option }
  | Eval of { failure : failure_spec option }
  | Reoptimize of {
      mode : reopt_mode;
      max_sweeps : int option;  (** warm-mode budget override *)
      max_rounds : int option;
      target : (float * float) option;
          (** warm-mode recovery target [(lambda, phi)]: stop the repair as
              soon as J reaches it ("target_lambda"/"target_phi" on the
              wire, both or neither) *)
    }
  | Stats
  | Metrics
      (** one OpenMetrics text snapshot of the live telemetry, returned
          inline in the result's ["exposition"] field *)
  | Shutdown

type request = { id : int; event : event }

(** Machine-readable failure classes of the error envelope. *)
type error_code = Parse_error | Unknown_event | Bad_request | Bad_arc | Internal

val error_code_name : error_code -> string

val event_name : event -> string
(** The [event] discriminator string echoed in response envelopes. *)

val parse_request : string -> (request, error_code * string) result
(** One request line.  [Parse_error] for malformed JSON or a non-object;
    [Bad_request] for a missing/non-integral [id] or malformed parameters;
    [Unknown_event] for an unrecognized [event] kind. *)

val ok_response : id:int -> event:string -> Json.t -> string
(** Success envelope, serialized (no trailing newline). *)

val error_response : id:int option -> code:error_code -> message:string -> string
(** Error envelope; [id] is [null] when the request's id never parsed. *)
