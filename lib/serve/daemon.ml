module Rng = Dtr_util.Rng
module Stat = Dtr_util.Stat
module Json = Dtr_util.Json
module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Srlg = Dtr_topology.Srlg
module Matrix = Dtr_traffic.Matrix
module Perturb = Dtr_traffic.Perturb
module Routing = Dtr_spf.Routing
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Optimizer = Dtr_core.Optimizer
module Delta_cache = Dtr_core.Delta_cache
module Prune = Dtr_core.Prune
module Resize = Dtr_core.Resize
module Lexico = Dtr_cost.Lexico
module Metric = Dtr_obs.Metric
module Span = Dtr_obs.Span
module Histogram = Dtr_obs.Histogram
module Rolling = Dtr_obs.Rolling
module Log = Dtr_obs.Log
module Openmetrics = Dtr_obs.Openmetrics
module Lru = Dtr_util.Lru
module P = Protocol

(* The daemon's epoch-keyed what-if cache, string-keyed on
   (epochs, failure set).  One shared LRU implementation with the
   optimizer's delta cache — see [Dtr_util.Lru]. *)
module Cache = Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

(* Periodic OpenMetrics dumps: [write] receives one whole exposition
   snapshot (terminated by "# EOF") after every [every] handled events.
   [every = 0] disables the periodic mode — the caller can still snapshot
   on demand via [exposition] or the [metrics] protocol request. *)
type metrics_sink = { write : string -> unit; every : int }

type config = {
  scenario : Scenario.t;
  incumbent : Weights.t;
  critical : int list;
  fraction : float option;
  seed : int;
  exec : Dtr_exec.Exec.t;
  cache_capacity : int;
  metrics : metrics_sink option;
}

(* A cached what-if answer: just the scalars — the load arrays of a full
   [Eval.detail] would pin O(arcs) memory per entry for data no query
   reads. *)
type priced = { lambda : float; phi : float; violations : int; unreachable : int }

type t = {
  mutable scenario : Scenario.t;
  mutable incumbent : Weights.t;
  mutable critical : int list;
  mutable failed : int list;  (* failed arc ids, strictly increasing *)
  (* Resident no-failure routing bases of the incumbent on the current
     graph.  Invalidated by weight and graph changes only: traffic updates
     never move shortest paths, and link failures are priced incrementally
     from the full-topology bases via [with_failed_arcs]. *)
  mutable routing_d : Routing.t option;
  mutable routing_t : Routing.t option;
  mutable graph_epoch : int;
  mutable matrix_epoch : int;
  mutable weights_epoch : int;
  (* Geographic SRLG groups of the current graph, built lazily on the first
     srlg event and tagged with the graph epoch that produced them — a
     resize changes the graph and silently invalidates the clustering. *)
  mutable srlg : (int * Srlg.t) option;
  cache : priced Cache.t;
  (* Weight-vector delta cache shared across warm re-optimizations: J is
     pure in the weights for a fixed scenario and failure set, so repeated
     repairs of the same incumbent skip whole failure sweeps.  Bumped (epoch
     invalidation) whenever traffic, graph, link state or the critical set
     moves. *)
  delta : Delta_cache.t;
  mutable warm_pruned : int;  (* trials early-aborted across warm repairs *)
  mutable warm_evals : int;  (* fully-priced trials across warm repairs *)
  metrics : metrics_sink option;
  perturb_rng : Rng.t;
  warm_rng : Rng.t;
  fraction : float option;
  seed : int;
  exec : Dtr_exec.Exec.t;
  (* event accounting for the [stats] reply *)
  mutable events : int;
  mutable errors : int;
  mutable lat : float array;  (* seconds, one per handled request *)
  mutable lat_len : int;
}

let c_events = Metric.Counter.create "serve.events"
let c_errors = Metric.Counter.create "serve.errors"

(* --- live telemetry ------------------------------------------------------ *)

(* One latency histogram per event kind, registered up front so every run
   reports the same histogram set (deterministic report layout even for
   kinds a given trace never exercises).  Recording is unconditional, like
   the [t.lat] latency array the [stats] reply has always kept: it touches
   no RNG and no optimizer state, so the fixed-seed obs-on = obs-off
   identity holds by construction. *)
let event_kinds =
  [
    "hello"; "tm_update"; "link_down"; "link_up"; "srlg_down"; "resize";
    "eval"; "reoptimize"; "stats"; "metrics"; "shutdown";
  ]

let latency_hists =
  List.map
    (fun k -> (k, Histogram.create ~labels:[ ("event", k) ] "serve.latency"))
    event_kinds

let hist_for name = List.assoc name latency_hists

(* Rolling-window gauges over event time (the daemon stamps each handled
   event); totals feed the events/s, cache hit-rate and warm abort-rate
   gauges in [stats] and the OpenMetrics exposition. *)
let roll_events = Rolling.create "serve.events"
let roll_errors = Rolling.create "serve.errors"
let roll_cache_hits = Rolling.create "serve.cache_hits"
let roll_cache_lookups = Rolling.create "serve.cache_lookups"
let roll_pruned = Rolling.create "serve.warm_pruned"
let roll_trials = Rolling.create "serve.warm_trials"

let create (cfg : config) =
  {
    scenario = cfg.scenario;
    incumbent = cfg.incumbent;
    critical = List.sort_uniq compare cfg.critical;
    failed = [];
    routing_d = None;
    routing_t = None;
    graph_epoch = 0;
    matrix_epoch = 0;
    weights_epoch = 0;
    srlg = None;
    cache = Cache.create ~capacity:cfg.cache_capacity;
    (* Sized to outlive a whole warm re-optimization: aborted moves now
       park Lower entries alongside Full costs, so a single event can push
       thousands of vectors through the cache — at 128 the LRU evicts the
       entire working set before the next event can reuse it. *)
    delta = Delta_cache.create ~capacity:4096;
    warm_pruned = 0;
    warm_evals = 0;
    metrics = cfg.metrics;
    perturb_rng = Rng.create (cfg.seed + 2);
    warm_rng = Rng.create (cfg.seed + 3);
    fraction = cfg.fraction;
    seed = cfg.seed;
    exec = cfg.exec;
    events = 0;
    errors = 0;
    lat = Array.make 256 0.;
    lat_len = 0;
  }

let incumbent t = t.incumbent
let cache_stats t = Cache.stats t.cache

let record_latency t secs =
  if t.lat_len = Array.length t.lat then begin
    let bigger = Array.make (2 * t.lat_len) 0. in
    Array.blit t.lat 0 bigger 0 t.lat_len;
    t.lat <- bigger
  end;
  t.lat.(t.lat_len) <- secs;
  t.lat_len <- t.lat_len + 1

let invalidate_bases t =
  t.routing_d <- None;
  t.routing_t <- None

let bases t =
  match (t.routing_d, t.routing_t) with
  | Some d, Some tt -> (d, tt)
  | _ ->
      let g = t.scenario.Scenario.graph in
      let buffers = Routing.make_buffers g in
      let d =
        Routing.compute g ~weights:(Weights.delay_of t.incumbent) ~buffers ()
      in
      let tt =
        Routing.compute g ~weights:(Weights.throughput_of t.incumbent) ~buffers ()
      in
      t.routing_d <- Some d;
      t.routing_t <- Some tt;
      (d, tt)

(* --- request plumbing ---------------------------------------------------- *)

let ( let* ) = Result.bind

let resolve_arc t r =
  let g = t.scenario.Scenario.graph in
  match r with
  | P.By_id id ->
      if id < 0 || id >= Graph.num_arcs g then
        Error (P.Bad_arc, Printf.sprintf "arc %d out of range" id)
      else Ok id
  | P.By_endpoints (u, v) -> (
      let n = Graph.num_nodes g in
      if u < 0 || u >= n || v < 0 || v >= n then
        Error (P.Bad_arc, Printf.sprintf "endpoint out of range in %d->%d" u v)
      else
        match Graph.find_arc g u v with
        | Some id -> Ok id
        | None -> Error (P.Bad_arc, Printf.sprintf "no arc %d->%d" u v))

let failure_of_arcs = function [] -> None | arcs -> Some (Failure.Arcs arcs)

let srlg_of t =
  match t.srlg with
  | Some (epoch, s) when epoch = t.graph_epoch -> Ok s
  | _ -> (
      match Srlg.geographic t.scenario.Scenario.graph with
      | s ->
          t.srlg <- Some (t.graph_epoch, s);
          Ok s
      | exception Invalid_argument msg -> Error (P.Bad_request, msg))

(* Both directions of every member link of a group, increasing arc ids. *)
let srlg_arcs t gid =
  let* s = srlg_of t in
  match List.find_opt (fun grp -> grp.Srlg.id = gid) (Srlg.groups s) with
  | None ->
      Error
        ( P.Bad_arc,
          Printf.sprintf "no SRLG group %d (have %d)" gid (Srlg.num_groups s) )
  | Some grp ->
      let g = t.scenario.Scenario.graph in
      Ok
        (List.concat_map
           (fun e ->
             let rev = (Graph.arc g e).Graph.rev in
             if rev >= 0 then [ e; rev ] else [ e ])
           grp.Srlg.edges
        |> List.sort_uniq compare)

(* The failure state an [eval] prices: currently-down arcs plus the query's
   what-if spec.  Node what-ifs cannot be combined with down links — the
   scenario type has no node+arcs constructor — so that mix is rejected
   rather than silently ignoring the down links. *)
let combined_failure t spec =
  match spec with
  | None -> Ok (failure_of_arcs t.failed)
  | Some (P.F_node v) ->
      if v < 0 || v >= Scenario.num_nodes t.scenario then
        Error (P.Bad_arc, Printf.sprintf "node %d out of range" v)
      else if t.failed <> [] then
        Error
          ( P.Bad_request,
            "node what-if queries cannot be combined with failed links" )
      else Ok (Some (Failure.Node v))
  | Some (P.F_arc r) ->
      let* id = resolve_arc t r in
      Ok (failure_of_arcs (List.sort_uniq compare (id :: t.failed)))
  | Some (P.F_edge r) ->
      let* id = resolve_arc t r in
      let rev = (Graph.arc_reverses t.scenario.Scenario.graph).(id) in
      Ok (failure_of_arcs (List.sort_uniq compare (id :: rev :: t.failed)))
  | Some (P.F_srlg gid) ->
      let* arcs = srlg_arcs t gid in
      Ok (failure_of_arcs (List.sort_uniq compare (arcs @ t.failed)))

let cache_key t failure =
  let fkey =
    match failure with
    | None -> "-"
    | Some (Failure.Arcs arcs) -> String.concat "," (List.map string_of_int arcs)
    | Some (Failure.Arc a) -> string_of_int a
    | Some (Failure.Edge e) -> "e" ^ string_of_int e
    | Some (Failure.Node v) -> "n" ^ string_of_int v
    | Some Failure.No_failure -> "-"
  in
  Printf.sprintf "g%d.m%d.w%d.%s" t.graph_epoch t.matrix_epoch t.weights_epoch
    fkey

let num f = Json.Num f
let int i = Json.Num (float_of_int i)
let cost_fields (c : Lexico.t) = [ ("lambda", num c.Lexico.lambda); ("phi", num c.Lexico.phi) ]

(* --- event handlers ------------------------------------------------------ *)

let handle_hello t =
  let g = t.scenario.Scenario.graph in
  Ok
    (Json.Obj
       [
         ("server", Json.Str "dtr-serve");
         ("nodes", int (Graph.num_nodes g));
         ("arcs", int (Graph.num_arcs g));
         ("jobs", int (Dtr_exec.Exec.jobs t.exec));
         ("dspf", Json.Bool (Dtr_spf.Spf_delta.enabled ()));
       ])

let handle_tm_update t ev =
  let rd, rt =
    Perturb.apply_event t.perturb_rng ~rd:t.scenario.Scenario.rd
      ~rt:t.scenario.Scenario.rt ev
  in
  t.scenario <- Scenario.with_traffic t.scenario ~rd ~rt;
  t.matrix_epoch <- t.matrix_epoch + 1;
  Delta_cache.bump t.delta;
  Ok
    (Json.Obj
       [
         ("matrix_epoch", int t.matrix_epoch);
         ("rd_total", num (Matrix.total rd));
         ("rt_total", num (Matrix.total rt));
       ])

let link_result t =
  let g = t.scenario.Scenario.graph in
  let connected =
    match t.failed with
    | [] -> Graph.strongly_connected g
    | arcs ->
        Graph.strongly_connected ~disabled:(Failure.mask g (Failure.Arcs arcs)) g
  in
  Json.Obj
    [
      ("failed", Json.Arr (List.map int t.failed));
      ("connected", Json.Bool connected);
    ]

let handle_link_down t r =
  let* id = resolve_arc t r in
  if List.mem id t.failed then
    Error (P.Bad_arc, Printf.sprintf "arc %d is already down" id)
  else begin
    t.failed <- List.sort_uniq compare (id :: t.failed);
    Delta_cache.bump t.delta;
    Ok (link_result t)
  end

let handle_link_up t r =
  let* id = resolve_arc t r in
  if not (List.mem id t.failed) then
    Error (P.Bad_arc, Printf.sprintf "arc %d is not down" id)
  else begin
    t.failed <- List.filter (fun a -> a <> id) t.failed;
    Delta_cache.bump t.delta;
    Ok (link_result t)
  end

(* A conduit cut: every member link of the group goes down as one event.
   Members already down individually stay down — the event is idempotent
   per arc — but a fully-down group is rejected like a duplicate
   [link_down]. *)
let handle_srlg_down t gid =
  let* arcs = srlg_arcs t gid in
  let fresh = List.filter (fun a -> not (List.mem a t.failed)) arcs in
  if fresh = [] then
    Error (P.Bad_arc, Printf.sprintf "SRLG group %d is already down" gid)
  else begin
    t.failed <- List.sort_uniq compare (fresh @ t.failed);
    Delta_cache.bump t.delta;
    match link_result t with
    | Json.Obj fields ->
        Ok (Json.Obj (("group_arcs", Json.Arr (List.map int arcs)) :: fields))
    | other -> Ok other
  end

let handle_resize t ~max_util ~step =
  let scenario, report =
    Resize.resize_congested ?step ?max_util t.scenario t.incumbent
  in
  t.scenario <- scenario;
  t.graph_epoch <- t.graph_epoch + 1;
  Delta_cache.bump t.delta;
  invalidate_bases t;
  Ok
    (Json.Obj
       [
         ("upgrades", int (List.length report.Resize.upgrades));
         ("added_capacity", num report.Resize.added_capacity);
         ("graph_epoch", int t.graph_epoch);
       ])

let handle_eval t spec =
  let* failure = combined_failure t spec in
  let key = cache_key t failure in
  let priced, cached =
    match Cache.find t.cache key with
    | Some p -> (p, true)
    | None ->
        let routing_d, routing_t = bases t in
        let d = Eval.evaluate_from t.scenario ~routing_d ~routing_t ?failure t.incumbent in
        let p =
          {
            lambda = d.Eval.cost.Lexico.lambda;
            phi = d.Eval.cost.Lexico.phi;
            violations = d.Eval.violations;
            unreachable = d.Eval.unreachable_pairs;
          }
        in
        Cache.add t.cache key p;
        (p, false)
  in
  Ok
    (Json.Obj
       [
         ("lambda", num priced.lambda);
         ("phi", num priced.phi);
         ("violations", int priced.violations);
         ("unreachable_pairs", int priced.unreachable);
         ("cached", Json.Bool cached);
       ])

let set_incumbent t w =
  if not (Weights.equal w t.incumbent) then begin
    t.incumbent <- w;
    t.weights_epoch <- t.weights_epoch + 1;
    invalidate_bases t
  end

let handle_reopt_warm t ~max_sweeps ~max_rounds ~target =
  let default = Optimizer.default_warm_budget in
  let budget =
    Optimizer.
      {
        max_sweeps = Option.value max_sweeps ~default:default.max_sweeps;
        max_rounds = Option.value max_rounds ~default:default.max_rounds;
      }
  in
  let target =
    Option.map (fun (lambda, phi) -> Lexico.{ lambda; phi }) target
  in
  let failures =
    List.sort_uniq compare (t.critical @ t.failed)
    |> List.map (fun a -> Failure.Arc a)
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Optimizer.warm_start ~rng:t.warm_rng ~exec:t.exec ~failures ~budget ?target
      ~cache:t.delta ~incumbent:t.incumbent t.scenario
  in
  let seconds = Unix.gettimeofday () -. t0 in
  t.warm_pruned <- t.warm_pruned + r.Optimizer.warm_pruned;
  t.warm_evals <- t.warm_evals + r.Optimizer.warm_evals;
  set_incumbent t r.Optimizer.weights;
  Ok
    (Json.Obj
       ([ ("mode", Json.Str "warm") ]
       @ cost_fields r.Optimizer.objective
       @ [
           ("start_lambda", num r.Optimizer.start_objective.Lexico.lambda);
           ("start_phi", num r.Optimizer.start_objective.Lexico.phi);
           ("sweeps", int r.Optimizer.warm_sweeps);
           ("evals", int r.Optimizer.warm_evals);
           ("rounds", int r.Optimizer.warm_rounds);
           ("pruned", int r.Optimizer.warm_pruned);
           ("failures", int (List.length failures));
           ("seconds", num seconds);
           ("weights_epoch", int t.weights_epoch);
         ]
       @
       match target with
       | None -> []
       | Some tgt ->
           [
             ( "target_reached",
               Json.Bool (Lexico.compare r.Optimizer.objective tgt <= 0) );
           ]))

let handle_reopt_full t =
  (* A fresh (seed + 1) stream — the same one a cold [dtr-opt optimize] on
     these matrices builds, so full re-optimization in a long-lived daemon
     is byte-identical to a cold restart whatever happened before. *)
  let rng = Rng.create (t.seed + 1) in
  let sol = Optimizer.optimize ~rng ?fraction:t.fraction ~exec:t.exec t.scenario in
  set_incumbent t sol.Optimizer.robust;
  let critical = List.sort_uniq compare sol.Optimizer.critical in
  (* A new critical set changes the warm objective's failure sweep. *)
  if critical <> t.critical then Delta_cache.bump t.delta;
  t.critical <- critical;
  Ok
    (Json.Obj
       ([ ("mode", Json.Str "full") ]
       @ cost_fields sol.Optimizer.robust_normal_cost
       @ [
           ("fail_lambda", num sol.Optimizer.robust_fail_cost.Lexico.lambda);
           ("fail_phi", num sol.Optimizer.robust_fail_cost.Lexico.phi);
           ("regular_lambda", num sol.Optimizer.regular_cost.Lexico.lambda);
           ("regular_phi", num sol.Optimizer.regular_cost.Lexico.phi);
           ("critical_arcs", int (List.length sol.Optimizer.critical));
           ("phase1_seconds", num sol.Optimizer.phase1_seconds);
           ("phase2_seconds", num sol.Optimizer.phase2_seconds);
           ("weights_epoch", int t.weights_epoch);
         ]))

let percentile_ms t p =
  if t.lat_len = 0 then 0.
  else 1000. *. Stat.percentile (Array.sub t.lat 0 t.lat_len) p

let ratio num_ den_ = if den_ <= 0. then 0. else num_ /. den_

(* The three headline rolling gauges, computed at [now] from the window
   totals: events/s, eval-cache hit-rate (hits over lookups) and warm
   abort-rate (early-aborted trials over all warm trials). *)
let rolling_rates ~now =
  let tot r = Rolling.total r ~now in
  ( Rolling.rate roll_events ~now,
    ratio (tot roll_cache_hits) (tot roll_cache_lookups),
    ratio (tot roll_pruned) (tot roll_trials) )

let handle_stats t =
  let s = Cache.stats t.cache in
  let d = Delta_cache.stats t.delta in
  let now = Unix.gettimeofday () in
  let events_ps, hit_rate, abort_rate = rolling_rates ~now in
  let lookups = s.Lru.hits + s.Lru.misses in
  Ok
    (Json.Obj
       [
         ("events", int t.events);
         ("errors", int t.errors);
         ( "latency_ms",
           Json.Obj
             [
               ("count", int t.lat_len);
               ("p50", num (percentile_ms t 50.));
               ("p99", num (percentile_ms t 99.));
               ("max", num (percentile_ms t 100.));
             ] );
         ( "cache",
           Json.Obj
             [
               ("hits", int s.Lru.hits);
               ("misses", int s.Lru.misses);
               ("lookups", int lookups);
               ("hit_rate", num (ratio (float_of_int s.Lru.hits) (float_of_int lookups)));
               ("evictions", int s.Lru.evictions);
               ("length", int s.Lru.length);
               ("capacity", int s.Lru.capacity);
               ( "occupancy",
                 num (ratio (float_of_int s.Lru.length) (float_of_int s.Lru.capacity)) );
             ] );
         ( "pruning",
           Json.Obj
             [
               ("enabled", Json.Bool (Prune.enabled ()));
               ("warm_pruned", int t.warm_pruned);
               ("warm_evals", int t.warm_evals);
               ("delta_hits", int d.Delta_cache.hits);
               ("delta_lower_hits", int d.Delta_cache.lower_hits);
               ("delta_misses", int d.Delta_cache.misses);
               ("delta_evictions", int d.Delta_cache.evictions);
               ("delta_length", int d.Delta_cache.length);
               ("delta_capacity", int d.Delta_cache.capacity);
             ] );
         ( "rolling",
           Json.Obj
             [
               ("window_seconds", int (Rolling.window roll_events));
               ("events_per_second", num events_ps);
               ("cache_hit_rate", num hit_rate);
               ("abort_rate", num abort_rate);
             ] );
         ( "epochs",
           Json.Obj
             [
               ("graph", int t.graph_epoch);
               ("matrix", int t.matrix_epoch);
               ("weights", int t.weights_epoch);
             ] );
         ("failed", Json.Arr (List.map int t.failed));
         ("critical_arcs", int (List.length t.critical));
       ])

(* One OpenMetrics text snapshot of everything the daemon can see: its own
   counters, the shared LRU/delta-cache/pruning state, per-event-kind
   latency histograms and the rolling-window gauges.  Served inline by the
   [metrics] protocol request and dumped periodically by [--metrics]. *)
let exposition t =
  let now = Unix.gettimeofday () in
  let b = Openmetrics.create () in
  let s = Cache.stats t.cache in
  let d = Delta_cache.stats t.delta in
  let fl = float_of_int in
  Openmetrics.counter b ~name:"dtr_serve_events" (fl t.events);
  Openmetrics.counter b ~name:"dtr_serve_errors" (fl t.errors);
  List.iter
    (fun (_, h) ->
      Openmetrics.histogram b ~name:"dtr_serve_latency_seconds"
        (Histogram.snapshot h))
    latency_hists;
  List.iter
    (fun (op, v) ->
      Openmetrics.counter b ~name:"dtr_serve_cache_ops"
        ~labels:[ ("op", op) ] (fl v))
    [ ("hit", s.Lru.hits); ("miss", s.Lru.misses); ("evict", s.Lru.evictions) ];
  Openmetrics.gauge b ~name:"dtr_serve_cache_entries" (fl s.Lru.length);
  Openmetrics.gauge b ~name:"dtr_serve_cache_capacity" (fl s.Lru.capacity);
  List.iter
    (fun (op, v) ->
      Openmetrics.counter b ~name:"dtr_serve_delta_cache_ops"
        ~labels:[ ("op", op) ] (fl v))
    [
      ("hit", d.Delta_cache.hits);
      ("lower_hit", d.Delta_cache.lower_hits);
      ("miss", d.Delta_cache.misses);
      ("evict", d.Delta_cache.evictions);
    ];
  Openmetrics.gauge b ~name:"dtr_serve_delta_cache_entries"
    (fl d.Delta_cache.length);
  Openmetrics.counter b ~name:"dtr_serve_warm_pruned" (fl t.warm_pruned);
  Openmetrics.counter b ~name:"dtr_serve_warm_evals" (fl t.warm_evals);
  List.iter
    (fun (kind, v) ->
      Openmetrics.counter b ~name:"dtr_serve_epoch"
        ~labels:[ ("kind", kind) ] (fl v))
    [
      ("graph", t.graph_epoch);
      ("matrix", t.matrix_epoch);
      ("weights", t.weights_epoch);
    ];
  Openmetrics.gauge b ~name:"dtr_serve_failed_arcs" (fl (List.length t.failed));
  Openmetrics.gauge b ~name:"dtr_serve_critical_arcs"
    (fl (List.length t.critical));
  let events_ps, hit_rate, abort_rate = rolling_rates ~now in
  let window = [ ("window", string_of_int (Rolling.window roll_events)) ] in
  Openmetrics.gauge b ~name:"dtr_serve_events_per_second" ~labels:window
    events_ps;
  Openmetrics.gauge b ~name:"dtr_serve_cache_hit_rate" ~labels:window hit_rate;
  Openmetrics.gauge b ~name:"dtr_serve_abort_rate" ~labels:window abort_rate;
  Openmetrics.render b

let handle_metrics t =
  Ok (Json.Obj [ ("exposition", Json.Str (exposition t)) ])

let dispatch t (event : P.event) =
  match event with
  | P.Hello -> handle_hello t
  | P.Tm_update ev -> handle_tm_update t ev
  | P.Link_down r -> handle_link_down t r
  | P.Link_up r -> handle_link_up t r
  | P.Srlg_down gid -> handle_srlg_down t gid
  | P.Resize { max_util; step } -> handle_resize t ~max_util ~step
  | P.Eval { failure } -> handle_eval t failure
  | P.Reoptimize { mode = P.Warm; max_sweeps; max_rounds; target } ->
      handle_reopt_warm t ~max_sweeps ~max_rounds ~target
  | P.Reoptimize { mode = P.Full; max_sweeps = _; max_rounds = _; target = _ }
    ->
      handle_reopt_full t
  | P.Stats -> handle_stats t
  | P.Metrics -> handle_metrics t
  | P.Shutdown -> Ok (Json.Obj [])

(* Result fields worth echoing into the structured log line: the cost
   coordinates, cache outcome and re-optimization effort of the handler's
   reply, by key.  Everything else (arrays, wall-clock seconds the latency
   field already covers) stays out of the log. *)
let log_result_keys =
  [
    "lambda"; "phi"; "start_lambda"; "start_phi"; "cached"; "mode"; "sweeps";
    "evals"; "rounds"; "pruned"; "connected"; "target_reached";
  ]

(* One JSONL line per handled event (schema dtr-serve-log/1): latency,
   selected result fields, the reoptimize cost delta (dlambda, dphi), the
   per-event cache/pruning deltas and the epoch coordinates after the
   event.  No-op unless a [Log] sink is attached. *)
let log_event t ~id ~name ~seconds ~outcome ~(c0 : Lru.stats)
    ~(d0 : Delta_cache.stats) ~wp0 ~we0 =
  let c1 = Cache.stats t.cache and d1 = Delta_cache.stats t.delta in
  let result_fields =
    match outcome with
    | Ok (Json.Obj fields) ->
        let picked =
          List.filter (fun (k, _) -> List.mem k log_result_keys) fields
        in
        let delta k k0 =
          match (List.assoc_opt k fields, List.assoc_opt k0 fields) with
          | Some (Json.Num v), Some (Json.Num v0) ->
              [ ("d" ^ k, Json.Num (v -. v0)) ]
          | _ -> []
        in
        picked @ delta "lambda" "start_lambda" @ delta "phi" "start_phi"
    | Ok _ -> []
    | Error (code, message) ->
        [
          ("code", Json.Str (P.error_code_name code));
          ("message", Json.Str message);
        ]
  in
  Log.event ~schema:Log.serve_schema ~name
    ([
       ("id", int id);
       ("ok", Json.Bool (Result.is_ok outcome));
       ("latency_ms", num (1000. *. seconds));
     ]
    @ result_fields
    @ [
        ("cache_hits_delta", int (c1.Lru.hits - c0.Lru.hits));
        ("cache_misses_delta", int (c1.Lru.misses - c0.Lru.misses));
        ( "delta_cache_hits_delta",
          int
            (d1.Delta_cache.hits + d1.Delta_cache.lower_hits
            - (d0.Delta_cache.hits + d0.Delta_cache.lower_hits)) );
        ("warm_pruned_delta", int (t.warm_pruned - wp0));
        ("warm_evals_delta", int (t.warm_evals - we0));
        ( "epochs",
          Json.Obj
            [
              ("graph", int t.graph_epoch);
              ("matrix", int t.matrix_epoch);
              ("weights", int t.weights_epoch);
            ] );
      ])

let maybe_dump_metrics t =
  match t.metrics with
  | Some sink when sink.every > 0 && t.events mod sink.every = 0 ->
      sink.write (exposition t)
  | _ -> ()

let handle_line t line =
  t.events <- t.events + 1;
  if Metric.enabled () then Metric.Counter.incr c_events;
  match P.parse_request line with
  | Error (code, message) ->
      t.errors <- t.errors + 1;
      if Metric.enabled () then Metric.Counter.incr c_errors;
      let now = Unix.gettimeofday () in
      Rolling.incr roll_events ~now;
      Rolling.incr roll_errors ~now;
      if Log.enabled () then
        Log.event ~schema:Log.serve_schema ~name:"parse_error"
          [
            ("ok", Json.Bool false);
            ("code", Json.Str (P.error_code_name code));
            ("message", Json.Str message);
          ];
      maybe_dump_metrics t;
      (P.error_response ~id:None ~code ~message, true)
  | Ok { P.id; event } -> (
      let name = P.event_name event in
      let c0 = Cache.stats t.cache and d0 = Delta_cache.stats t.delta in
      let wp0 = t.warm_pruned and we0 = t.warm_evals in
      let t0 = Unix.gettimeofday () in
      let outcome =
        Span.with_ ~name:("serve." ^ name) @@ fun () ->
        match dispatch t event with
        | result -> result
        | exception Invalid_argument msg -> Error (P.Bad_request, msg)
        | exception exn -> Error (P.Internal, Printexc.to_string exn)
      in
      let now = Unix.gettimeofday () in
      let seconds = now -. t0 in
      record_latency t seconds;
      Histogram.record (hist_for name) seconds;
      Rolling.incr roll_events ~now;
      if Result.is_error outcome then Rolling.incr roll_errors ~now;
      let c1 = Cache.stats t.cache in
      Rolling.add roll_cache_hits ~now (float_of_int (c1.Lru.hits - c0.Lru.hits));
      Rolling.add roll_cache_lookups ~now
        (float_of_int (c1.Lru.hits + c1.Lru.misses - (c0.Lru.hits + c0.Lru.misses)));
      Rolling.add roll_pruned ~now (float_of_int (t.warm_pruned - wp0));
      Rolling.add roll_trials ~now
        (float_of_int (t.warm_evals + t.warm_pruned - (we0 + wp0)));
      if Log.enabled () then
        log_event t ~id ~name ~seconds ~outcome ~c0 ~d0 ~wp0 ~we0;
      maybe_dump_metrics t;
      match outcome with
      | Ok result ->
          (P.ok_response ~id ~event:name result, event <> P.Shutdown)
      | Error (code, message) ->
          t.errors <- t.errors + 1;
          if Metric.enabled () then Metric.Counter.incr c_errors;
          (P.error_response ~id:(Some id) ~code ~message, true))

(* --- event loops --------------------------------------------------------- *)

let run_pipe t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        let resp, continue = handle_line t line in
        output_string oc resp;
        output_char oc '\n';
        flush oc;
        if continue then loop ()
  in
  loop ()

(* Socket mode: one select loop over the listening socket, the connected
   clients and (optionally) stdio, all newline-framed.  Single-threaded:
   requests are handled to completion in readiness order, so daemon state
   needs no locking and responses never interleave. *)

type peer = {
  fd : Unix.file_descr;
  mutable pending : string;  (* bytes after the last newline *)
  reply : string -> unit;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let split_lines peer data =
  match String.split_on_char '\n' (peer.pending ^ data) with
  | [] -> []
  | parts ->
      let rec go = function
        | [ last ] ->
            peer.pending <- last;
            []
        | line :: rest -> line :: go rest
        | [] -> []
      in
      go parts

let run_socket t ~socket ?stdio () =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 8;
  let peers = ref [] in
  let stdio_peer =
    Option.map
      (fun (ic, oc) ->
        {
          fd = Unix.descr_of_in_channel ic;
          pending = "";
          reply =
            (fun s ->
              output_string oc s;
              output_char oc '\n';
              flush oc);
        })
      stdio
  in
  let stdio_open = ref (stdio_peer <> None) in
  let stop = ref false in
  let drop peer =
    peers := List.filter (fun p -> p.fd != peer.fd) !peers;
    try Unix.close peer.fd with Unix.Unix_error _ -> ()
  in
  let serve_lines peer data =
    List.iter
      (fun line ->
        if (not !stop) && String.trim line <> "" then begin
          let resp, continue = handle_line t line in
          (try peer.reply resp with Sys_error _ | Unix.Unix_error _ -> ());
          if not continue then stop := true
        end)
      (split_lines peer data)
  in
  let chunk = Bytes.create 65536 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Unix.close p.fd with Unix.Unix_error _ -> ()) !peers;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ -> ())
  @@ fun () ->
  while not !stop do
    let watched =
      (listen_fd :: List.map (fun p -> p.fd) !peers)
      @
      match stdio_peer with
      | Some p when !stdio_open -> [ p.fd ]
      | _ -> []
    in
    let readable, _, _ = Unix.select watched [] [] (-1.) in
    List.iter
      (fun fd ->
        if fd = listen_fd then begin
          let client_fd, _ = Unix.accept listen_fd in
          peers :=
            {
              fd = client_fd;
              pending = "";
              reply = (fun s -> write_all client_fd (s ^ "\n"));
            }
            :: !peers
        end
        else begin
          let peer =
            match stdio_peer with
            | Some p when p.fd = fd -> p
            | _ -> List.find (fun p -> p.fd = fd) !peers
          in
          let n = try Unix.read fd chunk 0 (Bytes.length chunk) with
            | Unix.Unix_error _ -> 0
          in
          if n = 0 then begin
            match stdio_peer with
            | Some p when p.fd = fd -> stdio_open := false
            | _ -> drop peer
          end
          else serve_lines peer (Bytes.sub_string chunk 0 n)
        end)
      readable
  done
