(* LRU over a hashtable with per-entry recency stamps.  Eviction scans for
   the minimum stamp — O(capacity), which at the daemon's cache sizes (tens
   of entries) beats maintaining an intrusive list, and keeps the structure
   trivially correct under the qcheck eviction properties. *)

type 'v entry = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, 'v entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  {
    cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some e ->
      touch t e;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t k = Hashtbl.mem t.tbl k

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, s) when s <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t k v =
  (match Hashtbl.find_opt t.tbl k with
  | Some _ -> Hashtbl.remove t.tbl k
  | None -> if Hashtbl.length t.tbl >= t.cap then evict_lru t);
  let e = { value = v; stamp = 0 } in
  touch t e;
  Hashtbl.replace t.tbl k e

let clear t = Hashtbl.reset t.tbl

let stats (t : ('k, 'v) t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    length = Hashtbl.length t.tbl;
    capacity = t.cap;
  }
