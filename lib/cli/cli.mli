(** Shared Cmdliner plumbing for dtr executables. *)

val jobs_conv : int Cmdliner.Arg.conv
(** Job-count converter: accepts integers [>= 1] and reports anything else
    through Cmdliner's error channel (usage on stderr, exit code
    [Cmd.Exit.cli_error]) rather than exiting by hand. *)

val exec_of_jobs : int option -> Dtr_exec.Exec.t
(** [exec_of_jobs jobs] resolves an execution context: [Some n] forces [n]
    domains (the explicit flag wins over [DTR_JOBS]); [None] falls back to
    [Exec.default ()] (the [DTR_JOBS] environment variable, else serial). *)

val chunk_size_conv : int Cmdliner.Arg.conv
(** Pool chunk-size converter for [--chunk-size]: accepts integers [>= 1],
    mirroring {!jobs_conv}'s validation-in-converter style. *)

val apply_chunk_size : int option -> unit
(** [apply_chunk_size (Some n)] pins the pool chunk size process-wide via
    [Exec.set_chunk_size] (the explicit flag wins over [DTR_CHUNK_SIZE]);
    [None] leaves the environment/adaptive default in place. *)

val obs_start :
  ?log:string -> verbose:bool -> report:string option -> trace:string option -> unit -> unit
(** Observability bracket at the start of a CLI run: resets every
    metric/span/trace/convergence/histogram/rolling accumulator, then sets
    Metric and Trace enablement to exactly what this run consumes — metrics
    on iff one of [verbose], [--report] or [--trace] will read them, the
    flight recorder on iff [--trace] will write it — and attaches the
    structured JSONL log sink to [log] (detaching when absent).  Symmetric:
    a run with instrumentation off also {e disables} whatever an earlier
    in-process run switched on. *)

val obs_abort : unit -> unit
(** Tear the bracket down: reset all accumulators, disable Metric and
    Trace, detach the log sink. *)

val with_obs :
  ?log:string ->
  verbose:bool ->
  report:string option ->
  trace:string option ->
  (unit -> 'a) ->
  'a
(** Exception-safe bracket: {!obs_start}, run [f], and on raise
    {!obs_abort} before re-raising — so span/metric/log state from a failed
    run cannot leak into a subsequent in-process run. *)
