(** The [dtr-opt trace] subcommand family: observability-report diffs and
    the BENCH perf-regression gate.

    The checking logic is pure ((label, contents) pairs in, rendered text
    and counts out) so tests drive it without processes; the Cmdliner terms
    wrap it with file IO and exit codes: 0 clean, 1 gate tripped
    (span-count deltas / regressions), 2 unreadable or malformed input. *)

type diff_result = {
  rendered : string;
  count_deltas : int;  (** spans whose call counts differ *)
  counter_deltas : int;  (** metric counters whose values differ *)
  histogram_deltas : int;  (** histograms whose total counts differ *)
}

val diff_reports :
  label_a:string ->
  label_b:string ->
  a:string ->
  b:string ->
  (diff_result, string) result
(** Span-by-span diff of two dtr-obs-report documents (schema /1 to /3).
    Spans are matched by slash-joined path through the span forest; /3
    histograms by (name, labels), comparing total integer counts.  Two
    reports of the same fixed-seed run must show zero span and histogram
    total-count deltas — the determinism invariant — while seconds, sums,
    quantiles and per-bucket placement (all derived from wall-clock
    latencies) naturally jitter and never gate. *)

type bench_row = {
  row_name : string;
  ns_per_op : float;
  commit : string option;  (** absent in pre-PR-5 rows *)
  timestamp : string option;  (** ISO-8601; absent in pre-PR-5 rows *)
}

type bench_file = { kernel : string; rows : bench_row list }

val parse_bench : string -> (bench_file, string) result

type regression = {
  r_kernel : string;
  r_name : string;
  from_ns : float;
  to_ns : float;
  change_pct : float;
  from_commit : string;
  to_commit : string;
}

val check_rows :
  threshold:float -> kernel:string -> bench_row list -> regression list
(** Group rows by measurement name, order each trajectory by timestamp
    (unstamped legacy rows sort first, keeping file order — the sort is
    stable), and flag every consecutive ns/op increase beyond
    [threshold] percent. *)

type check_result = {
  report : string;
  regressions : regression list;
  files_checked : int;
}

val check_files :
  threshold:float -> (string * string) list -> (check_result, string) result
(** [check_files ~threshold [(label, contents); ...]] — malformed JSON is
    an error, not a skip: a gate that ignores a corrupt file is no gate. *)

type metrics_result = {
  m_rendered : string;
  m_snapshots : int;
  m_violations : string list;
}

val metrics_check : string -> (metrics_result, string) result
(** Validate an OpenMetrics text stream as written by [dtr-serve --metrics]:
    one or more ["# EOF"]-terminated snapshots.  Structural problems
    (no terminator, malformed TYPE or sample lines) are [Error]s; semantic
    ones — samples without a declared family, non-cumulative histogram
    buckets, a [+Inf] bucket disagreeing with [_count], counters or
    histogram counts going backwards between snapshots — accumulate in
    [m_violations]. *)

val sparkline : float list -> string
(** Pure-ASCII intensity sparkline (ten levels), rescaled per series. *)

val render_convergence : (string * Dtr_obs.Convergence.point list) list -> string
(** Summary table plus one best-phi sparkline per series; [""] when there
    is nothing to show. *)

val print_convergence : unit -> unit
(** [render_convergence] over {!Dtr_obs.Convergence.all}, printed to
    stdout ([dtr-opt --verbose]). *)

val run_diff : string -> string -> int
val run_bench_check : float -> string list -> int
val run_metrics_check : string list -> int

val diff_term : int Cmdliner.Term.t
val bench_check_term : int Cmdliner.Term.t
val metrics_check_term : int Cmdliner.Term.t

val cmd_group : wrap:(int -> unit) -> unit Cmdliner.Cmd.t
(** The [trace] command group.  [wrap] receives each subcommand's exit
    code (the caller typically passes [exit] so status propagates through
    a unit-typed [Cmd.group]). *)
