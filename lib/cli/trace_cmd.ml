(* Trace tooling behind the [dtr-opt trace] subcommand family:

   - [diff]: span-by-span comparison of two dtr-obs-report JSON documents
     (schema /1 or /2).  Two reports of the same fixed-seed run must show
     zero span-count deltas — count deltas exit nonzero, so the diff doubles
     as a determinism gate; wall-clock seconds are reported but never gate.

   - [bench-check]: walks the BENCH_<kernel>.json performance trajectory
     (rows stamped with git commit + ISO-8601 timestamp since PR 5; older
     unstamped rows are tolerated and kept in file order) and flags any
     consecutive ns/op increase beyond the threshold.  Nonzero exit turns a
     kernel regression into a CI failure instead of a silently growing
     number in a JSON file.

   The pure entry points ([diff_reports], [check_files]) take file contents
   and return rendered output plus a count, so tests exercise the exact
   logic the CLI runs without spawning processes. *)

module Json = Dtr_util.Json
module Table = Dtr_util.Table

(* ------------------------------------------------------------------ *)
(* trace diff                                                          *)
(* ------------------------------------------------------------------ *)

(* Flatten a report's span forest into (path, count, seconds) rows, path
   elements joined with '/', preserving first-seen order. *)
let flatten_spans report =
  let rows = ref [] in
  let rec walk prefix span =
    let name = Json.string_member "name" span ~default:"?" in
    let path = if prefix = "" then name else prefix ^ "/" ^ name in
    rows :=
      ( path,
        Json.int_member "count" span ~default:0,
        Json.float_member "seconds" span ~default:0. )
      :: !rows;
    List.iter (walk path) (Json.to_list (Option.value ~default:Json.Null (Json.member "children" span)))
  in
  (match Json.member "spans" report with
  | Some spans -> List.iter (walk "") (Json.to_list spans)
  | None -> ());
  List.rev !rows

let counters report =
  match Json.member "counters" report with
  | Some o ->
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int_opt v))
        (Json.to_obj o)
  | None -> []

(* The /3 "histograms" key: one entry per (name, labels) with integer
   per-bucket counts.  Only the TOTAL count gates: it is deterministic for
   a fixed event stream — it says *how many* events of each kind ran.
   Which bucket each event landed in depends on its wall-clock latency, so
   per-bucket placement (and the derived quantiles and sums) legitimately
   differs between two identical replays; bucket drift is rendered for
   context but never trips the gate. *)
let histograms report =
  match Json.member "histograms" report with
  | None -> []
  | Some hs ->
      List.map
        (fun h ->
          let name = Json.string_member "name" h ~default:"?" in
          let labels =
            match Json.member "labels" h with
            | Some o ->
                List.filter_map
                  (fun (k, v) ->
                    Option.map (fun s -> k ^ "=" ^ s) (Json.to_string_opt v))
                  (Json.to_obj o)
            | None -> []
          in
          let key =
            name
            ^
            match labels with
            | [] -> ""
            | ls -> "{" ^ String.concat "," (List.sort compare ls) ^ "}"
          in
          let count = Json.int_member "count" h ~default:0 in
          let buckets =
            List.filter_map
              (fun b ->
                match (Json.member "le" b, Json.to_int_opt (Option.value ~default:Json.Null (Json.member "count" b))) with
                | Some (Json.Num le), Some c -> Some (le, c)
                | _ -> None)
              (Json.to_list (Option.value ~default:Json.Null (Json.member "buckets" h)))
          in
          (key, count, buckets))
        (Json.to_list hs)

type diff_result = {
  rendered : string;
  count_deltas : int;  (** spans whose call counts differ *)
  counter_deltas : int;  (** metric counters whose values differ *)
  histogram_deltas : int;  (** histograms whose total counts differ *)
}

let diff_reports ~label_a ~label_b ~a ~b =
  match (Json.parse a, Json.parse b) with
  | Error e, _ -> Error (Printf.sprintf "%s: %s" label_a e)
  | _, Error e -> Error (Printf.sprintf "%s: %s" label_b e)
  | Ok ja, Ok jb ->
      let sa = flatten_spans ja and sb = flatten_spans jb in
      let paths =
        let seen = Hashtbl.create 16 in
        List.filter
          (fun p ->
            if Hashtbl.mem seen p then false
            else begin
              Hashtbl.add seen p ();
              true
            end)
          (List.map (fun (p, _, _) -> p) sa @ List.map (fun (p, _, _) -> p) sb)
      in
      let find rows p =
        List.find_map (fun (q, c, s) -> if q = p then Some (c, s) else None) rows
      in
      let buf = Buffer.create 1024 in
      let t =
        Table.create
          ~title:(Printf.sprintf "span diff: %s vs %s" label_a label_b)
          ~columns:[ "span"; "count A"; "count B"; "dcount"; "s A"; "s B" ]
      in
      let count_deltas = ref 0 in
      List.iter
        (fun p ->
          let ca, sa_s = Option.value ~default:(0, 0.) (find sa p) in
          let cb, sb_s = Option.value ~default:(0, 0.) (find sb p) in
          if ca <> cb then incr count_deltas;
          Table.add_row t
            [
              p;
              string_of_int ca;
              string_of_int cb;
              (if ca = cb then "=" else Printf.sprintf "%+d" (cb - ca));
              Table.cell_f sa_s;
              Table.cell_f sb_s;
            ])
        paths;
      Buffer.add_string buf (Table.render t);
      Buffer.add_char buf '\n';
      let ctr_a = counters ja and ctr_b = counters jb in
      let ctr_names =
        let seen = Hashtbl.create 16 in
        List.filter
          (fun k ->
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (List.map fst ctr_a @ List.map fst ctr_b)
      in
      let counter_deltas = ref 0 in
      let ct =
        Table.create ~title:"counter diff"
          ~columns:[ "counter"; "A"; "B"; "delta" ]
      in
      List.iter
        (fun k ->
          let va = Option.value ~default:0 (List.assoc_opt k ctr_a) in
          let vb = Option.value ~default:0 (List.assoc_opt k ctr_b) in
          if va <> vb then begin
            incr counter_deltas;
            Table.add_row ct
              [ k; string_of_int va; string_of_int vb;
                Printf.sprintf "%+d" (vb - va) ]
          end)
        ctr_names;
      if !counter_deltas > 0 then begin
        Buffer.add_string buf (Table.render ct);
        Buffer.add_char buf '\n'
      end;
      let ha = histograms ja and hb = histograms jb in
      let hist_keys =
        let seen = Hashtbl.create 16 in
        List.filter
          (fun k ->
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (List.map (fun (k, _, _) -> k) ha @ List.map (fun (k, _, _) -> k) hb)
      in
      let histogram_deltas = ref 0 in
      let ht =
        Table.create ~title:"histogram count diff"
          ~columns:[ "histogram"; "count A"; "count B"; "bucket deltas" ]
      in
      List.iter
        (fun k ->
          let find rows =
            List.find_map
              (fun (q, c, bs) -> if q = k then Some (c, bs) else None)
              rows
          in
          let ca, ba = Option.value ~default:(0, []) (find ha) in
          let cb, bb = Option.value ~default:(0, []) (find hb) in
          (* Bucket lists are sparse (zero counts omitted), so compare as
             le-keyed maps over the union of boundaries. *)
          let bucket_deltas =
            let les =
              List.sort_uniq compare (List.map fst ba @ List.map fst bb)
            in
            List.length
              (List.filter
                 (fun le ->
                   Option.value ~default:0 (List.assoc_opt le ba)
                   <> Option.value ~default:0 (List.assoc_opt le bb))
                 les)
          in
          if ca <> cb then begin
            incr histogram_deltas;
            Table.add_row ht
              [ k; string_of_int ca; string_of_int cb;
                string_of_int bucket_deltas ]
          end)
        hist_keys;
      if !histogram_deltas > 0 then begin
        Buffer.add_string buf (Table.render ht);
        Buffer.add_char buf '\n'
      end;
      Buffer.add_string buf
        (Printf.sprintf
           "span-count deltas: %d, counter deltas: %d, histogram deltas: %d\n"
           !count_deltas !counter_deltas !histogram_deltas);
      Ok
        {
          rendered = Buffer.contents buf;
          count_deltas = !count_deltas;
          counter_deltas = !counter_deltas;
          histogram_deltas = !histogram_deltas;
        }

(* ------------------------------------------------------------------ *)
(* trace bench-check                                                   *)
(* ------------------------------------------------------------------ *)

type bench_row = {
  row_name : string;
  ns_per_op : float;
  commit : string option;  (** absent in pre-PR-5 rows *)
  timestamp : string option;  (** ISO-8601; absent in pre-PR-5 rows *)
}

type bench_file = { kernel : string; rows : bench_row list }

let parse_bench content =
  match Json.parse content with
  | Error e -> Error e
  | Ok j ->
      let kernel = Json.string_member "kernel" j ~default:"?" in
      let rows =
        List.filter_map
          (fun row ->
            match Json.member "name" row with
            | Some (Json.Str row_name) ->
                Some
                  {
                    row_name;
                    ns_per_op = Json.float_member "ns_per_op" row ~default:Float.nan;
                    commit =
                      Option.bind (Json.member "commit" row) Json.to_string_opt;
                    timestamp =
                      Option.bind (Json.member "timestamp" row) Json.to_string_opt;
                  }
            | _ -> None)
          (Json.to_list (Option.value ~default:Json.Null (Json.member "rows" j)))
      in
      Ok { kernel; rows }

type regression = {
  r_kernel : string;
  r_name : string;
  from_ns : float;
  to_ns : float;
  change_pct : float;
  from_commit : string;
  to_commit : string;
}

(* The trajectory of one measurement is its rows in timestamp order; rows
   without the stamp (pre-PR-5 format) sort first, among themselves in file
   order — ISO-8601 strings order lexicographically, and the sort is stable,
   so backfilled files interleave correctly. *)
let check_rows ~threshold ~kernel rows =
  let by_name = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      match Hashtbl.find_opt by_name r.row_name with
      | Some l -> Hashtbl.replace by_name r.row_name (r :: l)
      | None ->
          Hashtbl.add by_name r.row_name [ r ];
          order := r.row_name :: !order)
    rows;
  let regressions = ref [] in
  List.iter
    (fun name ->
      let traj = List.rev (Hashtbl.find by_name name) in
      let traj =
        List.stable_sort
          (fun a b ->
            compare
              (Option.value ~default:"" a.timestamp)
              (Option.value ~default:"" b.timestamp))
          traj
      in
      let rec walk = function
        | prev :: next :: rest ->
            if
              Float.is_finite prev.ns_per_op
              && Float.is_finite next.ns_per_op
              && prev.ns_per_op > 0.
              && next.ns_per_op > prev.ns_per_op *. (1. +. (threshold /. 100.))
            then
              regressions :=
                {
                  r_kernel = kernel;
                  r_name = name;
                  from_ns = prev.ns_per_op;
                  to_ns = next.ns_per_op;
                  change_pct = 100. *. ((next.ns_per_op /. prev.ns_per_op) -. 1.);
                  from_commit = Option.value ~default:"?" prev.commit;
                  to_commit = Option.value ~default:"?" next.commit;
                }
                :: !regressions;
            walk (next :: rest)
        | _ -> ()
      in
      walk traj)
    (List.rev !order);
  List.rev !regressions

let pretty_ns ns =
  if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

type check_result = {
  report : string;
  regressions : regression list;
  files_checked : int;
}

(* [files] is (path-or-label, content).  Unreadable JSON is an error, not a
   skip — a gate that ignores a corrupt file is no gate. *)
let check_files ~threshold files =
  let buf = Buffer.create 1024 in
  let all = ref [] in
  let err = ref None in
  List.iter
    (fun (label, content) ->
      match !err with
      | Some _ -> ()
      | None -> (
          match parse_bench content with
          | Error e -> err := Some (Printf.sprintf "%s: %s" label e)
          | Ok { kernel; rows } ->
              let regs = check_rows ~threshold ~kernel rows in
              let trajectories =
                List.length
                  (List.sort_uniq compare (List.map (fun r -> r.row_name) rows))
              in
              Buffer.add_string buf
                (Printf.sprintf
                   "%s: kernel %S, %d rows, %d trajectories, %d regression(s)\n"
                   label kernel (List.length rows) trajectories
                   (List.length regs));
              all := !all @ regs))
    files;
  match !err with
  | Some e -> Error e
  | None ->
      let regs = !all in
      if regs <> [] then begin
        let t =
          Table.create
            ~title:
              (Printf.sprintf "throughput regressions beyond %.0f%%" threshold)
            ~columns:[ "kernel"; "measurement"; "from"; "to"; "change"; "commits" ]
        in
        List.iter
          (fun r ->
            Table.add_row t
              [
                r.r_kernel;
                r.r_name;
                pretty_ns r.from_ns;
                pretty_ns r.to_ns;
                Printf.sprintf "+%.1f%%" r.change_pct;
                Printf.sprintf "%s -> %s" r.from_commit r.to_commit;
              ])
          regs;
        Buffer.add_string buf (Table.render t);
        Buffer.add_char buf '\n'
      end;
      Buffer.add_string buf
        (if regs = [] then
           Printf.sprintf "bench-check OK: no regression beyond %.0f%%\n" threshold
         else
           (* The failure line names every offender: CI logs often show only
              the last line, and "2 regression(s)" alone sends the reader
              back up the page to find out which kernel to care about. *)
           Printf.sprintf "bench-check FAILED: %d regression(s) beyond %.0f%%: %s\n"
             (List.length regs) threshold
             (String.concat ", "
                (List.map
                   (fun r ->
                     Printf.sprintf "%s/%s +%.1f%%" r.r_kernel r.r_name
                       r.change_pct)
                   regs)));
      Ok
        {
          report = Buffer.contents buf;
          regressions = regs;
          files_checked = List.length files;
        }

(* ------------------------------------------------------------------ *)
(* trace metrics-check                                                 *)
(* ------------------------------------------------------------------ *)

(* Validator for OpenMetrics text produced by the dtr-serve telemetry:
   [--metrics] in periodic mode appends whole snapshots, each terminated by
   "# EOF", to one stream.  Structural problems (no terminator, malformed
   sample or TYPE lines) are hard errors; semantic problems — samples
   without a declared family, non-cumulative histogram buckets, a +Inf
   bucket that disagrees with _count, counters that go backwards between
   snapshots — accumulate as violations and trip the gate. *)

type om_sample = {
  om_name : string;
  om_labels : (string * string) list;
  om_value : string;  (* verbatim; parsed on demand *)
}

type om_snapshot = {
  om_families : (string * string) list;  (* name -> type, declaration order *)
  om_samples : om_sample list;
}

let parse_om_labels s =
  (* [s] is the text between the braces. *)
  let n = String.length s in
  let buf = Buffer.create 16 in
  let rec pairs i acc =
    if i >= n then Ok (List.rev acc)
    else
      let rec key j =
        if j >= n then Error "unterminated label"
        else if s.[j] = '=' then Ok j
        else key (j + 1)
      in
      match key i with
      | Error e -> Error e
      | Ok eq ->
          let k = String.sub s i (eq - i) in
          if eq + 1 >= n || s.[eq + 1] <> '"' then
            Error "label value must be quoted"
          else begin
            Buffer.clear buf;
            let rec value j =
              if j >= n then Error "unterminated label value"
              else
                match s.[j] with
                | '\\' ->
                    if j + 1 >= n then Error "dangling escape"
                    else begin
                      (match s.[j + 1] with
                      | 'n' -> Buffer.add_char buf '\n'
                      | c -> Buffer.add_char buf c);
                      value (j + 2)
                    end
                | '"' -> Ok j
                | c ->
                    Buffer.add_char buf c;
                    value (j + 1)
            in
            match value (eq + 2) with
            | Error e -> Error e
            | Ok close ->
                let acc = (k, Buffer.contents buf) :: acc in
                if close + 1 >= n then Ok (List.rev acc)
                else if s.[close + 1] = ',' then pairs (close + 2) acc
                else Error "expected ',' between labels"
          end
  in
  pairs 0 []

let parse_om_sample line =
  let name_end =
    let rec go i =
      if i >= String.length line then i
      else match line.[i] with '{' | ' ' -> i | _ -> go (i + 1)
    in
    go 0
  in
  if name_end = 0 then Error "empty sample name"
  else
    let om_name = String.sub line 0 name_end in
    let rest = String.sub line name_end (String.length line - name_end) in
    let labels_part, value_part =
      if rest <> "" && rest.[0] = '{' then
        match String.index_opt rest '}' with
        | None -> (None, "")
        | Some close ->
            ( Some (String.sub rest 1 (close - 1)),
              String.trim
                (String.sub rest (close + 1) (String.length rest - close - 1)) )
      else (Some "", String.trim rest)
    in
    match labels_part with
    | None -> Error "unterminated label block"
    | Some "" when rest <> "" && rest.[0] = '{' ->
        Error "empty label block"  (* our emitter never writes "{}" *)
    | Some ls -> (
        let labels = if ls = "" then Ok [] else parse_om_labels ls in
        match labels with
        | Error e -> Error e
        | Ok om_labels ->
            if value_part = "" then Error "sample has no value"
            else Ok { om_name; om_labels; om_value = value_part })

let om_float v =
  match v with
  | "+Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | _ -> float_of_string_opt v

(* Split a metrics stream into "# EOF"-terminated snapshots. *)
let split_om_snapshots content =
  let lines = String.split_on_char '\n' content in
  let rec go current snaps = function
    | [] ->
        if List.for_all (fun l -> String.trim l = "") current then
          Ok (List.rev snaps)
        else Error "trailing content after the last # EOF"
    | line :: rest ->
        if String.trim line = "# EOF" then
          go [] (List.rev current :: snaps) rest
        else go (line :: current) snaps rest
  in
  match go [] [] lines with
  | Ok [] -> Error "no # EOF-terminated snapshot found"
  | other -> other

let parse_om_snapshot lines =
  let families = ref [] and samples = ref [] in
  let err = ref None in
  List.iter
    (fun line ->
      if !err <> None || String.trim line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match
          String.split_on_char ' '
            (String.trim (String.sub line 7 (String.length line - 7)))
        with
        | [ name; typ ] when List.mem typ [ "counter"; "gauge"; "histogram" ]
          -> (
            match List.assoc_opt name !families with
            | Some t when t <> typ ->
                err := Some (Printf.sprintf "family %s redeclared as %s" name typ)
            | _ -> families := !families @ [ (name, typ) ])
        | _ -> err := Some (Printf.sprintf "malformed TYPE line: %s" line)
      end
      else if String.length line >= 1 && line.[0] = '#' then ()
        (* HELP/comment lines: tolerated, unchecked *)
      else
        match parse_om_sample line with
        | Error e -> err := Some (Printf.sprintf "%s: %s" e line)
        | Ok s -> samples := !samples @ [ s ])
    lines;
  match !err with
  | Some e -> Error e
  | None -> Ok { om_families = !families; om_samples = !samples }

(* The family a sample belongs to, given the declared names: longest
   declared prefix whose type admits the sample's suffix. *)
let om_family_of snapshot s =
  let admits fname typ =
    match typ with
    | "gauge" -> s.om_name = fname
    | "counter" -> s.om_name = fname ^ "_total"
    | "histogram" ->
        List.exists
          (fun suf -> s.om_name = fname ^ suf)
          [ "_bucket"; "_sum"; "_count" ]
    | _ -> false
  in
  List.find_opt (fun (fname, typ) -> admits fname typ) snapshot.om_families

let om_label_key labels =
  String.concat ","
    (List.sort compare
       (List.map (fun (k, v) -> k ^ "=" ^ v)
          (List.filter (fun (k, _) -> k <> "le") labels)))

type metrics_result = {
  m_rendered : string;
  m_snapshots : int;
  m_violations : string list;
}

let metrics_check content =
  match split_om_snapshots content with
  | Error e -> Error e
  | Ok snapshot_lines -> (
      let parsed =
        List.fold_left
          (fun acc lines ->
            match acc with
            | Error _ -> acc
            | Ok snaps -> (
                match parse_om_snapshot lines with
                | Error e -> Error e
                | Ok s -> Ok (snaps @ [ s ])))
          (Ok []) snapshot_lines
      in
      match parsed with
      | Error e -> Error e
      | Ok snaps ->
          let violations = ref [] in
          let violate fmt =
            Printf.ksprintf (fun s -> violations := s :: !violations) fmt
          in
          (* last-seen value per monotone series key, across snapshots *)
          let monotone : (string, float) Hashtbl.t = Hashtbl.create 64 in
          List.iteri
            (fun si snap ->
              let where = Printf.sprintf "snapshot %d" (si + 1) in
              (* every sample maps to a declared family *)
              List.iter
                (fun s ->
                  match om_family_of snap s with
                  | None ->
                      violate "%s: sample %s has no declared family" where
                        s.om_name
                  | Some (fname, typ) -> (
                      match om_float s.om_value with
                      | None ->
                          violate "%s: %s: unparseable value %S" where
                            s.om_name s.om_value
                      | Some v ->
                          if typ = "counter" then begin
                            if v < 0. || not (Float.is_finite v) then
                              violate "%s: counter %s is %s" where s.om_name
                                s.om_value;
                            let key =
                              fname ^ "{" ^ om_label_key s.om_labels ^ "}"
                            in
                            (match Hashtbl.find_opt monotone key with
                            | Some prev when v < prev ->
                                violate
                                  "counter %s went backwards (%g -> %g) at %s"
                                  key prev v where
                            | _ -> ());
                            Hashtbl.replace monotone key v
                          end))
                snap.om_samples;
              (* histogram shape per (family, labelset) *)
              List.iter
                (fun (fname, typ) ->
                  if typ = "histogram" then begin
                    let groups = Hashtbl.create 8 in
                    let order = ref [] in
                    List.iter
                      (fun s ->
                        if
                          s.om_name = fname ^ "_bucket"
                          || s.om_name = fname ^ "_count"
                        then begin
                          let k = om_label_key s.om_labels in
                          if not (Hashtbl.mem groups k) then begin
                            Hashtbl.add groups k ();
                            order := k :: !order
                          end
                        end)
                      snap.om_samples;
                    List.iter
                      (fun k ->
                        let buckets =
                          List.filter_map
                            (fun s ->
                              if
                                s.om_name = fname ^ "_bucket"
                                && om_label_key s.om_labels = k
                              then
                                Option.map
                                  (fun le -> (le, om_float s.om_value))
                                  (List.assoc_opt "le" s.om_labels)
                              else None)
                            snap.om_samples
                        in
                        let count =
                          List.find_map
                            (fun s ->
                              if
                                s.om_name = fname ^ "_count"
                                && om_label_key s.om_labels = k
                              then om_float s.om_value
                              else None)
                            snap.om_samples
                        in
                        let ctx = Printf.sprintf "%s{%s} (%s)" fname k where in
                        let les =
                          List.map
                            (fun (le, _) ->
                              Option.value ~default:Float.nan (om_float le))
                            buckets
                        in
                        let rec ascending = function
                          | a :: (b :: _ as rest) ->
                              if not (a < b) then
                                violate "%s: le boundaries not increasing" ctx
                              else ascending rest
                          | _ -> ()
                        in
                        ascending les;
                        (match List.rev les with
                        | last :: _ when last <> infinity ->
                            violate "%s: missing le=\"+Inf\" bucket" ctx
                        | [] -> violate "%s: histogram has no buckets" ctx
                        | _ -> ());
                        let values =
                          List.map
                            (fun (_, v) -> Option.value ~default:Float.nan v)
                            buckets
                        in
                        let rec cumulative = function
                          | a :: (b :: _ as rest) ->
                              if b < a then
                                violate "%s: bucket counts not cumulative" ctx
                              else cumulative rest
                          | _ -> ()
                        in
                        cumulative values;
                        (match (List.rev values, count) with
                        | total :: _, Some c when total <> c ->
                            violate
                              "%s: +Inf bucket %g disagrees with _count %g"
                              ctx total c
                        | _, None -> violate "%s: missing _count sample" ctx
                        | _ -> ());
                        (* _count is a monotone series too *)
                        match count with
                        | Some c ->
                            let key = fname ^ "_count{" ^ k ^ "}" in
                            (match Hashtbl.find_opt monotone key with
                            | Some prev when c < prev ->
                                violate
                                  "histogram %s went backwards (%g -> %g) at %s"
                                  key prev c where
                            | _ -> ());
                            Hashtbl.replace monotone key c
                        | None -> ())
                      (List.rev !order)
                  end)
                snap.om_families)
            snaps;
          let violations = List.rev !violations in
          let buf = Buffer.create 256 in
          List.iter (fun v -> Buffer.add_string buf (v ^ "\n")) violations;
          Buffer.add_string buf
            (if violations = [] then
               Printf.sprintf "metrics-check OK: %d snapshot(s) well-formed\n"
                 (List.length snaps)
             else
               Printf.sprintf "metrics-check FAILED: %d violation(s) in %d \
                               snapshot(s)\n"
                 (List.length violations) (List.length snaps));
          Ok
            {
              m_rendered = Buffer.contents buf;
              m_snapshots = List.length snaps;
              m_violations = violations;
            })

(* ------------------------------------------------------------------ *)
(* Convergence rendering (dtr-opt --verbose)                           *)
(* ------------------------------------------------------------------ *)

(* Pure-ASCII sparkline: one glyph per sample, ten intensity levels,
   linearly rescaled over the series range. *)
let spark_levels = " .:-=+*#%@"
let spark_width = 72

(* Long series are bucketed down to [spark_width] glyphs (bucket mean) so a
   415-iteration run still fits one terminal line. *)
let resample values =
  let n = List.length values in
  if n <= spark_width then values
  else begin
    let arr = Array.of_list values in
    List.init spark_width (fun i ->
        let lo = i * n / spark_width and hi = (i + 1) * n / spark_width in
        let hi = max hi (lo + 1) in
        let sum = ref 0. in
        for k = lo to hi - 1 do
          sum := !sum +. arr.(k)
        done;
        !sum /. float_of_int (hi - lo))
  end

let sparkline values =
  match resample values with
  | [] -> ""
  | values ->
      let lo = List.fold_left Float.min Float.infinity values in
      let hi = List.fold_left Float.max Float.neg_infinity values in
      let n = String.length spark_levels in
      String.concat ""
        (List.map
           (fun v ->
             let level =
               if not (Float.is_finite v) then n - 1
               else if hi -. lo < 1e-12 then 0
               else
                 min (n - 1)
                   (int_of_float (float_of_int (n - 1) *. ((v -. lo) /. (hi -. lo))))
             in
             String.make 1 spark_levels.[level])
           values)

let render_convergence series =
  match series with
  | [] -> ""
  | _ ->
      let buf = Buffer.create 1024 in
      let t =
        Table.create ~title:"search convergence (per-iteration telemetry)"
          ~columns:
            [ "series"; "iters"; "first best"; "final best"; "accept%"; "resets" ]
      in
      List.iter
        (fun (name, points) ->
          match (points : Dtr_obs.Convergence.point list) with
          | [] -> ()
          | first :: _ ->
              let last = List.nth points (List.length points - 1) in
              let trials =
                List.fold_left
                  (fun acc p -> acc + p.Dtr_obs.Convergence.trials)
                  0 points
              in
              let accepts =
                List.fold_left
                  (fun acc p -> acc + p.Dtr_obs.Convergence.accepts)
                  0 points
              in
              let resets =
                List.fold_left
                  (fun acc p -> max acc p.Dtr_obs.Convergence.resets)
                  0 points
              in
              let cost p =
                Printf.sprintf "<%.0f, %.0f>" p.Dtr_obs.Convergence.best_lambda
                  p.Dtr_obs.Convergence.best_phi
              in
              Table.add_row t
                [
                  name;
                  string_of_int (List.length points);
                  cost first;
                  cost last;
                  (if trials = 0 then "-"
                   else
                     Printf.sprintf "%.1f"
                       (100. *. float_of_int accepts /. float_of_int trials));
                  string_of_int resets;
                ])
        series;
      Buffer.add_string buf (Table.render t);
      Buffer.add_char buf '\n';
      (* One sparkline per series: the best-phi trajectory, high to low. *)
      let width =
        List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 series
      in
      List.iter
        (fun (name, points) ->
          if points <> [] then
            Buffer.add_string buf
              (Printf.sprintf "  %-*s best-phi %s\n" width name
                 (sparkline
                    (List.map
                       (fun p -> p.Dtr_obs.Convergence.best_phi)
                       points))))
        series;
      Buffer.contents buf

let print_convergence () =
  let s = render_convergence (Dtr_obs.Convergence.all ()) in
  if s <> "" then print_string s

(* ------------------------------------------------------------------ *)
(* Cmdliner terms                                                      *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit codes: 0 clean, 1 gate tripped (count deltas / regressions), 2 bad
   input (unreadable file, malformed JSON). *)
let run_diff a b =
  match (read_file a, read_file b) with
  | exception Sys_error e ->
      Printf.eprintf "trace diff: %s\n" e;
      2
  | ca, cb -> (
      match diff_reports ~label_a:a ~label_b:b ~a:ca ~b:cb with
      | Error e ->
          Printf.eprintf "trace diff: %s\n" e;
          2
      | Ok d ->
          print_string d.rendered;
          if d.count_deltas = 0 && d.histogram_deltas = 0 then 0 else 1)

let run_metrics_check paths =
  match List.map (fun p -> (p, read_file p)) paths with
  | exception Sys_error e ->
      Printf.eprintf "trace metrics-check: %s\n" e;
      2
  | files ->
      let code = ref 0 in
      List.iter
        (fun (label, content) ->
          if !code <> 2 then
            match metrics_check content with
            | Error e ->
                Printf.eprintf "trace metrics-check: %s: %s\n" label e;
                code := 2
            | Ok r ->
                Printf.printf "%s: %s" label r.m_rendered;
                if r.m_violations <> [] && !code = 0 then code := 1)
        files;
      !code

(* A positional argument may be a BENCH file or a directory of them.  A
   directory expands to its BENCH_*.json entries in name order; a missing
   path, or a directory holding no BENCH files, is a hard error (exit 2) —
   the historical failure mode was a CI glob that matched nothing, fed the
   gate zero files and let it "pass" without checking anything. *)
let expand_bench_path p =
  if Sys.file_exists p && Sys.is_directory p then begin
    let entries =
      Array.to_list (Sys.readdir p)
      |> List.filter (fun f ->
             String.length f > 6
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort compare
      |> List.map (Filename.concat p)
    in
    if entries = [] then
      Error (Printf.sprintf "%s: directory contains no BENCH_*.json files" p)
    else Ok entries
  end
  else if Sys.file_exists p then Ok [ p ]
  else Error (Printf.sprintf "%s: no such file or directory" p)

let run_bench_check threshold paths =
  let expanded =
    List.fold_left
      (fun acc p ->
        match (acc, expand_bench_path p) with
        | Error _, _ -> acc
        | Ok _, Error e -> Error e
        | Ok l, Ok files -> Ok (l @ files))
      (Ok []) paths
  in
  match expanded with
  | Error e ->
      Printf.eprintf "trace bench-check: %s\n" e;
      2
  | Ok paths -> (
      match List.map (fun p -> (p, read_file p)) paths with
      | exception Sys_error e ->
          Printf.eprintf "trace bench-check: %s\n" e;
          2
      | files -> (
          match check_files ~threshold files with
          | Error e ->
              Printf.eprintf "trace bench-check: %s\n" e;
              2
          | Ok r ->
              print_string r.report;
              if r.regressions = [] then 0 else 1))

let diff_term =
  let a =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A.json"
           ~doc:"First observability report.")
  in
  let b =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"B.json"
           ~doc:"Second observability report.")
  in
  Term.(const run_diff $ a $ b)

let threshold_arg =
  Arg.(value & opt float 20. & info [ "threshold" ] ~docv:"PCT"
         ~doc:"Flag a ns/op increase beyond $(docv) percent between \
               consecutive rows of a measurement's trajectory.")

let bench_check_term =
  (* [string], not [file]: existence is checked in [expand_bench_path] so a
     missing path reports through the gate's own exit-2 channel (and
     directories are accepted and expanded). *)
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH"
           ~doc:"BENCH_<kernel>.json files, or directories containing them \
                 (a directory expands to its BENCH_*.json entries; empty or \
                 missing is an error).")
  in
  Term.(const run_bench_check $ threshold_arg $ files)

let metrics_check_term =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"METRICS.txt"
           ~doc:"OpenMetrics text files as written by dtr-serve --metrics \
                 (one or more # EOF-terminated snapshots per file).")
  in
  Term.(const run_metrics_check $ files)

let cmd_group ~wrap =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"trace tooling: report diffs and the BENCH perf-regression gate")
    [
      Cmd.v (Cmd.info "diff"
               ~doc:
                 "diff two observability reports span-by-span (exit 1 on \
                  span-count deltas)")
        Term.(const wrap $ diff_term);
      Cmd.v (Cmd.info "bench-check"
               ~doc:
                 "walk BENCH_<kernel>.json trajectories and fail on \
                  throughput regressions (exit 1)")
        Term.(const wrap $ bench_check_term);
      Cmd.v (Cmd.info "metrics-check"
               ~doc:
                 "validate OpenMetrics expositions from dtr-serve --metrics: \
                  well-formed snapshots, cumulative histogram buckets \
                  agreeing with _count, counters monotone across snapshots \
                  (exit 1 on violations)")
        Term.(const wrap $ metrics_check_term);
    ]
