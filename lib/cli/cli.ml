(* Shared Cmdliner plumbing for dtr executables.  Validation lives in
   converters so bad values surface through Cmdliner's own error channel
   (usage message on stderr, exit code 124) instead of ad-hoc
   eprintf-and-exit, which bypassed the man page and broke the exit-code
   contract. *)

let jobs_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | None ->
        Error (`Msg (Printf.sprintf "invalid job count %S, expected an integer" s))
    | Some n when n < 1 ->
        Error (`Msg (Printf.sprintf "job count must be at least 1 (got %d)" n))
    | Some n -> Ok n
  in
  Cmdliner.Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let exec_of_jobs = function
  | Some n -> Dtr_exec.Exec.of_jobs n
  | None -> Dtr_exec.Exec.default ()

let chunk_size_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | None ->
        Error (`Msg (Printf.sprintf "invalid chunk size %S, expected an integer" s))
    | Some n when n < 1 ->
        Error (`Msg (Printf.sprintf "chunk size must be at least 1 (got %d)" n))
    | Some n -> Ok n
  in
  Cmdliner.Arg.conv ~docv:"ITEMS" (parse, Format.pp_print_int)

let apply_chunk_size = function
  | Some _ as s -> Dtr_exec.Exec.set_chunk_size s
  | None -> ()

(* Observability bracket for a CLI run: reset all metrics/spans/traces
   (fixes the stale-counter carry-over between in-process runs), and set the
   optional instrumentation to exactly what this run will consume — on when
   something reads it, off otherwise, so a plain run after an instrumented
   in-process run doesn't keep paying for (or leaking into) stale
   instrumentation.  --trace also enables metrics: the flight recorder
   piggybacks on the Metric-gated span and convergence instrumentation. *)
let obs_start ?log ~verbose ~report ~trace () =
  Dtr_obs.Report.reset ();
  Dtr_obs.Metric.set_enabled (verbose || report <> None || trace <> None);
  Dtr_obs.Trace.set_enabled (trace <> None);
  Dtr_obs.Log.set_path log

let obs_abort () =
  Dtr_obs.Report.reset ();
  Dtr_obs.Metric.set_enabled false;
  Dtr_obs.Trace.set_enabled false;
  Dtr_obs.Log.set_path None

(* Exception-safe form of the bracket: [obs_start] was fire-and-forget, so
   a run that raised after enabling instrumentation leaked enabled metrics,
   half-built span stacks and an open log sink into the next in-process run
   (the bench harness runs kernels back-to-back in one process).  On raise,
   tear all of it down before re-raising. *)
let with_obs ?log ~verbose ~report ~trace f =
  obs_start ?log ~verbose ~report ~trace ();
  match f () with
  | x -> x
  | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      obs_abort ();
      Printexc.raise_with_backtrace exn bt
