(** Traffic-uncertainty models (paper Section V-F).

    Routing solutions are computed against {e base} matrices but evaluated
    against {e actual} traffic.  Two models of the discrepancy:

    - {b Gaussian fluctuation} (measurement error / random variation):
      each demand becomes [r + N(0, eps * r)], clamped at zero;
    - {b hot-spot surges}: a small set of server nodes is selected; each of a
      larger set of client nodes is assigned to a server, and the demand of
      the corresponding SD pair is multiplied by a factor drawn uniformly in
      a given range — in the {e upload} direction (client to server) or the
      {e download} direction (server to client). *)

val gaussian : Dtr_util.Rng.t -> eps:float -> Matrix.t -> Matrix.t
(** [gaussian rng ~eps m]: each non-zero demand [r] is redrawn as
    [max 0 (r + N(0, eps * r))].  The paper uses [eps = 0.2] (±40% with
    ~95% likelihood).  @raise Invalid_argument if [eps < 0]. *)

type hotspot = {
  server_fraction : float;  (** fraction of nodes acting as servers; paper 0.1 *)
  client_fraction : float;  (** fraction of nodes acting as clients; paper 0.5 *)
  factor_min : float;  (** lower end of the surge multiplier; paper 2 *)
  factor_max : float;  (** upper end of the surge multiplier; paper 6 *)
}

val default_hotspot : hotspot

type direction = Upload | Download

type assignment = { servers : int array; client_server : (int * int) array }
(** The drawn hot-spot structure: server nodes, and (client, server) pairs. *)

val draw_assignment :
  Dtr_util.Rng.t -> nodes:int -> hotspot -> assignment
(** Draws servers and assigns each client a uniformly random server.
    Clients are drawn among non-server nodes.
    @raise Invalid_argument if the fractions leave no server or no client. *)

val hotspot :
  Dtr_util.Rng.t ->
  ?spec:hotspot ->
  direction:direction ->
  rd:Matrix.t ->
  rt:Matrix.t ->
  unit ->
  Matrix.t * Matrix.t
(** Applies a freshly drawn assignment to both classes: for each
    (client [i], server [j]) pair the affected demand — [r (i, j)] for
    [Upload], [r (j, i)] for [Download] — is multiplied by an independent
    uniform factor per class, as in the paper's ν and µ multipliers. *)

(** {1 Event stream}

    Perturbations packaged as replayable events — the serve daemon's
    synthetic traffic streams are sequences of these, and the warm-start
    identity tests replay the same sequence out-of-process. *)

type event =
  | Gaussian of { eps : float }
  | Hotspot of { spec : hotspot; direction : direction }

val apply_event :
  Dtr_util.Rng.t -> rd:Matrix.t -> rt:Matrix.t -> event -> Matrix.t * Matrix.t
(** Applies one event to both matrices and returns the perturbed pair.
    The RNG draw order is fixed — delay matrix first, then throughput — so
    replaying the same events against an equal RNG state reproduces the
    same matrices bit-for-bit.
    @raise Invalid_argument as {!gaussian}/{!hotspot} do. *)
