module Rng = Dtr_util.Rng

type spec = { delay_share : float; sigma : float }

let default_spec = { delay_share = 0.3; sigma = 0.5 }

let single ?(sigma = default_spec.sigma) rng ~nodes ~total =
  if nodes < 2 then invalid_arg "Gravity: need at least two nodes";
  if total <= 0. then invalid_arg "Gravity: total volume must be positive";
  let origin = Array.init nodes (fun _ -> Rng.log_normal rng ~mu:0. ~sigma) in
  let dest = Array.init nodes (fun _ -> Rng.log_normal rng ~mu:0. ~sigma) in
  let m = Matrix.create nodes in
  let raw_total = ref 0. in
  for s = 0 to nodes - 1 do
    for t = 0 to nodes - 1 do
      if s <> t then raw_total := !raw_total +. (origin.(s) *. dest.(t))
    done
  done;
  let norm = total /. !raw_total in
  for s = 0 to nodes - 1 do
    for t = 0 to nodes - 1 do
      if s <> t then Matrix.set m ~src:s ~dst:t (origin.(s) *. dest.(t) *. norm)
    done
  done;
  m

let pair ?(spec = default_spec) rng ~nodes ~total =
  if spec.delay_share <= 0. || spec.delay_share >= 1. then
    invalid_arg "Gravity: delay_share outside (0, 1)";
  let rd = single ~sigma:spec.sigma rng ~nodes ~total:(spec.delay_share *. total) in
  let rt = single ~sigma:spec.sigma rng ~nodes ~total:((1. -. spec.delay_share) *. total) in
  (rd, rt)
