(** Traffic matrices.

    A traffic matrix assigns a demand volume (Mb/s) to every ordered
    source–destination pair.  The network carries two of them: [RD]
    (delay-sensitive) and [RT] (throughput-sensitive).  The diagonal is
    always zero. *)

type t

val create : int -> t
(** Zero matrix over [n] nodes. *)

val size : t -> int

val get : t -> src:int -> dst:int -> float

val set : t -> src:int -> dst:int -> float -> unit
(** @raise Invalid_argument on the diagonal, negative volume, or
    out-of-range indices. *)

val copy : t -> t

val total : t -> float
(** Sum of all demands. *)

val scale : t -> float -> t
(** Fresh matrix with every demand multiplied by a non-negative factor. *)

val scale_in_place : t -> float -> unit

val map : t -> (src:int -> dst:int -> float -> float) -> t
(** Pointwise transform; results are clamped at 0. *)

val iter : t -> (src:int -> dst:int -> float -> unit) -> unit
(** Visits only non-zero demands. *)

val pairs : t -> (int * int) list
(** Ordered pairs with non-zero demand. *)

val num_pairs : t -> int

val dense : t -> float array array
(** The underlying [n x n] rows, demand [.(src).(dst)].  Shared, do not
    mutate; this is the representation {!Dtr_spf.Routing.add_loads}
    consumes. *)

val of_dense : float array array -> t
(** Validating copy-in. @raise Invalid_argument on ragged input, negative
    entries, or a non-zero diagonal. *)

val add : t -> t -> t
(** Pointwise sum. @raise Invalid_argument on size mismatch. *)
