module Graph = Dtr_topology.Graph
module Routing = Dtr_spf.Routing

type target = Avg_utilization of float | Max_utilization of float

let unit_weights g = Array.make (Graph.num_arcs g) 1

let utilizations g ~loads =
  Array.map (fun a -> loads.(a.Graph.id) /. a.Graph.capacity) (Graph.arcs g)

let avg_utilization g ~loads =
  let u = utilizations g ~loads in
  Array.fold_left ( +. ) 0. u /. float_of_int (Array.length u)

let max_utilization g ~loads =
  Array.fold_left Float.max 0. (utilizations g ~loads)

let calibrate g ?weights ~rd ~rt target =
  let weights = match weights with Some w -> w | None -> unit_weights g in
  let level, measure =
    match target with
    | Avg_utilization x -> (x, avg_utilization)
    | Max_utilization x -> (x, max_utilization)
  in
  if level <= 0. then invalid_arg "Scaling.calibrate: non-positive target";
  let routing = Routing.compute g ~weights () in
  let loads = Array.make (Graph.num_arcs g) 0. in
  let unrouted_d = Routing.add_loads routing ~demands:(Matrix.dense rd) ~into:loads () in
  let unrouted_t = Routing.add_loads routing ~demands:(Matrix.dense rt) ~into:loads () in
  if unrouted_d > 0. || unrouted_t > 0. then
    invalid_arg "Scaling.calibrate: reference routing cannot place all demands";
  let current = measure g ~loads in
  if current <= 0. then invalid_arg "Scaling.calibrate: matrices carry no traffic";
  let factor = level /. current in
  (Matrix.scale rd factor, Matrix.scale rt factor)
