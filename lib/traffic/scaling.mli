(** Calibration of traffic volume against a topology.

    The paper's experiments are parameterised by load operating points
    ("average link utilization 0.43", "maximum link utilization 0.9", ...)
    measured under normal conditions.  Because arc loads are linear in the
    demand volume for a fixed routing, a traffic matrix pair can be scaled to
    any such operating point by routing it once under a reference routing
    (unit weights, i.e. hop count) and rescaling. *)

type target =
  | Avg_utilization of float  (** mean of load/capacity over all arcs *)
  | Max_utilization of float  (** max of load/capacity over all arcs *)

val unit_weights : Dtr_topology.Graph.t -> int array
(** All-ones weight vector (hop-count routing), the calibration reference. *)

val utilizations : Dtr_topology.Graph.t -> loads:float array -> float array
(** Per-arc load/capacity. *)

val avg_utilization : Dtr_topology.Graph.t -> loads:float array -> float
val max_utilization : Dtr_topology.Graph.t -> loads:float array -> float

val calibrate :
  Dtr_topology.Graph.t ->
  ?weights:int array ->
  rd:Matrix.t ->
  rt:Matrix.t ->
  target ->
  Matrix.t * Matrix.t
(** [calibrate g ~rd ~rt target] scales both matrices by the common factor
    that realises [target] under routing with [weights] (default
    {!unit_weights}).
    @raise Invalid_argument if the matrices carry no traffic or the target
    level is not positive. *)
