module Rng = Dtr_util.Rng

let gaussian rng ~eps m =
  if eps < 0. then invalid_arg "Perturb.gaussian: negative eps";
  Matrix.map m (fun ~src:_ ~dst:_ r ->
      if r = 0. then 0. else r +. Rng.gaussian rng ~mean:0. ~stddev:(eps *. r))

type hotspot = {
  server_fraction : float;
  client_fraction : float;
  factor_min : float;
  factor_max : float;
}

let default_hotspot =
  { server_fraction = 0.1; client_fraction = 0.5; factor_min = 2.; factor_max = 6. }

type direction = Upload | Download

type assignment = { servers : int array; client_server : (int * int) array }

let draw_assignment rng ~nodes spec =
  let num_servers = int_of_float (Float.round (spec.server_fraction *. float_of_int nodes)) in
  let num_clients = int_of_float (Float.round (spec.client_fraction *. float_of_int nodes)) in
  if num_servers < 1 then invalid_arg "Perturb.draw_assignment: no servers";
  if num_clients < 1 then invalid_arg "Perturb.draw_assignment: no clients";
  if num_servers + num_clients > nodes then
    invalid_arg "Perturb.draw_assignment: fractions exceed the node count";
  let chosen = Rng.sample_without_replacement rng (num_servers + num_clients) nodes in
  let servers = Array.sub chosen 0 num_servers in
  let clients = Array.sub chosen num_servers num_clients in
  let client_server = Array.map (fun c -> (c, Rng.pick rng servers)) clients in
  { servers; client_server }

let apply_assignment rng spec ~direction ~assignment m =
  let m' = Matrix.copy m in
  Array.iter
    (fun (client, server) ->
      let src, dst =
        match direction with Upload -> (client, server) | Download -> (server, client)
      in
      let factor = Rng.uniform rng spec.factor_min spec.factor_max in
      Matrix.set m' ~src ~dst (factor *. Matrix.get m ~src ~dst))
    assignment.client_server;
  m'

let hotspot rng ?(spec = default_hotspot) ~direction ~rd ~rt () =
  if spec.factor_min < 1. || spec.factor_max < spec.factor_min then
    invalid_arg "Perturb.hotspot: bad factor range";
  let assignment = draw_assignment rng ~nodes:(Matrix.size rd) spec in
  let rd' = apply_assignment rng spec ~direction ~assignment rd in
  let rt' = apply_assignment rng spec ~direction ~assignment rt in
  (rd', rt')

(* Perturbations as a replayable event stream.  The RNG draw order is part
   of the contract: the delay matrix is perturbed before the throughput
   matrix, so replaying the same events against the same RNG state
   reproduces the same matrices — the serve daemon's synthetic streams and
   the warm-start identity tests both depend on it. *)

type event =
  | Gaussian of { eps : float }
  | Hotspot of { spec : hotspot; direction : direction }

let apply_event rng ~rd ~rt = function
  | Gaussian { eps } ->
      let rd' = gaussian rng ~eps rd in
      let rt' = gaussian rng ~eps rt in
      (rd', rt')
  | Hotspot { spec; direction } -> hotspot rng ~spec ~direction ~rd ~rt ()
