(** Gravity-model traffic generation.

    The paper generates both traffic matrices with the model of its companion
    work (Kwong et al., CoNEXT 2007): every node gets an origin mass and a
    destination mass, the demand between [s] and [t] is proportional to the
    product of [s]'s origin mass and [t]'s destination mass, every SD pair
    carries delay-sensitive traffic, and the delay-sensitive class accounts
    for a configurable share (default 30%) of the total volume.  Masses are
    log-normal, giving the heterogeneous per-pair volumes of real networks. *)

type spec = {
  delay_share : float;  (** fraction of total volume that is delay-sensitive; default 0.3 *)
  sigma : float;  (** log-normal shape of node masses; default 0.5 *)
}

val default_spec : spec

val pair : ?spec:spec -> Dtr_util.Rng.t -> nodes:int -> total:float -> Matrix.t * Matrix.t
(** [pair rng ~nodes ~total] draws [(rd, rt)]: the delay- and
    throughput-sensitive matrices.  Both are full meshes (every off-diagonal
    pair strictly positive); [total rd + total rt = total] up to rounding;
    [total rd = delay_share *. total].
    @raise Invalid_argument if [nodes < 2], [total <= 0], or [delay_share]
    outside (0, 1). *)

val single : ?sigma:float -> Dtr_util.Rng.t -> nodes:int -> total:float -> Matrix.t
(** One gravity matrix normalised to the given total volume. *)
