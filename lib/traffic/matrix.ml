type t = { n : int; rows : float array array }

let create n =
  if n <= 0 then invalid_arg "Matrix.create: need a positive size";
  { n; rows = Array.init n (fun _ -> Array.make n 0.) }

let size t = t.n

let check t src dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Matrix: index out of range"

let get t ~src ~dst =
  check t src dst;
  t.rows.(src).(dst)

let set t ~src ~dst v =
  check t src dst;
  if src = dst then invalid_arg "Matrix.set: diagonal must stay zero";
  if v < 0. then invalid_arg "Matrix.set: negative demand";
  t.rows.(src).(dst) <- v

let copy t = { n = t.n; rows = Array.map Array.copy t.rows }

let total t =
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0. t.rows

let scale_in_place t f =
  if f < 0. then invalid_arg "Matrix.scale: negative factor";
  Array.iter
    (fun row ->
      Array.iteri (fun j v -> row.(j) <- v *. f) row)
    t.rows

let scale t f =
  let t' = copy t in
  scale_in_place t' f;
  t'

let map t f =
  let t' = create t.n in
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      if src <> dst then
        t'.rows.(src).(dst) <- Float.max 0. (f ~src ~dst t.rows.(src).(dst))
    done
  done;
  t'

let iter t f =
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      let v = t.rows.(src).(dst) in
      if v > 0. then f ~src ~dst v
    done
  done

let pairs t =
  let acc = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      if t.rows.(src).(dst) > 0. then acc := (src, dst) :: !acc
    done
  done;
  !acc

let num_pairs t =
  let count = ref 0 in
  iter t (fun ~src:_ ~dst:_ _ -> incr count);
  !count

let dense t = t.rows

let of_dense rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Matrix.of_dense: empty";
  let t = create n in
  Array.iteri
    (fun src row ->
      if Array.length row <> n then invalid_arg "Matrix.of_dense: ragged rows";
      Array.iteri
        (fun dst v ->
          if src = dst then begin
            if v <> 0. then invalid_arg "Matrix.of_dense: non-zero diagonal"
          end
          else begin
            if v < 0. then invalid_arg "Matrix.of_dense: negative demand";
            t.rows.(src).(dst) <- v
          end)
        row)
    rows;
  t

let add a b =
  if a.n <> b.n then invalid_arg "Matrix.add: size mismatch";
  let t = create a.n in
  for src = 0 to a.n - 1 do
    for dst = 0 to a.n - 1 do
      if src <> dst then
        t.rows.(src).(dst) <- a.rows.(src).(dst) +. b.rows.(src).(dst)
    done
  done;
  t
