(** ECMP shortest-path routing: next-hop DAGs, load distribution and
    end-to-end delays.

    Given a weight assignment for one traffic class, this module computes the
    routing state the cost functions need:

    - per-destination shortest-path distances and the {e ECMP next-hop DAG}
      (all outgoing arcs lying on some shortest path);
    - arc loads under {e even splitting}: at every node, flow towards a
      destination divides equally among the node's next hops — the standard
      OSPF/IS-IS ECMP model, also used by Fortz–Thorup;
    - per-SD-pair end-to-end delays over the ECMP DAG, given per-arc delays
      from the delay model: the {e expected} delay under even per-packet
      splitting (used to check SLAs, Eq. (2)) and the {e worst-path} delay.

    Demands are dense [n x n] matrices [d.(s).(t)] in Mb/s. *)

module Graph = Dtr_topology.Graph

type t
(** Routing state for one traffic class on one (possibly failure-reduced)
    topology. *)

type buffers
(** Reusable Dijkstra working set (heap + scratch array).  Sharing one across
    many per-destination recomputations (failure sweeps, the incremental
    engine) keeps the hot path allocation-free.  Not thread-safe. *)

val make_buffers : Graph.t -> buffers

val compute :
  Graph.t -> weights:int array -> ?buffers:buffers -> ?disabled:bool array -> unit -> t
(** Runs one reverse Dijkstra per destination and derives the ECMP DAGs.
    @raise Invalid_argument on malformed weights. *)

val uses_arc : t -> dest:Graph.node -> Graph.arc_id -> bool
(** Whether the arc lies on some shortest path towards [dest] (i.e. belongs
    to the destination's ECMP DAG). *)

val exists_dag_arc : t -> dest:Graph.node -> (Graph.arc_id -> bool) -> bool
(** Whether any arc of [dest]'s ECMP DAG satisfies the predicate — exactly
    the arcs the delay DPs read, so a negative answer certifies that a
    delay-DP result over this destination cannot have changed when only the
    flagged arcs' delays did. *)

val iter_dag_arcs : t -> dest:Graph.node -> (Graph.arc_id -> unit) -> unit
(** Applies the function to every arc of [dest]'s ECMP DAG (each arc appears
    exactly once: hop rows of distinct nodes are disjoint).  The sweep cache
    uses this to invert DAG membership into per-arc destination lists. *)

val with_failed_arcs :
  ?buffers:buffers ->
  ?changed:Graph.node list ->
  t -> weights:int array -> disabled:bool array -> failed:Graph.arc_id list -> t
(** [with_failed_arcs base ~weights ~disabled ~failed] is the routing state
    after the arcs in [failed] go down, computed incrementally from [base]
    (the no-failure state for the same [weights]): destinations whose ECMP
    DAG contains none of the failed arcs share [base]'s data unchanged —
    removing arcs that lie on no shortest path cannot alter any shortest
    path — and the remaining destinations are {e repaired} by the dynamic-SPF
    engine ({!Spf_delta}): only the affected cone of nodes is re-relaxed and
    only the settled nodes' hop rows rebuilt, bit-identically to a
    from-scratch Dijkstra (which [DTR_NO_DSPF=1] or
    {!Spf_delta.set_enabled}[ false] forces instead).  [base] must have been
    computed with every arc enabled, and [disabled] must be the mask
    corresponding to [failed].  [?changed], when given, must be exactly the
    destinations satisfying the [uses_arc] criterion, in increasing order —
    callers that already know the set (the sweep cache keeps per-arc
    destination lists) skip the scan.  Single-failure sweeps, the
    optimizer's dominant cost, become several times cheaper. *)

val with_changed_arc :
  ?buffers:buffers ->
  t -> weights:int array -> arc:Graph.arc_id -> old_weight:int -> t
  * Graph.node list
(** [with_changed_arc base ~weights ~arc ~old_weight] is the routing state
    for [weights], given that [base] was computed for the same weight vector
    except that arc [arc] previously weighed [old_weight].  Only the
    destinations the change can actually affect rerun Dijkstra — for a
    weight increase, destinations whose ECMP DAG uses [arc]; for a decrease,
    destinations where the relaxed arc matches or beats the current distance
    through its tail — every other destination shares [base]'s arrays
    untouched.  Returns the new state plus the recomputed destinations in
    increasing order (empty, with [base] returned as-is, when the weight did
    not change).  The single-arc moves of the local search, the optimizer's
    innermost loop, typically touch a handful of destinations. *)

val reachable : t -> src:Graph.node -> dst:Graph.node -> bool
(** Whether the pair is connected in the routed (surviving) topology. *)

val distance : t -> src:Graph.node -> dst:Graph.node -> int
(** Shortest weight distance; {!Dijkstra.infinity} if unreachable. *)

val next_hops : t -> dest:Graph.node -> node:Graph.node -> Graph.arc_id array
(** Arcs leaving [node] on shortest paths towards [dest] (empty for the
    destination itself and for unreachable nodes).  Returns a fresh array
    sliced out of the destination's packed CSR row — convenient for
    inspection and tests; hot loops use the zero-allocation
    {!iter_next_hops}/{!fold_next_hops} instead. *)

val num_next_hops : t -> dest:Graph.node -> node:Graph.node -> int
(** Length of [node]'s hop row towards [dest], without materializing it. *)

val iter_next_hops : t -> dest:Graph.node -> node:Graph.node -> (Graph.arc_id -> unit) -> unit
(** Applies the function to each next-hop arc in CSR row order — the same
    order {!next_hops} returns — without allocating the slice. *)

val fold_next_hops :
  t -> dest:Graph.node -> node:Graph.node -> init:'a -> ('a -> Graph.arc_id -> 'a) -> 'a
(** Left fold over the hop row in CSR order, allocation-free. *)

val shares_dest : t -> t -> dest:Graph.node -> bool
(** Whether the two states share [dest]'s routing data {e physically} (same
    arrays, not merely equal contents).  The incremental paths
    ({!with_failed_arcs}, {!with_changed_arc}) reuse untouched destinations'
    state by reference; tests use this to assert the sharing actually
    happens. *)

val add_loads :
  t -> demands:float array array -> ?exclude_node:Graph.node -> into:float array -> unit -> float
(** [add_loads t ~demands ~into ()] accumulates the ECMP arc loads of
    [demands] into [into] (indexed by arc id) and returns the total demand
    volume that could {e not} be routed (unreachable pairs).  Demands sourced
    or sunk at [exclude_node] are skipped (node-failure scenarios).
    @raise Invalid_argument on dimension mismatches. *)

val add_loads_dest :
  t -> demands:float array array -> dest:Graph.node -> into:float array -> float
(** Single-destination restriction of {!add_loads} (no node exclusion):
    accumulates only the loads of demand sunk at [dest] and returns that
    destination's unroutable volume.  Because every arc receives at most one
    addition per destination, summing these per-destination contributions in
    destination order reproduces {!add_loads}'s totals bit-for-bit — the
    invariant the incremental evaluation engine builds on. *)

val loads :
  t -> graph:Graph.t -> demands:float array array -> ?exclude_node:Graph.node -> unit ->
  float array * float
(** Convenience wrapper: fresh load array plus unrouted volume. *)

val expected_delays_to :
  t -> arc_delay:float array -> dest:Graph.node -> float array
(** [expected_delays_to t ~arc_delay ~dest] maps each node to its expected
    end-to-end delay to [dest] over the ECMP DAG ([Float.infinity] when
    unreachable; [0.] at the destination).  [arc_delay] is indexed by arc
    id (seconds). *)

val max_delays_to :
  t -> arc_delay:float array -> dest:Graph.node -> float array
(** Worst single shortest path delay instead of the even-split expectation. *)

val bottleneck_to :
  t -> arc_value:float array -> dest:Graph.node -> float array
(** [bottleneck_to t ~arc_value ~dest] maps each node to the largest
    [arc_value] found on any arc of its ECMP DAG towards [dest]
    ([Float.neg_infinity] at the destination, [Float.infinity] when
    unreachable).  With per-arc utilizations this yields the "maximum link
    utilization experienced by an SD pair on its path" metric of the
    paper's Table V. *)

val pair_expected_delay :
  t -> arc_delay:float array -> src:Graph.node -> dst:Graph.node -> float
(** One-pair convenience over {!expected_delays_to} (recomputes the
    destination's DP; prefer the bulk form in loops). *)
