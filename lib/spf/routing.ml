module Graph = Dtr_topology.Graph
module Int_heap = Dtr_util.Int_heap

(* Per-destination routing state, flat-CSR throughout: node [u]'s ECMP
   next-hop arcs occupy [hop_ids.(hop_off.(u)) .. hop_ids.(hop_off.(u+1)-1)]
   (in increasing arc id, matching the graph's out-adjacency order).  Load
   distribution, the delay DPs and the DAG scans all walk these contiguous
   int arrays; per-node boxed rows are gone from the hot path. *)
type dest_state = {
  dist : int array; (* dist.(node) *)
  hop_off : int array; (* length n + 1 *)
  hop_ids : Graph.arc_id array;
  order : Graph.node array;
      (* reachable nodes, sorted by decreasing distance; excludes the
         destination itself *)
}

type t = {
  graph : Graph.t;
  dests : dest_state array; (* indexed by destination *)
}

(* Reusable Dijkstra working set: heap, node-order scratch, per-node rebuild
   flags for the dynamic repair, and the cone-search scratch.  Failure sweeps
   and the incremental evaluation engine run thousands of per-destination
   recomputations; sharing one buffer set across them keeps the hot path
   allocation-free. *)
type buffers = {
  heap : Int_heap.t;
  scratch : int array;
  rebuilt : bool array; (* repair_dest: membership flags for the rebuild set *)
  delta : Spf_delta.scratch;
}

let make_buffers g =
  let n = Graph.num_nodes g in
  {
    heap = Int_heap.create ~capacity:n ();
    scratch = Array.make n 0;
    rebuilt = Array.make n false;
    delta = Spf_delta.make_scratch g;
  }

(* One node's ECMP next-hop row: the enabled out-arcs lying on a shortest
   path.  Both the from-scratch and the dynamic-repair paths build rows with
   these exact criteria, so repaired rows are bit-identical by
   construction. *)
let count_hops g ~weights ~disabled ~d u =
  let off = Graph.out_offsets g and ids = Graph.out_csr g in
  let arc_dst = Graph.arc_dests g in
  let count = ref 0 in
  for i = off.(u) to off.(u + 1) - 1 do
    let id = ids.(i) in
    let ok = match disabled with None -> true | Some m -> not m.(id) in
    if ok && weights.(id) + d.(arc_dst.(id)) = d.(u) then incr count
  done;
  !count

let fill_hops g ~weights ~disabled ~d u ~into ~at =
  let off = Graph.out_offsets g and ids = Graph.out_csr g in
  let arc_dst = Graph.arc_dests g in
  let k = ref at in
  for i = off.(u) to off.(u + 1) - 1 do
    let id = ids.(i) in
    let ok = match disabled with None -> true | Some m -> not m.(id) in
    if ok && weights.(id) + d.(arc_dst.(id)) = d.(u) then begin
      into.(!k) <- id;
      incr k
    end
  done

(* Reachable non-destination nodes by decreasing distance.  [Array.sort] is
   deterministic, so identical distances always yield an identical
   permutation — including tie order — whichever path built [d]. *)
let order_row ~scratch ~d ~dest =
  let n = Array.length d in
  let reachable = ref 0 in
  for u = 0 to n - 1 do
    if u <> dest && d.(u) < Dijkstra.infinity then begin
      scratch.(!reachable) <- u;
      incr reachable
    end
  done;
  let ord = Array.sub scratch 0 !reachable in
  Array.sort (fun a b -> Int.compare d.(b) d.(a)) ord;
  ord

(* Per-destination routing state: distances, the CSR ECMP hop rows, and the
   nodes in decreasing-distance order (upstream nodes first, so load
   distribution processes a node only after all its inflow is known). *)
let compute_dest g ~weights ~disabled ~heap ~scratch dest =
  let n = Graph.num_nodes g in
  let d = Array.make n Dijkstra.infinity in
  Dijkstra.fill_to_destination g ~weights ~disabled ~dest ~dist:d ~heap;
  let hop_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    let len =
      if u <> dest && d.(u) < Dijkstra.infinity then
        count_hops g ~weights ~disabled ~d u
      else 0
    in
    hop_off.(u + 1) <- hop_off.(u) + len
  done;
  let hop_ids = Array.make hop_off.(n) 0 in
  for u = 0 to n - 1 do
    if hop_off.(u + 1) > hop_off.(u) then
      fill_hops g ~weights ~disabled ~d u ~into:hop_ids ~at:hop_off.(u)
  done;
  let order = order_row ~scratch ~d ~dest in
  { dist = d; hop_off; hop_ids; order }

let compute g ~weights ?buffers ?disabled () =
  let n = Graph.num_nodes g in
  let { heap; scratch; _ } =
    match buffers with Some b -> b | None -> make_buffers g
  in
  let dests =
    Array.init n (fun dest -> compute_dest g ~weights ~disabled ~heap ~scratch dest)
  in
  { graph = g; dests }

let exists_dag_arc t ~dest f =
  let st = t.dests.(dest) in
  let ord = st.order and off = st.hop_off and ids = st.hop_ids in
  let rec scan i =
    if i >= Array.length ord then false
    else
      let u = ord.(i) in
      let rec scan_nh j = j < off.(u + 1) && (f ids.(j) || scan_nh (j + 1)) in
      scan_nh off.(u) || scan (i + 1)
  in
  scan 0

let iter_dag_arcs t ~dest f =
  let st = t.dests.(dest) in
  let ord = st.order and off = st.hop_off and ids = st.hop_ids in
  for i = 0 to Array.length ord - 1 do
    let u = ord.(i) in
    for j = off.(u) to off.(u + 1) - 1 do
      f ids.(j)
    done
  done

let uses_arc t ~dest id =
  let s = (Graph.arc_sources t.graph).(id) in
  let st = t.dests.(dest) in
  st.dist.(s) < Dijkstra.infinity
  &&
  let ids = st.hop_ids in
  let rec scan j = j < st.hop_off.(s + 1) && (ids.(j) = id || scan (j + 1)) in
  scan st.hop_off.(s)

let shares_dest a b ~dest = a.dests.(dest) == b.dests.(dest)

(* Dynamic-SPF derivation of one destination's post-failure state: repair the
   affected distance cone, then rebuild exactly the settled nodes' hop rows
   (and the traversal order, only when a distance changed) with the same code
   the from-scratch path uses.  Unchanged rows are blitted verbatim from the
   base CSR.  Bit-identical to [compute_dest] with the failure mask, several
   times cheaper when the cone is small. *)
let repair_dest g ~weights ~disabled ~failed ~buffers base dest =
  let bst = base.dests.(dest) in
  let outcome =
    Spf_delta.repair g ~weights ~mask:disabled ~failed ~dist:bst.dist
      ~hop_off:bst.hop_off ~hop_ids:bst.hop_ids ~heap:buffers.heap
      ~scratch:buffers.delta
  in
  let d = outcome.Spf_delta.dist in
  let n = Graph.num_nodes g in
  let rebuild = outcome.Spf_delta.rebuild in
  let flag = buffers.rebuilt in
  List.iter (fun u -> flag.(u) <- true) rebuild;
  let some_disabled = Some disabled in
  let hop_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    let len =
      if flag.(u) then
        if u <> dest && d.(u) < Dijkstra.infinity then
          count_hops g ~weights ~disabled:some_disabled ~d u
        else 0
      else bst.hop_off.(u + 1) - bst.hop_off.(u)
    in
    hop_off.(u + 1) <- hop_off.(u) + len
  done;
  let hop_ids = Array.make hop_off.(n) 0 in
  for u = 0 to n - 1 do
    let len = hop_off.(u + 1) - hop_off.(u) in
    if flag.(u) then begin
      if len > 0 then
        fill_hops g ~weights ~disabled:some_disabled ~d u ~into:hop_ids
          ~at:hop_off.(u)
    end
    else if len > 0 then
      Array.blit bst.hop_ids bst.hop_off.(u) hop_ids hop_off.(u) len
  done;
  List.iter (fun u -> flag.(u) <- false) rebuild;
  let order =
    if outcome.Spf_delta.changed_dist then
      order_row ~scratch:buffers.scratch ~d ~dest
    else bst.order
  in
  { dist = d; hop_off; hop_ids; order }

let with_failed_arcs ?buffers ?changed base ~weights ~disabled ~failed =
  let g = base.graph in
  let n = Graph.num_nodes g in
  let b = match buffers with Some b -> b | None -> make_buffers g in
  (* Repairing a deleted-arc batch only beats recomputing while the batch is
     a small slice of the graph: once the failure covers roughly an eighth of
     the arcs (a wide SRLG cut or a cascading event) the repair cone reaches
     most destinations and the per-destination bookkeeping costs more than a
     plain Dijkstra.  Both paths are bit-identical, so this is purely a
     performance gate. *)
  let use_repair =
    Spf_delta.enabled () && 8 * List.length failed < Graph.num_arcs g
  in
  (* Callers that already know which destinations route over a failed arc
     (the sweep cache keeps per-arc destination lists) pass the sorted list
     in; otherwise scan.  The list must equal the [uses_arc] criterion. *)
  let remaining = ref (match changed with Some l -> l | None -> []) in
  let is_changed dest =
    match changed with
    | None -> List.exists (fun id -> uses_arc base ~dest id) failed
    | Some _ -> (
        match !remaining with
        | d :: tl when d = dest ->
            remaining := tl;
            true
        | _ -> false)
  in
  let dests = Array.make n base.dests.(0) in
  for dest = 0 to n - 1 do
    (* Arcs on no shortest path towards [dest] can be removed without
       changing any shortest path, so the base state is reused verbatim. *)
    dests.(dest) <-
      (if is_changed dest then
         if use_repair then
           repair_dest g ~weights ~disabled ~failed ~buffers:b base dest
         else
           compute_dest g ~weights ~disabled:(Some disabled) ~heap:b.heap
             ~scratch:b.scratch dest
       else base.dests.(dest))
  done;
  { graph = g; dests }

let with_changed_arc ?buffers base ~weights ~arc ~old_weight =
  let g = base.graph in
  let new_w = weights.(arc) in
  if new_w = old_weight then (base, [])
  else begin
    let n = Graph.num_nodes g in
    let a_src = (Graph.arc_sources g).(arc) and a_dst = (Graph.arc_dests g).(arc) in
    (* A destination is affected only if the changed arc can alter its
       shortest paths: for an increase, the arc must currently lie on one
       (otherwise its slack only grows); for a decrease, the relaxed arc must
       match or beat the current distance through [a_src] ([<=] also catches
       arcs that merely join the ECMP DAG without changing any distance).
       The comparison is safe at [Dijkstra.infinity] because infinity is
       [max_int / 4]: adding a weight never overflows, and an unreachable
       [a_dst] keeps the sum above any finite (or infinite) [a_src]. *)
    let affected dest =
      if new_w > old_weight then uses_arc base ~dest arc
      else
        let d = base.dests.(dest).dist in
        new_w + d.(a_dst) <= d.(a_src)
    in
    let { heap; scratch; _ } =
      match buffers with Some b -> b | None -> make_buffers g
    in
    let dests = Array.make n base.dests.(0) in
    let changed = ref [] in
    for dest = n - 1 downto 0 do
      if affected dest then begin
        dests.(dest) <- compute_dest g ~weights ~disabled:None ~heap ~scratch dest;
        changed := dest :: !changed
      end
      else dests.(dest) <- base.dests.(dest)
    done;
    ({ graph = g; dests }, !changed)
  end

let distance t ~src ~dst = t.dests.(dst).dist.(src)
let reachable t ~src ~dst = src = dst || t.dests.(dst).dist.(src) < Dijkstra.infinity

let next_hops t ~dest ~node =
  let st = t.dests.(dest) in
  let lo = st.hop_off.(node) in
  Array.sub st.hop_ids lo (st.hop_off.(node + 1) - lo)

let num_next_hops t ~dest ~node =
  let st = t.dests.(dest) in
  st.hop_off.(node + 1) - st.hop_off.(node)

let iter_next_hops t ~dest ~node f =
  let st = t.dests.(dest) in
  let off = st.hop_off and ids = st.hop_ids in
  for j = off.(node) to off.(node + 1) - 1 do
    f ids.(j)
  done

let fold_next_hops t ~dest ~node ~init f =
  let st = t.dests.(dest) in
  let off = st.hop_off and ids = st.hop_ids in
  let acc = ref init in
  for j = off.(node) to off.(node + 1) - 1 do
    acc := f !acc ids.(j)
  done;
  !acc

(* Distribute one destination's inbound demand over its ECMP DAG, adding the
   per-arc shares into [into]; returns the unroutable volume.  Every arc
   receives at most one addition per destination (its source node is routed
   once), which the incremental engine relies on to re-sum totals from
   per-destination contributions bit-identically. *)
let route_dest t ~demands ~excluded ~node_flow ~into dest =
  let g = t.graph in
  let n = Graph.num_nodes g in
  let st = t.dests.(dest) in
  let unrouted = ref 0. in
  Array.fill node_flow 0 n 0.;
  let any = ref false in
  for s = 0 to n - 1 do
    let r = demands.(s).(dest) in
    if r > 0. && s <> dest && not (excluded s) then begin
      if st.dist.(s) < Dijkstra.infinity then begin
        node_flow.(s) <- node_flow.(s) +. r;
        any := true
      end
      else unrouted := !unrouted +. r
    end
  done;
  if !any then begin
    let off = st.hop_off and ids = st.hop_ids in
    let arc_dst = Graph.arc_dests g in
    let ord = st.order in
    for i = 0 to Array.length ord - 1 do
      let u = ord.(i) in
      let flow = node_flow.(u) in
      if flow > 0. then begin
        let lo = off.(u) and hi = off.(u + 1) in
        (* Reachable non-destination nodes always have >= 1 next hop. *)
        let share = flow /. float_of_int (hi - lo) in
        for j = lo to hi - 1 do
          let id = ids.(j) in
          into.(id) <- into.(id) +. share;
          let v = arc_dst.(id) in
          if v <> dest then node_flow.(v) <- node_flow.(v) +. share
        done
      end
    done
  end;
  !unrouted

let check_demands t ~demands ~into =
  let g = t.graph in
  let n = Graph.num_nodes g in
  if Array.length demands <> n then invalid_arg "Routing.add_loads: demands rows";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Routing.add_loads: demands cols")
    demands;
  if Array.length into <> Graph.num_arcs g then
    invalid_arg "Routing.add_loads: load array length"

let add_loads t ~demands ~exclude_node ~into () =
  check_demands t ~demands ~into;
  let n = Graph.num_nodes t.graph in
  let excluded v = match exclude_node with None -> false | Some x -> x = v in
  let node_flow = Array.make n 0. in
  let unrouted = ref 0. in
  for dest = 0 to n - 1 do
    if not (excluded dest) then
      unrouted := !unrouted +. route_dest t ~demands ~excluded ~node_flow ~into dest
  done;
  !unrouted

let add_loads t ~demands ?exclude_node ~into () =
  add_loads t ~demands ~exclude_node ~into ()

let add_loads_dest t ~demands ~dest ~into =
  check_demands t ~demands ~into;
  let n = Graph.num_nodes t.graph in
  if dest < 0 || dest >= n then invalid_arg "Routing.add_loads_dest: bad destination";
  let node_flow = Array.make n 0. in
  route_dest t ~demands ~excluded:(fun _ -> false) ~node_flow ~into dest

let loads t ~graph ~demands ?exclude_node () =
  let into = Array.make (Graph.num_arcs graph) 0. in
  let unrouted = add_loads t ~demands ?exclude_node ~into () in
  (into, unrouted)

let expected_delays_to t ~arc_delay ~dest =
  let g = t.graph in
  let n = Graph.num_nodes g in
  if Array.length arc_delay <> Graph.num_arcs g then
    invalid_arg "Routing: arc_delay length mismatch";
  let st = t.dests.(dest) in
  let arc_dst = Graph.arc_dests g in
  let del = Array.make n Float.infinity in
  del.(dest) <- 0.;
  let ord = st.order and off = st.hop_off and ids = st.hop_ids in
  (* Increasing distance: each node's next hops are already resolved. *)
  for i = Array.length ord - 1 downto 0 do
    let u = ord.(i) in
    let lo = off.(u) and hi = off.(u + 1) in
    let total = ref 0. in
    for j = lo to hi - 1 do
      let id = ids.(j) in
      total := !total +. arc_delay.(id) +. del.(arc_dst.(id))
    done;
    del.(u) <- !total /. float_of_int (hi - lo)
  done;
  del

let max_delays_to t ~arc_delay ~dest =
  let g = t.graph in
  let n = Graph.num_nodes g in
  if Array.length arc_delay <> Graph.num_arcs g then
    invalid_arg "Routing: arc_delay length mismatch";
  let st = t.dests.(dest) in
  let arc_dst = Graph.arc_dests g in
  let del = Array.make n Float.infinity in
  del.(dest) <- 0.;
  let ord = st.order and off = st.hop_off and ids = st.hop_ids in
  for i = Array.length ord - 1 downto 0 do
    let u = ord.(i) in
    let worst = ref Float.neg_infinity in
    for j = off.(u) to off.(u + 1) - 1 do
      let id = ids.(j) in
      worst := Float.max !worst (arc_delay.(id) +. del.(arc_dst.(id)))
    done;
    del.(u) <- !worst
  done;
  del

let bottleneck_to t ~arc_value ~dest =
  let g = t.graph in
  let n = Graph.num_nodes g in
  if Array.length arc_value <> Graph.num_arcs g then
    invalid_arg "Routing.bottleneck_to: arc_value length mismatch";
  let st = t.dests.(dest) in
  let arc_dst = Graph.arc_dests g in
  let bn = Array.make n Float.infinity in
  bn.(dest) <- Float.neg_infinity;
  let ord = st.order and off = st.hop_off and ids = st.hop_ids in
  for i = Array.length ord - 1 downto 0 do
    let u = ord.(i) in
    let acc = ref Float.neg_infinity in
    for j = off.(u) to off.(u + 1) - 1 do
      let id = ids.(j) in
      acc := Float.max !acc (Float.max arc_value.(id) bn.(arc_dst.(id)))
    done;
    bn.(u) <- !acc
  done;
  bn

let pair_expected_delay t ~arc_delay ~src ~dst =
  if src = dst then 0. else (expected_delays_to t ~arc_delay ~dest:dst).(src)
