module Graph = Dtr_topology.Graph
module Heap = Dtr_util.Heap

type t = {
  graph : Graph.t;
  dist : int array array; (* dist.(dest).(node) *)
  hops : Graph.arc_id array array array; (* hops.(dest).(node) *)
  order : Graph.node array array;
      (* reachable nodes per destination, sorted by decreasing distance;
         excludes the destination itself *)
}

let no_hops : Graph.arc_id array = [||]

(* Reusable Dijkstra working set: one heap and one node-order scratch array.
   Failure sweeps and the incremental evaluation engine run thousands of
   per-destination recomputations; sharing one buffer set across them keeps
   the hot path allocation-free. *)
type buffers = {
  heap : Graph.node Heap.t;
  scratch : int array;
  delta : Spf_delta.scratch;
}

let make_buffers g =
  let n = Graph.num_nodes g in
  {
    heap = Heap.create ~capacity:n ();
    scratch = Array.make n 0;
    delta = Spf_delta.make_scratch g;
  }

(* One node's ECMP next-hop row: the enabled out-arcs lying on a shortest
   path.  Both the from-scratch and the dynamic-repair paths build rows with
   this exact function, so repaired rows are bit-identical by construction. *)
let hops_row g ~weights ~disabled ~d u =
  let arcs = Graph.arcs g in
  let enabled id = match disabled with None -> true | Some m -> not m.(id) in
  let out = Graph.out_arcs_array g u in
  (* Two passes over the out-arcs: count SPF arcs, then fill. *)
  let count = ref 0 in
  for i = 0 to Array.length out - 1 do
    let id = out.(i) in
    if enabled id && weights.(id) + d.(arcs.(id).Graph.dst) = d.(u) then incr count
  done;
  let nh = Array.make !count 0 in
  let k = ref 0 in
  for i = 0 to Array.length out - 1 do
    let id = out.(i) in
    if enabled id && weights.(id) + d.(arcs.(id).Graph.dst) = d.(u) then begin
      nh.(!k) <- id;
      incr k
    end
  done;
  nh

(* Reachable non-destination nodes by decreasing distance.  [Array.sort] is
   deterministic, so identical distances always yield an identical
   permutation — including tie order — whichever path built [d]. *)
let order_row ~scratch ~d ~dest =
  let n = Array.length d in
  let reachable = ref 0 in
  for u = 0 to n - 1 do
    if u <> dest && d.(u) < Dijkstra.infinity then begin
      scratch.(!reachable) <- u;
      incr reachable
    end
  done;
  let ord = Array.sub scratch 0 !reachable in
  Array.sort (fun a b -> Int.compare d.(b) d.(a)) ord;
  ord

(* Per-destination routing state: distances, ECMP next hops, and the nodes
   in decreasing-distance order (upstream nodes first, so load distribution
   processes a node only after all its inflow is known). *)
let compute_dest g ~weights ~disabled ~heap ~scratch dest =
  let n = Graph.num_nodes g in
  let d = Array.make n Dijkstra.infinity in
  Dijkstra.fill_to_destination g ~weights ~disabled ~dest ~dist:d ~heap;
  let h = Array.make n no_hops in
  for u = 0 to n - 1 do
    if u <> dest && d.(u) < Dijkstra.infinity then
      h.(u) <- hops_row g ~weights ~disabled ~d u
  done;
  let ord = order_row ~scratch ~d ~dest in
  (d, h, ord)

let compute g ~weights ?buffers ?disabled () =
  let n = Graph.num_nodes g in
  let { heap; scratch; _ } =
    match buffers with Some b -> b | None -> make_buffers g
  in
  let dist = Array.make n [||] and hops = Array.make n [||] and order = Array.make n [||] in
  for dest = 0 to n - 1 do
    let d, h, ord = compute_dest g ~weights ~disabled ~heap ~scratch dest in
    dist.(dest) <- d;
    hops.(dest) <- h;
    order.(dest) <- ord
  done;
  { graph = g; dist; hops; order }

let exists_dag_arc t ~dest f =
  let hops = t.hops.(dest) in
  let ord = t.order.(dest) in
  let rec scan i =
    if i >= Array.length ord then false
    else
      let nh = hops.(ord.(i)) in
      let rec scan_nh j = j < Array.length nh && (f nh.(j) || scan_nh (j + 1)) in
      scan_nh 0 || scan (i + 1)
  in
  scan 0

let iter_dag_arcs t ~dest f =
  let hops = t.hops.(dest) in
  let ord = t.order.(dest) in
  for i = 0 to Array.length ord - 1 do
    let nh = hops.(ord.(i)) in
    for j = 0 to Array.length nh - 1 do
      f nh.(j)
    done
  done

let uses_arc t ~dest id =
  let a = (Graph.arcs t.graph).(id) in
  let d = t.dist.(dest) in
  d.(a.Graph.src) < Dijkstra.infinity
  &&
  let nh = t.hops.(dest).(a.Graph.src) in
  Array.exists (fun x -> x = id) nh

(* Dynamic-SPF derivation of one destination's post-failure state: repair the
   affected distance cone, then rebuild exactly the settled nodes' hop rows
   (and the traversal order, only when a distance changed) with the same code
   the from-scratch path uses.  Bit-identical to [compute_dest] with the
   failure mask, several times cheaper when the cone is small. *)
let repair_dest g ~weights ~disabled ~failed ~heap ~scratch ~delta base dest =
  let outcome =
    Spf_delta.repair g ~weights ~mask:disabled ~failed ~dist:base.dist.(dest)
      ~hops:base.hops.(dest) ~heap ~scratch:delta
  in
  let d = outcome.Spf_delta.dist in
  let h = Array.copy base.hops.(dest) in
  List.iter
    (fun u ->
      h.(u) <-
        (if u <> dest && d.(u) < Dijkstra.infinity then
           hops_row g ~weights ~disabled:(Some disabled) ~d u
         else no_hops))
    outcome.Spf_delta.rebuild;
  let ord =
    if outcome.Spf_delta.changed_dist then order_row ~scratch ~d ~dest
    else base.order.(dest)
  in
  (d, h, ord)

let with_failed_arcs ?buffers ?changed base ~weights ~disabled ~failed =
  let g = base.graph in
  let n = Graph.num_nodes g in
  let { heap; scratch; delta } =
    match buffers with Some b -> b | None -> make_buffers g
  in
  let use_repair = Spf_delta.enabled () in
  (* Callers that already know which destinations route over a failed arc
     (the sweep cache keeps per-arc destination lists) pass the sorted list
     in; otherwise scan.  The list must equal the [uses_arc] criterion. *)
  let remaining = ref (match changed with Some l -> l | None -> []) in
  let is_changed dest =
    match changed with
    | None -> List.exists (fun id -> uses_arc base ~dest id) failed
    | Some _ -> (
        match !remaining with
        | d :: tl when d = dest ->
            remaining := tl;
            true
        | _ -> false)
  in
  let dist = Array.make n [||] and hops = Array.make n [||] and order = Array.make n [||] in
  for dest = 0 to n - 1 do
    (* Arcs on no shortest path towards [dest] can be removed without
       changing any shortest path, so the base state is reused verbatim. *)
    if is_changed dest then begin
      let d, h, ord =
        if use_repair then
          repair_dest g ~weights ~disabled ~failed ~heap ~scratch ~delta base
            dest
        else
          compute_dest g ~weights ~disabled:(Some disabled) ~heap ~scratch dest
      in
      dist.(dest) <- d;
      hops.(dest) <- h;
      order.(dest) <- ord
    end
    else begin
      dist.(dest) <- base.dist.(dest);
      hops.(dest) <- base.hops.(dest);
      order.(dest) <- base.order.(dest)
    end
  done;
  { graph = g; dist; hops; order }

let with_changed_arc ?buffers base ~weights ~arc ~old_weight =
  let g = base.graph in
  let new_w = weights.(arc) in
  if new_w = old_weight then (base, [])
  else begin
    let n = Graph.num_nodes g in
    let a = (Graph.arcs g).(arc) in
    (* A destination is affected only if the changed arc can alter its
       shortest paths: for an increase, the arc must currently lie on one
       (otherwise its slack only grows); for a decrease, the relaxed arc must
       match or beat the current distance through [a.src] ([<=] also catches
       arcs that merely join the ECMP DAG without changing any distance).
       The comparison is safe at [Dijkstra.infinity] because infinity is
       [max_int / 4]: adding a weight never overflows, and an unreachable
       [a.dst] keeps the sum above any finite (or infinite) [a.src]. *)
    let affected dest =
      if new_w > old_weight then uses_arc base ~dest arc
      else
        let d = base.dist.(dest) in
        new_w + d.(a.Graph.dst) <= d.(a.Graph.src)
    in
    let { heap; scratch; _ } =
      match buffers with Some b -> b | None -> make_buffers g
    in
    let dist = Array.make n [||] and hops = Array.make n [||] and order = Array.make n [||] in
    let changed = ref [] in
    for dest = n - 1 downto 0 do
      if affected dest then begin
        let d, h, ord = compute_dest g ~weights ~disabled:None ~heap ~scratch dest in
        dist.(dest) <- d;
        hops.(dest) <- h;
        order.(dest) <- ord;
        changed := dest :: !changed
      end
      else begin
        dist.(dest) <- base.dist.(dest);
        hops.(dest) <- base.hops.(dest);
        order.(dest) <- base.order.(dest)
      end
    done;
    ({ graph = g; dist; hops; order }, !changed)
  end

let distance t ~src ~dst = t.dist.(dst).(src)
let reachable t ~src ~dst = src = dst || t.dist.(dst).(src) < Dijkstra.infinity
let next_hops t ~dest ~node = t.hops.(dest).(node)

(* Distribute one destination's inbound demand over its ECMP DAG, adding the
   per-arc shares into [into]; returns the unroutable volume.  Every arc
   receives at most one addition per destination (its source node is routed
   once), which the incremental engine relies on to re-sum totals from
   per-destination contributions bit-identically. *)
let route_dest t ~demands ~excluded ~node_flow ~into dest =
  let g = t.graph in
  let n = Graph.num_nodes g in
  let unrouted = ref 0. in
  Array.fill node_flow 0 n 0.;
  let any = ref false in
  for s = 0 to n - 1 do
    let r = demands.(s).(dest) in
    if r > 0. && s <> dest && not (excluded s) then begin
      if t.dist.(dest).(s) < Dijkstra.infinity then begin
        node_flow.(s) <- node_flow.(s) +. r;
        any := true
      end
      else unrouted := !unrouted +. r
    end
  done;
  if !any then begin
    let hops = t.hops.(dest) in
    let route u =
      let flow = node_flow.(u) in
      if flow > 0. then begin
        let nh = hops.(u) in
        let k = Array.length nh in
        (* Reachable non-destination nodes always have >= 1 next hop. *)
        let share = flow /. float_of_int k in
        Array.iter
          (fun id ->
            into.(id) <- into.(id) +. share;
            let v = (Graph.arc g id).Graph.dst in
            if v <> dest then node_flow.(v) <- node_flow.(v) +. share)
          nh
      end
    in
    Array.iter route t.order.(dest)
  end;
  !unrouted

let check_demands t ~demands ~into =
  let g = t.graph in
  let n = Graph.num_nodes g in
  if Array.length demands <> n then invalid_arg "Routing.add_loads: demands rows";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Routing.add_loads: demands cols")
    demands;
  if Array.length into <> Graph.num_arcs g then
    invalid_arg "Routing.add_loads: load array length"

let add_loads t ~demands ~exclude_node ~into () =
  check_demands t ~demands ~into;
  let n = Graph.num_nodes t.graph in
  let excluded v = match exclude_node with None -> false | Some x -> x = v in
  let node_flow = Array.make n 0. in
  let unrouted = ref 0. in
  for dest = 0 to n - 1 do
    if not (excluded dest) then
      unrouted := !unrouted +. route_dest t ~demands ~excluded ~node_flow ~into dest
  done;
  !unrouted

let add_loads t ~demands ?exclude_node ~into () =
  add_loads t ~demands ~exclude_node ~into ()

let add_loads_dest t ~demands ~dest ~into =
  check_demands t ~demands ~into;
  let n = Graph.num_nodes t.graph in
  if dest < 0 || dest >= n then invalid_arg "Routing.add_loads_dest: bad destination";
  let node_flow = Array.make n 0. in
  route_dest t ~demands ~excluded:(fun _ -> false) ~node_flow ~into dest

let loads t ~graph ~demands ?exclude_node () =
  let into = Array.make (Graph.num_arcs graph) 0. in
  let unrouted = add_loads t ~demands ?exclude_node ~into () in
  (into, unrouted)

let delay_dp ~combine t ~arc_delay ~dest =
  let g = t.graph in
  let n = Graph.num_nodes g in
  if Array.length arc_delay <> Graph.num_arcs g then
    invalid_arg "Routing: arc_delay length mismatch";
  let del = Array.make n Float.infinity in
  del.(dest) <- 0.;
  let ord = t.order.(dest) in
  (* Increasing distance: each node's next hops are already resolved. *)
  for i = Array.length ord - 1 downto 0 do
    let u = ord.(i) in
    del.(u) <- combine g t.hops.(dest).(u) arc_delay del
  done;
  del

let expected_delays_to t ~arc_delay ~dest =
  let combine g nh arc_delay del =
    let total = ref 0. in
    Array.iter
      (fun id -> total := !total +. arc_delay.(id) +. del.((Graph.arc g id).Graph.dst))
      nh;
    !total /. float_of_int (Array.length nh)
  in
  delay_dp ~combine t ~arc_delay ~dest

let max_delays_to t ~arc_delay ~dest =
  let combine g nh arc_delay del =
    Array.fold_left
      (fun acc id ->
        Float.max acc (arc_delay.(id) +. del.((Graph.arc g id).Graph.dst)))
      Float.neg_infinity nh
  in
  delay_dp ~combine t ~arc_delay ~dest

let bottleneck_to t ~arc_value ~dest =
  let g = t.graph in
  let n = Graph.num_nodes g in
  if Array.length arc_value <> Graph.num_arcs g then
    invalid_arg "Routing.bottleneck_to: arc_value length mismatch";
  let bn = Array.make n Float.infinity in
  bn.(dest) <- Float.neg_infinity;
  let ord = t.order.(dest) in
  for i = Array.length ord - 1 downto 0 do
    let u = ord.(i) in
    bn.(u) <-
      Array.fold_left
        (fun acc id ->
          Float.max acc
            (Float.max arc_value.(id) bn.((Graph.arc g id).Graph.dst)))
        Float.neg_infinity
        t.hops.(dest).(u)
  done;
  bn

let pair_expected_delay t ~arc_delay ~src ~dst =
  if src = dst then 0. else (expected_delays_to t ~arc_delay ~dest:dst).(src)
