module Graph = Dtr_topology.Graph
module Int_heap = Dtr_util.Int_heap

(* DTR_NO_DSPF=1 forces every failure evaluation back onto the from-scratch
   per-destination Dijkstra, both here and in the evaluator's sweep cache.
   The reference path must stay reachable for A/B benchmarking and CI. *)
let enabled_flag =
  ref
    (match Sys.getenv_opt "DTR_NO_DSPF" with
    | Some s when s <> "" && s <> "0" -> false
    | _ -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Node states during the affected-cone search.  A node is [`Queued] once it
   may have lost shortest-path support, and settles as either [`Unaffected]
   (some surviving next hop still reaches an unaffected head, so its distance
   is unchanged — only its hop row may shrink) or [`Affected] (every old
   shortest path is cut, so its distance strictly increases or becomes
   infinite). *)
let untouched = 0
let queued = 1
let unaffected = 2
let affected = 3

type scratch = {
  state : int array;
  touched : int array;
  (* every node whose [state] left [untouched]; reset set *)
  mutable n_touched : int;
  processed : int array;
  (* nodes settled by the cone search, in pop order; exactly the nodes whose
     hop rows must be rebuilt *)
  mutable n_processed : int;
  mutable affected_rev : Graph.node list;
}

let make_scratch g =
  let n = Graph.num_nodes g in
  {
    state = Array.make n untouched;
    touched = Array.make n 0;
    n_touched = 0;
    processed = Array.make n 0;
    n_processed = 0;
    affected_rev = [];
  }

type outcome = {
  dist : int array;
  rebuild : Graph.node list;
  changed_dist : bool;
}

let in_row hop_ids ~lo ~hi id =
  let rec scan i = i < hi && (hop_ids.(i) = id || scan (i + 1)) in
  scan lo

(* Affected-cone identification (Ramalingam–Reps deletion phase), specialised
   to the reverse per-destination SPF.  The worklist pops nodes in increasing
   {e old} distance; every next-hop head of a popped node has strictly smaller
   old distance (weights are positive), so all heads are already settled when
   the support test runs.  Nodes never enqueued keep their distance {e and}
   their hop row: none of their hop arcs failed (else they would be seeds) and
   none lead to an affected head (else the predecessor scan of that head would
   have enqueued them), and arc deletion never decreases a distance, so no new
   arc can join their DAG row.  Hop rows arrive as the destination's CSR pair
   ([hop_off]/[hop_ids]); all per-arc lookups go through the graph's flat
   arrays. *)
let repair g ~weights ~mask ~failed ~dist:base_dist ~hop_off ~hop_ids ~heap
    ~scratch =
  let arc_src = Graph.arc_sources g and arc_dst = Graph.arc_dests g in
  let in_off = Graph.in_offsets g and in_ids = Graph.in_csr g in
  let st = scratch.state in
  let mark_touched v =
    scratch.touched.(scratch.n_touched) <- v;
    scratch.n_touched <- scratch.n_touched + 1
  in
  Int_heap.clear heap;
  (* Seeds: tails of failed arcs that lie on some old shortest path. *)
  List.iter
    (fun id ->
      let s = arc_src.(id) in
      if
        st.(s) = untouched
        && base_dist.(s) < Dijkstra.infinity
        && in_row hop_ids ~lo:hop_off.(s) ~hi:hop_off.(s + 1) id
      then begin
        st.(s) <- queued;
        mark_touched s;
        Int_heap.push heap base_dist.(s) s
      end)
    failed;
  while not (Int_heap.is_empty heap) do
    (* Each node is pushed at most once (guarded by [state]). *)
    let x = Int_heap.pop_min heap in
    let supported = ref false in
    for i = hop_off.(x) to hop_off.(x + 1) - 1 do
      let id = hop_ids.(i) in
      if (not mask.(id)) && st.(arc_dst.(id)) <> affected then
        supported := true
    done;
    scratch.processed.(scratch.n_processed) <- x;
    scratch.n_processed <- scratch.n_processed + 1;
    if !supported then st.(x) <- unaffected
    else begin
      st.(x) <- affected;
      scratch.affected_rev <- x :: scratch.affected_rev;
      (* Enqueue the old-DAG predecessors: arcs (p -> x) with
         w + dist(x) = dist(p).  The base state has every arc enabled, so
         the distance criterion is exactly hop-row membership.  All such p
         have strictly larger old distance than x, hence are unsettled. *)
      for i = in_off.(x) to in_off.(x + 1) - 1 do
        let id = in_ids.(i) in
        let p = arc_src.(id) in
        if st.(p) = untouched && weights.(id) + base_dist.(x) = base_dist.(p)
        then begin
          st.(p) <- queued;
          mark_touched p;
          Int_heap.push heap base_dist.(p) p
        end
      done
    end
  done;
  let affected_nodes = List.rev scratch.affected_rev in
  let dist, changed_dist =
    if affected_nodes = [] then (base_dist, false)
    else begin
      let d = Array.copy base_dist in
      Dijkstra.repair_arc_removal g ~weights ~disabled:(Some mask) ~dist:d
        ~heap
        ~is_affected:(fun v -> st.(v) = affected)
        ~affected:affected_nodes;
      (d, true)
    end
  in
  let rebuild = ref [] in
  for i = scratch.n_processed - 1 downto 0 do
    rebuild := scratch.processed.(i) :: !rebuild
  done;
  (* Reset the scratch for the next destination. *)
  for i = 0 to scratch.n_touched - 1 do
    st.(scratch.touched.(i)) <- untouched
  done;
  scratch.n_touched <- 0;
  scratch.n_processed <- 0;
  scratch.affected_rev <- [];
  { dist; rebuild = !rebuild; changed_dist }
