module Graph = Dtr_topology.Graph

type path = {
  arcs : Graph.arc_id list;
  probability : float;
  weight : int;
  prop_delay : float;
}

type enumeration = { paths : path list; truncated : bool }

let enumerate ?(limit = 1000) g routing ~src ~dst =
  if limit < 1 then invalid_arg "Paths.enumerate: limit must be positive";
  if src = dst || not (Routing.reachable routing ~src ~dst) then
    { paths = []; truncated = false }
  else begin
    let truncated = ref false in
    let found = ref 0 in
    (* DFS over the ECMP DAG; next hops strictly decrease the remaining
       distance, so the recursion terminates. *)
    let rec walk node prob delay rev_arcs =
      if !found >= limit then begin
        truncated := true;
        []
      end
      else if node = dst then begin
        incr found;
        [ { arcs = List.rev rev_arcs;
            probability = prob;
            weight = Routing.distance routing ~src ~dst;
            prop_delay = delay;
          } ]
      end
      else begin
        let k = Routing.num_next_hops routing ~dest:dst ~node in
        (* Fold the CSR hop row directly (no slice allocation), collecting
           the sublists in reverse and concatenating back in row order so
           the enumeration order — and therefore which paths survive the
           [limit] cut — is unchanged. *)
        let parts =
          Routing.fold_next_hops routing ~dest:dst ~node ~init:[]
            (fun acc id ->
              let a = Graph.arc g id in
              walk a.Graph.dst
                (prob /. float_of_int k)
                (delay +. a.Graph.delay)
                (id :: rev_arcs)
              :: acc)
        in
        List.concat (List.rev parts)
      end
    in
    let paths = walk src 1.0 0. [] in
    let by_probability a b =
      match Float.compare b.probability a.probability with
      | 0 -> compare a.arcs b.arcs
      | c -> c
    in
    { paths = List.sort by_probability paths; truncated = !truncated }
  end

let count g routing ~src ~dst =
  if src = dst || not (Routing.reachable routing ~src ~dst) then 0
  else begin
    let n = Graph.num_nodes g in
    let memo = Array.make n (-1) in
    let cap = max_int / 2 in
    let rec ways node =
      if node = dst then 1
      else if memo.(node) >= 0 then memo.(node)
      else begin
        let total =
          Routing.fold_next_hops routing ~dest:dst ~node ~init:0
            (fun acc id ->
              let v = ways (Graph.arc g id).Graph.dst in
              if acc > cap - v then cap else acc + v)
        in
        memo.(node) <- total;
        total
      end
    in
    ways src
  end

let nodes_of_path g p =
  match p.arcs with
  | [] -> []
  | first :: _ ->
      (Graph.arc g first).Graph.src
      :: List.map (fun id -> (Graph.arc g id).Graph.dst) p.arcs

let pp_path g ppf p =
  let nodes = nodes_of_path g p in
  Format.fprintf ppf "%s (p=%.4g, %.1f ms)"
    (String.concat " -> " (List.map string_of_int nodes))
    p.probability (p.prop_delay *. 1000.)
