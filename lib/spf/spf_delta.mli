(** Dynamic-SPF repair for arc deletions (Ramalingam–Reps style).

    Failure sweeps delete a handful of arcs from an otherwise unchanged
    topology.  For each destination whose ECMP DAG actually uses a deleted
    arc, only a {e cone} of upstream nodes can change distance: a node is
    affected exactly when every one of its old shortest-path next hops is
    either deleted or leads to another affected node.  This module identifies
    that cone from the cached distance array and next-hop rows, and repairs
    the affected distances with a bounded re-relaxation
    ({!Dijkstra.repair_arc_removal}) seeded from the cone's frontier — the
    rest of the destination's state is reused verbatim.

    The repaired distances are bit-identical to a from-scratch Dijkstra
    (shortest distances are canonical), and the caller rebuilds hop rows and
    the traversal order with the very same code the from-scratch path uses,
    so the whole derived routing state matches the reference computation
    bit-for-bit. *)

module Graph = Dtr_topology.Graph

val enabled : unit -> bool
(** Whether the dynamic-SPF repair engine is active.  Defaults to [true];
    the environment variable [DTR_NO_DSPF] (set to anything but ["0"] or the
    empty string) forces the from-scratch path instead. *)

val set_enabled : bool -> unit
(** Override the engine switch programmatically (the CLI's [--no-dspf]). *)

type scratch
(** Reusable working set for the cone search (state flags + reset lists).
    Not thread-safe; use one per domain. *)

val make_scratch : Graph.t -> scratch

type outcome = {
  dist : int array;
      (** Post-failure distances for the destination.  Physically the base
          array when no distance changed, a fresh repaired copy otherwise;
          never a mutation of the base. *)
  rebuild : Graph.node list;
      (** Nodes whose next-hop rows must be rebuilt (the settled cone-search
          nodes: affected nodes plus unaffected nodes that lost hop arcs).
          Every other node's hop row is unchanged. *)
  changed_dist : bool;
      (** Whether any distance changed (iff the affected cone is non-empty).
          When [false] the traversal order is also unchanged. *)
}

val repair :
  Graph.t ->
  weights:int array ->
  mask:bool array ->
  failed:Graph.arc_id list ->
  dist:int array ->
  hop_off:int array ->
  hop_ids:Graph.arc_id array ->
  heap:Dtr_util.Int_heap.t ->
  scratch:scratch ->
  outcome
(** [repair g ~weights ~mask ~failed ~dist ~hop_off ~hop_ids ~heap ~scratch]
    repairs one destination's distance array after the arcs in [failed] go
    down.  [dist] and the CSR hop rows ([hop_off]/[hop_ids], node [u]'s
    shortest-path out-arcs at [hop_ids.(hop_off.(u)) ..
    hop_ids.(hop_off.(u+1) - 1)]) are the destination's {e base} (no-failure)
    state for the same weights and must have been computed with every arc
    enabled; they are not mutated.  [mask] is the disabled-arc mask
    corresponding to [failed].  [heap] is free for reuse by the caller
    afterwards. *)
