(** Single-source / single-destination shortest path distances.

    IGP routing (OSPF/IS-IS, and their multi-topology extensions) forwards
    along shortest paths w.r.t. configured integer arc weights.  Destination-
    based forwarding means the natural primitive is the {e reverse} Dijkstra:
    distances from every node {e to} a destination, computed over reversed
    arcs.  Unreachable nodes get distance {!val:infinity}. *)

val infinity : int
(** Sentinel distance for unreachable nodes ([max_int / 4]; safe to add
    weights to without overflow). *)

val to_destination :
  Dtr_topology.Graph.t ->
  weights:int array ->
  ?disabled:bool array ->
  dest:Dtr_topology.Graph.node ->
  unit ->
  int array
(** [to_destination g ~weights ~dest ()] is the array of shortest distances
    from each node to [dest] along enabled arcs.  [weights] is indexed by arc
    id and must be positive.
    @raise Invalid_argument on size mismatches or non-positive weights. *)

val from_source :
  Dtr_topology.Graph.t ->
  weights:int array ->
  ?disabled:bool array ->
  src:Dtr_topology.Graph.node ->
  unit ->
  int array
(** Forward counterpart: distances from [src] to every node. *)

val fill_to_destination :
  Dtr_topology.Graph.t ->
  weights:int array ->
  disabled:bool array option ->
  dest:Dtr_topology.Graph.node ->
  dist:int array ->
  heap:Dtr_util.Int_heap.t ->
  unit
(** Allocation-free variant used by the optimizer's inner loop: writes into
    [dist] and reuses [heap].  Iterates the graph's flat-CSR adjacency with
    an unboxed int-keyed heap, so a settled run touches only contiguous int
    arrays. *)

val repair_arc_removal :
  Dtr_topology.Graph.t ->
  weights:int array ->
  disabled:bool array option ->
  dist:int array ->
  heap:Dtr_util.Int_heap.t ->
  is_affected:(Dtr_topology.Graph.node -> bool) ->
  affected:Dtr_topology.Graph.node list ->
  unit
(** [repair_arc_removal g ~weights ~disabled ~dist ~heap ~is_affected
    ~affected] re-settles exactly the nodes in [affected] after arc
    deletions, in place: their entries in [dist] are reset to
    {!val:infinity}, seeded with the cheapest enabled escape into an
    unaffected neighbour, and re-relaxed Dijkstra-style along enabled arcs
    whose tails are affected.  Entries of unaffected nodes must already hold
    their (unchanged) post-deletion distances; they are read but never
    written.  The result is bit-identical to a from-scratch run because
    shortest distances are canonical.  Used by {!Spf_delta.repair}. *)
