(** Explicit enumeration of ECMP shortest paths.

    The routing engine works on next-hop DAGs and never materialises paths;
    operators and tests, however, often want to see them.  This module
    enumerates, for an SD pair, every path of the ECMP DAG together with the
    probability that a packet follows it under even per-hop splitting (the
    product of [1 / #next-hops] along the path).

    The number of ECMP paths can grow exponentially with the network size,
    so enumeration takes an explicit [limit] and reports truncation. *)

module Graph = Dtr_topology.Graph

type path = {
  arcs : Graph.arc_id list;  (** in forwarding order *)
  probability : float;  (** even-split probability of this path *)
  weight : int;  (** path length w.r.t. the class weights (same for all) *)
  prop_delay : float;  (** sum of propagation delays, seconds *)
}

type enumeration = {
  paths : path list;  (** highest probability first; ties by first-hop arc id *)
  truncated : bool;  (** [true] when [limit] stopped the enumeration *)
}

val enumerate :
  ?limit:int ->
  Graph.t ->
  Routing.t ->
  src:Graph.node ->
  dst:Graph.node ->
  enumeration
(** [enumerate g routing ~src ~dst] lists the ECMP paths (default [limit]
    1000).  An unreachable or degenerate ([src = dst]) pair yields no
    paths.  @raise Invalid_argument if [limit < 1]. *)

val count : Graph.t -> Routing.t -> src:Graph.node -> dst:Graph.node -> int
(** Number of ECMP paths, computed by dynamic programming without
    enumeration (safe for large DAGs; saturates at [max_int / 2]). *)

val nodes_of_path : Graph.t -> path -> Graph.node list
(** The node sequence of a path, source first. *)

val pp_path : Graph.t -> Format.formatter -> path -> unit
(** ["0 -> 4 -> 7 (p=0.25, 12.3 ms)"]. *)
