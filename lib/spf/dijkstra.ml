module Graph = Dtr_topology.Graph
module Int_heap = Dtr_util.Int_heap

let infinity = max_int / 4

let check g weights =
  if Array.length weights <> Graph.num_arcs g then
    invalid_arg "Dijkstra: weights length mismatch";
  Array.iter (fun w -> if w <= 0 then invalid_arg "Dijkstra: weights must be positive") weights

(* Standard Dijkstra with lazy deletion over the CSR adjacency; [off]/[ids]
   select the direction ([in_offsets]/[in_csr] with [arc_sources] as heads
   for distances-to-destination).  Everything touched per relaxation — the
   offset table, packed arc ids, weights, head nodes, distances and the heap
   — is a flat int array, so the loop allocates nothing and walks contiguous
   memory.  The final distance array is canonical (independent of heap tie
   order), which is what every bit-identity argument downstream rests on. *)
let run ~weights ~disabled ~start ~off ~ids ~head ~dist ~heap =
  Array.fill dist 0 (Array.length dist) infinity;
  Int_heap.clear heap;
  dist.(start) <- 0;
  Int_heap.push heap 0 start;
  match disabled with
  | None ->
      while not (Int_heap.is_empty heap) do
        let key = Int_heap.min_key heap in
        let u = Int_heap.pop_min heap in
        if key = dist.(u) then
          for i = off.(u) to off.(u + 1) - 1 do
            let id = ids.(i) in
            let v = head.(id) in
            let alt = key + weights.(id) in
            if alt < dist.(v) then begin
              dist.(v) <- alt;
              Int_heap.push heap alt v
            end
          done
      done
  | Some mask ->
      while not (Int_heap.is_empty heap) do
        let key = Int_heap.min_key heap in
        let u = Int_heap.pop_min heap in
        if key = dist.(u) then
          for i = off.(u) to off.(u + 1) - 1 do
            let id = ids.(i) in
            if not mask.(id) then begin
              let v = head.(id) in
              let alt = key + weights.(id) in
              if alt < dist.(v) then begin
                dist.(v) <- alt;
                Int_heap.push heap alt v
              end
            end
          done
      done

let fill_to_destination g ~weights ~disabled ~dest ~dist ~heap =
  check g weights;
  if Array.length dist <> Graph.num_nodes g then
    invalid_arg "Dijkstra: dist length mismatch";
  run ~weights ~disabled ~start:dest ~off:(Graph.in_offsets g)
    ~ids:(Graph.in_csr g) ~head:(Graph.arc_sources g) ~dist ~heap

let to_destination g ~weights ?disabled ~dest () =
  let dist = Array.make (Graph.num_nodes g) infinity in
  let heap = Int_heap.create ~capacity:(Graph.num_nodes g) () in
  fill_to_destination g ~weights ~disabled ~dest ~dist ~heap;
  dist

(* Bounded re-relaxation for the dynamic-SPF repair: only the nodes in
   [affected] are re-settled, seeded with their best escape into the
   unaffected region (whose distances are final — arc deletion never
   decreases a distance, so no unaffected node can improve through the
   repaired cone).  Distances outside [affected] are read but never
   written. *)
let repair_arc_removal g ~weights ~disabled ~dist ~heap ~is_affected ~affected =
  let out_off = Graph.out_offsets g and out_ids = Graph.out_csr g in
  let in_off = Graph.in_offsets g and in_ids = Graph.in_csr g in
  let arc_src = Graph.arc_sources g and arc_dst = Graph.arc_dests g in
  let enabled id = match disabled with None -> true | Some m -> not m.(id) in
  Int_heap.clear heap;
  List.iter (fun x -> dist.(x) <- infinity) affected;
  List.iter
    (fun x ->
      let best = ref infinity in
      for i = out_off.(x) to out_off.(x + 1) - 1 do
        let id = out_ids.(i) in
        if enabled id then begin
          let y = arc_dst.(id) in
          if not (is_affected y) then begin
            let alt = weights.(id) + dist.(y) in
            if alt < !best then best := alt
          end
        end
      done;
      if !best < infinity then begin
        dist.(x) <- !best;
        Int_heap.push heap !best x
      end)
    affected;
  while not (Int_heap.is_empty heap) do
    let key = Int_heap.min_key heap in
    let u = Int_heap.pop_min heap in
    if key = dist.(u) then
      for i = in_off.(u) to in_off.(u + 1) - 1 do
        let id = in_ids.(i) in
        if enabled id then begin
          let p = arc_src.(id) in
          if is_affected p then begin
            let alt = key + weights.(id) in
            if alt < dist.(p) then begin
              dist.(p) <- alt;
              Int_heap.push heap alt p
            end
          end
        end
      done
  done

let from_source g ~weights ?disabled ~src () =
  check g weights;
  let dist = Array.make (Graph.num_nodes g) infinity in
  let heap = Int_heap.create ~capacity:(Graph.num_nodes g) () in
  run ~weights ~disabled ~start:src ~off:(Graph.out_offsets g)
    ~ids:(Graph.out_csr g) ~head:(Graph.arc_dests g) ~dist ~heap;
  dist
