module Graph = Dtr_topology.Graph
module Heap = Dtr_util.Heap

let infinity = max_int / 4

let check g weights =
  if Array.length weights <> Graph.num_arcs g then
    invalid_arg "Dijkstra: weights length mismatch";
  Array.iter (fun w -> if w <= 0 then invalid_arg "Dijkstra: weights must be positive") weights

(* Standard Dijkstra with lazy deletion; [arcs_of] and [other_end] select the
   direction (reverse arcs for distances-to-destination). *)
let run g ~weights ~disabled ~start ~arcs_of ~other_end ~dist ~heap =
  Array.fill dist 0 (Array.length dist) infinity;
  Heap.clear heap;
  dist.(start) <- 0;
  Heap.push heap 0. start;
  let arcs = Graph.arcs g in
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (key, u) ->
        if int_of_float key = dist.(u) then begin
          let adjacent = arcs_of u in
          for i = 0 to Array.length adjacent - 1 do
            let id = adjacent.(i) in
            let skip = match disabled with None -> false | Some mask -> mask.(id) in
            if not skip then begin
              let v = other_end arcs.(id) in
              let alt = dist.(u) + weights.(id) in
              if alt < dist.(v) then begin
                dist.(v) <- alt;
                Heap.push heap (float_of_int alt) v
              end
            end
          done
        end;
        loop ()
  in
  loop ()

let fill_to_destination g ~weights ~disabled ~dest ~dist ~heap =
  check g weights;
  if Array.length dist <> Graph.num_nodes g then
    invalid_arg "Dijkstra: dist length mismatch";
  run g ~weights ~disabled ~start:dest
    ~arcs_of:(Graph.in_arcs_array g)
    ~other_end:(fun a -> a.Graph.src)
    ~dist ~heap

let to_destination g ~weights ?disabled ~dest () =
  let dist = Array.make (Graph.num_nodes g) infinity in
  let heap = Heap.create ~capacity:(Graph.num_nodes g) () in
  fill_to_destination g ~weights ~disabled ~dest ~dist ~heap;
  dist

(* Bounded re-relaxation for the dynamic-SPF repair: only the nodes in
   [affected] are re-settled, seeded with their best escape into the
   unaffected region (whose distances are final — arc deletion never
   decreases a distance, so no unaffected node can improve through the
   repaired cone).  Distances outside [affected] are read but never
   written. *)
let repair_arc_removal g ~weights ~disabled ~dist ~heap ~is_affected ~affected =
  let arcs = Graph.arcs g in
  let enabled id = match disabled with None -> true | Some m -> not m.(id) in
  Heap.clear heap;
  List.iter (fun x -> dist.(x) <- infinity) affected;
  List.iter
    (fun x ->
      let out = Graph.out_arcs_array g x in
      let best = ref infinity in
      for i = 0 to Array.length out - 1 do
        let id = out.(i) in
        if enabled id then begin
          let y = arcs.(id).Graph.dst in
          if not (is_affected y) then begin
            let alt = weights.(id) + dist.(y) in
            if alt < !best then best := alt
          end
        end
      done;
      if !best < infinity then begin
        dist.(x) <- !best;
        Heap.push heap (float_of_int !best) x
      end)
    affected;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (key, u) ->
        if int_of_float key = dist.(u) then begin
          let inc = Graph.in_arcs_array g u in
          for i = 0 to Array.length inc - 1 do
            let id = inc.(i) in
            if enabled id then begin
              let p = arcs.(id).Graph.src in
              if is_affected p then begin
                let alt = dist.(u) + weights.(id) in
                if alt < dist.(p) then begin
                  dist.(p) <- alt;
                  Heap.push heap (float_of_int alt) p
                end
              end
            end
          done
        end;
        loop ()
  in
  loop ()

let from_source g ~weights ?disabled ~src () =
  check g weights;
  let dist = Array.make (Graph.num_nodes g) infinity in
  let heap = Heap.create ~capacity:(Graph.num_nodes g) () in
  run g ~weights ~disabled ~start:src
    ~arcs_of:(Graph.out_arcs_array g)
    ~other_end:(fun a -> a.Graph.dst)
    ~dist ~heap;
  dist
