module Graph = Dtr_topology.Graph
module Heap = Dtr_util.Heap

let infinity = max_int / 4

let check g weights =
  if Array.length weights <> Graph.num_arcs g then
    invalid_arg "Dijkstra: weights length mismatch";
  Array.iter (fun w -> if w <= 0 then invalid_arg "Dijkstra: weights must be positive") weights

(* Standard Dijkstra with lazy deletion; [arcs_of] and [other_end] select the
   direction (reverse arcs for distances-to-destination). *)
let run g ~weights ~disabled ~start ~arcs_of ~other_end ~dist ~heap =
  Array.fill dist 0 (Array.length dist) infinity;
  Heap.clear heap;
  dist.(start) <- 0;
  Heap.push heap 0. start;
  let arcs = Graph.arcs g in
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (key, u) ->
        if int_of_float key = dist.(u) then begin
          let adjacent = arcs_of u in
          for i = 0 to Array.length adjacent - 1 do
            let id = adjacent.(i) in
            let skip = match disabled with None -> false | Some mask -> mask.(id) in
            if not skip then begin
              let v = other_end arcs.(id) in
              let alt = dist.(u) + weights.(id) in
              if alt < dist.(v) then begin
                dist.(v) <- alt;
                Heap.push heap (float_of_int alt) v
              end
            end
          done
        end;
        loop ()
  in
  loop ()

let fill_to_destination g ~weights ~disabled ~dest ~dist ~heap =
  check g weights;
  if Array.length dist <> Graph.num_nodes g then
    invalid_arg "Dijkstra: dist length mismatch";
  run g ~weights ~disabled ~start:dest
    ~arcs_of:(Graph.in_arcs_array g)
    ~other_end:(fun a -> a.Graph.src)
    ~dist ~heap

let to_destination g ~weights ?disabled ~dest () =
  let dist = Array.make (Graph.num_nodes g) infinity in
  let heap = Heap.create ~capacity:(Graph.num_nodes g) () in
  fill_to_destination g ~weights ~disabled ~dest ~dist ~heap;
  dist

let from_source g ~weights ?disabled ~src () =
  check g weights;
  let dist = Array.make (Graph.num_nodes g) infinity in
  let heap = Heap.create ~capacity:(Graph.num_nodes g) () in
  run g ~weights ~disabled ~start:src
    ~arcs_of:(Graph.out_arcs_array g)
    ~other_end:(fun a -> a.Graph.dst)
    ~dist ~heap;
  dist
