type t = { lambda : float; phi : float }

let make ~lambda ~phi = { lambda; phi }

let lambda_tolerance = 1e-6

let lambda_cmp a b =
  if Float.abs (a -. b) <= lambda_tolerance then 0 else Float.compare a b

let compare a b =
  match lambda_cmp a.lambda b.lambda with
  | 0 -> Float.compare a.phi b.phi
  | c -> c

let is_better a ~than = compare a than < 0

(* Sound early-abort test for monotone partial sums.  [partial] is a
   componentwise lower bound of a candidate's final cost (both components
   accumulate non-negative per-destination / per-scenario terms in a fixed
   order).  [prunes] answers "is every completion [c >= partial]
   (componentwise) certainly not better than [than]?":

   - [partial.lambda > than.lambda + tol]: every completion's [lambda]
     stays strictly above the tolerance band, so [compare c than > 0]
     whatever [phi] does.
   - [partial.lambda >= than.lambda - tol] and [partial.phi >= than.phi]:
     a completion either leaves the band upward (first case) or stays
     lambda-tied, where [phi >= than.phi] decides [compare c than >= 0].

   In both cases [is_better c ~than] is false, so abandoning the candidate
   cannot change which moves the search accepts — the abort is exact, not
   heuristic.  Note the two branches cannot be folded into a single
   componentwise bound: [compare] is not transitive across the tolerance
   band, so callers needing "worse than a AND worse than b" must test both
   bounds explicitly. *)
let prunes partial ~than =
  partial.lambda > than.lambda +. lambda_tolerance
  || (partial.lambda >= than.lambda -. lambda_tolerance && partial.phi >= than.phi)

let equal a b =
  lambda_cmp a.lambda b.lambda = 0
  && Float.abs (a.phi -. b.phi) <= 1e-9 *. Float.max 1. (Float.abs b.phi)

let add a b = { lambda = a.lambda +. b.lambda; phi = a.phi +. b.phi }

let zero = { lambda = 0.; phi = 0. }

let improvement ~from ~to_ =
  if not (is_better to_ ~than:from) then 0.
  else if lambda_cmp from.lambda to_.lambda > 0 then
    (from.lambda -. to_.lambda) /. Float.max from.lambda lambda_tolerance
  else (from.phi -. to_.phi) /. Float.max from.phi 1e-12

let pp ppf t = Format.fprintf ppf "<L=%.4f, Phi=%.4f>" t.lambda t.phi
