module Graph = Dtr_topology.Graph

type params = { kappa : float; mu : float; linearize_at : float }

let default = { kappa = 1500. *. 8. /. 1e6; mu = 0.95; linearize_at = 0.99 }

let queueing_delay p ~capacity ~load =
  if capacity <= 0. then invalid_arg "Delay_model: non-positive capacity";
  if load < 0. then invalid_arg "Delay_model: negative load";
  let util = load /. capacity in
  if util <= p.mu then 0.
  else begin
    let mm1 x = p.kappa /. capacity *. ((x /. (capacity -. x)) +. 1.) in
    if util < p.linearize_at then mm1 load
    else begin
      (* Linear continuation matching the value and slope of the M/M/1 term
         at the linearisation point (paper footnote 3). *)
      let x0 = p.linearize_at *. capacity in
      let v0 = mm1 x0 in
      let slope = p.kappa /. ((capacity -. x0) *. (capacity -. x0)) in
      v0 +. (slope *. (load -. x0))
    end
  end

let arc_delay p ~capacity ~prop ~load = prop +. queueing_delay p ~capacity ~load

let fill_arc_delays p g ~loads ~into =
  let m = Graph.num_arcs g in
  if Array.length loads <> m || Array.length into <> m then
    invalid_arg "Delay_model.fill_arc_delays: length mismatch";
  let cap = Graph.arc_capacities g and prop = Graph.arc_prop_delays g in
  for a = 0 to m - 1 do
    into.(a) <- arc_delay p ~capacity:cap.(a) ~prop:prop.(a) ~load:loads.(a)
  done

let arc_delays p g ~loads =
  let into = Array.make (Graph.num_arcs g) 0. in
  fill_arc_delays p g ~loads ~into;
  into
