(** Lexicographic global cost [K = <Lambda, Phi>].

    The paper gives precedence to delay-sensitive traffic: a routing is
    better only if it lowers [Lambda] (the SLA penalty), or keeps [Lambda]
    essentially equal and lowers [Phi] (the congestion cost).  Because
    [Lambda] is built from the additive penalty [B1] plus small excess terms,
    "essentially equal" is equality up to a small tolerance; all comparisons
    below take it into account. *)

type t = { lambda : float; phi : float }

val make : lambda:float -> phi:float -> t

val lambda_tolerance : float
(** Absolute tolerance under which two [Lambda] values compare equal
    (1e-6; [Lambda]'s natural granularity is [B1] = 100). *)

val compare : t -> t -> int
(** Lexicographic: [Lambda] first (with tolerance), then [Phi]. *)

val is_better : t -> than:t -> bool
(** Strictly smaller in the lexicographic order. *)

val prunes : t -> than:t -> bool
(** [prunes partial ~than] certifies that {e no} completion [c] with
    [c.lambda >= partial.lambda] and [c.phi >= partial.phi] satisfies
    [is_better c ~than] — the early-abort test the bounded pricers apply to
    destination-ordered partial sums (whose components only grow).  Exact
    under the tolerance semantics of {!compare}: a [true] answer can never
    change which candidate a search accepts.  Because [compare] is not
    transitive across the lambda tolerance band, bounds do not compose by
    taking a componentwise minimum; prune against several incumbents by
    conjoining [prunes] calls. *)

val equal : t -> t -> bool
(** Both components equal (with the [Lambda] tolerance; [Phi] compared with
    a relative tolerance of 1e-9). *)

val add : t -> t -> t
(** Componentwise sum — used to compound costs over failure scenarios
    ([Kfail] sums [Lambda_fail,l] and [Phi_fail,l] over scenarios). *)

val zero : t

val improvement : from:t -> to_:t -> float
(** Relative improvement used by the stopping rule ("cost reductions are
    less than c%"): the relative decrease of [Lambda] if [Lambda] changed
    (beyond tolerance), otherwise the relative decrease of [Phi]; 0 when
    [to_] is not better. *)

val pp : Format.formatter -> t -> unit
