(** Fortz–Thorup congestion cost for throughput-sensitive traffic.

    The paper reuses the classic load cost of Fortz & Thorup (INFOCOM 2000):
    a convex piecewise-linear function of the arc load [x] relative to the
    capacity [c], with derivative

    {v
      1     for 0      <= x/c < 1/3
      3     for 1/3    <= x/c < 2/3
      10    for 2/3    <= x/c < 9/10
      70    for 9/10   <= x/c < 1
      500   for 1      <= x/c < 11/10
      5000  for 11/10  <= x/c
    v}

    The network cost [Phi] sums the arc cost over the arcs that carry
    throughput-sensitive traffic (the paper's set [L]).  [Phi] is also
    reported {e normalised} by the uncapacitated lower bound
    [Phi_uncap = sum over pairs (demand * min-hop-count)] — Fortz &
    Thorup's scaling, which makes values comparable across instances (the
    figures of the paper plot costs of that magnitude). *)

val arc_cost : capacity:float -> load:float -> float
(** Piecewise-linear cost of one arc.
    @raise Invalid_argument on non-positive capacity or negative load. *)

val derivative : capacity:float -> load:float -> float
(** Slope of {!arc_cost} at the given load (right derivative at
    breakpoints). *)

val total :
  Dtr_topology.Graph.t ->
  loads:float array ->
  carries_throughput:(Dtr_topology.Graph.arc_id -> bool) ->
  float
(** [total g ~loads ~carries_throughput] sums {!arc_cost} of the total load
    over the arcs selected by the predicate. *)

val uncapacitated_bound :
  Dtr_topology.Graph.t -> demands:float array array -> float
(** [Phi_uncap]: every demand routed over min-hop paths at unit cost per
    arc — the normalisation denominator. *)
