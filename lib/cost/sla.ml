type params = { theta : float; b1 : float; b2 : float }

let default = { theta = 0.025; b1 = 100.; b2 = 1. }

let with_theta theta =
  if theta <= 0. then invalid_arg "Sla.with_theta: bound must be positive";
  { default with theta }

let is_violation p xi = xi > p.theta

let unreachable_penalty p = p.b1 +. (p.b2 *. p.theta *. 1000.)

let pair_penalty p xi =
  if xi = Float.infinity then unreachable_penalty p
  else if is_violation p xi then p.b1 +. (p.b2 *. (xi -. p.theta) *. 1000.)
  else 0.
