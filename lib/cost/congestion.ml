module Graph = Dtr_topology.Graph

(* Segment boundaries (as utilization) and slopes of the Fortz-Thorup cost. *)
let breaks = [| 0.; 1. /. 3.; 2. /. 3.; 0.9; 1.0; 1.1 |]
let slopes = [| 1.; 3.; 10.; 70.; 500.; 5000. |]

let check ~capacity ~load =
  if capacity <= 0. then invalid_arg "Congestion: non-positive capacity";
  if load < 0. then invalid_arg "Congestion: negative load"

let arc_cost ~capacity ~load =
  check ~capacity ~load;
  (* Accumulate slope * overlap over each segment the load spans. *)
  let cost = ref 0. in
  for i = 0 to Array.length breaks - 1 do
    let seg_start = breaks.(i) *. capacity in
    let seg_end =
      if i + 1 < Array.length breaks then breaks.(i + 1) *. capacity else Float.infinity
    in
    if load > seg_start then
      cost := !cost +. (slopes.(i) *. (Float.min load seg_end -. seg_start))
  done;
  !cost

let derivative ~capacity ~load =
  check ~capacity ~load;
  let util = load /. capacity in
  let rec find i =
    if i + 1 >= Array.length breaks then slopes.(i)
    else if util < breaks.(i + 1) then slopes.(i)
    else find (i + 1)
  in
  find 0

let total g ~loads ~carries_throughput =
  let cap = Graph.arc_capacities g in
  let m = Graph.num_arcs g in
  let acc = ref 0. in
  for a = 0 to m - 1 do
    if carries_throughput a then
      acc := !acc +. arc_cost ~capacity:cap.(a) ~load:loads.(a)
  done;
  !acc

(* Min-hop distances to [dest] by reverse BFS. *)
let hop_distances g dest =
  let n = Graph.num_nodes g in
  let dist = Array.make n (-1) in
  dist.(dest) <- 0;
  let queue = Queue.create () in
  Queue.add dest queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun id ->
        let v = (Graph.arc g id).Graph.src in
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.in_arcs g u)
  done;
  dist

let uncapacitated_bound g ~demands =
  let n = Graph.num_nodes g in
  if Array.length demands <> n then
    invalid_arg "Congestion.uncapacitated_bound: demands size mismatch";
  let acc = ref 0. in
  for dest = 0 to n - 1 do
    let dist = hop_distances g dest in
    for src = 0 to n - 1 do
      if src <> dest && dist.(src) > 0 then
        acc := !acc +. (demands.(src).(dest) *. float_of_int dist.(src))
    done
  done;
  !acc
