(** SLA penalty for delay-sensitive traffic — Eq. (2) of the paper.

    A source–destination pair with end-to-end delay [xi] against the SLA
    bound [theta] incurs

    {v
      Lambda (s,t) = 0                                  if xi <= theta   (2a)
      Lambda (s,t) = B1 + B2 * (xi - theta)             otherwise        (2b)
    v}

    with [B1 = 100] (fixed violation penalty) and [B2 = 1] per millisecond of
    excess (the paper leaves the unit implicit; delays in its setting are
    tens of milliseconds, so a per-ms excess makes the two terms
    commensurate).  The network-wide cost [Lambda] is the sum over all pairs
    carrying delay-sensitive traffic.

    An SD pair disconnected by a failure is unconditionally a violation; we
    charge it [B1 + B2 * theta] (see DESIGN.md). *)

type params = {
  theta : float;  (** SLA delay bound, seconds (paper default 25 ms) *)
  b1 : float;  (** fixed violation penalty; paper 100 *)
  b2 : float;  (** penalty per millisecond of excess; paper 1 *)
}

val default : params
(** [theta] = 25 ms, [B1] = 100, [B2] = 1. *)

val with_theta : float -> params
(** Default penalties with a different bound (Table V sweeps theta). *)

val is_violation : params -> float -> bool
(** [true] when the delay (seconds; may be [Float.infinity]) exceeds
    [theta]. *)

val pair_penalty : params -> float -> float
(** Penalty of one pair given its end-to-end delay; handles the
    disconnected ([infinity]) case. *)

val unreachable_penalty : params -> float
(** [B1 + B2 * theta_ms], the charge for a disconnected pair. *)
