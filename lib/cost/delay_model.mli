(** Link delay model — Eq. (1) of the paper.

    The delay of arc [l] carrying total traffic [x] on capacity [C] with
    propagation delay [p] is

    {v
      D(x) = p                                   if x / C <= mu        (1a)
      D(x) = kappa / C * (x / (C - x) + 1) + p   otherwise             (1b)
    v}

    i.e. queueing delay is neglected below the utilization threshold [mu]
    (paper: 0.95, justified for high-speed backbones), and modelled as M/M/1
    above it ([kappa] is the average packet size; the "+1" accounts for the
    transmission time of the packet itself).  To avoid the singularity at
    [x -> C], the M/M/1 term is continued linearly (value- and
    slope-matched) above a utilization of 0.99, following the paper's
    footnote 3. *)

type params = {
  kappa : float;  (** average packet size, Mbit (1500 B = 0.012 Mbit) *)
  mu : float;  (** utilization threshold below which queueing is ignored *)
  linearize_at : float;  (** utilization beyond which (1b) is linearised *)
}

val default : params
(** Paper values: [kappa] = 1500 bytes, [mu] = 0.95, linearisation at 0.99. *)

val arc_delay : params -> capacity:float -> prop:float -> load:float -> float
(** Delay in seconds of one arc.  Total load (both classes) in Mb/s.
    @raise Invalid_argument on non-positive capacity or negative load. *)

val queueing_delay : params -> capacity:float -> load:float -> float
(** The queueing component alone ([arc_delay] minus [prop]). *)

val arc_delays :
  params -> Dtr_topology.Graph.t -> loads:float array -> float array
(** Per-arc delays for a whole load vector (indexed by arc id). *)

val fill_arc_delays :
  params -> Dtr_topology.Graph.t -> loads:float array -> into:float array -> unit
(** Allocation-free variant for the optimizer's inner loop. *)
