(** Evaluation of a DTR weight setting.

    Given a weight setting [W], this module routes both traffic classes with
    ECMP shortest paths (independently, on their respective logical
    topologies), sums the two classes' loads on every arc (the paper's shared
    FIFO assumption), derives per-arc delays with Eq. (1), and produces the
    global cost [K = <Lambda, Phi>]:

    - [Lambda]: total SLA penalty (Eq. (2)) over all SD pairs carrying
      delay-sensitive traffic, using the expected end-to-end delay over the
      ECMP DAG;
    - [Phi]: Fortz–Thorup congestion cost of the total load, summed over
      arcs that carry throughput-sensitive traffic.

    A {!Dtr_topology.Failure.t} scenario evaluates the same weight setting on
    the surviving topology — weights are {e not} re-optimised after a
    failure, only shortest paths are recomputed, exactly as in IP routing
    with static weights.  Node scenarios also drop the failed node's sourced
    and sunk traffic. *)

module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure

type detail = {
  cost : Lexico.t;
  violations : int;  (** SD pairs whose delay exceeds the SLA bound *)
  unreachable_pairs : int;  (** delay-class pairs disconnected by the failure *)
  loads : float array;  (** total per-arc load (both classes), Mb/s *)
  throughput_loads : float array;  (** throughput-class component *)
  pair_delays : (int * int * float) array;
      (** per delay-class SD pair (src, dst, expected delay in seconds);
          empty unless requested *)
}

val evaluate :
  Scenario.t ->
  ?failure:Failure.t ->
  ?rd:Dtr_traffic.Matrix.t ->
  ?rt:Dtr_traffic.Matrix.t ->
  ?want_pair_delays:bool ->
  Weights.t ->
  detail
(** Full evaluation.  [rd]/[rt] override the scenario's matrices (used to
    test a solution against perturbed traffic, Section V-F).
    @raise Invalid_argument on malformed weights. *)

val cost : Scenario.t -> ?failure:Failure.t -> Weights.t -> Lexico.t
(** Cost-only wrapper around {!evaluate}. *)

val sweep :
  Scenario.t -> ?exec:Dtr_exec.Exec.t -> Weights.t -> Failure.t list -> Lexico.t array
(** Cost of the setting under each scenario, in order (empty list — empty
    array).  Sweeps share the no-failure routing and re-route only the
    destinations each failure actually affects, so they are much cheaper
    than repeated {!evaluate} calls.

    The whole sweep family takes an optional execution context (default:
    {!Dtr_exec.Exec.default}, i.e. serial unless [DTR_JOBS] is set).  Under
    a parallel context the per-failure evaluations are distributed over a
    domain pool, each domain using its own cached scratch; results are
    written back by scenario index and reduced in order, so every cost is
    {e bit-identical} to the serial path for any job count. *)

val sweep_details :
  Scenario.t ->
  ?exec:Dtr_exec.Exec.t ->
  ?rd:Dtr_traffic.Matrix.t ->
  ?rt:Dtr_traffic.Matrix.t ->
  Weights.t ->
  Failure.t list ->
  detail list
(** Full per-scenario details of a sweep (without pair delays). *)

val normal_and_sweep :
  Scenario.t ->
  ?exec:Dtr_exec.Exec.t ->
  Weights.t ->
  failures:Failure.t list ->
  feasible:(Lexico.t -> bool) ->
  Lexico.t * Lexico.t option
(** Phase-2 fast path: computes the normal cost, applies the caller's
    feasibility test (Eqs. (5)–(6)), and — only if feasible — compounds the
    failure sweep, reusing the normal routing state for both steps.
    Returns [(normal cost, compounded failure cost if feasible)]. *)

val compound_sweep_from :
  Scenario.t ->
  ?exec:Dtr_exec.Exec.t ->
  routing_d:Dtr_spf.Routing.t ->
  routing_t:Dtr_spf.Routing.t ->
  Weights.t ->
  failures:Failure.t list ->
  Lexico.t
(** Compounded failure-sweep cost of [w] starting from already-computed
    no-failure routing bases for both classes (the scenario's own traffic
    matrices).  {!normal_and_sweep} is this plus the normal assessment; the
    Phase-2 incremental path calls it directly with the evaluation engine's
    cached bases, so a single-arc move never recomputes the no-failure
    routing from scratch. *)

type bounded_sweep =
  | Swept of Lexico.t  (** the exact compound, all failures priced *)
  | Aborted_at of Lexico.t
      (** the monotone partial at the abort — a certified componentwise
          lower bound on the full compound *)

val compound_sweep_bounded :
  Scenario.t ->
  ?exec:Dtr_exec.Exec.t ->
  routing_d:Dtr_spf.Routing.t ->
  routing_t:Dtr_spf.Routing.t ->
  ?init:Lexico.t ->
  prune:(Lexico.t -> bool) ->
  Weights.t ->
  failures:Failure.t list ->
  bounded_sweep
(** [Swept (add init (compound_sweep_from ...))] — bitwise, including the
    summation order — unless some scenario-order partial [add init
    (sum of the first k failure costs)] satisfies [prune], in which case
    the remaining failures are never priced and the result is
    [Aborted_at partial].  Per-failure costs are componentwise
    non-negative, so partials are monotone lower bounds of the final
    compound and a [prune] built from {!Dtr_cost.Lexico.prunes} makes the
    abort exact: an abort certifies the caller would have rejected the
    candidate, and the returned partial may be cached
    ({!Delta_cache.add_lower}) to reject repeat probes of the same vector
    without pricing anything.  [init] defaults to {!Lexico.zero} (Phase 2's
    pure [Kfail] objective); the warm-start path passes the normal cost so
    the partial bounds [J = normal + Kfail].
    Serial execution aborts mid-sweep; at jobs > 1 the full parallel sweep
    runs and only the final total is tested. *)

val evaluate_from :
  Scenario.t ->
  routing_d:Dtr_spf.Routing.t ->
  routing_t:Dtr_spf.Routing.t ->
  ?failure:Failure.t ->
  Weights.t ->
  detail
(** Price [w] from already-computed no-failure routing bases (the scenario's
    own matrices).  With no [failure] this is a pure assessment — no SPF runs
    at all; under a failure only the destinations whose ECMP DAG lost an arc
    are re-routed ({!Dtr_spf.Routing.with_failed_arcs}).  [w] must be the
    setting the bases were computed from.  Results are bit-identical to
    {!evaluate} on the same inputs.  This is the serve daemon's what-if
    query path: the bases stay resident across events, so a query costs
    milliseconds instead of a cold evaluation. *)

val compound : Lexico.t array -> Lexico.t
(** Componentwise sum over scenarios — [Kfail] of Eq. (4) (or its
    critical-set restriction, Eq. (7)). *)

(** Aggregate instrumentation over every sweep run since the last {!reset}:
    how many sweeps ran, how many failure states were priced through the
    dynamic-SPF sweep cache vs. the from-scratch path, and the total wall
    time spent inside sweeps.  Feeds the CLI's [--verbose] timing
    breakdown.

    A thin compatibility view over per-domain sharded [Dtr_obs.Metric]
    counters ([eval.sweeps], [eval.sweep.cache_builds],
    [eval.sweep.cached_evals], [eval.sweep.full_evals],
    [eval.sweep.seconds]): totals stay exact even when sweeps overlap
    across domains.  {!reset} and {!snapshot} are meant for quiescent
    points, as before. *)
module Sweep_stats : sig
  type snapshot = {
    sweeps : int;  (** sweep calls (any entry point) *)
    cache_builds : int;  (** sweeps that built a dynamic-SPF cache *)
    cached_evals : int;  (** failure states priced from the cache *)
    full_evals : int;  (** failure states priced from scratch *)
    seconds : float;  (** wall time inside sweeps *)
  }

  val reset : unit -> unit
  val snapshot : unit -> snapshot
end

(**/**)

(** Shared internals of the full and incremental evaluations.  [Eval_incr]
    must produce bit-identical costs, so the per-destination SLA subtotal is
    single-sourced here rather than duplicated. *)
module Internal : sig
  val dest_sla :
    Scenario.t ->
    routing_d:Dtr_spf.Routing.t ->
    arc_delay:float array ->
    dense_rd:float array array ->
    excluded:(int -> bool) ->
    dest:int ->
    on_pair:(int -> int -> float -> unit) ->
    float * int * int
  (** One destination's SLA penalty: a left fold (from [0.], in source
      order) of the pair penalties over the expected-delay DP, plus the
      violation and unreachable-pair counts. *)
end
