(** A traffic-engineering instance plus all heuristic parameters.

    Bundles the inputs of the optimization problem — topology and the two
    traffic matrices — together with the cost-model and search parameters of
    Sections III–V, so every stage of the heuristic reads its knobs from one
    place.  [paper_params] reproduces the published values; [quick_params]
    shrinks only the search budgets (not the model) for tests and
    reduced-scale benchmark runs. *)

type params = {
  wmax : int;  (** maximum weight value [w_max]; weights are in [1, wmax] *)
  sla : Dtr_cost.Sla.params;  (** theta, B1, B2 *)
  delay : Dtr_cost.Delay_model.params;  (** kappa, mu, linearisation *)
  chi : float;  (** allowed normal-conditions degradation of Phi, Eq. (6); paper 0.2 *)
  z : float;  (** Phase-1a sampling relaxation on Lambda (times B1); paper 0.5 *)
  q : float;  (** failure-emulation threshold: both weights in [q*wmax, wmax]; paper 0.7 *)
  tau : int;  (** samples-per-arc between convergence checks; paper 30 *)
  conv_threshold : float;  (** rank-change convergence threshold [e]; paper 2 *)
  left_tail : float;  (** left-tail fraction of Eqs. (8)-(9); paper 0.1 *)
  min_samples : int;  (** minimum cost samples per arc before criticality is trusted *)
  p1_rounds : int;  (** P1: diversifications of Phase 1; paper 20 *)
  p1_interval : int;  (** Phase-1 diversification interval (stale sweeps); paper 100 *)
  p1_max_sweeps : int;  (** hard sweep budget per Phase-1 round (paper: unbounded) *)
  p2_rounds : int;  (** P2: diversifications of Phase 2; paper 10 *)
  p2_interval : int;  (** Phase-2 diversification interval; paper 30 *)
  p2_max_sweeps : int;  (** hard sweep budget per Phase-2 round *)
  c_improvement : float;  (** stopping threshold c (relative); paper 0.001 = 0.1% *)
  critical_fraction : float;  (** target |Ec| / |E|; paper default 0.15 *)
  max_phase1b_rounds : int;  (** cap on Phase-1b sampling sweeps *)
}

val paper_params : params

val quick_params : params
(** Same model constants, reduced search budgets (P1=4, interval 12, P2=3,
    interval 8, min_samples 4, tau 8): suitable for unit tests and for the
    reduced-scale experiment harness. *)

type t = {
  graph : Dtr_topology.Graph.t;
  rd : Dtr_traffic.Matrix.t;  (** delay-sensitive demands *)
  rt : Dtr_traffic.Matrix.t;  (** throughput-sensitive demands *)
  params : params;
  dense_rd : float array array;
      (** [rd] in the dense form {!Dtr_spf.Routing.add_loads} consumes,
          cached once at construction.  Shared with [rd]; do not mutate the
          matrices after {!make} — build a fresh scenario via
          {!with_traffic} instead. *)
  dense_rt : float array array;  (** dense view of [rt], same caveat *)
  delay_sinks : bool array;
      (** [delay_sinks.(dest)] — some pair sends delay-sensitive traffic to
          [dest]; precomputed so evaluation does not rescan the O(n^2)
          matrix on every call *)
}

val make :
  graph:Dtr_topology.Graph.t ->
  rd:Dtr_traffic.Matrix.t ->
  rt:Dtr_traffic.Matrix.t ->
  params:params ->
  t
(** @raise Invalid_argument if matrix sizes disagree with the graph or the
    parameters are out of range. *)

val with_sla : t -> Dtr_cost.Sla.params -> t
(** Same instance under a different SLA bound (Table V sweeps theta). *)

val with_traffic : t -> rd:Dtr_traffic.Matrix.t -> rt:Dtr_traffic.Matrix.t -> t
(** Same topology and parameters, different (e.g. perturbed) matrices. *)

val num_arcs : t -> int
val num_nodes : t -> int

val random_instance :
  ?params:params ->
  ?nodes:int ->
  ?degree:float ->
  ?avg_util:float ->
  Dtr_util.Rng.t ->
  Dtr_topology.Gen.kind ->
  t
(** Convenience constructor used by examples, tests and the bench harness:
    generates the topology, draws a gravity matrix pair and calibrates it to
    [avg_util] (default 0.43, the paper's Table I/II operating point). *)
