(** Link criticality — the paper's central contribution (Section IV-C/D).

    The criticality of arc [l] for a traffic class is the difference between
    the {e mean} and the {e left-tail mean} (mean of the smallest
    [left_tail] fraction) of the arc's post-failure cost samples:

    {v
      rho_Lambda,l = mean (Lambda_fail,l) - left_tail_mean (Lambda_fail,l)   (8)
      rho_Phi,l    = mean (Phi_fail,l)    - left_tail_mean (Phi_fail,l)      (9)
    v}

    Intuition: if the arc is {e not} optimized for, the final solution's cost
    under its failure is essentially a random draw — the mean; if it {e is}
    optimized for, the search lands in the left tail.  The gap is the
    expected regret of leaving the arc out.

    Because each arc has one criticality per class, the values are
    normalised by the summed left-tail costs
    ([rho-bar = rho / sum_j tail_j] — a lower bound on any routing's
    compounded failure cost) so the two classes become comparable, and
    Algorithm 1 trims the two descending rankings to a single critical set of
    the requested size by always cutting the list whose next element costs
    the smaller normalised error. *)

type t = {
  rho_lambda : float array;  (** raw Eq. (8), per arc *)
  rho_phi : float array;  (** raw Eq. (9), per arc *)
  tail_lambda : float array;  (** left-tail means (the Lambda-tilde of the paper) *)
  tail_phi : float array;
  norm_lambda : float array;  (** normalised rho-bar_Lambda *)
  norm_phi : float array;  (** normalised rho-bar_Phi *)
}

val compute : ?exec:Dtr_exec.Exec.t -> left_tail:float -> Sampler.t -> t
(** Arcs without samples get zero criticality (Phase 1b exists to prevent
    that).  The per-arc tail estimations are independent and run on [exec]
    (default {!Dtr_exec.Exec.default}); results are identical for every job
    count.  @raise Invalid_argument if [left_tail] is outside (0, 1]. *)

val of_samples :
  left_tail:float -> lambda:float array array -> phi:float array array -> t
(** Same computation from raw per-arc samples (used by tests and by the
    baseline selectors); runs on {!Dtr_exec.Exec.default}. *)

val ranking : float array -> int array
(** Arc ids sorted by descending value; ties by ascending id (stable across
    calls, which the convergence index relies on). *)

val select : t -> n:int -> int list
(** Algorithm 1: the critical set of at most [n] arcs, sorted ascending.
    @raise Invalid_argument if [n < 1] or exceeds the arc count. *)

val rank_change_index : prev:int array -> current:int array -> float
(** The paper's convergence index [S]: with [S_l] the absolute rank change
    of arc [l] between two updates and weights [gamma_l] proportional to
    [S_l], returns [sum gamma_l * S_l] (0 when nothing moved).
    @raise Invalid_argument if the two rankings have different lengths. *)

(** Incremental convergence tracking used to decide whether Phase 1b is
    needed. *)
module Convergence : sig
  type tracker

  val create : Scenario.t -> tracker

  val check : ?exec:Dtr_exec.Exec.t -> tracker -> Sampler.t -> bool
  (** Recomputes criticality from the sampler, compares rankings with the
      previous check, and returns whether both classes' indices are at or
      below the threshold [e].  The first check never converges (there is no
      previous ranking). *)

  val last : tracker -> t option
  (** Criticality computed by the most recent [check]. *)
end
