module Rng = Dtr_util.Rng
module Lexico = Dtr_cost.Lexico

type stats = {
  evals : int;
  sweeps : int;
  rounds : int;
  samples : int;
  phase1b_sweeps : int;
  converged : bool;
}

type output = {
  best : Weights.t;
  best_cost : Lexico.t;
  acceptable : (Weights.t * Lexico.t) list;
  criticality : Criticality.t;
  sampler : Sampler.t;
  stats : stats;
}

(* Bounded pool of candidate Phase-2 starting points.  Recording every
   improving setting would copy weight vectors thousands of times; the pool
   keeps the lexicographically best [capacity] of them. *)
module Pool = struct
  type t = { capacity : int; mutable entries : (Weights.t * Lexico.t) list }

  let create capacity = { capacity; entries = [] }

  let compare_entries (_, a) (_, b) = Lexico.compare a b

  let add t w cost =
    t.entries <- (Weights.copy w, cost) :: t.entries;
    if List.length t.entries > 2 * t.capacity then
      t.entries <- List.filteri (fun i _ -> i < t.capacity) (List.sort compare_entries t.entries)

  let finalize t = List.sort compare_entries t.entries
end

let run ~rng ?(incremental = true) (scenario : Scenario.t) =
  let p = scenario.Scenario.params in
  let num_arcs = Scenario.num_arcs scenario in
  let sampler = Sampler.create scenario in
  let tracker = Criticality.Convergence.create scenario in
  let pool = Pool.create 64 in
  let best_so_far = ref None in
  let converged = ref false in
  let last_check_total = ref 0 in
  let check_interval = p.Scenario.tau * num_arcs in
  let note_best cost =
    match !best_so_far with
    | None -> best_so_far := Some cost
    | Some b -> if Lexico.is_better cost ~than:b then best_so_far := Some cost
  in
  let observer (obs : Local_search.observation) =
    (match obs.Local_search.cost_after with Some c -> note_best c | None -> ());
    (match !best_so_far with
    | Some best ->
        let (_ : bool) = Sampler.observe sampler ~best obs in
        ()
    | None -> ());
    (* Convergence is re-checked every tau samples per arc on average. *)
    if Sampler.total sampler - !last_check_total >= check_interval then begin
      last_check_total := Sampler.total sampler;
      converged := Criticality.Convergence.check tracker sampler
    end
  in
  (* One engine serves both the Phase-1a search and the Phase-1b sampling
     loop; the incremental engine produces the exact same cost sequence as
     the full evaluation, so both paths follow the same trajectory. *)
  let incr_eval = if incremental then Some (Eval_incr.create scenario) else None in
  let engine =
    match incr_eval with
    | Some e ->
        Local_search.
          {
            start = (fun w -> Some (Eval_incr.anchor e w));
            try_arc = (fun w ~arc -> Some (Eval_incr.try_arc e w ~arc));
            commit = (fun () -> Eval_incr.commit e);
            rollback = (fun () -> Eval_incr.rollback e);
          }
    | None -> Local_search.eval_engine (fun w -> Some (Eval.cost scenario w))
  in
  let config =
    Local_search.
      {
        wmax = p.Scenario.wmax;
        interval = p.Scenario.p1_interval;
        rounds = p.Scenario.p1_rounds;
        c = p.Scenario.c_improvement;
        max_rounds = 5 * p.Scenario.p1_rounds;
        max_sweeps = p.Scenario.p1_max_sweeps;
      }
  in
  let init ~round:_ = Weights.random rng ~num_arcs ~wmax:p.Scenario.wmax in
  let on_improvement w cost =
    note_best cost;
    Pool.add pool w cost
  in
  let search =
    Local_search.run_engine ~rng ~num_arcs ~engine ~init ~observer ~on_improvement config
  in
  let best = search.Local_search.best and best_cost = search.Local_search.best_cost in
  (* Phase 1b: explicit failure-emulating sampling from the best setting
     until rankings converge and every arc has a sample floor.  Every probe
     is a single-arc move off [best], so the incremental engine anchors at
     [best] once and prices each probe with a try/rollback pair. *)
  let phase1b_sweeps = ref 0 and extra_evals = ref 0 in
  let needs_more () =
    (not !converged) || Sampler.min_count sampler < p.Scenario.min_samples
  in
  (match incr_eval with
  | Some e -> ignore (Eval_incr.anchor e best : Lexico.t)
  | None -> ());
  let probe_cost w ~arc =
    match incr_eval with
    | Some e ->
        let cost = Eval_incr.try_arc e w ~arc in
        Eval_incr.rollback e;
        cost
    | None -> Eval.cost scenario w
  in
  while needs_more () && !phase1b_sweeps < p.Scenario.max_phase1b_rounds do
    incr phase1b_sweeps;
    let w = Weights.copy best in
    for arc = 0 to num_arcs - 1 do
      let saved = Weights.save_arc w arc in
      Weights.raise_arc rng w ~arc ~wmax:p.Scenario.wmax ~q:p.Scenario.q;
      let cost = probe_cost w ~arc in
      incr extra_evals;
      Sampler.record sampler ~arc cost;
      Weights.restore_arc w saved
    done;
    converged := Criticality.Convergence.check tracker sampler
  done;
  let criticality =
    match Criticality.Convergence.last tracker with
    | Some c -> c
    | None -> Criticality.compute ~left_tail:p.Scenario.left_tail sampler
  in
  (* Keep only recorded settings that satisfy Eqs. (5)-(6) w.r.t. the final
     best; the best itself always qualifies. *)
  let satisfies (_, cost) =
    cost.Lexico.lambda <= best_cost.Lexico.lambda +. Lexico.lambda_tolerance
    && cost.Lexico.phi <= (1. +. p.Scenario.chi) *. best_cost.Lexico.phi
  in
  let acceptable =
    (best, best_cost)
    :: List.filter
         (fun (w, cost) -> satisfies (w, cost) && not (Weights.equal w best))
         (Pool.finalize pool)
  in
  {
    best;
    best_cost;
    acceptable;
    criticality;
    sampler;
    stats =
      {
        evals = search.Local_search.evals + !extra_evals;
        sweeps = search.Local_search.sweeps;
        rounds = search.Local_search.rounds_run;
        samples = Sampler.total sampler;
        phase1b_sweeps = !phase1b_sweeps;
        converged = !converged;
      };
  }

let critical_set (scenario : Scenario.t) output =
  let p = scenario.Scenario.params in
  let m = Scenario.num_arcs scenario in
  let n =
    max 1 (int_of_float (Float.round (p.Scenario.critical_fraction *. float_of_int m)))
  in
  Criticality.select output.criticality ~n
