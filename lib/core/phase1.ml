module Rng = Dtr_util.Rng
module Lexico = Dtr_cost.Lexico
module Exec = Dtr_exec.Exec
module Scratch = Dtr_exec.Scratch
module Metric = Dtr_obs.Metric
module Span = Dtr_obs.Span
module Trace = Dtr_obs.Trace
module Convergence = Dtr_obs.Convergence

let c_evals = Metric.Counter.create "phase1.evals"
let c_sweeps = Metric.Counter.create "phase1.sweeps"
let c_rounds = Metric.Counter.create "phase1.rounds"
let c_samples = Metric.Counter.create "phase1.samples"
let c_p1b_sweeps = Metric.Counter.create "phase1b.sweeps"

type stats = {
  evals : int;
  sweeps : int;
  rounds : int;
  samples : int;
  phase1b_sweeps : int;
  pruned : int;
  converged : bool;
}

type output = {
  best : Weights.t;
  best_cost : Lexico.t;
  acceptable : (Weights.t * Lexico.t) list;
  criticality : Criticality.t;
  sampler : Sampler.t;
  stats : stats;
}

(* Bounded pool of candidate Phase-2 starting points.  Recording every
   improving setting would copy weight vectors thousands of times; the pool
   keeps the lexicographically best [capacity] of them. *)
module Pool = struct
  type t = { capacity : int; mutable entries : (Weights.t * Lexico.t) list }

  let create capacity = { capacity; entries = [] }

  let compare_entries (_, a) (_, b) = Lexico.compare a b

  let add t w cost =
    t.entries <- (Weights.copy w, cost) :: t.entries;
    if List.length t.entries > 2 * t.capacity then
      t.entries <- List.filteri (fun i _ -> i < t.capacity) (List.sort compare_entries t.entries)

  let finalize t = List.sort compare_entries t.entries
end

(* Per-domain Phase-1b probing state: an incremental engine anchored at the
   Phase-1a best plus a private working copy of it.  Cached across parallel
   sweeps and keyed by (scenario, anchor) identity — the anchor is the same
   physical vector for the whole top-up loop, so validation is O(1); a new
   run (or scenario) simply re-anchors. *)
type probe_scratch = { engine : Eval_incr.t; w : Weights.t; anchor : Weights.t }

let probe_slot : (Scenario.t * probe_scratch) list ref Scratch.t =
  Scratch.create (fun () -> ref [])

let probe_scratch_for scenario best =
  let cache = Scratch.get probe_slot in
  match
    List.find_opt (fun (sc, s) -> sc == scenario && s.anchor == best) !cache
  with
  | Some (_, s) -> s
  | None ->
      let engine = Eval_incr.create scenario in
      ignore (Eval_incr.anchor engine best : Lexico.t);
      let s = { engine; w = Weights.copy best; anchor = best } in
      cache := (scenario, s) :: List.filter (fun (sc, _) -> sc != scenario) !cache;
      s

let run_impl ~rng ~incremental ?exec (scenario : Scenario.t) =
  let exec = match exec with Some e -> e | None -> Exec.default () in
  let p = scenario.Scenario.params in
  let num_arcs = Scenario.num_arcs scenario in
  let sampler = Sampler.create scenario in
  let tracker = Criticality.Convergence.create scenario in
  let pool = Pool.create 64 in
  let best_so_far = ref None in
  let converged = ref false in
  let last_check_total = ref 0 in
  let check_interval = p.Scenario.tau * num_arcs in
  let note_best cost =
    match !best_so_far with
    | None -> best_so_far := Some cost
    | Some b -> if Lexico.is_better cost ~than:b then best_so_far := Some cost
  in
  let observer (obs : Local_search.observation) =
    (match obs.Local_search.cost_after with Some c -> note_best c | None -> ());
    (match !best_so_far with
    | Some best ->
        let (_ : bool) = Sampler.observe sampler ~best obs in
        ()
    | None -> ());
    (* Convergence is re-checked every tau samples per arc on average. *)
    if Sampler.total sampler - !last_check_total >= check_interval then begin
      last_check_total := Sampler.total sampler;
      converged := Criticality.Convergence.check ~exec tracker sampler
    end
  in
  (* One engine serves both the Phase-1a search and the Phase-1b sampling
     loop; the incremental engine produces the exact same cost sequence as
     the full evaluation, so both paths follow the same trajectory. *)
  let incr_eval = if incremental then Some (Eval_incr.create scenario) else None in
  let engine =
    match incr_eval with
    | Some e ->
        Local_search.
          {
            start = (fun w -> Some (Eval_incr.anchor e w));
            try_arc =
              (fun w ~arc ~bound ->
                (* Failure-like trials may be harvested by the observer as
                   exact post-failure cost samples, so they are always
                   priced in full.  Anything else can be abandoned once its
                   partial cost proves it beats neither the round's
                   incumbent nor the global best — the observer feeds every
                   priced cost to [note_best], so the certificate must cover
                   both incumbents (the two prunes conjoin; [Lexico.compare]
                   is not transitive across the tolerance band, so their
                   bounds must not be merged into one). *)
                match bound with
                | Some cur
                  when Prune.enabled ()
                       && not (Sampler.is_failure_like sampler w ~arc) -> (
                    let prune =
                      match !best_so_far with
                      | Some best ->
                          fun partial ->
                            Lexico.prunes partial ~than:cur
                            && Lexico.prunes partial ~than:best
                      | None -> fun partial -> Lexico.prunes partial ~than:cur
                    in
                    match Eval_incr.try_arc_bounded e ~prune w ~arc with
                    | Some c -> Cost c
                    | None -> Pruned)
                | _ -> Cost (Eval_incr.try_arc e w ~arc));
            commit = (fun () -> Eval_incr.commit e);
            rollback = (fun () -> Eval_incr.rollback e);
          }
    | None -> Local_search.eval_engine (fun w -> Some (Eval.cost scenario w))
  in
  let config =
    Local_search.
      {
        wmax = p.Scenario.wmax;
        interval = p.Scenario.p1_interval;
        rounds = p.Scenario.p1_rounds;
        c = p.Scenario.c_improvement;
        max_rounds = 5 * p.Scenario.p1_rounds;
        max_sweeps = p.Scenario.p1_max_sweeps;
      }
  in
  let init ~round:_ = Weights.random rng ~num_arcs ~wmax:p.Scenario.wmax in
  let on_improvement w cost =
    note_best cost;
    Pool.add pool w cost
  in
  let search =
    Span.with_ ~name:"phase1a" (fun () ->
        if Trace.enabled () then Trace.emit_phase ~name:"phase1a";
        Convergence.with_series ~name:"phase1a" (fun () ->
            Local_search.run_engine ~rng ~num_arcs ~engine ~init ~observer
              ~on_improvement config))
  in
  let best = search.Local_search.best and best_cost = search.Local_search.best_cost in
  (* Phase 1b: explicit failure-emulating sampling from the best setting
     until rankings converge and every arc has a sample floor.  Every probe
     is a single-arc move off [best], so the incremental engine anchors at
     [best] once and prices each probe with a try/rollback pair. *)
  let phase1b_sweeps = ref 0 and extra_evals = ref 0 in
  let needs_more () =
    (not !converged) || Sampler.min_count sampler < p.Scenario.min_samples
  in
  (match incr_eval with
  | Some e -> ignore (Eval_incr.anchor e best : Lexico.t)
  | None -> ());
  let probe_cost w ~arc =
    match incr_eval with
    | Some e ->
        let cost = Eval_incr.try_arc e w ~arc in
        Eval_incr.rollback e;
        cost
    | None -> Eval.cost scenario w
  in
  (* One parallel probe: price [best] with [arc] raised to the pre-drawn
     weights, on this domain's own engine (or by full evaluation when the
     caller opted out of the incremental path).  Both paths are
     bit-identical to the serial probe — the engine contract guarantees
     try_arc equals the full evaluation of the same setting. *)
  let probe_parallel ~arc ~wd ~wt =
    if incremental then begin
      let s = probe_scratch_for scenario best in
      let saved = Weights.save_arc s.w arc in
      Weights.set_arc s.w ~arc ~wd ~wt;
      let cost = Eval_incr.try_arc s.engine s.w ~arc in
      Eval_incr.rollback s.engine;
      Weights.restore_arc s.w saved;
      cost
    end
    else begin
      let w = Weights.copy best in
      Weights.set_arc w ~arc ~wd ~wt;
      Eval.cost scenario w
    end
  in
  (Span.with_ ~name:"phase1b" @@ fun () ->
   if Trace.enabled () then Trace.emit_phase ~name:"phase1b";
   Convergence.with_series ~name:"phase1b" @@ fun () ->
   while needs_more () && !phase1b_sweeps < p.Scenario.max_phase1b_rounds do
     incr phase1b_sweeps;
    let w = Weights.copy best in
    if Exec.jobs exec = 1 then
      for arc = 0 to num_arcs - 1 do
        let saved = Weights.save_arc w arc in
        Weights.raise_arc rng w ~arc ~wmax:p.Scenario.wmax ~q:p.Scenario.q;
        let cost = probe_cost w ~arc in
        incr extra_evals;
        Sampler.record sampler ~arc cost;
        Weights.restore_arc w saved
      done
    else begin
      (* Draw the sweep's raised weights first, in arc order, so the RNG
         stream is exactly the serial one; then price the probes in
         parallel and record the samples back in arc order. *)
      let raised =
        Array.init num_arcs (fun arc ->
            let saved = Weights.save_arc w arc in
            Weights.raise_arc rng w ~arc ~wmax:p.Scenario.wmax ~q:p.Scenario.q;
            let drawn = (w.Weights.wd.(arc), w.Weights.wt.(arc)) in
            Weights.restore_arc w saved;
            drawn)
      in
      let costs =
        Exec.map exec ~n:num_arcs ~f:(fun arc ->
            let wd, wt = raised.(arc) in
            probe_parallel ~arc ~wd ~wt)
      in
      extra_evals := !extra_evals + num_arcs;
      Array.iteri (fun arc cost -> Sampler.record sampler ~arc cost) costs
    end;
    converged := Criticality.Convergence.check ~exec tracker sampler;
    (* One convergence point per sampling round: cumulative probes, the
       per-arc sample floor, and whether rankings have converged. *)
    if Metric.enabled () then
      Convergence.record ~best_lambda:best_cost.Lexico.lambda
        ~best_phi:best_cost.Lexico.phi ~cur_lambda:best_cost.Lexico.lambda
        ~cur_phi:best_cost.Lexico.phi ~trials:(Sampler.total sampler)
        ~accepts:(Sampler.min_count sampler)
        ~resets:(if !converged then 1 else 0)
  done);
  let criticality =
    match Criticality.Convergence.last tracker with
    | Some c -> c
    | None -> Criticality.compute ~exec ~left_tail:p.Scenario.left_tail sampler
  in
  (* Keep only recorded settings that satisfy Eqs. (5)-(6) w.r.t. the final
     best; the best itself always qualifies. *)
  let satisfies (_, cost) =
    cost.Lexico.lambda <= best_cost.Lexico.lambda +. Lexico.lambda_tolerance
    && cost.Lexico.phi <= (1. +. p.Scenario.chi) *. best_cost.Lexico.phi
  in
  let acceptable =
    (best, best_cost)
    :: List.filter
         (fun (w, cost) -> satisfies (w, cost) && not (Weights.equal w best))
         (Pool.finalize pool)
  in
  if Metric.enabled () then begin
    Metric.Counter.add c_evals (search.Local_search.evals + !extra_evals);
    Metric.Counter.add c_sweeps search.Local_search.sweeps;
    Metric.Counter.add c_rounds search.Local_search.rounds_run;
    Metric.Counter.add c_samples (Sampler.total sampler);
    Metric.Counter.add c_p1b_sweeps !phase1b_sweeps
  end;
  {
    best;
    best_cost;
    acceptable;
    criticality;
    sampler;
    stats =
      {
        evals = search.Local_search.evals + !extra_evals;
        sweeps = search.Local_search.sweeps;
        rounds = search.Local_search.rounds_run;
        samples = Sampler.total sampler;
        phase1b_sweeps = !phase1b_sweeps;
        pruned = search.Local_search.pruned;
        converged = !converged;
      };
  }

let run ~rng ?(incremental = true) ?exec scenario =
  Span.with_ ~name:"phase1" (fun () ->
      if Trace.enabled () then Trace.emit_phase ~name:"phase1";
      run_impl ~rng ~incremental ?exec scenario)

let critical_set (scenario : Scenario.t) output =
  let p = scenario.Scenario.params in
  let m = Scenario.num_arcs scenario in
  let n =
    max 1 (int_of_float (Float.round (p.Scenario.critical_fraction *. float_of_int m)))
  in
  Criticality.select output.criticality ~n
