module Metric = Dtr_obs.Metric

(* DTR_NO_PRUNE=1 turns the move-space pruning engine off: bounded pricing
   falls back to full pricing and the delta cache is never consulted.  The
   default-on pruned path is bit-identical to the reference path (the abort
   test is exact under Lexico.compare's tolerance semantics), but the
   reference must stay reachable for A/B benchmarking and the CI identity
   leg — same contract as DTR_NO_DSPF for the dynamic-SPF engine. *)
let enabled_flag =
  ref
    (match Sys.getenv_opt "DTR_NO_PRUNE" with
    | Some s when s <> "" && s <> "0" -> false
    | _ -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Effectiveness counters, mirrored into the observability report (additive
   dtr-obs-report/2 keys) when metrics are on.  The per-run ground truth
   lives in Local_search/Phase2/warm results — these are the profiler-free
   global view dtr-opt --verbose and the daemon's stats event print. *)
let c_aborts = Metric.Counter.create "prune.aborts"
let c_skips = Metric.Counter.create "prune.skips"
let c_cache_hits = Metric.Counter.create "prune.cache_hits"
let c_cache_misses = Metric.Counter.create "prune.cache_misses"

let note_abort () = if Metric.enabled () then Metric.Counter.incr c_aborts
let note_skip () = if Metric.enabled () then Metric.Counter.incr c_skips
let note_cache_hit () = if Metric.enabled () then Metric.Counter.incr c_cache_hits

let note_cache_miss () =
  if Metric.enabled () then Metric.Counter.incr c_cache_misses
