(** Phase 2: robust optimization (Eq. (4) / Eq. (7)).

    Starting from the constraint-satisfying settings recorded in Phase 1, a
    second local search minimises the compounded failure cost

    {v  Kfail = < sum_f Lambda_fail,f , sum_f Phi_fail,f >  v}

    over a caller-supplied list of failure scenarios — the critical arcs
    (Eq. (7)), all arcs (full search), or all nodes (the node-robust
    baseline of Section V-F) — subject to the normal-conditions constraints:
    [Lambda_normal = Lambda*] (Eq. (5)) and
    [Phi_normal <= (1 + chi) * Phi*] (Eq. (6)).  Settings violating the
    constraints are infeasible moves. *)

module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure

type stats = {
  evals : int;
  sweeps : int;
  rounds : int;
  pruned : int;  (** trials abandoned by early-abort sweep pricing *)
  skipped : int;  (** proposals cut by the [--fast] filter *)
  cache_hits : int;  (** delta-cache hits (sweeps skipped entirely) *)
  cache_misses : int;
}

type output = {
  robust : Weights.t;
  fail_cost : Lexico.t;  (** compounded cost over the optimized scenarios *)
  normal_cost : Lexico.t;  (** normal-conditions cost of [robust] *)
  stats : stats;
}

val run :
  rng:Dtr_util.Rng.t ->
  ?incremental:bool ->
  ?exec:Dtr_exec.Exec.t ->
  ?fast:bool ->
  Scenario.t ->
  phase1:Phase1.output ->
  failures:Failure.t list ->
  output
(** [incremental] (default [true]): price the normal-conditions gate of each
    single-arc move with the {!Eval_incr} engine and start the failure sweep
    from its cached no-failure routing bases; bit-identical to the full
    {!Eval.normal_and_sweep} path, hence the same trajectory for a given
    RNG.  The incremental engine additionally prunes: feasible moves are
    priced with {!Eval.compound_sweep_bounded} against the search incumbent
    (exact — the trajectory is unchanged) and memoized in a per-run
    {!Delta_cache}, so revisited vectors skip the sweep entirely.  Both are
    disabled by {!Prune.set_enabled}[ false] / [DTR_NO_PRUNE].

    [fast] (default [false]) enables the criticality-gated proposal filter
    ({!Local_search.filter}): arcs scored by the larger of their Phase-1
    normalised criticality and their utilisation under the Phase-1 best;
    up to 60% of proposals are skipped as the acceptance rate decays.
    Fast runs follow a different trajectory (a quality/time trade, not an
    exact optimisation).

    [exec] (default {!Dtr_exec.Exec.default}) parallelises every critical-set
    sweep — the per-move pricing of all failure scenarios, the dominant cost
    of Phase 2 — over the domain pool; per-failure costs are reduced in
    scenario order, so the search trajectory and result are bit-identical
    for every job count.
    @raise Invalid_argument if [failures] is empty or Phase 1 recorded no
    acceptable setting (cannot happen with {!Phase1.run} output). *)
