module Rng = Dtr_util.Rng
module Lexico = Dtr_cost.Lexico
module Metric = Dtr_obs.Metric
module Trace = Dtr_obs.Trace
module Convergence = Dtr_obs.Convergence

(* Per-move instrumentation is gated on [Metric.enabled] (and the flight
   recorder on [Trace.enabled]): the try/accept counters sit on the
   single-arc hot path, so with observability off the search pays one atomic
   load per trial and allocates nothing. *)
let c_trials = Metric.Counter.create "local_search.trials"
let c_accepts = Metric.Counter.create "local_search.accepts"
let c_rounds = Metric.Counter.create "local_search.rounds"

type observation = {
  arc : int;
  weights : Weights.t;
  cost_before : Lexico.t;
  cost_after : Lexico.t option;
  accepted : bool;
}

type config = {
  wmax : int;
  interval : int;
  rounds : int;
  c : float;
  max_rounds : int;
  max_sweeps : int;
}

type result = {
  best : Weights.t;
  best_cost : Lexico.t;
  sweeps : int;
  evals : int;
  rounds_run : int;
  pruned : int;
  skipped : int;
}

type verdict = Cost of Lexico.t | Infeasible | Pruned

type engine = {
  start : Weights.t -> Lexico.t option;
  try_arc : Weights.t -> arc:int -> bound:Lexico.t option -> verdict;
  commit : unit -> unit;
  rollback : unit -> unit;
}

type filter = { score : float array; max_skip : float }

let eval_engine eval =
  {
    start = eval;
    try_arc =
      (fun w ~arc:_ ~bound:_ ->
        match eval w with Some c -> Cost c | None -> Infeasible);
    commit = (fun () -> ());
    rollback = (fun () -> ());
  }

let run_engine ~rng ~num_arcs ~engine ~init ?observer ?on_improvement ?target
    ?filter config =
  if config.interval < 1 || config.rounds < 1 then
    invalid_arg "Local_search.run: interval and rounds must be positive";
  let exception Target_reached in
  let target_hit cost =
    match target with Some t -> Lexico.compare cost t <= 0 | None -> false
  in
  let best = ref None in
  let evals = ref 0 and sweeps = ref 0 in
  let pruned = ref 0 and skipped = ref 0 in
  let order = Array.init num_arcs (fun i -> i) in
  (* --fast proposal filter: arcs ranked by static importance once; each
     round skips the lowest-ranked fraction, ramped per sweep from the
     acceptance-rate series (see below).  Skipped arcs consume no RNG, so
     the filtered trajectory legitimately diverges — which is exactly why
     the default mode passes no filter. *)
  let skip_rank =
    match filter with
    | None -> [||]
    | Some f ->
        if Array.length f.score <> num_arcs then
          invalid_arg "Local_search.run_engine: filter score size";
        let ids = Array.init num_arcs (fun i -> i) in
        Array.sort
          (fun a b ->
            match Float.compare f.score.(a) f.score.(b) with
            | 0 -> compare a b
            | c -> c)
          ids;
        let rank = Array.make num_arcs 0 in
        Array.iteri (fun pos arc -> rank.(arc) <- pos) ids;
        rank
  in
  let max_cutoff =
    match filter with
    | None -> 0
    | Some f ->
        min (num_arcs - 1)
          (int_of_float (Float.max 0. (Float.min 1. f.max_skip) *. float_of_int num_arcs))
  in
  let observe obs = match observer with None -> () | Some f -> f obs in
  let improved w cost = match on_improvement with None -> () | Some f -> f w cost in
  let note_best w cost =
    (* Relative improvement of the global best achieved by this round. *)
    match !best with
    | None ->
        best := Some (Weights.copy w, cost);
        1.
    | Some (_, prev) ->
        if Lexico.is_better cost ~than:prev then begin
          let gain = Lexico.improvement ~from:prev ~to_:cost in
          best := Some (Weights.copy w, cost);
          gain
        end
        else 0.
  in
  (* Best-so-far across rounds, seen from inside a round: the better of the
     committed global best and the round's current cost.  Only read by the
     convergence recorder. *)
  let best_for_telemetry current =
    match !best with
    | Some (_, b) when not (Lexico.is_better current ~than:b) -> b
    | _ -> current
  in
  (* One diversification round: local search until [interval] stale sweeps. *)
  let run_round ~round =
    let w = Weights.copy (init ~round) in
    match engine.start w with
    | None -> None
    | Some start_cost ->
        incr evals;
        if target_hit start_cost then begin
          ignore (note_best w start_cost);
          raise Target_reached
        end;
        let current = ref start_cost in
        let stale = ref 0 and round_sweeps = ref 0 in
        (* Per-round filter state: the skip fraction starts at zero (the
           round's first sweep always visits every arc, establishing the
           reference acceptance rate) and ramps towards [max_skip] as the
           acceptance-rate EWMA decays — the same per-sweep series the
           convergence recorder captures. *)
        let cutoff = ref 0 and a_ref = ref Float.nan and ewma = ref Float.nan in
        while !stale < config.interval && !round_sweeps < config.max_sweeps do
          incr sweeps;
          incr round_sweeps;
          let sweep_improved = ref false in
          let sweep_trials = ref 0 and sweep_accepts = ref 0 in
          Rng.shuffle rng order;
          Array.iter
            (fun arc ->
              if !cutoff > 0 && skip_rank.(arc) < !cutoff then begin
                (* Filtered out this sweep: no perturbation is proposed and
                   no RNG is consumed. *)
                incr skipped;
                Prune.note_skip ()
              end
              else begin
              let saved = Weights.save_arc w arc in
              Weights.perturb_arc rng w ~arc ~wmax:config.wmax;
              if saved.Weights.old_wd = w.Weights.wd.(arc) && saved.Weights.old_wt = w.Weights.wt.(arc)
              then ()
              else begin
                let verdict = engine.try_arc w ~arc ~bound:(Some !current) in
                incr evals;
                let accepted =
                  match verdict with
                  | Cost cost -> Lexico.is_better cost ~than:!current
                  | Infeasible | Pruned -> false
                in
                (match verdict with
                | Pruned ->
                    incr pruned;
                    Prune.note_abort ()
                | Cost _ | Infeasible -> ());
                incr sweep_trials;
                if accepted then incr sweep_accepts;
                if Metric.enabled () then begin
                  Metric.Counter.incr c_trials;
                  if accepted then Metric.Counter.incr c_accepts
                end;
                if Trace.enabled () then begin
                  let new_lambda, new_phi =
                    match verdict with
                    | Cost c -> (c.Lexico.lambda, c.Lexico.phi)
                    | Infeasible | Pruned -> (Float.nan, Float.nan)
                  in
                  Trace.emit_move ~arc ~accepted
                    ~old_lambda:!current.Lexico.lambda ~old_phi:!current.Lexico.phi
                    ~new_lambda ~new_phi
                end;
                let cost_after =
                  match verdict with
                  | Cost c -> Some c
                  | Infeasible | Pruned -> None
                in
                observe
                  { arc; weights = w; cost_before = !current; cost_after; accepted };
                if accepted then begin
                  engine.commit ();
                  (match verdict with
                  | Cost cost ->
                      current := cost;
                      improved w cost
                  | Infeasible | Pruned -> assert false);
                  sweep_improved := true;
                  if target_hit !current then begin
                    ignore (note_best w !current);
                    raise Target_reached
                  end
                end
                else begin
                  engine.rollback ();
                  Weights.restore_arc w saved
                end
              end
              end)
            order;
          if Metric.enabled () then begin
            (* One convergence point per sweep, into the caller's ambient
               series (phase1a, phase2, …): best/current cost, this sweep's
               acceptance counts, and the diversification-reset index. *)
            let b = best_for_telemetry !current in
            Convergence.record ~best_lambda:b.Lexico.lambda
              ~best_phi:b.Lexico.phi ~cur_lambda:!current.Lexico.lambda
              ~cur_phi:!current.Lexico.phi ~trials:!sweep_trials
              ~accepts:!sweep_accepts ~resets:round
          end;
          (match filter with
          | Some _ when !sweep_trials > 0 ->
              let a = float_of_int !sweep_accepts /. float_of_int !sweep_trials in
              if Float.is_nan !a_ref then begin
                a_ref := Float.max a 1e-6;
                ewma := a
              end
              else ewma := (0.5 *. !ewma) +. (0.5 *. a);
              let frac = 1. -. Float.min 1. (!ewma /. !a_ref) in
              cutoff :=
                min max_cutoff (int_of_float (frac *. float_of_int max_cutoff))
          | _ -> ());
          if !sweep_improved then stale := 0 else incr stale
        done;
        Some (note_best w !current)
  in
  let low_streak = ref 0 and rounds_run = ref 0 in
  let round = ref 0 in
  (try
     while !low_streak < config.rounds && !round < config.max_rounds do
       (match run_round ~round:!round with
       | None ->
           incr low_streak (* unusable start counts as a fruitless round *)
       | Some gain ->
           incr rounds_run;
           if gain < config.c then incr low_streak else low_streak := 0);
       incr round
     done
   with Target_reached -> incr rounds_run);
  if Metric.enabled () then Metric.Counter.add c_rounds !rounds_run;
  match !best with
  | None -> invalid_arg "Local_search.run: no feasible starting point"
  | Some (w, cost) ->
      { best = w; best_cost = cost; sweeps = !sweeps; evals = !evals;
        rounds_run = !rounds_run; pruned = !pruned; skipped = !skipped }

let run ~rng ~num_arcs ~eval ~init ?observer ?on_improvement config =
  run_engine ~rng ~num_arcs ~engine:(eval_engine eval) ~init ?observer ?on_improvement
    config
