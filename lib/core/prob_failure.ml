module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Lexico = Dtr_cost.Lexico

type model = { prob : float array }

let uniform g = { prob = Array.make (Graph.num_arcs g) 1. }

let length_proportional g =
  { prob = Array.map (fun a -> a.Graph.delay) (Graph.arcs g) }

let of_array g prob =
  if Array.length prob <> Graph.num_arcs g then
    invalid_arg "Prob_failure.of_array: length mismatch";
  Array.iter (fun p -> if p < 0. then invalid_arg "Prob_failure.of_array: negative") prob;
  { prob }

let weighted_compound costs probs =
  List.fold_left2
    (fun acc cost p ->
      Lexico.add acc
        (Lexico.make ~lambda:(p *. cost.Lexico.lambda) ~phi:(p *. cost.Lexico.phi)))
    Lexico.zero costs probs

let expected_fail_cost (scenario : Scenario.t) ?exec w model =
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let costs = Array.to_list (Eval.sweep scenario ?exec w failures) in
  let probs = List.mapi (fun id _ -> model.prob.(id)) failures in
  weighted_compound costs probs

let expected_violations (scenario : Scenario.t) ?exec w model =
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let details = Eval.sweep_details scenario ?exec w failures in
  let total_p = Array.fold_left ( +. ) 0. model.prob in
  if total_p <= 0. then 0.
  else begin
    let acc = ref 0. in
    List.iteri
      (fun id d ->
        acc := !acc +. (model.prob.(id) *. float_of_int d.Eval.violations))
      details;
    !acc /. total_p
  end

let scale_criticality (c : Criticality.t) model =
  let scale arr = Array.mapi (fun id v -> v *. model.prob.(id)) arr in
  {
    c with
    Criticality.norm_lambda = scale c.Criticality.norm_lambda;
    norm_phi = scale c.Criticality.norm_phi;
  }

let robust ~rng (scenario : Scenario.t) ?exec ~(phase1 : Phase1.output) model ?fraction () =
  let p = scenario.Scenario.params in
  let m = Scenario.num_arcs scenario in
  let fraction =
    match fraction with Some f -> f | None -> p.Scenario.critical_fraction
  in
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Prob_failure.robust: fraction outside (0, 1]";
  let n = max 1 (int_of_float (Float.round (fraction *. float_of_int m))) in
  let critical = Criticality.select (scale_criticality phase1.Phase1.criticality model) ~n in
  let failures = List.map (fun a -> Failure.Arc a) critical in
  let probs = List.map (fun a -> model.prob.(a)) critical in
  let best_cost = phase1.Phase1.best_cost in
  let feasible normal =
    normal.Lexico.lambda <= best_cost.Lexico.lambda +. Lexico.lambda_tolerance
    && normal.Lexico.phi <= (1. +. p.Scenario.chi) *. best_cost.Lexico.phi
  in
  let eval w =
    let normal = Eval.cost scenario w in
    if not (feasible normal) then None
    else
      Some (weighted_compound (Array.to_list (Eval.sweep scenario ?exec w failures)) probs)
  in
  let starts = Array.of_list phase1.Phase1.acceptable in
  let config =
    Local_search.
      {
        wmax = p.Scenario.wmax;
        interval = p.Scenario.p2_interval;
        rounds = p.Scenario.p2_rounds;
        c = p.Scenario.c_improvement;
        max_rounds = 5 * p.Scenario.p2_rounds;
        max_sweeps = p.Scenario.p2_max_sweeps;
      }
  in
  let init ~round =
    let w, _ = starts.(round mod Array.length starts) in
    w
  in
  let search = Local_search.run ~rng ~num_arcs:m ~eval ~init config in
  let output =
    Phase2.
      {
        robust = search.Local_search.best;
        fail_cost = search.Local_search.best_cost;
        normal_cost = Eval.cost scenario search.Local_search.best;
        stats =
          {
            evals = search.Local_search.evals;
            sweeps = search.Local_search.sweeps;
            rounds = search.Local_search.rounds_run;
            pruned = search.Local_search.pruned;
            skipped = search.Local_search.skipped;
            cache_hits = 0;
            cache_misses = 0;
          };
      }
  in
  (output, critical)
