(** Probabilistic failure model — the extension sketched in the paper's
    conclusion ("a probabilistic failure model can be formulated as part of a
    robust optimization framework, and we believe that the critical link
    technique developed in this paper can be extended to that model").

    Instead of treating all single link failures as equally important, each
    arc [l] gets a weight [p_l] proportional to its failure probability; the
    robust objective becomes the {e expected} failure cost

    {v  K_exp = < sum_l p_l Lambda_fail,l , sum_l p_l Phi_fail,l >  v}

    and the criticality of an arc is scaled by its probability (an unlikely
    failure with a wide cost distribution matters less than a likely one with
    a moderately wide distribution). *)

module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure

type model = { prob : float array }
(** Per-arc relative failure probabilities (indexed by arc id, non-negative;
    only ratios matter for optimization). *)

val uniform : Dtr_topology.Graph.t -> model
(** Every arc equally likely — recovers the paper's base objective. *)

val length_proportional : Dtr_topology.Graph.t -> model
(** [p_l] proportional to the arc's propagation delay: long-haul fibre has
    proportionally more exposure to cuts — the classic availability model. *)

val of_array : Dtr_topology.Graph.t -> float array -> model
(** @raise Invalid_argument on wrong length or negative entries. *)

val expected_fail_cost :
  Scenario.t -> ?exec:Dtr_exec.Exec.t -> Weights.t -> model -> Lexico.t
(** Probability-weighted compound of all single-arc failure costs. *)

val expected_violations :
  Scenario.t -> ?exec:Dtr_exec.Exec.t -> Weights.t -> model -> float
(** Probability-weighted mean of SLA-violation counts over all single-arc
    failures (weights normalised to sum to 1). *)

val scale_criticality : Criticality.t -> model -> Criticality.t
(** Scales each arc's normalised criticality by its probability, so that
    {!Criticality.select} picks arcs by {e expected} regret. *)

val robust :
  rng:Dtr_util.Rng.t ->
  Scenario.t ->
  ?exec:Dtr_exec.Exec.t ->
  phase1:Phase1.output ->
  model ->
  ?fraction:float ->
  unit ->
  Phase2.output * int list
(** Probability-aware Phase 2: selects the critical set from the
    probability-scaled criticality (at [fraction], default the scenario's
    [critical_fraction]) and minimises the expected failure cost over it,
    under the usual normal-conditions constraints (Eqs. (5)–(6)).  Returns
    the Phase-2 output and the selected arcs. *)
