module Lexico = Dtr_cost.Lexico

type t = {
  scenario : Scenario.t;
  lambda : float list array; (* newest first, per arc *)
  phi : float list array;
  counts : int array;
  mutable total : int;
}

let create (scenario : Scenario.t) =
  let m = Scenario.num_arcs scenario in
  {
    scenario;
    lambda = Array.make m [];
    phi = Array.make m [];
    counts = Array.make m 0;
    total = 0;
  }

let is_failure_like t w ~arc =
  let p = t.scenario.Scenario.params in
  let lo = int_of_float (Float.ceil (p.Scenario.q *. float_of_int p.Scenario.wmax)) in
  w.Weights.wd.(arc) >= lo && w.Weights.wt.(arc) >= lo

let is_acceptable t ~best cost =
  let p = t.scenario.Scenario.params in
  cost.Lexico.lambda <= best.Lexico.lambda +. (p.Scenario.z *. p.Scenario.sla.Dtr_cost.Sla.b1)
  && cost.Lexico.phi <= (1. +. p.Scenario.chi) *. best.Lexico.phi

let record t ~arc cost =
  t.lambda.(arc) <- cost.Lexico.lambda :: t.lambda.(arc);
  t.phi.(arc) <- cost.Lexico.phi :: t.phi.(arc);
  t.counts.(arc) <- t.counts.(arc) + 1;
  t.total <- t.total + 1

let observe t ~best (obs : Local_search.observation) =
  match obs.Local_search.cost_after with
  | Some cost
    when is_failure_like t obs.Local_search.weights ~arc:obs.Local_search.arc
         && is_acceptable t ~best obs.Local_search.cost_before ->
      record t ~arc:obs.Local_search.arc cost;
      true
  | Some _ | None -> false

let count t arc = t.counts.(arc)
let counts t = Array.copy t.counts
let total t = t.total
let min_count t = Array.fold_left min max_int t.counts

let lambda_samples t arc = Array.of_list t.lambda.(arc)
let phi_samples t arc = Array.of_list t.phi.(arc)
