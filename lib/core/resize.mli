(** Capacity resizing of congested links.

    Section V-B of the paper investigates whether NearTopo's poor showing is
    merely under-provisioning: congested core links are resized — their
    capacity increased until their normal-conditions utilization drops below
    a threshold (the paper uses 90%) — and the optimization re-run.  This
    module implements that resizing step as a reusable network-design
    operation.

    Capacities are per physical link (both directions get the larger of the
    two directions' requirements), and upgrades are rounded up to a step
    (default 100 Mb/s) to mimic discrete capacity units. *)

type upgrade = {
  arc : Dtr_topology.Graph.arc_id;  (** lower arc id of the upgraded link *)
  old_capacity : float;
  new_capacity : float;
}

type report = {
  upgrades : upgrade list;
  added_capacity : float;  (** total Mb/s added over all links (one direction) *)
}

val resize_congested :
  ?step:float ->
  ?max_util:float ->
  Scenario.t ->
  Weights.t ->
  Scenario.t * report
(** [resize_congested scenario w] returns a scenario whose graph has enough
    capacity that no arc exceeds [max_util] (default 0.9) under the routing
    induced by [w] on the {e original} graph, together with the list of
    upgrades.  Traffic matrices and parameters are unchanged.
    @raise Invalid_argument if [max_util] is not in (0, 1] or [step <= 0]. *)
