(** Incremental single-arc evaluation engine.

    The local search's inner loop evaluates a weight setting that differs
    from the last committed one on exactly one arc.  A full {!Eval.evaluate}
    pays [O(n)] Dijkstra runs plus an [O(n^2)] delay pass per trial; this
    engine caches, per traffic class, the routing state, each destination's
    arc-load contribution and each destination's SLA penalty subtotal, and
    recomputes only the destinations the single-arc move can affect (see
    {!Dtr_spf.Routing.with_changed_arc}).  Load and [Lambda] totals are
    re-summed from the per-destination caches in destination order, which —
    together with the per-destination fold in {!Eval.Internal.dest_sla} —
    makes every result {e bit-identical} to the full evaluation: not merely
    close, the same floats.  [Phi] is recomputed exactly, in [O(m)], from the
    patched loads.

    The same caching pattern is reused {e across failure states}: a failure
    sweep ({!Eval.sweep_details}, {!Eval.compound_sweep_from}) builds the
    per-destination contribution rows and SLA subtotals once from the
    no-failure base and re-prices each single-arc failure by repairing the
    routing with {!Dtr_spf.Spf_delta} and re-summing only the destinations
    that failure touches — see the dynamic-SPF section of [DESIGN.md].

    Protocol: {!anchor} at a known weight setting, then for each trial call
    {!try_arc} followed by {e exactly one} of {!commit} / {!rollback} —
    mirroring [Weights.save_arc]/[restore_arc] on the caller's side.
    Accessors ({!cost}, {!violations}, {!loads}, {!current_routing}) reflect
    the pending trial when one is staged, the committed state otherwise. *)

module Lexico = Dtr_cost.Lexico

type t

val create : Scenario.t -> t
(** A fresh engine, anchored at the all-ones weight setting. *)

val scenario : t -> Scenario.t

val anchor : t -> Weights.t -> Lexico.t
(** Full recompute at [w]; [w] becomes the committed state (copied — the
    caller's vector is not retained).  Discards any pending trial.  Call at
    round starts and whenever the caller changed more than one arc since the
    last commit (diversification, restarts).
    @raise Invalid_argument on a weight-vector size mismatch. *)

val try_arc : t -> Weights.t -> arc:int -> Lexico.t
(** Cost of [w], which must equal the committed setting everywhere except
    (possibly) on [arc].  Stages the trial without installing it.
    @raise Invalid_argument if a trial is already pending, on a bad arc id,
    or on a weight-vector size mismatch. *)

val try_arc_bounded :
  t -> prune:(Lexico.t -> bool) -> Weights.t -> arc:int -> Lexico.t option
(** Like {!try_arc}, but abandons the trial the moment a monotone partial
    cost — ⟨Λ,Φ⟩ accumulated in the fixed destination-then-arc order of the
    full evaluation, both components non-decreasing — satisfies [prune].
    [prune] must answer [true] only for partials no completion of which the
    caller would accept ({!Dtr_cost.Lexico.prunes} against the incumbent(s)
    is the sound instance); under that contract [Some cost] carries the
    bit-identical {!try_arc} result and [None] certifies the candidate
    would have been rejected.  After [None] nothing is staged, but the
    engine still requires the {!rollback} of the usual trial protocol
    (commit is invalid). *)

val commit : t -> unit
(** Installs the pending trial as the new committed state.
    @raise Invalid_argument if no trial is pending. *)

val rollback : t -> unit
(** Discards the pending trial; the committed state is untouched.
    @raise Invalid_argument if no trial is pending. *)

val cost : t -> Lexico.t
(** Cost of the current state (pending trial if staged, else committed). *)

val violations : t -> int

val unreachable_pairs : t -> int

val loads : t -> float array
(** Copy of the current total per-arc loads (both classes). *)

val throughput_loads : t -> float array

val current_routing : t -> Dtr_spf.Routing.t * Dtr_spf.Routing.t
(** Current no-failure routing bases [(delay class, throughput class)] —
    the pending trial's if staged.  Phase 2 feeds these to
    {!Eval.compound_sweep_from} so a failure sweep after a single-arc move
    starts from the cached bases instead of recomputing them. *)
