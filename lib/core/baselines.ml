module Rng = Dtr_util.Rng
module Lexico = Dtr_cost.Lexico

let check_n ~num_arcs ~n =
  if n < 1 || n > num_arcs then invalid_arg "Baselines: bad critical-set size"

let select_random rng ~num_arcs ~n =
  check_n ~num_arcs ~n;
  let picked = Rng.sample_without_replacement rng n num_arcs in
  List.sort compare (Array.to_list picked)

let top_n_by scores n =
  let ids = Criticality.ranking scores in
  List.sort compare (Array.to_list (Array.sub ids 0 n))

let select_load_based (scenario : Scenario.t) ~(phase1 : Phase1.output) ~n =
  let num_arcs = Scenario.num_arcs scenario in
  check_n ~num_arcs ~n;
  let detail = Eval.evaluate scenario phase1.Phase1.best in
  let g = scenario.Scenario.graph in
  let utilization =
    Array.map
      (fun a -> detail.Eval.loads.(a.Dtr_topology.Graph.id) /. a.Dtr_topology.Graph.capacity)
      (Dtr_topology.Graph.arcs g)
  in
  top_n_by utilization n

(* Count transitions between the good and bad performance regions along one
   sample sequence; samples in the middle band keep the previous region. *)
let crossings samples ~good_below ~bad_above =
  let region v = if v <= good_below then `Good else if v >= bad_above then `Bad else `Mid in
  let count = ref 0 and current = ref `Mid in
  Array.iter
    (fun v ->
      match (region v, !current) with
      | `Good, `Bad | `Bad, `Good -> begin
          incr count;
          current := region v
        end
      | `Good, _ -> current := `Good
      | `Bad, _ -> current := `Bad
      | `Mid, _ -> ())
    samples;
  !count

let select_fluctuation ?exec (scenario : Scenario.t) ~(phase1 : Phase1.output) ~n =
  let num_arcs = Scenario.num_arcs scenario in
  check_n ~num_arcs ~n;
  let exec = match exec with Some e -> e | None -> Dtr_exec.Exec.default () in
  let p = scenario.Scenario.params in
  let best = phase1.Phase1.best_cost in
  let b1 = p.Scenario.sla.Dtr_cost.Sla.b1 in
  let sampler = phase1.Phase1.sampler in
  let score arc =
    let lambda_score =
      crossings
        (Sampler.lambda_samples sampler arc)
        ~good_below:(best.Lexico.lambda +. (0.5 *. b1))
        ~bad_above:(best.Lexico.lambda +. (2. *. b1))
    in
    let phi_score =
      crossings
        (Sampler.phi_samples sampler arc)
        ~good_below:(1.05 *. best.Lexico.phi)
        ~bad_above:(1.3 *. best.Lexico.phi)
    in
    float_of_int (lambda_score + phi_score)
  in
  (* Per-arc scoring scans every sample sequence; independent per arc, so it
     runs on the execution context (serially this is Array.init). *)
  top_n_by (Dtr_exec.Exec.map exec ~n:num_arcs ~f:score) n
