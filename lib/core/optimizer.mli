(** End-to-end robust DTR optimization — the public entry point.

    Runs the two-phase heuristic of Fig. 1: regular optimization with
    criticality estimation (Phase 1), critical-set selection (Phase 1c, or a
    baseline selector), then robust optimization over the selected failure
    scenarios (Phase 2). *)

module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure

(** How the Phase-2 failure set is chosen. *)
type selector =
  | Ours  (** the paper's criticality metric + Algorithm 1 *)
  | Full  (** full search: every arc (the brute-force reference) *)
  | Random_selection  (** Yuan-style random subset *)
  | Load_based  (** Fortz-style highest-utilization arcs *)
  | Fluctuation_based  (** Sridharan-style threshold-crossing score *)
  | Given of int list  (** caller-chosen arc ids *)

type failure_model =
  | Link_failures  (** single-arc failures; selector picks the subset *)
  | Node_failures
      (** all single node failures, exhaustively (Section V-F); the selector
          is ignored *)

type solution = {
  scenario : Scenario.t;
  regular : Weights.t;  (** Phase-1 (regular-optimization) solution *)
  regular_cost : Lexico.t;  (** its K_normal — the <Lambda*, Phi*> benchmark *)
  robust : Weights.t;  (** Phase-2 solution *)
  robust_normal_cost : Lexico.t;  (** K_normal of [robust] *)
  robust_fail_cost : Lexico.t;  (** compounded cost over the optimized failures *)
  critical : int list;  (** arc ids optimized against (empty for node model) *)
  failures : Failure.t list;  (** the Phase-2 failure scenarios *)
  phase1 : Phase1.output;
  phase2 : Phase2.output;
  phase1_seconds : float;
  phase2_seconds : float;
}

val optimize :
  rng:Dtr_util.Rng.t ->
  ?selector:selector ->
  ?failure_model:failure_model ->
  ?fraction:float ->
  ?incremental:bool ->
  ?exec:Dtr_exec.Exec.t ->
  Scenario.t ->
  solution
(** Defaults: [selector = Ours], [failure_model = Link_failures], [fraction]
    = the scenario's [critical_fraction], [incremental = true] (price
    single-arc moves with the {!Eval_incr} engine — bit-identical results,
    see {!Phase1.run}/{!Phase2.run}), [exec = Dtr_exec.Exec.default ()]
    (serial unless [DTR_JOBS] is set).  [fraction] overrides the target
    [|Ec| / |E|] for this call.  The execution context parallelises the
    failure-sweep fan-outs of both phases; for a given RNG seed the solution
    — weights, costs, eval counts, critical set — is bit-identical for
    every job count. *)

val regular_only :
  rng:Dtr_util.Rng.t ->
  ?incremental:bool ->
  ?exec:Dtr_exec.Exec.t ->
  Scenario.t ->
  Phase1.output * float
(** Phase 1 alone (the "no robust" routing of the evaluation) and its
    wall-clock seconds. *)

val robust_with :
  rng:Dtr_util.Rng.t ->
  ?incremental:bool ->
  ?exec:Dtr_exec.Exec.t ->
  Scenario.t ->
  phase1:Phase1.output ->
  failures:Failure.t list ->
  critical:int list ->
  solution
(** Assemble a solution from an existing Phase-1 output and an explicit
    failure set — lets experiments reuse one Phase 1 across several Phase-2
    variants (critical vs full vs baselines), as the paper's comparisons
    do. *)
