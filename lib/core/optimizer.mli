(** End-to-end robust DTR optimization — the public entry point.

    Runs the two-phase heuristic of Fig. 1: regular optimization with
    criticality estimation (Phase 1), critical-set selection (Phase 1c, or a
    baseline selector), then robust optimization over the selected failure
    scenarios (Phase 2). *)

module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure

(** How the Phase-2 failure set is chosen. *)
type selector =
  | Ours  (** the paper's criticality metric + Algorithm 1 *)
  | Full  (** full search: every arc (the brute-force reference) *)
  | Random_selection  (** Yuan-style random subset *)
  | Load_based  (** Fortz-style highest-utilization arcs *)
  | Fluctuation_based  (** Sridharan-style threshold-crossing score *)
  | Given of int list  (** caller-chosen arc ids *)

type failure_model =
  | Link_failures  (** single-arc failures; selector picks the subset *)
  | Node_failures
      (** all single node failures, exhaustively (Section V-F); the selector
          is ignored *)
  | Srlg_failures of float
      (** geographic shared-risk groups ({!Dtr_topology.Srlg.geographic}
          with the given conduit radius); criticality is re-estimated over
          the joint events via {!Joint_failure.attribute} and the optimized
          set is every group touching an Algorithm-1-selected arc.  The
          selector is ignored; [fraction] still sizes the selection.
          Requires graph coordinates. *)
  | Two_link_failures of int
      (** the given number of sampled two-link events, importance-sampled
          by the Phase-1 single-link criticality ranking
          ({!Joint_failure.two_link}); the selector is ignored *)
  | Cascade_failures of float
      (** single-link initial events from the usual Phase-1c selection,
          each expanded by iterated overload trips above the given
          utilisation threshold against the Phase-1 best setting
          ({!Joint_failure.cascade}) *)

type solution = {
  scenario : Scenario.t;
  regular : Weights.t;  (** Phase-1 (regular-optimization) solution *)
  regular_cost : Lexico.t;  (** its K_normal — the <Lambda*, Phi*> benchmark *)
  robust : Weights.t;  (** Phase-2 solution *)
  robust_normal_cost : Lexico.t;  (** K_normal of [robust] *)
  robust_fail_cost : Lexico.t;  (** compounded cost over the optimized failures *)
  critical : int list;
      (** arc ids optimized against — member arcs of the optimized events
          for the joint models, empty for the node model *)
  failures : Failure.t list;  (** the Phase-2 failure scenarios *)
  phase1 : Phase1.output;
  phase2 : Phase2.output;
  phase1_seconds : float;
  phase2_seconds : float;
}

val optimize :
  rng:Dtr_util.Rng.t ->
  ?selector:selector ->
  ?failure_model:failure_model ->
  ?fraction:float ->
  ?incremental:bool ->
  ?exec:Dtr_exec.Exec.t ->
  ?fast:bool ->
  Scenario.t ->
  solution
(** Defaults: [selector = Ours], [failure_model = Link_failures], [fraction]
    = the scenario's [critical_fraction], [incremental = true] (price
    single-arc moves with the {!Eval_incr} engine — bit-identical results,
    see {!Phase1.run}/{!Phase2.run}), [exec = Dtr_exec.Exec.default ()]
    (serial unless [DTR_JOBS] is set).  [fraction] overrides the target
    [|Ec| / |E|] for this call.  The execution context parallelises the
    failure-sweep fan-outs of both phases; for a given RNG seed the solution
    — weights, costs, eval counts, critical set — is bit-identical for
    every job count.  [fast] (default [false]) enables Phase 2's
    criticality-gated proposal filter — a quality/time trade that changes
    the trajectory; see {!Phase2.run}. *)

val regular_only :
  rng:Dtr_util.Rng.t ->
  ?incremental:bool ->
  ?exec:Dtr_exec.Exec.t ->
  Scenario.t ->
  Phase1.output * float
(** Phase 1 alone (the "no robust" routing of the evaluation) and its
    wall-clock seconds. *)

(** {1 Warm-started re-optimization}

    The serve daemon's bounded alternative to a full {!optimize}: local
    search started at an incumbent setting, minimising the unconstrained
    objective [J(W) = K_normal(W) + Kfail(W)] over a retained failure set
    under a hard budget. *)

type warm_budget = {
  max_sweeps : int;  (** sweep cap within one diversification round *)
  max_rounds : int;  (** diversification cap (each restarts at the incumbent) *)
}

val default_warm_budget : warm_budget
(** [{ max_sweeps = 40; max_rounds = 3 }]. *)

type warm_result = {
  weights : Weights.t;  (** best setting found (the incumbent if no move won) *)
  objective : Lexico.t;  (** J of [weights] *)
  start_objective : Lexico.t;  (** J of the incumbent, for improvement deltas *)
  warm_sweeps : int;
  warm_evals : int;
  warm_rounds : int;
  warm_pruned : int;  (** trials abandoned by early-abort pricing *)
}

val warm_start :
  rng:Dtr_util.Rng.t ->
  ?exec:Dtr_exec.Exec.t ->
  ?failures:Failure.t list ->
  ?budget:warm_budget ->
  ?target:Lexico.t ->
  ?cache:Delta_cache.t ->
  incumbent:Weights.t ->
  Scenario.t ->
  warm_result
(** Bounded local search from [incumbent] on the scenario's current traffic.
    [failures] (default none — normal-conditions objective only) adds the
    compounded failure cost of each listed scenario to the objective, priced
    through the incremental engine's cached bases and the per-sweep pricing
    cache.  Unlike {!optimize} there is no Phase-1 feasibility gate: the
    search is monotone in J from the incumbent, so the result never scores
    worse than the incumbent.  [target] makes the repair stop mid-sweep as
    soon as J reaches it (see {!Local_search.run_engine}) — the daemon's
    "repair until recovered" mode.  Deterministic for a given RNG state at
    any job count.

    Pricing prunes exactly against the search incumbent (early-abort in the
    incremental pricer when [failures = []], {!Eval.compound_sweep_bounded}
    seeded with the normal cost otherwise); gated by {!Prune}.  [cache], if
    given, memoizes J across calls — the daemon holds one per scenario
    epoch and must {!Delta_cache.bump} it whenever the traffic matrices,
    graph, or failure set change. *)

val robust_with :
  rng:Dtr_util.Rng.t ->
  ?incremental:bool ->
  ?exec:Dtr_exec.Exec.t ->
  Scenario.t ->
  phase1:Phase1.output ->
  failures:Failure.t list ->
  critical:int list ->
  solution
(** Assemble a solution from an existing Phase-1 output and an explicit
    failure set — lets experiments reuse one Phase 1 across several Phase-2
    variants (critical vs full vs baselines), as the paper's comparisons
    do. *)
