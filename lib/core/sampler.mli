(** Collection of post-failure cost samples (Phase 1a / 1b).

    Estimating a link's criticality requires the distribution of network
    costs over acceptable routings when that link fails (Fig. 2 of the
    paper).  Rather than failing every link under thousands of settings, the
    heuristic harvests the samples for free from the Phase-1 local search:
    whenever a perturbation leaves {e both} weights of an arc in
    [[q * wmax, wmax]] it acts like a failure of that arc, so the perturbed
    setting's cost is a sample of the arc's post-failure cost distribution —
    provided the {e pre-perturbation} cost was acceptable, i.e. within the
    relaxed constraints ([Lambda <= best + z * B1],
    [Phi <= (1 + chi) * best]) of the best cost discovered so far. *)

module Lexico = Dtr_cost.Lexico

type t

val create : Scenario.t -> t

val is_failure_like : t -> Weights.t -> arc:int -> bool
(** Both class weights of [arc] lie in [[q * wmax, wmax]]. *)

val is_acceptable : t -> best:Lexico.t -> Lexico.t -> bool
(** The relaxed Phase-1a acceptability test described above. *)

val observe : t -> best:Lexico.t -> Local_search.observation -> bool
(** Feed one search observation; records a sample when the move is
    failure-like for its arc and the pre-move cost is acceptable.  Returns
    whether a sample was recorded. *)

val record : t -> arc:int -> Lexico.t -> unit
(** Unconditional recording — Phase 1b uses it after explicitly raising an
    arc's weights. *)

val count : t -> int -> int
(** Samples held for an arc. *)

val counts : t -> int array

val total : t -> int

val min_count : t -> int

val lambda_samples : t -> int -> float array
(** The recorded [Lambda_fail,l] sample for each observation of arc [l]. *)

val phi_samples : t -> int -> float array
