(** Simulated-annealing weight search — an alternative to the paper's
    accept-only-improvements local search.

    The paper's heuristic escapes local optima by restarting from scratch
    (diversification); annealing instead occasionally accepts worsening
    moves with probability [exp (-delta / T)] under a geometric cooling
    schedule.  Both engines optimize the same lexicographic objective; to
    price a worsening move the two components are scalarised as
    [energy = lambda_weight * Lambda + Phi] ([lambda_weight] defaults to a
    value large enough that one SLA violation outweighs typical congestion
    differences — callers working with unusual cost magnitudes should tune
    it).

    This module exists for experimentation and as a baseline; the paper's
    pipeline ({!Phase1}/{!Phase2}) does not depend on it. *)

module Lexico = Dtr_cost.Lexico

type config = {
  wmax : int;
  initial_temperature : float;  (** in energy units; default 1000 *)
  cooling : float;  (** geometric factor per stage, in (0, 1); default 0.92 *)
  moves_per_stage : int;  (** proposals per temperature stage; default 200 *)
  min_temperature : float;  (** stop when T drops below; default 0.1 *)
  lambda_weight : float;  (** scalarisation of Lambda vs Phi; default 1e4 *)
}

val default_config : wmax:int -> config

type result = {
  best : Weights.t;
  best_cost : Lexico.t;
  proposals : int;  (** total proposed moves *)
  accepted : int;  (** accepted moves (including uphill) *)
  uphill : int;  (** accepted strictly-worsening moves *)
}

val minimize :
  rng:Dtr_util.Rng.t ->
  eval:(Weights.t -> Lexico.t option) ->
  init:Weights.t ->
  config ->
  result
(** Anneals starting from [init] (which must be feasible: [eval init] must
    return [Some]).  Infeasible proposals are always rejected.  The returned
    [best] is the best feasible setting ever visited, not the final state.
    @raise Invalid_argument on a bad configuration or infeasible [init]. *)

val minimize_engine :
  rng:Dtr_util.Rng.t ->
  engine:Local_search.engine ->
  init:Weights.t ->
  config ->
  result
(** {!minimize} over an explicit {!Local_search.engine}: every proposal is a
    single-arc move, priced by [try_arc] and settled with exactly one
    [commit] (move taken) or [rollback].  {!minimize} is this applied to
    {!Local_search.eval_engine}; both consume the same RNG stream. *)

val minimize_incremental :
  rng:Dtr_util.Rng.t ->
  Scenario.t ->
  init:Weights.t ->
  config ->
  result
(** {!minimize_engine} over a fresh {!Eval_incr} engine for the scenario's
    normal-conditions cost — the fast path for annealing on [Knormal].
    Re-visited weight vectors are memoized in a {!Delta_cache} (disabled
    under [DTR_NO_PRUNE=1]); cached costs are bit-identical to re-priced
    ones and cache decisions consume no randomness, so fixed-seed results
    are unchanged. *)
