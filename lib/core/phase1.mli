(** Phase 1: regular optimization + criticality estimation (Fig. 1).

    - {b Phase 1a} runs the local search on [Knormal] (Eq. (3)); every
      failure-like perturbation of an acceptable setting contributes a cost
      sample (see {!Sampler}), and every constraint-satisfying setting found
      is recorded as a potential Phase-2 starting point.
    - {b Phase 1b} (optional) tops up the samples by explicitly raising the
      weights of arcs, starting from the Phase-1a best setting, until the
      criticality rankings converge (rank-change index at most [e] for both
      classes) and every arc has [min_samples] samples, or the round cap is
      hit.
    - {b Phase 1c} is exposed through {!criticality}: Algorithm 1 applied to
      the converged estimates. *)

module Lexico = Dtr_cost.Lexico

type stats = {
  evals : int;  (** cost evaluations, Phase 1a + 1b *)
  sweeps : int;
  rounds : int;  (** diversifications actually run *)
  samples : int;  (** cost samples collected *)
  phase1b_sweeps : int;
  pruned : int;  (** Phase-1a trials abandoned by early-abort pricing *)
  converged : bool;  (** criticality rankings converged *)
}

type output = {
  best : Weights.t;  (** the regular-optimization solution *)
  best_cost : Lexico.t;  (** K*normal = <Lambda*, Phi*> *)
  acceptable : (Weights.t * Lexico.t) list;
      (** recorded settings satisfying Eqs. (5)–(6) w.r.t. [best_cost],
          best first; always contains [best] *)
  criticality : Criticality.t;
  sampler : Sampler.t;
  stats : stats;
}

val run :
  rng:Dtr_util.Rng.t -> ?incremental:bool -> ?exec:Dtr_exec.Exec.t -> Scenario.t -> output
(** [incremental] (default [true]) prices every single-arc move with the
    {!Eval_incr} engine instead of a full {!Eval.cost}; the two paths
    produce bit-identical cost sequences, hence identical results for a
    given RNG — the flag exists so tests and benchmarks can cross-check
    against the full-evaluation oracle.

    [exec] (default {!Dtr_exec.Exec.default}) parallelises the Phase-1b
    top-up: each sweep's failure-emulating weight draws happen serially in
    arc order (preserving the RNG stream), the probes are priced on the
    domain pool — each domain owning an incremental engine anchored at the
    Phase-1a best — and the samples are recorded back in arc order.  The
    sampler state, criticality and stats are bit-identical for every job
    count.  Phase 1a itself is inherently sequential (each move depends on
    the previous acceptance) and always runs on the calling domain. *)

val critical_set : Scenario.t -> output -> int list
(** Phase 1c: Algorithm 1 at the scenario's [critical_fraction] (at least
    one arc). *)
