(** Global gate and accounting for the move-space pruning engine.

    Three pruning mechanisms share this switch: lexicographic early-abort
    pricing (exact, bit-identical to full pricing), the cross-restart
    weight-vector delta cache (exact: hits return previously computed
    values), and — independently gated behind [--fast] — the
    criticality-based move proposal filter.  [DTR_NO_PRUNE=1] in the
    environment, the [--no-prune] CLI flag, or {!set_enabled}[ false]
    force every pricer back onto the full reference path. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Effectiveness counters}

    No-ops unless {!Dtr_obs.Metric.enabled}; searches additionally carry
    always-on per-run counts in their results. *)

val note_abort : unit -> unit
(** A candidate's pricing was abandoned on a partial sum. *)

val note_skip : unit -> unit
(** The [--fast] filter skipped proposing a move. *)

val note_cache_hit : unit -> unit
val note_cache_miss : unit -> unit
