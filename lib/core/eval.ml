module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Routing = Dtr_spf.Routing
module Matrix = Dtr_traffic.Matrix
module Lexico = Dtr_cost.Lexico
module Sla = Dtr_cost.Sla
module Delay_model = Dtr_cost.Delay_model
module Congestion = Dtr_cost.Congestion

type detail = {
  cost : Lexico.t;
  violations : int;
  unreachable_pairs : int;
  loads : float array;
  throughput_loads : float array;
  pair_delays : (int * int * float) array;
}

(* Cost computation given already-computed per-class routing states. *)
let assess (scenario : Scenario.t) ~routing_d ~routing_t ~exclude_node ~rd ~rt
    ~want_pair_delays =
  let g = scenario.Scenario.graph in
  let params = scenario.Scenario.params in
  let num_arcs = Graph.num_arcs g in
  let throughput_loads = Array.make num_arcs 0. in
  let (_ : float) =
    Routing.add_loads routing_t ~demands:(Matrix.dense rt) ?exclude_node
      ~into:throughput_loads ()
  in
  let loads = Array.copy throughput_loads in
  let (_ : float) =
    Routing.add_loads routing_d ~demands:(Matrix.dense rd) ?exclude_node ~into:loads ()
  in
  let arc_delay = Delay_model.arc_delays params.Scenario.delay g ~loads in
  (* Lambda: one expected-delay DP per destination that sinks delay traffic. *)
  let n = Graph.num_nodes g in
  let excluded v = match exclude_node with None -> false | Some x -> x = v in
  let lambda = ref 0. and violations = ref 0 and unreachable = ref 0 in
  let delays_out = ref [] in
  let dense_rd = Matrix.dense rd in
  for dest = 0 to n - 1 do
    if not (excluded dest) then begin
      let sinks_delay_traffic = ref false in
      for src = 0 to n - 1 do
        if src <> dest && (not (excluded src)) && dense_rd.(src).(dest) > 0. then
          sinks_delay_traffic := true
      done;
      if !sinks_delay_traffic then begin
        let del = Routing.expected_delays_to routing_d ~arc_delay ~dest in
        for src = 0 to n - 1 do
          if src <> dest && (not (excluded src)) && dense_rd.(src).(dest) > 0. then begin
            let xi = del.(src) in
            lambda := !lambda +. Sla.pair_penalty params.Scenario.sla xi;
            if xi = Float.infinity then begin
              incr unreachable;
              incr violations
            end
            else if Sla.is_violation params.Scenario.sla xi then incr violations;
            if want_pair_delays then delays_out := (src, dest, xi) :: !delays_out
          end
        done
      end
    end
  done;
  let carries_throughput id = throughput_loads.(id) > 1e-9 in
  let phi = Congestion.total g ~loads ~carries_throughput in
  {
    cost = Lexico.make ~lambda:!lambda ~phi;
    violations = !violations;
    unreachable_pairs = !unreachable;
    loads;
    throughput_loads;
    pair_delays = Array.of_list (List.rev !delays_out);
  }

let failed_arcs_of_mask mask =
  let acc = ref [] in
  Array.iteri (fun id dead -> if dead then acc := id :: !acc) mask;
  !acc

let evaluate (scenario : Scenario.t) ?failure ?rd ?rt ?(want_pair_delays = false) w =
  let g = scenario.Scenario.graph in
  let rd = match rd with Some m -> m | None -> scenario.Scenario.rd in
  let rt = match rt with Some m -> m | None -> scenario.Scenario.rt in
  let disabled, exclude_node =
    match failure with
    | None -> (None, None)
    | Some f -> (Some (Failure.mask g f), Failure.excluded_node f)
  in
  let routing_d = Routing.compute g ~weights:(Weights.delay_of w) ?disabled () in
  let routing_t = Routing.compute g ~weights:(Weights.throughput_of w) ?disabled () in
  assess scenario ~routing_d ~routing_t ~exclude_node ~rd ~rt ~want_pair_delays

let cost scenario ?failure w = (evaluate scenario ?failure w).cost

(* Failure sweeps compute the no-failure routing once and re-route only the
   destinations whose ECMP DAG lost an arc (see Routing.with_failed_arcs). *)
let sweep_details (scenario : Scenario.t) ?rd ?rt w failures =
  let g = scenario.Scenario.graph in
  let rd = match rd with Some m -> m | None -> scenario.Scenario.rd in
  let rt = match rt with Some m -> m | None -> scenario.Scenario.rt in
  let base_d = Routing.compute g ~weights:(Weights.delay_of w) () in
  let base_t = Routing.compute g ~weights:(Weights.throughput_of w) () in
  let mask = Array.make (Graph.num_arcs g) false in
  List.map
    (fun f ->
      Failure.set_mask g f mask;
      let failed = failed_arcs_of_mask mask in
      let routing_d =
        Routing.with_failed_arcs base_d ~weights:(Weights.delay_of w) ~disabled:mask ~failed
      in
      let routing_t =
        Routing.with_failed_arcs base_t ~weights:(Weights.throughput_of w) ~disabled:mask
          ~failed
      in
      assess scenario ~routing_d ~routing_t ~exclude_node:(Failure.excluded_node f) ~rd ~rt
        ~want_pair_delays:false)
    failures

let sweep scenario w failures =
  Array.of_list (List.map (fun d -> d.cost) (sweep_details scenario w failures))

let normal_and_sweep (scenario : Scenario.t) w ~failures ~feasible =
  let g = scenario.Scenario.graph in
  let rd = scenario.Scenario.rd and rt = scenario.Scenario.rt in
  let base_d = Routing.compute g ~weights:(Weights.delay_of w) () in
  let base_t = Routing.compute g ~weights:(Weights.throughput_of w) () in
  let normal =
    assess scenario ~routing_d:base_d ~routing_t:base_t ~exclude_node:None ~rd ~rt
      ~want_pair_delays:false
  in
  if not (feasible normal.cost) then (normal.cost, None)
  else begin
    let mask = Array.make (Graph.num_arcs g) false in
    let total = ref Lexico.zero in
    List.iter
      (fun f ->
        Failure.set_mask g f mask;
        let failed = failed_arcs_of_mask mask in
        let routing_d =
          Routing.with_failed_arcs base_d ~weights:(Weights.delay_of w) ~disabled:mask
            ~failed
        in
        let routing_t =
          Routing.with_failed_arcs base_t ~weights:(Weights.throughput_of w) ~disabled:mask
            ~failed
        in
        let d =
          assess scenario ~routing_d ~routing_t
            ~exclude_node:(Failure.excluded_node f) ~rd ~rt ~want_pair_delays:false
        in
        total := Lexico.add !total d.cost)
      failures;
    (normal.cost, Some !total)
  end

let compound costs = Array.fold_left Lexico.add Lexico.zero costs
