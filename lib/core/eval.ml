module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Routing = Dtr_spf.Routing
module Matrix = Dtr_traffic.Matrix
module Lexico = Dtr_cost.Lexico
module Sla = Dtr_cost.Sla
module Delay_model = Dtr_cost.Delay_model
module Congestion = Dtr_cost.Congestion
module Exec = Dtr_exec.Exec
module Scratch = Dtr_exec.Scratch

type detail = {
  cost : Lexico.t;
  violations : int;
  unreachable_pairs : int;
  loads : float array;
  throughput_loads : float array;
  pair_delays : (int * int * float) array;
}

(* One destination's SLA penalty subtotal: expected-delay DP over the ECMP
   DAG, then a left fold (from 0, in source order) of the pair penalties.
   Keeping the fold per-destination lets the incremental engine cache the
   subtotal and re-sum destination subtotals bit-identically (0. + x = x, so
   a fold of per-destination folds equals the flat fold). *)
let dest_sla (scenario : Scenario.t) ~routing_d ~arc_delay ~dense_rd ~excluded ~dest
    ~on_pair =
  let sla = scenario.Scenario.params.Scenario.sla in
  let n = Array.length dense_rd in
  let del = Routing.expected_delays_to routing_d ~arc_delay ~dest in
  let lambda = ref 0. and violations = ref 0 and unreachable = ref 0 in
  for src = 0 to n - 1 do
    if src <> dest && (not (excluded src)) && dense_rd.(src).(dest) > 0. then begin
      let xi = del.(src) in
      lambda := !lambda +. Sla.pair_penalty sla xi;
      if xi = Float.infinity then begin
        incr unreachable;
        incr violations
      end
      else if Sla.is_violation sla xi then incr violations;
      on_pair src dest xi
    end
  done;
  (!lambda, !violations, !unreachable)

let no_pair = fun _ _ _ -> ()

(* Dense views + delay-sink flags: the scenario's own matrices come with
   cached ones; overrides (perturbed traffic) fall back to a local scan. *)
let dense_inputs (scenario : Scenario.t) ~rd ~rt =
  let dense_rd, sinks =
    if rd == scenario.Scenario.rd then
      (scenario.Scenario.dense_rd, scenario.Scenario.delay_sinks)
    else begin
      let dense = Matrix.dense rd in
      let n = Array.length dense in
      let sinks = Array.make n false in
      for src = 0 to n - 1 do
        for dest = 0 to n - 1 do
          if src <> dest && dense.(src).(dest) > 0. then sinks.(dest) <- true
        done
      done;
      (dense, sinks)
    end
  in
  let dense_rt =
    if rt == scenario.Scenario.rt then scenario.Scenario.dense_rt else Matrix.dense rt
  in
  (dense_rd, dense_rt, sinks)

(* Cost computation given already-computed per-class routing states. *)
let assess (scenario : Scenario.t) ~routing_d ~routing_t ~exclude_node ~dense_rd
    ~dense_rt ~sinks ~want_pair_delays =
  let g = scenario.Scenario.graph in
  let params = scenario.Scenario.params in
  let num_arcs = Graph.num_arcs g in
  let throughput_loads = Array.make num_arcs 0. in
  let (_ : float) =
    Routing.add_loads routing_t ~demands:dense_rt ?exclude_node ~into:throughput_loads ()
  in
  let loads = Array.copy throughput_loads in
  let (_ : float) =
    Routing.add_loads routing_d ~demands:dense_rd ?exclude_node ~into:loads ()
  in
  let arc_delay = Delay_model.arc_delays params.Scenario.delay g ~loads in
  (* Lambda: one expected-delay DP per destination that sinks delay traffic. *)
  let n = Graph.num_nodes g in
  let excluded v = match exclude_node with None -> false | Some x -> x = v in
  let lambda = ref 0. and violations = ref 0 and unreachable = ref 0 in
  let delays_out = ref [] in
  let on_pair =
    if want_pair_delays then fun src dest xi -> delays_out := (src, dest, xi) :: !delays_out
    else no_pair
  in
  for dest = 0 to n - 1 do
    if sinks.(dest) && not (excluded dest) then begin
      let lam, viol, unreach =
        dest_sla scenario ~routing_d ~arc_delay ~dense_rd ~excluded ~dest ~on_pair
      in
      lambda := !lambda +. lam;
      violations := !violations + viol;
      unreachable := !unreachable + unreach
    end
  done;
  let carries_throughput id = throughput_loads.(id) > 1e-9 in
  let phi = Congestion.total g ~loads ~carries_throughput in
  {
    cost = Lexico.make ~lambda:!lambda ~phi;
    violations = !violations;
    unreachable_pairs = !unreachable;
    loads;
    throughput_loads;
    pair_delays = Array.of_list (List.rev !delays_out);
  }

let failed_arcs_of_mask mask =
  let acc = ref [] in
  Array.iteri (fun id dead -> if dead then acc := id :: !acc) mask;
  !acc

(* Per-domain sweep working memory: Dijkstra buffers plus a failure mask,
   cached across parallel operations (pool workers are persistent domains)
   and keyed by graph identity so concurrent scenarios do not collide.  The
   cache is bounded; evicting an entry only costs a reallocation on the next
   sweep touching that graph. *)
type sweep_scratch = { buffers : Routing.buffers; mask : bool array }

let sweep_slot : (Graph.t * sweep_scratch) list ref Scratch.t =
  Scratch.create (fun () -> ref [])

let max_cached_graphs = 8

let sweep_scratch_for g =
  let cache = Scratch.get sweep_slot in
  match List.find_opt (fun (g', _) -> g' == g) !cache with
  | Some (_, s) -> s
  | None ->
      let s =
        { buffers = Routing.make_buffers g; mask = Array.make (Graph.num_arcs g) false }
      in
      cache := (g, s) :: List.filteri (fun i _ -> i < max_cached_graphs - 1) !cache;
      s

let resolve_exec = function Some e -> e | None -> Exec.default ()

let evaluate (scenario : Scenario.t) ?failure ?rd ?rt ?(want_pair_delays = false) w =
  let g = scenario.Scenario.graph in
  let rd = match rd with Some m -> m | None -> scenario.Scenario.rd in
  let rt = match rt with Some m -> m | None -> scenario.Scenario.rt in
  let dense_rd, dense_rt, sinks = dense_inputs scenario ~rd ~rt in
  let disabled, exclude_node =
    match failure with
    | None -> (None, None)
    | Some f -> (Some (Failure.mask g f), Failure.excluded_node f)
  in
  let buffers = Routing.make_buffers g in
  let routing_d = Routing.compute g ~weights:(Weights.delay_of w) ~buffers ?disabled () in
  let routing_t =
    Routing.compute g ~weights:(Weights.throughput_of w) ~buffers ?disabled ()
  in
  assess scenario ~routing_d ~routing_t ~exclude_node ~dense_rd ~dense_rt ~sinks
    ~want_pair_delays

let cost scenario ?failure w = (evaluate scenario ?failure w).cost

(* One failure scenario priced against shared (read-only) no-failure bases,
   with caller-supplied working memory.  This is the unit of work both the
   serial loops and the domain pool execute; it allocates only the
   per-failure routing views and load arrays, never scratch. *)
let assess_failure (scenario : Scenario.t) ~buffers ~mask ~base_d ~base_t ~dense_rd
    ~dense_rt ~sinks w f =
  let g = scenario.Scenario.graph in
  Failure.set_mask g f mask;
  let failed = failed_arcs_of_mask mask in
  let routing_d =
    Routing.with_failed_arcs ~buffers base_d ~weights:(Weights.delay_of w)
      ~disabled:mask ~failed
  in
  let routing_t =
    Routing.with_failed_arcs ~buffers base_t ~weights:(Weights.throughput_of w)
      ~disabled:mask ~failed
  in
  assess scenario ~routing_d ~routing_t ~exclude_node:(Failure.excluded_node f)
    ~dense_rd ~dense_rt ~sinks ~want_pair_delays:false

(* Order-preserving parallel sweep core: failure [i]'s detail lands at index
   [i] whatever domain computed it, so the result — and any in-order
   reduction of it — is bit-identical to the serial loop for every job
   count.  Each domain prices its share with its own cached scratch. *)
let sweep_array (scenario : Scenario.t) ~exec ~base_d ~base_t ~dense_rd ~dense_rt
    ~sinks w failures =
  let g = scenario.Scenario.graph in
  match Exec.jobs exec with
  | 1 ->
      let buffers = Routing.make_buffers g in
      let mask = Array.make (Graph.num_arcs g) false in
      Array.map
        (fun f ->
          assess_failure scenario ~buffers ~mask ~base_d ~base_t ~dense_rd ~dense_rt
            ~sinks w f)
        failures
  | _ ->
      Exec.map exec ~n:(Array.length failures) ~f:(fun i ->
          let s = sweep_scratch_for g in
          assess_failure scenario ~buffers:s.buffers ~mask:s.mask ~base_d ~base_t
            ~dense_rd ~dense_rt ~sinks w failures.(i))

(* Failure sweeps compute the no-failure routing once and re-route only the
   destinations whose ECMP DAG lost an arc (see Routing.with_failed_arcs);
   serial sweeps share one buffer set across every per-failure
   recomputation, parallel sweeps give each domain its own. *)
let sweep_details (scenario : Scenario.t) ?exec ?rd ?rt w failures =
  let exec = resolve_exec exec in
  let g = scenario.Scenario.graph in
  let rd = match rd with Some m -> m | None -> scenario.Scenario.rd in
  let rt = match rt with Some m -> m | None -> scenario.Scenario.rt in
  let dense_rd, dense_rt, sinks = dense_inputs scenario ~rd ~rt in
  let buffers = Routing.make_buffers g in
  let base_d = Routing.compute g ~weights:(Weights.delay_of w) ~buffers () in
  let base_t = Routing.compute g ~weights:(Weights.throughput_of w) ~buffers () in
  Array.to_list
    (sweep_array scenario ~exec ~base_d ~base_t ~dense_rd ~dense_rt ~sinks w
       (Array.of_list failures))

let sweep scenario ?exec w failures =
  Array.of_list (List.map (fun d -> d.cost) (sweep_details scenario ?exec w failures))

(* Compound failure cost starting from already-computed no-failure routing
   bases — shared by [normal_and_sweep] and the Phase-2 incremental path,
   where the bases come out of the evaluation engine's cache.  The reduce
   folds per-failure costs in scenario order, so the sum is bit-identical
   for every job count. *)
let compound_sweep_from (scenario : Scenario.t) ?exec ~routing_d ~routing_t w
    ~failures =
  let exec = resolve_exec exec in
  let dense_rd = scenario.Scenario.dense_rd
  and dense_rt = scenario.Scenario.dense_rt
  and sinks = scenario.Scenario.delay_sinks in
  let details =
    sweep_array scenario ~exec ~base_d:routing_d ~base_t:routing_t ~dense_rd ~dense_rt
      ~sinks w (Array.of_list failures)
  in
  Array.fold_left (fun acc d -> Lexico.add acc d.cost) Lexico.zero details

let normal_and_sweep (scenario : Scenario.t) ?exec w ~failures ~feasible =
  let exec = resolve_exec exec in
  let g = scenario.Scenario.graph in
  let dense_rd = scenario.Scenario.dense_rd
  and dense_rt = scenario.Scenario.dense_rt
  and sinks = scenario.Scenario.delay_sinks in
  let buffers = Routing.make_buffers g in
  let base_d = Routing.compute g ~weights:(Weights.delay_of w) ~buffers () in
  let base_t = Routing.compute g ~weights:(Weights.throughput_of w) ~buffers () in
  let normal =
    assess scenario ~routing_d:base_d ~routing_t:base_t ~exclude_node:None ~dense_rd
      ~dense_rt ~sinks ~want_pair_delays:false
  in
  if not (feasible normal.cost) then (normal.cost, None)
  else
    ( normal.cost,
      Some
        (compound_sweep_from scenario ~exec ~routing_d:base_d ~routing_t:base_t w
           ~failures) )

let compound costs = Array.fold_left Lexico.add Lexico.zero costs

module Internal = struct
  let dest_sla = dest_sla
end
