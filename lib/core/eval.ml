module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Routing = Dtr_spf.Routing
module Matrix = Dtr_traffic.Matrix
module Lexico = Dtr_cost.Lexico
module Sla = Dtr_cost.Sla
module Delay_model = Dtr_cost.Delay_model
module Congestion = Dtr_cost.Congestion
module Exec = Dtr_exec.Exec
module Scratch = Dtr_exec.Scratch
module Spf_delta = Dtr_spf.Spf_delta

type detail = {
  cost : Lexico.t;
  violations : int;
  unreachable_pairs : int;
  loads : float array;
  throughput_loads : float array;
  pair_delays : (int * int * float) array;
}

(* One destination's SLA penalty subtotal: expected-delay DP over the ECMP
   DAG, then a left fold (from 0, in source order) of the pair penalties.
   Keeping the fold per-destination lets the incremental engine cache the
   subtotal and re-sum destination subtotals bit-identically (0. + x = x, so
   a fold of per-destination folds equals the flat fold). *)
let dest_sla (scenario : Scenario.t) ~routing_d ~arc_delay ~dense_rd ~excluded ~dest
    ~on_pair =
  let sla = scenario.Scenario.params.Scenario.sla in
  let n = Array.length dense_rd in
  let del = Routing.expected_delays_to routing_d ~arc_delay ~dest in
  let lambda = ref 0. and violations = ref 0 and unreachable = ref 0 in
  for src = 0 to n - 1 do
    if src <> dest && (not (excluded src)) && dense_rd.(src).(dest) > 0. then begin
      let xi = del.(src) in
      lambda := !lambda +. Sla.pair_penalty sla xi;
      if xi = Float.infinity then begin
        incr unreachable;
        incr violations
      end
      else if Sla.is_violation sla xi then incr violations;
      on_pair src dest xi
    end
  done;
  (!lambda, !violations, !unreachable)

let no_pair = fun _ _ _ -> ()

(* Dense views + delay-sink flags: the scenario's own matrices come with
   cached ones; overrides (perturbed traffic) fall back to a local scan. *)
let dense_inputs (scenario : Scenario.t) ~rd ~rt =
  let dense_rd, sinks =
    if rd == scenario.Scenario.rd then
      (scenario.Scenario.dense_rd, scenario.Scenario.delay_sinks)
    else begin
      let dense = Matrix.dense rd in
      let n = Array.length dense in
      let sinks = Array.make n false in
      for src = 0 to n - 1 do
        for dest = 0 to n - 1 do
          if src <> dest && dense.(src).(dest) > 0. then sinks.(dest) <- true
        done
      done;
      (dense, sinks)
    end
  in
  let dense_rt =
    if rt == scenario.Scenario.rt then scenario.Scenario.dense_rt else Matrix.dense rt
  in
  (dense_rd, dense_rt, sinks)

(* Cost computation given already-computed per-class routing states. *)
let assess (scenario : Scenario.t) ~routing_d ~routing_t ~exclude_node ~dense_rd
    ~dense_rt ~sinks ~want_pair_delays =
  let g = scenario.Scenario.graph in
  let params = scenario.Scenario.params in
  let num_arcs = Graph.num_arcs g in
  let throughput_loads = Array.make num_arcs 0. in
  let (_ : float) =
    Routing.add_loads routing_t ~demands:dense_rt ?exclude_node ~into:throughput_loads ()
  in
  let loads = Array.copy throughput_loads in
  let (_ : float) =
    Routing.add_loads routing_d ~demands:dense_rd ?exclude_node ~into:loads ()
  in
  let arc_delay = Delay_model.arc_delays params.Scenario.delay g ~loads in
  (* Lambda: one expected-delay DP per destination that sinks delay traffic. *)
  let n = Graph.num_nodes g in
  let excluded v = match exclude_node with None -> false | Some x -> x = v in
  let lambda = ref 0. and violations = ref 0 and unreachable = ref 0 in
  let delays_out = ref [] in
  let on_pair =
    if want_pair_delays then fun src dest xi -> delays_out := (src, dest, xi) :: !delays_out
    else no_pair
  in
  for dest = 0 to n - 1 do
    if sinks.(dest) && not (excluded dest) then begin
      let lam, viol, unreach =
        dest_sla scenario ~routing_d ~arc_delay ~dense_rd ~excluded ~dest ~on_pair
      in
      lambda := !lambda +. lam;
      violations := !violations + viol;
      unreachable := !unreachable + unreach
    end
  done;
  let carries_throughput id = throughput_loads.(id) > 1e-9 in
  let phi = Congestion.total g ~loads ~carries_throughput in
  {
    cost = Lexico.make ~lambda:!lambda ~phi;
    violations = !violations;
    unreachable_pairs = !unreachable;
    loads;
    throughput_loads;
    pair_delays = Array.of_list (List.rev !delays_out);
  }

let failed_arcs_of_mask mask =
  let acc = ref [] in
  Array.iteri (fun id dead -> if dead then acc := id :: !acc) mask;
  !acc

(* Per-domain sweep working memory: Dijkstra + dynamic-SPF repair buffers, a
   failure mask, and the cached sweep engine's per-arc flag arrays, cached
   across parallel operations (pool workers are persistent domains) and keyed
   by graph identity so concurrent scenarios do not collide.  The cache is
   bounded; evicting an entry only costs a reallocation on the next sweep
   touching that graph. *)
type sweep_scratch = {
  buffers : Routing.buffers;
  mask : bool array;
  touched : bool array;  (* per-arc: some replaced row differs here *)
  dest_flag : bool array;  (* per-destination mark set, false between uses *)
}

let make_sweep_scratch g =
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  {
    buffers = Routing.make_buffers g;
    mask = Array.make m false;
    touched = Array.make m false;
    dest_flag = Array.make n false;
  }

let sweep_slot : (Graph.t * sweep_scratch) list ref Scratch.t =
  Scratch.create (fun () -> ref [])

let max_cached_graphs = 8

let sweep_scratch_for g =
  let cache = Scratch.get sweep_slot in
  match List.find_opt (fun (g', _) -> g' == g) !cache with
  | Some (_, s) -> s
  | None ->
      let s = make_sweep_scratch g in
      cache := (g, s) :: List.filteri (fun i _ -> i < max_cached_graphs - 1) !cache;
      s

let resolve_exec = function Some e -> e | None -> Exec.default ()

let evaluate (scenario : Scenario.t) ?failure ?rd ?rt ?(want_pair_delays = false) w =
  let g = scenario.Scenario.graph in
  let rd = match rd with Some m -> m | None -> scenario.Scenario.rd in
  let rt = match rt with Some m -> m | None -> scenario.Scenario.rt in
  let dense_rd, dense_rt, sinks = dense_inputs scenario ~rd ~rt in
  let disabled, exclude_node =
    match failure with
    | None -> (None, None)
    | Some f -> (Some (Failure.mask g f), Failure.excluded_node f)
  in
  let buffers = Routing.make_buffers g in
  let routing_d = Routing.compute g ~weights:(Weights.delay_of w) ~buffers ?disabled () in
  let routing_t =
    Routing.compute g ~weights:(Weights.throughput_of w) ~buffers ?disabled ()
  in
  assess scenario ~routing_d ~routing_t ~exclude_node ~dense_rd ~dense_rt ~sinks
    ~want_pair_delays

let cost scenario ?failure w = (evaluate scenario ?failure w).cost

(* One failure scenario priced against shared (read-only) no-failure bases,
   with caller-supplied working memory.  This is the unit of work both the
   serial loops and the domain pool execute; it allocates only the
   per-failure routing views and load arrays, never scratch. *)
let assess_failure (scenario : Scenario.t) ~buffers ~mask ~base_d ~base_t ~dense_rd
    ~dense_rt ~sinks w f =
  let g = scenario.Scenario.graph in
  Failure.set_mask g f mask;
  let failed = failed_arcs_of_mask mask in
  let routing_d =
    Routing.with_failed_arcs ~buffers base_d ~weights:(Weights.delay_of w)
      ~disabled:mask ~failed
  in
  let routing_t =
    Routing.with_failed_arcs ~buffers base_t ~weights:(Weights.throughput_of w)
      ~disabled:mask ~failed
  in
  assess scenario ~routing_d ~routing_t ~exclude_node:(Failure.excluded_node f)
    ~dense_rd ~dense_rt ~sinks ~want_pair_delays:false

(* Aggregate sweep instrumentation for the CLI's --verbose breakdown.  A
   thin compatibility view over per-domain sharded dtr_obs metrics: each
   sweeping domain bumps only its own shard, so overlapping sweeps
   (concurrent callers, nested exec contexts) can never lose updates — the
   old [Atomic.set (Atomic.get + dt)] pair here dropped wall time whenever
   two sweeps raced.  These counters stay on unconditionally: they cost one
   DLS lookup and a few array writes per *sweep*, not per evaluation. *)
module Sweep_stats = struct
  module Metric = Dtr_obs.Metric

  type snapshot = {
    sweeps : int;
    cache_builds : int;
    cached_evals : int;
    full_evals : int;
    seconds : float;
  }

  let sweeps = Metric.Counter.create "eval.sweeps"
  let cache_builds = Metric.Counter.create "eval.sweep.cache_builds"
  let cached_evals = Metric.Counter.create "eval.sweep.cached_evals"
  let full_evals = Metric.Counter.create "eval.sweep.full_evals"
  let seconds = Metric.Accum.create "eval.sweep.seconds"

  let reset () =
    Metric.Counter.reset sweeps;
    Metric.Counter.reset cache_builds;
    Metric.Counter.reset cached_evals;
    Metric.Counter.reset full_evals;
    Metric.Accum.reset seconds

  let snapshot () =
    {
      sweeps = Metric.Counter.value sweeps;
      cache_builds = Metric.Counter.value cache_builds;
      cached_evals = Metric.Counter.value cached_evals;
      full_evals = Metric.Counter.value full_evals;
      seconds = Metric.Accum.value seconds;
    }
end

(* --- Cached failure pricing (the dynamic-SPF sweep engine) --------------

   A failure sweep evaluates many single-failure states against the same
   no-failure bases.  The pieces of the full assessment are cached once per
   sweep, per (destination, class):

   - the per-arc load contribution row of every destination (each arc gets
     at most one addition per destination, so re-summing rows in destination
     order reproduces [Routing.add_loads] bit-for-bit);
   - the per-arc delays of the base loads;
   - every delay-sink destination's SLA subtotal.

   Pricing a failure then only recomputes the rows of the destinations whose
   DAG lost an arc, re-sums the {e touched} arcs (those where some replaced
   row differs) in destination order, patches exactly the touched arcs'
   delays, and recomputes SLA subtotals only for destinations that were
   re-routed or whose DAG reads a changed delay — the same bit-identity
   argument the incremental single-arc engine ([Eval_incr]) established. *)

type sweep_cache = {
  rows_d : float array array; (* rows_d.(dest).(arc): delay-class share *)
  rows_t : float array array;
  users_d : int list array; (* users_d.(arc): dests whose DAG uses the arc *)
  users_t : int list array; (* both in increasing destination order *)
  base_tloads : float array;
  base_loads : float array;
  base_delay : float array;
  base_phi : float array; (* per-arc congestion term (0. off the L set) *)
  base_lam : float array;
  base_viol : int array;
  base_unreach : int array;
}

let contribution_rows routing ~demands ~n ~m =
  Array.init n (fun dest ->
      let row = Array.make m 0. in
      let (_ : float) = Routing.add_loads_dest routing ~demands ~dest ~into:row in
      row)

(* Summing every destination's row in destination order matches the
   [add_loads] accumulation bit-for-bit: each arc receives at most one
   addition per destination there, and adding the [0.] of a non-contributing
   destination is a bitwise no-op on the non-negative partial sums. *)
let sum_rows ~into rows =
  let m = Array.length into in
  Array.iter
    (fun row ->
      for a = 0 to m - 1 do
        into.(a) <- into.(a) +. row.(a)
      done)
    rows

(* DAG membership inverted: which destinations' ECMP DAGs contain each arc.
   Sweeping destinations downwards leaves every per-arc list in increasing
   order — the order [Routing.with_failed_arcs ~changed] requires. *)
let arc_users routing ~n ~m =
  let users = Array.make m [] in
  for dest = n - 1 downto 0 do
    Routing.iter_dag_arcs routing ~dest (fun id -> users.(id) <- dest :: users.(id))
  done;
  users

let build_sweep_cache (scenario : Scenario.t) ~base_d ~base_t ~dense_rd ~dense_rt
    ~sinks =
  let g = scenario.Scenario.graph in
  let params = scenario.Scenario.params in
  let cap = Graph.arc_capacities g in
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  let rows_t = contribution_rows base_t ~demands:dense_rt ~n ~m in
  let rows_d = contribution_rows base_d ~demands:dense_rd ~n ~m in
  let users_t = arc_users base_t ~n ~m in
  let users_d = arc_users base_d ~n ~m in
  let base_tloads = Array.make m 0. in
  sum_rows ~into:base_tloads rows_t;
  let base_loads = Array.copy base_tloads in
  sum_rows ~into:base_loads rows_d;
  let base_delay = Delay_model.arc_delays params.Scenario.delay g ~loads:base_loads in
  let base_phi =
    Array.init m (fun a ->
        if base_tloads.(a) > 1e-9 then
          Congestion.arc_cost ~capacity:cap.(a) ~load:base_loads.(a)
        else 0.)
  in
  let base_lam = Array.make n 0. in
  let base_viol = Array.make n 0 in
  let base_unreach = Array.make n 0 in
  for dest = 0 to n - 1 do
    if sinks.(dest) then begin
      let lam, viol, unreach =
        dest_sla scenario ~routing_d:base_d ~arc_delay:base_delay ~dense_rd
          ~excluded:(fun _ -> false) ~dest ~on_pair:no_pair
      in
      base_lam.(dest) <- lam;
      base_viol.(dest) <- viol;
      base_unreach.(dest) <- unreach
    end
  done;
  {
    rows_d;
    rows_t;
    users_d;
    users_t;
    base_tloads;
    base_loads;
    base_delay;
    base_phi;
    base_lam;
    base_viol;
    base_unreach;
  }

(* One failure priced from the sweep cache.  Only valid when the failure
   excludes no node (a node failure also drops the node's demands, which
   invalidates the cached rows — those fall back to [assess_failure]).  The
   scratch's [touched] and [dest_flag] arrays must be (and are left)
   all-false between calls. *)
let assess_failure_cached (scenario : Scenario.t) ~cache ~scratch ~base_d ~base_t
    ~dense_rd ~dense_rt ~sinks w f =
  let g = scenario.Scenario.graph in
  let params = scenario.Scenario.params in
  let cap = Graph.arc_capacities g and prop = Graph.arc_prop_delays g in
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  let { buffers; mask; touched; dest_flag } = scratch in
  Failure.set_mask g f mask;
  let failed = failed_arcs_of_mask mask in
  (* Destinations whose DAG uses a failed arc, read off the cache's per-arc
     destination lists — exactly the ones [Routing.with_failed_arcs]
     re-derives; every other destination's rows, distances and hop rows are
     shared with the base verbatim. *)
  let changed_from users =
    List.iter
      (fun id -> List.iter (fun dest -> dest_flag.(dest) <- true) users.(id))
      failed;
    let acc = ref [] in
    for dest = n - 1 downto 0 do
      if dest_flag.(dest) then acc := dest :: !acc
    done;
    !acc
  in
  let clear_flags = List.iter (fun dest -> dest_flag.(dest) <- false) in
  let changed_t = changed_from cache.users_t in
  clear_flags changed_t;
  (* The delay-class marks stay set: the SLA pass below extends them with the
     destinations whose DAG reads a changed arc delay. *)
  let changed_d = changed_from cache.users_d in
  let routing_d =
    Routing.with_failed_arcs ~buffers ~changed:changed_d base_d
      ~weights:(Weights.delay_of w) ~disabled:mask ~failed
  in
  let routing_t =
    Routing.with_failed_arcs ~buffers ~changed:changed_t base_t
      ~weights:(Weights.throughput_of w) ~disabled:mask ~failed
  in
  let touched_list = ref [] in
  let mark_touched a =
    if not touched.(a) then begin
      touched.(a) <- true;
      touched_list := a :: !touched_list
    end
  in
  (* A replaced row can differ from the cached one only on the union of the
     old and new DAG supports: contributions are zero everywhere else. *)
  let replace_rows rows base routing demands changed =
    List.map
      (fun dest ->
        let row = Array.make m 0. in
        let (_ : float) = Routing.add_loads_dest routing ~demands ~dest ~into:row in
        let old = rows.(dest) in
        let cmp a = if row.(a) <> old.(a) then mark_touched a in
        Routing.iter_dag_arcs base ~dest cmp;
        Routing.iter_dag_arcs routing ~dest cmp;
        (dest, row))
      changed
  in
  let new_t = replace_rows cache.rows_t base_t routing_t dense_rt changed_t in
  let new_d = replace_rows cache.rows_d base_d routing_d dense_rd changed_d in
  let tloads = Array.copy cache.base_tloads in
  let loads = Array.copy cache.base_loads in
  let cur_t = Array.copy cache.rows_t in
  List.iter (fun (dest, row) -> cur_t.(dest) <- row) new_t;
  let cur_d = Array.copy cache.rows_d in
  List.iter (fun (dest, row) -> cur_d.(dest) <- row) new_d;
  (* Re-sum only the touched arcs, in destination order: per-arc
     accumulations across destinations are independent, so untouched arcs
     keep the cached totals bit-for-bit. *)
  List.iter
    (fun a ->
      let tl = ref 0. in
      for dest = 0 to n - 1 do
        tl := !tl +. cur_t.(dest).(a)
      done;
      tloads.(a) <- !tl;
      let l = ref !tl in
      for dest = 0 to n - 1 do
        l := !l +. cur_d.(dest).(a)
      done;
      loads.(a) <- !l)
    !touched_list;
  let arc_delay = Array.copy cache.base_delay in
  let delay_arcs = ref [] in
  List.iter
    (fun a ->
      let d =
        Delay_model.arc_delay params.Scenario.delay ~capacity:cap.(a)
          ~prop:prop.(a) ~load:loads.(a)
      in
      (* The queueing term is 0 up to utilisation µ, so most touched arcs
         keep their propagation-only delay — and every delay-DP over a DAG
         that reads no changed delay keeps its cached subtotal. *)
      if d <> arc_delay.(a) then begin
        arc_delay.(a) <- d;
        delay_arcs := a :: !delay_arcs
      end)
    !touched_list;
  (* An unchanged destination shares the base DAG, so "its DAG reads a
     changed delay" is exactly membership in some changed arc's user list. *)
  List.iter
    (fun a -> List.iter (fun dest -> dest_flag.(dest) <- true) cache.users_d.(a))
    !delay_arcs;
  let lambda = ref 0. and violations = ref 0 and unreachable = ref 0 in
  for dest = 0 to n - 1 do
    if sinks.(dest) then begin
      let lam, viol, unreach =
        if dest_flag.(dest) then
          dest_sla scenario ~routing_d ~arc_delay ~dense_rd
            ~excluded:(fun _ -> false) ~dest ~on_pair:no_pair
        else (cache.base_lam.(dest), cache.base_viol.(dest), cache.base_unreach.(dest))
      in
      lambda := !lambda +. lam;
      violations := !violations + viol;
      unreachable := !unreachable + unreach
    end
  done;
  (* Congestion from cached per-arc terms, re-evaluated only where a load
     changed.  Adding the [0.] of an arc outside the throughput set matches
     [Congestion.total]'s skip bit-for-bit: the partial sums are
     non-negative, and [x +. 0. = x] then. *)
  let phi = ref 0. in
  for a = 0 to m - 1 do
    let term =
      if touched.(a) then
        if tloads.(a) > 1e-9 then
          Congestion.arc_cost ~capacity:cap.(a) ~load:loads.(a)
        else 0.
      else cache.base_phi.(a)
    in
    phi := !phi +. term
  done;
  List.iter (fun a -> touched.(a) <- false) !touched_list;
  Array.fill dest_flag 0 n false;
  {
    cost = Lexico.make ~lambda:!lambda ~phi:!phi;
    violations = !violations;
    unreachable_pairs = !unreachable;
    loads;
    throughput_loads = tloads;
    pair_delays = [||];
  }

(* Order-preserving parallel sweep core: failure [i]'s detail lands at index
   [i] whatever domain computed it, so the result — and any in-order
   reduction of it — is bit-identical to the serial loop for every job
   count.  Each domain prices its share with its own cached scratch.  With
   the dynamic-SPF engine enabled the sweep cache is built once (about the
   price of one normal assessment) and shared read-only across domains;
   [DTR_NO_DSPF=1] forces every failure back onto the from-scratch path. *)
let sweep_array (scenario : Scenario.t) ~exec ~base_d ~base_t ~dense_rd ~dense_rt
    ~sinks w failures =
  let g = scenario.Scenario.graph in
  let t0 = Unix.gettimeofday () in
  (* Scenario id for the flight recorder: a structural hash is stable within
     a run, so traced sweeps of the same instance correlate. *)
  let trace_id =
    if Dtr_obs.Trace.enabled () then Hashtbl.hash scenario land 0x3FFFFFFF else 0
  in
  if Dtr_obs.Trace.enabled () then
    Dtr_obs.Trace.emit_sweep_begin ~scenario:trace_id
      ~failures:(Array.length failures);
  let use_cache = Spf_delta.enabled () && Array.length failures >= 2 in
  let cache =
    if use_cache then
      Some (build_sweep_cache scenario ~base_d ~base_t ~dense_rd ~dense_rt ~sinks)
    else None
  in
  let price ~scratch f =
    match cache with
    | Some cache when Failure.excluded_node f = None ->
        assess_failure_cached scenario ~cache ~scratch ~base_d ~base_t ~dense_rd
          ~dense_rt ~sinks w f
    | _ ->
        assess_failure scenario ~buffers:scratch.buffers ~mask:scratch.mask ~base_d
          ~base_t ~dense_rd ~dense_rt ~sinks w f
  in
  let details =
    match Exec.jobs exec with
    | 1 ->
        let scratch = make_sweep_scratch g in
        Array.map (fun f -> price ~scratch f) failures
    | _ ->
        Exec.map exec ~n:(Array.length failures) ~f:(fun i ->
            price ~scratch:(sweep_scratch_for g) failures.(i))
  in
  Dtr_obs.Metric.Counter.incr Sweep_stats.sweeps;
  (if use_cache then begin
     Dtr_obs.Metric.Counter.incr Sweep_stats.cache_builds;
     let cached =
       Array.fold_left
         (fun acc f -> if Failure.excluded_node f = None then acc + 1 else acc)
         0 failures
     in
     Dtr_obs.Metric.Counter.add Sweep_stats.cached_evals cached;
     Dtr_obs.Metric.Counter.add Sweep_stats.full_evals
       (Array.length failures - cached)
   end
   else
     Dtr_obs.Metric.Counter.add Sweep_stats.full_evals (Array.length failures));
  Dtr_obs.Metric.Accum.add Sweep_stats.seconds (Unix.gettimeofday () -. t0);
  if Dtr_obs.Trace.enabled () then
    Dtr_obs.Trace.emit_sweep_end ~scenario:trace_id
      ~failures:(Array.length failures);
  details

(* Failure sweeps compute the no-failure routing once and re-route only the
   destinations whose ECMP DAG lost an arc (see Routing.with_failed_arcs);
   serial sweeps share one buffer set across every per-failure
   recomputation, parallel sweeps give each domain its own. *)
let sweep_details (scenario : Scenario.t) ?exec ?rd ?rt w failures =
  let exec = resolve_exec exec in
  let g = scenario.Scenario.graph in
  let rd = match rd with Some m -> m | None -> scenario.Scenario.rd in
  let rt = match rt with Some m -> m | None -> scenario.Scenario.rt in
  let dense_rd, dense_rt, sinks = dense_inputs scenario ~rd ~rt in
  let buffers = Routing.make_buffers g in
  let base_d = Routing.compute g ~weights:(Weights.delay_of w) ~buffers () in
  let base_t = Routing.compute g ~weights:(Weights.throughput_of w) ~buffers () in
  Array.to_list
    (sweep_array scenario ~exec ~base_d ~base_t ~dense_rd ~dense_rt ~sinks w
       (Array.of_list failures))

let sweep scenario ?exec w failures =
  Array.of_list (List.map (fun d -> d.cost) (sweep_details scenario ?exec w failures))

(* Compound failure cost starting from already-computed no-failure routing
   bases — shared by [normal_and_sweep] and the Phase-2 incremental path,
   where the bases come out of the evaluation engine's cache.  The reduce
   folds per-failure costs in scenario order, so the sum is bit-identical
   for every job count. *)
let compound_sweep_from (scenario : Scenario.t) ?exec ~routing_d ~routing_t w
    ~failures =
  let exec = resolve_exec exec in
  let dense_rd = scenario.Scenario.dense_rd
  and dense_rt = scenario.Scenario.dense_rt
  and sinks = scenario.Scenario.delay_sinks in
  let details =
    sweep_array scenario ~exec ~base_d:routing_d ~base_t:routing_t ~dense_rd ~dense_rt
      ~sinks w (Array.of_list failures)
  in
  Array.fold_left (fun acc d -> Lexico.add acc d.cost) Lexico.zero details

type bounded_sweep =
  | Swept of Lexico.t
  | Aborted_at of Lexico.t

(* Bounded compound sweep: failures are priced lazily in scenario order and
   the sweep is abandoned as soon as the monotone partial [init + sum so
   far] satisfies [prune] — per-failure costs are componentwise
   non-negative, so the partial only grows towards the final compound.  The
   per-failure sum accumulates from [Lexico.zero] and [init] is added {e
   outside} the fold, exactly as the unbounded callers compute
   [add init (compound_sweep_from ...)]: float addition is not associative,
   so folding from [init] directly would break bit-identity.  On abort the
   partial itself is returned — it is a certified componentwise lower bound
   on the full compound, which the delta cache stores so a repeat probe of
   the same vector can be rejected without re-pricing.  At jobs > 1 the
   sweep prices everything in parallel and tests the exact total — the
   accept/reject decision is identical, just without the serial saving. *)
let compound_sweep_bounded (scenario : Scenario.t) ?exec ~routing_d ~routing_t
    ?(init = Lexico.zero) ~prune w ~failures =
  let exec = resolve_exec exec in
  match Exec.jobs exec with
  | 1 ->
      let g = scenario.Scenario.graph in
      let dense_rd = scenario.Scenario.dense_rd
      and dense_rt = scenario.Scenario.dense_rt
      and sinks = scenario.Scenario.delay_sinks in
      let failures = Array.of_list failures in
      let num = Array.length failures in
      let t0 = Unix.gettimeofday () in
      let trace_id =
        if Dtr_obs.Trace.enabled () then Hashtbl.hash scenario land 0x3FFFFFFF
        else 0
      in
      if Dtr_obs.Trace.enabled () then
        Dtr_obs.Trace.emit_sweep_begin ~scenario:trace_id ~failures:num;
      let use_cache = Spf_delta.enabled () && num >= 2 in
      (* The sweep cache costs about one full assessment to build, so it is
         built lazily on the first cache-eligible pricing: a probe that the
         bound rejects on its first (or only) full-priced failure — or that
         never prices a cacheable failure at all — pays nothing for it. *)
      let cache = ref None in
      let get_cache () =
        match !cache with
        | Some c -> c
        | None ->
            let c =
              build_sweep_cache scenario ~base_d:routing_d ~base_t:routing_t
                ~dense_rd ~dense_rt ~sinks
            in
            cache := Some c;
            Dtr_obs.Metric.Counter.incr Sweep_stats.cache_builds;
            c
      in
      let scratch = make_sweep_scratch g in
      let cached_prices = ref 0 and full_prices = ref 0 in
      let price f =
        if use_cache && Failure.excluded_node f = None then begin
          incr cached_prices;
          assess_failure_cached scenario ~cache:(get_cache ()) ~scratch
            ~base_d:routing_d ~base_t:routing_t ~dense_rd ~dense_rt ~sinks w f
        end
        else begin
          incr full_prices;
          assess_failure scenario ~buffers:scratch.buffers ~mask:scratch.mask
            ~base_d:routing_d ~base_t:routing_t ~dense_rd ~dense_rt ~sinks w f
        end
      in
      let acc = ref Lexico.zero in
      let i = ref 0 in
      let aborted = ref false in
      while (not !aborted) && !i < num do
        acc := Lexico.add !acc (price failures.(!i)).cost;
        if prune (Lexico.add init !acc) then aborted := true;
        incr i
      done;
      Dtr_obs.Metric.Counter.incr Sweep_stats.sweeps;
      Dtr_obs.Metric.Counter.add Sweep_stats.cached_evals !cached_prices;
      Dtr_obs.Metric.Counter.add Sweep_stats.full_evals !full_prices;
      Dtr_obs.Metric.Accum.add Sweep_stats.seconds (Unix.gettimeofday () -. t0);
      if Dtr_obs.Trace.enabled () then
        Dtr_obs.Trace.emit_sweep_end ~scenario:trace_id ~failures:num;
      if !aborted then Aborted_at (Lexico.add init !acc)
      else Swept (Lexico.add init !acc)
  | _ ->
      let total = compound_sweep_from scenario ~exec ~routing_d ~routing_t w ~failures in
      Swept (Lexico.add init total)

let normal_and_sweep (scenario : Scenario.t) ?exec w ~failures ~feasible =
  let exec = resolve_exec exec in
  let g = scenario.Scenario.graph in
  let dense_rd = scenario.Scenario.dense_rd
  and dense_rt = scenario.Scenario.dense_rt
  and sinks = scenario.Scenario.delay_sinks in
  let buffers = Routing.make_buffers g in
  let base_d = Routing.compute g ~weights:(Weights.delay_of w) ~buffers () in
  let base_t = Routing.compute g ~weights:(Weights.throughput_of w) ~buffers () in
  let normal =
    assess scenario ~routing_d:base_d ~routing_t:base_t ~exclude_node:None ~dense_rd
      ~dense_rt ~sinks ~want_pair_delays:false
  in
  if not (feasible normal.cost) then (normal.cost, None)
  else
    ( normal.cost,
      Some
        (compound_sweep_from scenario ~exec ~routing_d:base_d ~routing_t:base_t w
           ~failures) )

(* What-if pricing from resident bases: the daemon holds its incumbent's
   no-failure routing states alive across events, so a query needs no SPF at
   all in the no-failure case and only the affected-destination re-route
   under a failure.  Scratch comes from the per-domain sweep cache, so
   repeated queries allocate no buffers. *)
let evaluate_from (scenario : Scenario.t) ~routing_d ~routing_t ?failure w =
  let dense_rd = scenario.Scenario.dense_rd
  and dense_rt = scenario.Scenario.dense_rt
  and sinks = scenario.Scenario.delay_sinks in
  match failure with
  | None ->
      assess scenario ~routing_d ~routing_t ~exclude_node:None ~dense_rd ~dense_rt
        ~sinks ~want_pair_delays:false
  | Some f ->
      let scratch = sweep_scratch_for scenario.Scenario.graph in
      assess_failure scenario ~buffers:scratch.buffers ~mask:scratch.mask
        ~base_d:routing_d ~base_t:routing_t ~dense_rd ~dense_rt ~sinks w f

let compound costs = Array.fold_left Lexico.add Lexico.zero costs

module Internal = struct
  let dest_sla = dest_sla
end
