module Graph = Dtr_topology.Graph

type upgrade = {
  arc : Graph.arc_id;
  old_capacity : float;
  new_capacity : float;
}

type report = { upgrades : upgrade list; added_capacity : float }

let resize_congested ?(step = 100.) ?(max_util = 0.9) (scenario : Scenario.t) w =
  if max_util <= 0. || max_util > 1. then invalid_arg "Resize: max_util outside (0, 1]";
  if step <= 0. then invalid_arg "Resize: non-positive step";
  let g = scenario.Scenario.graph in
  let detail = Eval.evaluate scenario w in
  let loads = detail.Eval.loads in
  (* Required capacity per arc, then per physical link (max of directions),
     rounded up to the capacity step. *)
  let required id =
    let need = loads.(id) /. max_util in
    let a = Graph.arc g id in
    if need <= a.Graph.capacity then a.Graph.capacity
    else step *. Float.ceil (need /. step)
  in
  let upgrades = ref [] and added = ref 0. in
  let edges =
    Array.to_list (Graph.arcs g)
    |> List.filter_map (fun a ->
           if a.Graph.rev >= 0 && a.Graph.id > a.Graph.rev then None
           else begin
             let cap =
               if a.Graph.rev < 0 then required a.Graph.id
               else Float.max (required a.Graph.id) (required a.Graph.rev)
             in
             if cap > a.Graph.capacity then begin
               upgrades :=
                 { arc = a.Graph.id; old_capacity = a.Graph.capacity; new_capacity = cap }
                 :: !upgrades;
               added := !added +. (cap -. a.Graph.capacity)
             end;
             Some
               Graph.
                 { u = a.Graph.src; v = a.Graph.dst; cap; prop = a.Graph.delay }
           end)
  in
  let coords = Graph.coords g in
  let g' = Graph.of_edges ?coords ~n:(Graph.num_nodes g) edges in
  let scenario' =
    Scenario.make ~graph:g' ~rd:scenario.Scenario.rd ~rt:scenario.Scenario.rt
      ~params:scenario.Scenario.params
  in
  (scenario', { upgrades = List.rev !upgrades; added_capacity = !added })
