module Rng = Dtr_util.Rng

type t = { wd : int array; wt : int array }

let create ~num_arcs ~init =
  if init < 1 then invalid_arg "Weights.create: weights start at 1";
  { wd = Array.make num_arcs init; wt = Array.make num_arcs init }

let random rng ~num_arcs ~wmax =
  if wmax < 1 then invalid_arg "Weights.random: wmax must be >= 1";
  {
    wd = Array.init num_arcs (fun _ -> Rng.int_in rng 1 wmax);
    wt = Array.init num_arcs (fun _ -> Rng.int_in rng 1 wmax);
  }

let copy t = { wd = Array.copy t.wd; wt = Array.copy t.wt }

let equal a b = a.wd = b.wd && a.wt = b.wt

let num_arcs t = Array.length t.wd

let validate t ~wmax =
  if Array.length t.wd <> Array.length t.wt then
    invalid_arg "Weights.validate: class arrays differ in length";
  let check w = if w < 1 || w > wmax then invalid_arg "Weights.validate: weight out of range" in
  Array.iter check t.wd;
  Array.iter check t.wt

type saved = { arc : int; old_wd : int; old_wt : int }

let save_arc t arc = { arc; old_wd = t.wd.(arc); old_wt = t.wt.(arc) }

let restore_arc t s =
  t.wd.(s.arc) <- s.old_wd;
  t.wt.(s.arc) <- s.old_wt

let set_arc t ~arc ~wd ~wt =
  t.wd.(arc) <- wd;
  t.wt.(arc) <- wt

let perturb_arc rng t ~arc ~wmax =
  t.wd.(arc) <- Rng.int_in rng 1 wmax;
  t.wt.(arc) <- Rng.int_in rng 1 wmax

let raise_arc rng t ~arc ~wmax ~q =
  if q <= 0. || q >= 1. then invalid_arg "Weights.raise_arc: q outside (0, 1)";
  let lo = max 1 (int_of_float (Float.ceil (q *. float_of_int wmax))) in
  t.wd.(arc) <- Rng.int_in rng lo wmax;
  t.wt.(arc) <- Rng.int_in rng lo wmax

let delay_of t = t.wd
let throughput_of t = t.wt
