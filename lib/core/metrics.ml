module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Routing = Dtr_spf.Routing
module Matrix = Dtr_traffic.Matrix
module Lexico = Dtr_cost.Lexico
module Stat = Dtr_util.Stat

let violations_normal scenario w = (Eval.evaluate scenario w).Eval.violations

let violations_per_failure scenario ?exec w failures =
  Array.of_list
    (List.map (fun d -> d.Eval.violations) (Eval.sweep_details scenario ?exec w failures))

let avg_violations per_failure =
  if Array.length per_failure = 0 then 0.
  else Stat.mean (Array.map float_of_int per_failure)

let top_fraction_violations ?(fraction = 0.1) per_failure =
  if Array.length per_failure = 0 then 0.
  else Stat.right_tail_mean (Array.map float_of_int per_failure) ~fraction

let phi_normal scenario w = (Eval.cost scenario w).Lexico.phi

let phi_per_failure scenario ?exec w failures =
  Array.of_list
    (List.map
       (fun d -> d.Eval.cost.Lexico.phi)
       (Eval.sweep_details scenario ?exec w failures))

let phi_fail_total scenario ?exec w failures =
  Array.fold_left ( +. ) 0. (phi_per_failure scenario ?exec w failures)

let phi_gap_percent ~reference x =
  if reference = 0. then 0. else 100. *. (x -. reference) /. reference

let utilizations_normal (scenario : Scenario.t) w =
  let detail = Eval.evaluate scenario w in
  Array.map
    (fun a -> detail.Eval.loads.(a.Graph.id) /. a.Graph.capacity)
    (Graph.arcs scenario.Scenario.graph)

let avg_utilization scenario w =
  let u = utilizations_normal scenario w in
  Stat.mean u

let max_utilization scenario w = Stat.maximum (utilizations_normal scenario w)

type load_increase = { arcs_increased : int; avg_increase : float }

let load_increase_after (scenario : Scenario.t) w failure =
  let g = scenario.Scenario.graph in
  let before = utilizations_normal scenario w in
  let detail = Eval.evaluate scenario ~failure w in
  let mask = Failure.mask g failure in
  let increased = ref 0 and sum = ref 0. in
  Array.iter
    (fun a ->
      let id = a.Graph.id in
      if not mask.(id) then begin
        let delta = (detail.Eval.loads.(id) /. a.Graph.capacity) -. before.(id) in
        if delta > 1e-9 then begin
          incr increased;
          sum := !sum +. delta
        end
      end)
    (Graph.arcs g);
  {
    arcs_increased = !increased;
    avg_increase = (if !increased = 0 then 0. else !sum /. float_of_int !increased);
  }

let avg_max_pair_utilization (scenario : Scenario.t) w =
  let g = scenario.Scenario.graph in
  let detail = Eval.evaluate scenario w in
  let utilization =
    Array.map (fun a -> detail.Eval.loads.(a.Graph.id) /. a.Graph.capacity) (Graph.arcs g)
  in
  let routing_d = Routing.compute g ~weights:(Weights.delay_of w) () in
  let dense_rd = Matrix.dense scenario.Scenario.rd in
  let n = Graph.num_nodes g in
  let acc = Stat.Acc.create () in
  for dest = 0 to n - 1 do
    let sinks = ref false in
    for src = 0 to n - 1 do
      if src <> dest && dense_rd.(src).(dest) > 0. then sinks := true
    done;
    if !sinks then begin
      let bn = Routing.bottleneck_to routing_d ~arc_value:utilization ~dest in
      for src = 0 to n - 1 do
        if src <> dest && dense_rd.(src).(dest) > 0. && bn.(src) < Float.infinity then
          Stat.Acc.add acc bn.(src)
      done
    end
  done;
  Stat.Acc.mean acc

let delay_profile scenario w =
  let detail = Eval.evaluate scenario ~want_pair_delays:true w in
  let delays = Array.map (fun (_, _, d) -> d) detail.Eval.pair_delays in
  Array.sort Float.compare delays;
  delays

type failure_summary = {
  avg : float;
  top10 : float;
  per_failure : int array;
  phi_per_failure : float array;
  phi_total : float;
}

let summarize_failures scenario ?exec w failures =
  let details = Eval.sweep_details scenario ?exec w failures in
  let per_failure = Array.of_list (List.map (fun d -> d.Eval.violations) details) in
  let phi_per_failure =
    Array.of_list (List.map (fun d -> d.Eval.cost.Lexico.phi) details)
  in
  {
    avg = avg_violations per_failure;
    top10 = top_fraction_violations per_failure;
    per_failure;
    phi_per_failure;
    phi_total = Array.fold_left ( +. ) 0. phi_per_failure;
  }
