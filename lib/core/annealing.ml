module Rng = Dtr_util.Rng
module Lexico = Dtr_cost.Lexico
module Metric = Dtr_obs.Metric
module Trace = Dtr_obs.Trace
module Convergence = Dtr_obs.Convergence

type config = {
  wmax : int;
  initial_temperature : float;
  cooling : float;
  moves_per_stage : int;
  min_temperature : float;
  lambda_weight : float;
}

let default_config ~wmax =
  {
    wmax;
    initial_temperature = 1000.;
    cooling = 0.92;
    moves_per_stage = 200;
    min_temperature = 0.1;
    lambda_weight = 1e4;
  }

type result = {
  best : Weights.t;
  best_cost : Lexico.t;
  proposals : int;
  accepted : int;
  uphill : int;
}

let validate config =
  if config.wmax < 2 then invalid_arg "Annealing: wmax must be >= 2";
  if config.cooling <= 0. || config.cooling >= 1. then
    invalid_arg "Annealing: cooling outside (0, 1)";
  if config.initial_temperature <= config.min_temperature then
    invalid_arg "Annealing: initial temperature below the floor";
  if config.moves_per_stage < 1 then invalid_arg "Annealing: moves_per_stage < 1";
  if config.min_temperature <= 0. then invalid_arg "Annealing: min_temperature <= 0";
  if config.lambda_weight <= 0. then invalid_arg "Annealing: lambda_weight <= 0"

let energy config cost =
  (config.lambda_weight *. cost.Lexico.lambda) +. cost.Lexico.phi

let minimize_engine ~rng ~(engine : Local_search.engine) ~init config =
  validate config;
  Convergence.with_series ~name:"annealing" @@ fun () ->
  let current = Weights.copy init in
  let current_cost =
    match engine.Local_search.start current with
    | Some c -> ref c
    | None -> invalid_arg "Annealing: infeasible starting point"
  in
  let num_arcs = Weights.num_arcs current in
  let best = ref (Weights.copy current) and best_cost = ref !current_cost in
  let proposals = ref 0 and accepted = ref 0 and uphill = ref 0 in
  let temperature = ref config.initial_temperature in
  while !temperature >= config.min_temperature do
    let stage_accepted = ref 0 and stage_uphill = ref 0 in
    for _ = 1 to config.moves_per_stage do
      incr proposals;
      let arc = Rng.int rng num_arcs in
      let saved = Weights.save_arc current arc in
      Weights.perturb_arc rng current ~arc ~wmax:config.wmax;
      (* Metropolis needs the exact energy of every proposal (uphill moves
         may still be taken), so no pruning bound is supplied. *)
      match engine.Local_search.try_arc current ~arc ~bound:None with
      | Local_search.Infeasible | Local_search.Pruned ->
          if Trace.enabled () then
            Trace.emit_move ~arc ~accepted:false
              ~old_lambda:!current_cost.Lexico.lambda
              ~old_phi:!current_cost.Lexico.phi ~new_lambda:Float.nan
              ~new_phi:Float.nan;
          engine.Local_search.rollback ();
          Weights.restore_arc current saved
      | Local_search.Cost cost ->
          let delta = energy config cost -. energy config !current_cost in
          let take =
            if delta <= 0. then true
            else Rng.float rng 1. < exp (-.delta /. !temperature)
          in
          if Trace.enabled () then
            Trace.emit_move ~arc ~accepted:take
              ~old_lambda:!current_cost.Lexico.lambda
              ~old_phi:!current_cost.Lexico.phi ~new_lambda:cost.Lexico.lambda
              ~new_phi:cost.Lexico.phi;
          if take then begin
            engine.Local_search.commit ();
            incr accepted;
            incr stage_accepted;
            if delta > 0. then begin
              incr uphill;
              incr stage_uphill
            end;
            current_cost := cost;
            if Lexico.is_better cost ~than:!best_cost then begin
              best := Weights.copy current;
              best_cost := cost
            end
          end
          else begin
            engine.Local_search.rollback ();
            Weights.restore_arc current saved
          end
    done;
    (* One convergence point per temperature stage: [resets] counts the
       stage's uphill acceptances — the annealing analogue of
       diversification. *)
    if Metric.enabled () then
      Convergence.record ~best_lambda:!best_cost.Lexico.lambda
        ~best_phi:!best_cost.Lexico.phi ~cur_lambda:!current_cost.Lexico.lambda
        ~cur_phi:!current_cost.Lexico.phi ~trials:config.moves_per_stage
        ~accepts:!stage_accepted ~resets:!stage_uphill;
    temperature := !temperature *. config.cooling
  done;
  {
    best = !best;
    best_cost = !best_cost;
    proposals = !proposals;
    accepted = !accepted;
    uphill = !uphill;
  }

let minimize ~rng ~eval ~init config =
  minimize_engine ~rng ~engine:(Local_search.eval_engine eval) ~init config

(* Annealing revisits weight vectors constantly — rejected perturbations are
   re-drawn from the same state, and the random walk crosses its own path —
   so the incremental engine memoizes the normal-conditions cost in a
   {!Delta_cache} keyed by the rolling vector hash.  Metropolis needs exact
   energies, so only [Full] entries serve (a [Lower] bound cannot price an
   uphill move); the cached value is the bit-identical result of the same
   pure pricing, and no cache decision consumes randomness, so fixed-seed
   results are unchanged.  A cache hit skips staging an {!Eval_incr} trial
   entirely; if that hit is then {e accepted} the trial is re-staged before
   the commit — acceptance is the rare case at low temperature, and the win
   is the rejected re-visit that now prices nothing. *)
let minimize_incremental ~rng (scenario : Scenario.t) ~init config =
  let e = Eval_incr.create scenario in
  let cache = Delta_cache.create ~capacity:256 in
  let cache_find ~hash w =
    if Prune.enabled () then Delta_cache.find cache ~hash w else None
  in
  let cache_add ~hash w c =
    if Prune.enabled () then Delta_cache.add cache ~hash w c
  in
  (* Shadow of the committed vector plus its rolling hash; the pending
     proposal records whether an [Eval_incr] trial was actually staged (a
     cache hit stages nothing) and keeps the caller's vector so an accepted
     hit can re-stage at commit time, when the proposal is still applied. *)
  let base = ref None in
  let cur_hash = ref 0 in
  let pend = ref None in
  let engine =
    Local_search.
      {
        start =
          (fun w ->
            let c = Eval_incr.anchor e w in
            let h = Delta_cache.hash_of w in
            base := Some (Weights.copy w);
            cur_hash := h;
            pend := None;
            cache_add ~hash:h w c;
            Some c);
        try_arc =
          (fun w ~arc ~bound:_ ->
            let b = match !base with Some b -> b | None -> assert false in
            let h =
              Delta_cache.shift !cur_hash ~arc ~old_wd:b.Weights.wd.(arc)
                ~old_wt:b.Weights.wt.(arc) ~new_wd:w.Weights.wd.(arc)
                ~new_wt:w.Weights.wt.(arc)
            in
            match cache_find ~hash:h w with
            | Some (Delta_cache.Full c) ->
                pend := Some (arc, h, w, false);
                Cost c
            | Some (Delta_cache.Lower _) | None ->
                let c = Eval_incr.try_arc e w ~arc in
                pend := Some (arc, h, w, true);
                cache_add ~hash:h w c;
                Cost c);
        commit =
          (fun () ->
            match (!pend, !base) with
            | Some (arc, h, w, staged), Some b ->
                if not staged then ignore (Eval_incr.try_arc e w ~arc);
                Eval_incr.commit e;
                b.Weights.wd.(arc) <- w.Weights.wd.(arc);
                b.Weights.wt.(arc) <- w.Weights.wt.(arc);
                cur_hash := h;
                pend := None
            | _ -> assert false);
        rollback =
          (fun () ->
            (match !pend with
            | Some (_, _, _, true) -> Eval_incr.rollback e
            | Some (_, _, _, false) | None -> ());
            pend := None);
      }
  in
  minimize_engine ~rng ~engine ~init config
