module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Lexico = Dtr_cost.Lexico

let members g f =
  let mask = Failure.mask g f in
  let out = ref [] in
  for id = Array.length mask - 1 downto 0 do
    if mask.(id) then out := id :: !out
  done;
  !out

(* --- sampled two-link events -------------------------------------------- *)

(* Physical links as representative (lower) arc ids, in id order.  Sampling
   works on links, not arcs: an event fails both directions of both picks. *)
let representative_links g =
  Array.to_list (Graph.arcs g)
  |> List.filter_map (fun a ->
         if a.Graph.rev < 0 || a.Graph.id < a.Graph.rev then Some a.Graph.id
         else None)
  |> Array.of_list

let two_link ~rng ~samples ~score g =
  if samples < 1 then invalid_arg "Joint_failure.two_link: samples < 1";
  if Array.length score <> Graph.num_arcs g then
    invalid_arg "Joint_failure.two_link: score not sized to the arc count";
  let links = representative_links g in
  let n = Array.length links in
  if n < 2 then invalid_arg "Joint_failure.two_link: fewer than two links";
  (* Importance weight of a link: the larger score of its two directions,
     floored so links the ranking never flagged keep a little support —
     two-link robustness is exactly about pairs the single-link analysis
     underestimates. *)
  let weight id =
    let a = Graph.arc g id in
    let s =
      if a.Graph.rev >= 0 then Float.max score.(id) score.(a.Graph.rev)
      else score.(id)
    in
    Float.max s 0.01
  in
  let cum = Array.make n 0. in
  let total = ref 0. in
  Array.iteri
    (fun i id ->
      total := !total +. weight id;
      cum.(i) <- !total)
    links;
  let draw () =
    let r = Rng.float rng !total in
    (* first index with cum > r *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) > r then hi := mid else lo := mid + 1
    done;
    links.(!lo)
  in
  let max_pairs = n * (n - 1) / 2 in
  let want = min samples max_pairs in
  let seen = Hashtbl.create (2 * want) in
  let events = ref [] in
  let attempts = ref 0 in
  let budget = 100 * want in
  while Hashtbl.length seen < want && !attempts < budget do
    incr attempts;
    let e1 = draw () and e2 = draw () in
    if e1 <> e2 then begin
      let key = (min e1 e2, max e1 e2) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let arcs_of e =
          let a = Graph.arc g e in
          if a.Graph.rev >= 0 then [ e; a.Graph.rev ] else [ e ]
        in
        events :=
          Failure.Arcs (List.sort compare (arcs_of (fst key) @ arcs_of (snd key)))
          :: !events
      end
    end
  done;
  (* Rejection sampling can starve when the mass concentrates on few links;
     top the sample up deterministically with the heaviest unseen pairs. *)
  if Hashtbl.length seen < want then begin
    let order =
      Array.init n (fun i -> i)
      |> Array.to_list
      |> List.sort (fun i j -> compare (weight links.(j)) (weight links.(i)))
      |> Array.of_list
    in
    (try
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           if Hashtbl.length seen >= want then raise Exit;
           let e1 = links.(order.(i)) and e2 = links.(order.(j)) in
           let key = (min e1 e2, max e1 e2) in
           if not (Hashtbl.mem seen key) then begin
             Hashtbl.add seen key ();
             let arcs_of e =
               let a = Graph.arc g e in
               if a.Graph.rev >= 0 then [ e; a.Graph.rev ] else [ e ]
             in
             events :=
               Failure.Arcs
                 (List.sort compare (arcs_of (fst key) @ arcs_of (snd key)))
               :: !events
           end
         done
       done
     with Exit -> ())
  end;
  List.rev !events

(* --- cascading events --------------------------------------------------- *)

let cascade ?exec ?(max_waves = 8) ~trip (scenario : Scenario.t) w f =
  if trip <= 0. then invalid_arg "Joint_failure.cascade: trip <= 0";
  if max_waves < 1 then invalid_arg "Joint_failure.cascade: max_waves < 1";
  if Failure.excluded_node f <> None then
    invalid_arg "Joint_failure.cascade: node failures do not cascade";
  let g = scenario.Scenario.graph in
  let cap = Graph.arc_capacities g in
  let num_arcs = Graph.num_arcs g in
  let failed = Array.make num_arcs false in
  List.iter (fun id -> failed.(id) <- true) (members g f);
  let failed_list () =
    let out = ref [] in
    for id = num_arcs - 1 downto 0 do
      if failed.(id) then out := id :: !out
    done;
    !out
  in
  let wave = ref 0 in
  let changed = ref true in
  while !changed && !wave < max_waves do
    changed := false;
    incr wave;
    let detail =
      match Eval.sweep_details scenario ?exec w [ Failure.Arcs (failed_list ()) ] with
      | [ d ] -> d
      | _ -> assert false
    in
    (* A link trips when its utilisation exceeds the threshold;
       [detail.loads] is already the total over both traffic classes (they
       share the physical capacity).  Both directions of a tripped link fail
       together, like the conduit they share. *)
    for id = 0 to num_arcs - 1 do
      if (not failed.(id)) && detail.Eval.loads.(id) /. cap.(id) > trip
      then begin
        failed.(id) <- true;
        let rev = (Graph.arc g id).Graph.rev in
        if rev >= 0 then failed.(rev) <- true;
        changed := true
      end
    done
  done;
  Failure.Arcs (failed_list ())

let cascade_all ?exec ?max_waves ~trip scenario w fs =
  List.map (fun f -> cascade ?exec ?max_waves ~trip scenario w f) fs

(* --- criticality attribution -------------------------------------------- *)

let attribute ~left_tail ~num_arcs ~graph ~events ~costs =
  let num_events = Array.length events in
  Array.iter
    (fun row ->
      if Array.length row <> num_events then
        invalid_arg "Joint_failure.attribute: cost row not sized to events")
    costs;
  let lambda = Array.make num_arcs [] and phi = Array.make num_arcs [] in
  (* Event-major so each arc's samples come out setting-major per event,
     matching the single-link sampler's per-arc sample layout. *)
  Array.iteri
    (fun e f ->
      let arcs = members graph f in
      Array.iter
        (fun row ->
          let c = row.(e) in
          List.iter
            (fun a ->
              lambda.(a) <- c.Lexico.lambda :: lambda.(a);
              phi.(a) <- c.Lexico.phi :: phi.(a))
            arcs)
        costs)
    events;
  let pack xs = Array.map (fun l -> Array.of_list (List.rev l)) xs in
  Criticality.of_samples ~left_tail ~lambda:(pack lambda) ~phi:(pack phi)

let criticality_of_events ?exec ~left_tail (scenario : Scenario.t) ~settings
    ~events =
  if settings = [] then invalid_arg "Joint_failure.criticality_of_events: no settings";
  if events = [] then invalid_arg "Joint_failure.criticality_of_events: no events";
  let events = Array.of_list events in
  let costs =
    List.map
      (fun w -> Eval.sweep scenario ?exec w (Array.to_list events))
      settings
    |> Array.of_list
  in
  attribute ~left_tail ~num_arcs:(Scenario.num_arcs scenario)
    ~graph:scenario.Scenario.graph ~events ~costs
