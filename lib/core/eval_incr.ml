module Graph = Dtr_topology.Graph
module Routing = Dtr_spf.Routing
module Lexico = Dtr_cost.Lexico
module Delay_model = Dtr_cost.Delay_model
module Congestion = Dtr_cost.Congestion

(* The engine caches, per traffic class, the routing state and each
   destination's arc-load contribution, plus each destination's SLA subtotal.
   A single-arc trial recomputes only what the move can affect:

   - routing: [Routing.with_changed_arc] reruns Dijkstra only for the
     destinations whose shortest paths the new weight can alter;
   - loads: only affected destinations re-route their demand; totals are
     re-summed from the per-destination contributions in destination order,
     which reproduces the full evaluation's float summation bit-for-bit
     (each arc receives at most one addition per destination);
   - Lambda: a destination's SLA subtotal is recomputed only if its routing
     changed or some arc of its ECMP DAG changed delay; everything else
     reuses the cached subtotal, and the total is again a destination-order
     re-sum.

   The trial result is staged in [pending] and only installed by [commit];
   [rollback] simply drops it, mirroring [Weights.save_arc]/[restore_arc] on
   the caller's side. *)

type pending = {
  p_arc : int;
  p_wd : int;
  p_wt : int;
  p_routing_d : Routing.t;
  p_routing_t : Routing.t;
  p_rows_d : (int * float array) list;
  p_rows_t : (int * float array) list;
  p_tloads : float array;
  p_loads : float array;
  p_arc_delay : float array;
  p_sla : (int * (float * int * int)) list;
  p_lambda : float;
  p_phi : float;
  p_violations : int;
  p_unreachable : int;
  p_cost : Lexico.t;
}

type t = {
  scenario : Scenario.t;
  committed : Weights.t;  (** weight setting of the committed state *)
  buffers : Routing.buffers;
  mutable routing_d : Routing.t;
  mutable routing_t : Routing.t;
  contrib_d : float array array;  (** per-destination delay-class arc loads *)
  contrib_t : float array array;
  mutable tloads : float array;
  mutable loads : float array;
  mutable arc_delay : float array;
  lambda_dest : float array;  (** per-destination SLA subtotals *)
  viol_dest : int array;
  unreach_dest : int array;
  mutable lambda : float;
  mutable phi : float;
  mutable violations : int;
  mutable unreachable : int;
  mutable cost : Lexico.t;
  mutable pending : pending option;
  mutable aborted : bool;
      (** a bounded trial was abandoned early; cleared by [rollback]/[anchor] *)
  delay_changed : bool array;  (** scratch: arcs whose delay moved this trial *)
}

let scenario t = t.scenario

let not_excluded = fun _ -> false
let no_pair = fun _ _ _ -> ()

(* Totals are always rebuilt as a destination-order left fold over the
   per-destination rows so they match [Routing.add_loads]'s accumulation
   exactly (adding a row's zeros is a bitwise no-op). *)
let fold_rows ~into ~rows ~replaced =
  let m = Array.length into in
  let n = Array.length rows in
  for dest = 0 to n - 1 do
    let row =
      match List.assoc_opt dest replaced with Some r -> r | None -> rows.(dest)
    in
    for i = 0 to m - 1 do
      into.(i) <- into.(i) +. row.(i)
    done
  done;
  into

let sla_values t ~routing_d ~arc_delay ~dest =
  if t.scenario.Scenario.delay_sinks.(dest) then
    Eval.Internal.dest_sla t.scenario ~routing_d ~arc_delay
      ~dense_rd:t.scenario.Scenario.dense_rd ~excluded:not_excluded ~dest
      ~on_pair:no_pair
  else (0., 0, 0)

(* Totals from the per-destination caches, honouring staged replacements. *)
let finish_cost t ~sla_rows =
  let n = Array.length t.lambda_dest in
  let lambda = ref 0. and violations = ref 0 and unreachable = ref 0 in
  for dest = 0 to n - 1 do
    let lam, viol, unreach =
      match List.assoc_opt dest sla_rows with
      | Some v -> v
      | None -> (t.lambda_dest.(dest), t.viol_dest.(dest), t.unreach_dest.(dest))
    in
    lambda := !lambda +. lam;
    violations := !violations + viol;
    unreachable := !unreachable + unreach
  done;
  (!lambda, !violations, !unreachable)

let phi_of t ~tloads ~loads =
  Congestion.total t.scenario.Scenario.graph ~loads ~carries_throughput:(fun id ->
      tloads.(id) > 1e-9)

let anchor t w =
  let g = t.scenario.Scenario.graph in
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  if Weights.num_arcs w <> m then invalid_arg "Eval_incr.anchor: weight vector size";
  t.pending <- None;
  t.aborted <- false;
  Array.blit w.Weights.wd 0 t.committed.Weights.wd 0 m;
  Array.blit w.Weights.wt 0 t.committed.Weights.wt 0 m;
  t.routing_d <-
    Routing.compute g ~weights:(Weights.delay_of t.committed) ~buffers:t.buffers ();
  t.routing_t <-
    Routing.compute g ~weights:(Weights.throughput_of t.committed) ~buffers:t.buffers ();
  for dest = 0 to n - 1 do
    Array.fill t.contrib_d.(dest) 0 m 0.;
    Array.fill t.contrib_t.(dest) 0 m 0.;
    let (_ : float) =
      Routing.add_loads_dest t.routing_d ~demands:t.scenario.Scenario.dense_rd ~dest
        ~into:t.contrib_d.(dest)
    in
    let (_ : float) =
      Routing.add_loads_dest t.routing_t ~demands:t.scenario.Scenario.dense_rt ~dest
        ~into:t.contrib_t.(dest)
    in
    ()
  done;
  t.tloads <- fold_rows ~into:(Array.make m 0.) ~rows:t.contrib_t ~replaced:[];
  t.loads <- fold_rows ~into:(Array.copy t.tloads) ~rows:t.contrib_d ~replaced:[];
  t.arc_delay <-
    Delay_model.arc_delays t.scenario.Scenario.params.Scenario.delay g ~loads:t.loads;
  for dest = 0 to n - 1 do
    let lam, viol, unreach =
      sla_values t ~routing_d:t.routing_d ~arc_delay:t.arc_delay ~dest
    in
    t.lambda_dest.(dest) <- lam;
    t.viol_dest.(dest) <- viol;
    t.unreach_dest.(dest) <- unreach
  done;
  let lambda, violations, unreachable = finish_cost t ~sla_rows:[] in
  t.lambda <- lambda;
  t.violations <- violations;
  t.unreachable <- unreachable;
  t.phi <- phi_of t ~tloads:t.tloads ~loads:t.loads;
  t.cost <- Lexico.make ~lambda ~phi:t.phi;
  t.cost

let create (scenario : Scenario.t) =
  let g = scenario.Scenario.graph in
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  let t =
    {
      scenario;
      committed = Weights.create ~num_arcs:m ~init:1;
      buffers = Routing.make_buffers g;
      routing_d = Routing.compute g ~weights:(Array.make m 1) ();
      routing_t = Routing.compute g ~weights:(Array.make m 1) ();
      contrib_d = Array.init n (fun _ -> Array.make m 0.);
      contrib_t = Array.init n (fun _ -> Array.make m 0.);
      tloads = Array.make m 0.;
      loads = Array.make m 0.;
      arc_delay = Array.make m 0.;
      lambda_dest = Array.make n 0.;
      viol_dest = Array.make n 0;
      unreach_dest = Array.make n 0;
      lambda = 0.;
      phi = 0.;
      violations = 0;
      unreachable = 0;
      cost = Lexico.zero;
      pending = None;
      aborted = false;
      delay_changed = Array.make m false;
    }
  in
  let (_ : Lexico.t) = anchor t t.committed in
  t

(* Bounded Phi: the same arc loop as [Congestion.total] (identical additions
   in identical order when it runs to completion), except that after each
   arc's contribution the monotone partial <lambda, acc> is tested against
   the prune predicate — Phi only grows, so a [true] answer certifies the
   finished cost could not have been accepted.  Returns [None] on abort. *)
let phi_bounded t ~tloads ~loads ~lambda ~prune =
  let g = t.scenario.Scenario.graph in
  let cap = Graph.arc_capacities g in
  let m = Graph.num_arcs g in
  let acc = ref 0. in
  let a = ref 0 in
  let aborted = ref false in
  while (not !aborted) && !a < m do
    if tloads.(!a) > 1e-9 then begin
      acc := !acc +. Congestion.arc_cost ~capacity:cap.(!a) ~load:loads.(!a);
      if prune (Lexico.make ~lambda ~phi:!acc) then aborted := true
    end;
    incr a
  done;
  if !aborted then None else Some !acc

(* [prune], when given, must answer [true] only for partial costs no
   completion of which the caller could accept (see {!Lexico.prunes}).  The
   partial sums fed to it accumulate in the same fixed destination (then
   arc) order as the full evaluation, so a completed bounded trial is
   bit-identical to the unbounded one. *)
let try_arc_impl t ~prune w ~arc =
  if t.pending <> None then invalid_arg "Eval_incr.try_arc: a trial is already pending";
  if t.aborted then invalid_arg "Eval_incr.try_arc: an aborted trial awaits rollback";
  let g = t.scenario.Scenario.graph in
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  if Weights.num_arcs w <> m then invalid_arg "Eval_incr.try_arc: weight vector size";
  if arc < 0 || arc >= m then invalid_arg "Eval_incr.try_arc: bad arc id";
  let old_wd = t.committed.Weights.wd.(arc) and old_wt = t.committed.Weights.wt.(arc) in
  let new_wd = w.Weights.wd.(arc) and new_wt = w.Weights.wt.(arc) in
  let routing_d, aff_d =
    if new_wd = old_wd then (t.routing_d, [])
    else
      Routing.with_changed_arc ~buffers:t.buffers t.routing_d
        ~weights:(Weights.delay_of w) ~arc ~old_weight:old_wd
  in
  let routing_t, aff_t =
    if new_wt = old_wt then (t.routing_t, [])
    else
      Routing.with_changed_arc ~buffers:t.buffers t.routing_t
        ~weights:(Weights.throughput_of w) ~arc ~old_weight:old_wt
  in
  let reroute routing demands dests =
    List.map
      (fun dest ->
        let row = Array.make m 0. in
        let (_ : float) = Routing.add_loads_dest routing ~demands ~dest ~into:row in
        (dest, row))
      dests
  in
  let rows_d = reroute routing_d t.scenario.Scenario.dense_rd aff_d in
  let rows_t = reroute routing_t t.scenario.Scenario.dense_rt aff_t in
  let tloads =
    if rows_t = [] then t.tloads
    else fold_rows ~into:(Array.make m 0.) ~rows:t.contrib_t ~replaced:rows_t
  in
  let loads =
    if rows_t = [] && rows_d = [] then t.loads
    else fold_rows ~into:(Array.copy tloads) ~rows:t.contrib_d ~replaced:rows_d
  in
  let arc_delay =
    if loads == t.loads then t.arc_delay
    else Delay_model.arc_delays t.scenario.Scenario.params.Scenario.delay g ~loads
  in
  let sla =
    if arc_delay == t.arc_delay && aff_d = [] then begin
      (* Lambda cannot move; a prunable current Lambda already decides the
         trial (any Phi >= 0 completes it into a non-improvement). *)
      match prune with
      | Some p when p (Lexico.make ~lambda:t.lambda ~phi:0.) -> None
      | _ -> Some ([], t.lambda, t.violations, t.unreachable)
    end
    else begin
      (* Flag the arcs whose delay moved; any destination whose DAG avoids
         all of them (and whose routing is untouched) keeps its subtotal. *)
      let delay_any = ref false in
      if arc_delay != t.arc_delay then
        for i = 0 to m - 1 do
          let changed = arc_delay.(i) <> t.arc_delay.(i) in
          t.delay_changed.(i) <- changed;
          if changed then delay_any := true
        done;
      let needs dest =
        t.scenario.Scenario.delay_sinks.(dest)
        && (List.mem dest aff_d
           || (!delay_any
              && Routing.exists_dag_arc routing_d ~dest (fun id -> t.delay_changed.(id))))
      in
      match prune with
      | None ->
          let sla_rows = ref [] in
          for dest = n - 1 downto 0 do
            if needs dest then
              sla_rows := (dest, sla_values t ~routing_d ~arc_delay ~dest) :: !sla_rows
          done;
          let lambda, violations, unreachable = finish_cost t ~sla_rows:!sla_rows in
          Some (!sla_rows, lambda, violations, unreachable)
      | Some p ->
          (* Interleave subtotal recomputation with the destination-order
             re-sum and test the monotone partial after every destination.
             Each destination's subtotal is the same pure function of
             (routing, delays) the unbounded path computes and the additions
             happen in [finish_cost]'s exact order, so completing the loop
             yields bit-identical totals. *)
          let sla_rows = ref [] in
          let lambda = ref 0. and violations = ref 0 and unreachable = ref 0 in
          let dest = ref 0 in
          let aborted = ref false in
          while (not !aborted) && !dest < n do
            let d = !dest in
            let lam, viol, unreach =
              if needs d then begin
                let v = sla_values t ~routing_d ~arc_delay ~dest:d in
                sla_rows := (d, v) :: !sla_rows;
                v
              end
              else (t.lambda_dest.(d), t.viol_dest.(d), t.unreach_dest.(d))
            in
            lambda := !lambda +. lam;
            violations := !violations + viol;
            unreachable := !unreachable + unreach;
            if p (Lexico.make ~lambda:!lambda ~phi:0.) then aborted := true;
            incr dest
          done;
          if !aborted then None
          else Some (!sla_rows, !lambda, !violations, !unreachable)
    end
  in
  match sla with
  | None ->
      t.aborted <- true;
      None
  | Some (sla_rows, lambda, violations, unreachable) -> (
      let phi_opt =
        if loads == t.loads then Some t.phi
        else
          match prune with
          | None -> Some (phi_of t ~tloads ~loads)
          | Some p -> phi_bounded t ~tloads ~loads ~lambda ~prune:p
      in
      match phi_opt with
      | None ->
          t.aborted <- true;
          None
      | Some phi ->
          let cost = Lexico.make ~lambda ~phi in
          t.pending <-
            Some
              {
                p_arc = arc;
                p_wd = new_wd;
                p_wt = new_wt;
                p_routing_d = routing_d;
                p_routing_t = routing_t;
                p_rows_d = rows_d;
                p_rows_t = rows_t;
                p_tloads = tloads;
                p_loads = loads;
                p_arc_delay = arc_delay;
                p_sla = sla_rows;
                p_lambda = lambda;
                p_phi = phi;
                p_violations = violations;
                p_unreachable = unreachable;
                p_cost = cost;
              };
          Some cost)

let try_arc t w ~arc =
  match try_arc_impl t ~prune:None w ~arc with
  | Some cost -> cost
  | None -> assert false (* unbounded trials never abort *)

let try_arc_bounded t ~prune w ~arc = try_arc_impl t ~prune:(Some prune) w ~arc

let commit t =
  match t.pending with
  | None -> invalid_arg "Eval_incr.commit: no pending trial"
  | Some p ->
      t.routing_d <- p.p_routing_d;
      t.routing_t <- p.p_routing_t;
      List.iter (fun (dest, row) -> t.contrib_d.(dest) <- row) p.p_rows_d;
      List.iter (fun (dest, row) -> t.contrib_t.(dest) <- row) p.p_rows_t;
      t.tloads <- p.p_tloads;
      t.loads <- p.p_loads;
      t.arc_delay <- p.p_arc_delay;
      List.iter
        (fun (dest, (lam, viol, unreach)) ->
          t.lambda_dest.(dest) <- lam;
          t.viol_dest.(dest) <- viol;
          t.unreach_dest.(dest) <- unreach)
        p.p_sla;
      t.lambda <- p.p_lambda;
      t.phi <- p.p_phi;
      t.violations <- p.p_violations;
      t.unreachable <- p.p_unreachable;
      t.cost <- p.p_cost;
      t.committed.Weights.wd.(p.p_arc) <- p.p_wd;
      t.committed.Weights.wt.(p.p_arc) <- p.p_wt;
      t.pending <- None

let rollback t =
  if t.aborted then t.aborted <- false
  else
    match t.pending with
    | None -> invalid_arg "Eval_incr.rollback: no pending trial"
    | Some _ -> t.pending <- None

let cost t = match t.pending with Some p -> p.p_cost | None -> t.cost

let violations t = match t.pending with Some p -> p.p_violations | None -> t.violations

let unreachable_pairs t =
  match t.pending with Some p -> p.p_unreachable | None -> t.unreachable

let loads t = Array.copy (match t.pending with Some p -> p.p_loads | None -> t.loads)

let throughput_loads t =
  Array.copy (match t.pending with Some p -> p.p_tloads | None -> t.tloads)

let current_routing t =
  match t.pending with
  | Some p -> (p.p_routing_d, p.p_routing_t)
  | None -> (t.routing_d, t.routing_t)
