module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure
module Metric = Dtr_obs.Metric
module Span = Dtr_obs.Span
module Trace = Dtr_obs.Trace
module Convergence = Dtr_obs.Convergence

type stats = { evals : int; sweeps : int; rounds : int }

type output = {
  robust : Weights.t;
  fail_cost : Lexico.t;
  normal_cost : Lexico.t;
  stats : stats;
}

let c_evals = Metric.Counter.create "phase2.evals"
let c_sweeps = Metric.Counter.create "phase2.sweeps"
let c_rounds = Metric.Counter.create "phase2.rounds"

let run ~rng ?(incremental = true) ?exec (scenario : Scenario.t)
    ~(phase1 : Phase1.output) ~failures =
  Span.with_ ~name:"phase2" @@ fun () ->
  if Trace.enabled () then Trace.emit_phase ~name:"phase2";
  if failures = [] then invalid_arg "Phase2.run: no failure scenarios";
  let exec = match exec with Some e -> e | None -> Dtr_exec.Exec.default () in
  let p = scenario.Scenario.params in
  let num_arcs = Scenario.num_arcs scenario in
  let best_cost = phase1.Phase1.best_cost in
  let starts = Array.of_list phase1.Phase1.acceptable in
  if Array.length starts = 0 then invalid_arg "Phase2.run: no acceptable starting setting";
  let feasible normal =
    normal.Lexico.lambda <= best_cost.Lexico.lambda +. Lexico.lambda_tolerance
    && normal.Lexico.phi <= (1. +. p.Scenario.chi) *. best_cost.Lexico.phi
  in
  (* Each Phase-2 evaluation prices the setting under every scenario of the
     optimized failure set; infeasibility w.r.t. Eqs. (5)-(6) short-circuits
     before the expensive sweep.  The incremental engine additionally prices
     the normal-conditions gate with a single-arc patch and starts every
     per-failure [with_failed_arcs] from its cached no-failure bases, so a
     move never recomputes the normal routing from scratch. *)
  let engine =
    if incremental then begin
      let e = Eval_incr.create scenario in
      let sweep w =
        let routing_d, routing_t = Eval_incr.current_routing e in
        Eval.compound_sweep_from scenario ~exec ~routing_d ~routing_t w ~failures
      in
      Local_search.
        {
          start =
            (fun w ->
              let normal = Eval_incr.anchor e w in
              if feasible normal then Some (sweep w) else None);
          try_arc =
            (fun w ~arc ->
              let normal = Eval_incr.try_arc e w ~arc in
              (* Infeasible trials stay staged; the search's rollback on a
                 rejected move discards them. *)
              if feasible normal then Some (sweep w) else None);
          commit = (fun () -> Eval_incr.commit e);
          rollback = (fun () -> Eval_incr.rollback e);
        }
    end
    else
      Local_search.eval_engine (fun w ->
          snd (Eval.normal_and_sweep scenario ~exec w ~failures ~feasible))
  in
  let config =
    Local_search.
      {
        wmax = p.Scenario.wmax;
        interval = p.Scenario.p2_interval;
        rounds = p.Scenario.p2_rounds;
        c = p.Scenario.c_improvement;
        max_rounds = 5 * p.Scenario.p2_rounds;
        max_sweeps = p.Scenario.p2_max_sweeps;
      }
  in
  let init ~round =
    let w, _ = starts.(round mod Array.length starts) in
    w
  in
  let search =
    Convergence.with_series ~name:"phase2" (fun () ->
        Local_search.run_engine ~rng ~num_arcs ~engine ~init config)
  in
  if Metric.enabled () then begin
    Metric.Counter.add c_evals search.Local_search.evals;
    Metric.Counter.add c_sweeps search.Local_search.sweeps;
    Metric.Counter.add c_rounds search.Local_search.rounds_run
  end;
  let robust = search.Local_search.best in
  {
    robust;
    fail_cost = search.Local_search.best_cost;
    normal_cost = Eval.cost scenario robust;
    stats =
      {
        evals = search.Local_search.evals;
        sweeps = search.Local_search.sweeps;
        rounds = search.Local_search.rounds_run;
      };
  }
