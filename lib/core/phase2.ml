module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure
module Metric = Dtr_obs.Metric
module Span = Dtr_obs.Span
module Trace = Dtr_obs.Trace
module Convergence = Dtr_obs.Convergence

type stats = {
  evals : int;
  sweeps : int;
  rounds : int;
  pruned : int;
  skipped : int;
  cache_hits : int;
  cache_misses : int;
}

type output = {
  robust : Weights.t;
  fail_cost : Lexico.t;
  normal_cost : Lexico.t;
  stats : stats;
}

let c_evals = Metric.Counter.create "phase2.evals"
let c_sweeps = Metric.Counter.create "phase2.sweeps"
let c_rounds = Metric.Counter.create "phase2.rounds"

let run ~rng ?(incremental = true) ?exec ?(fast = false) (scenario : Scenario.t)
    ~(phase1 : Phase1.output) ~failures =
  Span.with_ ~name:"phase2" @@ fun () ->
  if Trace.enabled () then Trace.emit_phase ~name:"phase2";
  if failures = [] then invalid_arg "Phase2.run: no failure scenarios";
  let exec = match exec with Some e -> e | None -> Dtr_exec.Exec.default () in
  let p = scenario.Scenario.params in
  let num_arcs = Scenario.num_arcs scenario in
  let best_cost = phase1.Phase1.best_cost in
  let starts = Array.of_list phase1.Phase1.acceptable in
  if Array.length starts = 0 then invalid_arg "Phase2.run: no acceptable starting setting";
  let feasible normal =
    normal.Lexico.lambda <= best_cost.Lexico.lambda +. Lexico.lambda_tolerance
    && normal.Lexico.phi <= (1. +. p.Scenario.chi) *. best_cost.Lexico.phi
  in
  (* Each Phase-2 evaluation prices the setting under every scenario of the
     optimized failure set; infeasibility w.r.t. Eqs. (5)-(6) short-circuits
     before the expensive sweep.  The incremental engine additionally prices
     the normal-conditions gate with a single-arc patch and starts every
     per-failure [with_failed_arcs] from its cached no-failure bases, so a
     move never recomputes the normal routing from scratch. *)
  let cache = Delta_cache.create ~capacity:128 in
  let engine =
    if incremental then begin
      let e = Eval_incr.create scenario in
      (* Shadow of the committed weight vector plus its rolling hash for the
         delta cache; the pending trial's replacement weights and hash are
         recorded at try time because commit receives no vector. *)
      let base = ref None in
      let cur_hash = ref 0 in
      let pend = ref None in
      let sweep w =
        let routing_d, routing_t = Eval_incr.current_routing e in
        Eval.compound_sweep_from scenario ~exec ~routing_d ~routing_t w ~failures
      in
      let sweep_bounded w ~than =
        let routing_d, routing_t = Eval_incr.current_routing e in
        Eval.compound_sweep_bounded scenario ~exec ~routing_d ~routing_t
          ~prune:(fun partial -> Lexico.prunes partial ~than)
          w ~failures
      in
      let cache_find ~hash w =
        if Prune.enabled () then Delta_cache.find cache ~hash w else None
      in
      let cache_add ~hash w c =
        if Prune.enabled () then Delta_cache.add cache ~hash w c
      in
      let cache_add_lower ~hash w partial =
        if Prune.enabled () then Delta_cache.add_lower cache ~hash w partial
      in
      Local_search.
        {
          start =
            (fun w ->
              let normal = Eval_incr.anchor e w in
              if not (feasible normal) then None
              else begin
                let h = Delta_cache.hash_of w in
                base := Some (Weights.copy w);
                cur_hash := h;
                pend := None;
                match cache_find ~hash:h w with
                | Some (Delta_cache.Full c) -> Some c
                | Some (Delta_cache.Lower _) | None ->
                    let c = sweep w in
                    cache_add ~hash:h w c;
                    Some c
              end);
          try_arc =
            (fun w ~arc ~bound ->
              (* The Eqs. (5)-(6) gate is itself boundable: the incremental
                 pricer's partial is a monotone lower bound of the normal
                 cost, so the moment it exceeds either threshold the trial
                 is certifiably infeasible — the predicate below is the
                 exact complement of [feasible], so even the infeasible
                 counters match a run with pruning off. *)
              let staged =
                if Prune.enabled () then
                  Eval_incr.try_arc_bounded e
                    ~prune:(fun partial ->
                      partial.Lexico.lambda
                      > best_cost.Lexico.lambda +. Lexico.lambda_tolerance
                      || partial.Lexico.phi
                         > (1. +. p.Scenario.chi) *. best_cost.Lexico.phi)
                    w ~arc
                else Some (Eval_incr.try_arc e w ~arc)
              in
              (* Infeasible trials stay staged; the search's rollback on a
                 rejected move discards them. *)
              match staged with
              | None -> Infeasible
              | Some normal when not (feasible normal) -> Infeasible
              | Some _ -> begin
                let b = match !base with Some b -> b | None -> assert false in
                let h =
                  Delta_cache.shift !cur_hash ~arc ~old_wd:b.Weights.wd.(arc)
                    ~old_wt:b.Weights.wt.(arc) ~new_wd:w.Weights.wd.(arc)
                    ~new_wt:w.Weights.wt.(arc)
                in
                pend := Some (arc, w.Weights.wd.(arc), w.Weights.wt.(arc), h);
                match (cache_find ~hash:h w, bound) with
                | (Some (Delta_cache.Full c), _) -> Cost c
                | (Some (Delta_cache.Lower lb), Some than)
                  when Lexico.prunes lb ~than ->
                    Pruned
                | ((Some (Delta_cache.Lower _) | None), _) -> (
                    match bound with
                    | Some than when Prune.enabled () -> (
                        match sweep_bounded w ~than with
                        | Eval.Swept c ->
                            cache_add ~hash:h w c;
                            Cost c
                        | Eval.Aborted_at lb ->
                            cache_add_lower ~hash:h w lb;
                            Pruned)
                    | _ ->
                        let c = sweep w in
                        cache_add ~hash:h w c;
                        Cost c)
              end);
          commit =
            (fun () ->
              Eval_incr.commit e;
              match (!pend, !base) with
              | Some (arc, wd, wt, h), Some b ->
                  b.Weights.wd.(arc) <- wd;
                  b.Weights.wt.(arc) <- wt;
                  cur_hash := h;
                  pend := None
              | _ -> assert false);
          rollback =
            (fun () ->
              Eval_incr.rollback e;
              pend := None);
        }
    end
    else
      Local_search.eval_engine (fun w ->
          snd (Eval.normal_and_sweep scenario ~exec w ~failures ~feasible))
  in
  (* --fast proposal filter: static per-arc importance — the larger of the
     Phase-1 normalised criticality (either class) and the utilisation of
     the arc under the Phase-1 best — so the ramped skip cuts arcs that are
     neither critical to failures nor loaded under normal conditions. *)
  (* The skip cap scales with the proposal space: on small topologies the
     ramp's skipped arcs buy too few avoided sweeps to cover the extra
     rounds they force (the 160-arc backbone tier regressed to 0.75x under
     a flat 0.6 cap), so the filter switches off below [skip_floor] arcs
     and ramps linearly to full strength at [skip_full]. *)
  let skip_floor = 192 and skip_full = 288 in
  let max_skip =
    0.6
    *. Float.max 0.
         (Float.min 1.
            (float_of_int (num_arcs - skip_floor)
            /. float_of_int (skip_full - skip_floor)))
  in
  let filter =
    if (not fast) || max_skip <= 0. then None
    else begin
      let crit = phase1.Phase1.criticality in
      let detail = Eval.evaluate scenario phase1.Phase1.best in
      let cap = Dtr_topology.Graph.arc_capacities scenario.Scenario.graph in
      let score =
        Array.init num_arcs (fun a ->
            Float.max
              (Float.max crit.Criticality.norm_lambda.(a)
                 crit.Criticality.norm_phi.(a))
              (detail.Eval.loads.(a) /. cap.(a)))
      in
      Some Local_search.{ score; max_skip }
    end
  in
  let config =
    Local_search.
      {
        wmax = p.Scenario.wmax;
        interval = p.Scenario.p2_interval;
        rounds = p.Scenario.p2_rounds;
        c = p.Scenario.c_improvement;
        max_rounds = 5 * p.Scenario.p2_rounds;
        max_sweeps = p.Scenario.p2_max_sweeps;
      }
  in
  let init ~round =
    let w, _ = starts.(round mod Array.length starts) in
    w
  in
  let search =
    Convergence.with_series ~name:"phase2" (fun () ->
        Local_search.run_engine ~rng ~num_arcs ~engine ~init ?filter config)
  in
  if Metric.enabled () then begin
    Metric.Counter.add c_evals search.Local_search.evals;
    Metric.Counter.add c_sweeps search.Local_search.sweeps;
    Metric.Counter.add c_rounds search.Local_search.rounds_run
  end;
  let robust = search.Local_search.best in
  let cstats = Delta_cache.stats cache in
  {
    robust;
    fail_cost = search.Local_search.best_cost;
    normal_cost = Eval.cost scenario robust;
    stats =
      {
        evals = search.Local_search.evals;
        sweeps = search.Local_search.sweeps;
        rounds = search.Local_search.rounds_run;
        pruned = search.Local_search.pruned;
        skipped = search.Local_search.skipped;
        cache_hits = cstats.Delta_cache.hits;
        cache_misses = cstats.Delta_cache.misses;
      };
  }
