(** Dual-topology weight settings.

    A DTR configuration assigns every arc two positive integer weights: [wd]
    routes the delay-sensitive class and [wt] the throughput-sensitive class
    (the paper's [W = union over l of {WDl, WTl}]).  Weights live in
    [1 .. wmax]. *)

type t = { wd : int array; wt : int array }
(** Indexed by arc id.  Treat as immutable outside this module; the search
    mutates its own working copies through {!set_arc}/{!restore_arc}. *)

val create : num_arcs:int -> init:int -> t
(** Uniform setting. @raise Invalid_argument if [init < 1]. *)

val random : Dtr_util.Rng.t -> num_arcs:int -> wmax:int -> t
(** Independent uniform weights in [1, wmax] for both classes. *)

val copy : t -> t

val equal : t -> t -> bool

val num_arcs : t -> int

val validate : t -> wmax:int -> unit
(** @raise Invalid_argument if any weight is outside [1, wmax] or the two
    arrays have different lengths. *)

(** {1 Perturbation support} *)

type saved = { arc : int; old_wd : int; old_wt : int }
(** Saved weights of one arc, for O(1) undo. *)

val save_arc : t -> int -> saved

val restore_arc : t -> saved -> unit

val set_arc : t -> arc:int -> wd:int -> wt:int -> unit

val perturb_arc : Dtr_util.Rng.t -> t -> arc:int -> wmax:int -> unit
(** Redraws both weights of [arc] uniformly in [1, wmax] (the paper's Phase-1
    move: "both weights on each link are randomly perturbed"). *)

val raise_arc : Dtr_util.Rng.t -> t -> arc:int -> wmax:int -> q:float -> unit
(** Draws both weights of [arc] uniformly in [ceil (q * wmax), wmax] — the
    failure-emulating perturbation used to gather cost samples. *)

val delay_of : t -> int array
(** The delay-class weight vector (shared, do not mutate). *)

val throughput_of : t -> int array
