module Lexico = Dtr_cost.Lexico

(* Int-keyed LRU on the rolling hash; collisions are resolved by comparing
   the stored weight vectors, so a hit is always the exact previously
   computed cost — collisions only cost a miss, never a wrong answer. *)
module Lru = Dtr_util.Lru.Make (struct
  type t = int

  let equal = Int.equal
  let hash h = h land max_int
end)

type value = Full of Lexico.t | Lower of Lexico.t

type entry = {
  e_wd : int array;
  e_wt : int array;
  e_epoch : int;
  e_value : value;
}

type t = {
  lru : entry Lru.t;
  mutable epoch : int;
  (* verified hits/misses: the inner LRU's own stats count raw key probes,
     which a hash collision or a stale epoch would inflate *)
  mutable hits : int;
  mutable lower_hits : int;
  mutable misses : int;
}

let create ~capacity =
  { lru = Lru.create ~capacity; epoch = 0; hits = 0; lower_hits = 0; misses = 0 }

let epoch t = t.epoch

let bump t = t.epoch <- t.epoch + 1

(* Splitmix-style scramble of one arc's weight pair.  XORing the per-arc
   mixes makes the vector hash rolling: a single-arc change shifts the hash
   in O(1) ({!shift}), which is what lets the search maintain the trial
   vector's key incrementally instead of rehashing O(arcs) per move.
   Constants stay below 2^62 so the literals fit OCaml's native int. *)
let mix ~arc ~wd ~wt =
  let z =
    ((arc + 1) * 0x2545F4914F6CDD1D)
    lxor ((wd + 0x632BE59B) * 0x27BB2EE687B0B0FD)
    lxor ((wt + 0x9E3779B9) * 0x369DEA0F31A53F85)
  in
  let z = z lxor (z lsr 31) in
  let z = z * 0x2545F4914F6CDD1D in
  z lxor (z lsr 28)

let hash_of (w : Weights.t) =
  let h = ref 0 in
  for a = 0 to Array.length w.Weights.wd - 1 do
    h := !h lxor mix ~arc:a ~wd:w.Weights.wd.(a) ~wt:w.Weights.wt.(a)
  done;
  !h

let shift h ~arc ~old_wd ~old_wt ~new_wd ~new_wt =
  h
  lxor mix ~arc ~wd:old_wd ~wt:old_wt
  lxor mix ~arc ~wd:new_wd ~wt:new_wt

let eq_arr a b =
  let n = Array.length a in
  Array.length b = n
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let find t ~hash (w : Weights.t) =
  match Lru.find t.lru hash with
  | Some e when e.e_epoch = t.epoch && eq_arr w.Weights.wd e.e_wd
                && eq_arr w.Weights.wt e.e_wt ->
      (match e.e_value with
      | Full _ -> t.hits <- t.hits + 1
      | Lower _ -> t.lower_hits <- t.lower_hits + 1);
      Prune.note_cache_hit ();
      Some e.e_value
  | Some _ | None ->
      t.misses <- t.misses + 1;
      Prune.note_cache_miss ();
      None

let store t ~hash (w : Weights.t) value =
  Lru.add t.lru hash
    {
      e_wd = Array.copy w.Weights.wd;
      e_wt = Array.copy w.Weights.wt;
      e_epoch = t.epoch;
      e_value = value;
    }

let add t ~hash w cost = store t ~hash w (Full cost)

(* A fresher abort never downgrades: a [Full] entry for the same vector is
   strictly more informative than any lower bound, so keep it. *)
let add_lower t ~hash (w : Weights.t) partial =
  match Lru.find t.lru hash with
  | Some { e_value = Full _; e_epoch; e_wd; e_wt }
    when e_epoch = t.epoch && eq_arr w.Weights.wd e_wd && eq_arr w.Weights.wt e_wt
    ->
      ()
  | _ -> store t ~hash w (Lower partial)

type stats = {
  hits : int;
  lower_hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

let stats t =
  let s = Lru.stats t.lru in
  {
    hits = t.hits;
    lower_hits = t.lower_hits;
    misses = t.misses;
    evictions = s.Dtr_util.Lru.evictions;
    length = s.Dtr_util.Lru.length;
    capacity = s.Dtr_util.Lru.capacity;
  }
