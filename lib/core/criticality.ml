module Stat = Dtr_util.Stat
module Exec = Dtr_exec.Exec

let c_computes = Dtr_obs.Metric.Counter.create "criticality.computes"

type t = {
  rho_lambda : float array;
  rho_phi : float array;
  tail_lambda : float array;
  tail_phi : float array;
  norm_lambda : float array;
  norm_phi : float array;
}

let of_samples_with exec ~left_tail ~lambda ~phi =
  Dtr_obs.Span.with_ ~name:"criticality" @@ fun () ->
  Dtr_obs.Metric.Counter.incr c_computes;
  if left_tail <= 0. || left_tail > 1. then
    invalid_arg "Criticality: left_tail outside (0, 1]";
  if Array.length lambda <> Array.length phi then
    invalid_arg "Criticality: per-class sample arrays differ in length";
  let m = Array.length lambda in
  let rho_lambda = Array.make m 0. and rho_phi = Array.make m 0. in
  let tail_lambda = Array.make m 0. and tail_phi = Array.make m 0. in
  (* Each arc's tail estimation sorts its sample set — independent work,
     spread over the execution context; results land at their arc index, so
     every statistic is bit-identical to the serial loop. *)
  let arc_stats arc =
    let ls = lambda.(arc) and ps = phi.(arc) in
    let tl, rl =
      if Array.length ls > 0 then begin
        let tail = Stat.left_tail_mean ls ~fraction:left_tail in
        (tail, Stat.mean ls -. tail)
      end
      else (0., 0.)
    in
    let tp, rp =
      if Array.length ps > 0 then begin
        let tail = Stat.left_tail_mean ps ~fraction:left_tail in
        (tail, Stat.mean ps -. tail)
      end
      else (0., 0.)
    in
    (tl, rl, tp, rp)
  in
  let stats = Exec.map exec ~n:m ~f:arc_stats in
  Array.iteri
    (fun arc (tl, rl, tp, rp) ->
      tail_lambda.(arc) <- tl;
      rho_lambda.(arc) <- rl;
      tail_phi.(arc) <- tp;
      rho_phi.(arc) <- rp)
    stats;
  (* The normalisation denominators are the summed left-tail costs: lower
     bounds on the compounded failure cost any routing can reach.  A zero sum
     (e.g. no SLA violation ever observed) falls back to a tiny constant;
     within-class ordering is unaffected. *)
  let normalise rho tails =
    let denom = Float.max (Array.fold_left ( +. ) 0. tails) 1e-9 in
    Array.map (fun r -> r /. denom) rho
  in
  {
    rho_lambda;
    rho_phi;
    tail_lambda;
    tail_phi;
    norm_lambda = normalise rho_lambda tail_lambda;
    norm_phi = normalise rho_phi tail_phi;
  }

let of_samples ~left_tail ~lambda ~phi =
  of_samples_with (Exec.default ()) ~left_tail ~lambda ~phi

let compute ?exec ~left_tail sampler =
  let exec = match exec with Some e -> e | None -> Exec.default () in
  let m = Array.length (Sampler.counts sampler) in
  let lambda = Array.init m (Sampler.lambda_samples sampler) in
  let phi = Array.init m (Sampler.phi_samples sampler) in
  of_samples_with exec ~left_tail ~lambda ~phi

let ranking values =
  let m = Array.length values in
  let ids = Array.init m (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare values.(b) values.(a) with 0 -> compare a b | c -> c)
    ids;
  ids

let select t ~n =
  let m = Array.length t.norm_lambda in
  if n < 1 || n > m then invalid_arg "Criticality.select: bad target size";
  let e_lambda = ranking t.norm_lambda and e_phi = ranking t.norm_phi in
  (* in_sets.(arc): how many of the two (trimmed) lists still contain it. *)
  let in_sets = Array.make m 0 in
  Array.iter (fun arc -> in_sets.(arc) <- in_sets.(arc) + 1) e_lambda;
  Array.iter (fun arc -> in_sets.(arc) <- in_sets.(arc) + 1) e_phi;
  let union_size = ref m in
  let drop arc =
    in_sets.(arc) <- in_sets.(arc) - 1;
    if in_sets.(arc) = 0 then decr union_size
  in
  let n1 = ref m and n2 = ref m in
  (* Running normalised errors rho_Lambda(E_Lambda,n1) and rho_Phi(E_Phi,n2):
     the criticality mass outside the kept prefixes. *)
  let err_lambda = ref 0. and err_phi = ref 0. in
  while !union_size > n do
    (* Error each list would carry if trimmed by one more element. *)
    let next_lambda_error =
      if !n1 = 0 then Float.infinity
      else !err_lambda +. t.norm_lambda.(e_lambda.(!n1 - 1))
    in
    let next_phi_error =
      if !n2 = 0 then Float.infinity else !err_phi +. t.norm_phi.(e_phi.(!n2 - 1))
    in
    (* Algorithm 1: trim the list whose trimming costs less error (keep the
       one whose trimming would cost more). *)
    if next_lambda_error >= next_phi_error && !n2 > 0 then begin
      decr n2;
      err_phi := next_phi_error;
      drop e_phi.(!n2)
    end
    else begin
      decr n1;
      err_lambda := next_lambda_error;
      drop e_lambda.(!n1)
    end
  done;
  let result = ref [] in
  for arc = m - 1 downto 0 do
    if in_sets.(arc) > 0 then result := arc :: !result
  done;
  !result

let positions ranking =
  let pos = Array.make (Array.length ranking) 0 in
  Array.iteri (fun rank arc -> pos.(arc) <- rank) ranking;
  pos

let rank_change_index ~prev ~current =
  if Array.length prev <> Array.length current then
    invalid_arg "Criticality.rank_change_index: length mismatch";
  let p = positions prev and c = positions current in
  let changes = Array.mapi (fun arc rank -> float_of_int (abs (rank - c.(arc)))) p in
  let total = Array.fold_left ( +. ) 0. changes in
  if total = 0. then 0.
  else
    (* gamma_l proportional to S_l: S = sum S_l^2 / sum S_l. *)
    Array.fold_left (fun acc s -> acc +. (s *. s)) 0. changes /. total

module Convergence = struct
  type tracker = {
    scenario : Scenario.t;
    mutable prev_lambda : int array option;
    mutable prev_phi : int array option;
    mutable last : t option;
  }

  let create scenario = { scenario; prev_lambda = None; prev_phi = None; last = None }

  let check ?exec tracker sampler =
    let p = tracker.scenario.Scenario.params in
    let crit = compute ?exec ~left_tail:p.Scenario.left_tail sampler in
    tracker.last <- Some crit;
    let r_lambda = ranking crit.norm_lambda and r_phi = ranking crit.norm_phi in
    let converged =
      match (tracker.prev_lambda, tracker.prev_phi) with
      | Some pl, Some pp ->
          rank_change_index ~prev:pl ~current:r_lambda <= p.Scenario.conv_threshold
          && rank_change_index ~prev:pp ~current:r_phi <= p.Scenario.conv_threshold
      | _ -> false
    in
    tracker.prev_lambda <- Some r_lambda;
    tracker.prev_phi <- Some r_phi;
    converged

  let last tracker = tracker.last
end
