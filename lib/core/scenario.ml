module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Matrix = Dtr_traffic.Matrix

type params = {
  wmax : int;
  sla : Dtr_cost.Sla.params;
  delay : Dtr_cost.Delay_model.params;
  chi : float;
  z : float;
  q : float;
  tau : int;
  conv_threshold : float;
  left_tail : float;
  min_samples : int;
  p1_rounds : int;
  p1_interval : int;
  p1_max_sweeps : int;
  p2_rounds : int;
  p2_interval : int;
  p2_max_sweeps : int;
  c_improvement : float;
  critical_fraction : float;
  max_phase1b_rounds : int;
}

let paper_params =
  {
    wmax = 20;
    sla = Dtr_cost.Sla.default;
    delay = Dtr_cost.Delay_model.default;
    chi = 0.2;
    z = 0.5;
    q = 0.7;
    tau = 30;
    conv_threshold = 2.;
    left_tail = 0.1;
    min_samples = 10;
    p1_rounds = 20;
    p1_interval = 100;
    p1_max_sweeps = 1_000_000;
    p2_rounds = 10;
    p2_interval = 30;
    p2_max_sweeps = 1_000_000;
    c_improvement = 0.001;
    critical_fraction = 0.15;
    max_phase1b_rounds = 50;
  }

let quick_params =
  {
    paper_params with
    tau = 8;
    min_samples = 4;
    p1_rounds = 4;
    p1_interval = 12;
    p1_max_sweeps = 60;
    p2_rounds = 3;
    p2_interval = 8;
    p2_max_sweeps = 30;
    max_phase1b_rounds = 10;
  }

type t = {
  graph : Graph.t;
  rd : Matrix.t;
  rt : Matrix.t;
  params : params;
  dense_rd : float array array;
  dense_rt : float array array;
  delay_sinks : bool array;
}

let validate_params p =
  if p.wmax < 2 then invalid_arg "Scenario: wmax must be >= 2";
  if p.chi < 0. then invalid_arg "Scenario: chi must be >= 0";
  if p.z < 0. || p.z > 1. then invalid_arg "Scenario: z outside [0, 1]";
  if p.q <= 0. || p.q >= 1. then invalid_arg "Scenario: q outside (0, 1)";
  if p.left_tail <= 0. || p.left_tail > 1. then invalid_arg "Scenario: left_tail outside (0, 1]";
  if p.critical_fraction <= 0. || p.critical_fraction > 1. then
    invalid_arg "Scenario: critical_fraction outside (0, 1]";
  if p.p1_rounds < 1 || p.p2_rounds < 1 || p.p1_interval < 1 || p.p2_interval < 1 then
    invalid_arg "Scenario: search budgets must be positive"

let delay_sinks_of dense =
  let n = Array.length dense in
  let sinks = Array.make n false in
  for src = 0 to n - 1 do
    for dest = 0 to n - 1 do
      if src <> dest && dense.(src).(dest) > 0. then sinks.(dest) <- true
    done
  done;
  sinks

let make ~graph ~rd ~rt ~params =
  validate_params params;
  let n = Graph.num_nodes graph in
  if Matrix.size rd <> n || Matrix.size rt <> n then
    invalid_arg "Scenario.make: matrix size does not match the graph";
  let dense_rd = Matrix.dense rd and dense_rt = Matrix.dense rt in
  { graph; rd; rt; params; dense_rd; dense_rt; delay_sinks = delay_sinks_of dense_rd }

let with_sla t sla = { t with params = { t.params with sla } }
let with_traffic t ~rd ~rt = make ~graph:t.graph ~rd ~rt ~params:t.params

let num_arcs t = Graph.num_arcs t.graph
let num_nodes t = Graph.num_nodes t.graph

let random_instance ?(params = paper_params) ?(nodes = 30) ?(degree = 6.)
    ?(avg_util = 0.43) rng kind =
  let graph = Gen.generate rng kind ~nodes ~degree in
  let n = Graph.num_nodes graph in
  let rd, rt = Dtr_traffic.Gravity.pair rng ~nodes:n ~total:1000. in
  let rd, rt =
    Dtr_traffic.Scaling.calibrate graph ~rd ~rt
      (Dtr_traffic.Scaling.Avg_utilization avg_util)
  in
  make ~graph ~rd ~rt ~params
