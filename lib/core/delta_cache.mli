(** Cross-restart weight-vector delta cache.

    The searches revisit weight vectors: Phase 2 restarts every round from
    a small pool of starting points, rejected perturbations are re-drawn,
    and the daemon's warm re-optimizations repeatedly repair the same
    incumbent.  For a fixed scenario and failure set the priced objective
    is a pure function of the weight vector, so this cache memoizes
    ⟨Λ,Φ⟩ keyed by a rolling hash of the vector: a hit skips the failure
    sweep entirely and returns the exact previously computed cost (full
    vector equality is verified, so collisions cannot corrupt results).

    Aborted pricings are cached too: a bounded sweep that gave up mid-way
    certifies a {e lower bound} — the monotone partial ⟨Λ,Φ⟩ it had
    accumulated — and a later probe can reject the same vector with a
    single {!Dtr_cost.Lexico.prunes} test against its own current bound,
    with no pricing at all.  That is what makes repeat re-optimizations
    cheap: the vast majority of moves abort, and without lower-bound
    entries a re-run would pay every partial sweep again.

    The hash is an XOR of per-arc mixes, maintained in O(1) per single-arc
    move via {!shift}.  Long-lived holders (the serve daemon) call {!bump}
    whenever anything the cost depends on besides the weights changes —
    graph, traffic matrices, failure set — which invalidates every resident
    entry ({e epoch invalidation}); stale entries die lazily under LRU
    pressure. *)

type t

type value =
  | Full of Dtr_cost.Lexico.t
      (** the exact compound cost of the stored vector *)
  | Lower of Dtr_cost.Lexico.t
      (** a componentwise lower bound on it (the partial at a sweep abort);
          sound to reject against any bound [b] with
          [Lexico.prunes partial ~than:b] — one hop, no bound chaining *)

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val epoch : t -> int

val bump : t -> unit
(** Invalidate every resident entry (the scenario or failure set moved). *)

val hash_of : Weights.t -> int
(** Full rolling hash of a vector — O(arcs), used once per restart. *)

val shift :
  int -> arc:int -> old_wd:int -> old_wt:int -> new_wd:int -> new_wt:int -> int
(** O(1) hash update for a single-arc weight change. *)

val find : t -> hash:int -> Weights.t -> value option
(** Exact: [Some _] only for an entry of the current epoch whose stored
    vector equals [w].  Counts a (verified) hit or a miss. *)

val add : t -> hash:int -> Weights.t -> Dtr_cost.Lexico.t -> unit
(** Stores a copy of the vector with the current epoch as a {!Full} cost
    (upgrading any {!Lower} entry for the same vector). *)

val add_lower : t -> hash:int -> Weights.t -> Dtr_cost.Lexico.t -> unit
(** Stores the partial cost of an aborted pricing as a {!Lower} entry.
    Never downgrades: if the same vector is already resident as {!Full},
    the exact cost is kept. *)

type stats = {
  hits : int;  (** verified {!Full} hits *)
  lower_hits : int;  (** verified {!Lower} hits *)
  misses : int;  (** includes stale-epoch and collision probes *)
  evictions : int;
  length : int;
  capacity : int;
}

val stats : t -> stats
