(** Prior-work critical-link selectors and reference strategies.

    Section IV-C reviews three earlier ways of picking critical links for
    single-routing robust optimization, all of which the paper found wanting
    under DTR; they are implemented here as baselines for the ablation
    benchmarks:

    - {b random selection} (Yuan 2003): a uniform random subset;
    - {b load-based selection} (Fortz & Thorup 2003): the arcs with the
      highest utilization under the regular-optimization solution;
    - {b fluctuation-based selection} (Sridharan & Guérin 2005): arcs whose
      failure-like cost samples most often cross between a "good" and a
      "bad" performance region.  The original uses two fixed thresholds per
      instance; our reconstruction sets, per class, the good region below
      [best + 0.5 * B1] (resp. [1.05 * Phi_best]) and the bad region above
      [best + 2 * B1] (resp. [1.3 * Phi_best]) and scores an arc by the
      number of region transitions along its sample sequence, summed over
      classes.

    The {b full search} (critical set = all arcs) is available through
    {!Optimizer} by passing the [Full] selector. *)

val select_random : Dtr_util.Rng.t -> num_arcs:int -> n:int -> int list
(** @raise Invalid_argument if [n] is outside [1, num_arcs]. *)

val select_load_based : Scenario.t -> phase1:Phase1.output -> n:int -> int list
(** Utilization is measured on the Phase-1 best setting under normal
    conditions; ties broken by arc id. *)

val select_fluctuation :
  ?exec:Dtr_exec.Exec.t -> Scenario.t -> phase1:Phase1.output -> n:int -> int list
(** Threshold-crossing score computed from the Phase-1 sampler (see above);
    arcs without samples score zero.  Scoring distributes over [exec]; the
    selection is identical for every job count. *)
