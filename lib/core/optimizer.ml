module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure

type selector =
  | Ours
  | Full
  | Random_selection
  | Load_based
  | Fluctuation_based
  | Given of int list

type failure_model = Link_failures | Node_failures

type solution = {
  scenario : Scenario.t;
  regular : Weights.t;
  regular_cost : Lexico.t;
  robust : Weights.t;
  robust_normal_cost : Lexico.t;
  robust_fail_cost : Lexico.t;
  critical : int list;
  failures : Failure.t list;
  phase1 : Phase1.output;
  phase2 : Phase2.output;
  phase1_seconds : float;
  phase2_seconds : float;
}

let timed f =
  let start = Sys.time () in
  let x = f () in
  (x, Sys.time () -. start)

let regular_only ~rng ?(incremental = true) ?exec scenario =
  timed (fun () -> Phase1.run ~rng ~incremental ?exec scenario)

let target_size (scenario : Scenario.t) fraction =
  let m = Scenario.num_arcs scenario in
  let f =
    match fraction with
    | Some f -> f
    | None -> scenario.Scenario.params.Scenario.critical_fraction
  in
  if f <= 0. || f > 1. then invalid_arg "Optimizer: fraction outside (0, 1]";
  max 1 (int_of_float (Float.round (f *. float_of_int m)))

let pick_critical ~rng ~selector ~fraction ?exec scenario (phase1 : Phase1.output) =
  let num_arcs = Scenario.num_arcs scenario in
  match selector with
  | Full -> List.init num_arcs Fun.id
  | Ours -> Criticality.select phase1.Phase1.criticality ~n:(target_size scenario fraction)
  | Random_selection -> Baselines.select_random rng ~num_arcs ~n:(target_size scenario fraction)
  | Load_based -> Baselines.select_load_based scenario ~phase1 ~n:(target_size scenario fraction)
  | Fluctuation_based ->
      Baselines.select_fluctuation ?exec scenario ~phase1
        ~n:(target_size scenario fraction)
  | Given arcs ->
      if arcs = [] then invalid_arg "Optimizer: empty critical set";
      List.iter
        (fun a -> if a < 0 || a >= num_arcs then invalid_arg "Optimizer: bad arc id")
        arcs;
      List.sort_uniq compare arcs

let assemble scenario ~phase1 ~phase1_seconds ~phase2 ~phase2_seconds ~critical ~failures =
  {
    scenario;
    regular = phase1.Phase1.best;
    regular_cost = phase1.Phase1.best_cost;
    robust = phase2.Phase2.robust;
    robust_normal_cost = phase2.Phase2.normal_cost;
    robust_fail_cost = phase2.Phase2.fail_cost;
    critical;
    failures;
    phase1;
    phase2;
    phase1_seconds;
    phase2_seconds;
  }

let robust_with ~rng ?(incremental = true) ?exec scenario ~phase1 ~failures ~critical =
  let phase2, phase2_seconds =
    timed (fun () -> Phase2.run ~rng ~incremental ?exec scenario ~phase1 ~failures)
  in
  assemble scenario ~phase1 ~phase1_seconds:0. ~phase2 ~phase2_seconds ~critical ~failures

let optimize ~rng ?(selector = Ours) ?(failure_model = Link_failures) ?fraction
    ?(incremental = true) ?exec scenario =
  Dtr_obs.Span.with_ ~name:"optimize" @@ fun () ->
  let phase1, phase1_seconds = regular_only ~rng ~incremental ?exec scenario in
  let critical, failures =
    match failure_model with
    | Link_failures ->
        (* Phase 1c: critical-set selection from the Phase-1 criticality
           ranking (or a baseline selector). *)
        let critical =
          Dtr_obs.Span.with_ ~name:"phase1c" (fun () ->
              if Dtr_obs.Trace.enabled () then
                Dtr_obs.Trace.emit_phase ~name:"phase1c";
              pick_critical ~rng ~selector ~fraction ?exec scenario phase1)
        in
        (critical, List.map (fun a -> Failure.Arc a) critical)
    | Node_failures -> ([], Failure.all_single_nodes scenario.Scenario.graph)
  in
  let phase2, phase2_seconds =
    timed (fun () -> Phase2.run ~rng ~incremental ?exec scenario ~phase1 ~failures)
  in
  assemble scenario ~phase1 ~phase1_seconds ~phase2 ~phase2_seconds ~critical ~failures
