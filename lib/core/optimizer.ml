module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure

type selector =
  | Ours
  | Full
  | Random_selection
  | Load_based
  | Fluctuation_based
  | Given of int list

type failure_model =
  | Link_failures
  | Node_failures
  | Srlg_failures of float
  | Two_link_failures of int
  | Cascade_failures of float

type solution = {
  scenario : Scenario.t;
  regular : Weights.t;
  regular_cost : Lexico.t;
  robust : Weights.t;
  robust_normal_cost : Lexico.t;
  robust_fail_cost : Lexico.t;
  critical : int list;
  failures : Failure.t list;
  phase1 : Phase1.output;
  phase2 : Phase2.output;
  phase1_seconds : float;
  phase2_seconds : float;
}

let timed f =
  let start = Sys.time () in
  let x = f () in
  (x, Sys.time () -. start)

let regular_only ~rng ?(incremental = true) ?exec scenario =
  timed (fun () -> Phase1.run ~rng ~incremental ?exec scenario)

let target_size (scenario : Scenario.t) fraction =
  let m = Scenario.num_arcs scenario in
  let f =
    match fraction with
    | Some f -> f
    | None -> scenario.Scenario.params.Scenario.critical_fraction
  in
  if f <= 0. || f > 1. then invalid_arg "Optimizer: fraction outside (0, 1]";
  max 1 (int_of_float (Float.round (f *. float_of_int m)))

let pick_critical ~rng ~selector ~fraction ?exec scenario (phase1 : Phase1.output) =
  let num_arcs = Scenario.num_arcs scenario in
  match selector with
  | Full -> List.init num_arcs Fun.id
  | Ours -> Criticality.select phase1.Phase1.criticality ~n:(target_size scenario fraction)
  | Random_selection -> Baselines.select_random rng ~num_arcs ~n:(target_size scenario fraction)
  | Load_based -> Baselines.select_load_based scenario ~phase1 ~n:(target_size scenario fraction)
  | Fluctuation_based ->
      Baselines.select_fluctuation ?exec scenario ~phase1
        ~n:(target_size scenario fraction)
  | Given arcs ->
      if arcs = [] then invalid_arg "Optimizer: empty critical set";
      List.iter
        (fun a -> if a < 0 || a >= num_arcs then invalid_arg "Optimizer: bad arc id")
        arcs;
      List.sort_uniq compare arcs

let assemble scenario ~phase1 ~phase1_seconds ~phase2 ~phase2_seconds ~critical ~failures =
  {
    scenario;
    regular = phase1.Phase1.best;
    regular_cost = phase1.Phase1.best_cost;
    robust = phase2.Phase2.robust;
    robust_normal_cost = phase2.Phase2.normal_cost;
    robust_fail_cost = phase2.Phase2.fail_cost;
    critical;
    failures;
    phase1;
    phase2;
    phase1_seconds;
    phase2_seconds;
  }

let robust_with ~rng ?(incremental = true) ?exec scenario ~phase1 ~failures ~critical =
  let phase2, phase2_seconds =
    timed (fun () -> Phase2.run ~rng ~incremental ?exec scenario ~phase1 ~failures)
  in
  assemble scenario ~phase1 ~phase1_seconds:0. ~phase2 ~phase2_seconds ~critical ~failures

(* --- warm start ---------------------------------------------------------
   Bounded re-optimization from an incumbent setting: the serve daemon's
   answer to a traffic or topology event.  Instead of re-running Phase 1a→2
   (fresh random starts, criticality re-estimation, feasibility gates), the
   search starts at the incumbent and minimises the single unconstrained
   objective J(W) = K_normal(W) + Kfail(W) over the caller's retained
   failure set, under a hard sweep/round budget.  Every diversification
   restarts from the incumbent — the RNG stream alone varies the
   trajectory — so the result can never be worse than the incumbent's own
   objective. *)

type warm_budget = { max_sweeps : int; max_rounds : int }

let default_warm_budget = { max_sweeps = 40; max_rounds = 3 }

type warm_result = {
  weights : Weights.t;
  objective : Lexico.t;
  start_objective : Lexico.t;
  warm_sweeps : int;
  warm_evals : int;
  warm_rounds : int;
  warm_pruned : int;
}

let c_warm_evals = Dtr_obs.Metric.Counter.create "warm_start.evals"
let c_warm_sweeps = Dtr_obs.Metric.Counter.create "warm_start.sweeps"

let warm_start ~rng ?exec ?(failures = []) ?(budget = default_warm_budget)
    ?target ?cache ~incumbent (scenario : Scenario.t) =
  Dtr_obs.Span.with_ ~name:"warm_start" @@ fun () ->
  if Dtr_obs.Trace.enabled () then Dtr_obs.Trace.emit_phase ~name:"warm_start";
  let exec = match exec with Some e -> e | None -> Dtr_exec.Exec.default () in
  let p = scenario.Scenario.params in
  let num_arcs = Scenario.num_arcs scenario in
  let e = Eval_incr.create scenario in
  let sweep w =
    let routing_d, routing_t = Eval_incr.current_routing e in
    Eval.compound_sweep_from scenario ~exec ~routing_d ~routing_t w ~failures
  in
  (* J(W) = K_normal + Kfail, bounded mid-sweep against the incumbent:
     [init] seeds the partial with the normal cost, so the abort test sees
     a monotone lower bound of J itself. *)
  let sweep_bounded w ~normal ~than =
    let routing_d, routing_t = Eval_incr.current_routing e in
    Eval.compound_sweep_bounded scenario ~exec ~routing_d ~routing_t
      ~init:normal
      ~prune:(fun partial -> Lexico.prunes partial ~than)
      w ~failures
  in
  let objective w normal =
    if failures = [] then normal else Lexico.add normal (sweep w)
  in
  (* Optional caller-held delta cache (the serve daemon re-warms the same
     incumbent across events): J is pure in the weight vector for a fixed
     scenario and failure set, so hits skip the whole failure sweep.  The
     caller is responsible for {!Delta_cache.bump} when anything else
     moves. *)
  let cache_find ~hash w =
    match cache with
    | Some c when Prune.enabled () -> Delta_cache.find c ~hash w
    | _ -> None
  in
  let cache_add ~hash w j =
    match cache with
    | Some c when Prune.enabled () -> Delta_cache.add c ~hash w j
    | _ -> ()
  in
  let cache_add_lower ~hash w partial =
    match cache with
    | Some c when Prune.enabled () -> Delta_cache.add_lower c ~hash w partial
    | _ -> ()
  in
  let base = ref None in
  let cur_hash = ref 0 in
  let pend = ref None in
  let start_obj = ref None in
  let engine =
    Local_search.
      {
        start =
          (fun w ->
            let normal = Eval_incr.anchor e w in
            base := Some (Weights.copy w);
            cur_hash := Delta_cache.hash_of w;
            pend := None;
            let j =
              match cache_find ~hash:!cur_hash w with
              | Some (Delta_cache.Full j) -> j
              | Some (Delta_cache.Lower _) | None ->
                  (* a round start needs the exact incumbent objective, so a
                     lower bound can't serve here *)
                  let j = objective w normal in
                  if failures <> [] then cache_add ~hash:!cur_hash w j;
                  j
            in
            if !start_obj = None then start_obj := Some j;
            Some j);
        try_arc =
          (fun w ~arc ~bound ->
            if failures = [] then begin
              (* Pure normal objective: the per-destination accumulation
                 inside the incremental pricer is itself boundable. *)
              match bound with
              | Some than when Prune.enabled () -> (
                  match
                    Eval_incr.try_arc_bounded e
                      ~prune:(fun partial -> Lexico.prunes partial ~than)
                      w ~arc
                  with
                  | Some c -> Cost c
                  | None -> Pruned)
              | _ -> Cost (Eval_incr.try_arc e w ~arc)
            end
            else begin
              (* Stage 1 — bounded normal pricing: J = normal + Kfail
                 dominates the normal cost componentwise, so the same
                 incumbent bound already rejects a move whose normal
                 partial prunes, before any sweep work. *)
              let staged =
                match bound with
                | Some than when Prune.enabled () ->
                    Eval_incr.try_arc_bounded e
                      ~prune:(fun partial -> Lexico.prunes partial ~than)
                      w ~arc
                | _ -> Some (Eval_incr.try_arc e w ~arc)
              in
              match staged with
              | None -> Pruned
              | Some normal -> (
                  let b = match !base with Some b -> b | None -> assert false in
                  let h =
                    Delta_cache.shift !cur_hash ~arc ~old_wd:b.Weights.wd.(arc)
                      ~old_wt:b.Weights.wt.(arc) ~new_wd:w.Weights.wd.(arc)
                      ~new_wt:w.Weights.wt.(arc)
                  in
                  pend := Some (arc, w.Weights.wd.(arc), w.Weights.wt.(arc), h);
                  match (cache_find ~hash:h w, bound) with
                  | Some (Delta_cache.Full j), _ -> Cost j
                  | Some (Delta_cache.Lower lb), Some than
                    when Lexico.prunes lb ~than ->
                      (* the stored abort partial already proves this vector
                         can't beat the current incumbent — no pricing *)
                      Pruned
                  | (Some (Delta_cache.Lower _) | None), _ -> (
                      match bound with
                      | Some than when Prune.enabled () -> (
                          match sweep_bounded w ~normal ~than with
                          | Eval.Swept j ->
                              cache_add ~hash:h w j;
                              Cost j
                          | Eval.Aborted_at lb ->
                              cache_add_lower ~hash:h w lb;
                              Pruned)
                      | _ ->
                          let j = Lexico.add normal (sweep w) in
                          cache_add ~hash:h w j;
                          Cost j))
            end);
        commit =
          (fun () ->
            Eval_incr.commit e;
            match (!pend, !base) with
            | Some (arc, wd, wt, h), Some b ->
                b.Weights.wd.(arc) <- wd;
                b.Weights.wt.(arc) <- wt;
                cur_hash := h;
                pend := None
            | None, _ when failures = [] -> ()
            | _ -> assert false);
        rollback =
          (fun () ->
            Eval_incr.rollback e;
            pend := None);
      }
  in
  let config =
    Local_search.
      {
        wmax = p.Scenario.wmax;
        interval = p.Scenario.p2_interval;
        rounds = 1;
        c = p.Scenario.c_improvement;
        max_rounds = budget.max_rounds;
        max_sweeps = budget.max_sweeps;
      }
  in
  let init ~round:_ = incumbent in
  let search =
    Dtr_obs.Convergence.with_series ~name:"warm_start" (fun () ->
        Local_search.run_engine ~rng ~num_arcs ~engine ~init ?target config)
  in
  if Dtr_obs.Metric.enabled () then begin
    Dtr_obs.Metric.Counter.add c_warm_evals search.Local_search.evals;
    Dtr_obs.Metric.Counter.add c_warm_sweeps search.Local_search.sweeps
  end;
  {
    weights = search.Local_search.best;
    objective = search.Local_search.best_cost;
    start_objective = Option.get !start_obj;
    warm_sweeps = search.Local_search.sweeps;
    warm_evals = search.Local_search.evals;
    warm_rounds = search.Local_search.rounds_run;
    warm_pruned = search.Local_search.pruned;
  }

let optimize ~rng ?(selector = Ours) ?(failure_model = Link_failures) ?fraction
    ?(incremental = true) ?exec ?fast scenario =
  Dtr_obs.Span.with_ ~name:"optimize" @@ fun () ->
  let phase1, phase1_seconds = regular_only ~rng ~incremental ?exec scenario in
  let phase1c name f =
    Dtr_obs.Span.with_ ~name:"phase1c" (fun () ->
        if Dtr_obs.Trace.enabled () then Dtr_obs.Trace.emit_phase ~name;
        f ())
  in
  let critical, failures =
    match failure_model with
    | Link_failures ->
        (* Phase 1c: critical-set selection from the Phase-1 criticality
           ranking (or a baseline selector). *)
        let critical =
          phase1c "phase1c" (fun () ->
              pick_critical ~rng ~selector ~fraction ?exec scenario phase1)
        in
        (critical, List.map (fun a -> Failure.Arc a) critical)
    | Node_failures -> ([], Failure.all_single_nodes scenario.Scenario.graph)
    | Srlg_failures radius ->
        (* SRLG sweep: geographic conduit groups are the events; the
           Eqs. (8)-(9) statistic re-estimated over the joint events
           (attributed to member arcs) feeds Algorithm 1 as usual, and the
           optimized set is every group touching a selected arc. *)
        phase1c "phase1c-srlg" (fun () ->
            let srlg =
              Dtr_topology.Srlg.geographic ~radius scenario.Scenario.graph
            in
            let events = Dtr_topology.Srlg.failures srlg in
            let crit =
              Joint_failure.criticality_of_events ?exec
                ~left_tail:scenario.Scenario.params.Scenario.left_tail scenario
                ~settings:(List.map fst phase1.Phase1.acceptable)
                ~events
            in
            let critical =
              Criticality.select crit ~n:(target_size scenario fraction)
            in
            let chosen =
              List.filter
                (fun f ->
                  List.exists
                    (fun a -> List.mem a critical)
                    (Joint_failure.members scenario.Scenario.graph f))
                events
            in
            (* never optimize against an empty set *)
            let chosen = if chosen = [] then events else chosen in
            let critical =
              List.concat_map
                (Joint_failure.members scenario.Scenario.graph)
                chosen
              |> List.sort_uniq compare
            in
            (critical, chosen))
    | Two_link_failures samples ->
        (* Sampled pair sweep, importance-priced by the single-link
           criticality ranking of Phase 1. *)
        phase1c "phase1c-two-link" (fun () ->
            let crit = phase1.Phase1.criticality in
            let score =
              Array.mapi
                (fun a l -> Float.max l crit.Criticality.norm_phi.(a))
                crit.Criticality.norm_lambda
            in
            let events =
              Joint_failure.two_link ~rng ~samples ~score scenario.Scenario.graph
            in
            let critical =
              List.concat_map
                (Joint_failure.members scenario.Scenario.graph)
                events
              |> List.sort_uniq compare
            in
            (critical, events))
    | Cascade_failures trip ->
        (* Single-link initial events from the usual Phase-1c selection,
           each expanded by iterated overload trips against the Phase-1
           best setting. *)
        let critical =
          phase1c "phase1c" (fun () ->
              pick_critical ~rng ~selector ~fraction ?exec scenario phase1)
        in
        let events =
          phase1c "phase1c-cascade" (fun () ->
              Joint_failure.cascade_all ?exec ~trip scenario phase1.Phase1.best
                (List.map (fun a -> Failure.Arc a) critical))
        in
        (critical, events)
  in
  let phase2, phase2_seconds =
    timed (fun () ->
        Phase2.run ~rng ~incremental ?exec ?fast scenario ~phase1 ~failures)
  in
  assemble scenario ~phase1 ~phase1_seconds ~phase2 ~phase2_seconds ~critical ~failures
