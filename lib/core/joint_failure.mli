(** Joint-failure scenario construction — SRLG, sampled two-link, and
    cascading events — with Eqs. (8)–(9) criticality attribution.

    The paper's robustness machinery stops at single link failures, but real
    outages are correlated: a conduit cut takes out a whole shared-risk
    group (Lee/Modiano, PAPERS.md), and overload after a failure can trip
    further links (Como/Savla/Dahleh, PAPERS.md).  This module builds joint
    failure events as {!Dtr_topology.Failure.Arcs} scenarios, which the
    sweep engine already prices incrementally through the multi-arc
    dynamic-SPF repair ({!Dtr_spf.Routing.with_failed_arcs}), so compound
    sweeps — including the early-abort bounded path — need no changes to
    handle them. *)

module Failure = Dtr_topology.Failure
module Lexico = Dtr_cost.Lexico

val members : Dtr_topology.Graph.t -> Failure.t -> int list
(** The arc ids a failure removes (both directions, increasing order) —
    the attribution targets of a joint event. *)

(** {1 Sampled two-link events} *)

val two_link :
  rng:Dtr_util.Rng.t ->
  samples:int ->
  score:float array ->
  Dtr_topology.Graph.t ->
  Failure.t list
(** [samples] distinct unordered link pairs drawn by importance sampling:
    each physical link is weighted by the larger per-arc [score] of its two
    directions (plus a floor so every link keeps support), so pairs of
    critical links dominate the sample while the tail still appears.  Pass
    the Phase-1 normalised criticality as [score] to realise the
    ranking-priced sampler.  Each event fails both directions of both
    links.  Deterministic for a given RNG state; returns fewer than
    [samples] events only when the topology has fewer distinct pairs.
    @raise Invalid_argument if [samples < 1], [score] is not sized to the
    arc count, or the graph has fewer than two links. *)

(** {1 Cascading events} *)

val cascade :
  ?exec:Dtr_exec.Exec.t ->
  ?max_waves:int ->
  trip:float ->
  Scenario.t ->
  Weights.t ->
  Failure.t ->
  Failure.t
(** Expand an initial failure by iterated overload trips: price the failure
    under [w], fail (both directions of) every surviving link whose
    utilisation — total load over capacity — exceeds [trip], and repeat
    until a fixed point or [max_waves] (default 8) waves.  The trip set is
    frozen at expansion time against the given weight setting, so the
    result is an ordinary static {!Failure.Arcs} scenario and exact
    early-abort pricing keeps working downstream.
    @raise Invalid_argument on a node-exclusion failure, [trip <= 0], or
    [max_waves < 1]. *)

val cascade_all :
  ?exec:Dtr_exec.Exec.t ->
  ?max_waves:int ->
  trip:float ->
  Scenario.t ->
  Weights.t ->
  Failure.t list ->
  Failure.t list
(** {!cascade} over a list, preserving order. *)

(** {1 Criticality attribution (Eqs. (8)–(9) generalised)} *)

val attribute :
  left_tail:float ->
  num_arcs:int ->
  graph:Dtr_topology.Graph.t ->
  events:Failure.t array ->
  costs:Lexico.t array array ->
  Criticality.t
(** Generalise the per-arc criticality statistic to joint events: the cost
    sample of an event — [costs.(setting).(event)], one row per sampled
    weight setting exactly as Phase 1a produces them — is attributed to
    {e every} member arc of the event, and the per-arc sample sets then
    feed the unchanged Eqs. (8)–(9) tail statistics
    ({!Criticality.of_samples}).  An arc in no event gets an empty sample
    set (zero criticality).
    @raise Invalid_argument if the cost rows are not all sized to
    [events]. *)

val criticality_of_events :
  ?exec:Dtr_exec.Exec.t ->
  left_tail:float ->
  Scenario.t ->
  settings:Weights.t list ->
  events:Failure.t list ->
  Criticality.t
(** Price every event under every setting with the sweep engine and
    {!attribute} the results — the joint-event analogue of Phase 1a/1b.
    @raise Invalid_argument if [settings] or [events] is empty. *)
