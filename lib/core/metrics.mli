(** Evaluation metrics — everything the paper's tables and figures report.

    All functions take a scenario and a weight setting and measure, never
    optimize.  Failure sweeps return one value per scenario in the order
    given, so callers can sort/aggregate as each figure requires. *)

module Lexico = Dtr_cost.Lexico
module Failure = Dtr_topology.Failure

(** {1 SLA violations (the beta metrics)} *)

val violations_normal : Scenario.t -> Weights.t -> int
(** SLA-violating SD pairs under normal conditions. *)

val violations_per_failure :
  Scenario.t -> ?exec:Dtr_exec.Exec.t -> Weights.t -> Failure.t list -> int array

val avg_violations : int array -> float
(** The paper's beta: mean violations over all scenarios of a sweep. *)

val top_fraction_violations : ?fraction:float -> int array -> float
(** Mean over the worst [fraction] (default 0.1) of the scenarios — the
    "top-10%" rows. *)

(** {1 Throughput-sensitive cost} *)

val phi_normal : Scenario.t -> Weights.t -> float

val phi_per_failure :
  Scenario.t -> ?exec:Dtr_exec.Exec.t -> Weights.t -> Failure.t list -> float array

val phi_fail_total :
  Scenario.t -> ?exec:Dtr_exec.Exec.t -> Weights.t -> Failure.t list -> float
(** [Phi_fail]: the compounded cost over the sweep. *)

val phi_gap_percent : reference:float -> float -> float
(** [100 * (x - reference) / reference] — the beta_Phi accuracy metric of
    Table I and the "cost degradation" row of Table II. *)

(** {1 Utilization and load} *)

val utilizations_normal : Scenario.t -> Weights.t -> float array
(** Per-arc load/capacity under normal conditions. *)

val avg_utilization : Scenario.t -> Weights.t -> float
val max_utilization : Scenario.t -> Weights.t -> float

type load_increase = {
  arcs_increased : int;  (** surviving arcs whose utilization rose *)
  avg_increase : float;  (** mean utilization increase over those arcs *)
}

val load_increase_after : Scenario.t -> Weights.t -> Failure.t -> load_increase
(** Fig. 4: compares per-arc utilization after the failure with normal
    conditions; the failed arcs themselves are excluded. *)

val avg_max_pair_utilization : Scenario.t -> Weights.t -> float
(** Table V: the maximum arc utilization seen by each delay-class SD pair
    along its ECMP paths, averaged over pairs (unreachable pairs are
    skipped). *)

(** {1 Delay profile} *)

val delay_profile : Scenario.t -> Weights.t -> float array
(** Fig. 5(b,c): expected end-to-end delays (seconds) of all delay-class SD
    pairs under normal conditions, sorted ascending; unreachable pairs
    appear as [Float.infinity]. *)

(** {1 Solution-level summaries} *)

type failure_summary = {
  avg : float;
  top10 : float;
  per_failure : int array;
  phi_per_failure : float array;
  phi_total : float;
}

val summarize_failures :
  Scenario.t -> ?exec:Dtr_exec.Exec.t -> Weights.t -> Failure.t list -> failure_summary
(** One sweep computing both classes' metrics at once (each scenario is
    evaluated a single time).  [exec] is forwarded to the underlying
    {!Eval.sweep_details}; results never depend on it. *)
