(** Randomised local search with diversification — the engine of both phases.

    The paper's search (Section IV-A): in each {e sweep}, every arc is
    visited in random order and both of its weights are randomly redrawn; the
    move is kept only if it lowers the cost.  If no sweep improves the cost
    for [interval] consecutive sweeps, the search {e diversifies}: it
    restarts from a fresh starting point supplied by the caller (random in
    Phase 1; a recorded constraint-satisfying setting in Phase 2).  The
    search stops once at least [rounds] consecutive diversifications have
    each improved the global best by less than the threshold [c].

    The engine is generic over the objective through [eval], which may
    declare a setting infeasible ([None]) — Phase 2 uses this to enforce the
    normal-conditions constraints (Eqs. (5)–(6)).  Every attempted move is
    reported to the [observer]; Phase 1a turns those observations into
    failure-cost samples. *)

module Lexico = Dtr_cost.Lexico

type observation = {
  arc : int;  (** arc whose weights were just redrawn *)
  weights : Weights.t;  (** the full setting with the move applied — do not retain *)
  cost_before : Lexico.t;  (** cost of the setting the move started from *)
  cost_after : Lexico.t option;  (** [None] when the move is infeasible *)
  accepted : bool;
}

type config = {
  wmax : int;
  interval : int;  (** stale sweeps before diversifying *)
  rounds : int;  (** required consecutive low-improvement diversifications (P) *)
  c : float;  (** relative improvement threshold (paper: 0.001) *)
  max_rounds : int;  (** hard cap on diversifications *)
  max_sweeps : int;
      (** hard cap on sweeps within one diversification round; bounds the
          wall-clock of a round even while improvements keep arriving (the
          paper's open-ended runs take hours - reduced-scale runs need a
          budget) *)
}

type result = {
  best : Weights.t;
  best_cost : Lexico.t;
  sweeps : int;  (** total sweeps over all rounds *)
  evals : int;  (** total cost evaluations *)
  rounds_run : int;
  pruned : int;  (** trials abandoned early by a {!Pruned} verdict *)
  skipped : int;  (** arcs never proposed because the [filter] cut them *)
}

type verdict =
  | Cost of Lexico.t  (** exact cost of the trial setting *)
  | Infeasible  (** the engine's feasibility constraints reject it *)
  | Pruned
      (** the engine proved the cost cannot beat the supplied [bound] and
          abandoned pricing early; treated as a rejection *)

type engine = {
  start : Weights.t -> Lexico.t option;
      (** full (re-)evaluation at a round's starting setting; [None] marks
          it infeasible and skips the round *)
  try_arc : Weights.t -> arc:int -> bound:Lexico.t option -> verdict;
      (** cost of [w], which differs from the last committed setting only on
          [arc]; may stage internal state for the trial.  [bound] is the
          search's incumbent for this trial ([Some] of the round-local
          current cost); an engine may — but need not — use it to return
          {!Pruned} instead of a full {!Cost}, provided it only does so when
          the exact cost would {e not} have been accepted against that bound
          (see {!Dtr_cost.Lexico.prunes}).  Under that contract pruning
          engines follow the exact same trajectory as exhaustive ones. *)
  commit : unit -> unit;  (** install the staged trial (the move was kept) *)
  rollback : unit -> unit;  (** discard the staged trial (move rejected) *)
}
(** Evaluation protocol of the search.  Every {!field-try_arc} call is
    followed by exactly one {!field-commit} or {!field-rollback} — stateful
    engines ({!Eval_incr}) patch cached state instead of re-evaluating from
    scratch; the cost sequence must be identical either way. *)

type filter = {
  score : float array;
      (** per-arc importance (higher = more worth perturbing); length must
          equal [num_arcs] *)
  max_skip : float;  (** skip fraction ceiling, clamped to [0, 1] *)
}
(** Criticality-gated proposal filter ([--fast] mode).  Arcs are ranked
    once by [score]; each sweep skips the lowest-ranked fraction, ramped
    from 0 towards [max_skip] as the round's acceptance rate decays
    relative to its first sweep.  Skipped arcs consume no RNG, so filtered
    runs follow a different trajectory — the default mode passes no
    filter and is bit-identical to the exhaustive search. *)

val eval_engine : (Weights.t -> Lexico.t option) -> engine
(** Stateless engine from a plain evaluation function ([commit]/[rollback]
    are no-ops; the bound is ignored). *)

val run_engine :
  rng:Dtr_util.Rng.t ->
  num_arcs:int ->
  engine:engine ->
  init:(round:int -> Weights.t) ->
  ?observer:(observation -> unit) ->
  ?on_improvement:(Weights.t -> Lexico.t -> unit) ->
  ?target:Lexico.t ->
  ?filter:filter ->
  config ->
  result
(** [init ~round] provides the starting setting of each diversification
    round (round 0 is the initial search).  If a starting setting is
    infeasible the round is skipped (counts towards [max_rounds]).
    [on_improvement] fires whenever the {e round-local} cost improves —
    Phase 1 uses it to record constraint-satisfying settings.
    [target], when given, turns the search into a recovery run: it stops
    mid-sweep the moment the running cost is lexicographically [<= target]
    (the committed crossing setting becomes [best]).  The check happens
    after RNG consumption for the accepted move, so runs with and without
    a target follow the same trajectory up to the stopping point.
    [filter] enables the criticality-gated proposal filter; omit it for
    the exhaustive (default, reproducible) search.
    @raise Invalid_argument if every starting point is infeasible, or if
    the filter's score array does not match [num_arcs]. *)

val run :
  rng:Dtr_util.Rng.t ->
  num_arcs:int ->
  eval:(Weights.t -> Lexico.t option) ->
  init:(round:int -> Weights.t) ->
  ?observer:(observation -> unit) ->
  ?on_improvement:(Weights.t -> Lexico.t -> unit) ->
  config ->
  result
(** {!run_engine} over {!eval_engine}[ eval] — same search, one full
    evaluation per attempted move.  Consumes the same RNG stream as
    {!run_engine}, so a stateful engine returning bit-identical costs yields
    the exact same trajectory. *)
