(** Traffic-matrix persistence.

    Tab-separated text format, one demand per line:

    {v
      # dtr traffic v1
      size 30
      demand 0 1 12.375      # src dst mb/s
    v}

    Zero demands are omitted.  A DTR instance carries two matrices; use two
    files or {!pair_to_string}/{!pair_of_string}, which concatenate the
    delay-sensitive and throughput-sensitive matrices with [class d] /
    [class t] markers. *)

val to_string : Dtr_traffic.Matrix.t -> string
val of_string : string -> Dtr_traffic.Matrix.t
(** @raise Failure with a line-numbered message on malformed input. *)

val save : Dtr_traffic.Matrix.t -> path:string -> unit
val load : path:string -> Dtr_traffic.Matrix.t

val pair_to_string : rd:Dtr_traffic.Matrix.t -> rt:Dtr_traffic.Matrix.t -> string
(** Both classes in one document. @raise Invalid_argument on size mismatch. *)

val pair_of_string : string -> Dtr_traffic.Matrix.t * Dtr_traffic.Matrix.t
(** @raise Failure on malformed input or a missing class section. *)
