module Graph = Dtr_topology.Graph
module Geometry = Dtr_topology.Geometry

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# dtr topology v1\n";
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Graph.num_nodes g));
  (match Graph.coords g with
  | None -> ()
  | Some pts ->
      Array.iteri
        (fun i p ->
          Buffer.add_string buf
            (Printf.sprintf "node %d %.17g %.17g\n" i p.Geometry.x p.Geometry.y))
        pts);
  Array.iter
    (fun a ->
      (* one line per physical link: emit only the lower-id direction *)
      if a.Graph.rev < 0 || a.Graph.id < a.Graph.rev then
        Buffer.add_string buf
          (Printf.sprintf "edge %d %d %.17g %.17g\n" a.Graph.src a.Graph.dst
             a.Graph.capacity a.Graph.delay))
    (Graph.arcs g);
  Buffer.contents buf

let fail_line lineno msg = failwith (Printf.sprintf "Graph_io: line %d: %s" lineno msg)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let nodes = ref None in
  let coords = ref [] in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then begin
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "nodes"; n ] -> begin
            match int_of_string_opt n with
            | Some n when n > 0 -> nodes := Some n
            | _ -> fail_line lineno "bad node count"
          end
        | [ "node"; i; x; y ] -> begin
            match (int_of_string_opt i, float_of_string_opt x, float_of_string_opt y) with
            | Some i, Some x, Some y -> coords := (i, Geometry.point x y) :: !coords
            | _ -> fail_line lineno "bad node record"
          end
        | [ "edge"; u; v; cap; delay ] -> begin
            match
              ( int_of_string_opt u,
                int_of_string_opt v,
                float_of_string_opt cap,
                float_of_string_opt delay )
            with
            | Some u, Some v, Some cap, Some prop ->
                edges := Graph.{ u; v; cap; prop } :: !edges
            | _ -> fail_line lineno "bad edge record"
          end
        | _ -> fail_line lineno "unrecognised record"
      end)
    lines;
  let n = match !nodes with Some n -> n | None -> failwith "Graph_io: missing 'nodes' record" in
  let coords =
    if !coords = [] then None
    else begin
      let pts = Array.make n (Geometry.point 0. 0.) in
      let seen = Array.make n false in
      List.iter
        (fun (i, p) ->
          if i < 0 || i >= n then failwith "Graph_io: node index out of range";
          pts.(i) <- p;
          seen.(i) <- true)
        !coords;
      if not (Array.for_all Fun.id seen) then
        failwith "Graph_io: coordinates must cover all nodes or none";
      Some pts
    end
  in
  try Graph.of_edges ?coords ~n (List.rev !edges)
  with Invalid_argument msg -> failwith ("Graph_io: " ^ msg)

let save g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string g))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let to_dot ?(name = "dtr") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle];\n";
  (match Graph.coords g with
  | None ->
      for v = 0 to Graph.num_nodes g - 1 do
        Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
      done
  | Some pts ->
      Array.iteri
        (fun v p ->
          Buffer.add_string buf
            (Printf.sprintf "  %d [pos=\"%.3f,%.3f!\"];\n" v (10. *. p.Geometry.x)
               (10. *. p.Geometry.y)))
        pts);
  Array.iter
    (fun a ->
      if a.Graph.rev < 0 || a.Graph.id < a.Graph.rev then
        Buffer.add_string buf
          (Printf.sprintf "  %d -> %d [dir=both, label=\"%.0f Mb/s / %.1f ms\"];\n"
             a.Graph.src a.Graph.dst a.Graph.capacity (a.Graph.delay *. 1000.)))
    (Graph.arcs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
