(** Topology persistence.

    Two formats:

    - a plain-text {e topology format} that round-trips everything the
      library knows about a graph (nodes, coordinates, edges with capacity
      and propagation delay), one record per line:
      {v
        # dtr topology v1
        nodes 4
        node 0 0.25 0.75        # optional coordinates
        edge 0 1 500.0 0.005    # u v capacity_mbps delay_seconds
      v}
      Lines starting with [#] and blank lines are ignored.  Edges are
      undirected (each contributes the two arcs, as in
      {!Dtr_topology.Graph.of_edges}).

    - {e Graphviz DOT} export for visualisation (edges labelled with
      capacity and delay; node positions from the embedding when present). *)

val to_string : Dtr_topology.Graph.t -> string
(** Serialise to the topology format. *)

val of_string : string -> Dtr_topology.Graph.t
(** Parse the topology format.
    @raise Failure with a line-numbered message on malformed input. *)

val save : Dtr_topology.Graph.t -> path:string -> unit
(** Write {!to_string} to a file. *)

val load : path:string -> Dtr_topology.Graph.t
(** Read and {!of_string} a file.  @raise Sys_error or Failure. *)

val to_dot : ?name:string -> Dtr_topology.Graph.t -> string
(** Graphviz digraph; one edge per physical link ([dir=both]), labelled
    ["cap Mb/s / delay ms"]. *)
