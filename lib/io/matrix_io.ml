module Matrix = Dtr_traffic.Matrix

let body_to_buffer buf m =
  Buffer.add_string buf (Printf.sprintf "size %d\n" (Matrix.size m));
  Matrix.iter m (fun ~src ~dst v ->
      Buffer.add_string buf (Printf.sprintf "demand %d %d %.17g\n" src dst v))

let to_string m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# dtr traffic v1\n";
  body_to_buffer buf m;
  Buffer.contents buf

let fail_line lineno msg = failwith (Printf.sprintf "Matrix_io: line %d: %s" lineno msg)

(* Parses a sequence of (size, demand, class) records; [multi] allows the
   [class] markers used by the pair format. *)
let parse ~multi s =
  let current = ref None in
  let sections = ref [] in
  let finish () = match !current with Some m -> sections := m :: !sections | None -> () in
  let begin_section lineno n =
    finish ();
    match n with
    | Some n when n > 0 -> current := Some (Matrix.create n)
    | _ -> fail_line lineno "bad size"
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with Some j -> String.sub line 0 j | None -> line
      in
      let line = String.trim line in
      if line <> "" then begin
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "size"; n ] -> begin_section lineno (int_of_string_opt n)
        | [ "class"; ("d" | "t") ] when multi -> ()
        | [ "demand"; src; dst; v ] -> begin
            match
              (!current, int_of_string_opt src, int_of_string_opt dst, float_of_string_opt v)
            with
            | Some m, Some src, Some dst, Some v -> begin
                try Matrix.set m ~src ~dst v
                with Invalid_argument msg -> fail_line lineno msg
              end
            | None, _, _, _ -> fail_line lineno "demand before size"
            | _ -> fail_line lineno "bad demand record"
          end
        | _ -> fail_line lineno "unrecognised record"
      end)
    (String.split_on_char '\n' s);
  finish ();
  List.rev !sections

let of_string s =
  match parse ~multi:false s with
  | [ m ] -> m
  | [] -> failwith "Matrix_io: empty document"
  | _ -> failwith "Matrix_io: multiple matrices in a single-matrix document"

let save m ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string m))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let pair_to_string ~rd ~rt =
  if Matrix.size rd <> Matrix.size rt then
    invalid_arg "Matrix_io.pair_to_string: size mismatch";
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "# dtr traffic v1 (two classes)\n";
  Buffer.add_string buf "class d\n";
  body_to_buffer buf rd;
  Buffer.add_string buf "class t\n";
  body_to_buffer buf rt;
  Buffer.contents buf

let pair_of_string s =
  match parse ~multi:true s with
  | [ rd; rt ] ->
      if Matrix.size rd <> Matrix.size rt then
        failwith "Matrix_io: class sections have different sizes";
      (rd, rt)
  | _ -> failwith "Matrix_io: expected exactly two class sections"
