module Weights = Dtr_core.Weights

let to_string (w : Weights.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# dtr weights v1\n";
  Buffer.add_string buf (Printf.sprintf "arcs %d\n" (Weights.num_arcs w));
  Array.iteri
    (fun id wd -> Buffer.add_string buf (Printf.sprintf "w %d %d %d\n" id wd w.Weights.wt.(id)))
    w.Weights.wd;
  Buffer.contents buf

let fail_line lineno msg = failwith (Printf.sprintf "Weights_io: line %d: %s" lineno msg)

let of_string s =
  let result = ref None in
  let seen = ref [||] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with Some j -> String.sub line 0 j | None -> line
      in
      let line = String.trim line in
      if line <> "" then begin
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "arcs"; n ] -> begin
            match int_of_string_opt n with
            | Some n when n > 0 ->
                result := Some (Weights.create ~num_arcs:n ~init:1);
                seen := Array.make n false
            | _ -> fail_line lineno "bad arc count"
          end
        | [ "w"; id; wd; wt ] -> begin
            match
              (!result, int_of_string_opt id, int_of_string_opt wd, int_of_string_opt wt)
            with
            | Some w, Some id, Some wd, Some wt ->
                if id < 0 || id >= Weights.num_arcs w then
                  fail_line lineno "arc id out of range";
                if !seen.(id) then fail_line lineno "duplicate arc";
                if wd < 1 || wt < 1 then fail_line lineno "weights start at 1";
                !seen.(id) <- true;
                Weights.set_arc w ~arc:id ~wd ~wt
            | None, _, _, _ -> fail_line lineno "weight before 'arcs' record"
            | _ -> fail_line lineno "bad weight record"
          end
        | _ -> fail_line lineno "unrecognised record"
      end)
    (String.split_on_char '\n' s);
  match !result with
  | None -> failwith "Weights_io: empty document"
  | Some w ->
      if not (Array.for_all Fun.id !seen) then failwith "Weights_io: missing arcs";
      w

let save w ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string w))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
