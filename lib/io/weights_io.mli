(** Weight-setting persistence — the artefact an operator actually deploys.

    Format, one arc per line:

    {v
      # dtr weights v1
      arcs 180
      w 0 7 12      # arc_id delay_class_weight throughput_class_weight
    v}

    Every arc must appear exactly once. *)

val to_string : Dtr_core.Weights.t -> string

val of_string : string -> Dtr_core.Weights.t
(** @raise Failure with a line-numbered message on malformed, missing or
    duplicated arcs. *)

val save : Dtr_core.Weights.t -> path:string -> unit
val load : path:string -> Dtr_core.Weights.t
