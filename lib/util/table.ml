type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  let width = List.length t.columns in
  let n = List.length cells in
  if n > width then invalid_arg "Table.add_row: more cells than columns";
  let padded = cells @ List.init (width - n) (fun _ -> "") in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let buf = Buffer.create 256 in
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  render_row t.columns;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let cell_mean_std m s = Printf.sprintf "%s (%s)" (cell_f m) (cell_f s)

let series ~title ~header rows =
  let t = create ~title ~columns:header in
  List.iter (fun row -> add_row t (List.map cell_f row)) rows;
  print t
