(* LRU over a hashtable with per-entry recency stamps.  Eviction scans for
   the minimum stamp — O(capacity), which at the intended cache sizes (tens
   to a few hundred entries) beats maintaining an intrusive list, and keeps
   the structure trivially correct under the qcheck eviction properties.

   Functorized over the key so int-keyed caches (the optimizer's delta
   cache) avoid polymorphic hashing while string-keyed caches (the serve
   daemon's eval cache) keep their old behaviour. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

module Make (K : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (K)

  type 'v entry = { value : 'v; mutable stamp : int }

  type 'v t = {
    cap : int;
    tbl : 'v entry Tbl.t;
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
    {
      cap = capacity;
      tbl = Tbl.create (2 * capacity);
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let capacity t = t.cap
  let length t = Tbl.length t.tbl

  let touch t e =
    t.tick <- t.tick + 1;
    e.stamp <- t.tick

  let find t k =
    match Tbl.find_opt t.tbl k with
    | Some e ->
        touch t e;
        t.hits <- t.hits + 1;
        Some e.value
    | None ->
        t.misses <- t.misses + 1;
        None

  let mem t k = Tbl.mem t.tbl k

  let evict_lru t =
    let victim = ref None in
    Tbl.iter
      (fun k e ->
        match !victim with
        | Some (_, s) when s <= e.stamp -> ()
        | _ -> victim := Some (k, e.stamp))
      t.tbl;
    match !victim with
    | Some (k, _) ->
        Tbl.remove t.tbl k;
        t.evictions <- t.evictions + 1
    | None -> ()

  let add t k v =
    (match Tbl.find_opt t.tbl k with
    | Some _ -> Tbl.remove t.tbl k
    | None -> if Tbl.length t.tbl >= t.cap then evict_lru t);
    let e = { value = v; stamp = 0 } in
    touch t e;
    Tbl.replace t.tbl k e

  let clear t = Tbl.reset t.tbl

  let stats t =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      length = Tbl.length t.tbl;
      capacity = t.cap;
    }
end
