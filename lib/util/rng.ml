(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014.  The golden-gamma constant
   0x9E3779B97F4A7C15 is the 64-bit truncation of 2^64 / phi. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t i =
  if i < 0 then invalid_arg "Rng.split: negative stream index";
  (* Child stream [i] is seeded from the parent's current position offset by
     [i + 1] gammas and mixed, so distinct indices land on well-separated
     points of the underlying Weyl sequence.  The parent is not advanced:
     [split] is a pure function of (parent state, index), which lets
     parallel callers derive any number of streams without a serial
     dependency on each other. *)
  { state = mix (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma)) }

(* Top 62 bits as a non-negative OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod n) in
  let rec draw () =
    let v = bits62 t in
    if v >= limit then draw () else v mod n
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let unit = Float.of_int bits *. 0x1p-53 in
  unit *. x

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mean ~stddev =
  if stddev < 0. then invalid_arg "Rng.gaussian: negative stddev";
  (* Box-Muller; u1 must be nonzero for the log. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0. then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0. then nonzero () else u
  in
  -.log (nonzero ()) /. rate

let log_normal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher-Yates over [0, n-1]: only the first k slots matter. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
