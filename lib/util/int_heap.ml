type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { keys = Array.make capacity 0; vals = Array.make capacity 0; len = 0 }

let clear h = h.len <- 0
let is_empty h = h.len = 0
let size h = h.len

let grow h =
  let cap = Array.length h.keys in
  let keys = Array.make (2 * cap) 0 in
  let vals = Array.make (2 * cap) 0 in
  Array.blit h.keys 0 keys 0 h.len;
  Array.blit h.vals 0 vals 0 h.len;
  h.keys <- keys;
  h.vals <- vals

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(i) < h.keys.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  if left < h.len then begin
    let right = left + 1 in
    let smallest = if right < h.len && h.keys.(right) < h.keys.(left) then right else left in
    if h.keys.(smallest) < h.keys.(i) then begin
      swap h i smallest;
      sift_down h smallest
    end
  end

let push h key v =
  if h.len = Array.length h.keys then grow h;
  h.keys.(h.len) <- key;
  h.vals.(h.len) <- v;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let min_key h =
  if h.len = 0 then invalid_arg "Int_heap.min_key: empty heap";
  h.keys.(0)

let pop_min h =
  if h.len = 0 then invalid_arg "Int_heap.pop_min: empty heap";
  let v = h.vals.(0) in
  h.len <- h.len - 1;
  h.keys.(0) <- h.keys.(h.len);
  h.vals.(0) <- h.vals.(h.len);
  if h.len > 0 then sift_down h 0;
  v
