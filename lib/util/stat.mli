(** Descriptive statistics used throughout the evaluation.

    The criticality metric of the paper (Eqs. (8)–(9)) is the difference
    between the mean and the {e left-tail mean} (mean of the smallest 10%) of
    a sample of post-failure network costs; the evaluation tables report means
    and standard deviations over repeated runs, and several figures report
    top-10% means over the worst failures.  This module provides exactly those
    estimators, plus a small streaming accumulator. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton samples.
    @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val minimum : float array -> float
(** Smallest element.  @raise Invalid_argument on an empty array. *)

val maximum : float array -> float
(** Largest element.  @raise Invalid_argument on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100]: linear interpolation between
    closest ranks (the common "exclusive" definition).  Does not modify [xs].
    @raise Invalid_argument on an empty array or [p] outside [0, 100]. *)

val left_tail_mean : float array -> fraction:float -> float
(** [left_tail_mean xs ~fraction] is the mean of the smallest
    [ceil (fraction * n)] elements (at least one).  This is the paper's
    left-tail estimator with its default [fraction = 0.1].
    @raise Invalid_argument on an empty array or [fraction] outside (0, 1]. *)

val right_tail_mean : float array -> fraction:float -> float
(** Mean of the largest [ceil (fraction * n)] elements (at least one); used
    for the "top-10% worst failures" rows of Tables II–IV. *)

val mean_std : float array -> float * float
(** [(mean, stddev)] in one call; convention used by every results table. *)

(** Streaming accumulator (Welford) for mean/variance without retaining the
    sample. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 if empty. *)

  val stddev : t -> float
  (** 0 if fewer than two observations. *)
end
