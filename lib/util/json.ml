(* Minimal recursive-descent JSON reader.  The project deliberately carries
   no JSON dependency — reports and traces are emitted by hand — so the
   trace tooling (report diff, BENCH trajectory checks) parses with this:
   the full value grammar, UTF-8 passed through opaquely, [\uXXXX] escapes
   decoded to UTF-8, no streaming.  Object members keep file order and
   duplicates; [member] returns the first. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let expect_word st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string"
    else begin
      let c = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> begin
          if st.pos >= String.length st.src then fail st "unterminated escape";
          let e = st.src.[st.pos] in
          st.pos <- st.pos + 1;
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if st.pos + 4 > String.length st.src then fail st "short \\u escape";
              let hex = String.sub st.src st.pos 4 in
              st.pos <- st.pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code -> add_utf8 b code
              | None -> fail st "bad \\u escape")
          | _ -> fail st "unknown escape");
          go ()
        end
      | c -> Buffer.add_char b c; go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let numeric c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.src && numeric st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> Num f
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> expect_word st "true" (Bool true)
  | Some 'f' -> expect_word st "false" (Bool false)
  | Some 'n' -> expect_word st "null" Null
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              Arr (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        items []
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
      end
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> raise (Parse_error msg)

(* --- accessors ---------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> l | _ -> []
let to_obj = function Obj kvs -> kvs | _ -> []

let string_member key j ~default =
  match member key j with Some (Str s) -> s | _ -> default

let float_member key j ~default =
  match member key j with Some (Num f) -> f | _ -> default

let int_member key j ~default =
  match member key j with
  | Some (Num f) when Float.is_integer f -> int_of_float f
  | _ -> default
