(* Minimal recursive-descent JSON reader and writer.  The project
   deliberately carries no JSON dependency, so the trace tooling (report
   diff, BENCH trajectory checks) parses with the reader — full value
   grammar, UTF-8 passed through opaquely, [\uXXXX] escapes decoded to
   UTF-8, no streaming; object members keep file order and duplicates, and
   [member] returns the first — while the serve wire protocol and the
   report emitters serialize with the writer below instead of ad-hoc
   [Printf] emission. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let expect_word st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string"
    else begin
      let c = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> begin
          if st.pos >= String.length st.src then fail st "unterminated escape";
          let e = st.src.[st.pos] in
          st.pos <- st.pos + 1;
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if st.pos + 4 > String.length st.src then fail st "short \\u escape";
              let hex = String.sub st.src st.pos 4 in
              st.pos <- st.pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code -> add_utf8 b code
              | None -> fail st "bad \\u escape")
          | _ -> fail st "unknown escape");
          go ()
        end
      | c -> Buffer.add_char b c; go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let numeric c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.src && numeric st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> Num f
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> expect_word st "true" (Bool true)
  | Some 'f' -> expect_word st "false" (Bool false)
  | Some 'n' -> expect_word st "null" Null
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              Arr (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        items []
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
      end
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> raise (Parse_error msg)

(* --- accessors ---------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> l | _ -> []
let to_obj = function Obj kvs -> kvs | _ -> []

let string_member key j ~default =
  match member key j with Some (Str s) -> s | _ -> default

let float_member key j ~default =
  match member key j with Some (Num f) -> f | _ -> default

let int_member key j ~default =
  match member key j with
  | Some (Num f) when Float.is_integer f -> int_of_float f
  | _ -> default

(* --- writer ------------------------------------------------------------- *)

(* String escaping for emission: the inverse of [parse_string].  Quotes,
   backslashes and the C0 control characters are escaped (the named escapes
   where JSON has them, [\u00XX] otherwise); everything else — including
   UTF-8 multibyte sequences — passes through verbatim, matching the
   reader's opaque treatment. *)
let escape_to_buffer b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escaped s =
  let b = Buffer.create (String.length s + 8) in
  escape_to_buffer b s;
  Buffer.contents b

(* Float emission: integral values in the exactly-representable range keep
   the report files' historical "N.0" form; everything else uses the
   shortest of %.15g / %.17g that parses back to the same bits, so values
   round-trip exactly through [parse].  JSON has no non-finite numbers:
   those emit [null], the same substitution the report emitter always
   made. *)
let number_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_buffer b j =
  let rec emit = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (number_string f)
    | Str s ->
        Buffer.add_char b '"';
        escape_to_buffer b s;
        Buffer.add_char b '"'
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string b ", ";
            emit v)
          items;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_char b '"';
            escape_to_buffer b k;
            Buffer.add_string b "\": ";
            emit v)
          kvs;
        Buffer.add_char b '}'
  in
  emit j

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

let to_channel oc j = output_string oc (to_string j)
