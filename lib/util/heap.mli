(** Binary min-heap keyed by floats.

    The shortest-path substrate runs one Dijkstra per destination per traffic
    class for every candidate weight setting, so the priority queue is the
    single hottest data structure in the library.  This is a plain array-based
    binary heap with lazy deletion (decrease-key is implemented by reinserting
    and discarding stale entries on [pop]), which is both simple and fast at
    the graph sizes of the paper (≤ a few hundred nodes). *)

type 'a t
(** Heap of values of type ['a] prioritised by a float key (smallest first). *)

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap.  [capacity] pre-sizes the backing array. *)

val clear : 'a t -> unit
(** Remove all entries, retaining the backing array. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of entries, counting stale duplicates that have not yet been
    discarded. *)

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key, or [None] if empty.
    Ties are broken arbitrarily. *)

val peek : 'a t -> (float * 'a) option
(** Smallest entry without removing it. *)
