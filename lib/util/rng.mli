(** Deterministic pseudo-random number generation.

    All randomized components of the library (topology generators, traffic
    matrices, the local-search heuristic) draw from an explicit [Rng.t] so that
    every experiment is reproducible from a single integer seed.  The
    implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a small,
    fast, well-tested 64-bit generator whose [split] operation yields
    statistically independent streams — convenient for giving each experiment
    repetition its own stream derived from a master seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds produce equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> int -> t
(** [split t i] derives the [i]-th child stream from [t]'s current state
    without advancing [t]: the result depends only on (state, [i]), so the
    same parent yields the same child for the same index, distinct indices
    yield statistically independent streams, and the parent's own stream is
    untouched — the properties needed to hand each parallel worker its own
    reproducible generator.
    @raise Invalid_argument if [i < 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1].  [n] must be positive.
    @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform on [lo, hi). *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normally distributed variate (Box–Muller). [stddev] must be
    non-negative. *)

val exponential : t -> rate:float -> float
(** Exponentially distributed variate with the given rate (> 0). *)

val log_normal : t -> mu:float -> sigma:float -> float
(** Log-normally distributed variate: [exp (N (mu, sigma))]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [0, n-1], in random order.
    @raise Invalid_argument if [k < 0 || k > n]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array.
    @raise Invalid_argument on an empty array. *)
