(** Bounded least-recently-used cache, functorized over the key.

    Two consumers share this one implementation: the serve daemon's
    epoch-keyed pricing cache (string keys) and the optimizer's
    weight-vector delta cache (rolling-hash int keys).  Capacity is small
    by design — eviction is an O(capacity) scan, which at these sizes
    costs less than the bookkeeping it saves. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

module Make (K : Hashtbl.HashedType) : sig
  type 'v t

  val create : capacity:int -> 'v t
  (** @raise Invalid_argument if [capacity < 1]. *)

  val capacity : 'v t -> int
  val length : 'v t -> int

  val find : 'v t -> K.t -> 'v option
  (** Refreshes the entry's recency on a hit; counts a hit or a miss. *)

  val mem : 'v t -> K.t -> bool
  (** Recency- and stats-neutral membership probe. *)

  val add : 'v t -> K.t -> 'v -> unit
  (** Inserts or replaces; at capacity, the least-recently-used entry is
      evicted first.  An insert counts as a use. *)

  val clear : 'v t -> unit
  (** Drops every entry (stats survive; no evictions are counted). *)

  val stats : 'v t -> stats
end
