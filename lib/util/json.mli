(** Minimal dependency-free JSON reader and writer.

    The reader backs the trace tooling ([dtr-opt trace diff] / [trace
    bench-check]): full value grammar, numbers as floats, [\uXXXX] escapes
    decoded to UTF-8, object members in file order.  The writer is its
    inverse — the serve wire protocol serializes whole values with
    {!to_string}/{!to_channel}, and the report emitters use the
    {!escaped}/{!number_string} primitives so string escaping and float
    round-tripping are single-sourced instead of hand-rolled per
    emitter. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
(** Parse one complete JSON document; trailing non-whitespace is an error. *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** First member with that key, when the value is an object. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option

val to_int_opt : t -> int option
(** Numbers with an integral value only. *)

val to_bool_opt : t -> bool option

val to_list : t -> t list
(** Array elements; [[]] for non-arrays. *)

val to_obj : t -> (string * t) list
(** Object members; [[]] for non-objects. *)

val string_member : string -> t -> default:string -> string
val float_member : string -> t -> default:float -> float
val int_member : string -> t -> default:int -> int

(** {1 Writer} *)

val escaped : string -> string
(** JSON string-body escaping (no surrounding quotes): quote, backslash and
    C0 controls are escaped; UTF-8 multibyte bytes pass through verbatim. *)

val number_string : float -> string
(** Shortest decimal form that {!parse} reads back to the same bits:
    integral values as ["N.0"], others via %.15g with a %.17g fallback.
    Non-finite floats — which JSON cannot represent — become ["null"]. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Single-line emission, [", "]/[": "] separators; [parse (to_string j)]
    yields [j] up to non-finite numbers (emitted as [Null]). *)

val to_channel : out_channel -> t -> unit
