(** Minimal dependency-free JSON reader.

    The project emits its JSON (reports, traces, BENCH rows) by hand; this
    module is the matching reader used by the trace tooling ([dtr-opt trace
    diff] / [trace bench-check]).  Full value grammar, numbers as floats,
    [\uXXXX] escapes decoded to UTF-8, object members in file order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
(** Parse one complete JSON document; trailing non-whitespace is an error. *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** First member with that key, when the value is an object. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option

val to_int_opt : t -> int option
(** Numbers with an integral value only. *)

val to_bool_opt : t -> bool option

val to_list : t -> t list
(** Array elements; [[]] for non-arrays. *)

val to_obj : t -> (string * t) list
(** Object members; [[]] for non-objects. *)

val string_member : string -> t -> default:string -> string
val float_member : string -> t -> default:float -> float
val int_member : string -> t -> default:int -> int
