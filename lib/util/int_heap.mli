(** Flat binary min-heap over [int] keys and [int] values.

    The Dijkstra hot path pushes and pops millions of (distance, node) pairs
    per optimization run.  The generic {!Heap} boxes every payload in an
    [option] and keys on floats; this specialized heap keeps both keys and
    values in unboxed [int array]s, so the priority queue never allocates
    after warm-up.  Duplicate keys are allowed (lazy deletion: callers check
    popped entries against the current distance array). *)

type t

val create : ?capacity:int -> unit -> t
val clear : t -> unit
val is_empty : t -> bool
val size : t -> int

val push : t -> int -> int -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val min_key : t -> int
(** Key of the minimum entry.  Read it {e before} {!pop_min}.
    @raise Invalid_argument when the heap is empty. *)

val pop_min : t -> int
(** Removes and returns the value of the minimum entry.
    @raise Invalid_argument when the heap is empty. *)
