let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  check_nonempty "Stat.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stat.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let minimum xs =
  check_nonempty "Stat.minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  check_nonempty "Stat.maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let percentile xs p =
  check_nonempty "Stat.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stat.percentile: p outside [0, 100]";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let tail_count n fraction =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Stat: tail fraction outside (0, 1]";
  max 1 (int_of_float (Float.ceil (fraction *. float_of_int n)))

let left_tail_mean xs ~fraction =
  check_nonempty "Stat.left_tail_mean" xs;
  let ys = sorted_copy xs in
  let k = tail_count (Array.length ys) fraction in
  mean (Array.sub ys 0 k)

let right_tail_mean xs ~fraction =
  check_nonempty "Stat.right_tail_mean" xs;
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let k = tail_count n fraction in
  mean (Array.sub ys (n - k) k)

let mean_std xs = (mean xs, stddev xs)

module Acc = struct
  type t = { mutable n : int; mutable m : float; mutable s : float }

  let create () = { n = 0; m = 0.; s = 0. }

  (* Welford's online algorithm. *)
  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.m in
    t.m <- t.m +. (delta /. float_of_int t.n);
    t.s <- t.s +. (delta *. (x -. t.m))

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.m

  let stddev t =
    if t.n < 2 then 0. else sqrt (t.s /. float_of_int (t.n - 1))
end
