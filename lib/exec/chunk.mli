(** Static chunking of an index range for the domain pool's work queue.

    A parallel operation over [items] independent indices is split into
    contiguous chunks that workers claim one at a time from a shared atomic
    counter.  Chunks are several times more numerous than workers so that
    per-item cost variance load-balances, while each claim still costs a
    single fetch-and-add.  Chunking only affects {e scheduling}: results are
    always written back by original index, so the outcome is independent of
    which worker runs which chunk. *)

type t = private { items : int; size : int; count : int }
(** [count] chunks of [size] indices each (the last one possibly shorter),
    covering [0, items). *)

val plan : items:int -> jobs:int -> t
(** Chunking of [items] indices for a pool of [jobs] workers under the
    default policy: [max 1 (items / (jobs * 4))] indices per chunk.
    @raise Invalid_argument if [items < 0] or [jobs < 1]. *)

val plan_sized : size:int -> items:int -> jobs:int -> t
(** Chunking with an explicit chunk length (the
    [--chunk-size]/[DTR_CHUNK_SIZE] override, or the pool's adaptive
    choice), clamped down to [items].
    @raise Invalid_argument if [items < 0], [jobs < 1], or [size < 1]. *)

val bounds : t -> int -> int * int
(** [bounds t c] is the half-open index range [\[lo, hi)] of chunk [c].
    @raise Invalid_argument on a chunk id outside [0, count). *)
