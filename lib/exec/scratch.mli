(** Per-domain reusable scratch state.

    Parallel evaluation kernels need mutable working memory — Dijkstra heaps,
    failure masks, whole incremental-evaluation engines — that must not be
    shared between domains and should not be reallocated on every parallel
    operation.  A scratch slot gives each domain its own lazily-created
    instance: the first {!get} on a domain runs the constructor, later calls
    return the same value.  Because {!Pool} workers are persistent domains,
    a slot's instances survive across parallel operations, so steady-state
    parallel sweeps allocate nothing for scratch.

    Scratch contents must never influence results — they are working memory,
    fully overwritten by each use.  The determinism contract of the execution
    engine rests on that: a result may be {e computed in} scratch, but must
    be a function of the inputs only. *)

type 'a t
(** A scratch slot: one ['a] instance per domain, created on first use. *)

val create : (unit -> 'a) -> 'a t
(** [create make] is a fresh slot whose per-domain instances are built by
    [make].  [make] runs on the domain that first touches the slot. *)

val get : 'a t -> 'a
(** This domain's instance of the slot (created now if absent). *)
