type t = Serial | Parallel of Pool.t

let serial = Serial

let of_pool pool = if Pool.jobs pool = 1 then Serial else Parallel pool

let jobs = function Serial -> 1 | Parallel p -> Pool.jobs p

(* Process-wide pool registry, one pool per requested size.  Pools are never
   torn down mid-run (parked workers cost nothing); the at_exit hook joins
   their domains so the process shuts down cleanly. *)
let registry : (int * Pool.t) list ref = ref []
let registry_mutex = Mutex.create ()
let cleanup_installed = ref false

let of_jobs n =
  if n <= 1 then Serial
  else
    Parallel
      (Mutex.protect registry_mutex (fun () ->
           match List.assoc_opt n !registry with
           | Some pool -> pool
           | None ->
               if not !cleanup_installed then begin
                 cleanup_installed := true;
                 at_exit (fun () ->
                     let pools =
                       Mutex.protect registry_mutex (fun () ->
                           let ps = List.map snd !registry in
                           registry := [];
                           ps)
                     in
                     List.iter Pool.shutdown pools)
               end;
               let pool = Pool.create ~jobs:n in
               registry := (n, pool) :: !registry;
               pool))

let env_var = "DTR_JOBS"

let default () =
  match Sys.getenv_opt env_var with
  | None -> Serial
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> of_jobs n
      | Some _ | None -> Serial)

let iter t ~n ~f =
  match t with
  | Serial ->
      for i = 0 to n - 1 do
        f i
      done
  | Parallel pool -> Pool.run pool ~n ~f

let map t ~n ~f =
  match t with Serial -> Array.init n f | Parallel pool -> Pool.map pool ~f n
