type t = Serial | Parallel of Pool.t

let serial = Serial

let of_pool pool = if Pool.jobs pool = 1 then Serial else Parallel pool

let jobs = function Serial -> 1 | Parallel p -> Pool.jobs p

(* Process-wide pool registry, one pool per requested size.  Pools are never
   torn down mid-run (parked workers cost nothing); the at_exit hook joins
   their domains so the process shuts down cleanly. *)
let registry : (int * Pool.t) list ref = ref []
let registry_mutex = Mutex.create ()
let cleanup_installed = ref false

let of_jobs n =
  if n <= 1 then Serial
  else
    Parallel
      (Mutex.protect registry_mutex (fun () ->
           match List.assoc_opt n !registry with
           | Some pool -> pool
           | None ->
               if not !cleanup_installed then begin
                 cleanup_installed := true;
                 at_exit (fun () ->
                     let pools =
                       Mutex.protect registry_mutex (fun () ->
                           let ps = List.map snd !registry in
                           registry := [];
                           ps)
                     in
                     List.iter Pool.shutdown pools)
               end;
               let pool = Pool.create ~jobs:n in
               registry := (n, pool) :: !registry;
               pool))

let env_var = "DTR_JOBS"

let default () =
  match Sys.getenv_opt env_var with
  | None -> Serial
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> of_jobs n
      | Some _ | None -> Serial)

(* Explicit chunk-size override: the CLI's --chunk-size (via
   [set_chunk_size]) wins over the DTR_CHUNK_SIZE environment variable;
   absent both, pools size chunks adaptively.  Like the pool registry this
   is process-global state — chunking affects scheduling only, never
   results, so a global knob is safe. *)
let chunk_env_var = "DTR_CHUNK_SIZE"

let env_chunk_size =
  lazy
    (match Sys.getenv_opt chunk_env_var with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Some n
        | Some _ | None -> None))

let chunk_override : int option ref = ref None

let set_chunk_size s =
  (match s with
  | Some n when n < 1 -> invalid_arg "Exec.set_chunk_size: must be positive"
  | _ -> ());
  chunk_override := s

let chunk_size () =
  match !chunk_override with
  | Some _ as s -> s
  | None -> Lazy.force env_chunk_size

let iter t ~n ~f =
  match t with
  | Serial ->
      for i = 0 to n - 1 do
        f i
      done
  | Parallel pool -> Pool.run ?chunk_size:(chunk_size ()) pool ~n ~f

let map t ~n ~f =
  match t with
  | Serial -> Array.init n f
  | Parallel pool -> Pool.map ?chunk_size:(chunk_size ()) pool ~f n
