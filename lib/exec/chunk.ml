type t = { items : int; size : int; count : int }

(* Aim for a few chunks per worker: small enough that one slow item cannot
   leave other workers idle for long, large enough that the fetch-and-add per
   claim is noise. *)
let chunks_per_job = 4

let plan ~items ~jobs =
  if items < 0 then invalid_arg "Chunk.plan: negative item count";
  if jobs < 1 then invalid_arg "Chunk.plan: jobs must be positive";
  let size = max 1 (items / (jobs * chunks_per_job)) in
  let count = if items = 0 then 0 else (items + size - 1) / size in
  { items; size; count }

let bounds t c =
  if c < 0 || c >= t.count then invalid_arg "Chunk.bounds: chunk id out of range";
  let lo = c * t.size in
  (lo, min t.items (lo + t.size))
