type t = { items : int; size : int; count : int }

(* Aim for a few chunks per worker: small enough that one slow item cannot
   leave other workers idle for long, large enough that the fetch-and-add per
   claim is noise. *)
let chunks_per_job = 4

let make ~items ~size =
  let count = if items = 0 then 0 else (items + size - 1) / size in
  { items; size; count }

let validate ~items ~jobs =
  if items < 0 then invalid_arg "Chunk.plan: negative item count";
  if jobs < 1 then invalid_arg "Chunk.plan: jobs must be positive"

let plan ~items ~jobs =
  validate ~items ~jobs;
  make ~items ~size:(max 1 (items / (jobs * chunks_per_job)))

let plan_sized ~size ~items ~jobs =
  validate ~items ~jobs;
  if size < 1 then invalid_arg "Chunk.plan: chunk size must be positive";
  make ~items ~size:(if items > 0 then min size items else size)

let bounds t c =
  if c < 0 || c >= t.count then invalid_arg "Chunk.bounds: chunk id out of range";
  let lo = c * t.size in
  (lo, min t.items (lo + t.size))
