(** Execution context: how the layers that fan out over independent work
    items (failure sweeps, per-arc statistics, Phase-1b probing) run them.

    A context is either {e serial} — the exact code path the library always
    had, guaranteed untouched — or a {!Pool} of domains.  Every parallel
    consumer in the library short-circuits to its pre-existing serial code
    when [jobs t = 1], and its parallel path is written to be bit-identical:
    results are written back by item index and reduced in index order, so
    costs, weights and eval counts do not depend on the context.  [jobs]
    therefore only changes wall-clock, never results — the property the
    test suite enforces by running everything under [DTR_JOBS=2] as well.

    Pools are cached per size in a process-global registry ({!of_jobs}), so
    contexts are cheap to construct anywhere; worker domains are joined via
    [at_exit]. *)

type t

val serial : t
(** Run everything inline on the calling domain. *)

val of_jobs : int -> t
(** [of_jobs n] is {!serial} when [n <= 1], otherwise a context over the
    process-wide pool of [n] domains (created on first request, reused
    after).  [n] is a worker count, not a core count — values above
    [Domain.recommended_domain_count ()] are allowed but oversubscribe. *)

val of_pool : Pool.t -> t
(** A context over a caller-managed pool (the caller keeps ownership and is
    responsible for {!Pool.shutdown}). *)

val jobs : t -> int
(** Worker count; [1] for {!serial}. *)

val env_var : string
(** ["DTR_JOBS"]. *)

val chunk_env_var : string
(** ["DTR_CHUNK_SIZE"]. *)

val set_chunk_size : int option -> unit
(** Pin the pool chunk size for every subsequent parallel operation (the
    CLI's [--chunk-size]); [None] restores the default behaviour (the
    [DTR_CHUNK_SIZE] environment variable if set, the pool's adaptive
    policy otherwise).  Chunking is a scheduling knob only: results are
    bit-identical whatever the granularity.
    @raise Invalid_argument on [Some n] with [n < 1]. *)

val chunk_size : unit -> int option
(** The effective explicit chunk-size override, if any: the value set via
    {!set_chunk_size}, else a valid positive [DTR_CHUNK_SIZE], else
    [None] (adaptive). *)

val default : unit -> t
(** The context library entry points fall back on when the caller passes
    none: [of_jobs n] when the [DTR_JOBS] environment variable holds a
    positive integer [n], {!serial} otherwise.  Lets tests and benches force
    every sweep in the process onto a pool without threading a context. *)

val iter : t -> n:int -> f:(int -> unit) -> unit
(** Calls [f i] exactly once per [i] in [0, n): a plain [for] loop under
    {!serial}, {!Pool.run} otherwise. *)

val map : t -> n:int -> f:(int -> 'a) -> 'a array
(** [[| f 0; …; f (n-1) |]] — order-preserving under every context. *)
