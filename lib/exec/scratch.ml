(* Domain-local storage keyed per slot.  [Domain.DLS] does exactly what the
   interface promises: one value per (key, domain), created by the
   initializer on first access from each domain. *)

type 'a t = 'a Domain.DLS.key

let create make = Domain.DLS.new_key make

let get slot = Domain.DLS.get slot
