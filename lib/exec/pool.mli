(** Fixed-size OCaml 5 domain pool with a chunked work queue.

    A pool owns [jobs - 1] worker domains (the submitting domain is the
    remaining worker: it participates in every operation, so a pool of size 1
    spawns no domains at all and runs inline).  Workers are spawned once and
    persist across operations, parked on a condition variable between them —
    repeated parallel sections pay no spawn cost and per-domain state cached
    in {!Scratch} slots survives from one operation to the next.

    {b Determinism contract.}  [run]/[map] call [f] {e exactly once} per
    index.  Scheduling (which domain runs which index, in which order) is
    nondeterministic, but [map] writes each result back at its original index
    and the caller observes only the completed array — so as long as [f i] is
    a pure function of [i] (plus read-only captured state), the result is
    bit-identical for every pool size, including 1.  Callers that reduce must
    fold the returned array in index order; nothing else about the execution
    order is observable.

    A pool is meant to be driven from one orchestrating domain at a time;
    submissions from two domains concurrently are not supported.  A task that
    re-enters the pool ([f] itself calling [run]) degrades to inline serial
    execution instead of deadlocking. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val run : ?chunk_size:int -> t -> n:int -> f:(int -> unit) -> unit
(** Calls [f i] exactly once for every [i] in [0, n), distributing chunks of
    indices over the pool (including the calling domain).  Returns once every
    index has been processed.  If any [f i] raises, remaining chunks are
    abandoned (indices within a claimed chunk may still run), and the first
    exception observed is re-raised in the caller once all workers have
    stopped.

    Chunk granularity is a scheduling knob only — results never depend on
    it.  [?chunk_size] pins the indices-per-claim; without it the pool sizes
    chunks {e adaptively}, targeting about 1ms of work per claim based on
    the measured per-item cost of previous batches (capped at an even
    jobs-way split), and falls back to the legacy [items/(jobs*4)] policy on
    the first, uncalibrated batch.
    @raise Invalid_argument if [n < 0] or [chunk_size < 1]. *)

val map : ?chunk_size:int -> t -> f:(int -> 'a) -> int -> 'a array
(** [map t ~f n] is [[| f 0; …; f (n-1) |]], computed as {!run} —
    order-preserving regardless of pool size and scheduling. *)

val shutdown : t -> unit
(** Terminates and joins the worker domains.  The pool must be idle.
    Idempotent; after shutdown, [run]/[map] execute inline serially. *)
