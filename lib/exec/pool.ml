(* Worker protocol: the orchestrating domain publishes one task at a time
   under [mutex] and bumps [epoch]; parked workers wake on [work], re-check
   the epoch (no lost wakeups — the predicate, not the signal, is
   authoritative), and drain chunks from the task's atomic counter until it
   runs dry.  The last decrement of [running] signals [idle], on which the
   orchestrator — who drains chunks too — waits before reading results, so
   the mutex hand-off publishes every worker's writes to the caller. *)

type task = {
  f : int -> unit;
  chunks : Chunk.t;
  next : int Atomic.t;  (* next unclaimed chunk *)
  cancelled : bool Atomic.t;  (* set on the first exception; stops claiming *)
}

(* [next] is the one mutable word every domain hammers with fetch-and-add;
   [cancelled] is read once per claim.  OCaml 5.1 has no
   [Atomic.make_contended], so space the two allocations a cache line apart
   (best-effort: they are adjacent in the minor heap at creation, which is
   exactly when a task is hottest) to keep the claim traffic from
   invalidating the flag's line. *)
let make_task ~f ~chunks =
  let next = Atomic.make 0 in
  let (_ : int array) = Sys.opaque_identity (Array.make 8 0) in
  let cancelled = Atomic.make false in
  { f; chunks; next; cancelled }

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a task was posted, or shutdown was requested *)
  idle : Condition.t;  (* a worker finished its share of the current task *)
  mutable task : task option;
  mutable epoch : int;
  mutable running : int;  (* workers still inside the current task *)
  mutable stop : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable busy : bool;  (* an operation is in flight (re-entrancy guard) *)
  mutable est_item_s : float;
      (* EWMA of observed wall seconds per item, 0. until the first batch
         completes; drives the adaptive chunk size *)
  mutable domains : unit Domain.t array;
}

let jobs t = t.jobs

let record_failure t exn bt =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some (exn, bt);
  Mutex.unlock t.mutex

(* Per-worker utilization, gated on the observability flag: each draining
   domain accumulates its own busy wall-clock and chunk count into its own
   dtr_obs shard, so the per-domain report shows how evenly the atomic work
   queue spread a batch.  Off by default — the gate costs one atomic load
   per [drain], nothing per chunk. *)
let m_busy = Dtr_obs.Metric.Accum.create "pool.worker.busy_seconds"
let m_chunks = Dtr_obs.Metric.Counter.create "pool.worker.chunks"
let m_batches = Dtr_obs.Metric.Counter.create "pool.batches"

let drain t task =
  let obs = Dtr_obs.Metric.enabled () in
  let t0 = if obs then Unix.gettimeofday () else 0. in
  let claimed = ref 0 in
  let continue = ref true in
  while !continue do
    if Atomic.get task.cancelled then continue := false
    else begin
      let c = Atomic.fetch_and_add task.next 1 in
      if c >= task.chunks.Chunk.count then continue := false
      else begin
        incr claimed;
        let lo, hi = Chunk.bounds task.chunks c in
        (* Flight-recorder breadcrumb: which domain claimed which item
           range, for the Chrome timeline's work-distribution view. *)
        if Dtr_obs.Trace.enabled () then Dtr_obs.Trace.emit_chunk_claim ~lo ~hi;
        try
          for i = lo to hi - 1 do
            task.f i
          done
        with exn ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.set task.cancelled true;
          record_failure t exn bt;
          continue := false
      end
    end
  done;
  if obs then begin
    Dtr_obs.Metric.Accum.add m_busy (Unix.gettimeofday () -. t0);
    Dtr_obs.Metric.Counter.add m_chunks !claimed
  end

let rec worker t seen =
  Mutex.lock t.mutex;
  while (not t.stop) && t.epoch = seen do
    Condition.wait t.work t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let task = Option.get t.task in
    Mutex.unlock t.mutex;
    drain t task;
    Mutex.lock t.mutex;
    t.running <- t.running - 1;
    if t.running = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.mutex;
    worker t epoch
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be positive";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      task = None;
      epoch = 0;
      running = 0;
      stop = false;
      failure = None;
      busy = false;
      est_item_s = 0.;
      domains = [||];
    }
  in
  t.domains <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let run_serial ~n ~f =
  for i = 0 to n - 1 do
    f i
  done

(* Target wall-clock work per chunk claim.  A claim costs one fetch-and-add
   plus a cache-line ping; at >= 1ms of work per claim that overhead is
   noise even with every worker contending. *)
let target_chunk_seconds = 1e-3

(* Chunk size for a batch of [n] items: an explicit override wins; otherwise,
   once a previous batch has calibrated [est_item_s], size chunks so each
   claim carries about [target_chunk_seconds] of work — capped at an even
   jobs-way split so no worker is left idle by construction.  Before any
   estimate exists, fall back to the legacy [Chunk.plan] policy. *)
let chunk_size_for t ~n = function
  | Some _ as override -> override
  | None ->
      if t.est_item_s <= 0. then None
      else begin
        let by_time =
          int_of_float (Float.ceil (target_chunk_seconds /. t.est_item_s))
        in
        let fair = (n + t.jobs - 1) / t.jobs in
        Some (max 1 (min by_time fair))
      end

let note_batch t ~n ~elapsed =
  if n > 0 && elapsed > 0. then begin
    (* Wall seconds per item as seen by the orchestrator.  With [jobs]
       domains genuinely in parallel this understates the per-item worker
       cost by up to [jobs]x, which only biases chunks larger — the
       direction that amortizes claims — while the jobs-way cap above keeps
       every worker fed. *)
    let per = elapsed /. float_of_int n in
    t.est_item_s <-
      (if t.est_item_s > 0. then 0.5 *. (t.est_item_s +. per) else per)
  end

let run ?chunk_size t ~n ~f =
  if n < 0 then invalid_arg "Pool.run: negative item count";
  (match chunk_size with
  | Some s when s < 1 -> invalid_arg "Pool.run: chunk size must be positive"
  | _ -> ());
  if n = 0 then ()
  else if Array.length t.domains = 0 || t.busy then run_serial ~n ~f
  else begin
    if Dtr_obs.Metric.enabled () then Dtr_obs.Metric.Counter.incr m_batches;
    let t0 = Unix.gettimeofday () in
    let chunks =
      match chunk_size_for t ~n chunk_size with
      | Some size -> Chunk.plan_sized ~size ~items:n ~jobs:t.jobs
      | None -> Chunk.plan ~items:n ~jobs:t.jobs
    in
    let task = make_task ~f ~chunks in
    Mutex.lock t.mutex;
    t.busy <- true;
    t.task <- Some task;
    t.failure <- None;
    t.running <- Array.length t.domains;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    drain t task;
    Mutex.lock t.mutex;
    while t.running > 0 do
      Condition.wait t.idle t.mutex
    done;
    t.task <- None;
    t.busy <- false;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    note_batch t ~n ~elapsed:(Unix.gettimeofday () -. t0);
    match failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

let map ?chunk_size t ~f n =
  if n < 0 then invalid_arg "Pool.map: negative item count";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run ?chunk_size t ~n ~f:(fun i -> results.(i) <- Some (f i));
    Array.map (function Some x -> x | None -> assert false) results
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]
