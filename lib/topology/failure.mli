(** Failure scenarios.

    The robust optimization (paper Eq. (4)) protects against {e all single
    (directed) link failures}; Section V-F additionally evaluates the computed
    routings against {e single node failures}, where a node failure removes
    every arc incident to the node as well as the traffic the node sources
    (we also drop the traffic it sinks, which is undeliverable by any
    routing — see DESIGN.md).

    A scenario is applied to routing as a boolean {e disabled-arc mask}; masks
    are reused across evaluations to avoid allocation in the optimizer's inner
    loop. *)

type t =
  | No_failure
  | Arc of Graph.arc_id  (** single directed link failure *)
  | Edge of Graph.arc_id
      (** physical link failure: the arc and its reverse; the id may be
          either direction *)
  | Node of Graph.node  (** router failure *)
  | Arcs of Graph.arc_id list  (** arbitrary multi-failure *)

val name : Graph.t -> t -> string
(** Short human-readable label, e.g. ["arc 17 (3->9)"]. *)

val set_mask : Graph.t -> t -> bool array -> unit
(** [set_mask g t mask] writes the scenario into [mask] (length [num_arcs]),
    clearing previous contents.
    @raise Invalid_argument on a wrong-size mask or out-of-range ids. *)

val mask : Graph.t -> t -> bool array
(** Fresh mask for the scenario. *)

val excluded_node : t -> Graph.node option
(** The node whose sourced and sunk traffic is removed ([Node] scenarios),
    if any. *)

val all_single_arcs : Graph.t -> t list
(** One [Arc] scenario per arc, in id order — the failure set of Eq. (4). *)

val all_single_edges : Graph.t -> t list
(** One [Edge] scenario per physical link (the lower arc id of each pair). *)

val all_single_nodes : Graph.t -> t list
(** One [Node] scenario per node, in node order. *)

val disconnects : Graph.t -> t -> bool
(** [true] if applying the scenario leaves the surviving graph (ignoring a
    failed node itself) not strongly connected. *)
