type degree_stats = { min_degree : int; max_degree : int; mean_degree : float }

let degrees g =
  let n = Graph.num_nodes g in
  let out = Array.make n 0 in
  Array.iter (fun a -> out.(a.Graph.src) <- out.(a.Graph.src) + 1) (Graph.arcs g);
  {
    min_degree = Array.fold_left min max_int out;
    max_degree = Array.fold_left max 0 out;
    mean_degree = float_of_int (Graph.num_arcs g) /. float_of_int n;
  }

(* BFS hop distances from [src] along enabled arcs. *)
let hop_distances g src =
  let n = Graph.num_nodes g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun id ->
        let v = (Graph.arc g id).Graph.dst in
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.out_arcs g u)
  done;
  dist

let hop_diameter g =
  let n = Graph.num_nodes g in
  let best = ref 0 in
  for src = 0 to n - 1 do
    Array.iter (fun d -> if d > !best then best := d) (hop_distances g src)
  done;
  !best

let prop_diameter g =
  let n = Graph.num_nodes g in
  let heap = Dtr_util.Heap.create ~capacity:n () in
  let dist = Array.make n Float.infinity in
  let best = ref 0. in
  for src = 0 to n - 1 do
    Array.fill dist 0 n Float.infinity;
    Dtr_util.Heap.clear heap;
    dist.(src) <- 0.;
    Dtr_util.Heap.push heap 0. src;
    let rec loop () =
      match Dtr_util.Heap.pop heap with
      | None -> ()
      | Some (d, u) ->
          if d = dist.(u) then
            List.iter
              (fun id ->
                let a = Graph.arc g id in
                let alt = d +. a.Graph.delay in
                if alt < dist.(a.Graph.dst) then begin
                  dist.(a.Graph.dst) <- alt;
                  Dtr_util.Heap.push heap alt a.Graph.dst
                end)
              (Graph.out_arcs g u);
          loop ()
    in
    loop ();
    Array.iter (fun d -> if d < Float.infinity && d > !best then best := d) dist
  done;
  !best

(* Edmonds-Karp with unit arc capacities: each augmenting path adds one
   arc-disjoint path.  Residual state is one int per arc (0 = used) plus a
   "reverse flow" marker allowing cancellation. *)
let arc_disjoint_paths g ~src ~dst =
  if src = dst then 0
  else begin
    let m = Graph.num_arcs g in
    let capacity = Array.make m 1 in
    (* residual reverse capacity per arc: flow pushed on the arc that a later
       augmenting path may cancel *)
    let reverse = Array.make m 0 in
    let n = Graph.num_nodes g in
    let parent_arc = Array.make n (-1) in
    let parent_dir = Array.make n true (* true = forward use of the arc *) in
    let rec augment count =
      Array.fill parent_arc 0 n (-1);
      let visited = Array.make n false in
      visited.(src) <- true;
      let queue = Queue.create () in
      Queue.add src queue;
      let found = ref false in
      while (not !found) && not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let try_visit v arc forward =
          if (not visited.(v)) && not !found then begin
            visited.(v) <- true;
            parent_arc.(v) <- arc;
            parent_dir.(v) <- forward;
            if v = dst then found := true else Queue.add v queue
          end
        in
        List.iter
          (fun id -> if capacity.(id) > 0 then try_visit (Graph.arc g id).Graph.dst id true)
          (Graph.out_arcs g u);
        List.iter
          (fun id -> if reverse.(id) > 0 then try_visit (Graph.arc g id).Graph.src id false)
          (Graph.in_arcs g u)
      done;
      if not !found then count
      else begin
        (* walk back and flip residuals *)
        let rec walk v =
          if v <> src then begin
            let id = parent_arc.(v) in
            let a = Graph.arc g id in
            if parent_dir.(v) then begin
              capacity.(id) <- 0;
              reverse.(id) <- 1;
              walk a.Graph.src
            end
            else begin
              reverse.(id) <- 0;
              capacity.(id) <- 1;
              walk a.Graph.dst
            end
          end
        in
        walk dst;
        augment (count + 1)
      end
    in
    augment 0
  end

let mean_path_diversity g =
  let n = Graph.num_nodes g in
  let acc = ref 0. and pairs = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        acc := !acc +. float_of_int (arc_disjoint_paths g ~src ~dst);
        incr pairs
      end
    done
  done;
  if !pairs = 0 then 0. else !acc /. float_of_int !pairs
