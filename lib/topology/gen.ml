module Rng = Dtr_util.Rng

type options = { capacity : float; target_diameter : float; min_delay : float }

let default_options = { capacity = 500.; target_diameter = 0.025; min_delay = 0.0005 }

(* Delays start proportional to Euclidean distance; [scale_to_diameter]
   rescales the whole graph afterwards so that the propagation-delay diameter
   matches the configured target. *)
let edge_of_pair options pts u v =
  let dist = Geometry.distance pts.(u) pts.(v) in
  let cap = options.capacity and prop = Float.max options.min_delay dist in
  Graph.{ u; v; cap; prop }

(* Propagation-delay diameter: largest finite shortest-path delay over all
   ordered pairs (float Dijkstra over the edge list). *)
let prop_diameter ~n edges =
  let adj = Array.make n [] in
  List.iter
    (fun { Graph.u; v; prop; _ } ->
      adj.(u) <- (v, prop) :: adj.(u);
      adj.(v) <- (u, prop) :: adj.(v))
    edges;
  let diameter = ref 0. in
  let dist = Array.make n Float.infinity in
  let heap = Dtr_util.Heap.create ~capacity:n () in
  for s = 0 to n - 1 do
    Array.fill dist 0 n Float.infinity;
    Dtr_util.Heap.clear heap;
    dist.(s) <- 0.;
    Dtr_util.Heap.push heap 0. s;
    let rec loop () =
      match Dtr_util.Heap.pop heap with
      | None -> ()
      | Some (d, u) ->
          if d = dist.(u) then
            List.iter
              (fun (v, w) ->
                let alt = d +. w in
                if alt < dist.(v) then begin
                  dist.(v) <- alt;
                  Dtr_util.Heap.push heap alt v
                end)
              adj.(u);
          loop ()
    in
    loop ();
    Array.iter (fun d -> if d < Float.infinity && d > !diameter then diameter := d) dist
  done;
  !diameter

let scale_to_diameter options ~n edges =
  let diameter = prop_diameter ~n edges in
  if diameter <= 0. then edges
  else begin
    let factor = options.target_diameter /. diameter in
    List.map
      (fun e -> { e with Graph.prop = Float.max options.min_delay (e.Graph.prop *. factor) })
      edges
  end

let target_edges ~nodes ~degree =
  let m = int_of_float (Float.round (float_of_int nodes *. degree /. 2.)) in
  if m < nodes - 1 then
    invalid_arg "Gen: degree too small for a connected graph";
  if m > nodes * (nodes - 1) / 2 then
    invalid_arg "Gen: degree exceeds the complete graph";
  m

(* Uniform random spanning tree skeleton: attach each node (in random order)
   to a uniformly random already-attached node. *)
let random_tree_pairs rng nodes =
  let order = Array.init nodes (fun i -> i) in
  Rng.shuffle rng order;
  let pairs = ref [] in
  for k = 1 to nodes - 1 do
    let parent = order.(Rng.int rng k) in
    pairs := (min order.(k) parent, max order.(k) parent) :: !pairs
  done;
  !pairs

let rand ?(options = default_options) rng ~nodes ~degree =
  let m = target_edges ~nodes ~degree in
  let pts = Geometry.random_points rng nodes in
  let chosen = Hashtbl.create (2 * m) in
  let add (u, v) = Hashtbl.replace chosen (u, v) () in
  List.iter add (random_tree_pairs rng nodes);
  while Hashtbl.length chosen < m do
    let u = Rng.int rng nodes and v = Rng.int rng nodes in
    if u <> v then add (min u v, max u v)
  done;
  let edges =
    Hashtbl.fold (fun (u, v) () acc -> edge_of_pair options pts u v :: acc) chosen []
  in
  Graph.of_edges ~coords:pts ~n:nodes (scale_to_diameter options ~n:nodes edges)

(* Union-find for connectivity patching. *)
module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find t i = if t.(i) = i then i else begin
    t.(i) <- find t t.(i);
    t.(i)
  end

  let union t i j =
    let ri = find t i and rj = find t j in
    if ri <> rj then t.(ri) <- rj

  let same t i j = find t i = find t j
end

let near ?(options = default_options) rng ~nodes ~degree =
  let m = target_edges ~nodes ~degree in
  let pts = Geometry.random_points rng nodes in
  (* All candidate pairs sorted by distance: taking the shortest non-edges
     first realizes "each node connects to its closest neighbours". *)
  let pairs = ref [] in
  for u = 0 to nodes - 1 do
    for v = u + 1 to nodes - 1 do
      pairs := (Geometry.distance pts.(u) pts.(v), u, v) :: !pairs
    done
  done;
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) !pairs in
  let uf = Uf.create nodes in
  let chosen = ref [] and count = ref 0 in
  let components = ref nodes in
  (* First pass: shortest pairs, but keep room so that connectivity is always
     reachable within the m-edge budget. *)
  let take u v =
    if not (Uf.same uf u v) then decr components;
    Uf.union uf u v;
    chosen := (u, v) :: !chosen;
    incr count
  in
  List.iter
    (fun (_, u, v) ->
      if !count < m then begin
        let slack = m - !count in
        let needed = !components - 1 in
        if Uf.same uf u v then begin
          if slack > needed then take u v
        end
        else take u v
      end)
    sorted;
  ignore rng;
  let edges = List.map (fun (u, v) -> edge_of_pair options pts u v) !chosen in
  Graph.of_edges ~coords:pts ~n:nodes (scale_to_diameter options ~n:nodes edges)

let power_law ?(options = default_options) rng ~nodes ~m_attach =
  if m_attach < 1 then invalid_arg "Gen.power_law: m_attach must be >= 1";
  if nodes <= m_attach then invalid_arg "Gen.power_law: nodes must exceed m_attach";
  let pts = Geometry.random_points rng nodes in
  let chosen = ref [] in
  (* Endpoint multiset: picking a uniform element realizes degree-
     proportional (preferential) attachment. *)
  let endpoints = ref [] in
  let add u v =
    chosen := (min u v, max u v) :: !chosen;
    endpoints := u :: v :: !endpoints
  in
  let core = m_attach + 1 in
  for u = 0 to core - 1 do
    for v = u + 1 to core - 1 do
      add u v
    done
  done;
  let endpoint_array = ref (Array.of_list !endpoints) in
  for w = core to nodes - 1 do
    let targets = Hashtbl.create m_attach in
    while Hashtbl.length targets < m_attach do
      let t = Rng.pick rng !endpoint_array in
      if t <> w then Hashtbl.replace targets t ()
    done;
    Hashtbl.iter (fun t () -> add w t) targets;
    endpoint_array := Array.of_list !endpoints
  done;
  let edges = List.map (fun (u, v) -> edge_of_pair options pts u v) !chosen in
  Graph.of_edges ~coords:pts ~n:nodes (scale_to_diameter options ~n:nodes edges)

(* Synthetic 16-PoP North-American backbone (see DESIGN.md, substitution 1).
   Coordinates are (latitude, longitude) in degrees. *)
let isp_cities =
  [|
    ("Seattle", 47.61, -122.33);
    ("Sunnyvale", 37.37, -122.04);
    ("Los Angeles", 34.05, -118.24);
    ("Phoenix", 33.45, -112.07);
    ("Denver", 39.74, -104.99);
    ("Dallas", 32.78, -96.80);
    ("Houston", 29.76, -95.36);
    ("Kansas City", 39.10, -94.58);
    ("Minneapolis", 44.98, -93.27);
    ("Chicago", 41.88, -87.63);
    ("Indianapolis", 39.77, -86.16);
    ("Atlanta", 33.75, -84.39);
    ("Miami", 25.76, -80.19);
    ("Washington DC", 38.91, -77.04);
    ("New York", 40.71, -74.01);
    ("Boston", 42.36, -71.06);
  |]

(* 35 bidirectional links = 70 arcs, mean degree 4.375: a west-coast chain,
   two transcontinental middles, and a denser east-coast mesh, in the style of
   US tier-1 maps of the period. *)
let isp_links =
  [
    (0, 1); (0, 4); (0, 8); (1, 2); (1, 4);
    (2, 3); (2, 5); (3, 5); (3, 4); (4, 7);
    (4, 5); (5, 6); (5, 7); (6, 11); (6, 12);
    (7, 9); (7, 10); (8, 9); (8, 4); (9, 10);
    (9, 14); (7, 11); (10, 11); (10, 13); (11, 12);
    (11, 13); (12, 13); (13, 14); (14, 15); (9, 15);
    (1, 3); (6, 7); (2, 6); (11, 14); (8, 14);
  ]

(* Shared construction for the measured city maps: great-circle propagation
   delays at fibre speed and a rough continental-US planar embedding for
   display purposes. *)
let city_backbone ~options cities links =
  let n = Array.length cities in
  let speed_ms_per_km = 0.005 (* 5 us/km: light in fibre, ~2/3 c *) in
  let prop u v =
    let _, lat1, lon1 = cities.(u) and _, lat2, lon2 = cities.(v) in
    let km = Geometry.great_circle_km ~lat1 ~lon1 ~lat2 ~lon2 in
    Float.max options.min_delay (km *. speed_ms_per_km /. 1000.)
  in
  let coords =
    Array.map
      (fun (_, lat, lon) ->
        Geometry.point ((lon +. 125.) /. 60.) ((lat -. 24.) /. 25.))
      cities
  in
  let edges =
    List.map
      (fun (u, v) -> Graph.{ u; v; cap = options.capacity; prop = prop u v })
      links
  in
  Graph.of_edges ~coords ~n edges

let isp_backbone ?(options = default_options) () =
  city_backbone ~options isp_cities isp_links

(* Rocketfuel-style measured tier-1 backbone: 41 PoPs at real US city
   coordinates with a link map in the shape of published PoP-level ISP maps
   (coastal chains, parallel transcontinental long-hauls, a dense north-east
   mesh and a Texas/Gulf loop).  80 bidirectional links = 160 arcs, mean
   degree 3.9 — the large measured instance for the bench scale tier. *)
let backbone_cities =
  [|
    ("Seattle", 47.61, -122.33);
    ("Portland", 45.52, -122.68);
    ("Sacramento", 38.58, -121.49);
    ("San Francisco", 37.77, -122.42);
    ("San Jose", 37.34, -121.89);
    ("Los Angeles", 34.05, -118.24);
    ("Anaheim", 33.84, -117.91);
    ("San Diego", 32.72, -117.16);
    ("Las Vegas", 36.17, -115.14);
    ("Phoenix", 33.45, -112.07);
    ("Salt Lake City", 40.76, -111.89);
    ("Denver", 39.74, -104.99);
    ("Albuquerque", 35.08, -106.65);
    ("El Paso", 31.76, -106.49);
    ("Dallas", 32.78, -96.80);
    ("Fort Worth", 32.76, -97.33);
    ("Austin", 30.27, -97.74);
    ("San Antonio", 29.42, -98.49);
    ("Houston", 29.76, -95.36);
    ("New Orleans", 29.95, -90.07);
    ("Kansas City", 39.10, -94.58);
    ("St. Louis", 38.63, -90.20);
    ("Minneapolis", 44.98, -93.27);
    ("Chicago", 41.88, -87.63);
    ("Milwaukee", 43.04, -87.91);
    ("Detroit", 42.33, -83.05);
    ("Cleveland", 41.50, -81.69);
    ("Columbus", 39.96, -83.00);
    ("Indianapolis", 39.77, -86.16);
    ("Cincinnati", 39.10, -84.51);
    ("Nashville", 36.16, -86.78);
    ("Memphis", 35.15, -90.05);
    ("Atlanta", 33.75, -84.39);
    ("Orlando", 28.54, -81.38);
    ("Miami", 25.76, -80.19);
    ("Tampa", 27.95, -82.46);
    ("Raleigh", 35.78, -78.64);
    ("Washington DC", 38.91, -77.04);
    ("Philadelphia", 39.95, -75.17);
    ("New York", 40.71, -74.01);
    ("Boston", 42.36, -71.06);
  |]

let backbone_links =
  [
    (0, 1); (0, 10); (0, 22); (0, 23); (1, 2);
    (1, 3); (2, 3); (2, 10); (3, 4); (3, 5);
    (4, 5); (4, 11); (5, 6); (5, 7); (5, 8);
    (5, 9); (5, 14); (6, 7); (7, 9); (8, 9);
    (8, 10); (9, 12); (9, 13); (9, 14); (10, 11);
    (11, 12); (11, 14); (11, 20); (12, 13); (13, 17);
    (14, 15); (14, 16); (14, 18); (14, 20); (14, 21);
    (14, 31); (15, 16); (16, 17); (17, 18); (18, 19);
    (19, 31); (19, 32); (19, 35); (20, 21); (20, 22);
    (20, 23); (21, 23); (21, 28); (21, 31); (22, 23);
    (22, 24); (23, 24); (23, 25); (23, 26); (23, 28);
    (23, 39); (23, 40); (25, 26); (26, 27); (26, 38);
    (26, 39); (27, 28); (27, 29); (27, 37); (28, 29);
    (29, 30); (30, 31); (30, 32); (31, 32); (32, 33);
    (32, 36); (32, 37); (33, 34); (33, 35); (34, 35);
    (36, 37); (37, 38); (37, 39); (38, 39); (39, 40);
  ]

let backbone ?(options = default_options) () =
  city_backbone ~options backbone_cities backbone_links

type kind = Rand_topo | Near_topo | Pl_topo | Isp | Backbone

let kind_name = function
  | Rand_topo -> "RandTopo"
  | Near_topo -> "NearTopo"
  | Pl_topo -> "PLTopo"
  | Isp -> "ISP"
  | Backbone -> "Backbone"

let generate ?(options = default_options) rng kind ~nodes ~degree =
  match kind with
  | Rand_topo -> rand ~options rng ~nodes ~degree
  | Near_topo -> near ~options rng ~nodes ~degree
  | Pl_topo ->
      let m_attach = max 1 (int_of_float (Float.round (degree /. 2.))) in
      power_law ~options rng ~nodes ~m_attach
  | Isp -> isp_backbone ~options ()
  | Backbone -> backbone ~options ()
