(** Directed network graph.

    The paper models the network as a directed graph [G = (V, E)] where every
    arc [l] has a capacity [Cl] and a propagation delay [pl], and carries two
    configurable weights (one per traffic class).  Physical bidirectional
    links are represented as two arcs that know each other through
    {!val:rev}; failure scenarios and routing always operate at arc
    granularity, exactly as in the paper's formulation
    ([Kfail] sums over all arcs [l] in [E]).

    Nodes are dense integers [0 .. num_nodes - 1]; arcs are dense integers
    [0 .. num_arcs - 1], which lets every per-arc quantity in the library
    (weights, loads, delays, criticalities) live in a flat array. *)

type node = int
type arc_id = int

type arc = private {
  id : arc_id;
  src : node;
  dst : node;
  capacity : float;  (** Mb/s *)
  delay : float;  (** propagation delay, seconds *)
  rev : arc_id;  (** reverse arc of the same physical link, or -1 *)
}

type t

(** {1 Construction} *)

type edge_spec = {
  u : node;
  v : node;
  cap : float;  (** Mb/s, applied to both directions *)
  prop : float;  (** seconds, applied to both directions *)
}

val of_edges : ?coords:Geometry.point array -> n:int -> edge_spec list -> t
(** [of_edges ~n edges] builds a graph on [n] nodes from undirected edge
    specs; each spec contributes the two arcs [(u,v)] and [(v,u)] linked via
    [rev].  Arc ids follow list order: spec [k] yields arcs [2k] (u→v) and
    [2k+1] (v→u).
    @raise Invalid_argument on out-of-range endpoints, self-loops, duplicate
    edges, or non-positive capacity/delay. *)

(** {1 Accessors} *)

val num_nodes : t -> int
val num_arcs : t -> int

val arc : t -> arc_id -> arc
(** @raise Invalid_argument if the id is out of range. *)

val arcs : t -> arc array
(** All arcs, indexed by id.  Do not mutate. *)

val out_arcs : t -> node -> arc_id list
(** Arc ids leaving a node. *)

val in_arcs : t -> node -> arc_id list
(** Arc ids entering a node. *)

val out_arcs_array : t -> node -> arc_id array
(** Same as {!out_arcs} as a shared array — the routing hot path uses these
    to avoid list traversal.  Do not mutate. *)

val in_arcs_array : t -> node -> arc_id array
(** Shared array counterpart of {!in_arcs}.  Do not mutate. *)

(** {2 Flat-CSR views}

    The routing core iterates adjacency and per-arc attributes as contiguous
    arrays: node [v]'s out-arcs occupy the slice
    [out_csr.(out_offsets.(v)) .. out_csr.(out_offsets.(v+1) - 1)], in
    increasing arc id (the same order as {!out_arcs}).  The per-arc arrays
    are the structure-of-arrays view of {!arcs}; float arrays are unboxed.
    All returned arrays are shared — do not mutate. *)

val out_offsets : t -> int array
(** CSR row offsets for out-adjacency; length [num_nodes + 1]. *)

val out_csr : t -> arc_id array
(** Packed out-arc ids; length [num_arcs]. *)

val in_offsets : t -> int array
(** CSR row offsets for in-adjacency; length [num_nodes + 1]. *)

val in_csr : t -> arc_id array
(** Packed in-arc ids; length [num_arcs]. *)

val arc_sources : t -> node array
(** [arc_sources g].(id) = [(arc g id).src]. *)

val arc_dests : t -> node array
(** [arc_dests g].(id) = [(arc g id).dst]. *)

val arc_capacities : t -> float array
(** [arc_capacities g].(id) = [(arc g id).capacity] (Mb/s, unboxed). *)

val arc_prop_delays : t -> float array
(** [arc_prop_delays g].(id) = [(arc g id).delay] (seconds, unboxed). *)

val arc_reverses : t -> arc_id array
(** [arc_reverses g].(id) = [(arc g id).rev]. *)

val find_arc : t -> node -> node -> arc_id option
(** First arc from [src] to [dst], if any. *)

val coords : t -> Geometry.point array option
(** Node positions when the graph was built from an embedding. *)

val edge_count : t -> int
(** Number of physical (undirected) links, i.e. pairs of mutually reverse
    arcs; arcs without a reverse count as one each. *)

val mean_out_degree : t -> float

(** {1 Connectivity} *)

val strongly_connected : ?disabled:bool array -> t -> bool
(** [strongly_connected ?disabled g] ignores arcs whose id is marked [true]
    in [disabled] (length [num_arcs]). *)

val reachable_from : ?disabled:bool array -> t -> node -> bool array
(** Forward reachability along enabled arcs. *)

(** {1 Pretty-printing} *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: node/arc counts, mean degree, delay range. *)
