(** Directed network graph.

    The paper models the network as a directed graph [G = (V, E)] where every
    arc [l] has a capacity [Cl] and a propagation delay [pl], and carries two
    configurable weights (one per traffic class).  Physical bidirectional
    links are represented as two arcs that know each other through
    {!val:rev}; failure scenarios and routing always operate at arc
    granularity, exactly as in the paper's formulation
    ([Kfail] sums over all arcs [l] in [E]).

    Nodes are dense integers [0 .. num_nodes - 1]; arcs are dense integers
    [0 .. num_arcs - 1], which lets every per-arc quantity in the library
    (weights, loads, delays, criticalities) live in a flat array. *)

type node = int
type arc_id = int

type arc = private {
  id : arc_id;
  src : node;
  dst : node;
  capacity : float;  (** Mb/s *)
  delay : float;  (** propagation delay, seconds *)
  rev : arc_id;  (** reverse arc of the same physical link, or -1 *)
}

type t

(** {1 Construction} *)

type edge_spec = {
  u : node;
  v : node;
  cap : float;  (** Mb/s, applied to both directions *)
  prop : float;  (** seconds, applied to both directions *)
}

val of_edges : ?coords:Geometry.point array -> n:int -> edge_spec list -> t
(** [of_edges ~n edges] builds a graph on [n] nodes from undirected edge
    specs; each spec contributes the two arcs [(u,v)] and [(v,u)] linked via
    [rev].  Arc ids follow list order: spec [k] yields arcs [2k] (u→v) and
    [2k+1] (v→u).
    @raise Invalid_argument on out-of-range endpoints, self-loops, duplicate
    edges, or non-positive capacity/delay. *)

(** {1 Accessors} *)

val num_nodes : t -> int
val num_arcs : t -> int

val arc : t -> arc_id -> arc
(** @raise Invalid_argument if the id is out of range. *)

val arcs : t -> arc array
(** All arcs, indexed by id.  Do not mutate. *)

val out_arcs : t -> node -> arc_id list
(** Arc ids leaving a node. *)

val in_arcs : t -> node -> arc_id list
(** Arc ids entering a node. *)

val out_arcs_array : t -> node -> arc_id array
(** Same as {!out_arcs} as a shared array — the routing hot path uses these
    to avoid list traversal.  Do not mutate. *)

val in_arcs_array : t -> node -> arc_id array
(** Shared array counterpart of {!in_arcs}.  Do not mutate. *)

val find_arc : t -> node -> node -> arc_id option
(** First arc from [src] to [dst], if any. *)

val coords : t -> Geometry.point array option
(** Node positions when the graph was built from an embedding. *)

val edge_count : t -> int
(** Number of physical (undirected) links, i.e. pairs of mutually reverse
    arcs; arcs without a reverse count as one each. *)

val mean_out_degree : t -> float

(** {1 Connectivity} *)

val strongly_connected : ?disabled:bool array -> t -> bool
(** [strongly_connected ?disabled g] ignores arcs whose id is marked [true]
    in [disabled] (length [num_arcs]). *)

val reachable_from : ?disabled:bool array -> t -> node -> bool array
(** Forward reachability along enabled arcs. *)

(** {1 Pretty-printing} *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: node/arc counts, mean degree, delay range. *)
