type t =
  | No_failure
  | Arc of Graph.arc_id
  | Edge of Graph.arc_id
  | Node of Graph.node
  | Arcs of Graph.arc_id list

let name g = function
  | No_failure -> "no failure"
  | Arc id ->
      let a = Graph.arc g id in
      Printf.sprintf "arc %d (%d->%d)" id a.Graph.src a.Graph.dst
  | Edge id ->
      let a = Graph.arc g id in
      Printf.sprintf "edge %d (%d<->%d)" id a.Graph.src a.Graph.dst
  | Node v -> Printf.sprintf "node %d" v
  | Arcs ids -> Printf.sprintf "arcs {%s}" (String.concat "," (List.map string_of_int ids))

let check_arc g id =
  if id < 0 || id >= Graph.num_arcs g then invalid_arg "Failure: arc id out of range"

let set_mask g t mask =
  if Array.length mask <> Graph.num_arcs g then
    invalid_arg "Failure.set_mask: mask length mismatch";
  Array.fill mask 0 (Array.length mask) false;
  match t with
  | No_failure -> ()
  | Arc id ->
      check_arc g id;
      mask.(id) <- true
  | Edge id ->
      check_arc g id;
      mask.(id) <- true;
      let rev = (Graph.arc g id).Graph.rev in
      if rev >= 0 then mask.(rev) <- true
  | Node v ->
      if v < 0 || v >= Graph.num_nodes g then
        invalid_arg "Failure.set_mask: node out of range";
      List.iter (fun id -> mask.(id) <- true) (Graph.out_arcs g v);
      List.iter (fun id -> mask.(id) <- true) (Graph.in_arcs g v)
  | Arcs ids ->
      List.iter
        (fun id ->
          check_arc g id;
          mask.(id) <- true)
        ids

let mask g t =
  let m = Array.make (Graph.num_arcs g) false in
  set_mask g t m;
  m

let excluded_node = function
  | Node v -> Some v
  | No_failure | Arc _ | Edge _ | Arcs _ -> None

let all_single_arcs g = List.init (Graph.num_arcs g) (fun id -> Arc id)

let all_single_edges g =
  Array.fold_right
    (fun a acc ->
      if a.Graph.rev < 0 || a.Graph.id < a.Graph.rev then Edge a.Graph.id :: acc
      else acc)
    (Graph.arcs g) []

let all_single_nodes g = List.init (Graph.num_nodes g) (fun v -> Node v)

let disconnects g t =
  let disabled = mask g t in
  match t with
  | Node v ->
      (* Connectivity among surviving nodes: check reachability both ways
         from some other node, ignoring [v]. *)
      let n = Graph.num_nodes g in
      if n <= 2 then false
      else begin
        let start = if v = 0 then 1 else 0 in
        let fwd = Graph.reachable_from ~disabled g start in
        let ok = ref true in
        for u = 0 to n - 1 do
          if u <> v && not fwd.(u) then ok := false
        done;
        if not !ok then true
        else begin
          (* Backward reachability: every survivor must reach [start]. *)
          let reaches_start = Array.make n false in
          reaches_start.(start) <- true;
          let changed = ref true in
          while !changed do
            changed := false;
            Array.iter
              (fun a ->
                if
                  (not disabled.(a.Graph.id))
                  && reaches_start.(a.Graph.dst)
                  && not reaches_start.(a.Graph.src)
                then begin
                  reaches_start.(a.Graph.src) <- true;
                  changed := true
                end)
              (Graph.arcs g)
          done;
          let bad = ref false in
          for u = 0 to n - 1 do
            if u <> v && not reaches_start.(u) then bad := true
          done;
          !bad
        end
      end
  | No_failure | Arc _ | Edge _ | Arcs _ ->
      not (Graph.strongly_connected ~disabled g)
