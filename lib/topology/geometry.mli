(** Planar geometry for synthetic topologies.

    The paper places nodes of synthesized topologies uniformly at random in a
    unit square and derives link propagation delays from Euclidean distances;
    the real ISP topology uses geographic great-circle distances.  Both needs
    are covered here. *)

type point = { x : float; y : float }

val point : float -> float -> point

val distance : point -> point -> float
(** Euclidean distance. *)

val random_in_unit_square : Dtr_util.Rng.t -> point
(** Uniform point in [0,1] x [0,1]. *)

val random_points : Dtr_util.Rng.t -> int -> point array
(** [random_points rng n] draws [n] independent uniform points. *)

val great_circle_km : lat1:float -> lon1:float -> lat2:float -> lon2:float -> float
(** Great-circle distance in kilometres between two (latitude, longitude)
    pairs given in degrees (haversine formula, mean Earth radius). *)

val nearest_neighbours : point array -> int -> int -> int list
(** [nearest_neighbours pts i k] is the list of the [k] indices (excluding
    [i]) closest to point [i], nearest first.  [k] is clamped to [n-1]. *)
