(** Topology statistics.

    The paper's explanation of {e when} robust optimization helps (Sections
    V-B/V-C) rests on {e path diversity}: "the benefits that robust
    optimization can offer are typically in proportion to the number of
    paths it can explore".  This module quantifies that, along with the
    usual degree/diameter statistics used to describe the evaluated
    topologies. *)

type degree_stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  (* out-degrees; in- and out-degrees coincide for bidirectional graphs *)
}

val degrees : Graph.t -> degree_stats

val hop_diameter : Graph.t -> int
(** Largest finite hop distance over ordered pairs (0 for a single node). *)

val prop_diameter : Graph.t -> float
(** Largest finite propagation delay of a delay-shortest path, seconds. *)

val arc_disjoint_paths :
  Graph.t ->
  src:Graph.node ->
  dst:Graph.node ->
  int
(** Maximum number of arc-disjoint paths from [src] to [dst] (max-flow with
    unit arc capacities, Edmonds–Karp); 0 when [src = dst] or disconnected. *)

val mean_path_diversity : Graph.t -> float
(** Mean of {!arc_disjoint_paths} over all ordered pairs — a single scalar
    for "how many alternatives does robust optimization have to explore". *)
