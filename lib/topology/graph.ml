type node = int
type arc_id = int

type arc = {
  id : arc_id;
  src : node;
  dst : node;
  capacity : float;
  delay : float;
  rev : arc_id;
}

type t = {
  n : int;
  arcs : arc array;
  out_arcs : arc_id list array;
  in_arcs : arc_id list array;
  out_arr : arc_id array array;
  in_arr : arc_id array array;
  (* CSR adjacency: node [v]'s out-arc ids are [out_ids.(out_off.(v)) ..
     out_ids.(out_off.(v + 1) - 1)], in increasing arc id — the same order as
     [out_arcs]/[out_arr].  Likewise for in-arcs.  The hot path (Dijkstra,
     routing, pricing) iterates these contiguous slices instead of chasing
     per-node structures. *)
  out_off : int array;
  out_ids : arc_id array;
  in_off : int array;
  in_ids : arc_id array;
  (* Structure-of-arrays view of [arcs], indexed by arc id.  Float arrays are
     unboxed in OCaml, so capacity/delay lookups in the pricing loops touch a
     flat double array instead of a boxed record per arc. *)
  arc_src : node array;
  arc_dst : node array;
  arc_cap : float array;
  arc_prop : float array;
  arc_rev : arc_id array;
  coords : Geometry.point array option;
}

type edge_spec = { u : node; v : node; cap : float; prop : float }

let of_edges ?coords ~n edges =
  if n <= 0 then invalid_arg "Graph.of_edges: need at least one node";
  (match coords with
  | Some pts when Array.length pts <> n ->
      invalid_arg "Graph.of_edges: coords length mismatch"
  | _ -> ());
  let seen = Hashtbl.create (2 * List.length edges) in
  let check { u; v; cap; prop } =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if u = v then invalid_arg "Graph.of_edges: self-loop";
    if cap <= 0. then invalid_arg "Graph.of_edges: non-positive capacity";
    if prop <= 0. then invalid_arg "Graph.of_edges: non-positive delay";
    let key = (min u v, max u v) in
    if Hashtbl.mem seen key then invalid_arg "Graph.of_edges: duplicate edge";
    Hashtbl.add seen key ()
  in
  List.iter check edges;
  let m = List.length edges in
  let arcs = Array.make (2 * m) { id = 0; src = 0; dst = 0; capacity = 1.; delay = 1.; rev = -1 } in
  List.iteri
    (fun k { u; v; cap; prop } ->
      let fwd = 2 * k and bwd = (2 * k) + 1 in
      arcs.(fwd) <- { id = fwd; src = u; dst = v; capacity = cap; delay = prop; rev = bwd };
      arcs.(bwd) <- { id = bwd; src = v; dst = u; capacity = cap; delay = prop; rev = fwd })
    edges;
  let out_arcs = Array.make n [] and in_arcs = Array.make n [] in
  (* Iterate in reverse so adjacency lists come out in increasing arc id. *)
  for id = (2 * m) - 1 downto 0 do
    let a = arcs.(id) in
    out_arcs.(a.src) <- id :: out_arcs.(a.src);
    in_arcs.(a.dst) <- id :: in_arcs.(a.dst)
  done;
  let out_arr = Array.map Array.of_list out_arcs in
  let in_arr = Array.map Array.of_list in_arcs in
  let pack adj =
    let off = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      off.(v + 1) <- off.(v) + Array.length adj.(v)
    done;
    let ids = Array.make off.(n) 0 in
    for v = 0 to n - 1 do
      Array.blit adj.(v) 0 ids off.(v) (Array.length adj.(v))
    done;
    (off, ids)
  in
  let out_off, out_ids = pack out_arr in
  let in_off, in_ids = pack in_arr in
  {
    n;
    arcs;
    out_arcs;
    in_arcs;
    out_arr;
    in_arr;
    out_off;
    out_ids;
    in_off;
    in_ids;
    arc_src = Array.map (fun a -> a.src) arcs;
    arc_dst = Array.map (fun a -> a.dst) arcs;
    arc_cap = Array.map (fun a -> a.capacity) arcs;
    arc_prop = Array.map (fun a -> a.delay) arcs;
    arc_rev = Array.map (fun a -> a.rev) arcs;
    coords;
  }

let num_nodes g = g.n
let num_arcs g = Array.length g.arcs

let arc g id =
  if id < 0 || id >= Array.length g.arcs then invalid_arg "Graph.arc: bad id";
  g.arcs.(id)

let arcs g = g.arcs
let out_arcs g v = g.out_arcs.(v)
let in_arcs g v = g.in_arcs.(v)
let out_arcs_array g v = g.out_arr.(v)
let in_arcs_array g v = g.in_arr.(v)
let out_offsets g = g.out_off
let out_csr g = g.out_ids
let in_offsets g = g.in_off
let in_csr g = g.in_ids
let arc_sources g = g.arc_src
let arc_dests g = g.arc_dst
let arc_capacities g = g.arc_cap
let arc_prop_delays g = g.arc_prop
let arc_reverses g = g.arc_rev

let find_arc g src dst =
  List.find_opt (fun id -> g.arcs.(id).dst = dst) g.out_arcs.(src)

let coords g = g.coords

let edge_count g =
  Array.fold_left
    (fun acc a -> if a.rev < 0 || a.id < a.rev then acc + 1 else acc)
    0 g.arcs

let mean_out_degree g = float_of_int (num_arcs g) /. float_of_int g.n

let enabled disabled id =
  match disabled with None -> true | Some mask -> not mask.(id)

let reachable_from ?disabled g s =
  let visited = Array.make g.n false in
  let stack = ref [ s ] in
  visited.(s) <- true;
  let rec walk () =
    match !stack with
    | [] -> ()
    | u :: rest ->
        stack := rest;
        let visit id =
          if enabled disabled id then begin
            let v = g.arcs.(id).dst in
            if not visited.(v) then begin
              visited.(v) <- true;
              stack := v :: !stack
            end
          end
        in
        List.iter visit g.out_arcs.(u);
        walk ()
  in
  walk ();
  visited

(* Strong connectivity via forward + backward reachability from node 0. *)
let strongly_connected ?disabled g =
  let fwd = reachable_from ?disabled g 0 in
  if not (Array.for_all Fun.id fwd) then false
  else begin
    let visited = Array.make g.n false in
    let stack = ref [ 0 ] in
    visited.(0) <- true;
    let rec walk () =
      match !stack with
      | [] -> ()
      | u :: rest ->
          stack := rest;
          let visit id =
            if enabled disabled id then begin
              let v = g.arcs.(id).src in
              if not visited.(v) then begin
                visited.(v) <- true;
                stack := v :: !stack
              end
            end
          in
          List.iter visit g.in_arcs.(u);
          walk ()
    in
    walk ();
    Array.for_all Fun.id visited
  end

let pp_summary ppf g =
  let delays = Array.map (fun a -> a.delay) g.arcs in
  let lo = Array.fold_left Float.min Float.infinity delays in
  let hi = Array.fold_left Float.max Float.neg_infinity delays in
  Format.fprintf ppf "graph: %d nodes, %d arcs (mean out-degree %.1f), delays %.1f-%.1f ms"
    g.n (num_arcs g) (mean_out_degree g) (lo *. 1000.) (hi *. 1000.)
