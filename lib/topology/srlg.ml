type group = { id : int; label : string; edges : Graph.arc_id list }

type t = { graph : Graph.t; groups : group list; of_arc : group option array }

let groups t = t.groups
let num_groups t = List.length t.groups

let canonical g id =
  let a = Graph.arc g id in
  if a.Graph.rev >= 0 && a.Graph.rev < id then a.Graph.rev else id

let build g named =
  let m = Graph.num_arcs g in
  let of_arc = Array.make m None in
  let groups =
    List.mapi
      (fun gid (label, members) ->
        if members = [] then invalid_arg "Srlg: empty group";
        let edges = List.sort_uniq compare (List.map (canonical g) members) in
        let grp = { id = gid; label; edges } in
        List.iter
          (fun e ->
            let claim id =
              match of_arc.(id) with
              | Some _ -> invalid_arg "Srlg: link in two groups"
              | None -> of_arc.(id) <- Some grp
            in
            claim e;
            let rev = (Graph.arc g e).Graph.rev in
            if rev >= 0 then claim rev)
          edges;
        grp)
      named
  in
  { graph = g; groups; of_arc }

let of_edge_groups g named =
  List.iter
    (fun (_, members) ->
      List.iter
        (fun id ->
          if id < 0 || id >= Graph.num_arcs g then invalid_arg "Srlg: bad arc id")
        members)
    named;
  build g named

let geographic ?(radius = 0.15) g =
  let pts =
    match Graph.coords g with
    | Some pts -> pts
    | None -> invalid_arg "Srlg.geographic: graph has no coordinates"
  in
  let midpoint id =
    let a = Graph.arc g id in
    let u = pts.(a.Graph.src) and v = pts.(a.Graph.dst) in
    Geometry.point ((u.Geometry.x +. v.Geometry.x) /. 2.) ((u.Geometry.y +. v.Geometry.y) /. 2.)
  in
  (* representative links in id order *)
  let links =
    Array.to_list (Graph.arcs g)
    |> List.filter_map (fun a ->
           if a.Graph.rev < 0 || a.Graph.id < a.Graph.rev then Some a.Graph.id else None)
  in
  (* greedy seeding: each link joins the first group whose seed midpoint is
     within the radius, else starts a new group *)
  let clusters = ref [] (* (seed midpoint, members ref) in reverse order *) in
  List.iter
    (fun id ->
      let p = midpoint id in
      let rec place = function
        | [] -> clusters := (p, ref [ id ]) :: !clusters
        | (seed, members) :: rest ->
            if Geometry.distance seed p <= radius then members := id :: !members
            else place rest
      in
      place (List.rev !clusters))
    links;
  let named =
    List.rev !clusters
    |> List.mapi (fun i (_, members) ->
           (Printf.sprintf "conduit-%d" i, List.rev !members))
  in
  build g named

let failures t =
  List.map
    (fun grp ->
      (* both directions of every member link *)
      let all =
        List.concat_map
          (fun e ->
            let rev = (Graph.arc t.graph e).Graph.rev in
            if rev >= 0 then [ e; rev ] else [ e ])
          grp.edges
      in
      Failure.Arcs all)
    t.groups

let group_of_arc t id =
  if id < 0 || id >= Array.length t.of_arc then None else t.of_arc.(id)

let pp g ppf t =
  List.iter
    (fun grp ->
      let members =
        List.map
          (fun e ->
            let a = Graph.arc g e in
            Printf.sprintf "%d<->%d" a.Graph.src a.Graph.dst)
          grp.edges
      in
      Format.fprintf ppf "%s (%d links): %s@." grp.label (List.length grp.edges)
        (String.concat ", " members))
    t.groups
