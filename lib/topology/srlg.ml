type group = { id : int; label : string; edges : Graph.arc_id list }

type t = { graph : Graph.t; groups : group list; of_arc : group option array }

let groups t = t.groups
let num_groups t = List.length t.groups

let canonical g id =
  let a = Graph.arc g id in
  if a.Graph.rev >= 0 && a.Graph.rev < id then a.Graph.rev else id

let build g named =
  let m = Graph.num_arcs g in
  let of_arc = Array.make m None in
  let groups =
    List.mapi
      (fun gid (label, members) ->
        if members = [] then invalid_arg "Srlg: empty group";
        let edges = List.sort_uniq compare (List.map (canonical g) members) in
        let grp = { id = gid; label; edges } in
        List.iter
          (fun e ->
            let claim id =
              match of_arc.(id) with
              | Some _ -> invalid_arg "Srlg: link in two groups"
              | None -> of_arc.(id) <- Some grp
            in
            claim e;
            let rev = (Graph.arc g e).Graph.rev in
            if rev >= 0 then claim rev)
          edges;
        grp)
      named
  in
  { graph = g; groups; of_arc }

let of_edge_groups g named =
  List.iter
    (fun (_, members) ->
      List.iter
        (fun id ->
          if id < 0 || id >= Graph.num_arcs g then invalid_arg "Srlg: bad arc id")
        members)
    named;
  build g named

let geographic ?(radius = 0.15) g =
  let pts =
    match Graph.coords g with
    | Some pts -> pts
    | None -> invalid_arg "Srlg.geographic: graph has no coordinates"
  in
  let midpoint id =
    let a = Graph.arc g id in
    let u = pts.(a.Graph.src) and v = pts.(a.Graph.dst) in
    Geometry.point ((u.Geometry.x +. v.Geometry.x) /. 2.) ((u.Geometry.y +. v.Geometry.y) /. 2.)
  in
  (* Representative links in geometric order — midpoint, then endpoint node
     ids — rather than arc-id order: midpoints and node ids survive an
     arc-id relabeling, so the seeding sequence (and with it group
     membership) is invariant under how the arcs happen to be numbered. *)
  let link_key id =
    let a = Graph.arc g id in
    let p = midpoint id in
    let lo = min a.Graph.src a.Graph.dst and hi = max a.Graph.src a.Graph.dst in
    (p.Geometry.x, p.Geometry.y, lo, hi)
  in
  let links =
    Array.to_list (Graph.arcs g)
    |> List.filter_map (fun a ->
           if a.Graph.rev < 0 || a.Graph.id < a.Graph.rev then Some a.Graph.id else None)
    |> List.sort (fun i j -> compare (link_key i) (link_key j))
  in
  (* Greedy seeding with nearest assignment: a link joins the {e nearest}
     seed within the radius (ties to the earliest-created seed) and starts
     a new group only when no seed is in range.  One linear scan over the
     seeds per link — the old first-fit walked [List.rev !clusters], built
     fresh per link, and its arbitrary first-match made membership depend
     on seed creation order even for a link closer to a later seed. *)
  let seeds = ref (Array.make 8 (Geometry.point 0. 0.)) in
  let members = ref (Array.make 8 []) in
  let nseeds = ref 0 in
  let new_seed p id =
    if !nseeds = Array.length !seeds then begin
      let s' = Array.make (2 * !nseeds) p and m' = Array.make (2 * !nseeds) [] in
      Array.blit !seeds 0 s' 0 !nseeds;
      Array.blit !members 0 m' 0 !nseeds;
      seeds := s';
      members := m'
    end;
    !seeds.(!nseeds) <- p;
    !members.(!nseeds) <- [ id ];
    incr nseeds
  in
  List.iter
    (fun id ->
      let p = midpoint id in
      let best = ref (-1) and best_d = ref infinity in
      for k = 0 to !nseeds - 1 do
        let d = Geometry.distance !seeds.(k) p in
        if d <= radius && d < !best_d then begin
          best := k;
          best_d := d
        end
      done;
      if !best < 0 then new_seed p id
      else !members.(!best) <- id :: !members.(!best))
    links;
  let named =
    List.init !nseeds (fun i ->
        (Printf.sprintf "conduit-%d" i, List.rev !members.(i)))
  in
  build g named

let failures t =
  List.map
    (fun grp ->
      (* both directions of every member link *)
      let all =
        List.concat_map
          (fun e ->
            let rev = (Graph.arc t.graph e).Graph.rev in
            if rev >= 0 then [ e; rev ] else [ e ])
          grp.edges
      in
      Failure.Arcs all)
    t.groups

let group_of_arc t id =
  if id < 0 || id >= Array.length t.of_arc then None else t.of_arc.(id)

let pp g ppf t =
  List.iter
    (fun grp ->
      let members =
        List.map
          (fun e ->
            let a = Graph.arc g e in
            Printf.sprintf "%d<->%d" a.Graph.src a.Graph.dst)
          grp.edges
      in
      Format.fprintf ppf "%s (%d links): %s@." grp.label (List.length grp.edges)
        (String.concat ", " members))
    t.groups
