type point = { x : float; y : float }

let point x y = { x; y }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let random_in_unit_square rng =
  { x = Dtr_util.Rng.float rng 1.0; y = Dtr_util.Rng.float rng 1.0 }

let random_points rng n = Array.init n (fun _ -> random_in_unit_square rng)

let earth_radius_km = 6371.0

let great_circle_km ~lat1 ~lon1 ~lat2 ~lon2 =
  let rad d = d *. Float.pi /. 180. in
  let phi1 = rad lat1 and phi2 = rad lat2 in
  let dphi = rad (lat2 -. lat1) and dlambda = rad (lon2 -. lon1) in
  let a =
    (sin (dphi /. 2.) ** 2.)
    +. (cos phi1 *. cos phi2 *. (sin (dlambda /. 2.) ** 2.))
  in
  2. *. earth_radius_km *. atan2 (sqrt a) (sqrt (1. -. a))

let nearest_neighbours pts i k =
  let n = Array.length pts in
  let k = min k (n - 1) in
  let others = ref [] in
  for j = n - 1 downto 0 do
    if j <> i then others := j :: !others
  done;
  let by_distance a b =
    Float.compare (distance pts.(i) pts.(a)) (distance pts.(i) pts.(b))
  in
  let sorted = List.sort by_distance !others in
  List.filteri (fun rank _ -> rank < k) sorted
