(** Topology generators used in the paper's evaluation (Section V-A1).

    Four families:
    - {b RandTopo}: random connected graph of a given mean (undirected)
      degree, nodes uniform in the unit square;
    - {b NearTopo}: nodes connect to their closest neighbours — low path
      diversity through the core, the paper's "outlier" topology;
    - {b PLTopo}: power-law topology grown by Barabási–Albert preferential
      attachment;
    - {b ISP}: a fixed 16-node North-American backbone (the paper uses a real
      ISP's proprietary topology; ours is a synthetic stand-in with PoPs at
      real city coordinates and 35 bidirectional links — see DESIGN.md).

    All generators produce bidirectional links (two arcs per edge), a uniform
    capacity (paper: 500 Mb/s), and propagation delays derived from the
    embedding, scaled into roughly the paper's 5–20 ms range. *)

type options = {
  capacity : float;  (** Mb/s per arc; default 500 *)
  target_diameter : float;
      (** seconds; the propagation-delay diameter the synthesized network is
          scaled to.  The paper scales link delays "proportionally to ensure
          a reasonable match between the target SLA bound theta and the
          network diameter"; the default 25 ms matches the default theta
          (U.S. coast-to-coast).  Link delays then come out roughly in the
          paper's 5–20 ms range for RandTopo, shorter for NearTopo. *)
  min_delay : float;  (** floor on a single link's delay; default 0.5 ms *)
}

val default_options : options

val rand :
  ?options:options -> Dtr_util.Rng.t -> nodes:int -> degree:float -> Graph.t
(** Random connected graph: a uniform random spanning tree plus uniformly
    random extra edges up to [round (nodes * degree / 2)] edges total.
    [degree] is the mean undirected node degree (so a 30-node, degree-6 graph
    has 90 edges = 180 arcs, the paper's "[30,180]").
    @raise Invalid_argument if the requested edge count is below [nodes - 1]
    or above the complete graph. *)

val near :
  ?options:options -> Dtr_util.Rng.t -> nodes:int -> degree:float -> Graph.t
(** Nearest-neighbour graph: shortest non-edges are added first (so every
    node ends up connected to its closest neighbours), patched to
    connectivity, with exactly the same edge count as {!rand} for equal
    parameters. *)

val power_law :
  ?options:options -> Dtr_util.Rng.t -> nodes:int -> m_attach:int -> Graph.t
(** Barabási–Albert preferential attachment: an initial [m_attach + 1]-clique
    and [m_attach] edges per subsequent node, giving
    [C(m_attach+1, 2) + (nodes - m_attach - 1) * m_attach] edges.
    @raise Invalid_argument if [nodes <= m_attach] or [m_attach < 1]. *)

val isp_backbone : ?options:options -> unit -> Graph.t
(** Fixed 16-node, 70-arc North-American backbone; propagation delays from
    great-circle distances at 5 µs/km, floored at 2 ms.  Ignores the delay
    scaling fields of [options]. *)

val backbone : ?options:options -> unit -> Graph.t
(** Rocketfuel-style measured tier-1 backbone: 41 PoPs at real US city
    coordinates, 80 bidirectional links (160 arcs) in the shape of published
    PoP-level ISP maps.  Same great-circle delay model as {!isp_backbone};
    the large measured instance of the bench scale tier. *)

(** {1 Named families for experiment drivers} *)

type kind = Rand_topo | Near_topo | Pl_topo | Isp | Backbone

val kind_name : kind -> string
(** "RandTopo", "NearTopo", "PLTopo", "ISP", "Backbone". *)

val generate :
  ?options:options -> Dtr_util.Rng.t -> kind -> nodes:int -> degree:float -> Graph.t
(** Dispatch on [kind] with a uniform parameter interface.  For [Pl_topo],
    [m_attach = max 1 (round (degree / 2))]; for [Isp] and [Backbone],
    [nodes] and [degree] are ignored. *)
