(** Shared-risk link groups (SRLGs).

    Real backbone links that share a conduit, a bridge crossing, or a PoP
    riser fail together: a single fibre cut takes down every circuit in the
    group.  An SRLG partitions (a subset of) the physical links into groups
    that constitute joint failure scenarios — a natural generalisation of the
    paper's single-link failures and of the "multiple link failures"
    mentioned in Section V-F.  Because the robust optimizer (Phase 2) is
    generic over failure scenarios, SRLG-robust routing falls out of the
    existing machinery: feed it {!failures}. *)

type group = {
  id : int;
  label : string;
  edges : Graph.arc_id list;
      (** representative (lower) arc id of each member link; a group failure
          removes both directions of every member *)
}

type t

val groups : t -> group list

val num_groups : t -> int

val of_edge_groups : Graph.t -> (string * Graph.arc_id list) list -> t
(** Build an SRLG set from explicit member lists (arc ids may name either
    direction of a link; they are normalised to the lower id).
    @raise Invalid_argument on unknown ids, empty groups, or a link
    appearing in two groups. *)

val geographic : ?radius:float -> Graph.t -> t
(** Cluster links whose geometric midpoints lie within [radius] (default
    0.15 in unit-square coordinates) of a group seed: a simple model of
    shared conduits in dense areas.  Each link joins the {e nearest}
    in-range seed and links are processed in geometric (not arc-id) order,
    so group membership is invariant under arc-id relabeling.  Links far
    from everything form singleton groups, so the result always covers
    every link.
    @raise Invalid_argument if the graph has no coordinates. *)

val failures : t -> Failure.t list
(** One joint failure scenario per group (both directions of all member
    links). *)

val group_of_arc : t -> Graph.arc_id -> group option
(** The group containing the given arc (either direction), if any. *)

val pp : Graph.t -> Format.formatter -> t -> unit
(** One line per group: label, size, member endpoints. *)
