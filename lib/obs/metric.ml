(* Sharded metrics: every domain owns a preallocated shard (one int and one
   float cell per metric) registered in a process-global list on first touch;
   writers only ever touch their own shard, so there are no read-modify-write
   races to lose — the failure mode of the old [Eval.Sweep_stats] global,
   whose [Atomic.set (Atomic.get + dt)] pair silently dropped wall time
   whenever two sweeps overlapped.  Readers merge the shards under the
   registry mutex, folding in increasing domain-id order so the merge itself
   is deterministic for a given set of shards (integer sums are exact and
   order-independent; float sums are exact for lost-update purposes and
   order-pinned for reproducibility). *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let max_metrics = 256

type kind = Counter_k | Accum_k

(* Registry: metric names/kinds indexed by metric id.  Metrics are created at
   module-initialisation time (before any worker domain exists) or lazily
   from tests; creation and every merged read take [registry_mutex].  The
   hot-path write takes nothing: it indexes the caller's own shard. *)
let registry_mutex = Mutex.create ()
let names = Array.make max_metrics ""
let kinds = Array.make max_metrics Counter_k
let num_metrics = ref 0

type shard = { domain : int; ints : int array; floats : float array }

let shards : shard list ref = ref []

(* Shard arrays are over-allocated by one cache line (8 words) so that the
   low-indexed counters one domain hammers cannot land on the same line as
   the tail of another domain's shard allocated right next to it — the
   classic false-sharing pattern for per-worker counter blocks.  The padding
   indices are simply never used. *)
let line_pad = 8

let shard_slot : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          domain = (Domain.self () :> int);
          ints = Array.make (max_metrics + line_pad) 0;
          floats = Array.make (max_metrics + line_pad) 0.;
        }
      in
      Mutex.protect registry_mutex (fun () -> shards := s :: !shards);
      s)

(* Creation is idempotent per (name, kind): modules can register their
   metrics at init without coordinating, and tests can re-create by name. *)
let register kind name =
  Mutex.protect registry_mutex (fun () ->
      let rec find i =
        if i >= !num_metrics then None
        else if names.(i) = name && kinds.(i) = kind then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i -> i
      | None ->
          if !num_metrics >= max_metrics then
            invalid_arg "Dtr_obs.Metric: metric table full";
          let i = !num_metrics in
          names.(i) <- name;
          kinds.(i) <- kind;
          num_metrics := i + 1;
          i)

let sorted_shards () =
  Mutex.protect registry_mutex (fun () ->
      List.sort (fun a b -> compare a.domain b.domain) !shards)

module Counter = struct
  type t = int

  let create name = register Counter_k name
  let name t = names.(t)

  let add t k =
    let s = Domain.DLS.get shard_slot in
    s.ints.(t) <- s.ints.(t) + k

  let incr t = add t 1

  let value t =
    List.fold_left (fun acc s -> acc + s.ints.(t)) 0 (sorted_shards ())

  let per_domain t =
    List.filter_map
      (fun s -> if s.ints.(t) = 0 then None else Some (s.domain, s.ints.(t)))
      (sorted_shards ())

  let reset t =
    Mutex.protect registry_mutex (fun () ->
        List.iter (fun s -> s.ints.(t) <- 0) !shards)
end

module Accum = struct
  type t = int

  let create name = register Accum_k name
  let name t = names.(t)

  let add t x =
    let s = Domain.DLS.get shard_slot in
    s.floats.(t) <- s.floats.(t) +. x

  let value t =
    List.fold_left (fun acc s -> acc +. s.floats.(t)) 0. (sorted_shards ())

  let per_domain t =
    List.filter_map
      (fun s -> if s.floats.(t) = 0. then None else Some (s.domain, s.floats.(t)))
      (sorted_shards ())

  let reset t =
    Mutex.protect registry_mutex (fun () ->
        List.iter (fun s -> s.floats.(t) <- 0.) !shards)
end

let reset_all () =
  Mutex.protect registry_mutex (fun () ->
      List.iter
        (fun s ->
          Array.fill s.ints 0 max_metrics 0;
          Array.fill s.floats 0 max_metrics 0.)
        !shards)

let fold_metrics f =
  let shards = sorted_shards () in
  let n = Mutex.protect registry_mutex (fun () -> !num_metrics) in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match f i shards with None -> () | Some x -> out := x :: !out
  done;
  !out

let all_counters () =
  fold_metrics (fun i shards ->
      if kinds.(i) <> Counter_k then None
      else Some (names.(i), List.fold_left (fun a s -> a + s.ints.(i)) 0 shards))

let all_accums () =
  fold_metrics (fun i shards ->
      if kinds.(i) <> Accum_k then None
      else Some (names.(i), List.fold_left (fun a s -> a +. s.floats.(i)) 0. shards))

let per_domain () =
  let n = Mutex.protect registry_mutex (fun () -> !num_metrics) in
  List.filter_map
    (fun s ->
      let cs = ref [] and fs = ref [] in
      for i = n - 1 downto 0 do
        match kinds.(i) with
        | Counter_k -> if s.ints.(i) <> 0 then cs := (names.(i), s.ints.(i)) :: !cs
        | Accum_k -> if s.floats.(i) <> 0. then fs := (names.(i), s.floats.(i)) :: !fs
      done;
      if !cs = [] && !fs = [] then None else Some (s.domain, !cs, !fs))
    (sorted_shards ())
