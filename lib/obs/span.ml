(* Hierarchical timed spans.  Each domain records into its own tree (root +
   cursor stack in domain-local storage), so recording never synchronises;
   [merged] combines the per-domain trees by name path, visiting domains in
   increasing id order so the merged view is stable.  When the global
   enabled flag is off, [with_ ~name f] is exactly [f ()] — no allocation,
   no clock read. *)

type node = {
  name : string;
  mutable count : int;
  mutable seconds : float; (* inclusive wall-clock *)
  mutable children : node list; (* first-seen order *)
}

type ctx = { root : node; mutable stack : node list }

let roots_mutex = Mutex.create ()
let roots : (int * node) list ref = ref []

let make_node name = { name; count = 0; seconds = 0.; children = [] }

let ctx_slot : ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let root = make_node "root" in
      Mutex.protect roots_mutex (fun () ->
          roots := ((Domain.self () :> int), root) :: !roots);
      { root; stack = [ root ] })

let find_or_add parent name =
  match List.find_opt (fun c -> c.name = name) parent.children with
  | Some c -> c
  | None ->
      let c = make_node name in
      parent.children <- parent.children @ [ c ];
      c

let with_ ~name f =
  if not (Metric.enabled ()) then f ()
  else begin
    let ctx = Domain.DLS.get ctx_slot in
    let parent = match ctx.stack with c :: _ -> c | [] -> ctx.root in
    let node = find_or_add parent name in
    ctx.stack <- node :: ctx.stack;
    (* The flight recorder mirrors every span as a begin/end event pair so
       the Chrome export shows the span hierarchy on a timeline. *)
    if Trace.enabled () then Trace.emit_span_begin ~name;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        node.count <- node.count + 1;
        node.seconds <- node.seconds +. (Unix.gettimeofday () -. t0);
        if Trace.enabled () then Trace.emit_span_end ~name;
        match ctx.stack with _ :: rest -> ctx.stack <- rest | [] -> ())
      f
  end

type view = {
  vname : string;
  count : int;
  seconds : float;
  exclusive : float;
  children : view list;
}

(* Group sibling nodes (already concatenated in domain-id order) by name,
   preserving first-seen order, then merge each group recursively.  The
   exclusive time of a merged span is its inclusive time minus the summed
   inclusive time of its merged children (clamped at zero: clock skew
   between start/stop pairs can make the difference marginally negative). *)
let rec merge_nodes (nodes : node list) : view list =
  let groups : (string, node list) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (n : node) ->
      match Hashtbl.find_opt groups n.name with
      | Some l -> Hashtbl.replace groups n.name (n :: l)
      | None ->
          Hashtbl.add groups n.name [ n ];
          order := n.name :: !order)
    nodes;
  List.map
    (fun name ->
      let group = List.rev (Hashtbl.find groups name) in
      let count = List.fold_left (fun a (n : node) -> a + n.count) 0 group in
      let seconds =
        List.fold_left (fun a (n : node) -> a +. n.seconds) 0. group
      in
      let children =
        merge_nodes (List.concat_map (fun (n : node) -> n.children) group)
      in
      let child_s = List.fold_left (fun a c -> a +. c.seconds) 0. children in
      {
        vname = name;
        count;
        seconds;
        exclusive = Float.max 0. (seconds -. child_s);
        children;
      })
    (List.rev !order)

let merged () =
  let roots =
    Mutex.protect roots_mutex (fun () ->
        List.sort (fun (a, _) (b, _) -> compare a b) !roots)
  in
  merge_nodes (List.concat_map (fun ((_, r) : int * node) -> r.children) roots)

let reset () =
  Mutex.protect roots_mutex (fun () ->
      List.iter
        (fun ((_, r) : int * node) ->
          r.children <- [];
          r.count <- 0;
          r.seconds <- 0.)
        !roots)

let pp fmt () =
  match merged () with
  | [] -> Format.fprintf fmt "span tree: (no spans recorded)@."
  | views ->
      Format.fprintf fmt "span tree (inclusive s, exclusive s, calls):@.";
      let rec go indent v =
        let label = indent ^ v.vname in
        Format.fprintf fmt "  %-30s %9.3f %9.3f %6d@." label v.seconds
          v.exclusive v.count;
        List.iter (go (indent ^ "  ")) v.children
      in
      List.iter (go "") views
