(** OpenMetrics v1 text exposition builder: add families in render order,
    then {!render} the whole snapshot terminated by ["# EOF"].  Counters get
    the ["_total"] sample suffix; histograms expand to cumulative
    ["_bucket{le=...}"] samples (plus ["+Inf"]) with ["_sum"]/["_count"].
    Metric names are sanitized to [[a-zA-Z0-9_:]]. *)

type t

val create : unit -> t

val counter : t -> name:string -> ?labels:(string * string) list -> float -> unit
val gauge : t -> name:string -> ?labels:(string * string) list -> float -> unit

val histogram : t -> name:string -> Histogram.snapshot -> unit
(** Uses the snapshot's own labels on every expanded sample. *)

val render : t -> string
