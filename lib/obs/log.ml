(* Structured JSONL event log: a process-global sink that both binaries
   share instead of ad-hoc stderr prints.  Each [event] call emits one JSON
   object on its own line — schema tag first, then the event name, then the
   caller's fields in order — and flushes, so a crashed run still leaves
   every completed event on disk.  When no sink is open, [event] is a single
   mutex-free ref read; the hot path stays unperturbed with logging off. *)

module Json = Dtr_util.Json

let serve_schema = "dtr-serve-log/1"
let opt_schema = "dtr-opt-log/1"

type sink = { oc : out_channel; close_on_detach : bool }

let sink : sink option ref = ref None
let sink_mutex = Mutex.create ()

let close () =
  Mutex.protect sink_mutex (fun () ->
      (match !sink with
      | Some s ->
          if s.close_on_detach then close_out_noerr s.oc else flush s.oc
      | None -> ());
      sink := None)

(* "fd:1" / "fd:2" attach to the process's stdout / stderr (flushed but not
   closed on detach — in pipe mode stdout carries the protocol, so fd:2 is
   the streaming choice); anything else is a path opened for truncation. *)
let set_path = function
  | None -> close ()
  | Some spec ->
      close ();
      let s =
        match spec with
        | "fd:1" -> { oc = stdout; close_on_detach = false }
        | "fd:2" -> { oc = stderr; close_on_detach = false }
        | _ when String.length spec > 3 && String.sub spec 0 3 = "fd:" ->
            invalid_arg ("Dtr_obs.Log: unsupported fd spec " ^ spec
                        ^ " (only fd:1 and fd:2)")
        | path -> { oc = open_out path; close_on_detach = true }
      in
      Mutex.protect sink_mutex (fun () -> sink := Some s)

let enabled () = !sink <> None

let event ~schema ~name fields =
  match !sink with
  | None -> ()
  | Some _ ->
      let doc =
        Json.Obj
          (("schema", Json.Str schema) :: ("event", Json.Str name) :: fields)
      in
      let line = Json.to_string doc in
      Mutex.protect sink_mutex (fun () ->
          match !sink with
          | None -> ()
          | Some s ->
              output_string s.oc line;
              output_char s.oc '\n';
              flush s.oc)
