(** Hierarchical timed spans.

    Each domain records into a private tree held in domain-local storage, so
    entering or leaving a span never synchronises with other domains.
    {!merged} combines the per-domain trees by name path (domains visited in
    ascending id order) into a stable aggregated view with inclusive and
    exclusive wall-clock time.

    When {!Metric.enabled} is [false], [with_ ~name f] is exactly [f ()]:
    no allocation, no clock read — hot paths pay one atomic load. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a span called [name], nested under the
    innermost span currently open on this domain. The span is recorded even
    if [f] raises. *)

type view = {
  vname : string;
  count : int;  (** number of completed [with_] calls merged in *)
  seconds : float;  (** inclusive wall-clock time *)
  exclusive : float;  (** [seconds] minus the children's inclusive time *)
  children : view list;  (** first-seen order *)
}

val merged : unit -> view list
(** Aggregate all domains' span trees by name path. *)

val reset : unit -> unit
(** Drop all recorded spans. Meant for quiescent points: a span still open
    during reset keeps recording into its detached tree, which is simply
    never reported. *)

val pp : Format.formatter -> unit -> unit
(** Print the merged span tree, one indented line per span. *)
