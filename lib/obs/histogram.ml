(* Fixed-bucket log-linear latency histograms (HDR-style), sharded per domain
   like [Metric]: every domain owns a lazily-allocated bucket array per
   histogram, writers only touch their own shard, and readers merge under the
   registry mutex in increasing domain-id order so the merged counts are
   deterministic for a given set of recordings.  The bucket layout trades a
   bounded ~3% relative quantization error for O(1) recording with no
   allocation on the hot path.

   Layout: values are quantized to integer microseconds [m].  The first
   [sub] buckets are linear (one per microsecond); after that each octave
   [sub*2^e, 2*sub*2^e) is split into [sub] equal sub-buckets of width
   [2^e] microseconds.  With sub = 32 and 27 octaves the top bucket ends at
   2^32 us (~71.6 minutes); larger values clamp into the last bucket. *)

let unit_seconds = 1e-6
let sub = 32
let octaves = 27
let num_buckets = sub + (octaves * sub)

let index_of_seconds v =
  let m =
    if v <= 0. then 0
    else
      let u = v /. unit_seconds in
      if u >= 4.0e18 then max_int else int_of_float u
  in
  if m < sub then m
  else begin
    let e = ref 0 and mm = ref m in
    while !mm >= 2 * sub do
      mm := !mm lsr 1;
      incr e
    done;
    let idx = sub + (!e * sub) + (!mm - sub) in
    if idx >= num_buckets then num_buckets - 1 else idx
  end

(* Half-open [lower, upper) value range of bucket [i], in seconds.  The last
   bucket additionally absorbs every clamped overflow, so its nominal upper
   bound understates extreme outliers; exposition layers add an explicit
   +Inf bucket on top. *)
let bucket_bounds i =
  if i < 0 || i >= num_buckets then invalid_arg "Histogram.bucket_bounds";
  let lo, w =
    if i < sub then (i, 1)
    else
      let e = (i - sub) / sub and pos = (i - sub) mod sub in
      ((sub + pos) lsl e, 1 lsl e)
  in
  (float_of_int lo *. unit_seconds, float_of_int (lo + w) *. unit_seconds)

let max_histograms = 64
let registry_mutex = Mutex.create ()
let names : string array = Array.make max_histograms ""
let labels_tbl : (string * string) list array = Array.make max_histograms []
let num_histograms = ref 0

type shard = {
  domain : int;
  buckets : int array option array; (* per histogram id, allocated on use *)
  sums : float array; (* sum of recorded values, seconds *)
}

let shards : shard list ref = ref []

let shard_slot : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          domain = (Domain.self () :> int);
          buckets = Array.make max_histograms None;
          sums = Array.make max_histograms 0.;
        }
      in
      Mutex.protect registry_mutex (fun () -> shards := s :: !shards);
      s)

type t = int

(* Idempotent per (name, labels), mirroring [Metric.register]. *)
let create ?(labels = []) name =
  Mutex.protect registry_mutex (fun () ->
      let rec find i =
        if i >= !num_histograms then None
        else if names.(i) = name && labels_tbl.(i) = labels then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i -> i
      | None ->
          if !num_histograms >= max_histograms then
            invalid_arg "Dtr_obs.Histogram: histogram table full";
          let i = !num_histograms in
          names.(i) <- name;
          labels_tbl.(i) <- labels;
          num_histograms := i + 1;
          i)

let name t = names.(t)
let labels t = labels_tbl.(t)

let record t v =
  let s = Domain.DLS.get shard_slot in
  let b =
    match s.buckets.(t) with
    | Some b -> b
    | None ->
        let b = Array.make num_buckets 0 in
        s.buckets.(t) <- Some b;
        b
  in
  let i = index_of_seconds v in
  b.(i) <- b.(i) + 1;
  s.sums.(t) <- s.sums.(t) +. (if v > 0. then v else 0.)

type snapshot = {
  s_name : string;
  s_labels : (string * string) list;
  count : int;
  sum : float;
  buckets : (int * int) list; (* (bucket index, count), ascending, non-zero *)
}

let sorted_shards () =
  Mutex.protect registry_mutex (fun () ->
      List.sort (fun a b -> compare a.domain b.domain) !shards)

let snapshot_id shards i =
  let acc = Array.make num_buckets 0 in
  let sum = ref 0. in
  List.iter
    (fun (s : shard) ->
      (match s.buckets.(i) with
      | None -> ()
      | Some b ->
          for j = 0 to num_buckets - 1 do
            acc.(j) <- acc.(j) + b.(j)
          done);
      sum := !sum +. s.sums.(i))
    shards;
  let bs = ref [] and count = ref 0 in
  for j = num_buckets - 1 downto 0 do
    if acc.(j) > 0 then begin
      bs := (j, acc.(j)) :: !bs;
      count := !count + acc.(j)
    end
  done;
  { s_name = names.(i); s_labels = labels_tbl.(i); count = !count; sum = !sum;
    buckets = !bs }

let snapshot t = snapshot_id (sorted_shards ()) t

let all () =
  let shards = sorted_shards () in
  let n = Mutex.protect registry_mutex (fun () -> !num_histograms) in
  List.init n (fun i -> snapshot_id shards i)

(* Merge of two snapshots of the same histogram: per-bucket integer sums,
   exactly what the sharded read does — exposed so tests can state
   shard-merge = single-stream recording as an algebraic property. *)
let merge a b =
  let acc = Array.make num_buckets 0 in
  List.iter (fun (i, c) -> acc.(i) <- acc.(i) + c) a.buckets;
  List.iter (fun (i, c) -> acc.(i) <- acc.(i) + c) b.buckets;
  let bs = ref [] in
  for j = num_buckets - 1 downto 0 do
    if acc.(j) > 0 then bs := (j, acc.(j)) :: !bs
  done;
  { a with count = a.count + b.count; sum = a.sum +. b.sum; buckets = !bs }

(* Nearest-rank quantile over the merged buckets: returns the upper bound of
   the bucket holding the rank-[ceil (q/100 * count)] observation, so the
   true order statistic lies within one bucket width below the estimate.
   [q] in percent; 0 when the histogram is empty. *)
let quantile s q =
  if s.count = 0 then 0.
  else begin
    let target =
      let r = int_of_float (ceil (q /. 100. *. float_of_int s.count)) in
      if r < 1 then 1 else if r > s.count then s.count else r
    in
    let rec walk cum = function
      | [] -> snd (bucket_bounds (num_buckets - 1))
      | (i, c) :: rest ->
          if cum + c >= target then snd (bucket_bounds i)
          else walk (cum + c) rest
    in
    walk 0 s.buckets
  end

let reset t =
  Mutex.protect registry_mutex (fun () ->
      List.iter
        (fun (s : shard) ->
          (match s.buckets.(t) with
          | None -> ()
          | Some b -> Array.fill b 0 num_buckets 0);
          s.sums.(t) <- 0.)
        !shards)

let reset_all () =
  Mutex.protect registry_mutex (fun () ->
      List.iter
        (fun (s : shard) ->
          Array.iter
            (function None -> () | Some b -> Array.fill b 0 num_buckets 0)
            s.buckets;
          Array.fill s.sums 0 max_histograms 0.)
        !shards)
