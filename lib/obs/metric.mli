(** Typed process-wide metrics, sharded per domain.

    Every domain lazily owns one preallocated shard (an int cell and a float
    cell per metric, registered in a global list on the domain's first
    write); a counter bump or accumulator add touches only the calling
    domain's shard, so concurrent writers can never lose updates — there are
    no compare-and-swap loops, and in particular no non-atomic
    read-modify-write on floats. Merged reads ({!Counter.value},
    {!all_counters}, …) take the registry mutex and fold the shards in
    increasing domain-id order, making the merge deterministic for a given
    set of shard contents. Reads and resets are meant for quiescent points
    (batch boundaries); a read that races a writer simply misses that
    writer's in-flight bump, it never corrupts totals.

    The {!enabled} flag gates *optional* instrumentation (spans, per-move
    counters on hot paths). Cheap once-per-batch metrics — e.g. the sweep
    counters behind [Eval.Sweep_stats] — stay on unconditionally. *)

val set_enabled : bool -> unit
(** Turn optional instrumentation (spans, hot-path counters) on or off.
    Off by default. *)

val enabled : unit -> bool
(** Current state of the instrumentation flag. *)

module Counter : sig
  type t

  val create : string -> t
  (** [create name] registers (or finds, if [name] already exists) a
      monotonic integer counter. Raises [Invalid_argument] if the fixed
      metric table (256 slots) is full. *)

  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Sum over all domain shards. *)

  val per_domain : t -> (int * int) list
  (** Nonzero per-domain values as [(domain_id, value)], ascending id. *)

  val reset : t -> unit
end

module Accum : sig
  type t

  val create : string -> t
  (** Like {!Counter.create}, for a float accumulator. *)

  val name : t -> string
  val add : t -> float -> unit

  val value : t -> float
  (** Sum over all domain shards, folded in ascending domain-id order. *)

  val per_domain : t -> (int * float) list
  val reset : t -> unit
end

val reset_all : unit -> unit
(** Zero every metric in every shard. *)

val all_counters : unit -> (string * int) list
(** Merged values of every registered counter, in registration order. *)

val all_accums : unit -> (string * float) list
(** Merged values of every registered accumulator, in registration order. *)

val per_domain : unit -> (int * (string * int) list * (string * float) list) list
(** Per-domain utilization view: for each shard (ascending domain id) the
    nonzero counters and accumulators it holds. Domains that recorded
    nothing are omitted. *)
