(** Rolling-window gauges over per-second slot rings: cheap "last N seconds"
    totals and rates (events/s, cache hit-rate numerators and denominators,
    abort rates) driven by caller-supplied event time.  Single-writer: the
    intended producer is the serve daemon's event loop; concurrent writers
    are not supported. *)

type t

val create : ?window:int -> string -> t
(** Idempotent per name; [window] (seconds, default 60) is fixed by the
    first creation. *)

val name : t -> string
val window : t -> int

val add : t -> now:float -> float -> unit
(** Accumulate [v] into the slot for the epoch second of [now]. *)

val incr : t -> now:float -> unit

val total : t -> now:float -> float
(** Sum over slots stamped within (now - window, now]. *)

val rate : t -> now:float -> float
(** [total / window] — per-second rate over the window. *)

type snapshot = {
  r_name : string;
  r_window : int;
  r_total : float;
  r_per_second : float;
}

val snapshot : t -> now:float -> snapshot
val all : now:float -> snapshot list
(** Snapshots of every registered gauge, in registration order. *)

val reset : t -> unit
val reset_all : unit -> unit
