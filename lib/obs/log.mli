(** Process-global structured JSONL log sink, shared by [dtr-serve] and
    [dtr-opt] in place of ad-hoc stderr prints.  One JSON object per line:
    [{"schema": ..., "event": ..., <fields>}], flushed per event.  With no
    sink attached, {!event} is a single ref read — logging off costs
    nothing on the hot path. *)

val serve_schema : string
(** ["dtr-serve-log/1"] — the per-event log-line schema tag. *)

val opt_schema : string
(** ["dtr-opt-log/1"] — schema tag for [dtr-opt] run-summary events. *)

val set_path : string option -> unit
(** [Some "fd:1"] / [Some "fd:2"] attach to stdout / stderr (not closed on
    detach); [Some path] truncates and opens [path]; [None] detaches,
    closing a file sink.  Replaces any previous sink. *)

val enabled : unit -> bool

val event : schema:string -> name:string -> (string * Dtr_util.Json.t) list -> unit
(** Emit one log line; no-op when no sink is attached. *)

val close : unit -> unit
(** Detach the sink ([set_path None]). *)
