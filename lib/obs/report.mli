(** Whole-run observability report.

    Serializes the instance summary and final results (set by the caller)
    together with every registered metric, the merged span tree, the
    flight-recorder accounting, the convergence series, and the per-domain
    utilization breakdown into one JSON document with schema tag
    ["dtr-obs-report/2"]:

    {v
    { "schema": "dtr-obs-report/2",
      "instance":     { <key>: <string|int|float|bool>, ... },
      "results":      { <key>: <value>, ... },
      "spans":        [ { "name", "count", "seconds",
                          "exclusive_seconds", "children": [...] }, ... ],
      "counters":     { <name>: <int>, ... },
      "accumulators": { <name>: <float>, ... },
      "trace":        { "enabled", "capacity", "emitted",
                        "recorded", "dropped" },
      "convergence":  [ { "name", "points": [ { "iter", "best_lambda",
                          "best_phi", "cur_lambda", "cur_phi", "trials",
                          "accepts", "resets" }, ... ] }, ... ],
      "domains":      [ { "domain": <id>,
                          "counters": {...}, "accumulators": {...} }, ... ] }
    v}

    Every ["dtr-obs-report/1"] key keeps its name, type and position — /2
    only adds ["trace"] and ["convergence"] — so /1 consumers keep working.
    The ["trace"] object always carries the ring capacity and the
    dropped-events counter, so a truncated flight recording is never
    silently read as complete.

    Key order is fixed (registration order for metrics, first-seen order for
    spans, ascending domain id) so reports from identical runs diff
    cleanly. Non-finite floats serialize as [null]. *)

type value = S of string | I of int | F of float | B of bool

val set_instance : (string * value) list -> unit
(** Describe the problem instance (topology, size, seed, jobs, …). *)

val set_results : (string * value) list -> unit
(** Record the final results (lexicographic costs, critical-set size, …). *)

val reset : unit -> unit
(** Clear instance/results and reset every metric, span, flight-recorder
    ring, and convergence series — call at the start of a run. *)

val to_string : unit -> string
(** Render the current state as a JSON document. *)

val write : path:string -> unit
(** Write {!to_string} to [path]. *)
