(** Whole-run observability report.

    Serializes the instance summary and final results (set by the caller)
    together with every registered metric, the merged span tree, and the
    per-domain utilization breakdown into one JSON document with schema tag
    ["dtr-obs-report/1"]:

    {v
    { "schema": "dtr-obs-report/1",
      "instance":     { <key>: <string|int|float|bool>, ... },
      "results":      { <key>: <value>, ... },
      "spans":        [ { "name", "count", "seconds",
                          "exclusive_seconds", "children": [...] }, ... ],
      "counters":     { <name>: <int>, ... },
      "accumulators": { <name>: <float>, ... },
      "domains":      [ { "domain": <id>,
                          "counters": {...}, "accumulators": {...} }, ... ] }
    v}

    Key order is fixed (registration order for metrics, first-seen order for
    spans, ascending domain id) so reports from identical runs diff
    cleanly. Non-finite floats serialize as [null]. *)

type value = S of string | I of int | F of float | B of bool

val set_instance : (string * value) list -> unit
(** Describe the problem instance (topology, size, seed, jobs, …). *)

val set_results : (string * value) list -> unit
(** Record the final results (lexicographic costs, critical-set size, …). *)

val reset : unit -> unit
(** Clear instance/results and reset every metric and span — call at the
    start of a run. *)

val to_string : unit -> string
(** Render the current state as a JSON document. *)

val write : path:string -> unit
(** Write {!to_string} to [path]. *)
