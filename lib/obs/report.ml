(* Whole-run report: instance summary and final results (set by the caller),
   plus everything the metric registry and span trees currently hold,
   serialized as one stable JSON document.  String escaping and float
   formatting come from [Dtr_util.Json]'s writer so every emitter in the
   project produces byte-compatible primitives; the document layout itself
   stays hand-assembled to keep the fixed key order and line structure that
   reports diff cleanly with. *)

module Json = Dtr_util.Json

type value = S of string | I of int | F of float | B of bool

let state_mutex = Mutex.create ()
let instance = ref ([] : (string * value) list)
let results = ref ([] : (string * value) list)
let set_instance kvs = Mutex.protect state_mutex (fun () -> instance := kvs)
let set_results kvs = Mutex.protect state_mutex (fun () -> results := kvs)

let reset () =
  Mutex.protect state_mutex (fun () ->
      instance := [];
      results := []);
  Metric.reset_all ();
  Span.reset ();
  Trace.reset ();
  Convergence.reset ();
  Histogram.reset_all ();
  Rolling.reset_all ()

let escape = Json.escaped
let float_json = Json.number_string

let value_json = function
  | S s -> "\"" ^ escape s ^ "\""
  | I i -> string_of_int i
  | F f -> float_json f
  | B b -> if b then "true" else "false"

let obj_json kvs =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %s" (escape k) (value_json v))
         kvs)
  ^ "}"

let rec span_json (v : Span.view) =
  Printf.sprintf
    "{\"name\": \"%s\", \"count\": %d, \"seconds\": %s, \"exclusive_seconds\": \
     %s, \"children\": [%s]}"
    (escape v.Span.vname) v.Span.count (float_json v.Span.seconds)
    (float_json v.Span.exclusive)
    (String.concat ", " (List.map span_json v.Span.children))

(* Schema /2 extends /1 with the flight-recorder accounting ("trace") and
   the per-iteration convergence series ("convergence"); every /1 key keeps
   its name, type and order, so /1 consumers keep working unchanged. *)
let trace_json () =
  let s = Trace.stats () in
  obj_json
    [
      ("enabled", B s.Trace.s_enabled);
      ("capacity", I s.Trace.s_capacity);
      ("emitted", I s.Trace.emitted);
      ("recorded", I s.Trace.recorded);
      ("dropped", I s.Trace.dropped);
    ]

let point_json (p : Convergence.point) =
  obj_json
    [
      ("iter", I p.Convergence.iter);
      ("best_lambda", F p.Convergence.best_lambda);
      ("best_phi", F p.Convergence.best_phi);
      ("cur_lambda", F p.Convergence.cur_lambda);
      ("cur_phi", F p.Convergence.cur_phi);
      ("trials", I p.Convergence.trials);
      ("accepts", I p.Convergence.accepts);
      ("resets", I p.Convergence.resets);
    ]

let series_json (name, points) =
  Printf.sprintf "{\"name\": \"%s\", \"points\": [%s]}" (escape name)
    (String.concat ", " (List.map point_json points))

(* Schema /3 extends /2 with the live-telemetry registries: "histograms"
   (log-linear latency histograms — the TOTAL count is deterministic for a
   fixed event stream and gated by [trace diff]; per-bucket placement,
   quantiles and sums derive from wall-clock latencies and are exempt) and
   "rolling" (wall-clock-windowed gauges, reported for operators, never
   gated). *)
let histogram_json (s : Histogram.snapshot) =
  let bucket (idx, c) =
    let _, upper = Histogram.bucket_bounds idx in
    Printf.sprintf "{\"le\": %s, \"count\": %d}" (float_json upper) c
  in
  Printf.sprintf
    "{\"name\": \"%s\", \"labels\": %s, \"count\": %d, \"sum\": %s, \"p50\": \
     %s, \"p90\": %s, \"p99\": %s, \"p999\": %s, \"buckets\": [%s]}"
    (escape s.Histogram.s_name)
    (obj_json (List.map (fun (k, v) -> (k, S v)) s.Histogram.s_labels))
    s.Histogram.count
    (float_json s.Histogram.sum)
    (float_json (Histogram.quantile s 50.))
    (float_json (Histogram.quantile s 90.))
    (float_json (Histogram.quantile s 99.))
    (float_json (Histogram.quantile s 99.9))
    (String.concat ", " (List.map bucket s.Histogram.buckets))

let rolling_json (r : Rolling.snapshot) =
  Printf.sprintf
    "{\"name\": \"%s\", \"window_seconds\": %d, \"total\": %s, \
     \"per_second\": %s}"
    (escape r.Rolling.r_name) r.Rolling.r_window
    (float_json r.Rolling.r_total)
    (float_json r.Rolling.r_per_second)

let to_string () =
  let instance, results =
    Mutex.protect state_mutex (fun () -> (!instance, !results))
  in
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "{";
  line "  \"schema\": \"dtr-obs-report/3\",";
  line "  \"instance\": %s," (obj_json instance);
  line "  \"results\": %s," (obj_json results);
  line "  \"spans\": [%s],"
    (String.concat ", " (List.map span_json (Span.merged ())));
  line "  \"counters\": %s,"
    (obj_json (List.map (fun (k, v) -> (k, I v)) (Metric.all_counters ())));
  line "  \"accumulators\": %s,"
    (obj_json (List.map (fun (k, v) -> (k, F v)) (Metric.all_accums ())));
  line "  \"trace\": %s," (trace_json ());
  line "  \"convergence\": [%s],"
    (String.concat ", " (List.map series_json (Convergence.all ())));
  line "  \"histograms\": [%s],"
    (String.concat ", " (List.map histogram_json (Histogram.all ())));
  line "  \"rolling\": [%s],"
    (String.concat ", "
       (List.map rolling_json (Rolling.all ~now:(Unix.gettimeofday ()))));
  line "  \"domains\": [%s]"
    (String.concat ", "
       (List.map
          (fun (d, cs, fs) ->
            Printf.sprintf
              "{\"domain\": %d, \"counters\": %s, \"accumulators\": %s}" d
              (obj_json (List.map (fun (k, v) -> (k, I v)) cs))
              (obj_json (List.map (fun (k, v) -> (k, F v)) fs)))
          (Metric.per_domain ())));
  Buffer.add_string b "}\n";
  Buffer.contents b

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ()))
