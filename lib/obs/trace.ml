(* Flight recorder: a preallocated per-domain ring buffer of typed events.
   Each domain owns fixed-capacity parallel arrays (kind, name, clock, two
   ints, four floats) registered in a process-global list on first emission;
   an emit is a handful of array stores at [emitted mod capacity] plus one
   counter bump, so the hot path never allocates and never synchronises.
   When the ring wraps, the oldest event is overwritten ("drop-oldest") and
   the loss is visible as [emitted - recorded] — a drained trace is never
   silently read as complete.  The whole recorder is gated off by default
   behind its own atomic flag, independent of [Metric.enabled]: hot paths pay
   one atomic load per would-be event. *)

let enabled_flag = Atomic.make false

(* Wall-clock origin of the trace, stamped when tracing is switched on, so
   exported timestamps are small relative offsets. *)
let t0 = Atomic.make 0.

let set_enabled b =
  if b && not (Atomic.get enabled_flag) then Atomic.set t0 (Unix.gettimeofday ());
  Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag
let start_time () = Atomic.get t0

type kind =
  | Span_begin
  | Span_end
  | Move
  | Sweep_begin
  | Sweep_end
  | Chunk_claim
  | Phase

let kind_code = function
  | Span_begin -> 0
  | Span_end -> 1
  | Move -> 2
  | Sweep_begin -> 3
  | Sweep_end -> 4
  | Chunk_claim -> 5
  | Phase -> 6

let kind_of_code = function
  | 0 -> Span_begin
  | 1 -> Span_end
  | 2 -> Move
  | 3 -> Sweep_begin
  | 4 -> Sweep_end
  | 5 -> Chunk_claim
  | _ -> Phase

let kind_name = function
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
  | Move -> "move"
  | Sweep_begin -> "sweep_begin"
  | Sweep_end -> "sweep_end"
  | Chunk_claim -> "chunk_claim"
  | Phase -> "phase"

type event = {
  kind : kind;
  name : string;
  time : float;  (** absolute wall-clock (Unix epoch seconds) *)
  seq : int;  (** per-domain emission index, 0-based, gap-free *)
  a : int;
  b : int;
  f1 : float;
  f2 : float;
  f3 : float;
  f4 : float;
}

(* Capacity of rings created from here on.  Existing rings keep theirs; set
   it before the first traced emission (the CLI does, from --trace-capacity /
   DTR_TRACE_CAP) so every domain ring ends up uniform. *)
let default_capacity = 65_536
let capacity_cell = Atomic.make default_capacity

let set_capacity n =
  if n < 1 then invalid_arg "Dtr_obs.Trace.set_capacity: capacity must be positive";
  Atomic.set capacity_cell n

let capacity () = Atomic.get capacity_cell

type ring = {
  domain : int;
  cap : int;
  kinds : int array;
  names : string array;
  times : float array;
  ia : int array;
  ib : int array;
  fa : float array;
  fb : float array;
  fc : float array;
  fd : float array;
  mutable emitted : int;
}

let rings_mutex = Mutex.create ()
let rings : ring list ref = ref []

let ring_slot : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let cap = Atomic.get capacity_cell in
      let r =
        {
          domain = (Domain.self () :> int);
          cap;
          kinds = Array.make cap 0;
          names = Array.make cap "";
          times = Array.make cap 0.;
          ia = Array.make cap 0;
          ib = Array.make cap 0;
          fa = Array.make cap 0.;
          fb = Array.make cap 0.;
          fc = Array.make cap 0.;
          fd = Array.make cap 0.;
          emitted = 0;
        }
      in
      Mutex.protect rings_mutex (fun () -> rings := r :: !rings);
      r)

(* The full emit: all fields explicit so the compiler passes them flat (no
   optional-argument boxing on the hot path). *)
let emit kind ~name ~a ~b ~f1 ~f2 ~f3 ~f4 =
  let r = Domain.DLS.get ring_slot in
  let i = r.emitted mod r.cap in
  r.kinds.(i) <- kind_code kind;
  r.names.(i) <- name;
  r.times.(i) <- Unix.gettimeofday ();
  r.ia.(i) <- a;
  r.ib.(i) <- b;
  r.fa.(i) <- f1;
  r.fb.(i) <- f2;
  r.fc.(i) <- f3;
  r.fd.(i) <- f4;
  r.emitted <- r.emitted + 1

let emit_span_begin ~name = emit Span_begin ~name ~a:0 ~b:0 ~f1:0. ~f2:0. ~f3:0. ~f4:0.
let emit_span_end ~name = emit Span_end ~name ~a:0 ~b:0 ~f1:0. ~f2:0. ~f3:0. ~f4:0.

let emit_move ~arc ~accepted ~old_lambda ~old_phi ~new_lambda ~new_phi =
  emit Move ~name:"move" ~a:arc
    ~b:(if accepted then 1 else 0)
    ~f1:old_lambda ~f2:old_phi ~f3:new_lambda ~f4:new_phi

let emit_sweep_begin ~scenario ~failures =
  emit Sweep_begin ~name:"sweep" ~a:scenario ~b:failures ~f1:0. ~f2:0. ~f3:0. ~f4:0.

let emit_sweep_end ~scenario ~failures =
  emit Sweep_end ~name:"sweep" ~a:scenario ~b:failures ~f1:0. ~f2:0. ~f3:0. ~f4:0.

let emit_chunk_claim ~lo ~hi =
  emit Chunk_claim ~name:"chunk" ~a:lo ~b:hi ~f1:0. ~f2:0. ~f3:0. ~f4:0.

let emit_phase ~name = emit Phase ~name ~a:0 ~b:0 ~f1:0. ~f2:0. ~f3:0. ~f4:0.

let sorted_rings () =
  Mutex.protect rings_mutex (fun () ->
      List.sort (fun a b -> compare a.domain b.domain) !rings)

(* Snapshot one ring's surviving window, oldest first.  The reader runs at
   quiescent points (after workers finished a batch); a read racing a writer
   can at worst see a half-written newest slot, never corrupt the ring. *)
let drain_ring r =
  let emitted = r.emitted in
  let recorded = min emitted r.cap in
  let first = emitted - recorded in
  Array.init recorded (fun k ->
      let seq = first + k in
      let i = seq mod r.cap in
      {
        kind = kind_of_code r.kinds.(i);
        name = r.names.(i);
        time = r.times.(i);
        seq;
        a = r.ia.(i);
        b = r.ib.(i);
        f1 = r.fa.(i);
        f2 = r.fb.(i);
        f3 = r.fc.(i);
        f4 = r.fd.(i);
      })

let drain () =
  List.map (fun r -> (r.domain, drain_ring r)) (sorted_rings ())

type stats = {
  s_enabled : bool;
  s_capacity : int;
  emitted : int;
  recorded : int;
  dropped : int;
}

let stats () =
  let rs = sorted_rings () in
  let emitted = List.fold_left (fun acc (r : ring) -> acc + r.emitted) 0 rs in
  let recorded =
    List.fold_left (fun acc (r : ring) -> acc + min r.emitted r.cap) 0 rs
  in
  {
    s_enabled = Atomic.get enabled_flag;
    s_capacity = Atomic.get capacity_cell;
    emitted;
    recorded;
    dropped = emitted - recorded;
  }

let reset () =
  Mutex.protect rings_mutex (fun () ->
      List.iter (fun (r : ring) -> r.emitted <- 0) !rings)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

(* One JSON object per event in the Chrome trace-event format: spans and
   sweeps as Duration begin/end pairs ("B"/"E"), moves, chunk claims and
   phase transitions as thread-scoped Instant events ("i").  Timestamps are
   microseconds relative to the trace origin; pid is always 0, tid the
   OCaml domain id.  Begin/end pairs orphaned by ring wrap-around are left
   as-is — the viewer tolerates them, and the [dropped] counter in
   [otherData] flags the truncation. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_json f =
  if not (Float.is_finite f) then "null" else Printf.sprintf "%.9g" f

let chrome_event buf ~origin ~tid e =
  let ts = 1e6 *. (e.time -. origin) in
  let common = Printf.sprintf "\"ts\": %.1f, \"pid\": 0, \"tid\": %d" ts tid in
  let line =
    match e.kind with
    | Span_begin ->
        Printf.sprintf "{\"name\": \"%s\", \"cat\": \"span\", \"ph\": \"B\", %s}"
          (escape e.name) common
    | Span_end ->
        Printf.sprintf "{\"name\": \"%s\", \"cat\": \"span\", \"ph\": \"E\", %s}"
          (escape e.name) common
    | Sweep_begin ->
        Printf.sprintf
          "{\"name\": \"sweep\", \"cat\": \"sweep\", \"ph\": \"B\", %s, \
           \"args\": {\"scenario\": %d, \"failures\": %d}}"
          common e.a e.b
    | Sweep_end ->
        Printf.sprintf
          "{\"name\": \"sweep\", \"cat\": \"sweep\", \"ph\": \"E\", %s, \
           \"args\": {\"scenario\": %d, \"failures\": %d}}"
          common e.a e.b
    | Move ->
        Printf.sprintf
          "{\"name\": \"move\", \"cat\": \"search\", \"ph\": \"i\", \"s\": \
           \"t\", %s, \"args\": {\"arc\": %d, \"accepted\": %s, \
           \"old_lambda\": %s, \"old_phi\": %s, \"new_lambda\": %s, \
           \"new_phi\": %s}}"
          common e.a
          (if e.b <> 0 then "true" else "false")
          (float_json e.f1) (float_json e.f2) (float_json e.f3) (float_json e.f4)
    | Chunk_claim ->
        Printf.sprintf
          "{\"name\": \"chunk\", \"cat\": \"exec\", \"ph\": \"i\", \"s\": \
           \"t\", %s, \"args\": {\"lo\": %d, \"hi\": %d}}"
          common e.a e.b
    | Phase ->
        Printf.sprintf
          "{\"name\": \"%s\", \"cat\": \"phase\", \"ph\": \"i\", \"s\": \
           \"p\", %s}"
          (escape e.name) common
  in
  Buffer.add_string buf line

let chrome_json () =
  let origin = Atomic.get t0 in
  let s = stats () in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\n\"traceEvents\": [\n";
  let first = ref true in
  List.iter
    (fun (tid, events) ->
      Array.iter
        (fun e ->
          if !first then first := false else Buffer.add_string buf ",\n";
          chrome_event buf ~origin ~tid e)
        events)
    (drain ());
  Buffer.add_string buf "\n],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"schema\": \
        \"dtr-trace/1\", \"emitted\": %d, \"recorded\": %d, \"dropped\": %d, \
        \"capacity\": %d}\n}\n"
       s.emitted s.recorded s.dropped s.s_capacity);
  Buffer.contents buf

let write_chrome ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (chrome_json ()))
