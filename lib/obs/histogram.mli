(** Fixed-bucket log-linear (HDR-style) latency histograms with per-domain
    shards and a deterministic merge.  Recording is O(1), allocation-free
    after the first touch per domain, and writer-local — no cross-domain
    read-modify-write.  Values are in seconds; resolution is 1 microsecond
    up to 32 us, then a bounded ~3% relative error (32 sub-buckets per
    octave) up to ~71.6 minutes, beyond which values clamp into the last
    bucket. *)

type t

val create : ?labels:(string * string) list -> string -> t
(** Idempotent per (name, labels): re-creating returns the same histogram. *)

val name : t -> string
val labels : t -> (string * string) list

val record : t -> float -> unit
(** [record t seconds] bumps the bucket holding [seconds] in the calling
    domain's shard.  Negative values clamp to 0. *)

type snapshot = {
  s_name : string;
  s_labels : (string * string) list;
  count : int;  (** exact number of recordings (= sum of bucket counts) *)
  sum : float;  (** exact sum of recorded values, seconds *)
  buckets : (int * int) list;
      (** (bucket index, count), ascending index, zero counts omitted *)
}

val snapshot : t -> snapshot
(** Merge all shards (ascending domain id) into one snapshot. *)

val all : unit -> snapshot list
(** Snapshots of every registered histogram, in registration order. *)

val merge : snapshot -> snapshot -> snapshot
(** Per-bucket integer sum; name/labels taken from the first argument. *)

val quantile : snapshot -> float -> float
(** [quantile s q] with [q] in percent (50., 99.9, ...): upper bound in
    seconds of the bucket holding the nearest-rank order statistic, so the
    true value lies within one bucket width below the returned estimate.
    0 on an empty snapshot. *)

val num_buckets : int

val index_of_seconds : float -> int
(** Bucket index a value would be recorded into (last bucket on overflow). *)

val bucket_bounds : int -> float * float
(** Half-open [lower, upper) range of a bucket index, in seconds. *)

val reset : t -> unit
val reset_all : unit -> unit
