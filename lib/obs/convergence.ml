(* Per-iteration convergence telemetry.  The search drivers (Local_search,
   Annealing, Phase 1b) append one point per iteration — a sweep, an
   annealing stage, a sampling round — into the ambient series their caller
   opened with [with_series].  Phases 1a/1b/1c of the paper derive
   criticality from the distribution of costs seen during the normal-
   conditions search; this module records exactly that trajectory (best and
   current cost, acceptance rate, diversification resets) so iteration
   budgets can be tuned from evidence instead of aggregate totals.

   Recording happens once per iteration, not per move, so points may
   allocate; the per-move hot path is untouched.  The ambient series lives
   in domain-local storage (searches run on the orchestrating domain; pool
   workers never record), and series mutation takes the registry mutex, so a
   stray concurrent recorder cannot corrupt the list.  Everything is gated
   by the caller on [Metric.enabled]; [record] without an open series is a
   no-op, so [Local_search.run] used outside the phase drivers records
   nothing. *)

type point = {
  iter : int;  (* 0-based index within the series *)
  best_lambda : float;
  best_phi : float;
  cur_lambda : float;
  cur_phi : float;
  trials : int;
  accepts : int;
  resets : int;
}

type series = {
  name : string;
  mutable rev_points : point list;
  mutable next_iter : int;
}

let registry_mutex = Mutex.create ()
let all_series : series list ref = ref [] (* newest first *)

let find_or_create name =
  Mutex.protect registry_mutex (fun () ->
      match List.find_opt (fun s -> s.name = name) !all_series with
      | Some s -> s
      | None ->
          let s = { name; rev_points = []; next_iter = 0 } in
          all_series := s :: !all_series;
          s)

let current : series option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_series ~name f =
  if not (Metric.enabled ()) then f ()
  else begin
    let s = find_or_create name in
    let saved = Domain.DLS.get current in
    Domain.DLS.set current (Some s);
    Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f
  end

let record ~best_lambda ~best_phi ~cur_lambda ~cur_phi ~trials ~accepts ~resets =
  match Domain.DLS.get current with
  | None -> ()
  | Some s ->
      Mutex.protect registry_mutex (fun () ->
          let p =
            {
              iter = s.next_iter;
              best_lambda;
              best_phi;
              cur_lambda;
              cur_phi;
              trials;
              accepts;
              resets;
            }
          in
          s.rev_points <- p :: s.rev_points;
          s.next_iter <- s.next_iter + 1)

let all () =
  Mutex.protect registry_mutex (fun () ->
      List.rev_map (fun s -> (s.name, List.rev s.rev_points)) !all_series)

let reset () =
  Mutex.protect registry_mutex (fun () -> all_series := [])
