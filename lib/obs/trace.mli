(** Flight recorder: low-overhead typed event tracing.

    Each domain owns a preallocated fixed-capacity ring buffer (parallel
    arrays, one slot per event); emitting an event is a handful of array
    stores plus a counter bump — no allocation, no locks, no inter-domain
    traffic.  When the ring wraps, the oldest events are overwritten
    (drop-oldest) and the loss stays visible: per {!stats},
    [dropped = emitted - recorded], so a truncated trace can never be
    silently read as complete.

    The recorder is gated off by default behind its own atomic flag,
    independent of {!Metric.enabled}: with tracing off, instrumented hot
    paths pay one atomic load per would-be event and nothing else.  Turning
    tracing on never perturbs optimization results — emission only reads
    optimizer state. *)

val set_enabled : bool -> unit
(** Switch the recorder on or off.  Switching it on stamps the trace origin
    used by the Chrome export.  Off by default. *)

val enabled : unit -> bool

val start_time : unit -> float
(** Wall-clock origin stamped by the last [set_enabled true]. *)

val set_capacity : int -> unit
(** Per-domain ring capacity for rings created after this call (rings
    already registered keep theirs — set it before the first traced
    emission).  Raises [Invalid_argument] on a non-positive capacity. *)

val capacity : unit -> int

(** {1 Events} *)

type kind =
  | Span_begin  (** a {!Span.with_} opened; [name] is the span name *)
  | Span_end  (** the matching close *)
  | Move
      (** one local-search / annealing single-arc trial: [a] the arc,
          [b] 1 if accepted, [f1]/[f2] the old cost (lambda, phi),
          [f3]/[f4] the new cost — NaN when the move was infeasible *)
  | Sweep_begin  (** failure sweep started: [a] scenario id, [b] failure count *)
  | Sweep_end  (** failure sweep finished *)
  | Chunk_claim  (** a pool worker claimed work items [a, b) *)
  | Phase  (** phase transition marker; [name] is the phase *)

type event = {
  kind : kind;
  name : string;
  time : float;  (** absolute wall-clock (Unix epoch seconds) *)
  seq : int;  (** per-domain emission index, 0-based, gap-free *)
  a : int;
  b : int;
  f1 : float;
  f2 : float;
  f3 : float;
  f4 : float;
}

val kind_name : kind -> string

val emit :
  kind ->
  name:string ->
  a:int ->
  b:int ->
  f1:float ->
  f2:float ->
  f3:float ->
  f4:float ->
  unit
(** Record one event into the calling domain's ring.  The caller is expected
    to have checked {!enabled} — [emit] itself records unconditionally. *)

val emit_span_begin : name:string -> unit
val emit_span_end : name:string -> unit

val emit_move :
  arc:int ->
  accepted:bool ->
  old_lambda:float ->
  old_phi:float ->
  new_lambda:float ->
  new_phi:float ->
  unit

val emit_sweep_begin : scenario:int -> failures:int -> unit
val emit_sweep_end : scenario:int -> failures:int -> unit
val emit_chunk_claim : lo:int -> hi:int -> unit
val emit_phase : name:string -> unit

(** {1 Reading the recorder} *)

val drain : unit -> (int * event array) list
(** Snapshot every domain's surviving window as [(domain_id, events)] in
    ascending domain id; events within a domain are in emission order
    (strictly increasing gap-free [seq]).  Non-destructive; meant for
    quiescent points. *)

type stats = {
  s_enabled : bool;
  s_capacity : int;  (** capacity rings are created with *)
  emitted : int;  (** total events ever emitted, across domains *)
  recorded : int;  (** events still resident in the rings *)
  dropped : int;  (** [emitted - recorded]: lost to ring wrap-around *)
}

val stats : unit -> stats

val reset : unit -> unit
(** Empty every ring and zero the emission counters. *)

(** {1 Chrome trace-event export} *)

val chrome_json : unit -> string
(** The recorder's contents as a Chrome trace-event document (the JSON
    object form: [{"traceEvents": [...], ...}]), loadable by
    [chrome://tracing] and Perfetto.  Spans and sweeps become duration
    begin/end pairs, moves / chunk claims / phase markers become instant
    events; [tid] is the OCaml domain id and timestamps are microseconds
    from the trace origin.  [otherData] carries the emitted/recorded/dropped
    accounting. *)

val write_chrome : path:string -> unit
