(* Rolling-window gauges: a ring of per-second slots, one slot per residue
   class of the epoch second modulo the window length.  Each slot carries the
   epoch second it was last written for; [add] lazily zeroes a slot whose
   stamp is stale before accumulating, and readers sum only slots whose stamp
   falls inside (now - window, now].  Single-writer by design: the serve
   daemon's event loop is the only producer, so slots need no atomics — the
   structure is documented as not safe for concurrent writers.  "Now" is
   event time supplied by the caller (the daemon stamps each handled event),
   so nothing advances between events and replays of the same trace observe
   the same totals modulo wall-clock slot boundaries. *)

type t = {
  rname : string;
  window : int; (* seconds *)
  stamps : int array; (* epoch second each slot was last written for *)
  values : float array;
}

let registry_mutex = Mutex.create ()
let registry : t list ref = ref []
let default_window = 60

let create ?(window = default_window) name =
  if window < 1 then invalid_arg "Dtr_obs.Rolling.create: window < 1";
  Mutex.protect registry_mutex (fun () ->
      match List.find_opt (fun t -> t.rname = name) !registry with
      | Some t -> t
      | None ->
          let t =
            {
              rname = name;
              window;
              stamps = Array.make window min_int;
              values = Array.make window 0.;
            }
          in
          registry := !registry @ [ t ];
          t)

let name t = t.rname
let window t = t.window

let add t ~now v =
  let sec = int_of_float (floor now) in
  let slot = ((sec mod t.window) + t.window) mod t.window in
  if t.stamps.(slot) <> sec then begin
    t.stamps.(slot) <- sec;
    t.values.(slot) <- 0.
  end;
  t.values.(slot) <- t.values.(slot) +. v

let incr t ~now = add t ~now 1.

let total t ~now =
  let sec = int_of_float (floor now) in
  let acc = ref 0. in
  for i = 0 to t.window - 1 do
    if t.stamps.(i) > sec - t.window && t.stamps.(i) <= sec then
      acc := !acc +. t.values.(i)
  done;
  !acc

let rate t ~now = total t ~now /. float_of_int t.window

type snapshot = {
  r_name : string;
  r_window : int;
  r_total : float;
  r_per_second : float;
}

let snapshot t ~now =
  let tot = total t ~now in
  {
    r_name = t.rname;
    r_window = t.window;
    r_total = tot;
    r_per_second = tot /. float_of_int t.window;
  }

let all ~now =
  Mutex.protect registry_mutex (fun () -> !registry)
  |> List.map (fun t -> snapshot t ~now)

let reset t =
  Array.fill t.stamps 0 t.window min_int;
  Array.fill t.values 0 t.window 0.

let reset_all () =
  Mutex.protect registry_mutex (fun () -> !registry) |> List.iter reset
