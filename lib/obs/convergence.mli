(** Per-iteration convergence telemetry for the search drivers.

    A series is a named time series of per-iteration points — one point per
    local-search sweep, annealing stage, or Phase-1b sampling round —
    capturing the trajectory Algorithm 1 actually consumes: best and current
    lexicographic cost, acceptance counts, and diversification resets.
    Series appear in the [dtr-obs-report/2] JSON and as sparkline/summary
    output under [dtr-opt --verbose].

    Field meaning is per-series: the local-search series (phase1a, phase2,
    annealing) use [trials]/[accepts] for move counts and [resets] for
    diversification restarts (annealing: uphill acceptances); the phase1b
    series records sampling progress ([trials] = probes priced so far,
    [accepts] = minimum per-arc sample count, [resets] = 1 once rankings
    have converged). *)

type point = {
  iter : int;  (** 0-based index within the series *)
  best_lambda : float;
  best_phi : float;
  cur_lambda : float;
  cur_phi : float;
  trials : int;
  accepts : int;
  resets : int;
}

val with_series : name:string -> (unit -> 'a) -> 'a
(** [with_series ~name f] makes [name] the ambient series of the calling
    domain for the duration of [f] (exception-safe, nestable; the previous
    ambient series is restored on exit).  Re-entering a name appends to the
    existing series.  When {!Metric.enabled} is off this is exactly
    [f ()]. *)

val record :
  best_lambda:float ->
  best_phi:float ->
  cur_lambda:float ->
  cur_phi:float ->
  trials:int ->
  accepts:int ->
  resets:int ->
  unit
(** Append one point to the ambient series; a no-op when no series is open
    on this domain.  The iteration index is assigned automatically. *)

val all : unit -> (string * point list) list
(** Every series in creation order, points in recording order. *)

val reset : unit -> unit
(** Drop all series. *)
