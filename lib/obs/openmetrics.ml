(* OpenMetrics v1 text exposition builder.  Callers add metric families in
   the order they want them rendered; [render] emits one "# TYPE" line per
   family followed by its samples and terminates the document with "# EOF".
   Counter samples get the spec's "_total" suffix, histograms expand into
   cumulative "_bucket{le=...}" samples plus "_sum"/"_count".  Periodic dump
   mode appends whole snapshots to one stream, each ending in "# EOF";
   [trace metrics-check] parses that framing back. *)

module Json = Dtr_util.Json

type family = {
  f_name : string;
  f_type : string; (* "counter" | "gauge" | "histogram" *)
  mutable samples : string list; (* reversed; rendered lines sans newline *)
}

type t = { mutable families : family list (* reversed *) }

let create () = { families = [] }

(* Metric and label names are restricted to [a-zA-Z0-9_:] ([a-zA-Z0-9_] for
   labels); anything else maps to '_' so internal dotted names like
   "serve.latency" expose as "serve_latency". *)
let sanitize ?(allow_colon = true) s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | ':' when allow_colon -> c
      | _ -> '_')
    (if s = "" then "_" else s)

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\""
                 (sanitize ~allow_colon:false k)
                 (escape_label_value v))
             labels)
      ^ "}"

(* Integral values render without a fraction part so counter samples read as
   exact counts; everything else reuses the JSON writer's round-trippable
   float form. *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Json.number_string v

let family t name typ =
  let name = sanitize name in
  match List.find_opt (fun f -> f.f_name = name) t.families with
  | Some f ->
      if f.f_type <> typ then
        invalid_arg ("Openmetrics: family " ^ name ^ " re-added as " ^ typ);
      f
  | None ->
      let f = { f_name = name; f_type = typ; samples = [] } in
      t.families <- f :: t.families;
      f

let add_sample f line = f.samples <- line :: f.samples

let counter t ~name ?(labels = []) v =
  let f = family t name "counter" in
  add_sample f
    (Printf.sprintf "%s_total%s %s" f.f_name (render_labels labels) (number v))

let gauge t ~name ?(labels = []) v =
  let f = family t name "gauge" in
  add_sample f
    (Printf.sprintf "%s%s %s" f.f_name (render_labels labels) (number v))

let histogram t ~name (s : Histogram.snapshot) =
  let f = family t name "histogram" in
  let labels = s.Histogram.s_labels in
  let cum = ref 0 in
  List.iter
    (fun (idx, c) ->
      cum := !cum + c;
      let _, upper = Histogram.bucket_bounds idx in
      add_sample f
        (Printf.sprintf "%s_bucket%s %d" f.f_name
           (render_labels (labels @ [ ("le", number upper) ]))
           !cum))
    s.Histogram.buckets;
  add_sample f
    (Printf.sprintf "%s_bucket%s %d" f.f_name
       (render_labels (labels @ [ ("le", "+Inf") ]))
       s.Histogram.count);
  add_sample f
    (Printf.sprintf "%s_sum%s %s" f.f_name (render_labels labels)
       (Json.number_string s.Histogram.sum));
  add_sample f
    (Printf.sprintf "%s_count%s %d" f.f_name (render_labels labels)
       s.Histogram.count)

let render t =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" f.f_name f.f_type);
      List.iter
        (fun line ->
          Buffer.add_string b line;
          Buffer.add_char b '\n')
        (List.rev f.samples))
    (List.rev t.families);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
