(* dtr-serve: persistent re-optimization daemon.

   Loads (or generates) a scenario exactly the way dtr-opt does, computes or
   loads an incumbent weight setting, then serves the newline-delimited
   dtr-serve/1 protocol over stdin/stdout — and, with --socket, over a
   Unix-domain socket as well.  All human-facing chatter goes to stderr;
   stdout carries only protocol responses. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Scenario = Dtr_core.Scenario
module Optimizer = Dtr_core.Optimizer
module Daemon = Dtr_serve.Daemon

let topo_conv =
  let parse = function
    | "rand" -> Ok Gen.Rand_topo
    | "near" -> Ok Gen.Near_topo
    | "pl" -> Ok Gen.Pl_topo
    | "isp" -> Ok Gen.Isp
    | "backbone" -> Ok Gen.Backbone
    | s ->
        Error
          (`Msg (Printf.sprintf "unknown topology %S (rand|near|pl|isp|backbone)" s))
  in
  let print ppf k = Format.pp_print_string ppf (Gen.kind_name k) in
  Cmdliner.Arg.conv (parse, print)

open Cmdliner

let topo =
  Arg.(value & opt topo_conv Gen.Rand_topo & info [ "t"; "topology" ] ~docv:"KIND"
         ~doc:"Topology family: rand, near, pl, isp or backbone.")

let nodes =
  Arg.(value & opt int 16 & info [ "n"; "nodes" ] ~docv:"N"
         ~doc:"Number of nodes (ignored for isp and backbone).")

let degree =
  Arg.(value & opt float 5. & info [ "d"; "degree" ] ~docv:"D"
         ~doc:"Mean undirected node degree (ignored for isp and backbone).")

let avg_util =
  Arg.(value & opt float 0.43 & info [ "u"; "avg-util" ] ~docv:"U"
         ~doc:"Target average link utilization under hop-count routing.")

let seed =
  Arg.(value & opt int 2008 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let theta =
  Arg.(value & opt float 25. & info [ "theta" ] ~docv:"MS"
         ~doc:"SLA end-to-end delay bound in milliseconds.")

let fraction =
  Arg.(value & opt float 0.15 & info [ "f"; "critical-fraction" ] ~docv:"F"
         ~doc:"Target |Ec| / |E| for critical-link selection in full \
               re-optimizations.")

let topology_file =
  Arg.(value & opt (some string) None & info [ "topology-file" ] ~docv:"PATH"
         ~doc:"Load the topology from a dtr topology file instead of generating one.")

let traffic_file =
  Arg.(value & opt (some string) None & info [ "traffic-file" ] ~docv:"PATH"
         ~doc:"Load the two-class traffic matrices from a dtr traffic file.")

let weights_file =
  Arg.(value & opt (some string) None & info [ "w"; "weights" ] ~docv:"PATH"
         ~doc:"Start from this saved weight setting instead of running the \
               two-phase optimization at startup (the retained critical set \
               starts empty until the first $(b,reoptimize) \
               $(b,mode=full)).")

let jobs =
  Arg.(value & opt (some Dtr_cli.Cli.jobs_conv) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Price failure sweeps on $(docv) domains.  Results are \
               bit-identical for every job count.  Overrides DTR_JOBS.")

let chunk_size =
  Arg.(value & opt (some Dtr_cli.Cli.chunk_size_conv) None
       & info [ "chunk-size" ] ~docv:"ITEMS"
           ~doc:"Pin the pool's work-queue chunk size (overrides \
                 DTR_CHUNK_SIZE; scheduling only, results unchanged).")

let no_dspf =
  Arg.(value & flag & info [ "no-dspf" ]
         ~doc:"Disable the dynamic-SPF failure-sweep engine (mirrors \
               DTR_NO_DSPF; results are bit-identical either way).")

let no_prune =
  Arg.(value & flag & info [ "no-prune" ]
         ~doc:"Disable move-space pruning — early-abort pricing and the \
               warm-restart weight-vector delta cache (mirrors \
               DTR_NO_PRUNE; results are bit-identical either way).")

let socket =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Also serve the protocol on a Unix-domain socket bound here \
               (stdin/stdout stay connected; a stale socket file is \
               replaced).")

let cache_capacity =
  Arg.(value & opt int 64 & info [ "cache-capacity" ] ~docv:"ENTRIES"
         ~doc:"Bound on the what-if pricing LRU (keyed by failure set and \
               state epochs).  Eviction never changes results, only \
               latency.")

let report_path =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"PATH"
         ~doc:"Write a dtr-obs-report/3 JSON report at shutdown: per-event \
               span tree, serve/optimizer counters, latency histograms, \
               rolling gauges, convergence series of every \
               re-optimization.")

let trace_path =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH"
         ~doc:"Flight-recorder passthrough: write a Chrome trace-event file \
               of the whole session at shutdown.")

let metrics_path =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"PATH|fd:N"
         ~doc:"OpenMetrics v1 text exposition sink: a file path, or fd:2 \
               for stderr (fd:1 is rejected — stdout carries the protocol). \
               One snapshot is always written at shutdown; with \
               $(b,--metrics-every) snapshots are also appended \
               periodically, each terminated by '# EOF'.")

let metrics_every =
  Arg.(value & opt int 0 & info [ "metrics-every" ] ~docv:"EVENTS"
         ~doc:"Append an exposition snapshot to the $(b,--metrics) sink \
               every $(docv) handled events (0: only the shutdown \
               snapshot).")

let log_path =
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"PATH|fd:2"
         ~doc:"Structured JSONL event log (schema dtr-serve-log/1): one \
               line per handled event with latency, cost deltas, cache \
               outcomes and epoch coordinates.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Startup and shutdown chatter on stderr.")

let build_params theta_ms =
  { Scenario.quick_params with
    Scenario.sla = Dtr_cost.Sla.with_theta (theta_ms /. 1000.) }

let build_scenario ~topo ~nodes ~degree ~avg_util ~seed ~params ~topology_file
    ~traffic_file =
  let rng = Rng.create seed in
  let graph =
    match topology_file with
    | Some path -> Dtr_io.Graph_io.load ~path
    | None -> Gen.generate rng topo ~nodes ~degree
  in
  let rd, rt =
    match traffic_file with
    | Some path ->
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            Dtr_io.Matrix_io.pair_of_string
              (really_input_string ic (in_channel_length ic)))
    | None ->
        let rd, rt =
          Dtr_traffic.Gravity.pair rng ~nodes:(Graph.num_nodes graph) ~total:1000.
        in
        Dtr_traffic.Scaling.calibrate graph ~rd ~rt
          (Dtr_traffic.Scaling.Avg_utilization avg_util)
  in
  Scenario.make ~graph ~rd ~rt ~params

(* The --metrics sink: "fd:2" streams snapshots to stderr; "fd:1" is
   rejected because stdout carries protocol responses; anything else is a
   file kept open (and truncated once) for the daemon's lifetime. *)
let open_metrics_sink = function
  | None -> (None, fun () -> ())
  | Some "fd:1" ->
      Format.eprintf "--metrics fd:1 is not allowed: stdout carries the \
                      dtr-serve/1 protocol@.";
      exit 1
  | Some spec ->
      let oc, close =
        match spec with
        | "fd:2" -> (stderr, fun () -> flush stderr)
        | path ->
            let oc = open_out path in
            (oc, fun () -> close_out_noerr oc)
      in
      let write s =
        output_string oc s;
        flush oc
      in
      (Some write, close)

let run topo nodes degree avg_util seed theta_ms fraction topology_file
    traffic_file weights_file jobs chunk_size no_dspf no_prune socket
    cache_capacity report trace metrics metrics_every log verbose =
  let exec = Dtr_cli.Cli.exec_of_jobs jobs in
  Dtr_cli.Cli.apply_chunk_size chunk_size;
  if no_dspf then Dtr_spf.Spf_delta.set_enabled false;
  if no_prune then Dtr_core.Prune.set_enabled false;
  let metrics_write, metrics_close = open_metrics_sink metrics in
  Dtr_cli.Cli.with_obs ?log ~verbose ~report ~trace @@ fun () ->
  let params = build_params theta_ms in
  let scenario =
    build_scenario ~topo ~nodes ~degree ~avg_util ~seed ~params ~topology_file
      ~traffic_file
  in
  if verbose then
    Format.eprintf "dtr-serve: %d nodes, %d arcs, seed %d, jobs %d@."
      (Scenario.num_nodes scenario) (Scenario.num_arcs scenario) seed
      (Dtr_exec.Exec.jobs exec);
  Dtr_obs.Log.event ~schema:Dtr_obs.Log.serve_schema ~name:"startup"
    [
      ("nodes", Dtr_util.Json.Num (float_of_int (Scenario.num_nodes scenario)));
      ("arcs", Dtr_util.Json.Num (float_of_int (Scenario.num_arcs scenario)));
      ("seed", Dtr_util.Json.Num (float_of_int seed));
      ("jobs", Dtr_util.Json.Num (float_of_int (Dtr_exec.Exec.jobs exec)));
    ];
  let incumbent, critical =
    match weights_file with
    | Some path ->
        let w = Dtr_io.Weights_io.load ~path in
        if Dtr_core.Weights.num_arcs w <> Scenario.num_arcs scenario then begin
          Format.eprintf "weight setting has %d arcs but the topology has %d@."
            (Dtr_core.Weights.num_arcs w) (Scenario.num_arcs scenario);
          exit 1
        end;
        (w, [])
    | None ->
        (* Startup optimization: the same (seed + 1) stream convention as
           `dtr-opt optimize`, so a daemon started on a fresh scenario holds
           exactly the weights that command would have written. *)
        let rng = Rng.create (seed + 1) in
        let sol = Optimizer.optimize ~rng ~fraction ~exec scenario in
        if verbose then
          Format.eprintf
            "startup optimize: %.1fs+%.1fs, K_normal = <%g, %g>, %d critical arcs@."
            sol.Optimizer.phase1_seconds sol.Optimizer.phase2_seconds
            sol.Optimizer.robust_normal_cost.Dtr_cost.Lexico.lambda
            sol.Optimizer.robust_normal_cost.Dtr_cost.Lexico.phi
            (List.length sol.Optimizer.critical);
        Dtr_obs.Log.event ~schema:Dtr_obs.Log.serve_schema
          ~name:"startup_optimize"
          [
            ( "lambda",
              Dtr_util.Json.Num
                sol.Optimizer.robust_normal_cost.Dtr_cost.Lexico.lambda );
            ( "phi",
              Dtr_util.Json.Num
                sol.Optimizer.robust_normal_cost.Dtr_cost.Lexico.phi );
            ( "critical_arcs",
              Dtr_util.Json.Num
                (float_of_int (List.length sol.Optimizer.critical)) );
          ];
        (sol.Optimizer.robust, sol.Optimizer.critical)
  in
  let daemon =
    Daemon.create
      {
        Daemon.scenario;
        incumbent;
        critical;
        fraction = Some fraction;
        seed;
        exec;
        cache_capacity;
        metrics =
          Option.map
            (fun write -> { Daemon.write; every = metrics_every })
            metrics_write;
      }
  in
  (match socket with
  | None -> Daemon.run_pipe daemon stdin stdout
  | Some path ->
      if verbose then Format.eprintf "listening on %s@." path;
      Daemon.run_socket daemon ~socket:path ~stdio:(stdin, stdout) ());
  (* Always leave a final snapshot on the sink, whatever the periodic
     cadence saw last. *)
  (match metrics_write with
  | None -> ()
  | Some write ->
      write (Daemon.exposition daemon);
      metrics_close ();
      if verbose then Format.eprintf "metrics exposition flushed@.");
  Dtr_obs.Log.event ~schema:Dtr_obs.Log.serve_schema ~name:"shutdown" [];
  Dtr_obs.Log.close ();
  (match trace with
  | None -> ()
  | Some path ->
      Dtr_obs.Trace.write_chrome ~path;
      if verbose then Format.eprintf "trace written to %s@." path);
  match report with
  | None -> ()
  | Some path ->
      let open Dtr_obs.Report in
      let cache = Daemon.cache_stats daemon in
      Dtr_obs.Report.set_instance
        [
          ( "topology",
            S
              (match topology_file with
              | Some p -> "file:" ^ p
              | None -> Gen.kind_name topo) );
          ("nodes", I (Scenario.num_nodes scenario));
          ("arcs", I (Scenario.num_arcs scenario));
          ("seed", I seed);
          ("jobs", I (Dtr_exec.Exec.jobs exec));
          ("dspf_engine", B (Dtr_spf.Spf_delta.enabled ()));
          ("server", S "dtr-serve");
        ];
      Dtr_obs.Report.set_results
        [
          ("cache_hits", I cache.Dtr_util.Lru.hits);
          ("cache_misses", I cache.Dtr_util.Lru.misses);
          ("cache_evictions", I cache.Dtr_util.Lru.evictions);
        ];
      Dtr_obs.Report.write ~path;
      if verbose then Format.eprintf "observability report written to %s@." path

let cmd =
  let doc = "persistent re-optimization daemon for robust DTR routing" in
  Cmd.v
    (Cmd.info "dtr-serve" ~version:"1.0.0" ~doc)
    Term.(
      const run $ topo $ nodes $ degree $ avg_util $ seed $ theta $ fraction
      $ topology_file $ traffic_file $ weights_file $ jobs $ chunk_size
      $ no_dspf $ no_prune $ socket $ cache_capacity $ report_path $ trace_path
      $ metrics_path $ metrics_every $ log_path $ verbose)

let () = exit (Cmd.eval cmd)
