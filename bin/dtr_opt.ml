(* dtr-opt: command-line driver for robust DTR optimization.

   Subcommands:
     generate   synthesize a topology (+ calibrated traffic) and write them out
     optimize   run the two-phase heuristic on a generated or loaded instance
     evaluate   price a saved weight setting under normal and failure conditions
     trace      observability tooling: report diffs and the BENCH perf gate

   Running without a subcommand behaves like `optimize` on a generated
   instance and prints a solution report. *)

module Rng = Dtr_util.Rng
module Table = Dtr_util.Table
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Failure = Dtr_topology.Failure
module Matrix = Dtr_traffic.Matrix
module Scenario = Dtr_core.Scenario
module Optimizer = Dtr_core.Optimizer
module Metrics = Dtr_core.Metrics
module Lexico = Dtr_cost.Lexico

(* ------------------------------------------------------------------ *)
(* Converters and shared options                                       *)
(* ------------------------------------------------------------------ *)

let topo_conv =
  let parse = function
    | "rand" -> Ok Gen.Rand_topo
    | "near" -> Ok Gen.Near_topo
    | "pl" -> Ok Gen.Pl_topo
    | "isp" -> Ok Gen.Isp
    | "backbone" -> Ok Gen.Backbone
    | s ->
        Error
          (`Msg (Printf.sprintf "unknown topology %S (rand|near|pl|isp|backbone)" s))
  in
  let print ppf k = Format.pp_print_string ppf (Gen.kind_name k) in
  Cmdliner.Arg.conv (parse, print)

let selector_conv =
  let parse = function
    | "ours" -> Ok Optimizer.Ours
    | "full" -> Ok Optimizer.Full
    | "random" -> Ok Optimizer.Random_selection
    | "load" -> Ok Optimizer.Load_based
    | "fluctuation" -> Ok Optimizer.Fluctuation_based
    | s -> Error (`Msg (Printf.sprintf "unknown selector %S" s))
  in
  let print ppf _ = Format.pp_print_string ppf "<selector>" in
  Cmdliner.Arg.conv (parse, print)

let failure_model_conv =
  let parse = function
    | "single" | "link" -> Ok `Single
    | "node" -> Ok `Node
    | "srlg" -> Ok `Srlg
    | "two-link" | "two_link" -> Ok `Two_link
    | "cascade" -> Ok `Cascade
    | s ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown failure model %S (single|node|srlg|two-link|cascade)" s))
  in
  let name = function
    | `Single -> "single"
    | `Node -> "node"
    | `Srlg -> "srlg"
    | `Two_link -> "two-link"
    | `Cascade -> "cascade"
  in
  let print ppf m = Format.pp_print_string ppf (name m) in
  (Cmdliner.Arg.conv (parse, print), name)

open Cmdliner

let topo =
  Arg.(value & opt topo_conv Gen.Rand_topo & info [ "t"; "topology" ] ~docv:"KIND"
         ~doc:"Topology family: rand, near, pl, isp or backbone.")

let nodes =
  Arg.(value & opt int 16 & info [ "n"; "nodes" ] ~docv:"N"
         ~doc:"Number of nodes (ignored for isp and backbone).")

let degree =
  Arg.(value & opt float 5. & info [ "d"; "degree" ] ~docv:"D"
         ~doc:"Mean undirected node degree (ignored for isp and backbone).")

let avg_util =
  Arg.(value & opt float 0.43 & info [ "u"; "avg-util" ] ~docv:"U"
         ~doc:"Target average link utilization under hop-count routing.")

let seed =
  Arg.(value & opt int 2008 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs =
  Arg.(value & opt (some Dtr_cli.Cli.jobs_conv) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Price failure sweeps on $(docv) domains.  Results are \
               bit-identical for every job count.  Overrides the DTR_JOBS \
               environment variable; the default is serial execution.")

(* Explicit flag wins over DTR_JOBS; absent both, run serially.  Validation
   happens in Dtr_cli.Cli.jobs_conv, through Cmdliner's own error channel. *)
let exec_of_jobs = Dtr_cli.Cli.exec_of_jobs

let chunk_size =
  Arg.(value & opt (some Dtr_cli.Cli.chunk_size_conv) None
       & info [ "chunk-size" ] ~docv:"ITEMS"
           ~doc:"Pin the pool's work-queue chunk size to $(docv) items per \
                 claim instead of the adaptive policy.  Chunking only \
                 affects scheduling: results are bit-identical for every \
                 chunk size.  Overrides the DTR_CHUNK_SIZE environment \
                 variable.")

let apply_chunk_size = Dtr_cli.Cli.apply_chunk_size

let no_dspf =
  Arg.(value & flag & info [ "no-dspf" ]
         ~doc:"Disable the dynamic-SPF failure-sweep engine and price every \
               failure state from scratch (mirrors the DTR_NO_DSPF \
               environment variable; results are bit-identical either way, \
               the flag exists for A/B benchmarking).")

let apply_no_dspf flag = if flag then Dtr_spf.Spf_delta.set_enabled false

let no_prune =
  Arg.(value & flag & info [ "no-prune" ]
         ~doc:"Disable move-space pruning — lexicographic early-abort \
               pricing and the cross-restart weight-vector delta cache — \
               and price every candidate in full (mirrors the DTR_NO_PRUNE \
               environment variable; results are bit-identical either way, \
               the flag exists for A/B benchmarking).")

let apply_no_prune flag = if flag then Dtr_core.Prune.set_enabled false

let fast =
  Arg.(value & flag & info [ "fast" ]
         ~doc:"Criticality-gated move proposals in Phase 2: arcs that are \
               neither failure-critical nor loaded are progressively \
               skipped (up to 60% of proposals) as the acceptance rate \
               decays.  Faster, but the search trajectory changes — a \
               quality/time trade, unlike $(b,--no-prune) which toggles an \
               exact optimization.")

let print_prune_breakdown (solution : Optimizer.solution) =
  let p1 = solution.Optimizer.phase1.Dtr_core.Phase1.stats in
  let p2 = solution.Optimizer.phase2.Dtr_core.Phase2.stats in
  Format.printf
    "prune breakdown: phase1 %d trials early-aborted; phase2 %d \
     early-aborted, %d proposals skipped, delta cache %d hits / %d misses \
     (pruning %s)@."
    p1.Dtr_core.Phase1.pruned p2.Dtr_core.Phase2.pruned
    p2.Dtr_core.Phase2.skipped p2.Dtr_core.Phase2.cache_hits
    p2.Dtr_core.Phase2.cache_misses
    (if Dtr_core.Prune.enabled () then "on" else "off")

let print_sweep_breakdown () =
  let { Dtr_core.Eval.Sweep_stats.sweeps; cache_builds; cached_evals; full_evals;
        seconds } =
    Dtr_core.Eval.Sweep_stats.snapshot ()
  in
  Format.printf
    "sweep breakdown: %d sweeps, %.2fs wall; %d failure evaluations via the \
     dynamic-SPF cache, %d from scratch; %d cache builds (engine %s)@."
    sweeps seconds cached_evals full_evals cache_builds
    (if Dtr_spf.Spf_delta.enabled () then "on" else "off")

let report_path =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"PATH"
         ~doc:"Write a JSON observability report here: instance summary, \
               per-phase span tree, sweep counters, convergence series, \
               flight-recorder accounting, per-domain pool utilization, \
               latency histograms, rolling-window gauges and final \
               lexicographic costs (schema dtr-obs-report/3).")

let trace_path =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH"
         ~doc:"Switch the flight recorder on and write the recorded events \
               here as a Chrome trace-event file, loadable in \
               chrome://tracing and Perfetto.  Tracing never changes \
               optimization results.")

let log_path =
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"PATH"
         ~doc:"Append structured JSONL run-summary events here (schema \
               dtr-opt-log/1); $(docv) may be fd:1 or fd:2 to stream to \
               stdout or stderr.  $(b,--verbose) implies $(b,--log fd:2) \
               when no sink is given.")

(* --verbose without an explicit sink streams the structured events to
   stderr, replacing the ad-hoc prints that used to be the only record. *)
let resolve_log ~verbose log =
  match log with Some _ -> log | None -> if verbose then Some "fd:2" else None

let obs_trace ~trace =
  match trace with
  | None -> ()
  | Some path ->
      let { Dtr_obs.Trace.recorded; dropped; _ } = Dtr_obs.Trace.stats () in
      Dtr_obs.Trace.write_chrome ~path;
      Format.printf "trace written to %s (%d events, %d dropped)@." path
        recorded dropped

(* Run summary as one structured log line, mirroring the report's instance
   and results sections so a --log stream is self-describing. *)
let log_summary ~name ~instance ~results =
  if Dtr_obs.Log.enabled () then begin
    let open Dtr_util.Json in
    let field (k, v) =
      ( k,
        match v with
        | Dtr_obs.Report.S s -> Str s
        | Dtr_obs.Report.I i -> Num (float_of_int i)
        | Dtr_obs.Report.F f -> Num f
        | Dtr_obs.Report.B b -> Bool b )
    in
    Dtr_obs.Log.event ~schema:Dtr_obs.Log.opt_schema ~name
      [
        ("instance", Obj (List.map field instance));
        ("results", Obj (List.map field results));
      ]
  end

let obs_report ~report ~instance ~results =
  match report with
  | None -> ()
  | Some path ->
      Dtr_obs.Report.set_instance instance;
      Dtr_obs.Report.set_results results;
      Dtr_obs.Report.write ~path;
      Format.printf "observability report written to %s@." path

let instance_fields scenario ~topo ~topology_file ~seed ~exec =
  let open Dtr_obs.Report in
  [
    ( "topology",
      S
        (match topology_file with
        | Some path -> "file:" ^ path
        | None -> Gen.kind_name topo) );
    ("nodes", I (Graph.num_nodes scenario.Scenario.graph));
    ("arcs", I (Scenario.num_arcs scenario));
    ("seed", I seed);
    ("jobs", I (Dtr_exec.Exec.jobs exec));
    ("dspf_engine", B (Dtr_spf.Spf_delta.enabled ()));
    ("prune", B (Dtr_core.Prune.enabled ()));
  ]

let theta =
  Arg.(value & opt float 25. & info [ "theta" ] ~docv:"MS"
         ~doc:"SLA end-to-end delay bound in milliseconds.")

let topology_file =
  Arg.(value & opt (some string) None & info [ "topology-file" ] ~docv:"PATH"
         ~doc:"Load the topology from a dtr topology file instead of generating one.")

let traffic_file =
  Arg.(value & opt (some string) None & info [ "traffic-file" ] ~docv:"PATH"
         ~doc:"Load the two-class traffic matrices from a dtr traffic file.")

(* ------------------------------------------------------------------ *)
(* Instance assembly                                                   *)
(* ------------------------------------------------------------------ *)

let build_params theta_ms paper_scale =
  let params = if paper_scale then Scenario.paper_params else Scenario.quick_params in
  { params with Scenario.sla = Dtr_cost.Sla.with_theta (theta_ms /. 1000.) }

(* An instance comes either from files or from the generators. *)
let build_scenario ~topo ~nodes ~degree ~avg_util ~seed ~params ~topology_file
    ~traffic_file =
  let rng = Rng.create seed in
  let graph =
    match topology_file with
    | Some path -> Dtr_io.Graph_io.load ~path
    | None -> Gen.generate rng topo ~nodes ~degree
  in
  let rd, rt =
    match traffic_file with
    | Some path -> begin
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            Dtr_io.Matrix_io.pair_of_string
              (really_input_string ic (in_channel_length ic)))
      end
    | None ->
        let rd, rt = Dtr_traffic.Gravity.pair rng ~nodes:(Graph.num_nodes graph) ~total:1000. in
        Dtr_traffic.Scaling.calibrate graph ~rd ~rt
          (Dtr_traffic.Scaling.Avg_utilization avg_util)
  in
  Scenario.make ~graph ~rd ~rt ~params

let report_instance scenario =
  Format.printf "%a@." Graph.pp_summary scenario.Scenario.graph;
  Format.printf "traffic: %.0f Mb/s delay-sensitive, %.0f Mb/s throughput-sensitive@."
    (Matrix.total scenario.Scenario.rd)
    (Matrix.total scenario.Scenario.rt)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let run_generate topo nodes degree avg_util seed out_topology out_traffic out_dot =
  let params = build_params 25. false in
  let scenario =
    build_scenario ~topo ~nodes ~degree ~avg_util ~seed ~params ~topology_file:None
      ~traffic_file:None
  in
  report_instance scenario;
  (match out_topology with
  | Some path ->
      Dtr_io.Graph_io.save scenario.Scenario.graph ~path;
      Format.printf "topology written to %s@." path
  | None -> ());
  (match out_traffic with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (Dtr_io.Matrix_io.pair_to_string ~rd:scenario.Scenario.rd
               ~rt:scenario.Scenario.rt));
      Format.printf "traffic written to %s@." path
  | None -> ());
  match out_dot with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Dtr_io.Graph_io.to_dot scenario.Scenario.graph));
      Format.printf "DOT written to %s@." path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)
(* ------------------------------------------------------------------ *)

let print_failure_comparison scenario ~exec ~regular ~robust =
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let reg = Metrics.summarize_failures scenario ~exec regular failures in
  let rob = Metrics.summarize_failures scenario ~exec robust failures in
  let t =
    Table.create ~title:"SLA violations over all single link failures"
      ~columns:[ "routing"; "average"; "top-10%"; "Phi_fail" ]
  in
  Table.add_row t
    [ "regular"; Table.cell_f reg.Metrics.avg; Table.cell_f reg.Metrics.top10;
      Table.cell_f reg.Metrics.phi_total ];
  Table.add_row t
    [ "robust"; Table.cell_f rob.Metrics.avg; Table.cell_f rob.Metrics.top10;
      Table.cell_f rob.Metrics.phi_total ];
  Table.print t

let run_optimize topo nodes degree avg_util seed fraction selector fmodel srlg_radius
    pair_samples cascade_trip theta_ms paper_scale topology_file traffic_file
    out_weights jobs chunk_size no_dspf no_prune fast_mode verbose report trace log =
  let exec = exec_of_jobs jobs in
  apply_chunk_size chunk_size;
  apply_no_dspf no_dspf;
  apply_no_prune no_prune;
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let log = resolve_log ~verbose log in
  Dtr_cli.Cli.with_obs ?log ~verbose ~report ~trace @@ fun () ->
  let params = build_params theta_ms paper_scale in
  let scenario =
    build_scenario ~topo ~nodes ~degree ~avg_util ~seed ~params ~topology_file
      ~traffic_file
  in
  report_instance scenario;
  let rng = Rng.create (seed + 1) in
  let failure_model =
    match fmodel with
    | `Single -> Optimizer.Link_failures
    | `Node -> Optimizer.Node_failures
    | `Srlg -> Optimizer.Srlg_failures srlg_radius
    | `Two_link -> Optimizer.Two_link_failures pair_samples
    | `Cascade -> Optimizer.Cascade_failures cascade_trip
  in
  let solution =
    Optimizer.optimize ~rng ~selector ~failure_model ~fraction ~exec
      ~fast:fast_mode scenario
  in
  Format.printf "@.failure model: %s (%d scenarios)@."
    ((snd failure_model_conv) fmodel)
    (List.length solution.Optimizer.failures);
  Format.printf "phase 1 (regular optimization): %.1fs, K = %a@."
    solution.Optimizer.phase1_seconds Lexico.pp solution.Optimizer.regular_cost;
  Format.printf "phase 2 (robust optimization):  %.1fs, K_normal = %a@."
    solution.Optimizer.phase2_seconds Lexico.pp solution.Optimizer.robust_normal_cost;
  Format.printf "critical set (%d/%d arcs):%s@."
    (List.length solution.Optimizer.critical)
    (Scenario.num_arcs scenario)
    (String.concat ""
       (List.map (fun a -> Printf.sprintf " %d" a) solution.Optimizer.critical));
  print_failure_comparison scenario ~exec ~regular:solution.Optimizer.regular
    ~robust:solution.Optimizer.robust;
  Format.printf
    "throughput cost accepted under normal conditions: +%.1f%% (chi allows +%.0f%%)@."
    (Metrics.phi_gap_percent
       ~reference:solution.Optimizer.regular_cost.Lexico.phi
       solution.Optimizer.robust_normal_cost.Lexico.phi)
    (100. *. scenario.Scenario.params.Scenario.chi);
  if verbose then begin
    print_sweep_breakdown ();
    print_prune_breakdown solution;
    Format.printf "%a" Dtr_obs.Span.pp ();
    Dtr_cli.Trace_cmd.print_convergence ()
  end;
  (match out_weights with
  | Some path ->
      Dtr_io.Weights_io.save solution.Optimizer.robust ~path;
      Format.printf "robust weights written to %s@." path
  | None -> ());
  let results =
    let open Dtr_obs.Report in
    [
      ("regular_lambda", F solution.Optimizer.regular_cost.Lexico.lambda);
      ("regular_phi", F solution.Optimizer.regular_cost.Lexico.phi);
      ("robust_normal_lambda", F solution.Optimizer.robust_normal_cost.Lexico.lambda);
      ("robust_normal_phi", F solution.Optimizer.robust_normal_cost.Lexico.phi);
      ("robust_fail_lambda", F solution.Optimizer.robust_fail_cost.Lexico.lambda);
      ("robust_fail_phi", F solution.Optimizer.robust_fail_cost.Lexico.phi);
      ("failure_model", S ((snd failure_model_conv) fmodel));
      ("failure_scenarios", I (List.length solution.Optimizer.failures));
      ("critical_arcs", I (List.length solution.Optimizer.critical));
      ("phase1_seconds", F solution.Optimizer.phase1_seconds);
      ("phase2_seconds", F solution.Optimizer.phase2_seconds);
      ("fast", B fast_mode);
      ("phase1_pruned", I solution.Optimizer.phase1.Dtr_core.Phase1.stats.Dtr_core.Phase1.pruned);
      ("phase2_pruned", I solution.Optimizer.phase2.Dtr_core.Phase2.stats.Dtr_core.Phase2.pruned);
      ("phase2_skipped", I solution.Optimizer.phase2.Dtr_core.Phase2.stats.Dtr_core.Phase2.skipped);
      ("phase2_cache_hits", I solution.Optimizer.phase2.Dtr_core.Phase2.stats.Dtr_core.Phase2.cache_hits);
    ]
  in
  let instance = instance_fields scenario ~topo ~topology_file ~seed ~exec in
  log_summary ~name:"optimize" ~instance ~results;
  obs_report ~report ~instance ~results;
  obs_trace ~trace

(* ------------------------------------------------------------------ *)
(* evaluate                                                            *)
(* ------------------------------------------------------------------ *)

let run_evaluate topo nodes degree avg_util seed theta_ms topology_file traffic_file
    weights_file node_failures jobs chunk_size no_dspf no_prune verbose report trace
    log =
  let exec = exec_of_jobs jobs in
  apply_chunk_size chunk_size;
  apply_no_dspf no_dspf;
  apply_no_prune no_prune;
  let log = resolve_log ~verbose log in
  (* The bracket resets all counters at entry — without it, in-process reuse
     (and the sweeps below) reported stale totals accumulated by earlier
     runs — and tears instrumentation down again if the run raises. *)
  Dtr_cli.Cli.with_obs ?log ~verbose ~report ~trace @@ fun () ->
  let params = build_params theta_ms false in
  let scenario =
    build_scenario ~topo ~nodes ~degree ~avg_util ~seed ~params ~topology_file
      ~traffic_file
  in
  report_instance scenario;
  let w = Dtr_io.Weights_io.load ~path:weights_file in
  if Dtr_core.Weights.num_arcs w <> Scenario.num_arcs scenario then begin
    Format.eprintf "weight setting has %d arcs but the topology has %d@."
      (Dtr_core.Weights.num_arcs w) (Scenario.num_arcs scenario);
    exit 1
  end;
  let detail = Dtr_core.Eval.evaluate scenario w in
  Format.printf "normal conditions: %a, %d SLA violations@." Lexico.pp
    detail.Dtr_core.Eval.cost detail.Dtr_core.Eval.violations;
  let failures =
    if node_failures then Failure.all_single_nodes scenario.Scenario.graph
    else Failure.all_single_arcs scenario.Scenario.graph
  in
  let s =
    Dtr_obs.Span.with_ ~name:"evaluate.sweep" (fun () ->
        Metrics.summarize_failures scenario ~exec w failures)
  in
  Format.printf "across %d %s failures: avg %.2f violations, top-10%% %.2f, Phi_fail %.0f@."
    (List.length failures)
    (if node_failures then "node" else "link")
    s.Metrics.avg s.Metrics.top10 s.Metrics.phi_total;
  if verbose then begin
    print_sweep_breakdown ();
    Format.printf "%a" Dtr_obs.Span.pp ();
    Dtr_cli.Trace_cmd.print_convergence ()
  end;
  let results =
    let open Dtr_obs.Report in
    [
      ("normal_lambda", F detail.Dtr_core.Eval.cost.Lexico.lambda);
      ("normal_phi", F detail.Dtr_core.Eval.cost.Lexico.phi);
      ("normal_violations", I detail.Dtr_core.Eval.violations);
      ("failure_model", S (if node_failures then "node" else "link"));
      ("failures", I (List.length failures));
      ("fail_avg_violations", F s.Metrics.avg);
      ("fail_top10_violations", F s.Metrics.top10);
      ("phi_fail", F s.Metrics.phi_total);
    ]
  in
  let instance = instance_fields scenario ~topo ~topology_file ~seed ~exec in
  log_summary ~name:"evaluate" ~instance ~results;
  obs_report ~report ~instance ~results;
  obs_trace ~trace

(* ------------------------------------------------------------------ *)
(* Command wiring                                                      *)
(* ------------------------------------------------------------------ *)

let fraction =
  Arg.(value & opt float 0.15 & info [ "f"; "critical-fraction" ] ~docv:"F"
         ~doc:"Target |Ec| / |E| for the critical-link selection.")

let selector =
  Arg.(value & opt selector_conv Optimizer.Ours & info [ "selector" ] ~docv:"S"
         ~doc:"Critical-link selector: ours, full, random, load or fluctuation.")

let failure_model =
  Arg.(value & opt (fst failure_model_conv) `Single
       & info [ "failure-model" ] ~docv:"MODEL"
           ~doc:
             "Failure scenario class to optimize against: single (the \
              paper's link failures), node, srlg (geographic shared-risk \
              groups), two-link (criticality-sampled pairs) or cascade \
              (overload-trip expansion).")

let srlg_radius =
  Arg.(value & opt float 0.15 & info [ "srlg-radius" ] ~docv:"R"
         ~doc:"Conduit radius for --failure-model srlg (unit-square units).")

let pair_samples =
  Arg.(value & opt int 32 & info [ "pair-samples" ] ~docv:"N"
         ~doc:"Sampled events for --failure-model two-link.")

let cascade_trip =
  Arg.(value & opt float 0.9 & info [ "cascade-trip" ] ~docv:"U"
         ~doc:"Utilisation trip threshold for --failure-model cascade.")

let paper_scale =
  Arg.(value & flag & info [ "paper-scale" ]
         ~doc:"Use the paper's full search budgets (hours, not seconds).")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let generate_cmd =
  let out_topology =
    Arg.(value & opt (some string) None & info [ "o"; "out-topology" ] ~docv:"PATH"
           ~doc:"Write the topology file here.")
  in
  let out_traffic =
    Arg.(value & opt (some string) None & info [ "out-traffic" ] ~docv:"PATH"
           ~doc:"Write the two-class traffic file here.")
  in
  let out_dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PATH"
           ~doc:"Write a Graphviz rendering here.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"synthesize an instance and write it to files")
    Term.(
      const run_generate $ topo $ nodes $ degree $ avg_util $ seed $ out_topology
      $ out_traffic $ out_dot)

let optimize_term =
  let out_weights =
    Arg.(value & opt (some string) None & info [ "o"; "out-weights" ] ~docv:"PATH"
           ~doc:"Write the robust weight setting here.")
  in
  Term.(
    const run_optimize $ topo $ nodes $ degree $ avg_util $ seed $ fraction $ selector
    $ failure_model $ srlg_radius $ pair_samples $ cascade_trip
    $ theta $ paper_scale $ topology_file $ traffic_file $ out_weights $ jobs
    $ chunk_size $ no_dspf $ no_prune $ fast $ verbose $ report_path $ trace_path
    $ log_path)

let optimize_cmd =
  Cmd.v (Cmd.info "optimize" ~doc:"run the two-phase robust optimization") optimize_term

let evaluate_cmd =
  let weights_file =
    Arg.(required & opt (some string) None & info [ "w"; "weights" ] ~docv:"PATH"
           ~doc:"Weight setting to evaluate (required).")
  in
  let node_failures =
    Arg.(value & flag & info [ "node-failures" ]
           ~doc:"Sweep single node failures instead of single link failures.")
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"price a saved weight setting under failures")
    Term.(
      const run_evaluate $ topo $ nodes $ degree $ avg_util $ seed $ theta
      $ topology_file $ traffic_file $ weights_file $ node_failures $ jobs
      $ chunk_size $ no_dspf $ no_prune $ verbose $ report_path $ trace_path
      $ log_path)

let cmd =
  let doc = "robust dual-topology routing optimization (Kwong et al., CoNEXT 2008)" in
  Cmd.group ~default:optimize_term
    (Cmd.info "dtr-opt" ~version:"1.0.0" ~doc)
    [
      generate_cmd;
      optimize_cmd;
      evaluate_cmd;
      (* Subcommand exit codes flow through [wrap]: nonzero trips the CI
         gate, zero falls through Cmd.eval's normal success path. *)
      Dtr_cli.Trace_cmd.cmd_group ~wrap:(fun code ->
          if code <> 0 then exit code);
    ]

let () = exit (Cmd.eval cmd)
