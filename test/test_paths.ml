(* Tests for Dtr_spf.Paths (ECMP path enumeration). *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Routing = Dtr_spf.Routing
module Paths = Dtr_spf.Paths

let edge u v = Graph.{ u; v; cap = 500.; prop = 0.005 }

let diamond () = Graph.of_edges ~n:4 [ edge 0 1; edge 0 2; edge 1 3; edge 2 3 ]

let unit_routing g = Routing.compute g ~weights:(Array.make (Graph.num_arcs g) 1) ()

let test_diamond_enumeration () =
  let g = diamond () in
  let r = unit_routing g in
  let e = Paths.enumerate g r ~src:0 ~dst:3 in
  Alcotest.(check bool) "not truncated" false e.Paths.truncated;
  Alcotest.(check int) "two ECMP paths" 2 (List.length e.Paths.paths);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12)) "half probability" 0.5 p.Paths.probability;
      Alcotest.(check int) "two hops" 2 p.Paths.weight;
      Alcotest.(check (float 1e-12)) "10 ms" 0.010 p.Paths.prop_delay;
      Alcotest.(check int) "three nodes" 3 (List.length (Paths.nodes_of_path g p)))
    e.Paths.paths

let test_probabilities_sum_to_one =
  QCheck.Test.make ~name:"ECMP path probabilities sum to 1" ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.rand rng ~nodes:10 ~degree:3.5 in
      let weights = Array.init (Graph.num_arcs g) (fun _ -> 1 + Rng.int rng 3) in
      let r = Routing.compute g ~weights () in
      let ok = ref true in
      for src = 0 to 9 do
        for dst = 0 to 9 do
          if src <> dst && Routing.reachable r ~src ~dst then begin
            let e = Paths.enumerate ~limit:100000 g r ~src ~dst in
            let total =
              List.fold_left (fun acc p -> acc +. p.Paths.probability) 0. e.Paths.paths
            in
            if e.Paths.truncated || Float.abs (total -. 1.) > 1e-9 then ok := false
          end
        done
      done;
      !ok)

let test_count_agrees_with_enumeration =
  QCheck.Test.make ~name:"count equals enumeration length" ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.rand rng ~nodes:9 ~degree:3. in
      let weights = Array.init (Graph.num_arcs g) (fun _ -> 1 + Rng.int rng 2) in
      let r = Routing.compute g ~weights () in
      let ok = ref true in
      for src = 0 to 8 do
        for dst = 0 to 8 do
          if src <> dst then begin
            let e = Paths.enumerate ~limit:100000 g r ~src ~dst in
            if
              (not e.Paths.truncated)
              && List.length e.Paths.paths <> Paths.count g r ~src ~dst
            then ok := false
          end
        done
      done;
      !ok)

let test_truncation () =
  let g = diamond () in
  let r = unit_routing g in
  let e = Paths.enumerate ~limit:1 g r ~src:0 ~dst:3 in
  Alcotest.(check bool) "truncated" true e.Paths.truncated;
  Alcotest.(check int) "one path kept" 1 (List.length e.Paths.paths);
  Alcotest.check_raises "bad limit"
    (Invalid_argument "Paths.enumerate: limit must be positive") (fun () ->
      ignore (Paths.enumerate ~limit:0 g r ~src:0 ~dst:3))

let test_degenerate_pairs () =
  let g = diamond () in
  let r = unit_routing g in
  Alcotest.(check int) "self pair" 0 (List.length (Paths.enumerate g r ~src:1 ~dst:1).Paths.paths);
  Alcotest.(check int) "self count" 0 (Paths.count g r ~src:1 ~dst:1)

let test_weights_respected () =
  let g = diamond () in
  let weights = Array.make (Graph.num_arcs g) 1 in
  (match Graph.find_arc g 0 1 with Some id -> weights.(id) <- 9 | None -> ());
  let r = Routing.compute g ~weights () in
  let e = Paths.enumerate g r ~src:0 ~dst:3 in
  Alcotest.(check int) "single best path" 1 (List.length e.Paths.paths);
  let p = List.hd e.Paths.paths in
  Alcotest.(check (float 1e-12)) "probability one" 1. p.Paths.probability;
  Alcotest.(check (list int)) "goes via node 2" [ 0; 2; 3 ] (Paths.nodes_of_path g p)

let test_pp () =
  let g = diamond () in
  let r = unit_routing g in
  let e = Paths.enumerate g r ~src:0 ~dst:3 in
  let s = Format.asprintf "%a" (Paths.pp_path g) (List.hd e.Paths.paths) in
  Alcotest.(check bool) "has arrow and probability" true
    (String.length s > 10 && String.contains s '>')

let suite =
  [
    Alcotest.test_case "diamond enumeration" `Quick test_diamond_enumeration;
    QCheck_alcotest.to_alcotest test_probabilities_sum_to_one;
    QCheck_alcotest.to_alcotest test_count_agrees_with_enumeration;
    Alcotest.test_case "truncation" `Quick test_truncation;
    Alcotest.test_case "degenerate pairs" `Quick test_degenerate_pairs;
    Alcotest.test_case "weights respected" `Quick test_weights_respected;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
