(* Tests for Dtr_core.Local_search, Phase1, Phase2, Optimizer and
   Baselines - the heuristic pipeline. *)

module Rng = Dtr_util.Rng
module Failure = Dtr_topology.Failure
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Local_search = Dtr_core.Local_search
module Phase1 = Dtr_core.Phase1
module Phase2 = Dtr_core.Phase2
module Optimizer = Dtr_core.Optimizer
module Baselines = Dtr_core.Baselines
module Lexico = Dtr_cost.Lexico

(* Local search on a synthetic objective: distance of the weight vector to a
   hidden target.  The search must strictly reduce cost and stay in range. *)
let test_local_search_descends () =
  let rng = Rng.create 1 in
  let num_arcs = 12 and wmax = 10 in
  let target = Array.init num_arcs (fun i -> 1 + (i mod wmax)) in
  let eval (w : Weights.t) =
    let dist = ref 0. in
    Array.iteri (fun i x -> dist := !dist +. Float.abs (float_of_int (x - target.(i)))) w.Weights.wd;
    Some (Lexico.make ~lambda:0. ~phi:!dist)
  in
  let config =
    Local_search.{ wmax; interval = 6; rounds = 2; c = 0.001; max_rounds = 10; max_sweeps = 200 }
  in
  let init ~round:_ = Weights.random rng ~num_arcs ~wmax in
  let costs = ref [] in
  let observer (obs : Local_search.observation) =
    if obs.Local_search.accepted then
      match obs.Local_search.cost_after with
      | Some c -> costs := c :: !costs
      | None -> ()
  in
  let result = Local_search.run ~rng ~num_arcs ~eval ~init ~observer config in
  Alcotest.(check (float 1e-9)) "finds the target (wd)" 0. result.Local_search.best_cost.Lexico.phi;
  Weights.validate result.Local_search.best ~wmax;
  (* accepted costs decrease monotonically within each round; at least check
     every accepted move was an improvement over something *)
  Alcotest.(check bool) "made progress" true (List.length !costs > 0);
  Alcotest.(check bool) "evals counted" true (result.Local_search.evals > 0);
  Alcotest.(check bool) "sweeps counted" true (result.Local_search.sweeps > 0)

let test_local_search_respects_infeasible () =
  let rng = Rng.create 2 in
  let num_arcs = 6 and wmax = 5 in
  (* feasible only if arc 0 weight is below 3; objective prefers high total *)
  let eval (w : Weights.t) =
    if w.Weights.wd.(0) >= 3 then None
    else begin
      let total = Array.fold_left ( + ) 0 w.Weights.wd in
      Some (Lexico.make ~lambda:0. ~phi:(-.float_of_int total))
    end
  in
  let init ~round:_ =
    let w = Weights.create ~num_arcs ~init:1 in
    w
  in
  let config =
    Local_search.{ wmax; interval = 4; rounds = 2; c = 0.001; max_rounds = 8; max_sweeps = 100 }
  in
  let result = Local_search.run ~rng ~num_arcs ~eval ~init config in
  Alcotest.(check bool) "solution satisfies the constraint" true
    (result.Local_search.best.Weights.wd.(0) < 3)

let test_local_search_all_infeasible () =
  let rng = Rng.create 3 in
  let config =
    Local_search.{ wmax = 5; interval = 2; rounds = 1; c = 0.001; max_rounds = 2; max_sweeps = 10 }
  in
  Alcotest.check_raises "no feasible start"
    (Invalid_argument "Local_search.run: no feasible starting point") (fun () ->
      ignore
        (Local_search.run ~rng ~num_arcs:4 ~eval:(fun _ -> None)
           ~init:(fun ~round:_ -> Weights.create ~num_arcs:4 ~init:1)
           config))

(* Phase 1 on a real scenario. *)
let phase1_fixture =
  lazy
    (let scenario = Fixtures.small ~seed:21 () in
     let rng = Rng.create 31 in
     (scenario, Phase1.run ~rng scenario))

let test_phase1_output_sane () =
  let scenario, out = Lazy.force phase1_fixture in
  Weights.validate out.Phase1.best ~wmax:scenario.Scenario.params.Scenario.wmax;
  (* reported best cost must equal re-evaluation of the best weights *)
  let check = Eval.cost scenario out.Phase1.best in
  Alcotest.(check bool) "best cost consistent" true (Lexico.equal check out.Phase1.best_cost);
  Alcotest.(check bool) "acceptable pool non-empty" true (out.Phase1.acceptable <> []);
  (* every recorded acceptable setting satisfies Eqs. (5)-(6) *)
  let chi = scenario.Scenario.params.Scenario.chi in
  List.iter
    (fun (_, cost) ->
      Alcotest.(check bool) "lambda constraint" true
        (cost.Lexico.lambda <= out.Phase1.best_cost.Lexico.lambda +. 1e-6);
      Alcotest.(check bool) "phi constraint" true
        (cost.Lexico.phi <= ((1. +. chi) *. out.Phase1.best_cost.Lexico.phi) +. 1e-6))
    out.Phase1.acceptable;
  Alcotest.(check bool) "samples collected" true (out.Phase1.stats.Phase1.samples > 0)

let test_phase1_min_samples () =
  let scenario, out = Lazy.force phase1_fixture in
  (* Phase 1b guarantees the per-arc sample floor (unless the cap hit). *)
  let floor_met =
    Dtr_core.Sampler.min_count out.Phase1.sampler
    >= scenario.Scenario.params.Scenario.min_samples
  in
  let capped =
    out.Phase1.stats.Phase1.phase1b_sweeps
    >= scenario.Scenario.params.Scenario.max_phase1b_rounds
  in
  Alcotest.(check bool) "sample floor or cap" true (floor_met || capped)

let test_phase1_critical_set () =
  let scenario, out = Lazy.force phase1_fixture in
  let sel = Phase1.critical_set scenario out in
  let m = Scenario.num_arcs scenario in
  let expected =
    max 1
      (int_of_float
         (Float.round (scenario.Scenario.params.Scenario.critical_fraction *. float_of_int m)))
  in
  Alcotest.(check bool) "within target size" true (List.length sel <= expected);
  Alcotest.(check bool) "non-empty" true (sel <> []);
  List.iter (fun a -> Alcotest.(check bool) "valid arc ids" true (a >= 0 && a < m)) sel

let test_phase2_constraints_and_gain () =
  let scenario, phase1 = Lazy.force phase1_fixture in
  let rng = Rng.create 41 in
  let critical = Phase1.critical_set scenario phase1 in
  let failures = List.map (fun a -> Failure.Arc a) critical in
  let out = Phase2.run ~rng scenario ~phase1 ~failures in
  (* Eq. (5): no degradation of delay traffic under normal conditions *)
  Alcotest.(check bool) "lambda constraint" true
    (out.Phase2.normal_cost.Lexico.lambda
    <= phase1.Phase1.best_cost.Lexico.lambda +. 1e-6);
  (* Eq. (6): bounded throughput degradation *)
  Alcotest.(check bool) "phi constraint" true
    (out.Phase2.normal_cost.Lexico.phi
    <= (1. +. scenario.Scenario.params.Scenario.chi) *. phase1.Phase1.best_cost.Lexico.phi
       +. 1e-6);
  (* robust solution is at least as good as the regular one on Kfail *)
  let regular_fail = Eval.compound (Eval.sweep scenario phase1.Phase1.best failures) in
  Alcotest.(check bool) "robust no worse on the optimized set" true
    (Lexico.compare out.Phase2.fail_cost regular_fail <= 0);
  (* reported fail cost is consistent with re-evaluation *)
  let recheck = Eval.compound (Eval.sweep scenario out.Phase2.robust failures) in
  Alcotest.(check bool) "fail cost consistent" true
    (Float.abs (recheck.Lexico.lambda -. out.Phase2.fail_cost.Lexico.lambda) < 1e-6)

let test_phase2_rejects_empty_failures () =
  let scenario, phase1 = Lazy.force phase1_fixture in
  let rng = Rng.create 43 in
  Alcotest.check_raises "no scenarios" (Invalid_argument "Phase2.run: no failure scenarios")
    (fun () -> ignore (Phase2.run ~rng scenario ~phase1 ~failures:[]))

(* Optimizer end-to-end. *)

let test_optimize_determinism () =
  let scenario = Fixtures.small ~seed:51 () in
  let s1 = Optimizer.optimize ~rng:(Rng.create 5) scenario in
  let s2 = Optimizer.optimize ~rng:(Rng.create 5) scenario in
  Alcotest.(check bool) "same robust weights" true
    (Weights.equal s1.Optimizer.robust s2.Optimizer.robust);
  Alcotest.(check bool) "same critical set" true
    (s1.Optimizer.critical = s2.Optimizer.critical)

let test_optimize_selectors () =
  let scenario = Fixtures.small ~seed:52 () in
  let m = Scenario.num_arcs scenario in
  let check_selector selector =
    let s = Optimizer.optimize ~rng:(Rng.create 6) ~selector ~fraction:0.2 scenario in
    Alcotest.(check bool) "critical set non-empty" true (s.Optimizer.critical <> []);
    List.iter
      (fun a -> Alcotest.(check bool) "arc ids valid" true (a >= 0 && a < m))
      s.Optimizer.critical;
    s
  in
  let ours = check_selector Optimizer.Ours in
  Alcotest.(check bool) "fraction respected" true
    (List.length ours.Optimizer.critical <= max 1 (int_of_float (Float.round (0.2 *. float_of_int m))));
  let full = check_selector Optimizer.Full in
  Alcotest.(check int) "full search covers all arcs" m (List.length full.Optimizer.critical);
  ignore (check_selector Optimizer.Random_selection);
  ignore (check_selector Optimizer.Load_based);
  ignore (check_selector Optimizer.Fluctuation_based);
  let given = check_selector (Optimizer.Given [ 0; 1; 2 ]) in
  Alcotest.(check (list int)) "given set" [ 0; 1; 2 ] given.Optimizer.critical

let test_optimize_node_failures () =
  let scenario = Fixtures.small ~seed:53 () in
  let s =
    Optimizer.optimize ~rng:(Rng.create 7) ~failure_model:Optimizer.Node_failures scenario
  in
  Alcotest.(check int) "one scenario per node"
    (Scenario.num_nodes scenario)
    (List.length s.Optimizer.failures);
  Alcotest.(check (list int)) "no critical arcs for node model" [] s.Optimizer.critical

(* Baseline selectors. *)

let test_select_random () =
  let rng = Rng.create 8 in
  let sel = Baselines.select_random rng ~num_arcs:20 ~n:5 in
  Alcotest.(check int) "size" 5 (List.length sel);
  Alcotest.(check bool) "sorted distinct" true (List.sort_uniq compare sel = sel)

let test_select_load_based () =
  let scenario, phase1 = Lazy.force phase1_fixture in
  let sel = Baselines.select_load_based scenario ~phase1 ~n:4 in
  Alcotest.(check int) "size" 4 (List.length sel);
  (* selected arcs are the highest-utilization ones under the best setting *)
  let detail = Eval.evaluate scenario phase1.Phase1.best in
  let g = scenario.Scenario.graph in
  let util id =
    detail.Eval.loads.(id) /. (Dtr_topology.Graph.arc g id).Dtr_topology.Graph.capacity
  in
  let min_sel = List.fold_left (fun acc a -> Float.min acc (util a)) Float.infinity sel in
  let m = Scenario.num_arcs scenario in
  let better = ref 0 in
  for id = 0 to m - 1 do
    if (not (List.mem id sel)) && util id > min_sel +. 1e-12 then incr better
  done;
  Alcotest.(check int) "no unselected arc beats the selection" 0 !better

let test_select_fluctuation () =
  let scenario, phase1 = Lazy.force phase1_fixture in
  let sel = Baselines.select_fluctuation scenario ~phase1 ~n:4 in
  Alcotest.(check int) "size" 4 (List.length sel)

let suite =
  [
    Alcotest.test_case "local search descends to target" `Quick test_local_search_descends;
    Alcotest.test_case "local search respects infeasibility" `Quick
      test_local_search_respects_infeasible;
    Alcotest.test_case "local search with no feasible start" `Quick
      test_local_search_all_infeasible;
    Alcotest.test_case "phase 1 output invariants" `Slow test_phase1_output_sane;
    Alcotest.test_case "phase 1 sample floor" `Slow test_phase1_min_samples;
    Alcotest.test_case "phase 1c critical set" `Slow test_phase1_critical_set;
    Alcotest.test_case "phase 2 constraints and gain" `Slow test_phase2_constraints_and_gain;
    Alcotest.test_case "phase 2 input validation" `Slow test_phase2_rejects_empty_failures;
    Alcotest.test_case "optimizer determinism" `Slow test_optimize_determinism;
    Alcotest.test_case "optimizer selectors" `Slow test_optimize_selectors;
    Alcotest.test_case "optimizer node-failure model" `Slow test_optimize_node_failures;
    Alcotest.test_case "random selection" `Quick test_select_random;
    Alcotest.test_case "load-based selection" `Slow test_select_load_based;
    Alcotest.test_case "fluctuation-based selection" `Slow test_select_fluctuation;
  ]
