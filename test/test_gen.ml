(* Tests for Dtr_topology.Gen (topology generators). *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen

let test_rand_shape () =
  let rng = Rng.create 1 in
  let g = Gen.rand rng ~nodes:30 ~degree:6. in
  Alcotest.(check int) "nodes" 30 (Graph.num_nodes g);
  Alcotest.(check int) "arcs (paper's [30,180])" 180 (Graph.num_arcs g);
  Alcotest.(check bool) "strongly connected" true (Graph.strongly_connected g);
  Alcotest.(check bool) "has coordinates" true (Graph.coords g <> None)

let test_near_shape () =
  let rng = Rng.create 2 in
  let g = Gen.near rng ~nodes:30 ~degree:6. in
  Alcotest.(check int) "arcs" 180 (Graph.num_arcs g);
  Alcotest.(check bool) "strongly connected" true (Graph.strongly_connected g)

let test_near_prefers_short_edges () =
  let rng = Rng.create 3 in
  let near = Gen.near (Rng.copy rng) ~nodes:30 ~degree:6. in
  let rand = Gen.rand rng ~nodes:30 ~degree:6. in
  (* NearTopo connects closest neighbours, so its mean link delay must be
     well below RandTopo's under the same scaling target. *)
  let mean_delay g =
    let ds = Array.map (fun a -> a.Graph.delay) (Graph.arcs g) in
    Dtr_util.Stat.mean ds
  in
  Alcotest.(check bool) "near links shorter" true (mean_delay near < mean_delay rand)

let test_power_law_shape () =
  let rng = Rng.create 4 in
  let g = Gen.power_law rng ~nodes:30 ~m_attach:3 in
  (* clique of 4 (6 edges) + 26 * 3 = 84 edges = 168 arcs *)
  Alcotest.(check int) "arcs" 168 (Graph.num_arcs g);
  Alcotest.(check bool) "strongly connected" true (Graph.strongly_connected g)

let test_power_law_skew () =
  let rng = Rng.create 5 in
  let g = Gen.power_law rng ~nodes:60 ~m_attach:2 in
  (* preferential attachment yields hubs: max degree far above the mean *)
  let deg = Array.make 60 0 in
  Array.iter (fun a -> deg.(a.Graph.src) <- deg.(a.Graph.src) + 1) (Graph.arcs g);
  let max_deg = Array.fold_left max 0 deg in
  let mean_deg = float_of_int (Graph.num_arcs g) /. 60. in
  Alcotest.(check bool) "hub exists" true (float_of_int max_deg > 2. *. mean_deg)

let test_isp_shape () =
  let g = Gen.isp_backbone () in
  Alcotest.(check int) "nodes" 16 (Graph.num_nodes g);
  Alcotest.(check int) "arcs (paper's [16,70])" 70 (Graph.num_arcs g);
  Alcotest.(check bool) "strongly connected" true (Graph.strongly_connected g);
  (* coast-to-coast span: some link should be over 5 ms, none over 25 ms *)
  let delays = Array.map (fun a -> a.Graph.delay) (Graph.arcs g) in
  Alcotest.(check bool) "long-haul links exist" true
    (Array.exists (fun d -> d > 0.005) delays);
  Alcotest.(check bool) "no absurd delay" true (Array.for_all (fun d -> d < 0.025) delays)

let test_diameter_scaling () =
  let rng = Rng.create 6 in
  let options = { Gen.default_options with Gen.target_diameter = 0.030 } in
  let g = Gen.rand ~options rng ~nodes:20 ~degree:5. in
  (* propagation diameter should be close to the 30 ms target *)
  let weights = Array.map (fun a -> 1 + int_of_float (a.Graph.delay *. 1e6)) (Graph.arcs g) in
  let diameter = ref 0 in
  for dest = 0 to 19 do
    let d = Dtr_spf.Dijkstra.to_destination g ~weights ~dest () in
    Array.iter (fun x -> if x < Dtr_spf.Dijkstra.infinity && x > !diameter then diameter := x) d
  done;
  let diameter_s = float_of_int !diameter /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "diameter %.4f within 20%% of target" diameter_s)
    true
    (diameter_s > 0.024 && diameter_s < 0.037)

let test_determinism () =
  let g1 = Gen.rand (Rng.create 77) ~nodes:20 ~degree:5. in
  let g2 = Gen.rand (Rng.create 77) ~nodes:20 ~degree:5. in
  Alcotest.(check int) "same arc count" (Graph.num_arcs g1) (Graph.num_arcs g2);
  Array.iteri
    (fun i a ->
      let b = (Graph.arcs g2).(i) in
      Alcotest.(check (pair int int)) "same arcs" (a.Graph.src, a.Graph.dst)
        (b.Graph.src, b.Graph.dst))
    (Graph.arcs g1)

let test_degree_too_small () =
  let rng = Rng.create 8 in
  Alcotest.check_raises "unconnectable degree"
    (Invalid_argument "Gen: degree too small for a connected graph") (fun () ->
      ignore (Gen.rand rng ~nodes:30 ~degree:0.5))

let test_generate_dispatch () =
  let rng = Rng.create 9 in
  let kinds = [ Gen.Rand_topo; Gen.Near_topo; Gen.Pl_topo; Gen.Isp ] in
  List.iter
    (fun kind ->
      let g = Gen.generate rng kind ~nodes:16 ~degree:4. in
      Alcotest.(check bool)
        (Gen.kind_name kind ^ " connected")
        true (Graph.strongly_connected g))
    kinds

let prop_generators_connected =
  QCheck.Test.make ~name:"generated topologies are strongly connected" ~count:30
    QCheck.(pair (int_range 6 40) (int_range 0 1000))
    (fun (nodes, seed) ->
      let rng = Rng.create seed in
      let g = Gen.rand rng ~nodes ~degree:4. in
      Graph.strongly_connected g
      &&
      let g = Gen.near (Rng.create (seed + 1)) ~nodes ~degree:4. in
      Graph.strongly_connected g)

let suite =
  [
    Alcotest.test_case "RandTopo shape" `Quick test_rand_shape;
    Alcotest.test_case "NearTopo shape" `Quick test_near_shape;
    Alcotest.test_case "NearTopo uses short edges" `Quick test_near_prefers_short_edges;
    Alcotest.test_case "PLTopo shape" `Quick test_power_law_shape;
    Alcotest.test_case "PLTopo degree skew" `Quick test_power_law_skew;
    Alcotest.test_case "ISP backbone shape" `Quick test_isp_shape;
    Alcotest.test_case "diameter scaling" `Quick test_diameter_scaling;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "degree validation" `Quick test_degree_too_small;
    Alcotest.test_case "generate dispatch" `Quick test_generate_dispatch;
    QCheck_alcotest.to_alcotest prop_generators_connected;
  ]
