(* Tests for the dtr-serve daemon stack (dtr_serve): the warm-vs-cold
   identity contract — a long-lived daemon's [reoptimize full] after a
   stream of perturbation events is byte-identical to a cold optimize on the
   final matrices, at any job count — plus the pricing LRU (eviction must
   never change results, only latency) and the dtr-serve/1 protocol
   parser/printer. *)

module Rng = Dtr_util.Rng
module Json = Dtr_util.Json
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Gravity = Dtr_traffic.Gravity
module Scaling = Dtr_traffic.Scaling
module Perturb = Dtr_traffic.Perturb
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Optimizer = Dtr_core.Optimizer
module Lexico = Dtr_cost.Lexico
module Exec = Dtr_exec.Exec
module Lru_int = Dtr_util.Lru.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

module Lru_str = Dtr_util.Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

module Protocol = Dtr_serve.Protocol
module Daemon = Dtr_serve.Daemon

(* The same construction as dtr-serve's default startup path (and
   dtr-opt's): generation from [seed], optimization from [seed + 1]. *)
let build_scenario ~seed ~nodes =
  let rng = Rng.create seed in
  let graph = Gen.generate rng Gen.Rand_topo ~nodes ~degree:4. in
  let rd, rt = Gravity.pair rng ~nodes:(Graph.num_nodes graph) ~total:1000. in
  let rd, rt =
    Scaling.calibrate graph ~rd ~rt (Scaling.Avg_utilization 0.43)
  in
  Scenario.make ~graph ~rd ~rt ~params:Scenario.quick_params

let make_daemon ?(cache_capacity = 16) ?metrics ~scenario ~incumbent ~critical
    ~seed ~exec () =
  Daemon.create
    {
      Daemon.scenario;
      incumbent;
      critical;
      fraction = Some 0.15;
      seed;
      exec;
      cache_capacity;
      metrics;
    }

(* Feed one request line and fail the test on an error envelope. *)
let ok_line d line =
  let resp, _continue = Daemon.handle_line d line in
  let j = match Json.parse resp with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparseable response %S: %s" resp e
  in
  (match Json.member "ok" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.failf "request %S failed: %s" line resp);
  j

(* --- warm-vs-cold identity ----------------------------------------------- *)

(* The daemon's synthetic perturbation stream: two gaussian shocks and a
   hot-spot surge, exactly as the protocol parses them. *)
let tm_events =
  [
    {|{"id": 1, "event": "tm_update", "model": "gaussian", "eps": 0.1}|};
    {|{"id": 2, "event": "tm_update", "model": "hotspot", "direction": "download"}|};
    {|{"id": 3, "event": "tm_update", "model": "gaussian", "eps": 0.25}|};
  ]

let replayed_events =
  [
    Perturb.Gaussian { eps = 0.1 };
    Perturb.Hotspot { spec = Perturb.default_hotspot; direction = Perturb.Download };
    Perturb.Gaussian { eps = 0.25 };
  ]

(* A daemon that lived through N tm_update events — plus unrelated history:
   evals, a link flap, a bounded warm re-optimization — must produce, on
   [reoptimize full], exactly the weights a cold [dtr-opt optimize] computes
   on the final matrices.  The keystone is the fresh (seed + 1) stream the
   full re-optimization builds; the noise events prove the identity is
   history-independent.  Checked at jobs = 1 and jobs = 2, which must also
   agree with each other (bit-identity across job counts). *)
let test_warm_vs_cold_identity () =
  let seed = 424 in
  let nodes = 8 in
  let scenario = build_scenario ~seed ~nodes in
  let serial = Exec.of_jobs 1 in
  let startup =
    Optimizer.optimize ~rng:(Rng.create (seed + 1)) ~fraction:0.15 ~exec:serial
      scenario
  in
  (* Out-of-process replay of the perturbation stream: same (seed + 2)
     stream, same rd-then-rt draw order. *)
  let prng = Rng.create (seed + 2) in
  let rd, rt =
    List.fold_left
      (fun (rd, rt) ev -> Perturb.apply_event prng ~rd ~rt ev)
      (scenario.Scenario.rd, scenario.Scenario.rt)
      replayed_events
  in
  let final_scenario = Scenario.with_traffic scenario ~rd ~rt in
  let daemon_incumbent exec =
    let d =
      make_daemon ~scenario ~incumbent:startup.Optimizer.robust
        ~critical:startup.Optimizer.critical ~seed ~exec ()
    in
    List.iter (fun line -> ignore (ok_line d line)) tm_events;
    (* History that must NOT leak into the full re-optimization. *)
    ignore (ok_line d {|{"id": 4, "event": "eval"}|});
    ignore (ok_line d {|{"id": 5, "event": "link_down", "arc": 0}|});
    ignore (ok_line d {|{"id": 6, "event": "eval", "failure": {"arc": 2}}|});
    ignore (ok_line d {|{"id": 7, "event": "link_up", "arc": 0}|});
    ignore
      (ok_line d
         {|{"id": 8, "event": "reoptimize", "mode": "warm", "max_sweeps": 3, "max_rounds": 1}|});
    ignore (ok_line d {|{"id": 9, "event": "reoptimize", "mode": "full"}|});
    Daemon.incumbent d
  in
  let cold exec =
    (Optimizer.optimize ~rng:(Rng.create (seed + 1)) ~fraction:0.15 ~exec
       final_scenario)
      .Optimizer.robust
  in
  let d1 = daemon_incumbent serial in
  Alcotest.(check bool) "daemon full == cold optimize (jobs = 1)" true
    (Weights.equal d1 (cold serial));
  let two = Exec.of_jobs 2 in
  let d2 = daemon_incumbent two in
  Alcotest.(check bool) "daemon full == cold optimize (jobs = 2)" true
    (Weights.equal d2 (cold two));
  Alcotest.(check bool) "jobs = 1 and jobs = 2 daemons agree" true
    (Weights.equal d1 d2)

(* Warm re-optimization never worsens the incumbent's objective, and spends
   no more than its budget. *)
let test_warm_start_monotone () =
  let seed = 77 in
  let scenario = build_scenario ~seed ~nodes:8 in
  let incumbent = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  let budget = Optimizer.{ max_sweeps = 5; max_rounds = 2 } in
  let r =
    Optimizer.warm_start ~rng:(Rng.create 1) ~budget ~incumbent scenario
  in
  Alcotest.(check bool) "objective <= start objective" true
    (Lexico.compare r.Optimizer.objective r.Optimizer.start_objective <= 0);
  Alcotest.(check bool) "sweep budget respected" true
    (r.Optimizer.warm_sweeps <= budget.Optimizer.max_sweeps * budget.Optimizer.max_rounds)

(* A recovery target at the incumbent's own objective stops the repair
   before it runs a single sweep; an unreachable target exhausts the budget
   and stops exactly where the untargeted run does (shared trajectory). *)
let test_warm_start_target () =
  let seed = 78 in
  let scenario = build_scenario ~seed ~nodes:8 in
  let incumbent = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  let budget = Optimizer.{ max_sweeps = 3; max_rounds = 1 } in
  let free =
    Optimizer.warm_start ~rng:(Rng.create 1) ~budget ~incumbent scenario
  in
  let at_start =
    Optimizer.warm_start ~rng:(Rng.create 1) ~budget
      ~target:free.Optimizer.start_objective ~incumbent scenario
  in
  Alcotest.(check int) "target at start objective: no sweeps" 0
    at_start.Optimizer.warm_sweeps;
  Alcotest.(check bool) "target at start objective: incumbent returned" true
    (Weights.equal at_start.Optimizer.weights incumbent);
  let unreachable =
    Optimizer.warm_start ~rng:(Rng.create 1) ~budget
      ~target:Lexico.{ lambda = -1.; phi = 0. }
      ~incumbent scenario
  in
  Alcotest.(check bool) "unreachable target: same result as untargeted" true
    (Weights.equal unreachable.Optimizer.weights free.Optimizer.weights);
  Alcotest.(check int) "unreachable target: same sweep count"
    free.Optimizer.warm_sweeps unreachable.Optimizer.warm_sweeps

(* --- LRU ------------------------------------------------------------------ *)

type lru_op = Op_add of int * int | Op_find of int | Op_clear

let lru_op_gen =
  QCheck2.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Op_add (k, v)) (int_bound 12) (int_bound 1000));
        (4, map (fun k -> Op_find k) (int_bound 12));
        (1, return Op_clear);
      ])

let lru_ops_print ops =
  String.concat "; "
    (List.map
       (function
         | Op_add (k, v) -> Printf.sprintf "add %d %d" k v
         | Op_find k -> Printf.sprintf "find %d" k
         | Op_clear -> "clear")
       ops)

(* Model check against an unbounded association list: a bounded LRU may
   forget (eviction), but a [find] must never return a value other than the
   most recently added one for that key, and occupancy never exceeds
   capacity.  This is the "eviction never changes results" contract the
   daemon's pricing cache relies on: a hit is always the true answer. *)
let prop_lru_never_lies =
  QCheck2.Test.make ~name:"lru: finds are exact, occupancy bounded" ~count:500
    QCheck2.Gen.(
      pair (int_range 1 6) (list_size (int_bound 40) lru_op_gen))
    ~print:(fun (cap, ops) ->
      Printf.sprintf "capacity %d, ops [%s]" cap (lru_ops_print ops))
    (fun (capacity, ops) ->
      let lru = Lru_int.create ~capacity in
      let model = Hashtbl.create 16 in
      List.iter
        (function
          | Op_add (k, v) ->
              Lru_int.add lru k v;
              Hashtbl.replace model k v
          | Op_find k -> (
              match Lru_int.find lru k with
              | None -> ()
              | Some v ->
                  let expected = Hashtbl.find_opt model k in
                  if expected <> Some v then
                    QCheck2.Test.fail_reportf
                      "find %d returned %d, model says %s" k v
                      (match expected with
                      | Some e -> string_of_int e
                      | None -> "absent"))
          | Op_clear ->
              Lru_int.clear lru;
              Hashtbl.reset model)
        ops;
      Lru_int.length lru <= capacity)

(* A key added while there is spare capacity must be found back immediately:
   the structure only forgets under pressure. *)
let test_lru_basics () =
  let l = Lru_str.create ~capacity:2 in
  Lru_str.add l "a" 1;
  Lru_str.add l "b" 2;
  Alcotest.(check (option int)) "a resident" (Some 1) (Lru_str.find l "a");
  (* "b" is now least-recent; adding "c" evicts it. *)
  Lru_str.add l "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru_str.find l "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (Lru_str.find l "a");
  Alcotest.(check (option int)) "c resident" (Some 3) (Lru_str.find l "c");
  let s = Lru_str.stats l in
  Alcotest.(check int) "one eviction" 1 s.Dtr_util.Lru.evictions;
  Alcotest.(check int) "length bounded" 2 s.Dtr_util.Lru.length;
  (match Lru_str.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected")

(* Daemon-level restatement of the same contract: a capacity-1 cache (evicts
   on nearly every query) and a roomy one answer an identical event stream
   with identical results — only the "cached" flag may differ. *)
let test_eval_capacity_independence () =
  let seed = 99 in
  let scenario = build_scenario ~seed ~nodes:8 in
  let incumbent = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  let queries =
    [
      {|{"id": 1, "event": "eval"}|};
      {|{"id": 2, "event": "eval", "failure": {"arc": 1}}|};
      {|{"id": 3, "event": "eval", "failure": {"arc": 2}}|};
      {|{"id": 4, "event": "eval", "failure": {"arc": 1}}|};
      {|{"id": 5, "event": "eval"}|};
      {|{"id": 6, "event": "link_down", "arc": 3}|};
      {|{"id": 7, "event": "eval"}|};
      {|{"id": 8, "event": "eval", "failure": {"edge": 1}}|};
      {|{"id": 9, "event": "link_up", "arc": 3}|};
      {|{"id": 10, "event": "eval"}|};
      {|{"id": 11, "event": "eval", "failure": {"node": 2}}|};
    ]
  in
  let run capacity =
    let d =
      make_daemon ~cache_capacity:capacity ~scenario ~incumbent ~critical:[]
        ~seed ~exec:(Exec.of_jobs 1) ()
    in
    List.map
      (fun line ->
        let j = ok_line d line in
        (* Everything but the cache-hit flag must match. *)
        match Json.member "result" j with
        | Some (Json.Obj fields) ->
            Json.to_string
              (Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields))
        | other -> Json.to_string (Option.value ~default:Json.Null other))
      queries
  in
  let tight = run 1 and roomy = run 64 in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "query %d result independent of capacity" (i + 1))
        b a)
    (List.combine tight roomy)

(* --- protocol ------------------------------------------------------------- *)

let test_protocol_parse () =
  (match Protocol.parse_request {|{"id": 3, "event": "eval", "failure": {"arc": 7}}|} with
  | Ok { Protocol.id = 3; event = Protocol.Eval { failure = Some (Protocol.F_arc (Protocol.By_id 7)) } } -> ()
  | Ok _ -> Alcotest.fail "parsed to the wrong event"
  | Error (_, m) -> Alcotest.failf "parse failed: %s" m);
  (match Protocol.parse_request {|{"id": 4, "event": "eval", "failure": {"src": 1, "dst": 2}}|} with
  | Ok { Protocol.event = Protocol.Eval { failure = Some (Protocol.F_arc (Protocol.By_endpoints (1, 2))) }; _ } -> ()
  | _ -> Alcotest.fail "src/dst failure spec");
  (match Protocol.parse_request {|{"id": 5, "event": "reoptimize"}|} with
  | Ok { Protocol.event = Protocol.Reoptimize { mode = Protocol.Warm; max_sweeps = None; max_rounds = None; target = None }; _ } -> ()
  | _ -> Alcotest.fail "reoptimize defaults to warm with no overrides");
  (match
     Protocol.parse_request
       {|{"id": 5, "event": "reoptimize", "target_lambda": 1200.5, "target_phi": 3e6}|}
   with
  | Ok { Protocol.event = Protocol.Reoptimize { target = Some (l, p); _ }; _ } ->
      Alcotest.(check (float 1e-9)) "target lambda" 1200.5 l;
      Alcotest.(check (float 1e-9)) "target phi" 3e6 p
  | _ -> Alcotest.fail "reoptimize recovery target");
  (match Protocol.parse_request {|{"id": 6, "event": "tm_update", "model": "gaussian", "eps": 0.2}|} with
  | Ok { Protocol.event = Protocol.Tm_update (Perturb.Gaussian { eps }); _ } ->
      Alcotest.(check (float 1e-9)) "eps carried" 0.2 eps
  | _ -> Alcotest.fail "gaussian tm_update");
  match Protocol.parse_request {|{"id": 7, "event": "link_down", "arc": 12}|} with
  | Ok { Protocol.event = Protocol.Link_down (Protocol.By_id 12); _ } -> ()
  | _ -> Alcotest.fail "link_down by arc id"

let expect_error line code =
  match Protocol.parse_request line with
  | Error (c, _) when c = code -> ()
  | Error (c, m) ->
      Alcotest.failf "expected %s for %S, got %s: %s"
        (Protocol.error_code_name code) line (Protocol.error_code_name c) m
  | Ok _ -> Alcotest.failf "expected %s for %S" (Protocol.error_code_name code) line

let test_protocol_errors () =
  expect_error "nonsense" Protocol.Parse_error;
  expect_error {|[1, 2]|} Protocol.Parse_error;
  expect_error {|{"event": "hello"}|} Protocol.Bad_request;
  expect_error {|{"id": 1.5, "event": "hello"}|} Protocol.Bad_request;
  expect_error {|{"id": 1, "event": "frobnicate"}|} Protocol.Unknown_event;
  expect_error {|{"id": 1, "event": "tm_update", "model": "gaussian"}|}
    Protocol.Bad_request;
  expect_error {|{"id": 1, "event": "tm_update", "model": "weird"}|}
    Protocol.Bad_request;
  expect_error {|{"id": 1, "event": "link_down"}|} Protocol.Bad_request

(* Response envelopes parse back with the documented shape. *)
let test_protocol_envelopes () =
  let ok = Protocol.ok_response ~id:9 ~event:"eval" (Json.Obj [ ("x", Json.Num 1.) ]) in
  (match Json.parse ok with
  | Error e -> Alcotest.failf "ok envelope unparseable: %s" e
  | Ok j ->
      (match Json.member "schema" j with
      | Some (Json.Str s) -> Alcotest.(check string) "schema" Protocol.schema s
      | _ -> Alcotest.fail "schema field");
      (match Json.member "ok" j with
      | Some (Json.Bool b) -> Alcotest.(check bool) "ok flag" true b
      | _ -> Alcotest.fail "ok field");
      match Json.member "id" j with
      | Some (Json.Num n) -> Alcotest.(check (float 0.)) "id echoed" 9. n
      | _ -> Alcotest.fail "id field");
  let err =
    Protocol.error_response ~id:None ~code:Protocol.Parse_error ~message:{|bad "x"|}
  in
  match Json.parse err with
  | Error e -> Alcotest.failf "error envelope unparseable: %s" e
  | Ok j -> (
      (match Json.member "id" j with
      | Some Json.Null -> ()
      | _ -> Alcotest.fail "unparsed id must be null");
      match Json.member "error" j with
      | Some (Json.Obj _ as e) -> (
          match Json.member "code" e with
          | Some (Json.Str s) -> Alcotest.(check string) "code name" "parse_error" s
          | _ -> Alcotest.fail "code field")
      | _ -> Alcotest.fail "error object")

(* The daemon never raises on hostile input, and shutdown is the only line
   that stops the loop. *)
let test_daemon_error_envelopes () =
  let seed = 5 in
  let scenario = build_scenario ~seed ~nodes:8 in
  let d =
    make_daemon ~scenario
      ~incumbent:(Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1)
      ~critical:[] ~seed ~exec:(Exec.of_jobs 1) ()
  in
  let expect_err line code =
    let resp, continue = Daemon.handle_line d line in
    Alcotest.(check bool) (Printf.sprintf "%S keeps the loop alive" line) true continue;
    match Json.parse resp with
    | Error e -> Alcotest.failf "unparseable error envelope: %s" e
    | Ok j -> (
        match Json.member "error" j with
        | Some (Json.Obj _ as e) -> (
            match Json.member "code" e with
            | Some (Json.Str s) -> Alcotest.(check string) "error code" code s
            | _ -> Alcotest.fail "code field")
        | _ -> Alcotest.failf "expected an error envelope, got %s" resp)
  in
  expect_err "garbage" "parse_error";
  expect_err {|{"id": 1, "event": "eval", "failure": {"arc": 100000}}|} "bad_arc";
  expect_err {|{"id": 2, "event": "link_up", "arc": 1}|} "bad_arc";
  expect_err {|{"id": 3, "event": "eval", "failure": {"src": 0, "dst": 0}}|} "bad_arc";
  (* Node what-if over failed links: documented rejection. *)
  ignore (ok_line d {|{"id": 4, "event": "link_down", "arc": 1}|});
  expect_err {|{"id": 5, "event": "eval", "failure": {"node": 1}}|} "bad_request";
  let _, continue = Daemon.handle_line d {|{"id": 6, "event": "shutdown"}|} in
  Alcotest.(check bool) "shutdown stops the loop" false continue

(* --- telemetry ------------------------------------------------------------ *)

let telemetry_events =
  [
    {|{"id": 1, "event": "eval"}|};
    {|{"id": 2, "event": "tm_update", "model": "gaussian", "eps": 0.1}|};
    {|{"id": 3, "event": "eval", "failure": {"arc": 1}}|};
    {|{"id": 4, "event": "eval", "failure": {"arc": 1}}|};
    {|{"id": 5, "event": "link_down", "arc": 2}|};
    {|{"id": 6, "event": "eval"}|};
    {|{"id": 7, "event": "link_up", "arc": 2}|};
    {|{"id": 8, "event": "reoptimize", "mode": "warm", "max_sweeps": 2, "max_rounds": 1}|};
  ]

(* The metrics request returns a complete OpenMetrics exposition inline,
   and the exposition passes the same validator CI runs (well-formed
   families, cumulative buckets, +Inf = _count). *)
let test_metrics_request () =
  let seed = 31 in
  let scenario = build_scenario ~seed ~nodes:8 in
  let d =
    make_daemon ~scenario
      ~incumbent:(Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1)
      ~critical:[] ~seed ~exec:(Exec.of_jobs 1) ()
  in
  List.iter (fun l -> ignore (ok_line d l)) telemetry_events;
  let j = ok_line d {|{"id": 9, "event": "metrics"}|} in
  let exposition =
    match Json.member "result" j with
    | Some r -> (
        match Json.member "exposition" r with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.fail "metrics result carries no exposition string")
    | None -> Alcotest.fail "metrics response has no result"
  in
  let contains needle =
    let nn = String.length needle and hn = String.length exposition in
    let rec go i =
      i + nn <= hn && (String.sub exposition i nn = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition contains " ^ needle) true
        (contains needle))
    [
      "# TYPE dtr_serve_events counter";
      "# TYPE dtr_serve_latency_seconds histogram";
      {|dtr_serve_latency_seconds_bucket{event="eval",le="+Inf"}|};
      "# TYPE dtr_serve_cache_ops counter";
      "dtr_serve_events_per_second";
      "# EOF";
    ];
  match Dtr_cli.Trace_cmd.metrics_check exposition with
  | Error e -> Alcotest.failf "exposition fails metrics-check: %s" e
  | Ok r ->
      Alcotest.(check int) "one snapshot" 1 r.Dtr_cli.Trace_cmd.m_snapshots;
      Alcotest.(check (list string)) "no violations" []
        r.Dtr_cli.Trace_cmd.m_violations

(* stats now carries the rolling-rate denominators: cache lookups, hit rate,
   occupancy, warm_evals and the rolling window block. *)
let test_stats_telemetry_fields () =
  let seed = 32 in
  let scenario = build_scenario ~seed ~nodes:8 in
  let d =
    make_daemon ~scenario
      ~incumbent:(Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1)
      ~critical:[] ~seed ~exec:(Exec.of_jobs 1) ()
  in
  ignore (ok_line d {|{"id": 1, "event": "eval"}|});
  ignore (ok_line d {|{"id": 2, "event": "eval"}|});
  let j = ok_line d {|{"id": 3, "event": "stats"}|} in
  let result = Option.get (Json.member "result" j) in
  let cache = Option.get (Json.member "cache" result) in
  (match Json.member "lookups" cache with
  | Some (Json.Num n) ->
      Alcotest.(check bool) "lookups counted" true (n >= 2.)
  | _ -> Alcotest.fail "cache.lookups missing");
  (match Json.member "hit_rate" cache with
  | Some (Json.Num r) ->
      Alcotest.(check bool) "hit_rate in [0,1]" true (r >= 0. && r <= 1.)
  | _ -> Alcotest.fail "cache.hit_rate missing");
  (match Json.member "occupancy" cache with
  | Some (Json.Num r) ->
      Alcotest.(check bool) "occupancy in [0,1]" true (r >= 0. && r <= 1.)
  | _ -> Alcotest.fail "cache.occupancy missing");
  (match Json.member "evictions" cache with
  | Some (Json.Num _) -> ()
  | _ -> Alcotest.fail "cache.evictions missing");
  (match Json.member "pruning" result with
  | Some p -> (
      match Json.member "warm_evals" p with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "pruning.warm_evals missing")
  | None -> Alcotest.fail "pruning missing");
  match Json.member "rolling" result with
  | Some r ->
      List.iter
        (fun k ->
          match Json.member k r with
          | Some (Json.Num _) -> ()
          | _ -> Alcotest.failf "rolling.%s missing" k)
        [ "window_seconds"; "events_per_second"; "cache_hit_rate"; "abort_rate" ]
  | None -> Alcotest.fail "rolling missing"

(* The PR-4 invariant extended to the new telemetry: a daemon with the
   OpenMetrics sink dumping after every event and the JSONL log attached
   answers a fixed-seed event stream identically to an uninstrumented
   daemon — same responses (wall-clock fields excepted), same incumbent —
   and two instrumented runs agree with each other. *)
let test_telemetry_never_perturbs () =
  let seed = 33 in
  let scenario = build_scenario ~seed ~nodes:8 in
  let wallclock = [ "seconds"; "phase1_seconds"; "phase2_seconds" ] in
  let run ~instrumented =
    let log_file =
      if instrumented then Some (Filename.temp_file "dtr_test_serve" ".jsonl")
      else None
    in
    Dtr_obs.Log.set_path log_file;
    let metrics =
      if instrumented then
        Some { Daemon.write = (fun (_ : string) -> ()); every = 1 }
      else None
    in
    let d =
      make_daemon ?metrics ~scenario
        ~incumbent:(Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1)
        ~critical:[] ~seed ~exec:(Exec.of_jobs 1) ()
    in
    let responses =
      List.map
        (fun line ->
          let j = ok_line d line in
          let rec strip = function
            | Json.Obj fields ->
                Json.Obj
                  (List.filter_map
                     (fun (k, v) ->
                       if List.mem k wallclock then None else Some (k, strip v))
                     fields)
            | Json.Arr xs -> Json.Arr (List.map strip xs)
            | other -> other
          in
          Json.to_string (strip j))
        telemetry_events
    in
    Dtr_obs.Log.set_path None;
    Option.iter Sys.remove log_file;
    (responses, Daemon.incumbent d)
  in
  let off_resp, off_w = run ~instrumented:false in
  let on_resp, on_w = run ~instrumented:true in
  let on2_resp, on2_w = run ~instrumented:true in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "event %d response identical on/off" (i + 1))
        a b)
    (List.combine off_resp on_resp);
  Alcotest.(check bool) "incumbent identical on/off" true
    (Weights.equal off_w on_w);
  Alcotest.(check bool) "two instrumented runs agree" true
    (Weights.equal on_w on2_w && on_resp = on2_resp)

let suite =
  [
    Alcotest.test_case "warm-vs-cold identity (jobs 1 and 2)" `Slow
      test_warm_vs_cold_identity;
    Alcotest.test_case "warm_start is monotone and budgeted" `Quick
      test_warm_start_monotone;
    Alcotest.test_case "warm_start recovery target stops the repair" `Quick
      test_warm_start_target;
    Alcotest.test_case "lru basics and eviction order" `Quick test_lru_basics;
    QCheck_alcotest.to_alcotest prop_lru_never_lies;
    Alcotest.test_case "eval results independent of cache capacity" `Quick
      test_eval_capacity_independence;
    Alcotest.test_case "protocol: request parsing" `Quick test_protocol_parse;
    Alcotest.test_case "protocol: parse errors" `Quick test_protocol_errors;
    Alcotest.test_case "protocol: response envelopes" `Quick
      test_protocol_envelopes;
    Alcotest.test_case "daemon: error envelopes, shutdown" `Quick
      test_daemon_error_envelopes;
    Alcotest.test_case "metrics request: inline OpenMetrics exposition" `Quick
      test_metrics_request;
    Alcotest.test_case "stats: cache and rolling telemetry fields" `Quick
      test_stats_telemetry_fields;
    Alcotest.test_case "telemetry never perturbs (fixed-seed identity)" `Quick
      test_telemetry_never_perturbs;
  ]
