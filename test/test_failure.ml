(* Tests for Dtr_topology.Failure. *)

module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure

let edge u v = Graph.{ u; v; cap = 500.; prop = 0.005 }

let square () = Graph.of_edges ~n:4 [ edge 0 1; edge 1 2; edge 2 3; edge 3 0 ]

let test_arc_mask () =
  let g = square () in
  let m = Failure.mask g (Failure.Arc 2) in
  Alcotest.(check int) "one arc down" 1
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m);
  Alcotest.(check bool) "right arc" true m.(2)

let test_edge_mask () =
  let g = square () in
  let m = Failure.mask g (Failure.Edge 2) in
  Alcotest.(check bool) "arc down" true m.(2);
  Alcotest.(check bool) "reverse down" true m.(3);
  Alcotest.(check int) "exactly two" 2
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m)

let test_node_mask () =
  let g = square () in
  let m = Failure.mask g (Failure.Node 1) in
  (* node 1 touches edges (0,1) and (1,2): arcs 0,1,2,3 *)
  Alcotest.(check (list bool)) "incident arcs down"
    [ true; true; true; true; false; false; false; false ]
    (Array.to_list m)

let test_no_failure_mask () =
  let g = square () in
  let m = Failure.mask g Failure.No_failure in
  Alcotest.(check bool) "nothing down" true (Array.for_all not m)

let test_arcs_mask () =
  let g = square () in
  let m = Failure.mask g (Failure.Arcs [ 0; 5 ]) in
  Alcotest.(check bool) "both down" true (m.(0) && m.(5));
  Alcotest.(check int) "exactly two" 2
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m)

let test_set_mask_clears () =
  let g = square () in
  let m = Failure.mask g (Failure.Arc 0) in
  Failure.set_mask g (Failure.Arc 5) m;
  Alcotest.(check bool) "old cleared" false m.(0);
  Alcotest.(check bool) "new set" true m.(5)

let test_excluded_node () =
  Alcotest.(check (option int)) "node" (Some 3) (Failure.excluded_node (Failure.Node 3));
  Alcotest.(check (option int)) "arc" None (Failure.excluded_node (Failure.Arc 0))

let test_all_scenarios () =
  let g = square () in
  Alcotest.(check int) "one per arc" 8 (List.length (Failure.all_single_arcs g));
  Alcotest.(check int) "one per edge" 4 (List.length (Failure.all_single_edges g));
  Alcotest.(check int) "one per node" 4 (List.length (Failure.all_single_nodes g))

let test_disconnects () =
  let g = square () in
  (* a ring of bidirectional edges survives any single arc loss (the other
     direction and the long way around remain) *)
  Alcotest.(check bool) "ring survives an arc loss" false
    (Failure.disconnects g (Failure.Arc 0));
  (* node failure on a ring leaves a path among survivors *)
  Alcotest.(check bool) "node failure keeps survivors connected" false
    (Failure.disconnects g (Failure.Node 0));
  (* a line graph loses its far end when an inner arc dies *)
  let line = Graph.of_edges ~n:3 [ edge 0 1; edge 1 2 ] in
  Alcotest.(check bool) "line is cut by an arc loss" true
    (Failure.disconnects line (Failure.Arc 2));
  let tri = Graph.of_edges ~n:3 [ edge 0 1; edge 1 2; edge 0 2 ] in
  Alcotest.(check bool) "triangle survives an arc loss" false
    (Failure.disconnects tri (Failure.Arc 0))

let test_node_failure_can_disconnect () =
  (* path 0 - 1 - 2: losing the middle node separates 0 from 2 *)
  let path = Graph.of_edges ~n:3 [ edge 0 1; edge 1 2 ] in
  Alcotest.(check bool) "cut vertex" true (Failure.disconnects path (Failure.Node 1))

let test_names () =
  let g = square () in
  Alcotest.(check string) "arc name" "arc 0 (0->1)" (Failure.name g (Failure.Arc 0));
  Alcotest.(check string) "node name" "node 2" (Failure.name g (Failure.Node 2))

let suite =
  [
    Alcotest.test_case "arc mask" `Quick test_arc_mask;
    Alcotest.test_case "edge mask covers both directions" `Quick test_edge_mask;
    Alcotest.test_case "node mask covers incident arcs" `Quick test_node_mask;
    Alcotest.test_case "no-failure mask" `Quick test_no_failure_mask;
    Alcotest.test_case "multi-arc mask" `Quick test_arcs_mask;
    Alcotest.test_case "set_mask clears previous" `Quick test_set_mask_clears;
    Alcotest.test_case "excluded node" `Quick test_excluded_node;
    Alcotest.test_case "scenario enumerations" `Quick test_all_scenarios;
    Alcotest.test_case "disconnection detection" `Quick test_disconnects;
    Alcotest.test_case "cut vertex detection" `Quick test_node_failure_can_disconnect;
    Alcotest.test_case "scenario names" `Quick test_names;
  ]
