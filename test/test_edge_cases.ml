(* Edge-case coverage across modules: option plumbing, validation paths and
   boundary behaviours not exercised by the main suites. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Failure = Dtr_topology.Failure
module Matrix = Dtr_traffic.Matrix
module Scaling = Dtr_traffic.Scaling
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Lexico = Dtr_cost.Lexico

(* Gen options *)

let test_gen_capacity_option () =
  let options = { Gen.default_options with Gen.capacity = 1234. } in
  let g = Gen.rand ~options (Rng.create 1) ~nodes:8 ~degree:3. in
  Array.iter
    (fun a -> Alcotest.(check (float 0.)) "capacity propagated" 1234. a.Graph.capacity)
    (Graph.arcs g)

let test_gen_min_delay_floor () =
  let options = { Gen.default_options with Gen.min_delay = 0.004 } in
  let g = Gen.near ~options (Rng.create 2) ~nodes:10 ~degree:3. in
  Array.iter
    (fun a -> Alcotest.(check bool) "delay floored" true (a.Graph.delay >= 0.004))
    (Graph.arcs g)

let test_isp_ignores_nodes_arg () =
  let g = Gen.generate (Rng.create 3) Gen.Isp ~nodes:99 ~degree:9. in
  Alcotest.(check int) "fixed size" 16 (Graph.num_nodes g)

(* Scaling with explicit weights *)

let test_calibrate_with_custom_weights () =
  let g = Gen.rand (Rng.create 4) ~nodes:10 ~degree:4. in
  let rng = Rng.create 5 in
  let rd, rt = Dtr_traffic.Gravity.pair rng ~nodes:10 ~total:100. in
  (* calibrate against a non-uniform reference routing *)
  let weights = Array.init (Graph.num_arcs g) (fun i -> 1 + (i mod 7)) in
  let rd', rt' = Scaling.calibrate g ~weights ~rd ~rt (Scaling.Avg_utilization 0.3) in
  let routing = Dtr_spf.Routing.compute g ~weights () in
  let loads = Array.make (Graph.num_arcs g) 0. in
  let (_ : float) =
    Dtr_spf.Routing.add_loads routing ~demands:(Matrix.dense rd') ~into:loads ()
  in
  let (_ : float) =
    Dtr_spf.Routing.add_loads routing ~demands:(Matrix.dense rt') ~into:loads ()
  in
  Alcotest.(check (float 1e-9)) "target met under those weights" 0.3
    (Scaling.avg_utilization g ~loads)

(* Failure misc *)

let test_failure_names () =
  let g = Gen.rand (Rng.create 6) ~nodes:6 ~degree:3. in
  Alcotest.(check bool) "edge name mentions both ends" true
    (String.length (Failure.name g (Failure.Edge 0)) > 6);
  Alcotest.(check string) "multi-arc name" "arcs {1,2}"
    (Failure.name g (Failure.Arcs [ 1; 2 ]));
  Alcotest.(check string) "no failure" "no failure" (Failure.name g Failure.No_failure)

let test_edge_failure_evaluation () =
  (* an Edge scenario must remove both directions in evaluation *)
  let scenario = Fixtures.diamond_scenario () in
  let g = scenario.Scenario.graph in
  let w = Weights.create ~num_arcs:(Graph.num_arcs g) ~init:1 in
  let arc01 = match Graph.find_arc g 0 1 with Some id -> id | None -> assert false in
  let detail = Eval.evaluate scenario ~failure:(Failure.Edge arc01) w in
  let rev = (Graph.arc g arc01).Graph.rev in
  Alcotest.(check (float 0.)) "forward empty" 0. detail.Eval.loads.(arc01);
  Alcotest.(check (float 0.)) "reverse empty" 0. detail.Eval.loads.(rev)

(* Rng extras *)

let test_log_normal_positive () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Rng.log_normal rng ~mu:0. ~sigma:1. > 0.)
  done

let test_log_normal_median () =
  let rng = Rng.create 8 in
  let xs = Array.init 20001 (fun _ -> Rng.log_normal rng ~mu:1. ~sigma:0.5) in
  (* median of log-normal(mu, sigma) is exp mu *)
  let median = Dtr_util.Stat.percentile xs 50. in
  Alcotest.(check bool)
    (Printf.sprintf "median %.3f near e" median)
    true
    (Float.abs (median -. exp 1.) < 0.1)

(* Scenario validation *)

let test_scenario_validation () =
  let g = Gen.rand (Rng.create 9) ~nodes:6 ~degree:3. in
  let rd = Matrix.create 6 and rt = Matrix.create 6 in
  let bad_chi = { Scenario.quick_params with Scenario.chi = -0.1 } in
  Alcotest.check_raises "negative chi" (Invalid_argument "Scenario: chi must be >= 0")
    (fun () -> ignore (Scenario.make ~graph:g ~rd ~rt ~params:bad_chi));
  let bad_q = { Scenario.quick_params with Scenario.q = 1.5 } in
  Alcotest.check_raises "bad q" (Invalid_argument "Scenario: q outside (0, 1)") (fun () ->
      ignore (Scenario.make ~graph:g ~rd ~rt ~params:bad_q));
  let small = Matrix.create 3 in
  Alcotest.check_raises "matrix size"
    (Invalid_argument "Scenario.make: matrix size does not match the graph") (fun () ->
      ignore (Scenario.make ~graph:g ~rd:small ~rt ~params:Scenario.quick_params))

let test_with_sla_and_traffic () =
  let scenario = Fixtures.diamond_scenario () in
  let s45 = Scenario.with_sla scenario (Dtr_cost.Sla.with_theta 0.045) in
  Alcotest.(check (float 0.)) "theta swapped" 0.045
    s45.Scenario.params.Scenario.sla.Dtr_cost.Sla.theta;
  let rd2 = Matrix.scale scenario.Scenario.rd 2. in
  let s2 = Scenario.with_traffic scenario ~rd:rd2 ~rt:scenario.Scenario.rt in
  Alcotest.(check (float 1e-9)) "traffic swapped"
    (2. *. Matrix.total scenario.Scenario.rd)
    (Matrix.total s2.Scenario.rd)

(* Delay model derivative continuity at the linearisation point *)

let test_delay_slope_continuity () =
  let p = Dtr_cost.Delay_model.default in
  let c = 500. in
  let x0 = p.Dtr_cost.Delay_model.linearize_at *. c in
  let eps = 1e-4 in
  let f x = Dtr_cost.Delay_model.queueing_delay p ~capacity:c ~load:x in
  let slope_below = (f x0 -. f (x0 -. eps)) /. eps in
  let slope_above = (f (x0 +. eps) -. f x0) /. eps in
  Alcotest.(check bool)
    (Printf.sprintf "slopes %.3g vs %.3g" slope_below slope_above)
    true
    (Float.abs (slope_below -. slope_above) /. slope_below < 0.01)

(* Graph pretty printer *)

let test_pp_summary () =
  let g = Gen.isp_backbone () in
  let s = Format.asprintf "%a" Graph.pp_summary g in
  Alcotest.(check bool) "mentions node count" true
    (String.length s > 10 && String.sub s 0 6 = "graph:")

(* Lexico corner: tolerance boundary *)

let test_lexico_tolerance_boundary () =
  let a = Lexico.make ~lambda:1. ~phi:10. in
  let b = Lexico.make ~lambda:(1. +. (0.5 *. Lexico.lambda_tolerance)) ~phi:5. in
  (* lambdas compare equal within tolerance, so phi decides *)
  Alcotest.(check bool) "phi decides inside the band" true (Lexico.is_better b ~than:a);
  let c = Lexico.make ~lambda:(1. +. (2. *. Lexico.lambda_tolerance)) ~phi:0. in
  Alcotest.(check bool) "outside the band lambda decides" false (Lexico.is_better c ~than:a)

(* Optimizer input validation *)

let test_optimizer_given_validation () =
  let scenario = Fixtures.small ~seed:99 ~nodes:8 () in
  Alcotest.check_raises "empty given set" (Invalid_argument "Optimizer: empty critical set")
    (fun () ->
      ignore
        (Dtr_core.Optimizer.optimize ~rng:(Rng.create 1)
           ~selector:(Dtr_core.Optimizer.Given []) scenario));
  Alcotest.check_raises "bad arc id" (Invalid_argument "Optimizer: bad arc id") (fun () ->
      ignore
        (Dtr_core.Optimizer.optimize ~rng:(Rng.create 1)
           ~selector:(Dtr_core.Optimizer.Given [ 9999 ]) scenario))

let suite =
  [
    Alcotest.test_case "generator capacity option" `Quick test_gen_capacity_option;
    Alcotest.test_case "generator delay floor" `Quick test_gen_min_delay_floor;
    Alcotest.test_case "ISP ignores size arguments" `Quick test_isp_ignores_nodes_arg;
    Alcotest.test_case "calibration with custom weights" `Quick
      test_calibrate_with_custom_weights;
    Alcotest.test_case "failure names" `Quick test_failure_names;
    Alcotest.test_case "edge failure evaluation" `Quick test_edge_failure_evaluation;
    Alcotest.test_case "log-normal positivity" `Quick test_log_normal_positive;
    Alcotest.test_case "log-normal median" `Quick test_log_normal_median;
    Alcotest.test_case "scenario validation" `Quick test_scenario_validation;
    Alcotest.test_case "scenario with_sla/with_traffic" `Quick test_with_sla_and_traffic;
    Alcotest.test_case "delay slope continuity" `Quick test_delay_slope_continuity;
    Alcotest.test_case "graph summary printer" `Quick test_pp_summary;
    Alcotest.test_case "lexicographic tolerance boundary" `Quick
      test_lexico_tolerance_boundary;
    Alcotest.test_case "optimizer Given validation" `Slow test_optimizer_given_validation;
  ]
