(* Unit and property tests for Dtr_util.Rng (SplitMix64). *)

module Rng = Dtr_util.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  (* advancing one does not advance the other *)
  let _ = Rng.bits64 a in
  let x = Rng.bits64 a and y = Rng.bits64 b in
  Alcotest.(check bool) "streams diverge after unequal advances" true (x <> y)

let test_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a 0 in
  let xs = Array.init 50 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 50 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_split_reproducible () =
  let a = Rng.create 123 in
  let _ = Rng.bits64 a in
  (* Same parent state + same index = same child stream, every time. *)
  let b = Rng.split a 3 and c = Rng.split a 3 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same child stream" (Rng.bits64 b) (Rng.bits64 c)
  done

let test_split_does_not_advance_parent () =
  let a = Rng.create 55 in
  let untouched = Rng.copy a in
  for i = 0 to 7 do
    ignore (Rng.split a i : Rng.t)
  done;
  for _ = 1 to 20 do
    Alcotest.(check int64) "parent stream unchanged by splits" (Rng.bits64 untouched)
      (Rng.bits64 a)
  done

let test_split_streams_pairwise_distinct () =
  let a = Rng.create 2024 in
  let n_streams = 16 and draws = 32 in
  let streams =
    Array.init n_streams (fun i ->
        let r = Rng.split a i in
        Array.init draws (fun _ -> Rng.bits64 r))
  in
  for i = 0 to n_streams - 1 do
    for j = i + 1 to n_streams - 1 do
      Alcotest.(check bool) "distinct indices give distinct streams" true
        (streams.(i) <> streams.(j))
    done
  done;
  (* No child stream collides with the parent's own continuation either. *)
  let parent = Array.init draws (fun _ -> Rng.bits64 a) in
  Array.iter
    (fun child ->
      Alcotest.(check bool) "child differs from parent stream" true (child <> parent))
    streams

let test_split_rejects_negative_index () =
  let a = Rng.create 1 in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split: negative stream index") (fun () ->
      ignore (Rng.split a (-1)))

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 3 9 in
    Alcotest.(check bool) "in [3,9]" true (v >= 3 && v <= 9)
  done;
  Alcotest.(check int) "singleton range" 4 (Rng.int_in rng 4 4)

let test_int_covers_range () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values reachable" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_uniform_mean () =
  let rng = Rng.create 17 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform rng 2. 6.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.) < 0.1)

let test_gaussian_moments () =
  let rng = Rng.create 19 in
  let n = 50000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mean:3. ~stddev:2.) in
  let mean = Dtr_util.Stat.mean xs and sd = Dtr_util.Stat.stddev xs in
  Alcotest.(check bool) "mean ~ 3" true (Float.abs (mean -. 3.) < 0.05);
  Alcotest.(check bool) "stddev ~ 2" true (Float.abs (sd -. 2.) < 0.05)

let test_gaussian_rejects_negative_sd () =
  let rng = Rng.create 19 in
  Alcotest.check_raises "negative stddev"
    (Invalid_argument "Rng.gaussian: negative stddev") (fun () ->
      ignore (Rng.gaussian rng ~mean:0. ~stddev:(-1.)))

let test_exponential_mean () =
  let rng = Rng.create 23 in
  let n = 50000 in
  let xs = Array.init n (fun _ -> Rng.exponential rng ~rate:2.) in
  Alcotest.(check bool) "mean ~ 1/rate" true
    (Float.abs (Dtr_util.Stat.mean xs -. 0.5) < 0.02);
  Alcotest.(check bool) "all positive" true (Array.for_all (fun x -> x > 0.) xs)

let test_shuffle_permutation () =
  let rng = Rng.create 29 in
  let a = Array.init 30 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 30 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 31 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng 5 12 in
    Alcotest.(check int) "size" 5 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    for i = 1 to 4 do
      Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
    done;
    Array.iter (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v < 12)) s
  done;
  Alcotest.(check int) "k = n returns everything" 12
    (Array.length (Rng.sample_without_replacement rng 12 12))

let test_pick () =
  let rng = Rng.create 37 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element is a member" true
      (Array.mem (Rng.pick rng a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "split is independent" `Quick test_split_independent;
    Alcotest.test_case "split is reproducible" `Quick test_split_reproducible;
    Alcotest.test_case "split leaves parent untouched" `Quick test_split_does_not_advance_parent;
    Alcotest.test_case "split streams pairwise distinct" `Quick test_split_streams_pairwise_distinct;
    Alcotest.test_case "split rejects negative index" `Quick test_split_rejects_negative_index;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive bound" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "gaussian rejects bad stddev" `Quick test_gaussian_rejects_negative_sd;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "pick" `Quick test_pick;
  ]
