(* Tests for Dtr_spf.Dijkstra, including a Bellman-Ford oracle. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Dijkstra = Dtr_spf.Dijkstra

let edge u v = Graph.{ u; v; cap = 500.; prop = 0.005 }

(* Bellman-Ford distances to [dest] (reverse direction), the reference. *)
let bellman_ford_to g ~weights ~disabled ~dest =
  let n = Graph.num_nodes g in
  let dist = Array.make n Dijkstra.infinity in
  dist.(dest) <- 0;
  for _ = 1 to n do
    Array.iter
      (fun a ->
        let id = a.Graph.id in
        let dead = match disabled with None -> false | Some m -> m.(id) in
        if (not dead) && dist.(a.Graph.dst) < Dijkstra.infinity then begin
          let alt = dist.(a.Graph.dst) + weights.(id) in
          if alt < dist.(a.Graph.src) then dist.(a.Graph.src) <- alt
        end)
      (Graph.arcs g)
  done;
  dist

let test_line_graph () =
  let g = Graph.of_edges ~n:4 [ edge 0 1; edge 1 2; edge 2 3 ] in
  let weights = [| 1; 1; 5; 5; 2; 2 |] in
  let d = Dijkstra.to_destination g ~weights ~dest:3 () in
  Alcotest.(check (array int)) "distances to 3" [| 8; 7; 2; 0 |] d

let test_forward_vs_reverse () =
  (* On a symmetric-weight graph, dist(u -> v) = dist to v from u. *)
  let rng = Rng.create 5 in
  let g = Gen.rand rng ~nodes:15 ~degree:4. in
  let m = Graph.num_arcs g in
  let weights = Array.make m 0 in
  (* symmetric weights: same for both directions of each edge *)
  Array.iter
    (fun a ->
      if a.Graph.id < a.Graph.rev then begin
        let w = 1 + Rng.int rng 10 in
        weights.(a.Graph.id) <- w;
        weights.(a.Graph.rev) <- w
      end)
    (Graph.arcs g);
  let to3 = Dijkstra.to_destination g ~weights ~dest:3 () in
  let from3 = Dijkstra.from_source g ~weights ~src:3 () in
  Alcotest.(check (array int)) "symmetric graph: to = from" to3 from3

let test_against_bellman_ford () =
  let rng = Rng.create 11 in
  for trial = 0 to 19 do
    let g = Gen.rand (Rng.create (100 + trial)) ~nodes:12 ~degree:4. in
    let m = Graph.num_arcs g in
    let weights = Array.init m (fun _ -> 1 + Rng.int rng 20) in
    (* random failures of up to 2 arcs *)
    let disabled = Array.make m false in
    disabled.(Rng.int rng m) <- true;
    disabled.(Rng.int rng m) <- true;
    for dest = 0 to Graph.num_nodes g - 1 do
      let fast = Dijkstra.to_destination g ~weights ~disabled ~dest () in
      let slow = bellman_ford_to g ~weights ~disabled:(Some disabled) ~dest in
      Alcotest.(check (array int)) "matches Bellman-Ford" slow fast
    done
  done

let test_unreachable () =
  let g = Graph.of_edges ~n:3 [ edge 0 1; edge 1 2 ] in
  let weights = Array.make 4 1 in
  let disabled = Array.make 4 false in
  disabled.(2) <- true;
  (* 1->2 *)
  disabled.(3) <- true;
  (* 2->1 *)
  let d = Dijkstra.to_destination g ~weights ~disabled ~dest:2 () in
  Alcotest.(check int) "0 unreachable" Dijkstra.infinity d.(0);
  Alcotest.(check int) "1 unreachable" Dijkstra.infinity d.(1);
  Alcotest.(check int) "dest itself 0" 0 d.(2)

let test_rejects_bad_weights () =
  let g = Graph.of_edges ~n:2 [ edge 0 1 ] in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Dijkstra: weights must be positive") (fun () ->
      ignore (Dijkstra.to_destination g ~weights:[| 0; 1 |] ~dest:0 ()));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Dijkstra: weights length mismatch") (fun () ->
      ignore (Dijkstra.to_destination g ~weights:[| 1 |] ~dest:0 ()))

let prop_triangle_inequality =
  QCheck.Test.make ~name:"distance satisfies the arc relaxation inequality" ~count:40
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.rand rng ~nodes:10 ~degree:3. in
      let m = Graph.num_arcs g in
      let weights = Array.init m (fun _ -> 1 + Rng.int rng 9) in
      let ok = ref true in
      for dest = 0 to 9 do
        let d = Dijkstra.to_destination g ~weights ~dest () in
        Array.iter
          (fun a ->
            if d.(a.Graph.dst) < Dijkstra.infinity then
              if d.(a.Graph.src) > d.(a.Graph.dst) + weights.(a.Graph.id) then ok := false)
          (Graph.arcs g)
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "line graph distances" `Quick test_line_graph;
    Alcotest.test_case "forward vs reverse on symmetric weights" `Quick test_forward_vs_reverse;
    Alcotest.test_case "matches Bellman-Ford with failures" `Quick test_against_bellman_ford;
    Alcotest.test_case "unreachable nodes" `Quick test_unreachable;
    Alcotest.test_case "weight validation" `Quick test_rejects_bad_weights;
    QCheck_alcotest.to_alcotest prop_triangle_inequality;
  ]
