(* Tests for the dynamic-SPF failure-sweep engine: bit-identity of repaired
   routing states (distances, ECMP DAGs, loads) and of cached sweep pricing
   (costs, counters, load vectors) against from-scratch recomputation, plus
   fixed-seed end-to-end optimizer identity with the engine on, off, and
   under a parallel execution context. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Failure = Dtr_topology.Failure
module Routing = Dtr_spf.Routing
module Spf_delta = Dtr_spf.Spf_delta
module Lexico = Dtr_cost.Lexico
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Optimizer = Dtr_core.Optimizer
module Exec = Dtr_exec.Exec

let with_engine enabled f =
  let was = Spf_delta.enabled () in
  Spf_delta.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Spf_delta.set_enabled was) f

let random_scenario seed =
  let rng = Rng.create seed in
  let kind = if seed mod 2 = 0 then Gen.Rand_topo else Gen.Pl_topo in
  let nodes = 8 + Rng.int rng 10 in
  let scenario =
    Scenario.random_instance ~params:Fixtures.tiny_params ~nodes ~degree:4.
      ~avg_util:(0.3 +. Rng.float rng 0.4)
      rng kind
  in
  let w =
    Weights.random rng ~num_arcs:(Graph.num_arcs scenario.Scenario.graph) ~wmax:16
  in
  (scenario, w)

let failed_of_mask mask =
  let acc = ref [] in
  Array.iteri (fun id dead -> if dead then acc := id :: !acc) mask;
  !acc

(* Routing-level identity: for every single-arc failure the repaired state
   must equal a from-scratch Dijkstra with the failure mask — distances and
   every node's ECMP next-hop row, for both weight classes. *)
let prop_repair_routing_identity =
  QCheck.Test.make ~name:"repaired routing bit-identical to from-scratch" ~count:12
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let scenario, w = random_scenario seed in
      let g = scenario.Scenario.graph in
      let n = Graph.num_nodes g in
      let dense_rd = scenario.Scenario.dense_rd in
      let buffers = Routing.make_buffers g in
      with_engine true (fun () ->
          List.iter
            (fun weights ->
              let base = Routing.compute g ~weights ~buffers () in
              List.iter
                (fun f ->
                  let mask = Failure.mask g f in
                  let failed = failed_of_mask mask in
                  let repaired =
                    Routing.with_failed_arcs ~buffers base ~weights ~disabled:mask
                      ~failed
                  in
                  let scratch =
                    Routing.compute g ~weights ~buffers ~disabled:mask ()
                  in
                  for dest = 0 to n - 1 do
                    for node = 0 to n - 1 do
                      if
                        Routing.distance repaired ~src:node ~dst:dest
                        <> Routing.distance scratch ~src:node ~dst:dest
                      then
                        QCheck.Test.fail_reportf
                          "distance(%d->%d) differs after failing arcs %s" node
                          dest
                          (String.concat "," (List.map string_of_int failed));
                      if
                        Routing.next_hops repaired ~dest ~node
                        <> Routing.next_hops scratch ~dest ~node
                      then
                        QCheck.Test.fail_reportf
                          "next hops (%d->%d) differ after failing arcs %s" node
                          dest
                          (String.concat "," (List.map string_of_int failed))
                    done
                  done;
                  let loads_r, un_r =
                    Routing.loads repaired ~graph:g ~demands:dense_rd ()
                  in
                  let loads_s, un_s =
                    Routing.loads scratch ~graph:g ~demands:dense_rd ()
                  in
                  if un_r <> un_s || loads_r <> loads_s then
                    QCheck.Test.fail_reportf
                      "repaired loads not bit-identical after failing arcs %s"
                      (String.concat "," (List.map string_of_int failed)))
                (Failure.all_single_arcs g))
            [ Weights.delay_of w; Weights.throughput_of w ]);
      true)

(* Sweep-level identity: the cached engine's per-failure details (costs,
   violation and unreachable counts, load vectors) must match pricing each
   failure independently from scratch — full Dijkstra, full assessment. *)
let prop_cached_sweep_identity =
  QCheck.Test.make ~name:"cached sweep bit-identical to independent pricing"
    ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let scenario, w = random_scenario seed in
      let failures = Failure.all_single_arcs scenario.Scenario.graph in
      let swept =
        with_engine true (fun () ->
            Eval.sweep_details scenario ~exec:Exec.serial w failures)
      in
      List.iter2
        (fun f (d : Eval.detail) ->
          let full = Eval.evaluate scenario ~failure:f w in
          if
            d.Eval.cost.Lexico.lambda <> full.Eval.cost.Lexico.lambda
            || d.Eval.cost.Lexico.phi <> full.Eval.cost.Lexico.phi
            || d.Eval.violations <> full.Eval.violations
            || d.Eval.unreachable_pairs <> full.Eval.unreachable_pairs
            || d.Eval.loads <> full.Eval.loads
            || d.Eval.throughput_loads <> full.Eval.throughput_loads
          then
            QCheck.Test.fail_reportf "cached pricing differs from from-scratch")
        failures swept;
      true)

(* Node failures must take the fallback path (cached rows are invalid when a
   node's demands disappear) and still match from-scratch pricing. *)
let prop_node_failure_fallback =
  QCheck.Test.make ~name:"node failures price identically through the sweep"
    ~count:6
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let scenario, w = random_scenario seed in
      let failures = Failure.all_single_nodes scenario.Scenario.graph in
      let swept =
        with_engine true (fun () ->
            Eval.sweep_details scenario ~exec:Exec.serial w failures)
      in
      List.iter2
        (fun f (d : Eval.detail) ->
          let full = Eval.evaluate scenario ~failure:f w in
          if d.Eval.cost <> full.Eval.cost || d.Eval.violations <> full.Eval.violations
          then QCheck.Test.fail_reportf "node-failure pricing differs")
        failures swept;
      true)

(* Fixed-seed end-to-end identity: the optimizer must land on the exact same
   weights and costs with the repair engine on, off, and with the engine on
   under a two-domain pool. *)
let test_e2e_engine_identity () =
  let scenario = Fixtures.small ~seed:2008 ~nodes:10 ~avg_util:0.45 () in
  let solve ~enabled ~exec =
    with_engine enabled (fun () ->
        Optimizer.optimize ~rng:(Rng.create 7) ~exec scenario)
  in
  let on = solve ~enabled:true ~exec:Exec.serial in
  let off = solve ~enabled:false ~exec:Exec.serial in
  let jobs2 = solve ~enabled:true ~exec:(Exec.of_jobs 2) in
  let check name (a : Optimizer.solution) (b : Optimizer.solution) =
    Alcotest.(check bool)
      (name ^ ": robust weights identical")
      true
      (a.Optimizer.robust.Weights.wd = b.Optimizer.robust.Weights.wd
      && a.Optimizer.robust.Weights.wt = b.Optimizer.robust.Weights.wt);
    Alcotest.(check bool)
      (name ^ ": regular weights identical")
      true
      (a.Optimizer.regular.Weights.wd = b.Optimizer.regular.Weights.wd
      && a.Optimizer.regular.Weights.wt = b.Optimizer.regular.Weights.wt);
    Alcotest.(check bool)
      (name ^ ": costs identical")
      true
      (a.Optimizer.regular_cost = b.Optimizer.regular_cost
      && a.Optimizer.robust_normal_cost = b.Optimizer.robust_normal_cost
      && a.Optimizer.robust_fail_cost = b.Optimizer.robust_fail_cost);
    Alcotest.(check (list int))
      (name ^ ": critical set identical")
      a.Optimizer.critical b.Optimizer.critical
  in
  check "engine on vs off" on off;
  check "jobs=1 vs jobs=2" on jobs2

(* The escape hatch: disabling the engine routes every sweep through the
   from-scratch path (visible in the sweep statistics). *)
let test_stats_report_engine_state () =
  let scenario = Fixtures.small ~seed:5 ~nodes:8 () in
  let rng = Rng.create 11 in
  let w = Weights.random rng ~num_arcs:(Scenario.num_arcs scenario) ~wmax:16 in
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  Eval.Sweep_stats.reset ();
  let (_ : Eval.detail list) =
    with_engine true (fun () -> Eval.sweep_details scenario ~exec:Exec.serial w failures)
  in
  let s = Eval.Sweep_stats.snapshot () in
  Alcotest.(check int) "one sweep recorded" 1 s.Eval.Sweep_stats.sweeps;
  Alcotest.(check int) "one cache build" 1 s.Eval.Sweep_stats.cache_builds;
  Alcotest.(check int)
    "every arc failure priced from the cache"
    (List.length failures)
    s.Eval.Sweep_stats.cached_evals;
  Eval.Sweep_stats.reset ();
  let (_ : Eval.detail list) =
    with_engine false (fun () ->
        Eval.sweep_details scenario ~exec:Exec.serial w failures)
  in
  let s = Eval.Sweep_stats.snapshot () in
  Alcotest.(check int) "no cache build when disabled" 0 s.Eval.Sweep_stats.cache_builds;
  Alcotest.(check int)
    "every failure priced from scratch"
    (List.length failures)
    s.Eval.Sweep_stats.full_evals

let suite =
  [
    QCheck_alcotest.to_alcotest prop_repair_routing_identity;
    QCheck_alcotest.to_alcotest prop_cached_sweep_identity;
    QCheck_alcotest.to_alcotest prop_node_failure_fallback;
    Alcotest.test_case "fixed-seed e2e identity (on/off/jobs=2)" `Slow
      test_e2e_engine_identity;
    Alcotest.test_case "sweep stats reflect engine state" `Quick
      test_stats_report_engine_state;
  ]
