(* Tests for the live-telemetry primitives (dtr_obs): the log-linear
   latency histogram — bucket geometry, exact counts, nearest-rank
   quantiles, the shard-merge = single-stream algebra, and the /3 report
   round-trip through the JSON parser — and the rolling-window gauges
   driven by caller-supplied event time. *)

module Histogram = Dtr_obs.Histogram
module Rolling = Dtr_obs.Rolling
module Report = Dtr_obs.Report
module Json = Dtr_util.Json

(* --- bucket geometry ----------------------------------------------------- *)

let test_bucket_geometry () =
  (* Every bucket's half-open range contains exactly the values that index
     back into it; bucket upper bounds are the next bucket's lower bound. *)
  for i = 0 to Histogram.num_buckets - 1 do
    let lo, up = Histogram.bucket_bounds i in
    Alcotest.(check bool) "bounds ordered" true (lo < up);
    Alcotest.(check int)
      (Printf.sprintf "lower bound of bucket %d maps to itself" i)
      i
      (Histogram.index_of_seconds lo);
    if i < Histogram.num_buckets - 1 then begin
      let lo', _ = Histogram.bucket_bounds (i + 1) in
      Alcotest.(check (float 1e-12)) "contiguous buckets" up lo';
      (* The bucket midpoint stays in the bucket (the exact upper bound is
         subject to float-to-microsecond truncation, the midpoint is not). *)
      Alcotest.(check int) "midpoint maps into the bucket" i
        (Histogram.index_of_seconds ((lo +. up) /. 2.))
    end
  done;
  (* Relative bucket width stays within the documented ~3.2% (1/sub). *)
  for i = 32 to Histogram.num_buckets - 1 do
    let lo, up = Histogram.bucket_bounds i in
    Alcotest.(check bool) "relative width bounded" true ((up -. lo) /. lo <= 1. /. 32. +. 1e-9)
  done

let test_index_edge_cases () =
  Alcotest.(check int) "negative clamps to bucket 0" 0
    (Histogram.index_of_seconds (-3.));
  Alcotest.(check int) "zero is bucket 0" 0 (Histogram.index_of_seconds 0.);
  Alcotest.(check int) "sub-microsecond is bucket 0" 0
    (Histogram.index_of_seconds 4e-7);
  Alcotest.(check int) "huge values clamp to the last bucket"
    (Histogram.num_buckets - 1)
    (Histogram.index_of_seconds 1e12);
  Alcotest.(check int) "infinity clamps to the last bucket"
    (Histogram.num_buckets - 1)
    (Histogram.index_of_seconds infinity)

(* --- recording and snapshots --------------------------------------------- *)

let test_record_snapshot () =
  let h = Histogram.create ~labels:[ ("case", "unit") ] "test.hist.basic" in
  Histogram.reset h;
  List.iter (Histogram.record h) [ 1e-6; 1e-6; 5e-6; 1e-3; 2.5 ];
  let s = Histogram.snapshot h in
  Alcotest.(check int) "exact count" 5 s.Histogram.count;
  Alcotest.(check (float 1e-9)) "exact sum" (1e-6 +. 1e-6 +. 5e-6 +. 1e-3 +. 2.5)
    s.Histogram.sum;
  Alcotest.(check int) "distinct buckets" 4 (List.length s.Histogram.buckets);
  List.iter
    (fun (i, c) ->
      Alcotest.(check bool) "no zero buckets in snapshot" true (c > 0);
      Alcotest.(check bool) "indices in range" true
        (i >= 0 && i < Histogram.num_buckets))
    s.Histogram.buckets;
  let idx = List.map fst s.Histogram.buckets in
  Alcotest.(check (list int)) "ascending bucket order" (List.sort compare idx) idx;
  Histogram.reset h;
  Alcotest.(check int) "reset empties" 0 (Histogram.snapshot h).Histogram.count

let test_create_idempotent () =
  let a = Histogram.create ~labels:[ ("k", "v") ] "test.hist.idem" in
  let b = Histogram.create ~labels:[ ("k", "v") ] "test.hist.idem" in
  Histogram.reset a;
  Histogram.record a 1e-4;
  Alcotest.(check int) "same (name, labels) is the same histogram" 1
    (Histogram.snapshot b).Histogram.count;
  let c = Histogram.create ~labels:[ ("k", "other") ] "test.hist.idem" in
  Alcotest.(check int) "different labels are a different histogram" 0
    (Histogram.snapshot c).Histogram.count

(* Recording from several domains lands in per-domain shards; the snapshot
   merge must still see every recording exactly once. *)
let test_multi_domain_merge () =
  let h = Histogram.create "test.hist.domains" in
  Histogram.reset h;
  let per_domain = 500 in
  let worker () =
    for i = 1 to per_domain do
      Histogram.record h (1e-6 *. float_of_int i)
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  worker ();
  Domain.join d1;
  Domain.join d2;
  let s = Histogram.snapshot h in
  Alcotest.(check int) "all shards merged" (3 * per_domain) s.Histogram.count;
  Alcotest.(check int) "bucket counts sum to the total" s.Histogram.count
    (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Histogram.buckets)

(* --- quantiles ----------------------------------------------------------- *)

let test_quantile_known_distribution () =
  let h = Histogram.create "test.hist.quantile" in
  Histogram.reset h;
  (* 90 fast observations at 2 us, 10 slow at ~1 ms. *)
  for _ = 1 to 90 do Histogram.record h 2e-6 done;
  for _ = 1 to 10 do Histogram.record h 1e-3 done;
  let s = Histogram.snapshot h in
  let _, up_fast = Histogram.bucket_bounds (Histogram.index_of_seconds 2e-6) in
  let _, up_slow = Histogram.bucket_bounds (Histogram.index_of_seconds 1e-3) in
  Alcotest.(check (float 1e-12)) "p50 is the fast bucket" up_fast
    (Histogram.quantile s 50.);
  Alcotest.(check (float 1e-12)) "p90 is the fast bucket (rank 90)" up_fast
    (Histogram.quantile s 90.);
  Alcotest.(check (float 1e-12)) "p99 is the slow bucket" up_slow
    (Histogram.quantile s 99.);
  Alcotest.(check (float 1e-12)) "empty snapshot quantile is 0" 0.
    (Histogram.quantile { s with Histogram.count = 0; buckets = [] } 50.)

(* --- qcheck properties --------------------------------------------------- *)

let samples_gen =
  QCheck.(list_of_size (Gen.int_range 1 200) (float_range 1e-7 100.))

(* Splitting a recording stream across histograms and merging the snapshots
   is indistinguishable from recording everything into one histogram — the
   algebra behind both the per-domain shard merge and report aggregation. *)
let test_merge_is_single_stream_prop =
  QCheck.Test.make ~name:"shard-merge = single-stream recording" ~count:100
    QCheck.(pair samples_gen (int_range 0 200))
    (fun (samples, cut) ->
      let ha = Histogram.create "test.hist.prop_a" in
      let hb = Histogram.create "test.hist.prop_b" in
      let hall = Histogram.create "test.hist.prop_all" in
      Histogram.reset ha;
      Histogram.reset hb;
      Histogram.reset hall;
      List.iteri
        (fun i v ->
          Histogram.record (if i < cut then ha else hb) v;
          Histogram.record hall v)
        samples;
      let merged = Histogram.merge (Histogram.snapshot ha) (Histogram.snapshot hb) in
      let whole = Histogram.snapshot hall in
      merged.Histogram.count = whole.Histogram.count
      && merged.Histogram.buckets = whole.Histogram.buckets
      && Float.abs (merged.Histogram.sum -. whole.Histogram.sum)
         <= 1e-9 *. Float.max 1. whole.Histogram.sum)

(* The estimator returns the upper bound of the bucket holding the true
   nearest-rank order statistic: the true value lies within one bucket
   width below the estimate (the documented rank-error contract). *)
let test_quantile_rank_error_prop =
  QCheck.Test.make ~name:"quantile rank error <= one bucket width" ~count:100
    QCheck.(pair samples_gen (float_range 0. 100.))
    (fun (samples, q) ->
      let h = Histogram.create "test.hist.prop_q" in
      Histogram.reset h;
      List.iter (Histogram.record h) samples;
      let s = Histogram.snapshot h in
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank =
        let r = int_of_float (ceil (q /. 100. *. float_of_int n)) in
        if r < 1 then 1 else if r > n then n else r
      in
      let v_true = List.nth sorted (rank - 1) in
      let lo, up = Histogram.bucket_bounds (Histogram.index_of_seconds v_true) in
      let est = Histogram.quantile s q in
      est = up && lo <= v_true && v_true < up +. 1e-12)

(* The /3 report's histogram section survives a round trip through the JSON
   parser with its integer counts intact — the property trace diff and the
   CI determinism gate rely on. *)
let test_report_roundtrip_prop =
  QCheck.Test.make ~name:"report /3 histogram JSON round-trips" ~count:30
    samples_gen
    (fun samples ->
      let h =
        Histogram.create ~labels:[ ("event", "roundtrip") ] "test.hist.report"
      in
      Histogram.reset h;
      List.iter (Histogram.record h) samples;
      let doc = Report.to_string () in
      let j =
        match Json.parse doc with
        | Ok j -> j
        | Error e -> QCheck.Test.fail_reportf "report is not JSON: %s" e
      in
      let hists =
        match Json.member "histograms" j with
        | Some (Json.Arr hs) -> hs
        | _ -> QCheck.Test.fail_report "no histograms array"
      in
      let mine =
        List.find_opt
          (fun hj ->
            Json.member "name" hj = Some (Json.Str "test.hist.report")
            && (match Json.member "labels" hj with
               | Some (Json.Obj [ ("event", Json.Str "roundtrip") ]) -> true
               | _ -> false))
          hists
      in
      match mine with
      | None -> QCheck.Test.fail_report "histogram missing from report"
      | Some hj ->
          let count =
            match Json.member "count" hj with
            | Some (Json.Num c) -> int_of_float c
            | _ -> QCheck.Test.fail_report "no count"
          in
          let buckets =
            match Json.member "buckets" hj with
            | Some (Json.Arr bs) ->
                List.map
                  (fun bj ->
                    match (Json.member "le" bj, Json.member "count" bj) with
                    | Some (Json.Num le), Some (Json.Num c) ->
                        (le, int_of_float c)
                    | _ -> QCheck.Test.fail_report "malformed bucket")
                  bs
            | _ -> QCheck.Test.fail_report "no buckets"
          in
          let les = List.map fst buckets in
          count = List.length samples
          && List.fold_left (fun acc (_, c) -> acc + c) 0 buckets = count
          && List.sort compare les = les)

(* --- rolling-window gauges ----------------------------------------------- *)

let test_rolling_window () =
  let r = Rolling.create "test.rolling.window" in
  Rolling.reset r;
  Alcotest.(check int) "default window" 60 (Rolling.window r);
  Rolling.add r ~now:1000.5 2.;
  Rolling.incr r ~now:1030.2;
  Alcotest.(check (float 1e-9)) "both slots inside the window" 3.
    (Rolling.total r ~now:1030.9);
  Alcotest.(check (float 1e-9)) "rate = total / window" (3. /. 60.)
    (Rolling.rate r ~now:1030.9);
  (* Sliding past the first slot expires it. *)
  Alcotest.(check (float 1e-9)) "slot at t=1000 expired at t=1061" 1.
    (Rolling.total r ~now:1061.0);
  (* Far future: everything expired. *)
  Alcotest.(check (float 1e-9)) "all slots expired" 0.
    (Rolling.total r ~now:5000.0)

let test_rolling_slot_reuse () =
  let r = Rolling.create ~window:10 "test.rolling.reuse" in
  Rolling.reset r;
  Alcotest.(check int) "custom window" 10 (Rolling.window r);
  Rolling.add r ~now:2000.0 5.;
  (* Same ring slot one full window later: the stale value must not leak
     into the fresh second. *)
  Rolling.add r ~now:2010.0 1.;
  Alcotest.(check (float 1e-9)) "stale slot lazily reset on reuse" 1.
    (Rolling.total r ~now:2010.0);
  let s = Rolling.snapshot r ~now:2010.0 in
  Alcotest.(check string) "snapshot name" "test.rolling.reuse" s.Rolling.r_name;
  Alcotest.(check (float 1e-9)) "snapshot rate" 0.1 s.Rolling.r_per_second

let suite =
  [
    Alcotest.test_case "bucket geometry" `Quick test_bucket_geometry;
    Alcotest.test_case "index edge cases" `Quick test_index_edge_cases;
    Alcotest.test_case "record and snapshot" `Quick test_record_snapshot;
    Alcotest.test_case "create is idempotent" `Quick test_create_idempotent;
    Alcotest.test_case "multi-domain shard merge" `Quick test_multi_domain_merge;
    Alcotest.test_case "quantiles on a known distribution" `Quick
      test_quantile_known_distribution;
    QCheck_alcotest.to_alcotest test_merge_is_single_stream_prop;
    QCheck_alcotest.to_alcotest test_quantile_rank_error_prop;
    QCheck_alcotest.to_alcotest test_report_roundtrip_prop;
    Alcotest.test_case "rolling window expiry" `Quick test_rolling_window;
    Alcotest.test_case "rolling slot reuse" `Quick test_rolling_slot_reuse;
  ]
