(* Tests for Dtr_core.Sampler and Dtr_core.Criticality (Eqs. 8-9,
   Algorithm 1, the convergence index). *)

module Rng = Dtr_util.Rng
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Sampler = Dtr_core.Sampler
module Criticality = Dtr_core.Criticality
module Local_search = Dtr_core.Local_search
module Lexico = Dtr_cost.Lexico

let k l p = Lexico.make ~lambda:l ~phi:p

(* Sampler *)

let test_sampler_record_and_read () =
  let scenario = Fixtures.diamond_scenario () in
  let s = Sampler.create scenario in
  Sampler.record s ~arc:2 (k 10. 100.);
  Sampler.record s ~arc:2 (k 20. 200.);
  Alcotest.(check int) "count" 2 (Sampler.count s 2);
  Alcotest.(check int) "total" 2 (Sampler.total s);
  Alcotest.(check int) "other arcs empty" 0 (Sampler.count s 0);
  Alcotest.(check int) "min count" 0 (Sampler.min_count s);
  let ls = Sampler.lambda_samples s 2 in
  Array.sort compare ls;
  Alcotest.(check (array (float 0.))) "lambda samples" [| 10.; 20. |] ls

let test_sampler_failure_like () =
  let scenario = Fixtures.diamond_scenario () in
  (* q = 0.7, wmax = 20: failure band is [14, 20] *)
  let s = Sampler.create scenario in
  let w = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  Alcotest.(check bool) "low weights not failure-like" false (Sampler.is_failure_like s w ~arc:0);
  Weights.set_arc w ~arc:0 ~wd:14 ~wt:20;
  Alcotest.(check bool) "band weights failure-like" true (Sampler.is_failure_like s w ~arc:0);
  Weights.set_arc w ~arc:0 ~wd:14 ~wt:13;
  Alcotest.(check bool) "one class below band" false (Sampler.is_failure_like s w ~arc:0)

let test_sampler_acceptability () =
  let scenario = Fixtures.diamond_scenario () in
  let s = Sampler.create scenario in
  let best = k 100. 1000. in
  (* z = 0.5, B1 = 100 -> lambda allowance +50; chi = 0.2 -> phi allowance x1.2 *)
  Alcotest.(check bool) "within both" true (Sampler.is_acceptable s ~best (k 149. 1199.));
  Alcotest.(check bool) "lambda too high" false (Sampler.is_acceptable s ~best (k 151. 1000.));
  Alcotest.(check bool) "phi too high" false (Sampler.is_acceptable s ~best (k 100. 1201.))

let test_sampler_observe () =
  let scenario = Fixtures.diamond_scenario () in
  let s = Sampler.create scenario in
  let w = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  Weights.set_arc w ~arc:3 ~wd:18 ~wt:18;
  let best = k 0. 1000. in
  let obs accepted cost_after =
    Local_search.
      { arc = 3; weights = w; cost_before = k 0. 1000.; cost_after; accepted }
  in
  Alcotest.(check bool) "recorded" true (Sampler.observe s ~best (obs false (Some (k 5. 1100.))));
  Alcotest.(check int) "sample stored" 1 (Sampler.count s 3);
  (* unacceptable pre-move cost: rejected *)
  let bad = Local_search.{ arc = 3; weights = w; cost_before = k 999. 1000.;
                           cost_after = Some (k 5. 1100.); accepted = false } in
  Alcotest.(check bool) "unacceptable start rejected" false (Sampler.observe s ~best bad);
  (* non-failure-like arc: rejected *)
  Weights.set_arc w ~arc:3 ~wd:2 ~wt:2;
  Alcotest.(check bool) "non-failure-like rejected" false
    (Sampler.observe s ~best (obs false (Some (k 5. 1100.))))

(* Criticality from raw samples *)

let test_rho_mean_minus_tail () =
  (* arc 0: wide distribution; arc 1: narrow. *)
  let lambda = [| [| 0.; 100.; 100.; 100.; 100.; 100.; 100.; 100.; 100.; 100. |];
                  [| 50.; 50.; 50.; 50.; 50.; 50.; 50.; 50.; 50.; 50. |] |] in
  let phi = [| Array.make 10 1.; Array.make 10 1. |] in
  let c = Criticality.of_samples ~left_tail:0.1 ~lambda ~phi in
  (* arc 0: mean 90, left-tail (smallest 10%) = 0 -> rho = 90 *)
  Alcotest.(check (float 1e-9)) "wide arc rho" 90. c.Criticality.rho_lambda.(0);
  Alcotest.(check (float 1e-9)) "narrow arc rho" 0. c.Criticality.rho_lambda.(1);
  Alcotest.(check (float 1e-9)) "tail of wide arc" 0. c.Criticality.tail_lambda.(0);
  Alcotest.(check bool) "wide more critical after normalisation" true
    (c.Criticality.norm_lambda.(0) > c.Criticality.norm_lambda.(1))

let test_empty_samples_zero () =
  let c = Criticality.of_samples ~left_tail:0.1 ~lambda:[| [||] |] ~phi:[| [||] |] in
  Alcotest.(check (float 0.)) "no samples, zero criticality" 0. c.Criticality.rho_lambda.(0)

let test_ranking () =
  let r = Criticality.ranking [| 1.; 5.; 3.; 5. |] in
  (* descending, ties by id *)
  Alcotest.(check (array int)) "ranking" [| 1; 3; 2; 0 |] r

(* Algorithm 1 *)

let test_select_size_and_content () =
  let m = 10 in
  let lambda = Array.init m (fun arc -> Array.make 5 (float_of_int arc)) in
  (* make arc i's lambda distribution spread grow with i *)
  Array.iteri (fun i row -> row.(0) <- 0.; ignore i) lambda;
  let phi = Array.init m (fun _ -> Array.make 5 1.) in
  let c = Criticality.of_samples ~left_tail:0.2 ~lambda ~phi in
  let sel = Criticality.select c ~n:3 in
  Alcotest.(check int) "size 3" 3 (List.length sel);
  (* highest-lambda-criticality arcs are the largest ids *)
  Alcotest.(check (list int)) "most critical arcs selected" [ 7; 8; 9 ] sel

let test_select_full () =
  let lambda = Array.init 5 (fun _ -> [| 0.; 1. |]) in
  let phi = Array.init 5 (fun _ -> [| 0.; 1. |]) in
  let c = Criticality.of_samples ~left_tail:0.5 ~lambda ~phi in
  Alcotest.(check int) "n = |E| keeps everything" 5
    (List.length (Criticality.select c ~n:5));
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Criticality.select: bad target size")
    (fun () -> ignore (Criticality.select c ~n:0))

let test_select_merges_two_classes () =
  (* arc 0 critical for lambda only, arc 1 critical for phi only *)
  let lambda = [| [| 0.; 100. |]; [| 1.; 1. |]; [| 1.; 1. |] |] in
  let phi = [| [| 1.; 1. |]; [| 0.; 100. |]; [| 1.; 1. |] |] in
  let c = Criticality.of_samples ~left_tail:0.5 ~lambda ~phi in
  let sel = Criticality.select c ~n:2 in
  Alcotest.(check (list int)) "one from each class" [ 0; 1 ] sel

(* Rank-change index *)

let test_rank_change_zero_when_stable () =
  let r = [| 3; 1; 0; 2 |] in
  Alcotest.(check (float 0.)) "stable" 0. (Criticality.rank_change_index ~prev:r ~current:r)

let test_rank_change_swap () =
  (* swapping two adjacent arcs: S_l = 1 for both, gamma = 1/2 each -> S = 1 *)
  let prev = [| 0; 1; 2 |] and current = [| 1; 0; 2 |] in
  Alcotest.(check (float 1e-9)) "swap index" 1.
    (Criticality.rank_change_index ~prev ~current)

let test_rank_change_weighted () =
  (* one arc moves 4, others shuffle by 1: big movers dominate *)
  let prev = [| 0; 1; 2; 3; 4 |] and current = [| 1; 2; 3; 4; 0 |] in
  (* S_l: arc0 moves 4, arcs 1-4 move 1 => S = (16+4)/(4+4) = 2.5 *)
  Alcotest.(check (float 1e-9)) "weighted index" 2.5
    (Criticality.rank_change_index ~prev ~current)

(* Convergence tracker *)

let test_convergence_tracker () =
  let scenario = Fixtures.diamond_scenario () in
  let tracker = Criticality.Convergence.create scenario in
  let s = Sampler.create scenario in
  (* deterministic identical samples: rankings are stable from the start *)
  for arc = 0 to Scenario.num_arcs scenario - 1 do
    for i = 0 to 9 do
      Sampler.record s ~arc (k (float_of_int (arc * (1 + (i mod 2)))) 1.)
    done
  done;
  Alcotest.(check bool) "first check never converges" false
    (Criticality.Convergence.check tracker s);
  Alcotest.(check bool) "second check with same data converges" true
    (Criticality.Convergence.check tracker s);
  Alcotest.(check bool) "criticality exposed" true
    (Criticality.Convergence.last tracker <> None)

(* Property: Algorithm 1 returns exactly n arcs whenever criticalities are
   generic (no mass ties), and the kept error never exceeds the dropped
   criticality mass of a smaller selection. *)
let prop_select_size =
  QCheck.Test.make ~name:"Algorithm 1 returns at most n distinct arcs" ~count:100
    QCheck.(pair (int_range 2 30) (int_range 0 100000))
    (fun (m, seed) ->
      let rng = Dtr_util.Rng.create seed in
      let sample () =
        Array.init m (fun _ -> Array.init 6 (fun _ -> Dtr_util.Rng.float rng 100.))
      in
      let c = Criticality.of_samples ~left_tail:0.2 ~lambda:(sample ()) ~phi:(sample ()) in
      let n = 1 + Dtr_util.Rng.int rng m in
      let sel = Criticality.select c ~n in
      List.length sel <= n
      && List.length (List.sort_uniq compare sel) = List.length sel
      && List.for_all (fun a -> a >= 0 && a < m) sel)

let prop_select_monotone =
  QCheck.Test.make ~name:"larger targets keep more criticality mass" ~count:50
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Dtr_util.Rng.create seed in
      let m = 20 in
      let sample () =
        Array.init m (fun _ -> Array.init 6 (fun _ -> Dtr_util.Rng.float rng 100.))
      in
      let c = Criticality.of_samples ~left_tail:0.2 ~lambda:(sample ()) ~phi:(sample ()) in
      let mass sel =
        List.fold_left
          (fun acc a -> acc +. c.Criticality.norm_lambda.(a) +. c.Criticality.norm_phi.(a))
          0. sel
      in
      mass (Criticality.select c ~n:5) <= mass (Criticality.select c ~n:10) +. 1e-9)

let suite =
  [
    Alcotest.test_case "sampler record/read" `Quick test_sampler_record_and_read;
    Alcotest.test_case "failure-like detection" `Quick test_sampler_failure_like;
    Alcotest.test_case "acceptability relaxation" `Quick test_sampler_acceptability;
    Alcotest.test_case "observation filtering" `Quick test_sampler_observe;
    Alcotest.test_case "rho = mean - left tail" `Quick test_rho_mean_minus_tail;
    Alcotest.test_case "empty samples" `Quick test_empty_samples_zero;
    Alcotest.test_case "ranking order" `Quick test_ranking;
    Alcotest.test_case "Algorithm 1 size and content" `Quick test_select_size_and_content;
    Alcotest.test_case "Algorithm 1 full/degenerate" `Quick test_select_full;
    Alcotest.test_case "Algorithm 1 merges both classes" `Quick test_select_merges_two_classes;
    Alcotest.test_case "rank change: stable" `Quick test_rank_change_zero_when_stable;
    Alcotest.test_case "rank change: swap" `Quick test_rank_change_swap;
    Alcotest.test_case "rank change: weighted" `Quick test_rank_change_weighted;
    Alcotest.test_case "convergence tracker" `Quick test_convergence_tracker;
    QCheck_alcotest.to_alcotest prop_select_size;
    QCheck_alcotest.to_alcotest prop_select_monotone;
  ]
