(* Tests for Dtr_spf.Routing: ECMP DAGs, load conservation, delay DPs, and
   the incremental failure recomputation. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Routing = Dtr_spf.Routing
module Dijkstra = Dtr_spf.Dijkstra

let edge u v = Graph.{ u; v; cap = 500.; prop = 0.005 }

(* 0 connects to 3 via two disjoint equal-cost 2-hop paths (through 1 or 2). *)
let ecmp_diamond () =
  Graph.of_edges ~n:4 [ edge 0 1; edge 0 2; edge 1 3; edge 2 3 ]

let unit_demands n pairs =
  let d = Array.make_matrix n n 0. in
  List.iter (fun (s, t, v) -> d.(s).(t) <- v) pairs;
  d

let test_ecmp_split () =
  let g = ecmp_diamond () in
  let weights = Array.make (Graph.num_arcs g) 1 in
  let r = Routing.compute g ~weights () in
  let nh = Routing.next_hops r ~dest:3 ~node:0 in
  Alcotest.(check int) "two next hops at the fork" 2 (Array.length nh);
  let loads, unrouted = Routing.loads r ~graph:g ~demands:(unit_demands 4 [ (0, 3, 10.) ]) () in
  Alcotest.(check (float 1e-9)) "nothing dropped" 0. unrouted;
  (* each branch carries half *)
  let on u v =
    match Graph.find_arc g u v with Some id -> loads.(id) | None -> Alcotest.fail "arc"
  in
  Alcotest.(check (float 1e-9)) "0->1 half" 5. (on 0 1);
  Alcotest.(check (float 1e-9)) "0->2 half" 5. (on 0 2);
  Alcotest.(check (float 1e-9)) "1->3 half" 5. (on 1 3);
  Alcotest.(check (float 1e-9)) "2->3 half" 5. (on 2 3)

let test_unequal_weights_single_path () =
  let g = ecmp_diamond () in
  let weights = Array.make (Graph.num_arcs g) 1 in
  (* make the path through 2 cheaper *)
  (match Graph.find_arc g 0 1 with Some id -> weights.(id) <- 5 | None -> ());
  let r = Routing.compute g ~weights () in
  let loads, _ = Routing.loads r ~graph:g ~demands:(unit_demands 4 [ (0, 3, 10.) ]) () in
  let on u v =
    match Graph.find_arc g u v with Some id -> loads.(id) | None -> Alcotest.fail "arc"
  in
  Alcotest.(check (float 1e-9)) "all through 2" 10. (on 0 2);
  Alcotest.(check (float 1e-9)) "none through 1" 0. (on 0 1)

(* Flow conservation: total load on arcs into the destination equals total
   routed demand towards it. *)
let prop_load_conservation =
  QCheck.Test.make ~name:"ECMP load conservation at destinations" ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 12 in
      let g = Gen.rand rng ~nodes:n ~degree:4. in
      let m = Graph.num_arcs g in
      let weights = Array.init m (fun _ -> 1 + Rng.int rng 10) in
      let r = Routing.compute g ~weights () in
      let ok = ref true in
      for dest = 0 to n - 1 do
        let demands = Array.make_matrix n n 0. in
        let total = ref 0. in
        for s = 0 to n - 1 do
          if s <> dest then begin
            let v = Rng.float rng 10. in
            demands.(s).(dest) <- v;
            total := !total +. v
          end
        done;
        let loads, unrouted = Routing.loads r ~graph:g ~demands () in
        let inflow =
          List.fold_left (fun acc id -> acc +. loads.(id)) 0. (Graph.in_arcs g dest)
        in
        if Float.abs (inflow +. unrouted -. !total) > 1e-6 then ok := false
      done;
      !ok)

let test_exclude_node () =
  let g = ecmp_diamond () in
  let weights = Array.make (Graph.num_arcs g) 1 in
  let r = Routing.compute g ~weights () in
  let demands = unit_demands 4 [ (0, 3, 10.); (1, 3, 4.) ] in
  let loads, unrouted =
    Routing.loads r ~graph:g ~demands ~exclude_node:1 ()
  in
  Alcotest.(check (float 1e-9)) "no unrouted" 0. unrouted;
  (* demands from node 1 dropped, but transit through node 1 still allowed *)
  let total_into_3 =
    List.fold_left (fun acc id -> acc +. loads.(id)) 0. (Graph.in_arcs g 3)
  in
  Alcotest.(check (float 1e-9)) "only 0->3 demand arrives" 10. total_into_3

let test_unrouted_on_failure () =
  let g = Graph.of_edges ~n:3 [ edge 0 1; edge 1 2 ] in
  let weights = Array.make 4 1 in
  let disabled = Array.make 4 false in
  disabled.(2) <- true;
  disabled.(3) <- true;
  let r = Routing.compute g ~weights ~disabled () in
  let loads, unrouted =
    Routing.loads r ~graph:g ~demands:(unit_demands 3 [ (0, 2, 7.); (0, 1, 1.) ]) ()
  in
  Alcotest.(check (float 1e-9)) "0->2 dropped" 7. unrouted;
  (match Graph.find_arc g 0 1 with
  | Some id -> Alcotest.(check (float 1e-9)) "0->1 still routed" 1. loads.(id)
  | None -> Alcotest.fail "arc");
  Alcotest.(check bool) "reachability reported" false (Routing.reachable r ~src:0 ~dst:2)

let test_expected_delay_ecmp () =
  let g = ecmp_diamond () in
  let weights = Array.make (Graph.num_arcs g) 1 in
  let r = Routing.compute g ~weights () in
  (* give the two branches different delays: 1ms+1ms vs 3ms+3ms *)
  let arc_delay = Array.make (Graph.num_arcs g) 0. in
  let set u v d =
    match Graph.find_arc g u v with Some id -> arc_delay.(id) <- d | None -> ()
  in
  set 0 1 0.001;
  set 1 3 0.001;
  set 0 2 0.003;
  set 2 3 0.003;
  let del = Routing.expected_delays_to r ~arc_delay ~dest:3 in
  Alcotest.(check (float 1e-9)) "expected = mean of branches" 0.004 del.(0);
  let worst = Routing.max_delays_to r ~arc_delay ~dest:3 in
  Alcotest.(check (float 1e-9)) "max = slower branch" 0.006 worst.(0);
  Alcotest.(check (float 1e-9)) "pair helper agrees" 0.004
    (Routing.pair_expected_delay r ~arc_delay ~src:0 ~dst:3)

let test_bottleneck () =
  let g = ecmp_diamond () in
  let weights = Array.make (Graph.num_arcs g) 1 in
  let r = Routing.compute g ~weights () in
  let util = Array.make (Graph.num_arcs g) 0.1 in
  (match Graph.find_arc g 2 3 with Some id -> util.(id) <- 0.9 | None -> ());
  let bn = Routing.bottleneck_to r ~arc_value:util ~dest:3 in
  Alcotest.(check (float 1e-9)) "max over the whole DAG" 0.9 bn.(0);
  Alcotest.(check (float 1e-9)) "clean branch" 0.1 bn.(1)

let test_incremental_failure_equivalence () =
  (* with_failed_arcs must agree exactly with a from-scratch compute. *)
  let rng = Rng.create 123 in
  for trial = 0 to 14 do
    let g = Gen.rand (Rng.create (trial + 500)) ~nodes:14 ~degree:4. in
    let m = Graph.num_arcs g in
    let weights = Array.init m (fun _ -> 1 + Rng.int rng 8) in
    let base = Routing.compute g ~weights () in
    let failed = [ Rng.int rng m ] in
    let disabled = Array.make m false in
    List.iter (fun id -> disabled.(id) <- true) failed;
    let inc = Routing.with_failed_arcs base ~weights ~disabled ~failed in
    let scratch = Routing.compute g ~weights ~disabled () in
    let n = Graph.num_nodes g in
    let demands = Array.make_matrix n n 1. in
    for i = 0 to n - 1 do
      demands.(i).(i) <- 0.
    done;
    let l1, u1 = Routing.loads inc ~graph:g ~demands () in
    let l2, u2 = Routing.loads scratch ~graph:g ~demands () in
    Alcotest.(check (float 1e-6)) "same unrouted" u2 u1;
    Array.iteri
      (fun id x -> Alcotest.(check (float 1e-6)) (Printf.sprintf "load arc %d" id) l2.(id) x)
      l1;
    for dest = 0 to n - 1 do
      for src = 0 to n - 1 do
        Alcotest.(check int) "same distances"
          (Routing.distance scratch ~src ~dst:dest)
          (Routing.distance inc ~src ~dst:dest)
      done
    done
  done

let suite =
  [
    Alcotest.test_case "ECMP even split" `Quick test_ecmp_split;
    Alcotest.test_case "unequal weights use one path" `Quick test_unequal_weights_single_path;
    QCheck_alcotest.to_alcotest prop_load_conservation;
    Alcotest.test_case "node exclusion" `Quick test_exclude_node;
    Alcotest.test_case "unrouted demand on failure" `Quick test_unrouted_on_failure;
    Alcotest.test_case "expected/max delay over ECMP" `Quick test_expected_delay_ecmp;
    Alcotest.test_case "bottleneck DP" `Quick test_bottleneck;
    Alcotest.test_case "incremental failure equals recompute" `Quick
      test_incremental_failure_equivalence;
  ]
