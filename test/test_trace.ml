(* Tests for the flight recorder (Dtr_obs.Trace) and convergence telemetry
   (Dtr_obs.Convergence): ring ordering and drop accounting under concurrent
   multi-domain emission (qcheck property), Chrome trace-event export
   structure, series recording semantics, and — the PR 4 invariant extended
   to PR 5 — that a fixed-seed optimization is bit-identical with the flight
   recorder on and off. *)

module Rng = Dtr_util.Rng
module Json = Dtr_util.Json
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Optimizer = Dtr_core.Optimizer
module Exec = Dtr_exec.Exec
module Metric = Dtr_obs.Metric
module Trace = Dtr_obs.Trace
module Convergence = Dtr_obs.Convergence

(* --- ring buffer semantics -------------------------------------------- *)

(* Concurrent multi-domain emission: every domain keeps its own ring, so
   with per-domain emission counts [ns] and ring capacity [cap] the drained
   snapshot must satisfy, per domain: events in emission order with
   gap-free seq ending at n-1, exactly min(n, cap) survivors; and globally:
   emitted = sum n, dropped = sum max(0, n - cap).  Domains spawned by the
   property get fresh rings, so [set_capacity] applies to them. *)
let prop_ring_order_and_drop_accounting =
  QCheck.Test.make ~name:"Trace ring: order, gap-free seq, exact drop accounting"
    ~count:25
    QCheck.(list_of_size Gen.(int_range 1 4) (int_range 0 300))
    (fun ns ->
      Trace.reset ();
      let prev_cap = Trace.capacity () in
      Trace.set_capacity 128;
      let cap = Trace.capacity () in
      let emit_batch i n =
        for j = 0 to n - 1 do
          Trace.emit Trace.Move ~name:"m" ~a:i ~b:j ~f1:0. ~f2:0. ~f3:0. ~f4:0.
        done
      in
      let domains =
        List.mapi (fun i n -> Domain.spawn (fun () -> emit_batch i n)) ns
      in
      List.iter Domain.join domains;
      let drained =
        List.filter (fun (_, evs) -> Array.length evs > 0) (Trace.drain ())
      in
      let ok_per_domain =
        List.for_all
          (fun (_, evs) ->
            let i = evs.(0).Trace.a in
            let n = List.nth ns i in
            let expect = min n cap in
            Array.length evs = expect
            && evs.(Array.length evs - 1).Trace.seq = n - 1
            && Array.for_all
                 (fun e -> e.Trace.a = i && e.Trace.b = e.Trace.seq)
                 evs
            &&
            let gap_free = ref true in
            for k = 1 to Array.length evs - 1 do
              if evs.(k).Trace.seq <> evs.(k - 1).Trace.seq + 1 then
                gap_free := false
            done;
            !gap_free)
          drained
      in
      let st = Trace.stats () in
      let total = List.fold_left ( + ) 0 ns in
      let expected_dropped =
        List.fold_left (fun acc n -> acc + max 0 (n - cap)) 0 ns
      in
      (* Restore before the next case / test: rings are created with the
         capacity current at their first emission and keep it. *)
      Trace.set_capacity prev_cap;
      ok_per_domain
      && st.Trace.emitted = total
      && st.Trace.dropped = expected_dropped
      && st.Trace.recorded + st.Trace.dropped = st.Trace.emitted
      (* Non-empty batches must each have produced a ring. *)
      && List.length drained = List.length (List.filter (fun n -> n > 0) ns))

let test_reset_and_capacity_validation () =
  Trace.reset ();
  let st = Trace.stats () in
  Alcotest.(check int) "reset zeroes emitted" 0 st.Trace.emitted;
  Alcotest.(check int) "reset zeroes dropped" 0 st.Trace.dropped;
  Alcotest.check_raises "non-positive capacity rejected"
    (Invalid_argument "Dtr_obs.Trace.set_capacity: capacity must be positive")
    (fun () -> Trace.set_capacity 0)

(* --- Chrome export ----------------------------------------------------- *)

let test_chrome_export_structure () =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) @@ fun () ->
  Trace.emit_phase ~name:"phase_t";
  Trace.emit_span_begin ~name:"outer";
  Trace.emit_sweep_begin ~scenario:42 ~failures:7;
  Trace.emit_sweep_end ~scenario:42 ~failures:7;
  Trace.emit_move ~arc:3 ~accepted:true ~old_lambda:1. ~old_phi:2. ~new_lambda:0.5
    ~new_phi:1.5;
  Trace.emit_chunk_claim ~lo:0 ~hi:16;
  Trace.emit_span_end ~name:"outer";
  let doc = Json.parse_exn (Trace.chrome_json ()) in
  let events = Json.to_list (Option.get (Json.member "traceEvents" doc)) in
  Alcotest.(check int) "all seven events exported" 7 (List.length events);
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "event has %S" k)
            true
            (Json.member k e <> None))
        [ "ph"; "ts"; "pid"; "tid"; "name" ];
      Alcotest.(check bool) "timestamp non-negative" true
        (Json.float_member "ts" e ~default:(-1.) >= 0.))
    events;
  let phs = List.map (fun e -> Json.string_member "ph" e ~default:"?") events in
  let count p = List.length (List.filter (( = ) p) phs) in
  Alcotest.(check int) "begin/end balanced" (count "B") (count "E");
  Alcotest.(check bool) "instant events present" true (count "i" > 0);
  let other = Option.get (Json.member "otherData" doc) in
  Alcotest.(check string) "trace schema"
    "dtr-trace/1"
    (Json.string_member "schema" other ~default:"?");
  Alcotest.(check int) "accounting: emitted" 7
    (Json.int_member "emitted" other ~default:(-1));
  Alcotest.(check int) "accounting: dropped" 0
    (Json.int_member "dropped" other ~default:(-1));
  Trace.reset ()

(* --- convergence series ------------------------------------------------ *)

let with_metric enabled f =
  let was = Metric.enabled () in
  Metric.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Metric.set_enabled was) f

let record_point ~best ~cur =
  Convergence.record ~best_lambda:best ~best_phi:best ~cur_lambda:cur
    ~cur_phi:cur ~trials:10 ~accepts:2 ~resets:0

let test_convergence_series () =
  with_metric true @@ fun () ->
  Convergence.reset ();
  Convergence.with_series ~name:"outer" (fun () ->
      record_point ~best:3. ~cur:3.;
      (* Nesting switches the ambient series and restores it on exit. *)
      Convergence.with_series ~name:"inner" (fun () ->
          record_point ~best:9. ~cur:9.);
      record_point ~best:2. ~cur:4.);
  (* Re-entering a name appends to the existing series. *)
  Convergence.with_series ~name:"outer" (fun () -> record_point ~best:1. ~cur:1.);
  (match Convergence.all () with
  | [ ("outer", outer); ("inner", inner) ] ->
      Alcotest.(check (list int))
        "outer iteration indices auto-assigned" [ 0; 1; 2 ]
        (List.map (fun p -> p.Convergence.iter) outer);
      Alcotest.(check (list (float 0.)))
        "outer best trajectory in order" [ 3.; 2.; 1. ]
        (List.map (fun p -> p.Convergence.best_phi) outer);
      Alcotest.(check int) "inner got exactly its own point" 1
        (List.length inner)
  | series ->
      Alcotest.failf "expected series outer+inner, got %d" (List.length series));
  Convergence.reset ();
  Alcotest.(check int) "reset drops series" 0 (List.length (Convergence.all ()))

let test_convergence_disabled_and_ambient () =
  with_metric false (fun () ->
      Convergence.reset ();
      Convergence.with_series ~name:"ghost" (fun () ->
          record_point ~best:1. ~cur:1.);
      Alcotest.(check int) "disabled records nothing" 0
        (List.length (Convergence.all ())));
  with_metric true (fun () ->
      Convergence.reset ();
      (* No ambient series: record is a silent no-op, not an error. *)
      record_point ~best:1. ~cur:1.;
      Alcotest.(check int) "no ambient series, nothing recorded" 0
        (List.length (Convergence.all ())))

(* --- determinism invariant --------------------------------------------- *)

(* The acceptance bar for the whole PR: switching the flight recorder (and
   the metric instrumentation it piggybacks on) on must leave a fixed-seed
   optimization bit-identical. *)
let test_trace_never_perturbs () =
  let scenario = Fixtures.small ~seed:2008 ~nodes:8 ~avg_util:0.45 () in
  let solve () = Optimizer.optimize ~rng:(Rng.create 7) ~exec:Exec.serial scenario in
  let off = solve () in
  let on =
    with_metric true @@ fun () ->
    Trace.reset ();
    Trace.set_enabled true;
    Fun.protect ~finally:(fun () -> Trace.set_enabled false) solve
  in
  Alcotest.(check bool) "robust weights identical with tracing on" true
    (on.Optimizer.robust.Weights.wd = off.Optimizer.robust.Weights.wd
    && on.Optimizer.robust.Weights.wt = off.Optimizer.robust.Weights.wt);
  Alcotest.(check bool) "costs identical with tracing on" true
    (on.Optimizer.regular_cost = off.Optimizer.regular_cost
    && on.Optimizer.robust_normal_cost = off.Optimizer.robust_normal_cost
    && on.Optimizer.robust_fail_cost = off.Optimizer.robust_fail_cost);
  Alcotest.(check (list int))
    "critical set identical with tracing on" on.Optimizer.critical
    off.Optimizer.critical;
  (* And the traced run actually recorded the search: move trials, phase
     markers and span pairs all present. *)
  let st = Trace.stats () in
  Alcotest.(check bool) "flight recorder saw the run" true (st.Trace.emitted > 0);
  let kinds =
    List.concat_map
      (fun (_, evs) ->
        Array.to_list (Array.map (fun e -> e.Trace.kind) evs))
      (Trace.drain ())
  in
  (* Moves and span closes dominate the tail of the run, so they survive
     any drop-oldest window; early one-shot events (phase markers, span
     opens) are only guaranteed when nothing wrapped. *)
  let expected_kinds =
    [ (Trace.Move, "move"); (Trace.Span_end, "span end") ]
    @
    if st.Trace.dropped = 0 then
      [ (Trace.Phase, "phase"); (Trace.Span_begin, "span begin") ]
    else []
  in
  List.iter
    (fun (k, label) ->
      Alcotest.(check bool) (label ^ " events recorded") true (List.mem k kinds))
    expected_kinds;
  Trace.reset ()

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ring_order_and_drop_accounting;
    Alcotest.test_case "reset and capacity validation" `Quick
      test_reset_and_capacity_validation;
    Alcotest.test_case "Chrome trace-event export structure" `Quick
      test_chrome_export_structure;
    Alcotest.test_case "convergence series semantics" `Quick
      test_convergence_series;
    Alcotest.test_case "convergence gating and ambient scoping" `Quick
      test_convergence_disabled_and_ambient;
    Alcotest.test_case "tracing never perturbs results" `Slow
      test_trace_never_perturbs;
  ]
