(* Tests for Dtr_exec: the deterministic domain-pool execution engine.

   The contract under test is determinism — [Exec.map]/[Pool.map] must be
   bit-identical to the serial loop for every job count — plus the pool
   plumbing (chunk planning, exception propagation, re-entrancy, scratch
   ownership) and the parallel failure sweeps built on top of it. *)

module Chunk = Dtr_exec.Chunk
module Pool = Dtr_exec.Pool
module Exec = Dtr_exec.Exec
module Scratch = Dtr_exec.Scratch
module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Failure = Dtr_topology.Failure
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Optimizer = Dtr_core.Optimizer
module Lexico = Dtr_cost.Lexico

(* Shared pools so the suite does not spawn domains per test case. *)
let pool2 = lazy (Exec.of_jobs 2)
let pool4 = lazy (Exec.of_jobs 4)

let execs () = [ (1, Exec.serial); (2, Lazy.force pool2); (4, Lazy.force pool4) ]

(* ------------------------------------------------------------------ *)
(* Chunk                                                               *)
(* ------------------------------------------------------------------ *)

let test_chunk_partition () =
  (* The chunks must partition [0, items) exactly: contiguous, disjoint,
     nothing dropped — for a spread of item counts and job counts. *)
  List.iter
    (fun (items, jobs) ->
      let plan = Chunk.plan ~items ~jobs in
      let covered = ref 0 in
      for c = 0 to plan.Chunk.count - 1 do
        let lo, hi = Chunk.bounds plan c in
        Alcotest.(check int) "contiguous" !covered lo;
        Alcotest.(check bool) "non-empty" true (hi > lo);
        covered := hi
      done;
      Alcotest.(check int)
        (Printf.sprintf "items=%d jobs=%d fully covered" items jobs)
        items !covered)
    [ (0, 1); (1, 1); (1, 8); (7, 2); (64, 4); (100, 3); (1000, 16) ]

let test_chunk_empty () =
  let plan = Chunk.plan ~items:0 ~jobs:4 in
  Alcotest.(check int) "no chunks for no items" 0 plan.Chunk.count

let test_chunk_invalid () =
  Alcotest.check_raises "negative items"
    (Invalid_argument "Chunk.plan: negative item count") (fun () ->
      ignore (Chunk.plan ~items:(-1) ~jobs:2));
  Alcotest.check_raises "zero jobs"
    (Invalid_argument "Chunk.plan: jobs must be positive") (fun () ->
      ignore (Chunk.plan ~items:10 ~jobs:0));
  let plan = Chunk.plan ~items:10 ~jobs:2 in
  Alcotest.check_raises "chunk id out of range"
    (Invalid_argument "Chunk.bounds: chunk id out of range") (fun () ->
      ignore (Chunk.bounds plan plan.Chunk.count))

(* ------------------------------------------------------------------ *)
(* Pool / Exec determinism                                             *)
(* ------------------------------------------------------------------ *)

(* The qcheck property of the determinism contract: for random workloads,
   [Exec.map] over 1, 2 and 4 domains is bit-identical to [List.map] on the
   calling domain.  [f] mixes integer and float arithmetic so any reordering
   or double-application would show. *)
let prop_map_matches_list_map =
  QCheck.Test.make ~name:"Exec.map at jobs 1/2/4 equals List.map" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 200) (int_range (-1000) 1000))
    (fun xs ->
      let f x = (float_of_int x *. 1.7) +. sqrt (float_of_int (abs x)) in
      let expected = Array.of_list (List.map f xs) in
      let items = Array.of_list xs in
      List.for_all
        (fun (_, exec) ->
          Exec.map exec ~n:(Array.length items) ~f:(fun i -> f items.(i)) = expected)
        (execs ()))

let test_map_empty_and_singleton () =
  List.iter
    (fun (jobs, exec) ->
      Alcotest.(check (array int))
        (Printf.sprintf "empty map, jobs %d" jobs)
        [||]
        (Exec.map exec ~n:0 ~f:(fun i -> i));
      Alcotest.(check (array int))
        (Printf.sprintf "singleton map, jobs %d" jobs)
        [| 7 |]
        (Exec.map exec ~n:1 ~f:(fun i -> i + 7)))
    (execs ())

let test_iter_covers_all_indices () =
  List.iter
    (fun (jobs, exec) ->
      let n = 257 in
      let hits = Array.make n 0 in
      (* Each index is owned by exactly one chunk, so unsynchronised writes
         to distinct slots are safe. *)
      Exec.iter exec ~n ~f:(fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "every index exactly once, jobs %d" jobs)
        true
        (Array.for_all (fun h -> h = 1) hits))
    (execs ())

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun (jobs, exec) ->
      (match Exec.map exec ~n:100 ~f:(fun i -> if i = 63 then raise (Boom i) else i) with
      | (_ : int array) -> Alcotest.failf "jobs %d: expected Boom" jobs
      | exception Boom 63 -> ());
      (* The pool must survive a failed batch and run the next one. *)
      Alcotest.(check (array int))
        (Printf.sprintf "pool usable after failure, jobs %d" jobs)
        [| 0; 1; 2 |]
        (Exec.map exec ~n:3 ~f:(fun i -> i)))
    (execs ())

let test_nested_run_degrades_serially () =
  (* A parallel map whose body itself calls Exec.map on the same context
     must not deadlock: the inner call runs inline on the caller. *)
  let exec = Lazy.force pool2 in
  let outer =
    Exec.map exec ~n:4 ~f:(fun i ->
        Array.fold_left ( + ) 0 (Exec.map exec ~n:5 ~f:(fun j -> (10 * i) + j)))
  in
  Alcotest.(check (array int)) "nested map correct" [| 10; 60; 110; 160 |] outer

let test_scratch_is_per_domain () =
  let slot = Scratch.create (fun () -> ref 0) in
  let exec = Lazy.force pool4 in
  (* Every task bumps this domain's counter; the total over all domains must
     equal the task count even though no slot is shared or locked. *)
  let n = 500 in
  Exec.iter exec ~n ~f:(fun _ -> incr (Scratch.get slot));
  let counts =
    Exec.map exec ~n:(Exec.jobs exec) ~f:(fun _ -> !(Scratch.get slot))
  in
  (* [counts] samples each participating domain at least once; the calling
     domain's slot is read directly. *)
  Alcotest.(check bool) "caller has its own slot" true (!(Scratch.get slot) >= 0);
  Alcotest.(check bool) "scratch counters non-negative" true
    (Array.for_all (fun c -> c >= 0) counts)

let test_exec_of_jobs_one_is_serial () =
  Alcotest.(check int) "of_jobs 1 is serial" 1 (Exec.jobs (Exec.of_jobs 1));
  Alcotest.(check int) "serial is one job" 1 (Exec.jobs Exec.serial);
  Alcotest.(check int) "pool reports its size" 2 (Exec.jobs (Lazy.force pool2))

(* ------------------------------------------------------------------ *)
(* Eval.sweep edge cases, serial and parallel                          *)
(* ------------------------------------------------------------------ *)

let test_sweep_empty_failure_list () =
  let scenario = Fixtures.small () in
  let w = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  List.iter
    (fun (jobs, exec) ->
      Alcotest.(check int)
        (Printf.sprintf "empty sweep, jobs %d" jobs)
        0
        (Array.length (Eval.sweep scenario ~exec w []));
      Alcotest.(check int)
        (Printf.sprintf "empty sweep details, jobs %d" jobs)
        0
        (List.length (Eval.sweep_details scenario ~exec w [])))
    (execs ())

let test_sweep_disconnecting_failure () =
  (* Line 0-1-2 with all delay traffic into node 2: failing arc 1->2 cuts
     every delay pair.  Serial and parallel sweeps must agree exactly on the
     unreachable count and the cost. *)
  let edge u v = Graph.{ u; v; cap = 500.; prop = 0.005 } in
  let g = Graph.of_edges ~n:3 [ edge 0 1; edge 1 2 ] in
  let rd = Dtr_traffic.Matrix.create 3 and rt = Dtr_traffic.Matrix.create 3 in
  Dtr_traffic.Matrix.set rd ~src:0 ~dst:2 10.;
  Dtr_traffic.Matrix.set rd ~src:1 ~dst:2 5.;
  Dtr_traffic.Matrix.set rt ~src:0 ~dst:1 10.;
  let scenario = Scenario.make ~graph:g ~rd ~rt ~params:Fixtures.tiny_params in
  let w = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  let arc12 = match Graph.find_arc g 1 2 with Some id -> id | None -> assert false in
  let failures = [ Failure.Arc arc12 ] in
  let serial = Eval.sweep_details scenario w failures in
  let unreachable = (List.hd serial).Eval.unreachable_pairs in
  Alcotest.(check int) "both delay pairs cut" 2 unreachable;
  List.iter
    (fun (jobs, exec) ->
      let details = Eval.sweep_details scenario ~exec w failures in
      Alcotest.(check int)
        (Printf.sprintf "unreachable_pairs, jobs %d" jobs)
        unreachable
        (List.hd details).Eval.unreachable_pairs;
      Alcotest.(check bool)
        (Printf.sprintf "cost bit-identical, jobs %d" jobs)
        true
        ((List.hd details).Eval.cost = (List.hd serial).Eval.cost))
    (execs ())

(* ------------------------------------------------------------------ *)
(* Fixed-seed bit-identity of sweeps and of the full pipeline          *)
(* ------------------------------------------------------------------ *)

let sweep_instance kind =
  let rng = Rng.create 7 in
  let scenario =
    match kind with
    | Some k -> Scenario.random_instance ~params:Fixtures.tiny_params ~nodes:12 rng k
    | None ->
        (* the fixed 16-node ISP backbone *)
        let graph = Gen.isp_backbone () in
        let rd, rt = Dtr_traffic.Gravity.pair rng ~nodes:16 ~total:1000. in
        let rd, rt =
          Dtr_traffic.Scaling.calibrate graph ~rd ~rt
            (Dtr_traffic.Scaling.Avg_utilization 0.43)
        in
        Scenario.make ~graph ~rd ~rt ~params:Fixtures.tiny_params
  in
  let w =
    Weights.random rng ~num_arcs:(Scenario.num_arcs scenario) ~wmax:20
  in
  (scenario, w)

let test_sweep_bit_identical_across_jobs () =
  List.iter
    (fun (name, kind) ->
      let scenario, w = sweep_instance kind in
      let failures = Failure.all_single_arcs scenario.Scenario.graph in
      let serial = Eval.sweep scenario ~exec:Exec.serial w failures in
      List.iter
        (fun (jobs, exec) ->
          let par = Eval.sweep scenario ~exec w failures in
          Alcotest.(check bool)
            (Printf.sprintf "%s: sweep at jobs %d bit-identical" name jobs)
            true (par = serial);
          Alcotest.(check bool)
            (Printf.sprintf "%s: compound at jobs %d bit-identical" name jobs)
            true
            (Eval.compound par = Eval.compound serial))
        (execs ()))
    [
      ("rand", Some Gen.Rand_topo);
      ("near", Some Gen.Near_topo);
      ("pl", Some Gen.Pl_topo);
      ("isp", None);
    ]

let test_optimize_bit_identical_across_jobs () =
  (* End-to-end determinism on the ISP backbone: the whole two-phase
     pipeline with four domains must reproduce the serial run exactly —
     weights, costs, eval counts, critical set. *)
  let scenario, _ = sweep_instance None in
  let run exec = Optimizer.optimize ~rng:(Rng.create 16) ~exec scenario in
  let serial = run Exec.serial in
  let parallel = run (Lazy.force pool4) in
  Alcotest.(check bool) "regular weights" true
    (Weights.equal serial.Optimizer.regular parallel.Optimizer.regular);
  Alcotest.(check bool) "robust weights" true
    (Weights.equal serial.Optimizer.robust parallel.Optimizer.robust);
  Alcotest.(check bool) "regular cost" true
    (serial.Optimizer.regular_cost = parallel.Optimizer.regular_cost);
  Alcotest.(check bool) "robust normal cost" true
    (serial.Optimizer.robust_normal_cost = parallel.Optimizer.robust_normal_cost);
  Alcotest.(check bool) "robust fail cost" true
    (serial.Optimizer.robust_fail_cost = parallel.Optimizer.robust_fail_cost);
  Alcotest.(check (list int)) "critical set" serial.Optimizer.critical
    parallel.Optimizer.critical;
  Alcotest.(check int) "phase-1 evals"
    serial.Optimizer.phase1.Dtr_core.Phase1.stats.Dtr_core.Phase1.evals
    parallel.Optimizer.phase1.Dtr_core.Phase1.stats.Dtr_core.Phase1.evals;
  Alcotest.(check int) "phase-1 samples"
    serial.Optimizer.phase1.Dtr_core.Phase1.stats.Dtr_core.Phase1.samples
    parallel.Optimizer.phase1.Dtr_core.Phase1.stats.Dtr_core.Phase1.samples;
  Alcotest.(check int) "phase-2 evals"
    serial.Optimizer.phase2.Dtr_core.Phase2.stats.Dtr_core.Phase2.evals
    parallel.Optimizer.phase2.Dtr_core.Phase2.stats.Dtr_core.Phase2.evals

let suite =
  [
    Alcotest.test_case "chunk partition" `Quick test_chunk_partition;
    Alcotest.test_case "chunk empty" `Quick test_chunk_empty;
    Alcotest.test_case "chunk invalid args" `Quick test_chunk_invalid;
    QCheck_alcotest.to_alcotest prop_map_matches_list_map;
    Alcotest.test_case "map empty and singleton" `Quick test_map_empty_and_singleton;
    Alcotest.test_case "iter covers all indices" `Quick test_iter_covers_all_indices;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "nested run degrades serially" `Quick test_nested_run_degrades_serially;
    Alcotest.test_case "scratch is per-domain" `Quick test_scratch_is_per_domain;
    Alcotest.test_case "of_jobs 1 is serial" `Quick test_exec_of_jobs_one_is_serial;
    Alcotest.test_case "sweep: empty failure list" `Quick test_sweep_empty_failure_list;
    Alcotest.test_case "sweep: disconnecting failure" `Quick test_sweep_disconnecting_failure;
    Alcotest.test_case "sweep bit-identity (rand/near/pl/isp)" `Slow
      test_sweep_bit_identical_across_jobs;
    Alcotest.test_case "optimize bit-identity (ISP, jobs 4)" `Slow
      test_optimize_bit_identical_across_jobs;
  ]
