(* Tests for Dtr_core.Weights. *)

module Rng = Dtr_util.Rng
module Weights = Dtr_core.Weights

let test_create () =
  let w = Weights.create ~num_arcs:5 ~init:3 in
  Alcotest.(check int) "num_arcs" 5 (Weights.num_arcs w);
  Array.iter (fun x -> Alcotest.(check int) "wd init" 3 x) w.Weights.wd;
  Array.iter (fun x -> Alcotest.(check int) "wt init" 3 x) w.Weights.wt;
  Alcotest.check_raises "init below 1" (Invalid_argument "Weights.create: weights start at 1")
    (fun () -> ignore (Weights.create ~num_arcs:2 ~init:0))

let test_random_in_range () =
  let rng = Rng.create 1 in
  let w = Weights.random rng ~num_arcs:100 ~wmax:20 in
  Weights.validate w ~wmax:20;
  (* both extremes should appear over 100 arcs x 2 classes *)
  let all = Array.append w.Weights.wd w.Weights.wt in
  Alcotest.(check bool) "spreads over range" true
    (Array.exists (fun x -> x <= 3) all && Array.exists (fun x -> x >= 18) all)

let test_copy_and_equal () =
  let rng = Rng.create 2 in
  let w = Weights.random rng ~num_arcs:10 ~wmax:20 in
  let c = Weights.copy w in
  Alcotest.(check bool) "copies equal" true (Weights.equal w c);
  c.Weights.wd.(0) <- c.Weights.wd.(0) + 1;
  Alcotest.(check bool) "diverge after mutation" false (Weights.equal w c)

let test_save_restore () =
  let rng = Rng.create 3 in
  let w = Weights.random rng ~num_arcs:10 ~wmax:20 in
  let before = Weights.copy w in
  let saved = Weights.save_arc w 4 in
  Weights.set_arc w ~arc:4 ~wd:19 ~wt:19;
  Alcotest.(check bool) "changed" false (Weights.equal w before);
  Weights.restore_arc w saved;
  Alcotest.(check bool) "restored" true (Weights.equal w before)

let test_perturb_arc () =
  let rng = Rng.create 4 in
  let w = Weights.create ~num_arcs:10 ~init:5 in
  Weights.perturb_arc rng w ~arc:2 ~wmax:20;
  Weights.validate w ~wmax:20;
  (* only arc 2 can have changed *)
  for i = 0 to 9 do
    if i <> 2 then begin
      Alcotest.(check int) "wd untouched" 5 w.Weights.wd.(i);
      Alcotest.(check int) "wt untouched" 5 w.Weights.wt.(i)
    end
  done

let test_raise_arc () =
  let rng = Rng.create 5 in
  let w = Weights.create ~num_arcs:10 ~init:5 in
  for _ = 1 to 50 do
    Weights.raise_arc rng w ~arc:7 ~wmax:20 ~q:0.7;
    Alcotest.(check bool) "wd in failure band" true (w.Weights.wd.(7) >= 14 && w.Weights.wd.(7) <= 20);
    Alcotest.(check bool) "wt in failure band" true (w.Weights.wt.(7) >= 14 && w.Weights.wt.(7) <= 20)
  done;
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Weights.raise_arc: q outside (0, 1)") (fun () ->
      Weights.raise_arc rng w ~arc:0 ~wmax:20 ~q:1.5)

let test_validate_rejects () =
  let w = Weights.create ~num_arcs:3 ~init:1 in
  w.Weights.wd.(1) <- 25;
  Alcotest.check_raises "above wmax"
    (Invalid_argument "Weights.validate: weight out of range") (fun () ->
      Weights.validate w ~wmax:20)

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "random in range" `Quick test_random_in_range;
    Alcotest.test_case "copy and equal" `Quick test_copy_and_equal;
    Alcotest.test_case "save/restore arc" `Quick test_save_restore;
    Alcotest.test_case "perturb single arc" `Quick test_perturb_arc;
    Alcotest.test_case "raise arc to failure band" `Quick test_raise_arc;
    Alcotest.test_case "validation" `Quick test_validate_rejects;
  ]
