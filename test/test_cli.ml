(* Tests for the shared CLI plumbing (dtr_cli): the --jobs converter must
   reject invalid counts through Cmdliner's own error channel (usage +
   Cmd.Exit.cli_error) instead of the old eprintf-and-exit-1 bypass,
   exec_of_jobs must honor explicit counts, and the trace tooling
   (report diff, BENCH perf-regression gate) must produce the documented
   verdicts and exit codes. *)

module Cli = Dtr_cli.Cli
module Trace_cmd = Dtr_cli.Trace_cmd
module Exec = Dtr_exec.Exec
open Cmdliner

let null_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let jobs_cmd =
  let jobs = Arg.(value & opt (some Cli.jobs_conv) None & info [ "jobs" ]) in
  Cmd.v (Cmd.info "dtr-test") Term.(const (fun (_ : int option) -> ()) $ jobs)

let eval argv = Cmd.eval ~help:null_fmt ~err:null_fmt ~argv jobs_cmd

let test_jobs_conv_exit_codes () =
  Alcotest.(check int)
    "--jobs 0 exits with Cmdliner's cli_error" Cmd.Exit.cli_error
    (eval [| "dtr-test"; "--jobs"; "0" |]);
  Alcotest.(check int)
    "--jobs=-3 exits with cli_error" Cmd.Exit.cli_error
    (eval [| "dtr-test"; "--jobs=-3" |]);
  Alcotest.(check int)
    "--jobs two exits with cli_error" Cmd.Exit.cli_error
    (eval [| "dtr-test"; "--jobs"; "two" |]);
  Alcotest.(check int)
    "--jobs 2 is accepted" Cmd.Exit.ok
    (eval [| "dtr-test"; "--jobs"; "2" |]);
  Alcotest.(check int)
    "--jobs 1 is accepted" Cmd.Exit.ok
    (eval [| "dtr-test"; "--jobs"; "1" |]);
  Alcotest.(check int)
    "absent --jobs is accepted" Cmd.Exit.ok (eval [| "dtr-test" |])

let test_jobs_conv_parse () =
  let parse = Arg.conv_parser Cli.jobs_conv in
  (match parse "4" with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "expected Ok 4");
  (match parse "0" with
  | Error (`Msg _) -> ()
  | _ -> Alcotest.fail "expected an error for 0");
  match parse " 8 " with
  | Ok 8 -> ()
  | _ -> Alcotest.fail "expected Ok 8 for padded input"

let test_exec_of_jobs () =
  Alcotest.(check int) "explicit 1 is serial" 1 (Exec.jobs (Cli.exec_of_jobs (Some 1)));
  Alcotest.(check int) "explicit 2 forces 2 domains" 2
    (Exec.jobs (Cli.exec_of_jobs (Some 2)));
  Alcotest.(check bool) "default resolves to at least one job" true
    (Exec.jobs (Cli.exec_of_jobs None) >= 1)

(* The observability bracket must be symmetric: after an instrumented run
   switches Metric/Trace on, a subsequent plain run (no --verbose, --report
   or --trace) must switch them back off, not inherit stale enablement. *)
let test_obs_start_symmetry () =
  let saved_metric = Dtr_obs.Metric.enabled () in
  let saved_trace = Dtr_obs.Trace.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Dtr_obs.Metric.set_enabled saved_metric;
      Dtr_obs.Trace.set_enabled saved_trace)
    (fun () ->
      Cli.obs_start ~verbose:false ~report:None ~trace:(Some "t.json") ();
      Alcotest.(check bool) "--trace enables metrics" true (Dtr_obs.Metric.enabled ());
      Alcotest.(check bool) "--trace enables the recorder" true
        (Dtr_obs.Trace.enabled ());
      Cli.obs_start ~verbose:false ~report:None ~trace:None ();
      Alcotest.(check bool) "plain run disables metrics again" false
        (Dtr_obs.Metric.enabled ());
      Alcotest.(check bool) "plain run disables the recorder again" false
        (Dtr_obs.Trace.enabled ());
      Cli.obs_start ~verbose:false ~report:(Some "r.json") ~trace:None ();
      Alcotest.(check bool) "--report enables metrics" true (Dtr_obs.Metric.enabled ());
      Alcotest.(check bool) "--report alone leaves the recorder off" false
        (Dtr_obs.Trace.enabled ()))

(* A run that raises mid-flight must not leak enabled instrumentation or an
   attached log sink into the next in-process run: with_obs tears the whole
   bracket down on the way out and re-raises the original exception. *)
let test_with_obs_exception_safety () =
  let saved_metric = Dtr_obs.Metric.enabled () in
  let saved_trace = Dtr_obs.Trace.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Dtr_obs.Metric.set_enabled saved_metric;
      Dtr_obs.Trace.set_enabled saved_trace)
    (fun () ->
      let raised =
        match
          Cli.with_obs ~log:"fd:2" ~verbose:true ~report:None
            ~trace:(Some "t.json") (fun () ->
              Alcotest.(check bool) "metrics on inside the bracket" true
                (Dtr_obs.Metric.enabled ());
              Alcotest.(check bool) "log sink attached inside the bracket" true
                (Dtr_obs.Log.enabled ());
              failwith "boom")
        with
        | () -> false
        | exception Failure msg -> msg = "boom"
      in
      Alcotest.(check bool) "original exception re-raised" true raised;
      Alcotest.(check bool) "raise disables metrics" false
        (Dtr_obs.Metric.enabled ());
      Alcotest.(check bool) "raise disables the recorder" false
        (Dtr_obs.Trace.enabled ());
      Alcotest.(check bool) "raise detaches the log sink" false
        (Dtr_obs.Log.enabled ());
      (* The success path leaves whatever the run configured in place. *)
      Cli.with_obs ~verbose:false ~report:None ~trace:None (fun () -> ());
      Alcotest.(check bool) "clean run leaves metrics off" false
        (Dtr_obs.Metric.enabled ()))

(* --- trace diff --------------------------------------------------------- *)

let report_doc ~optimize_count ~sweeps =
  Printf.sprintf
    {|{
  "schema": "dtr-obs-report/2",
  "spans": [
    {"name": "optimize", "count": %d, "seconds": 0.5, "children": [
      {"name": "phase1", "count": 1, "seconds": 0.3, "children": []}
    ]}
  ],
  "counters": {"eval.sweeps": %d}
}|}
    optimize_count sweeps

let test_trace_diff_identical () =
  let doc = report_doc ~optimize_count:1 ~sweeps:100 in
  match Trace_cmd.diff_reports ~label_a:"A" ~label_b:"B" ~a:doc ~b:doc with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok d ->
      Alcotest.(check int) "same run shows zero span-count deltas" 0
        d.Trace_cmd.count_deltas;
      Alcotest.(check int) "zero counter deltas" 0 d.Trace_cmd.counter_deltas

let test_trace_diff_detects_deltas () =
  match
    Trace_cmd.diff_reports ~label_a:"A" ~label_b:"B"
      ~a:(report_doc ~optimize_count:1 ~sweeps:100)
      ~b:(report_doc ~optimize_count:2 ~sweeps:140)
  with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok d ->
      Alcotest.(check int) "span-count delta detected" 1 d.Trace_cmd.count_deltas;
      Alcotest.(check int) "counter delta detected" 1 d.Trace_cmd.counter_deltas

let test_trace_diff_malformed () =
  match
    Trace_cmd.diff_reports ~label_a:"A" ~label_b:"B" ~a:"{ not json"
      ~b:(report_doc ~optimize_count:1 ~sweeps:1)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed report must be an error"

(* --- trace bench-check --------------------------------------------------- *)

let bench_doc rows =
  Printf.sprintf {|{"kernel": "synthetic", "rows": [%s]}|}
    (String.concat ", " rows)

let row ?commit ?timestamp ~name ns =
  Printf.sprintf {|{"name": %S, "ns_per_op": %.1f%s%s}|} name ns
    (match commit with Some c -> Printf.sprintf {|, "commit": %S|} c | None -> "")
    (match timestamp with
    | Some t -> Printf.sprintf {|, "timestamp": %S|} t
    | None -> "")

(* A >20% ns/op increase between consecutive trajectory rows must trip the
   gate (exit 1 at the CLI); tightening the threshold above the injected
   regression must clear it. *)
let test_bench_check_injected_regression () =
  let doc =
    bench_doc
      [
        (* Unstamped pre-PR-5 row: sorts first, still part of the walk. *)
        row ~name:"spf" 1000.;
        row ~name:"spf" ~commit:"aaa" ~timestamp:"2026-08-01T00:00:00Z" 1050.;
        row ~name:"spf" ~commit:"bbb" ~timestamp:"2026-08-05T00:00:00Z" 1400.;
        row ~name:"other" ~commit:"bbb" ~timestamp:"2026-08-05T00:00:00Z" 10.;
      ]
  in
  (match Trace_cmd.check_files ~threshold:20. [ ("BENCH_synthetic.json", doc) ] with
  | Error e -> Alcotest.failf "check failed: %s" e
  | Ok r -> (
      match r.Trace_cmd.regressions with
      | [ reg ] ->
          Alcotest.(check string) "regressing measurement" "spf"
            reg.Trace_cmd.r_name;
          Alcotest.(check string) "blamed commit" "bbb" reg.Trace_cmd.to_commit;
          Alcotest.(check bool) "change is the 33% step" true
            (Float.abs (reg.Trace_cmd.change_pct -. 33.3) < 0.5)
      | regs -> Alcotest.failf "expected one regression, got %d" (List.length regs)));
  match Trace_cmd.check_files ~threshold:50. [ ("BENCH_synthetic.json", doc) ] with
  | Error e -> Alcotest.failf "check failed: %s" e
  | Ok r ->
      Alcotest.(check int) "50% threshold clears the 33% step" 0
        (List.length r.Trace_cmd.regressions)

(* Timestamp ordering, not file order, defines the trajectory: a backfilled
   file listing the newest row first must not report a phantom regression
   (or miss a real one). *)
let test_bench_check_backfill_ordering () =
  let doc =
    bench_doc
      [
        row ~name:"spf" ~commit:"new" ~timestamp:"2026-08-05T00:00:00Z" 2000.;
        row ~name:"spf" ~commit:"old" ~timestamp:"2026-08-01T00:00:00Z" 1000.;
      ]
  in
  match Trace_cmd.check_files ~threshold:20. [ ("b.json", doc) ] with
  | Error e -> Alcotest.failf "check failed: %s" e
  | Ok r -> (
      match r.Trace_cmd.regressions with
      | [ reg ] ->
          Alcotest.(check string) "old commit is the baseline" "old"
            reg.Trace_cmd.from_commit;
          Alcotest.(check string) "new commit is blamed" "new"
            reg.Trace_cmd.to_commit
      | regs ->
          Alcotest.failf "expected exactly one regression, got %d"
            (List.length regs))

(* The FAILED verdict line must name the offending kernel/measurement (with
   the observed step) so a CI log tail is actionable without scrolling back
   to the regression table. *)
let test_bench_check_failure_names_offender () =
  let doc =
    bench_doc
      [
        row ~name:"spf" ~commit:"aaa" ~timestamp:"2026-08-01T00:00:00Z" 1000.;
        row ~name:"spf" ~commit:"bbb" ~timestamp:"2026-08-05T00:00:00Z" 1400.;
      ]
  in
  match Trace_cmd.check_files ~threshold:20. [ ("b.json", doc) ] with
  | Error e -> Alcotest.failf "check failed: %s" e
  | Ok r ->
      let last_line =
        match
          List.rev
            (List.filter (fun l -> l <> "") (String.split_on_char '\n' r.Trace_cmd.report))
        with
        | l :: _ -> l
        | [] -> ""
      in
      let contains needle =
        let n = String.length needle and h = String.length last_line in
        let rec go i = i + n <= h && (String.sub last_line i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "verdict line is the FAILED line" true
        (contains "bench-check FAILED");
      Alcotest.(check bool) "verdict names kernel/measurement" true
        (contains "synthetic/spf");
      Alcotest.(check bool) "verdict includes the step size" true
        (contains "+40.0%")

let test_bench_check_malformed_is_error () =
  match Trace_cmd.check_files ~threshold:20. [ ("bad.json", "{") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt BENCH file must fail the gate, not skip"

(* End-to-end through the CLI entry points: the documented exit codes. *)
let test_trace_cli_exit_codes () =
  let write content =
    let path = Filename.temp_file "dtr_test_bench" ".json" in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    path
  in
  let regressing =
    write
      (bench_doc
         [
           row ~name:"k" ~timestamp:"2026-08-01T00:00:00Z" 100.;
           row ~name:"k" ~timestamp:"2026-08-02T00:00:00Z" 200.;
         ])
  in
  let steady =
    write
      (bench_doc
         [
           row ~name:"k" ~timestamp:"2026-08-01T00:00:00Z" 100.;
           row ~name:"k" ~timestamp:"2026-08-02T00:00:00Z" 101.;
         ])
  in
  let report = write (report_doc ~optimize_count:1 ~sweeps:5) in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ regressing; steady; report ])
    (fun () ->
      Alcotest.(check int) "injected regression exits 1" 1
        (Trace_cmd.run_bench_check 20. [ regressing ]);
      Alcotest.(check int) "steady trajectory exits 0" 0
        (Trace_cmd.run_bench_check 20. [ steady ]);
      Alcotest.(check int) "mixed file set exits 1" 1
        (Trace_cmd.run_bench_check 20. [ steady; regressing ]);
      Alcotest.(check int) "diff of a report against itself exits 0" 0
        (Trace_cmd.run_diff report report))

(* --- convergence rendering ---------------------------------------------- *)

let test_sparkline () =
  Alcotest.(check string) "empty series" "" (Trace_cmd.sparkline []);
  let s = Trace_cmd.sparkline [ 0.; 1.; 2.; 3. ] in
  Alcotest.(check int) "one glyph per point" 4 (String.length s);
  Alcotest.(check char) "minimum maps to the lowest level" ' ' s.[0];
  Alcotest.(check char) "maximum maps to the highest level" '@' s.[3];
  Alcotest.(check bool) "flat series renders at one level" true
    (Trace_cmd.sparkline [ 5.; 5.; 5. ] = "   ");
  (* Long series are resampled to a bounded width. *)
  let long = Trace_cmd.sparkline (List.init 500 float_of_int) in
  Alcotest.(check bool) "long series bounded" true (String.length long <= 72)

(* --- trace diff over /3 histograms -------------------------------------- *)

let report_doc_v3 ~eval_count ~bucket_count =
  Printf.sprintf
    {|{
  "schema": "dtr-obs-report/3",
  "spans": [],
  "counters": {},
  "histograms": [
    {"name": "serve.latency", "labels": {"event": "eval"}, "count": %d,
     "sum": 0.5, "p50": 0.001, "p90": 0.002, "p99": 0.004, "p999": 0.004,
     "buckets": [{"le": 0.001, "count": %d}, {"le": 0.004, "count": 2}]}
  ],
  "rolling": [{"name": "serve.events", "window_seconds": 60, "total": 5.0,
               "per_second": 0.083}]
}|}
    eval_count bucket_count

let test_trace_diff_histograms () =
  let doc = report_doc_v3 ~eval_count:7 ~bucket_count:5 in
  (match Trace_cmd.diff_reports ~label_a:"A" ~label_b:"B" ~a:doc ~b:doc with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok d ->
      Alcotest.(check int) "identical /3 reports: no histogram deltas" 0
        d.Trace_cmd.histogram_deltas);
  (* Bucket placement depends on wall-clock latency, so bucket drift at the
     same total must NOT gate — only total-count drift is deterministic. *)
  (match
     Trace_cmd.diff_reports ~label_a:"A" ~label_b:"B"
       ~a:(report_doc_v3 ~eval_count:7 ~bucket_count:5)
       ~b:(report_doc_v3 ~eval_count:7 ~bucket_count:4)
   with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok d ->
      Alcotest.(check int) "bucket drift at the same total never gates" 0
        d.Trace_cmd.histogram_deltas);
  match
    Trace_cmd.diff_reports ~label_a:"A" ~label_b:"B"
      ~a:(report_doc_v3 ~eval_count:7 ~bucket_count:5)
      ~b:(report_doc_v3 ~eval_count:8 ~bucket_count:5)
  with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok d ->
      Alcotest.(check int) "total-count drift is a histogram delta" 1
        d.Trace_cmd.histogram_deltas

(* --- trace metrics-check ------------------------------------------------- *)

let om_snapshot ?(events = 3) ?(inf = 2) ?(count = 2) ?(b1 = 1) () =
  String.concat "\n"
    [
      "# TYPE dtr_serve_events counter";
      Printf.sprintf "dtr_serve_events_total %d" events;
      "# TYPE dtr_serve_latency_seconds histogram";
      Printf.sprintf
        {|dtr_serve_latency_seconds_bucket{event="eval",le="0.001"} %d|} b1;
      Printf.sprintf
        {|dtr_serve_latency_seconds_bucket{event="eval",le="+Inf"} %d|} inf;
      {|dtr_serve_latency_seconds_sum{event="eval"} 0.0015|};
      Printf.sprintf {|dtr_serve_latency_seconds_count{event="eval"} %d|} count;
      "# EOF";
      "";
    ]

let test_metrics_check_valid () =
  match Trace_cmd.metrics_check (om_snapshot () ^ om_snapshot ~events:5 ()) with
  | Error e -> Alcotest.failf "metrics-check failed: %s" e
  | Ok r ->
      Alcotest.(check int) "two snapshots parsed" 2 r.Trace_cmd.m_snapshots;
      Alcotest.(check (list string)) "no violations" [] r.Trace_cmd.m_violations

let test_metrics_check_violations () =
  let check_violated name content =
    match Trace_cmd.metrics_check content with
    | Error e -> Alcotest.failf "%s: structural error instead of violation: %s" name e
    | Ok r ->
        Alcotest.(check bool)
          (name ^ " reports a violation") true
          (r.Trace_cmd.m_violations <> [])
  in
  (* Counter going backwards between snapshots. *)
  check_violated "counter regression" (om_snapshot ~events:5 () ^ om_snapshot ~events:3 ());
  (* +Inf bucket disagreeing with _count. *)
  check_violated "+Inf vs _count" (om_snapshot ~inf:9 ());
  (* Non-cumulative buckets: a bucket above the +Inf value. *)
  check_violated "non-cumulative buckets" (om_snapshot ~b1:7 ());
  (* Sample without a declared family. *)
  check_violated "undeclared family"
    "# TYPE dtr_serve_events counter\nmystery_metric 1\n# EOF\n"

let test_metrics_check_structural_errors () =
  (match Trace_cmd.metrics_check "# TYPE x counter\nx_total 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing # EOF must be a structural error");
  match Trace_cmd.metrics_check "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty stream must be a structural error"

let suite =
  [
    Alcotest.test_case "--jobs validation exit codes" `Quick
      test_jobs_conv_exit_codes;
    Alcotest.test_case "jobs_conv parser" `Quick test_jobs_conv_parse;
    Alcotest.test_case "exec_of_jobs" `Quick test_exec_of_jobs;
    Alcotest.test_case "obs_start symmetry" `Quick test_obs_start_symmetry;
    Alcotest.test_case "with_obs exception safety" `Quick
      test_with_obs_exception_safety;
    Alcotest.test_case "trace diff: /3 histograms" `Quick
      test_trace_diff_histograms;
    Alcotest.test_case "metrics-check: valid stream" `Quick
      test_metrics_check_valid;
    Alcotest.test_case "metrics-check: violations" `Quick
      test_metrics_check_violations;
    Alcotest.test_case "metrics-check: structural errors" `Quick
      test_metrics_check_structural_errors;
    Alcotest.test_case "trace diff: identical reports" `Quick
      test_trace_diff_identical;
    Alcotest.test_case "trace diff: detects deltas" `Quick
      test_trace_diff_detects_deltas;
    Alcotest.test_case "trace diff: malformed input" `Quick
      test_trace_diff_malformed;
    Alcotest.test_case "bench-check: injected regression" `Quick
      test_bench_check_injected_regression;
    Alcotest.test_case "bench-check: backfill timestamp ordering" `Quick
      test_bench_check_backfill_ordering;
    Alcotest.test_case "bench-check: FAILED line names the offender" `Quick
      test_bench_check_failure_names_offender;
    Alcotest.test_case "bench-check: corrupt file is an error" `Quick
      test_bench_check_malformed_is_error;
    Alcotest.test_case "trace CLI exit codes" `Quick test_trace_cli_exit_codes;
    Alcotest.test_case "sparkline rendering" `Quick test_sparkline;
  ]
