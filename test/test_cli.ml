(* Tests for the shared CLI plumbing (dtr_cli): the --jobs converter must
   reject invalid counts through Cmdliner's own error channel (usage +
   Cmd.Exit.cli_error) instead of the old eprintf-and-exit-1 bypass, and
   exec_of_jobs must honor explicit counts. *)

module Cli = Dtr_cli.Cli
module Exec = Dtr_exec.Exec
open Cmdliner

let null_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let jobs_cmd =
  let jobs = Arg.(value & opt (some Cli.jobs_conv) None & info [ "jobs" ]) in
  Cmd.v (Cmd.info "dtr-test") Term.(const (fun (_ : int option) -> ()) $ jobs)

let eval argv = Cmd.eval ~help:null_fmt ~err:null_fmt ~argv jobs_cmd

let test_jobs_conv_exit_codes () =
  Alcotest.(check int)
    "--jobs 0 exits with Cmdliner's cli_error" Cmd.Exit.cli_error
    (eval [| "dtr-test"; "--jobs"; "0" |]);
  Alcotest.(check int)
    "--jobs=-3 exits with cli_error" Cmd.Exit.cli_error
    (eval [| "dtr-test"; "--jobs=-3" |]);
  Alcotest.(check int)
    "--jobs two exits with cli_error" Cmd.Exit.cli_error
    (eval [| "dtr-test"; "--jobs"; "two" |]);
  Alcotest.(check int)
    "--jobs 2 is accepted" Cmd.Exit.ok
    (eval [| "dtr-test"; "--jobs"; "2" |]);
  Alcotest.(check int)
    "--jobs 1 is accepted" Cmd.Exit.ok
    (eval [| "dtr-test"; "--jobs"; "1" |]);
  Alcotest.(check int)
    "absent --jobs is accepted" Cmd.Exit.ok (eval [| "dtr-test" |])

let test_jobs_conv_parse () =
  let parse = Arg.conv_parser Cli.jobs_conv in
  (match parse "4" with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "expected Ok 4");
  (match parse "0" with
  | Error (`Msg _) -> ()
  | _ -> Alcotest.fail "expected an error for 0");
  match parse " 8 " with
  | Ok 8 -> ()
  | _ -> Alcotest.fail "expected Ok 8 for padded input"

let test_exec_of_jobs () =
  Alcotest.(check int) "explicit 1 is serial" 1 (Exec.jobs (Cli.exec_of_jobs (Some 1)));
  Alcotest.(check int) "explicit 2 forces 2 domains" 2
    (Exec.jobs (Cli.exec_of_jobs (Some 2)));
  Alcotest.(check bool) "default resolves to at least one job" true
    (Exec.jobs (Cli.exec_of_jobs None) >= 1)

let suite =
  [
    Alcotest.test_case "--jobs validation exit codes" `Quick
      test_jobs_conv_exit_codes;
    Alcotest.test_case "jobs_conv parser" `Quick test_jobs_conv_parse;
    Alcotest.test_case "exec_of_jobs" `Quick test_exec_of_jobs;
  ]
