(* Tests for Dtr_io: topology, traffic-matrix and weight-setting
   persistence. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Matrix = Dtr_traffic.Matrix
module Weights = Dtr_core.Weights
module Graph_io = Dtr_io.Graph_io
module Matrix_io = Dtr_io.Matrix_io
module Weights_io = Dtr_io.Weights_io

let temp_file suffix = Filename.temp_file "dtr_test" suffix

(* Graph_io *)

let graphs_equal a b =
  Graph.num_nodes a = Graph.num_nodes b
  && Graph.num_arcs a = Graph.num_arcs b
  && Array.for_all2
       (fun x y ->
         x.Graph.src = y.Graph.src
         && x.Graph.dst = y.Graph.dst
         && Float.abs (x.Graph.capacity -. y.Graph.capacity) < 1e-9
         && Float.abs (x.Graph.delay -. y.Graph.delay) < 1e-12)
       (Graph.arcs a) (Graph.arcs b)

let test_graph_roundtrip () =
  let g = Gen.rand (Rng.create 3) ~nodes:12 ~degree:4. in
  let g' = Graph_io.of_string (Graph_io.to_string g) in
  Alcotest.(check bool) "round-trips" true (graphs_equal g g');
  Alcotest.(check bool) "coords preserved" true (Graph.coords g' <> None)

let test_graph_roundtrip_isp () =
  let g = Gen.isp_backbone () in
  let g' = Graph_io.of_string (Graph_io.to_string g) in
  Alcotest.(check bool) "ISP round-trips" true (graphs_equal g g')

let test_graph_file_io () =
  let g = Gen.rand (Rng.create 4) ~nodes:8 ~degree:3. in
  let path = temp_file ".topo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save g ~path;
      let g' = Graph_io.load ~path in
      Alcotest.(check bool) "file round-trip" true (graphs_equal g g'))

let test_graph_parse_errors () =
  let check_fails name s =
    match Graph_io.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected failure")
  in
  check_fails "empty" "";
  check_fails "missing nodes" "edge 0 1 500 0.005\n";
  check_fails "bad record" "nodes 2\nfrobnicate\n";
  check_fails "bad edge arity" "nodes 2\nedge 0 1 500\n";
  check_fails "self loop" "nodes 2\nedge 1 1 500.0 0.005\n";
  check_fails "partial coords" "nodes 2\nnode 0 0.1 0.2\nedge 0 1 500.0 0.005\n"

let test_graph_comments_and_blanks () =
  let s = "# header\n\nnodes 2\n  edge 0 1 500.0 0.005  # trailing comment\n\n" in
  let g = Graph_io.of_string s in
  Alcotest.(check int) "nodes" 2 (Graph.num_nodes g);
  Alcotest.(check int) "arcs" 2 (Graph.num_arcs g)

let test_graph_dot () =
  let g = Gen.rand (Rng.create 5) ~nodes:6 ~degree:3. in
  let dot = Graph_io.to_dot ~name:"test" g in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 16 && String.sub dot 0 13 = "digraph test ");
  (* one edge line per physical link *)
  let arrow_count =
    List.length
      (List.filter
         (fun line -> String.length (String.trim line) > 0
                      && String.contains line '>')
         (String.split_on_char '\n' dot))
  in
  Alcotest.(check int) "one line per edge" (Graph.edge_count g) arrow_count

(* Matrix_io *)

let test_matrix_roundtrip () =
  let rng = Rng.create 6 in
  let m = Dtr_traffic.Gravity.single rng ~nodes:9 ~total:123.456 in
  let m' = Matrix_io.of_string (Matrix_io.to_string m) in
  Alcotest.(check int) "size" (Matrix.size m) (Matrix.size m');
  Matrix.iter m (fun ~src ~dst v ->
      Alcotest.(check (float 1e-12)) "demand preserved" v (Matrix.get m' ~src ~dst));
  Alcotest.(check (float 1e-9)) "total preserved" (Matrix.total m) (Matrix.total m')

let test_matrix_file_io () =
  let m = Matrix.create 3 in
  Matrix.set m ~src:0 ~dst:2 7.25;
  let path = temp_file ".tm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Matrix_io.save m ~path;
      let m' = Matrix_io.load ~path in
      Alcotest.(check (float 0.)) "demand" 7.25 (Matrix.get m' ~src:0 ~dst:2))

let test_matrix_pair_roundtrip () =
  let rng = Rng.create 7 in
  let rd, rt = Dtr_traffic.Gravity.pair rng ~nodes:6 ~total:100. in
  let rd', rt' = Matrix_io.pair_of_string (Matrix_io.pair_to_string ~rd ~rt) in
  Alcotest.(check (float 1e-9)) "rd total" (Matrix.total rd) (Matrix.total rd');
  Alcotest.(check (float 1e-9)) "rt total" (Matrix.total rt) (Matrix.total rt')

let test_matrix_parse_errors () =
  let check_fails name s =
    match Matrix_io.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected failure")
  in
  check_fails "empty" "";
  check_fails "demand before size" "demand 0 1 5\n";
  check_fails "diagonal demand" "size 3\ndemand 1 1 5\n";
  check_fails "negative demand" "size 3\ndemand 0 1 -5\n";
  check_fails "out of range" "size 3\ndemand 0 9 5\n"

(* Weights_io *)

let test_weights_roundtrip () =
  let rng = Rng.create 8 in
  let w = Weights.random rng ~num_arcs:40 ~wmax:20 in
  let w' = Weights_io.of_string (Weights_io.to_string w) in
  Alcotest.(check bool) "round-trips" true (Weights.equal w w')

let test_weights_file_io () =
  let rng = Rng.create 9 in
  let w = Weights.random rng ~num_arcs:10 ~wmax:20 in
  let path = temp_file ".weights" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Weights_io.save w ~path;
      Alcotest.(check bool) "file round-trip" true (Weights.equal w (Weights_io.load ~path)))

let test_weights_parse_errors () =
  let check_fails name s =
    match Weights_io.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected failure")
  in
  check_fails "empty" "";
  check_fails "missing arcs" "arcs 2\nw 0 3 4\n";
  check_fails "duplicate" "arcs 1\nw 0 3 4\nw 0 5 6\n";
  check_fails "out of range" "arcs 1\nw 3 3 4\n";
  check_fails "zero weight" "arcs 1\nw 0 0 4\n"

let prop_graph_roundtrip =
  QCheck.Test.make ~name:"random graphs round-trip through the topology format" ~count:25
    QCheck.(pair (int_range 4 24) (int_range 0 10000))
    (fun (nodes, seed) ->
      let g = Gen.rand (Rng.create seed) ~nodes ~degree:3. in
      graphs_equal g (Graph_io.of_string (Graph_io.to_string g)))

let prop_matrix_roundtrip =
  QCheck.Test.make ~name:"random matrices round-trip" ~count:25
    QCheck.(pair (int_range 2 15) (int_range 0 10000))
    (fun (nodes, seed) ->
      let m = Dtr_traffic.Gravity.single (Rng.create seed) ~nodes ~total:500. in
      let m' = Matrix_io.of_string (Matrix_io.to_string m) in
      let ok = ref true in
      Matrix.iter m (fun ~src ~dst v ->
          if Float.abs (Matrix.get m' ~src ~dst -. v) > 1e-12 then ok := false);
      !ok)

let prop_weights_roundtrip =
  QCheck.Test.make ~name:"random weight settings round-trip" ~count:50
    QCheck.(pair (int_range 1 200) (int_range 0 10000))
    (fun (num_arcs, seed) ->
      let w = Weights.random (Rng.create seed) ~num_arcs ~wmax:20 in
      Weights.equal w (Weights_io.of_string (Weights_io.to_string w)))

let suite =
  [
    Alcotest.test_case "graph round-trip" `Quick test_graph_roundtrip;
    Alcotest.test_case "graph round-trip (ISP)" `Quick test_graph_roundtrip_isp;
    Alcotest.test_case "graph file io" `Quick test_graph_file_io;
    Alcotest.test_case "graph parse errors" `Quick test_graph_parse_errors;
    Alcotest.test_case "graph comments/blanks" `Quick test_graph_comments_and_blanks;
    Alcotest.test_case "graph DOT export" `Quick test_graph_dot;
    Alcotest.test_case "matrix round-trip" `Quick test_matrix_roundtrip;
    Alcotest.test_case "matrix file io" `Quick test_matrix_file_io;
    Alcotest.test_case "matrix pair round-trip" `Quick test_matrix_pair_roundtrip;
    Alcotest.test_case "matrix parse errors" `Quick test_matrix_parse_errors;
    Alcotest.test_case "weights round-trip" `Quick test_weights_roundtrip;
    Alcotest.test_case "weights file io" `Quick test_weights_file_io;
    Alcotest.test_case "weights parse errors" `Quick test_weights_parse_errors;
    QCheck_alcotest.to_alcotest prop_graph_roundtrip;
    QCheck_alcotest.to_alcotest prop_matrix_roundtrip;
    QCheck_alcotest.to_alcotest prop_weights_roundtrip;
  ]
