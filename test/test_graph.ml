(* Tests for Dtr_topology.Graph. *)

module Graph = Dtr_topology.Graph

let edge u v = Graph.{ u; v; cap = 500.; prop = 0.005 }

(* 0 - 1 - 2 triangle plus a pendant 3 hanging off node 2. *)
let diamond () = Graph.of_edges ~n:4 [ edge 0 1; edge 1 2; edge 0 2; edge 2 3 ]

let test_counts () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Graph.num_nodes g);
  Alcotest.(check int) "arcs" 8 (Graph.num_arcs g);
  Alcotest.(check int) "edges" 4 (Graph.edge_count g);
  Alcotest.(check (float 1e-9)) "mean out degree" 2. (Graph.mean_out_degree g)

let test_arc_ids_and_rev () =
  let g = diamond () in
  (* spec k yields arcs 2k (u->v) and 2k+1 (v->u) *)
  let a = Graph.arc g 2 in
  Alcotest.(check int) "src" 1 a.Graph.src;
  Alcotest.(check int) "dst" 2 a.Graph.dst;
  Alcotest.(check int) "rev" 3 a.Graph.rev;
  let r = Graph.arc g a.Graph.rev in
  Alcotest.(check int) "rev src" 2 r.Graph.src;
  Alcotest.(check int) "rev rev" 2 r.Graph.rev

let test_adjacency () =
  let g = diamond () in
  let out0 = Graph.out_arcs g 0 in
  Alcotest.(check int) "node 0 out-degree" 2 (List.length out0);
  List.iter
    (fun id -> Alcotest.(check int) "out arcs start at 0" 0 (Graph.arc g id).Graph.src)
    out0;
  let in3 = Graph.in_arcs g 3 in
  Alcotest.(check int) "node 3 in-degree" 1 (List.length in3);
  Alcotest.(check (list int)) "array adjacency mirrors list"
    (Graph.out_arcs g 2)
    (Array.to_list (Graph.out_arcs_array g 2))

let test_find_arc () =
  let g = diamond () in
  (match Graph.find_arc g 0 1 with
  | Some id ->
      let a = Graph.arc g id in
      Alcotest.(check (pair int int)) "endpoints" (0, 1) (a.Graph.src, a.Graph.dst)
  | None -> Alcotest.fail "0->1 must exist");
  Alcotest.(check bool) "missing arc" true (Graph.find_arc g 0 3 = None)

let test_validation () =
  let raises msg f = Alcotest.check_raises "validation" (Invalid_argument msg) f in
  raises "Graph.of_edges: self-loop" (fun () -> ignore (Graph.of_edges ~n:2 [ edge 1 1 ]));
  raises "Graph.of_edges: duplicate edge" (fun () ->
      ignore (Graph.of_edges ~n:2 [ edge 0 1; edge 1 0 ]));
  raises "Graph.of_edges: endpoint out of range" (fun () ->
      ignore (Graph.of_edges ~n:2 [ edge 0 5 ]));
  raises "Graph.of_edges: non-positive capacity" (fun () ->
      ignore (Graph.of_edges ~n:2 [ Graph.{ u = 0; v = 1; cap = 0.; prop = 1. } ]));
  raises "Graph.of_edges: non-positive delay" (fun () ->
      ignore (Graph.of_edges ~n:2 [ Graph.{ u = 0; v = 1; cap = 1.; prop = 0. } ]))

let test_strong_connectivity () =
  let g = diamond () in
  Alcotest.(check bool) "connected" true (Graph.strongly_connected g);
  (* kill both directions of the pendant edge 2-3 (arcs 6 and 7) *)
  let disabled = Array.make (Graph.num_arcs g) false in
  disabled.(6) <- true;
  disabled.(7) <- true;
  Alcotest.(check bool) "pendant cut disconnects" false
    (Graph.strongly_connected ~disabled g);
  (* killing only one direction also breaks strong connectivity *)
  let disabled = Array.make (Graph.num_arcs g) false in
  disabled.(6) <- true;
  Alcotest.(check bool) "one direction missing" false
    (Graph.strongly_connected ~disabled g)

let test_reachability () =
  let g = diamond () in
  let r = Graph.reachable_from g 0 in
  Alcotest.(check bool) "all reachable" true (Array.for_all Fun.id r);
  let disabled = Array.make (Graph.num_arcs g) false in
  disabled.(6) <- true;
  (* 2->3 *)
  let r = Graph.reachable_from ~disabled g 0 in
  Alcotest.(check bool) "3 unreachable" false r.(3);
  Alcotest.(check bool) "2 still reachable" true r.(2)

let test_redundant_path_survives () =
  let g = diamond () in
  (* failing one arc of the triangle leaves the graph strongly connected *)
  let disabled = Array.make (Graph.num_arcs g) false in
  disabled.(0) <- true;
  (* 0->1 *)
  Alcotest.(check bool) "triangle is resilient" true (Graph.strongly_connected ~disabled g)

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "arc ids and reverses" `Quick test_arc_ids_and_rev;
    Alcotest.test_case "adjacency" `Quick test_adjacency;
    Alcotest.test_case "find_arc" `Quick test_find_arc;
    Alcotest.test_case "construction validation" `Quick test_validation;
    Alcotest.test_case "strong connectivity" `Quick test_strong_connectivity;
    Alcotest.test_case "reachability with disabled arcs" `Quick test_reachability;
    Alcotest.test_case "redundant paths survive failure" `Quick test_redundant_path_survives;
  ]
