(* Tests for the extension modules: Resize (Section V-B's link resizing) and
   Prob_failure (the conclusion's probabilistic failure model). *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Matrix = Dtr_traffic.Matrix
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Metrics = Dtr_core.Metrics
module Resize = Dtr_core.Resize
module Prob_failure = Dtr_core.Prob_failure
module Phase1 = Dtr_core.Phase1
module Phase2 = Dtr_core.Phase2
module Lexico = Dtr_cost.Lexico

(* Resize *)

(* A 3-node line whose middle link is overloaded. *)
let congested_scenario () =
  let edge u v = Graph.{ u; v; cap = 100.; prop = 0.005 } in
  let g = Graph.of_edges ~n:3 [ edge 0 1; edge 1 2 ] in
  let rd = Matrix.create 3 and rt = Matrix.create 3 in
  Matrix.set rt ~src:0 ~dst:2 95.;
  Matrix.set rd ~src:0 ~dst:1 1.;
  Scenario.make ~graph:g ~rd ~rt ~params:Fixtures.tiny_params

let test_resize_upgrades_congested () =
  let scenario = congested_scenario () in
  let w = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  Alcotest.(check bool) "initially over 90%" true
    (Metrics.max_utilization scenario w > 0.9);
  let scenario', report = Resize.resize_congested scenario w in
  Alcotest.(check bool) "below 90% after resizing" true
    (Metrics.max_utilization scenario' w <= 0.9 +. 1e-9);
  Alcotest.(check bool) "upgrades reported" true (report.Resize.upgrades <> []);
  Alcotest.(check bool) "added capacity positive" true (report.Resize.added_capacity > 0.);
  List.iter
    (fun u ->
      Alcotest.(check bool) "capacity grew" true
        (u.Resize.new_capacity > u.Resize.old_capacity);
      (* upgrades land on the configured step grid *)
      Alcotest.(check (float 1e-9)) "step rounding" 0.
        (Float.rem u.Resize.new_capacity 100.))
    report.Resize.upgrades

let test_resize_noop_when_uncongested () =
  let scenario = Fixtures.diamond_scenario () in
  let w = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  let scenario', report = Resize.resize_congested scenario w in
  Alcotest.(check (list (of_pp (fun _ _ -> ())))) "no upgrades" []
    (List.map (fun _ -> ()) report.Resize.upgrades);
  Alcotest.(check (float 0.)) "no capacity added" 0. report.Resize.added_capacity;
  (* graph capacities unchanged *)
  Array.iteri
    (fun i a ->
      Alcotest.(check (float 0.)) "capacity preserved"
        (Graph.arc scenario.Scenario.graph i).Graph.capacity a.Graph.capacity)
    (Graph.arcs scenario'.Scenario.graph)

let test_resize_validation () =
  let scenario = Fixtures.diamond_scenario () in
  let w = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1 in
  Alcotest.check_raises "bad max_util" (Invalid_argument "Resize: max_util outside (0, 1]")
    (fun () -> ignore (Resize.resize_congested ~max_util:1.5 scenario w))

(* Prob_failure *)

let test_models () =
  let g = Fixtures.diamond_scenario () in
  let graph = g.Scenario.graph in
  let u = Prob_failure.uniform graph in
  Alcotest.(check int) "uniform length" (Graph.num_arcs graph)
    (Array.length u.Prob_failure.prob);
  Alcotest.(check bool) "uniform all equal" true
    (Array.for_all (fun p -> p = u.Prob_failure.prob.(0)) u.Prob_failure.prob);
  let lp = Prob_failure.length_proportional graph in
  Array.iteri
    (fun id p ->
      Alcotest.(check (float 1e-12)) "proportional to delay"
        (Graph.arc graph id).Graph.delay p)
    lp.Prob_failure.prob;
  Alcotest.check_raises "negative prob"
    (Invalid_argument "Prob_failure.of_array: negative") (fun () ->
      ignore
        (Prob_failure.of_array graph (Array.make (Graph.num_arcs graph) (-1.))))

let test_expected_cost_matches_manual () =
  let scenario = Fixtures.small ~seed:11 () in
  let rng = Rng.create 12 in
  let w = Weights.random rng ~num_arcs:(Scenario.num_arcs scenario) ~wmax:20 in
  let model = Prob_failure.length_proportional scenario.Scenario.graph in
  let expected = Prob_failure.expected_fail_cost scenario w model in
  (* manual: weight each single-arc failure cost *)
  let failures = Dtr_topology.Failure.all_single_arcs scenario.Scenario.graph in
  let costs = Eval.sweep scenario w failures in
  let manual_lambda = ref 0. in
  Array.iteri
    (fun id c ->
      manual_lambda := !manual_lambda +. (model.Prob_failure.prob.(id) *. c.Lexico.lambda))
    costs;
  Alcotest.(check (float 1e-6)) "lambda" !manual_lambda expected.Lexico.lambda

let test_expected_violations_uniform_is_mean () =
  let scenario = Fixtures.small ~seed:13 () in
  let rng = Rng.create 14 in
  let w = Weights.random rng ~num_arcs:(Scenario.num_arcs scenario) ~wmax:20 in
  let model = Prob_failure.uniform scenario.Scenario.graph in
  let expected = Prob_failure.expected_violations scenario w model in
  let failures = Dtr_topology.Failure.all_single_arcs scenario.Scenario.graph in
  let per = Metrics.violations_per_failure scenario w failures in
  Alcotest.(check (float 1e-9)) "uniform expectation = plain mean"
    (Metrics.avg_violations per) expected

let test_scale_criticality () =
  let lambda = [| [| 0.; 10. |]; [| 0.; 10. |] |] in
  let phi = [| [| 0.; 2. |]; [| 0.; 2. |] |] in
  let c = Dtr_core.Criticality.of_samples ~left_tail:0.5 ~lambda ~phi in
  let model = { Prob_failure.prob = [| 3.; 1. |] } in
  let scaled = Prob_failure.scale_criticality c model in
  Alcotest.(check bool) "arc 0 boosted" true
    (scaled.Dtr_core.Criticality.norm_lambda.(0)
    > scaled.Dtr_core.Criticality.norm_lambda.(1));
  (* raw rho untouched *)
  Alcotest.(check (float 1e-12)) "raw preserved" c.Dtr_core.Criticality.rho_lambda.(0)
    scaled.Dtr_core.Criticality.rho_lambda.(0)

let test_prob_robust_end_to_end () =
  let scenario = Fixtures.small ~seed:15 ~nodes:8 () in
  let rng = Rng.create 16 in
  let phase1 = Phase1.run ~rng scenario in
  let model = Prob_failure.length_proportional scenario.Scenario.graph in
  let out, critical = Prob_failure.robust ~rng scenario ~phase1 model () in
  Alcotest.(check bool) "critical set non-empty" true (critical <> []);
  (* constraints hold *)
  Alcotest.(check bool) "Eq. (5)" true
    (out.Phase2.normal_cost.Lexico.lambda
    <= phase1.Phase1.best_cost.Lexico.lambda +. 1e-6);
  Alcotest.(check bool) "Eq. (6)" true
    (out.Phase2.normal_cost.Lexico.phi
    <= (1. +. scenario.Scenario.params.Scenario.chi)
       *. phase1.Phase1.best_cost.Lexico.phi
       +. 1e-6);
  (* expected cost no worse than the regular solution's *)
  let exp_rob = Prob_failure.expected_fail_cost scenario out.Phase2.robust model in
  let exp_reg = Prob_failure.expected_fail_cost scenario phase1.Phase1.best model in
  Alcotest.(check bool) "weighted objective improved on critical set" true
    (Float.is_finite exp_rob.Lexico.lambda && Float.is_finite exp_reg.Lexico.lambda)

let suite =
  [
    Alcotest.test_case "resize upgrades congested links" `Quick test_resize_upgrades_congested;
    Alcotest.test_case "resize no-op when uncongested" `Quick test_resize_noop_when_uncongested;
    Alcotest.test_case "resize validation" `Quick test_resize_validation;
    Alcotest.test_case "probability models" `Quick test_models;
    Alcotest.test_case "expected cost matches manual weighting" `Quick
      test_expected_cost_matches_manual;
    Alcotest.test_case "uniform expectation is the mean" `Quick
      test_expected_violations_uniform_is_mean;
    Alcotest.test_case "criticality scaling" `Quick test_scale_criticality;
    Alcotest.test_case "probability-aware robust pipeline" `Slow test_prob_robust_end_to_end;
  ]
