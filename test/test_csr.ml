(* The flat-CSR refactor's observation-equivalence contract:

   - the Graph CSR views (offsets + packed arc ids, struct-of-arrays arc
     fields) must describe exactly the same adjacency as the legacy
     record/list API they sit beside;
   - the Routing state built over them must agree with an independent naive
     oracle — Bellman-Ford distances, criterion hop sets, even-split loads
     pushed in decreasing-distance order — on random topologies;
   - and a fixed-seed 250-node end-to-end sweep must be bit-identical at
     jobs=1 and jobs=4 (the scale tier's identity contract, exercised with
     the adaptive chunking live). *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Failure = Dtr_topology.Failure
module Routing = Dtr_spf.Routing
module Dijkstra = Dtr_spf.Dijkstra
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Lexico = Dtr_cost.Lexico

let random_graph rng =
  let nodes = 6 + Rng.int rng 10 in
  let kind =
    match Rng.int rng 3 with 0 -> Gen.Rand_topo | 1 -> Gen.Near_topo | _ -> Gen.Pl_topo
  in
  Gen.generate rng kind ~nodes ~degree:(3. +. Rng.float rng 2.)

(* ------------------------------------------------------------------ *)
(* CSR adjacency views vs the legacy list API                          *)
(* ------------------------------------------------------------------ *)

let row off ids v = Array.to_list (Array.sub ids off.(v) (off.(v + 1) - off.(v)))

let prop_csr_adjacency =
  QCheck.Test.make ~name:"CSR views equal legacy adjacency" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let n = Graph.num_nodes g and m = Graph.num_arcs g in
      let out_off = Graph.out_offsets g and out_ids = Graph.out_csr g in
      let in_off = Graph.in_offsets g and in_ids = Graph.in_csr g in
      let src = Graph.arc_sources g and dst = Graph.arc_dests g in
      let cap = Graph.arc_capacities g and prop = Graph.arc_prop_delays g in
      let rev = Graph.arc_reverses g in
      let ok = ref true in
      let check b = if not b then ok := false in
      check (Array.length out_off = n + 1 && Array.length in_off = n + 1);
      check (out_off.(0) = 0 && out_off.(n) = m);
      check (in_off.(0) = 0 && in_off.(n) = m);
      for v = 0 to n - 1 do
        check (row out_off out_ids v = Graph.out_arcs g v);
        check (row in_off in_ids v = Graph.in_arcs g v)
      done;
      for a = 0 to m - 1 do
        let arc = Graph.arc g a in
        check (src.(a) = arc.Graph.src);
        check (dst.(a) = arc.Graph.dst);
        check (cap.(a) = arc.Graph.capacity);
        check (prop.(a) = arc.Graph.delay);
        check (rev.(a) = arc.Graph.rev)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Routing vs a naive oracle                                           *)
(* ------------------------------------------------------------------ *)

(* Bellman-Ford distances towards [dest]: n full relaxation rounds over the
   arc list, no heap, no CSR — deliberately nothing in common with the
   implementation under test. *)
let oracle_dists g ~weights ~dest =
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  let inf = Dijkstra.infinity in
  let dist = Array.make n inf in
  dist.(dest) <- 0;
  for _ = 1 to n do
    for a = 0 to m - 1 do
      let arc = Graph.arc g a in
      if dist.(arc.Graph.dst) < inf then begin
        let alt = weights.(a) + dist.(arc.Graph.dst) in
        if alt < dist.(arc.Graph.src) then dist.(arc.Graph.src) <- alt
      end
    done
  done;
  dist

(* Criterion hop set: every arc leaving [u] that lies on a shortest path. *)
let oracle_hops g ~weights ~dist u =
  List.filter
    (fun a ->
      let arc = Graph.arc g a in
      dist.(arc.Graph.dst) < Dijkstra.infinity
      && weights.(a) + dist.(arc.Graph.dst) = dist.(u))
    (Graph.out_arcs g u)

(* Even-split loads towards [dest]: push each source's demand through the
   DAG in decreasing-distance order, dividing equally at every fork. *)
let oracle_loads g ~weights ~dist ~dest demands =
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  let loads = Array.make m 0. in
  let flow = Array.make n 0. in
  Array.iteri
    (fun s d -> if s <> dest && dist.(s) < Dijkstra.infinity then flow.(s) <- d)
    demands;
  let nodes =
    List.sort
      (fun a b -> compare dist.(b) dist.(a))
      (List.filter
         (fun u -> u <> dest && dist.(u) < Dijkstra.infinity)
         (List.init n Fun.id))
  in
  List.iter
    (fun u ->
      if flow.(u) > 0. then begin
        let hops = oracle_hops g ~weights ~dist u in
        let share = flow.(u) /. float_of_int (List.length hops) in
        List.iter
          (fun a ->
            loads.(a) <- loads.(a) +. share;
            let v = (Graph.arc g a).Graph.dst in
            flow.(v) <- flow.(v) +. share)
          hops
      end)
    nodes;
  loads

let prop_routing_oracle =
  QCheck.Test.make ~name:"CSR routing equals naive oracle" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let n = Graph.num_nodes g and m = Graph.num_arcs g in
      let weights = Array.init m (fun _ -> 1 + Rng.int rng 12) in
      let r = Routing.compute g ~weights () in
      let ok = ref true in
      let check b = if not b then ok := false in
      for dest = 0 to n - 1 do
        let dist = oracle_dists g ~weights ~dest in
        (* Distances agree (the oracle's, not Dijkstra's, are the spec). *)
        for src = 0 to n - 1 do
          check (Routing.distance r ~src ~dst:dest = dist.(src))
        done;
        (* Hop rows hold exactly the criterion arcs.  Both sides list arcs
           in increasing id order, so plain list equality applies. *)
        for u = 0 to n - 1 do
          let expected =
            if u = dest || dist.(u) = Dijkstra.infinity then []
            else oracle_hops g ~weights ~dist u
          in
          check (Array.to_list (Routing.next_hops r ~dest ~node:u) = expected)
        done;
        (* ECMP splits: one random demand bundle towards this destination. *)
        let demands_row =
          Array.init n (fun s -> if s = dest then 0. else Rng.float rng 10.)
        in
        let demands = Array.make_matrix n n 0. in
        Array.iteri (fun s d -> demands.(s).(dest) <- d) demands_row;
        let got = Array.make m 0. in
        let (_ : float) = Routing.add_loads_dest r ~demands ~dest ~into:got in
        let want = oracle_loads g ~weights ~dist ~dest demands_row in
        for a = 0 to m - 1 do
          (* Same even-split arithmetic but different accumulation order, so
             compare up to float tolerance rather than bitwise. *)
          check (Float.abs (got.(a) -. want.(a)) <= 1e-9 *. Float.max 1. want.(a))
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Scale-tier identity: 250-node sweep, jobs=1 vs jobs=4               *)
(* ------------------------------------------------------------------ *)

let same_float a b = Int64.bits_of_float a = Int64.bits_of_float b

let test_large_sweep_identity () =
  let rng = Rng.create 20260808 in
  let scenario =
    Scenario.random_instance ~params:Scenario.quick_params ~nodes:250 ~degree:6. rng
      Gen.Pl_topo
  in
  let g = scenario.Scenario.graph in
  let w = Weights.random rng ~num_arcs:(Graph.num_arcs g) ~wmax:20 in
  (* A fixed slice of the failure set keeps the test a few seconds long
     while still sweeping the 250-node instance end to end. *)
  let failures =
    List.filteri (fun i _ -> i < 120) (Failure.all_single_arcs g)
  in
  let serial = Eval.sweep scenario ~exec:Dtr_exec.Exec.serial w failures in
  let parallel = Eval.sweep scenario ~exec:(Dtr_exec.Exec.of_jobs 4) w failures in
  Alcotest.(check int) "same length" (Array.length serial) (Array.length parallel);
  Array.iteri
    (fun i (c : Lexico.t) ->
      let s = serial.(i) in
      if
        not
          (same_float s.Lexico.lambda c.Lexico.lambda
          && same_float s.Lexico.phi c.Lexico.phi)
      then
        Alcotest.failf "failure %d: jobs=4 cost differs from serial (%g,%g)/(%g,%g)"
          i s.Lexico.lambda s.Lexico.phi c.Lexico.lambda c.Lexico.phi)
    parallel

let suite =
  [
    QCheck_alcotest.to_alcotest prop_csr_adjacency;
    QCheck_alcotest.to_alcotest prop_routing_oracle;
    Alcotest.test_case "250-node sweep identity, jobs=1 vs 4" `Slow
      test_large_sweep_identity;
  ]
