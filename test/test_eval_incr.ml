(* Tests for the incremental single-arc evaluation engine: bit-identity with
   the full evaluation (costs, counters, loads — raw float equality, not a
   tolerance), with_changed_arc vs from-scratch routing, engine protocol
   errors, and fixed-seed identity of the incremental and plain phases. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Failure = Dtr_topology.Failure
module Routing = Dtr_spf.Routing
module Lexico = Dtr_cost.Lexico
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Eval_incr = Dtr_core.Eval_incr
module Phase1 = Dtr_core.Phase1
module Phase2 = Dtr_core.Phase2
module Criticality = Dtr_core.Criticality

let scenario_of_seed seed =
  let rng = Rng.create seed in
  let nodes = 8 + Rng.int rng 8 in
  Scenario.random_instance ~params:Fixtures.tiny_params ~nodes ~degree:4.
    ~avg_util:(0.3 +. Rng.float rng 0.3)
    rng Gen.Rand_topo

let same_floats name expected got =
  if
    Array.length expected <> Array.length got
    || not (Array.for_all2 (fun a b -> a = b) expected got)
  then QCheck.Test.fail_reportf "%s: arrays not bit-identical" name

let check_against_full scenario engine w =
  let d = Eval.evaluate scenario w in
  let cost = Eval_incr.cost engine in
  if cost.Lexico.lambda <> d.Eval.cost.Lexico.lambda then
    QCheck.Test.fail_reportf "lambda differs: %.17g vs %.17g" cost.Lexico.lambda
      d.Eval.cost.Lexico.lambda;
  if cost.Lexico.phi <> d.Eval.cost.Lexico.phi then
    QCheck.Test.fail_reportf "phi differs: %.17g vs %.17g" cost.Lexico.phi
      d.Eval.cost.Lexico.phi;
  if Eval_incr.violations engine <> d.Eval.violations then
    QCheck.Test.fail_reportf "violations differ";
  if Eval_incr.unreachable_pairs engine <> d.Eval.unreachable_pairs then
    QCheck.Test.fail_reportf "unreachable counts differ";
  same_floats "loads" d.Eval.loads (Eval_incr.loads engine);
  same_floats "throughput loads" d.Eval.throughput_loads
    (Eval_incr.throughput_loads engine);
  true

(* The core property: over a random perturbation sequence with mixed commits
   and rollbacks, every staged trial and every settled state is bit-identical
   to a from-scratch evaluation. *)
let prop_bit_identical =
  QCheck.Test.make ~name:"engine bit-identical to full evaluation" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let scenario = scenario_of_seed seed in
      let m = Scenario.num_arcs scenario in
      let p = scenario.Scenario.params in
      let rng = Rng.create (seed + 1) in
      let w = Weights.random rng ~num_arcs:m ~wmax:p.Scenario.wmax in
      let engine = Eval_incr.create scenario in
      let (_ : Lexico.t) = Eval_incr.anchor engine w in
      let ok = ref (check_against_full scenario engine w) in
      for _ = 1 to 30 do
        if !ok then begin
          let arc = Rng.int rng m in
          let saved = Weights.save_arc w arc in
          Weights.perturb_arc rng w ~arc ~wmax:p.Scenario.wmax;
          let (_ : Lexico.t) = Eval_incr.try_arc engine w ~arc in
          (* staged trial vs full evaluation of the perturbed setting *)
          ok := check_against_full scenario engine w;
          if Rng.float rng 1. < 0.5 then Eval_incr.commit engine
          else begin
            Eval_incr.rollback engine;
            Weights.restore_arc w saved
          end;
          (* settled state vs full evaluation of the surviving setting *)
          ok := !ok && check_against_full scenario engine w
        end
      done;
      !ok)

(* with_changed_arc must agree exactly with a from-scratch compute, for both
   weight increases and decreases. *)
let prop_changed_arc_equivalence =
  QCheck.Test.make ~name:"with_changed_arc equals recompute" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 8 + Rng.int rng 10 in
      let g = Gen.rand rng ~nodes:n ~degree:4. in
      let m = Graph.num_arcs g in
      let weights = Array.init m (fun _ -> 1 + Rng.int rng 12) in
      let base = Routing.compute g ~weights () in
      let arc = Rng.int rng m in
      let old_weight = weights.(arc) in
      weights.(arc) <- 1 + Rng.int rng 12;
      let inc, affected = Routing.with_changed_arc base ~weights ~arc ~old_weight in
      let scratch = Routing.compute g ~weights () in
      let ok = ref true in
      for dest = 0 to n - 1 do
        for src = 0 to n - 1 do
          if Routing.distance inc ~src ~dst:dest <> Routing.distance scratch ~src ~dst:dest
          then ok := false
        done
      done;
      let demands = Array.make_matrix n n 1. in
      for i = 0 to n - 1 do
        demands.(i).(i) <- 0.
      done;
      let l1, _ = Routing.loads inc ~graph:g ~demands () in
      let l2, _ = Routing.loads scratch ~graph:g ~demands () in
      if not (Array.for_all2 (fun a b -> a = b) l1 l2) then ok := false;
      (* the affected list is sound: unaffected destinations share the base
         state physically, not just by value *)
      for dest = 0 to n - 1 do
        if not (List.mem dest affected) then
          if not (Routing.shares_dest inc base ~dest) then ok := false
      done;
      !ok)

let test_protocol_errors () =
  let scenario = Fixtures.diamond_scenario () in
  let engine = Eval_incr.create scenario in
  let m = Scenario.num_arcs scenario in
  let w = Weights.create ~num_arcs:m ~init:1 in
  Alcotest.check_raises "commit without trial"
    (Invalid_argument "Eval_incr.commit: no pending trial") (fun () ->
      Eval_incr.commit engine);
  Alcotest.check_raises "rollback without trial"
    (Invalid_argument "Eval_incr.rollback: no pending trial") (fun () ->
      Eval_incr.rollback engine);
  w.Weights.wd.(0) <- 3;
  let (_ : Lexico.t) = Eval_incr.try_arc engine w ~arc:0 in
  Alcotest.check_raises "double trial"
    (Invalid_argument "Eval_incr.try_arc: a trial is already pending") (fun () ->
      ignore (Eval_incr.try_arc engine w ~arc:0 : Lexico.t));
  Eval_incr.rollback engine;
  w.Weights.wd.(0) <- 1;
  Alcotest.(check bool) "rolled back to committed cost" true
    (Lexico.compare (Eval_incr.cost engine) (Eval.cost scenario w) = 0)

let test_diamond_exact () =
  let scenario = Fixtures.diamond_scenario () in
  let m = Scenario.num_arcs scenario in
  let w = Weights.create ~num_arcs:m ~init:1 in
  let engine = Eval_incr.create scenario in
  let (_ : Lexico.t) = Eval_incr.anchor engine w in
  (* push the delay class off one diamond branch and check the staged cost *)
  w.Weights.wd.(0) <- 7;
  let cost = Eval_incr.try_arc engine w ~arc:0 in
  let full = Eval.cost scenario w in
  Alcotest.(check bool) "staged cost equals full eval" true
    (cost.Lexico.lambda = full.Lexico.lambda && cost.Lexico.phi = full.Lexico.phi);
  Eval_incr.commit engine;
  let d, t = Eval_incr.current_routing engine in
  let full_d =
    Routing.compute scenario.Scenario.graph ~weights:(Weights.delay_of w) ()
  in
  Alcotest.(check int) "committed delay routing matches"
    (Routing.distance full_d ~src:0 ~dst:3)
    (Routing.distance d ~src:0 ~dst:3);
  ignore t

(* The incremental and plain paths must follow the exact same trajectory for
   a fixed seed: same RNG stream, bit-identical costs, hence identical
   results. *)
let test_phase1_identity () =
  let scenario = Fixtures.small ~seed:7 () in
  let run incremental = Phase1.run ~rng:(Rng.create 99) ~incremental scenario in
  let a = run true and b = run false in
  Alcotest.(check bool) "same best weights" true (Weights.equal a.Phase1.best b.Phase1.best);
  Alcotest.(check bool) "same best cost" true
    (a.Phase1.best_cost.Lexico.lambda = b.Phase1.best_cost.Lexico.lambda
    && a.Phase1.best_cost.Lexico.phi = b.Phase1.best_cost.Lexico.phi);
  Alcotest.(check int) "same eval count" a.Phase1.stats.Phase1.evals
    b.Phase1.stats.Phase1.evals;
  Alcotest.(check int) "same sweep count" a.Phase1.stats.Phase1.sweeps
    b.Phase1.stats.Phase1.sweeps;
  Alcotest.(check (list int)) "same critical set"
    (Phase1.critical_set scenario a)
    (Phase1.critical_set scenario b);
  Alcotest.(check int) "same acceptable pool size"
    (List.length a.Phase1.acceptable)
    (List.length b.Phase1.acceptable)

let test_phase2_identity () =
  let scenario = Fixtures.small ~seed:11 () in
  let phase1 = Phase1.run ~rng:(Rng.create 5) scenario in
  let failures =
    List.map (fun a -> Failure.Arc a) (Phase1.critical_set scenario phase1)
  in
  let run incremental =
    Phase2.run ~rng:(Rng.create 17) ~incremental scenario ~phase1 ~failures
  in
  let a = run true and b = run false in
  Alcotest.(check bool) "same robust weights" true
    (Weights.equal a.Phase2.robust b.Phase2.robust);
  Alcotest.(check bool) "same fail cost" true
    (a.Phase2.fail_cost.Lexico.lambda = b.Phase2.fail_cost.Lexico.lambda
    && a.Phase2.fail_cost.Lexico.phi = b.Phase2.fail_cost.Lexico.phi);
  Alcotest.(check bool) "same normal cost" true
    (a.Phase2.normal_cost.Lexico.lambda = b.Phase2.normal_cost.Lexico.lambda
    && a.Phase2.normal_cost.Lexico.phi = b.Phase2.normal_cost.Lexico.phi);
  Alcotest.(check int) "same eval count" a.Phase2.stats.Phase2.evals
    b.Phase2.stats.Phase2.evals

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bit_identical;
    QCheck_alcotest.to_alcotest prop_changed_arc_equivalence;
    Alcotest.test_case "engine protocol errors" `Quick test_protocol_errors;
    Alcotest.test_case "diamond exact staged cost" `Quick test_diamond_exact;
    Alcotest.test_case "phase1 incremental = plain" `Quick test_phase1_identity;
    Alcotest.test_case "phase2 incremental = plain" `Quick test_phase2_identity;
  ]
