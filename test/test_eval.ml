(* Tests for Dtr_core.Eval: routing-cost evaluation under normal and failure
   conditions, and the incremental failure sweep. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Matrix = Dtr_traffic.Matrix
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Lexico = Dtr_cost.Lexico

let uniform_weights scenario = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1

let test_diamond_normal () =
  let scenario = Fixtures.diamond_scenario () in
  let w = uniform_weights scenario in
  let d = Eval.evaluate scenario w in
  (* light load, 10 ms paths, theta = 25 ms: no violations *)
  Alcotest.(check int) "no violations" 0 d.Eval.violations;
  Alcotest.(check (float 1e-9)) "lambda zero" 0. d.Eval.cost.Lexico.lambda;
  Alcotest.(check int) "no unreachable" 0 d.Eval.unreachable_pairs;
  (* 0->3 ECMP split: both class loads halve over the two branches;
     total load on arc 0->1 = (30 + 100) / 2 *)
  (match Graph.find_arc scenario.Scenario.graph 0 1 with
  | Some id -> Alcotest.(check (float 1e-9)) "shared FIFO load" 65. d.Eval.loads.(id)
  | None -> Alcotest.fail "arc 0->1");
  Alcotest.(check bool) "phi positive" true (d.Eval.cost.Lexico.phi > 0.)

let test_diamond_pair_delays () =
  let scenario = Fixtures.diamond_scenario () in
  let w = uniform_weights scenario in
  let d = Eval.evaluate scenario ~want_pair_delays:true w in
  Alcotest.(check int) "one delay pair" 1 (Array.length d.Eval.pair_delays);
  let s, t, delay = d.Eval.pair_delays.(0) in
  Alcotest.(check (pair int int)) "the 0->3 pair" (0, 3) (s, t);
  Alcotest.(check (float 1e-9)) "two 5 ms hops" 0.010 delay

let test_failure_reroutes () =
  let scenario = Fixtures.diamond_scenario () in
  let g = scenario.Scenario.graph in
  let w = uniform_weights scenario in
  (* fail arc 0->1: all 0->3 traffic shifts to the 0-2-3 branch *)
  let arc01 = match Graph.find_arc g 0 1 with Some id -> id | None -> assert false in
  let arc02 = match Graph.find_arc g 0 2 with Some id -> id | None -> assert false in
  let d = Eval.evaluate scenario ~failure:(Failure.Arc arc01) w in
  Alcotest.(check (float 1e-9)) "failed arc empty" 0. d.Eval.loads.(arc01);
  (* 0->3 (130 Mb/s, fully shifted) plus half of the ECMP-split 1->2 demand
     (50 Mb/s over 1-0-2 and 1-3-2) transits 0->2 *)
  Alcotest.(check (float 1e-9)) "survivor carries everything" 155. d.Eval.loads.(arc02);
  Alcotest.(check int) "still connected" 0 d.Eval.unreachable_pairs

let test_unreachable_counted () =
  (* line 0-1-2 with demand 0->2; failing arc 1->2 disconnects the pair *)
  let edge u v = Graph.{ u; v; cap = 500.; prop = 0.005 } in
  let g = Graph.of_edges ~n:3 [ edge 0 1; edge 1 2 ] in
  let rd = Matrix.create 3 and rt = Matrix.create 3 in
  Matrix.set rd ~src:0 ~dst:2 10.;
  Matrix.set rt ~src:0 ~dst:1 10.;
  let scenario = Scenario.make ~graph:g ~rd ~rt ~params:Fixtures.tiny_params in
  let w = uniform_weights scenario in
  let arc12 = match Graph.find_arc g 1 2 with Some id -> id | None -> assert false in
  let d = Eval.evaluate scenario ~failure:(Failure.Arc arc12) w in
  Alcotest.(check int) "unreachable pair" 1 d.Eval.unreachable_pairs;
  Alcotest.(check int) "counted as violation" 1 d.Eval.violations;
  Alcotest.(check (float 1e-9)) "charged the unreachable penalty"
    (Dtr_cost.Sla.unreachable_penalty scenario.Scenario.params.Scenario.sla)
    d.Eval.cost.Lexico.lambda

let test_node_failure_drops_traffic () =
  let scenario = Fixtures.diamond_scenario () in
  let w = uniform_weights scenario in
  (* node 3 fails: the 0->3 delay demand and both rt demands survive/die
     accordingly: 0->3 (sink dead) and 1->2 (unaffected) *)
  let d = Eval.evaluate scenario ~failure:(Failure.Node 3) w in
  Alcotest.(check int) "no violations counted for dead sink" 0 d.Eval.violations;
  (* only the 1->2 throughput demand remains *)
  let total_load = Array.fold_left ( +. ) 0. d.Eval.loads in
  Alcotest.(check bool) "only surviving demand routed" true (total_load <= 100. +. 1e-9)

let test_matrix_override () =
  let scenario = Fixtures.diamond_scenario () in
  let w = uniform_weights scenario in
  let rd' = Matrix.scale scenario.Scenario.rd 2. in
  let base = Eval.evaluate scenario w in
  let bigger = Eval.evaluate scenario ~rd:rd' w in
  Alcotest.(check bool) "more delay traffic, higher load" true
    (Array.fold_left ( +. ) 0. bigger.Eval.loads
    > Array.fold_left ( +. ) 0. base.Eval.loads)

let test_sweep_matches_pointwise () =
  let scenario = Fixtures.small ~seed:77 () in
  let rng = Rng.create 5 in
  let w = Weights.random rng ~num_arcs:(Scenario.num_arcs scenario) ~wmax:20 in
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let fast = Eval.sweep scenario w failures in
  List.iteri
    (fun i f ->
      let slow = Eval.cost scenario ~failure:f w in
      Alcotest.(check bool)
        (Printf.sprintf "scenario %d matches" i)
        true (Lexico.equal slow fast.(i)))
    failures

let test_sweep_nodes_matches_pointwise () =
  let scenario = Fixtures.small ~seed:78 () in
  let rng = Rng.create 6 in
  let w = Weights.random rng ~num_arcs:(Scenario.num_arcs scenario) ~wmax:20 in
  let failures = Failure.all_single_nodes scenario.Scenario.graph in
  let fast = Eval.sweep scenario w failures in
  List.iteri
    (fun i f ->
      let slow = Eval.cost scenario ~failure:f w in
      Alcotest.(check bool) "node scenario matches" true (Lexico.equal slow fast.(i)))
    failures

let test_normal_and_sweep () =
  let scenario = Fixtures.small ~seed:79 () in
  let rng = Rng.create 7 in
  let w = Weights.random rng ~num_arcs:(Scenario.num_arcs scenario) ~wmax:20 in
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let normal, compounded = Eval.normal_and_sweep scenario w ~failures ~feasible:(fun _ -> true) in
  Alcotest.(check bool) "normal agrees" true (Lexico.equal normal (Eval.cost scenario w));
  (match compounded with
  | Some total ->
      let expected = Eval.compound (Eval.sweep scenario w failures) in
      Alcotest.(check bool) "compound agrees" true
        (Float.abs (total.Lexico.lambda -. expected.Lexico.lambda) < 1e-6
        && Float.abs (total.Lexico.phi -. expected.Lexico.phi) < 1e-6 *. (1. +. expected.Lexico.phi))
  | None -> Alcotest.fail "feasible eval returned None");
  (* infeasible short-circuits *)
  let _, none = Eval.normal_and_sweep scenario w ~failures ~feasible:(fun _ -> false) in
  Alcotest.(check bool) "infeasible gives None" true (none = None)

let test_compound () =
  let c = Eval.compound [| Lexico.make ~lambda:1. ~phi:2.; Lexico.make ~lambda:3. ~phi:4. |] in
  Alcotest.(check (float 0.)) "lambda" 4. c.Lexico.lambda;
  Alcotest.(check (float 0.)) "phi" 6. c.Lexico.phi

let suite =
  [
    Alcotest.test_case "diamond normal conditions" `Quick test_diamond_normal;
    Alcotest.test_case "pair delays" `Quick test_diamond_pair_delays;
    Alcotest.test_case "failure reroutes traffic" `Quick test_failure_reroutes;
    Alcotest.test_case "unreachable pairs counted" `Quick test_unreachable_counted;
    Alcotest.test_case "node failure drops its traffic" `Quick test_node_failure_drops_traffic;
    Alcotest.test_case "matrix override" `Quick test_matrix_override;
    Alcotest.test_case "sweep equals pointwise (arcs)" `Quick test_sweep_matches_pointwise;
    Alcotest.test_case "sweep equals pointwise (nodes)" `Quick test_sweep_nodes_matches_pointwise;
    Alcotest.test_case "normal_and_sweep fast path" `Quick test_normal_and_sweep;
    Alcotest.test_case "compound" `Quick test_compound;
  ]
