(* End-to-end integration tests: the full pipeline on small instances,
   checking the paper's qualitative claims hold on our implementation. *)

module Rng = Dtr_util.Rng
module Gen = Dtr_topology.Gen
module Failure = Dtr_topology.Failure
module Perturb = Dtr_traffic.Perturb
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Optimizer = Dtr_core.Optimizer
module Metrics = Dtr_core.Metrics
module Lexico = Dtr_cost.Lexico

(* One shared optimized instance (Phase 1 + Phase 2) for several checks. *)
let solved =
  lazy
    (let scenario = Fixtures.small ~seed:2008 ~nodes:10 ~avg_util:0.45 () in
     let rng = Rng.create 1 in
     (scenario, Optimizer.optimize ~rng scenario))

let test_robust_beats_regular_on_failures () =
  let scenario, s = Lazy.force solved in
  (* Guaranteed invariant: on the failure set Phase 2 optimized, the robust
     solution's compounded cost is lexicographically no worse than the
     regular solution's (the regular solution is a Phase-2 starting point). *)
  let optimized = s.Optimizer.failures in
  let k_rob = Eval.compound (Eval.sweep scenario s.Optimizer.robust optimized) in
  let k_reg = Eval.compound (Eval.sweep scenario s.Optimizer.regular optimized) in
  Alcotest.(check bool) "Kfail(robust) <= Kfail(regular) on the optimized set" true
    (Lexico.compare k_rob k_reg <= 0);
  (* Statistical claim on the full sweep: robust should not lose by much even
     at the tiny search budgets unit tests use. *)
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let regular = Metrics.summarize_failures scenario s.Optimizer.regular failures in
  let robust = Metrics.summarize_failures scenario s.Optimizer.robust failures in
  Alcotest.(check bool)
    (Printf.sprintf "avg violations: robust %.2f <= regular %.2f + 2" robust.Metrics.avg
       regular.Metrics.avg)
    true
    (robust.Metrics.avg <= regular.Metrics.avg +. 2.)

let test_robust_preserves_normal_lambda () =
  let _, s = Lazy.force solved in
  Alcotest.(check bool) "Eq. (5) holds end-to-end" true
    (s.Optimizer.robust_normal_cost.Lexico.lambda
    <= s.Optimizer.regular_cost.Lexico.lambda +. 1e-6)

let test_robust_phi_within_chi () =
  let scenario, s = Lazy.force solved in
  let chi = scenario.Scenario.params.Scenario.chi in
  Alcotest.(check bool) "Eq. (6) holds end-to-end" true
    (s.Optimizer.robust_normal_cost.Lexico.phi
    <= ((1. +. chi) *. s.Optimizer.regular_cost.Lexico.phi) +. 1e-6)

let test_critical_fraction_respected () =
  let scenario, s = Lazy.force solved in
  let m = Scenario.num_arcs scenario in
  let frac = scenario.Scenario.params.Scenario.critical_fraction in
  Alcotest.(check bool) "|Ec|/|E| at most the target" true
    (List.length s.Optimizer.critical <= max 1 (int_of_float (Float.round (frac *. float_of_int m))))

let test_robustness_carries_to_perturbed_traffic () =
  let scenario, s = Lazy.force solved in
  let rng = Rng.create 33 in
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  (* average over a few Gaussian draws: the robust solution should keep its
     advantage under traffic the optimizer never saw (Section V-F) *)
  let reg_acc = ref 0. and rob_acc = ref 0. in
  for _ = 1 to 5 do
    let rd = Perturb.gaussian rng ~eps:0.2 scenario.Scenario.rd in
    let rt = Perturb.gaussian rng ~eps:0.2 scenario.Scenario.rt in
    let s' = Scenario.with_traffic scenario ~rd ~rt in
    reg_acc := !reg_acc +. (Metrics.summarize_failures s' s.Optimizer.regular failures).Metrics.avg;
    rob_acc := !rob_acc +. (Metrics.summarize_failures s' s.Optimizer.robust failures).Metrics.avg
  done;
  Alcotest.(check bool)
    (Printf.sprintf "perturbed: robust %.2f <= regular %.2f + 1" !rob_acc !reg_acc)
    true
    (!rob_acc <= !reg_acc +. 5.)
(* one violation of slack across 5 draws *)

let test_full_search_at_least_as_good () =
  (* Full search optimizes the true objective, so on the full sweep it should
     not be (meaningfully) worse than critical search. *)
  let scenario = Fixtures.small ~seed:66 ~nodes:8 () in
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let crt = Optimizer.optimize ~rng:(Rng.create 2) ~fraction:0.15 scenario in
  let full = Optimizer.optimize ~rng:(Rng.create 2) ~selector:Optimizer.Full scenario in
  let v_crt = Metrics.summarize_failures scenario crt.Optimizer.robust failures in
  let v_full = Metrics.summarize_failures scenario full.Optimizer.robust failures in
  (* critical search approximates full search: allow slack of 1 violation *)
  Alcotest.(check bool)
    (Printf.sprintf "full %.2f, critical %.2f" v_full.Metrics.avg v_crt.Metrics.avg)
    true
    (v_full.Metrics.avg <= v_crt.Metrics.avg +. 1.)

let test_isp_pipeline () =
  (* the fixed ISP topology through the whole pipeline *)
  let rng = Rng.create 16 in
  let graph = Gen.isp_backbone () in
  let rd, rt = Dtr_traffic.Gravity.pair rng ~nodes:16 ~total:1000. in
  let rd, rt =
    Dtr_traffic.Scaling.calibrate graph ~rd ~rt (Dtr_traffic.Scaling.Avg_utilization 0.43)
  in
  let scenario = Scenario.make ~graph ~rd ~rt ~params:Fixtures.tiny_params in
  let s = Optimizer.optimize ~rng scenario in
  Alcotest.(check bool) "robust normal cost finite" true
    (Float.is_finite s.Optimizer.robust_normal_cost.Lexico.phi);
  Alcotest.(check bool) "critical arcs selected" true (s.Optimizer.critical <> [])

let suite =
  [
    Alcotest.test_case "robust beats regular on failures" `Slow
      test_robust_beats_regular_on_failures;
    Alcotest.test_case "normal-lambda preserved" `Slow test_robust_preserves_normal_lambda;
    Alcotest.test_case "phi within chi" `Slow test_robust_phi_within_chi;
    Alcotest.test_case "critical fraction respected" `Slow test_critical_fraction_respected;
    Alcotest.test_case "robustness under perturbed traffic" `Slow
      test_robustness_carries_to_perturbed_traffic;
    Alcotest.test_case "full search at least as good" `Slow test_full_search_at_least_as_good;
    Alcotest.test_case "ISP pipeline" `Slow test_isp_pipeline;
  ]
