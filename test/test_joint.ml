(* Tests for Dtr_core.Joint_failure: multi-arc incremental repair identity
   (random batches including bridges and full node isolation), the sampled
   two-link event generator, cascading expansion, criticality attribution,
   and fixed-seed end-to-end SRLG optimization under a parallel pool. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Srlg = Dtr_topology.Srlg
module Routing = Dtr_spf.Routing
module Spf_delta = Dtr_spf.Spf_delta
module Lexico = Dtr_cost.Lexico
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Joint_failure = Dtr_core.Joint_failure
module Optimizer = Dtr_core.Optimizer
module Exec = Dtr_exec.Exec

let with_engine enabled f =
  let was = Spf_delta.enabled () in
  Spf_delta.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Spf_delta.set_enabled was) f

let random_scenario seed =
  let rng = Rng.create seed in
  let nodes = 8 + Rng.int rng 8 in
  let scenario =
    Scenario.random_instance ~params:Fixtures.tiny_params ~nodes ~degree:4.
      ~avg_util:(0.3 +. Rng.float rng 0.4)
      rng Dtr_topology.Gen.Rand_topo
  in
  let w =
    Weights.random rng ~num_arcs:(Graph.num_arcs scenario.Scenario.graph) ~wmax:16
  in
  (scenario, w)

let representative_links g =
  Array.to_list (Graph.arcs g)
  |> List.filter_map (fun a ->
         if a.Graph.rev < 0 || a.Graph.id < a.Graph.rev then Some a.Graph.id
         else None)
  |> Array.of_list

(* Random joint events stressing every repair regime: small batches (repaired
   incrementally), a full node isolation (bridges/disconnection: the node's
   destinations become unreachable), and a batch wide enough to cross the
   size gate back onto the from-scratch path. *)
let random_batches rng g =
  let links = representative_links g in
  let both id =
    let a = Graph.arc g id in
    if a.Graph.rev >= 0 then [ a.Graph.id; a.Graph.rev ] else [ a.Graph.id ]
  in
  let batch k =
    let idx = Rng.sample_without_replacement rng k (Array.length links) in
    Failure.Arcs
      (List.sort_uniq compare
         (Array.to_list idx |> List.concat_map (fun i -> both links.(i))))
  in
  let isolate u =
    Failure.Arcs (List.sort_uniq compare (Graph.out_arcs g u @ Graph.in_arcs g u))
  in
  [
    batch 1;
    batch 2;
    batch 3;
    isolate (Rng.int rng (Graph.num_nodes g));
    batch (Array.length links / 2);
  ]

let failed_of_mask mask =
  let acc = ref [] in
  Array.iteri (fun id dead -> if dead then acc := id :: !acc) mask;
  !acc

(* Routing-level identity: repairing an arbitrary deleted-arc batch must be
   bit-identical to a from-scratch Dijkstra under the same mask — distances,
   ECMP rows, and loads — whichever side of the batch-size gate the event
   lands on. *)
let prop_multi_arc_repair_identity =
  QCheck.Test.make ~name:"multi-arc repair bit-identical to from-scratch"
    ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let scenario, w = random_scenario seed in
      let g = scenario.Scenario.graph in
      let n = Graph.num_nodes g in
      let rng = Rng.create (seed + 17) in
      let buffers = Routing.make_buffers g in
      with_engine true (fun () ->
          List.iter
            (fun weights ->
              let base = Routing.compute g ~weights ~buffers () in
              List.iter
                (fun f ->
                  let mask = Failure.mask g f in
                  let failed = failed_of_mask mask in
                  let repaired =
                    Routing.with_failed_arcs ~buffers base ~weights
                      ~disabled:mask ~failed
                  in
                  let scratch =
                    Routing.compute g ~weights ~buffers ~disabled:mask ()
                  in
                  for dest = 0 to n - 1 do
                    for node = 0 to n - 1 do
                      if
                        Routing.distance repaired ~src:node ~dst:dest
                        <> Routing.distance scratch ~src:node ~dst:dest
                        || Routing.next_hops repaired ~dest ~node
                           <> Routing.next_hops scratch ~dest ~node
                      then
                        QCheck.Test.fail_reportf
                          "routing differs (%d->%d) after failing %s" node dest
                          (Failure.name g f)
                    done
                  done;
                  let loads_r, un_r =
                    Routing.loads repaired ~graph:g
                      ~demands:scenario.Scenario.dense_rd ()
                  in
                  let loads_s, un_s =
                    Routing.loads scratch ~graph:g
                      ~demands:scenario.Scenario.dense_rd ()
                  in
                  if un_r <> un_s || loads_r <> loads_s then
                    QCheck.Test.fail_reportf "loads differ after failing %s"
                      (Failure.name g f))
                (random_batches rng g))
            [ Weights.delay_of w; Weights.throughput_of w ]);
      true)

(* Sweep-level identity over the three joint-event classes: the incremental
   sweep must price SRLG cuts, sampled pairs, and cascades exactly as
   independent from-scratch evaluations do. *)
let prop_joint_sweep_identity =
  QCheck.Test.make ~name:"joint-event sweep bit-identical to from-scratch"
    ~count:6
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let scenario, w = random_scenario seed in
      let g = scenario.Scenario.graph in
      let rng = Rng.create (seed + 31) in
      let score = Array.make (Graph.num_arcs g) 1. in
      let events =
        Srlg.failures (Srlg.geographic ~radius:0.25 g)
        @ Joint_failure.two_link ~rng ~samples:6 ~score g
        @ Joint_failure.cascade_all ~exec:Exec.serial ~trip:0.9 scenario w
            [ Failure.Arc 0; Failure.Edge 0 ]
      in
      let swept =
        with_engine true (fun () ->
            Eval.sweep_details scenario ~exec:Exec.serial w events)
      in
      List.iter2
        (fun f (d : Eval.detail) ->
          let full = Eval.evaluate scenario ~failure:f w in
          if
            d.Eval.cost <> full.Eval.cost
            || d.Eval.violations <> full.Eval.violations
            || d.Eval.unreachable_pairs <> full.Eval.unreachable_pairs
            || d.Eval.loads <> full.Eval.loads
            || d.Eval.throughput_loads <> full.Eval.throughput_loads
          then
            QCheck.Test.fail_reportf "joint event %s priced differently"
              (Failure.name g f))
        events swept;
      true)

(* --- members ------------------------------------------------------------- *)

let square () =
  let edge u v = Graph.{ u; v; cap = 500.; prop = 0.005 } in
  Graph.of_edges ~n:4 [ edge 0 1; edge 1 2; edge 2 3; edge 3 0 ]

let test_members () =
  let g = square () in
  Alcotest.(check (list int)) "edge covers both directions" [ 0; 1 ]
    (Joint_failure.members g (Failure.Edge 0));
  Alcotest.(check (list int)) "arcs as given" [ 2; 5 ]
    (Joint_failure.members g (Failure.Arcs [ 5; 2 ]));
  Alcotest.(check (list int)) "node takes every incident arc" [ 0; 1; 2; 3 ]
    (Joint_failure.members g (Failure.Node 1))

(* --- two-link sampler ---------------------------------------------------- *)

let test_two_link_events () =
  let g = square () in
  let score = Array.make (Graph.num_arcs g) 1. in
  let events = Joint_failure.two_link ~rng:(Rng.create 5) ~samples:3 ~score g in
  Alcotest.(check int) "requested sample count" 3 (List.length events);
  let pairs = Hashtbl.create 8 in
  List.iter
    (fun f ->
      match f with
      | Failure.Arcs arcs ->
          Alcotest.(check int) "both directions of both links" 4
            (List.length arcs);
          Alcotest.(check (list int)) "sorted arc ids" (List.sort compare arcs)
            arcs;
          List.iter
            (fun id ->
              let rev = (Graph.arc g id).Graph.rev in
              Alcotest.(check bool) "reverse included" true (List.mem rev arcs))
            arcs;
          let links = List.filter (fun id -> id < (Graph.arc g id).Graph.rev) arcs in
          Alcotest.(check bool) "distinct links" true
            (List.length links = 2 && not (Hashtbl.mem pairs links));
          Hashtbl.add pairs links ()
      | _ -> Alcotest.fail "expected an Arcs event")
    events;
  (* deterministic for a given seed *)
  let again = Joint_failure.two_link ~rng:(Rng.create 5) ~samples:3 ~score g in
  Alcotest.(check bool) "same seed, same events" true (events = again);
  (* asking for every pair exhausts the pair space exactly once (the
     deterministic top-up path) *)
  let all = Joint_failure.two_link ~rng:(Rng.create 6) ~samples:99 ~score g in
  Alcotest.(check int) "capped at the distinct pair count" 6 (List.length all)

let test_two_link_validation () =
  let g = square () in
  let score = Array.make (Graph.num_arcs g) 1. in
  Alcotest.check_raises "samples < 1"
    (Invalid_argument "Joint_failure.two_link: samples < 1") (fun () ->
      ignore (Joint_failure.two_link ~rng:(Rng.create 1) ~samples:0 ~score g));
  Alcotest.check_raises "score size"
    (Invalid_argument "Joint_failure.two_link: score not sized to the arc count")
    (fun () ->
      ignore
        (Joint_failure.two_link ~rng:(Rng.create 1) ~samples:1 ~score:[| 1. |] g))

(* --- cascading expansion ------------------------------------------------- *)

(* On the diamond (all caps 500, demands 0->3 of 30+100 and 1->2 of 50),
   failing edge 0-1 reroutes everything over 0-2-3: utilisation 0.26 on arcs
   0->2 and 2->3.  A 0.2 trip threshold fails both those edges in wave one
   and then reaches a fixed point (the survivors carry nothing); a 0.3
   threshold trips nothing. *)
let test_cascade_expansion () =
  let scenario = Fixtures.diamond_scenario () in
  let w = Weights.create ~num_arcs:8 ~init:1 in
  let seed = Failure.Edge 0 in
  let no_trip =
    Joint_failure.cascade ~exec:Exec.serial ~trip:0.3 scenario w seed
  in
  Alcotest.(check bool) "below trip: seed only" true
    (no_trip = Failure.Arcs [ 0; 1 ]);
  let tripped =
    Joint_failure.cascade ~exec:Exec.serial ~trip:0.2 scenario w seed
  in
  Alcotest.(check bool) "overloaded edges trip with their reverses" true
    (tripped = Failure.Arcs [ 0; 1; 2; 3; 6; 7 ])

let test_cascade_contains_seed () =
  let scenario, w = random_scenario 77 in
  let g = scenario.Scenario.graph in
  List.iter
    (fun f ->
      let expanded =
        Joint_failure.cascade ~exec:Exec.serial ~trip:0.8 scenario w f
      in
      let seed_arcs = Joint_failure.members g f in
      let all = Joint_failure.members g expanded in
      List.iter
        (fun a ->
          Alcotest.(check bool) "seed arcs stay failed" true (List.mem a all))
        seed_arcs)
    [ Failure.Arc 0; Failure.Edge 2; Failure.Arcs [ 0; 4 ] ]

let test_cascade_validation () =
  let scenario = Fixtures.diamond_scenario () in
  let w = Weights.create ~num_arcs:8 ~init:1 in
  Alcotest.check_raises "node failures rejected"
    (Invalid_argument "Joint_failure.cascade: node failures do not cascade")
    (fun () ->
      ignore (Joint_failure.cascade ~trip:0.5 scenario w (Failure.Node 0)));
  Alcotest.check_raises "trip <= 0"
    (Invalid_argument "Joint_failure.cascade: trip <= 0") (fun () ->
      ignore (Joint_failure.cascade ~trip:0. scenario w (Failure.Arc 0)));
  Alcotest.check_raises "max_waves < 1"
    (Invalid_argument "Joint_failure.cascade: max_waves < 1") (fun () ->
      ignore
        (Joint_failure.cascade ~max_waves:0 ~trip:0.5 scenario w (Failure.Arc 0)))

(* --- criticality attribution --------------------------------------------- *)

let test_attribute () =
  let g = square () in
  let events = [| Failure.Arcs [ 0; 1 ]; Failure.Arcs [ 2; 3 ] |] in
  (* two sampled settings: the first event's cost varies across them, the
     second is constant *)
  let costs =
    [|
      [| Lexico.make ~lambda:1. ~phi:10.; Lexico.make ~lambda:2. ~phi:20. |];
      [| Lexico.make ~lambda:5. ~phi:40.; Lexico.make ~lambda:2. ~phi:20. |];
    |]
  in
  let crit =
    Joint_failure.attribute ~left_tail:0.5 ~num_arcs:(Graph.num_arcs g) ~graph:g
      ~events ~costs
  in
  (* the varying event makes each of its member arcs critical... *)
  Alcotest.(check bool) "varying event members critical" true
    (crit.Dtr_core.Criticality.rho_lambda.(0) > 0.
    && crit.Dtr_core.Criticality.rho_lambda.(1) > 0.
    && crit.Dtr_core.Criticality.rho_phi.(0) > 0.);
  (* ...the constant event contributes no regret... *)
  Alcotest.(check (float 0.)) "constant event has zero criticality" 0.
    crit.Dtr_core.Criticality.rho_lambda.(2);
  (* ...and arcs in no event score zero *)
  Alcotest.(check (float 0.)) "uncovered arc scores zero" 0.
    crit.Dtr_core.Criticality.rho_lambda.(4);
  Alcotest.check_raises "cost row size"
    (Invalid_argument "Joint_failure.attribute: cost row not sized to events")
    (fun () ->
      ignore
        (Joint_failure.attribute ~left_tail:0.5 ~num_arcs:(Graph.num_arcs g)
           ~graph:g ~events
           ~costs:[| [| Lexico.make ~lambda:1. ~phi:1. |] |]))

(* --- fixed-seed end-to-end SRLG optimization ----------------------------- *)

let test_e2e_srlg_jobs_identity () =
  let scenario = Fixtures.small ~seed:2025 ~nodes:10 ~avg_util:0.45 () in
  let solve ~exec =
    Optimizer.optimize ~rng:(Rng.create 9)
      ~failure_model:(Optimizer.Srlg_failures 0.25) ~exec scenario
  in
  let serial = solve ~exec:Exec.serial in
  let jobs2 = solve ~exec:(Exec.of_jobs 2) in
  Alcotest.(check bool) "SRLG scenarios present" true
    (List.length serial.Optimizer.failures >= 1);
  List.iter
    (fun f ->
      Alcotest.(check bool) "SRLG events are multi-arc" true
        (List.length (Joint_failure.members scenario.Scenario.graph f) >= 2))
    serial.Optimizer.failures;
  Alcotest.(check bool) "robust weights identical" true
    (serial.Optimizer.robust.Weights.wd = jobs2.Optimizer.robust.Weights.wd
    && serial.Optimizer.robust.Weights.wt = jobs2.Optimizer.robust.Weights.wt);
  Alcotest.(check bool) "costs identical" true
    (serial.Optimizer.regular_cost = jobs2.Optimizer.regular_cost
    && serial.Optimizer.robust_normal_cost = jobs2.Optimizer.robust_normal_cost
    && serial.Optimizer.robust_fail_cost = jobs2.Optimizer.robust_fail_cost);
  Alcotest.(check (list int)) "critical member arcs identical"
    serial.Optimizer.critical jobs2.Optimizer.critical;
  Alcotest.(check bool) "failure sets identical" true
    (serial.Optimizer.failures = jobs2.Optimizer.failures)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_multi_arc_repair_identity;
    QCheck_alcotest.to_alcotest prop_joint_sweep_identity;
    Alcotest.test_case "member arcs of joint events" `Quick test_members;
    Alcotest.test_case "two-link sampler" `Quick test_two_link_events;
    Alcotest.test_case "two-link validation" `Quick test_two_link_validation;
    Alcotest.test_case "cascade expansion on the diamond" `Quick
      test_cascade_expansion;
    Alcotest.test_case "cascade contains its seed" `Quick
      test_cascade_contains_seed;
    Alcotest.test_case "cascade validation" `Quick test_cascade_validation;
    Alcotest.test_case "joint criticality attribution" `Quick test_attribute;
    Alcotest.test_case "fixed-seed e2e SRLG identity (jobs=1 vs 2)" `Slow
      test_e2e_srlg_jobs_identity;
  ]
