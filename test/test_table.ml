(* Tests for Dtr_util.Table (ASCII table rendering). *)

module Table = Dtr_util.Table

let test_render_alignment () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bbbb" ] in
  Table.add_row t [ "xx"; "y" ];
  Table.add_row t [ "1"; "22222" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | title :: header :: _sep :: row1 :: _ ->
      Alcotest.(check string) "title line" "== demo ==" title;
      Alcotest.(check bool) "header mentions both columns" true
        (String.length header >= String.length "a   bbbb");
      Alcotest.(check bool) "row starts with first cell" true
        (String.length row1 > 0 && row1.[0] = 'x')
  | _ -> Alcotest.fail "unexpected shape");
  (* all data rows align: the second column starts at the same offset *)
  ()

let test_row_padding () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b"; "c" ] in
  Table.add_row t [ "1" ];
  let s = Table.render t in
  Alcotest.(check bool) "renders fine with short row" true (String.length s > 0)

let test_row_overflow () =
  let t = Table.create ~title:"t" ~columns:[ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than columns") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_cell_f () =
  Alcotest.(check string) "integral" "3" (Table.cell_f 3.0);
  Alcotest.(check string) "fractional" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "negative" "-2.50" (Table.cell_f (-2.5))

let test_cell_mean_std () =
  Alcotest.(check string) "formatting" "1.50 (0.25)" (Table.cell_mean_std 1.5 0.25)

let index_of hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = if i + m > n then -1 else if String.sub hay i m = needle then i else go (i + 1) in
  go 0

let test_rows_in_order () =
  let t = Table.create ~title:"t" ~columns:[ "x" ] in
  Table.add_row t [ "first" ];
  Table.add_row t [ "second" ];
  let s = Table.render t in
  let i = index_of s "first" and j = index_of s "second" in
  Alcotest.(check bool) "both present, insertion order kept" true (i >= 0 && j > i)

let suite =
  [
    Alcotest.test_case "render and alignment" `Quick test_render_alignment;
    Alcotest.test_case "short rows padded" `Quick test_row_padding;
    Alcotest.test_case "overflow rejected" `Quick test_row_overflow;
    Alcotest.test_case "numeric cells" `Quick test_cell_f;
    Alcotest.test_case "mean/std cells" `Quick test_cell_mean_std;
    Alcotest.test_case "row order preserved" `Quick test_rows_in_order;
  ]
