(* Tests for Dtr_core.Metrics. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Failure = Dtr_topology.Failure
module Matrix = Dtr_traffic.Matrix
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Metrics = Dtr_core.Metrics
module Lexico = Dtr_cost.Lexico

let uniform scenario = Weights.create ~num_arcs:(Scenario.num_arcs scenario) ~init:1

let test_violation_counts () =
  let scenario = Fixtures.diamond_scenario () in
  let w = uniform scenario in
  Alcotest.(check int) "no normal violations" 0 (Metrics.violations_normal scenario w);
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let per = Metrics.violations_per_failure scenario w failures in
  Alcotest.(check int) "one entry per failure" (List.length failures) (Array.length per);
  (* the diamond reroutes everything without SLA breaches at this load *)
  Array.iter (fun v -> Alcotest.(check int) "no violations" 0 v) per

let test_aggregates () =
  Alcotest.(check (float 1e-9)) "avg" 2. (Metrics.avg_violations [| 1; 2; 3 |]);
  Alcotest.(check (float 1e-9)) "top-10% of 10" 9.
    (Metrics.top_fraction_violations [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 |]);
  (* top 50% of 6 values = the largest 3: {9, 7, 5}, mean 7 *)
  Alcotest.(check (float 1e-9)) "top-50%" 7.
    (Metrics.top_fraction_violations ~fraction:0.5 [| 9; 7; 1; 0; 2; 5 |]);
  Alcotest.(check (float 0.)) "empty avg" 0. (Metrics.avg_violations [||])

let test_phi_metrics () =
  let scenario = Fixtures.diamond_scenario () in
  let w = uniform scenario in
  let phi0 = Metrics.phi_normal scenario w in
  Alcotest.(check bool) "phi positive" true (phi0 > 0.);
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let per = Metrics.phi_per_failure scenario w failures in
  let total = Metrics.phi_fail_total scenario w failures in
  Alcotest.(check (float 1e-6)) "total = sum" (Array.fold_left ( +. ) 0. per) total;
  Alcotest.(check (float 1e-9)) "gap percent" 25. (Metrics.phi_gap_percent ~reference:4. 5.);
  Alcotest.(check (float 1e-9)) "zero reference guarded" 0.
    (Metrics.phi_gap_percent ~reference:0. 5.)

let test_utilization_metrics () =
  let scenario = Fixtures.diamond_scenario () in
  let w = uniform scenario in
  let u = Metrics.utilizations_normal scenario w in
  Alcotest.(check int) "per arc" (Scenario.num_arcs scenario) (Array.length u);
  (* 0->3 split: 65 on each branch + 1->2 demand 50 over 1-0/1-3... just check
     the known max: arc 0->1 carries 65/500 plus possibly transit *)
  Alcotest.(check bool) "max >= avg" true
    (Metrics.max_utilization scenario w >= Metrics.avg_utilization scenario w);
  Alcotest.(check bool) "avg positive" true (Metrics.avg_utilization scenario w > 0.)

let test_load_increase () =
  let scenario = Fixtures.diamond_scenario () in
  let g = scenario.Scenario.graph in
  let w = uniform scenario in
  let arc01 = match Graph.find_arc g 0 1 with Some id -> id | None -> assert false in
  let inc = Metrics.load_increase_after scenario w (Failure.Arc arc01) in
  (* rerouting 0->3 onto the 0-2-3 branch raises utilization on 2 arcs *)
  Alcotest.(check bool) "some arcs increased" true (inc.Metrics.arcs_increased >= 2);
  Alcotest.(check bool) "positive average increase" true (inc.Metrics.avg_increase > 0.);
  (* the failed arc itself is excluded from the count *)
  let no_op = Metrics.load_increase_after scenario w Failure.No_failure in
  Alcotest.(check int) "no failure, no increase" 0 no_op.Metrics.arcs_increased

let test_max_pair_utilization () =
  let scenario = Fixtures.diamond_scenario () in
  let w = uniform scenario in
  let v = Metrics.avg_max_pair_utilization scenario w in
  (* single delay pair 0->3; bottleneck = max util over its DAG *)
  let u = Metrics.utilizations_normal scenario w in
  let expected = Array.fold_left Float.max 0. u in
  Alcotest.(check bool) "bounded by network max" true (v <= expected +. 1e-9);
  Alcotest.(check bool) "positive" true (v > 0.)

let test_delay_profile () =
  let scenario = Fixtures.diamond_scenario () in
  let w = uniform scenario in
  let profile = Metrics.delay_profile scenario w in
  Alcotest.(check int) "one pair" 1 (Array.length profile);
  Alcotest.(check (float 1e-9)) "10 ms path" 0.010 profile.(0)

let test_summary_consistency () =
  let scenario = Fixtures.small ~seed:91 () in
  let rng = Rng.create 9 in
  let w = Weights.random rng ~num_arcs:(Scenario.num_arcs scenario) ~wmax:20 in
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  let s = Metrics.summarize_failures scenario w failures in
  Alcotest.(check (float 1e-9)) "avg consistent" (Metrics.avg_violations s.Metrics.per_failure) s.Metrics.avg;
  Alcotest.(check (float 1e-9)) "top10 consistent"
    (Metrics.top_fraction_violations s.Metrics.per_failure)
    s.Metrics.top10;
  Alcotest.(check (float 1e-6)) "phi total consistent"
    (Array.fold_left ( +. ) 0. s.Metrics.phi_per_failure)
    s.Metrics.phi_total;
  (* agrees with the slower pointwise metrics *)
  let per = Metrics.violations_per_failure scenario w failures in
  Alcotest.(check (array int)) "same per-failure counts" per s.Metrics.per_failure

let suite =
  [
    Alcotest.test_case "violation counts" `Quick test_violation_counts;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "phi metrics" `Quick test_phi_metrics;
    Alcotest.test_case "utilization metrics" `Quick test_utilization_metrics;
    Alcotest.test_case "load increase after failure" `Quick test_load_increase;
    Alcotest.test_case "max pair utilization" `Quick test_max_pair_utilization;
    Alcotest.test_case "delay profile" `Quick test_delay_profile;
    Alcotest.test_case "summary consistency" `Quick test_summary_consistency;
  ]
