(* Unit and property tests for Dtr_util.Stat. *)

module Stat = Dtr_util.Stat

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_f name expected actual =
  Alcotest.(check bool) name true (feq expected actual)

let test_mean () =
  check_f "mean" 2.5 (Stat.mean [| 1.; 2.; 3.; 4. |]);
  check_f "singleton" 7. (Stat.mean [| 7. |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stat.mean: empty sample") (fun () ->
      ignore (Stat.mean [||]))

let test_variance () =
  (* sample variance of 1..5 is 2.5 *)
  check_f "variance 1..5" 2.5 (Stat.variance [| 1.; 2.; 3.; 4.; 5. |]);
  check_f "singleton variance" 0. (Stat.variance [| 42. |])

let test_stddev () = check_f "stddev" (sqrt 2.5) (Stat.stddev [| 1.; 2.; 3.; 4.; 5. |])

let test_min_max () =
  check_f "min" (-3.) (Stat.minimum [| 2.; -3.; 5. |]);
  check_f "max" 5. (Stat.maximum [| 2.; -3.; 5. |])

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_f "p0" 1. (Stat.percentile xs 0.);
  check_f "p50" 3. (Stat.percentile xs 50.);
  check_f "p100" 5. (Stat.percentile xs 100.);
  check_f "p25" 2. (Stat.percentile xs 25.);
  (* interpolation *)
  check_f "p10 interpolated" 1.4 (Stat.percentile xs 10.)

let test_percentile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  let _ = Stat.percentile xs 50. in
  Alcotest.(check (array (float 0.))) "unchanged" [| 3.; 1.; 2. |] xs

let test_left_tail_mean () =
  let xs = [| 5.; 1.; 4.; 2.; 3.; 10.; 9.; 8.; 7.; 6. |] in
  (* smallest 10% of 10 values = the single smallest *)
  check_f "tail 0.1" 1. (Stat.left_tail_mean xs ~fraction:0.1);
  (* smallest 30% = {1,2,3} *)
  check_f "tail 0.3" 2. (Stat.left_tail_mean xs ~fraction:0.3);
  check_f "tail 1.0 = mean" (Stat.mean xs) (Stat.left_tail_mean xs ~fraction:1.0);
  (* fewer elements than the fraction implies still uses at least one *)
  check_f "tiny sample" 2. (Stat.left_tail_mean [| 3.; 2. |] ~fraction:0.1)

let test_right_tail_mean () =
  let xs = [| 5.; 1.; 4.; 2.; 3.; 10.; 9.; 8.; 7.; 6. |] in
  check_f "top 10%" 10. (Stat.right_tail_mean xs ~fraction:0.1);
  check_f "top 20%" 9.5 (Stat.right_tail_mean xs ~fraction:0.2)

let test_tail_mean_le_mean =
  QCheck.Test.make ~name:"left tail mean <= mean <= right tail mean" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 40) (float_range (-100.) 100.)) (float_range 0.05 1.))
    (fun (xs, frac) ->
      let a = Array.of_list xs in
      Stat.left_tail_mean a ~fraction:frac <= Stat.mean a +. 1e-9
      && Stat.mean a <= Stat.right_tail_mean a ~fraction:frac +. 1e-9)

let test_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (float_range (-50.) 50.))
    (fun xs -> Stat.variance (Array.of_list xs) >= 0.)

let test_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 30) (float_range (-50.) 50.))
        (float_range 0. 100.) (float_range 0. 100.))
    (fun (xs, p1, p2) ->
      let a = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stat.percentile a lo <= Stat.percentile a hi +. 1e-9)

(* Criticality rankings lean on these statistics, so the streaming Welford
   accumulator must track the batch formulas to numerical noise on any
   sample set, not just the fixed one below. *)
let test_acc_matches_batch_prop =
  QCheck.Test.make ~name:"Acc Welford matches batch mean/stddev within 1e-9"
    ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let a = Array.of_list xs in
      let acc = Stat.Acc.create () in
      Array.iter (Stat.Acc.add acc) a;
      let close u v =
        Float.abs (u -. v)
        <= 1e-9 *. Float.max 1. (Float.max (Float.abs u) (Float.abs v))
      in
      Stat.Acc.count acc = Array.length a
      && close (Stat.Acc.mean acc) (Stat.mean a)
      && close (Stat.Acc.stddev acc) (Stat.stddev a))

let test_acc_matches_batch () =
  let xs = [| 1.5; -2.; 3.25; 0.; 8.; -1. |] in
  let acc = Stat.Acc.create () in
  Array.iter (Stat.Acc.add acc) xs;
  Alcotest.(check int) "count" 6 (Stat.Acc.count acc);
  check_f "acc mean" (Stat.mean xs) (Stat.Acc.mean acc);
  check_f "acc stddev" (Stat.stddev xs) (Stat.Acc.stddev acc)

let test_acc_empty () =
  let acc = Stat.Acc.create () in
  check_f "empty mean 0" 0. (Stat.Acc.mean acc);
  check_f "empty stddev 0" 0. (Stat.Acc.stddev acc)

let test_mean_std () =
  let m, s = Stat.mean_std [| 1.; 2.; 3. |] in
  check_f "mean part" 2. m;
  check_f "std part" 1. s

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean on empty raises" `Quick test_mean_empty;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile preserves input" `Quick test_percentile_does_not_mutate;
    Alcotest.test_case "left tail mean" `Quick test_left_tail_mean;
    Alcotest.test_case "right tail mean" `Quick test_right_tail_mean;
    QCheck_alcotest.to_alcotest test_tail_mean_le_mean;
    QCheck_alcotest.to_alcotest test_variance_nonneg;
    QCheck_alcotest.to_alcotest test_percentile_monotone;
    Alcotest.test_case "streaming accumulator" `Quick test_acc_matches_batch;
    QCheck_alcotest.to_alcotest test_acc_matches_batch_prop;
    Alcotest.test_case "empty accumulator" `Quick test_acc_empty;
    Alcotest.test_case "mean_std" `Quick test_mean_std;
  ]
