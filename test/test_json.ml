(* Tests for the minimal JSON reader and writer (Dtr_util.Json).  Reader:
   value grammar, string escapes, error positions as Result, and a
   round-trip against the documents the project itself emits.  Writer:
   escaping inverts the reader's unescaping, floats round-trip to the same
   bits, and parse ∘ to_string is the identity on random values. *)

module Json = Dtr_util.Json

let json = Alcotest.testable (fun fmt _ -> Format.fprintf fmt "<json>") ( = )

let test_scalars () =
  Alcotest.(check (result json string)) "null" (Ok Json.Null) (Json.parse "null");
  Alcotest.(check (result json string)) "true" (Ok (Json.Bool true))
    (Json.parse "true");
  Alcotest.(check (result json string)) "int" (Ok (Json.Num 42.))
    (Json.parse " 42 ");
  Alcotest.(check (result json string)) "negative exponent"
    (Ok (Json.Num (-1.5e3)))
    (Json.parse "-1.5e3");
  Alcotest.(check (result json string)) "string" (Ok (Json.Str "hi"))
    (Json.parse "\"hi\"")

let test_structures () =
  let doc = {| {"a": [1, 2, {"b": null}], "c": "x", "a": 9} |} in
  match Json.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
      (* Duplicate keys are kept; member returns the first. *)
      (match Json.member "a" j with
      | Some (Json.Arr [ Json.Num 1.; Json.Num 2.; Json.Obj [ ("b", Json.Null) ] ])
        -> ()
      | _ -> Alcotest.fail "first \"a\" member mismatch");
      Alcotest.(check (list string)) "member order preserved" [ "a"; "c"; "a" ]
        (List.map fst (Json.to_obj j));
      Alcotest.(check string) "string accessor" "x"
        (Json.string_member "c" j ~default:"?")

let test_escapes () =
  Alcotest.(check (result json string)) "standard escapes"
    (Ok (Json.Str "a\"b\\c\nd\te"))
    (Json.parse {|"a\"b\\c\nd\te"|});
  Alcotest.(check (result json string)) "unicode escape to UTF-8"
    (Ok (Json.Str "\xc3\xa9"))
    (Json.parse "\"\\u00e9\"");
  Alcotest.(check bool) "unknown escape rejected" true
    (Result.is_error (Json.parse {|"\q"|}))

let test_errors () =
  List.iter
    (fun (label, doc) ->
      Alcotest.(check bool) label true (Result.is_error (Json.parse doc)))
    [
      ("empty input", "");
      ("unterminated string", "\"abc");
      ("trailing garbage", "1 2");
      ("bare comma", "[1,]");
      ("missing colon", "{\"a\" 1}");
      ("unclosed object", "{\"a\": 1");
      ("bad number", "-");
    ];
  match Json.parse_exn "[" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "parse_exn must raise on malformed input"

let test_accessors () =
  let j = Json.parse_exn {| {"i": 3, "f": 3.5, "s": "t", "b": false} |} in
  Alcotest.(check (option int)) "int member" (Some 3)
    (Option.bind (Json.member "i" j) Json.to_int_opt);
  Alcotest.(check (option int)) "non-integral rejected by to_int_opt" None
    (Option.bind (Json.member "f" j) Json.to_int_opt);
  Alcotest.(check (float 0.)) "float member" 3.5
    (Json.float_member "f" j ~default:0.);
  Alcotest.(check (option bool)) "bool member" (Some false)
    (Option.bind (Json.member "b" j) Json.to_bool_opt);
  Alcotest.(check int) "defaults pass through" 7
    (Json.int_member "missing" j ~default:7);
  Alcotest.(check (list json)) "to_list on non-array" [] (Json.to_list j)

(* The reader must accept what the project writes: an actual obs report. *)
let test_reads_own_report () =
  let was = Dtr_obs.Metric.enabled () in
  Dtr_obs.Report.reset ();
  Dtr_obs.Metric.set_enabled true;
  Fun.protect ~finally:(fun () -> Dtr_obs.Metric.set_enabled was) @@ fun () ->
  Dtr_obs.Span.with_ ~name:"outer" (fun () ->
      Dtr_obs.Span.with_ ~name:"inner" (fun () -> ()));
  Dtr_obs.Report.set_instance [ ("topology", Dtr_obs.Report.S "rand") ];
  let j = Json.parse_exn (Dtr_obs.Report.to_string ()) in
  Alcotest.(check string) "schema readable" "dtr-obs-report/3"
    (Json.string_member "schema" j ~default:"?");
  match Json.to_list (Option.get (Json.member "spans" j)) with
  | [ outer ] ->
      Alcotest.(check string) "span name" "outer"
        (Json.string_member "name" outer ~default:"?");
      Alcotest.(check int) "span count" 1
        (Json.int_member "count" outer ~default:0)
  | spans -> Alcotest.failf "expected one root span, got %d" (List.length spans)

(* --- writer -------------------------------------------------------------- *)

let test_writer_scalars () =
  List.iter
    (fun (label, j, expect) ->
      Alcotest.(check string) label expect (Json.to_string j))
    [
      ("null", Json.Null, "null");
      ("true", Json.Bool true, "true");
      ("false", Json.Bool false, "false");
      ("integral float", Json.Num 42., "42.0");
      ("negative zero is integral", Json.Num (-0.), "-0.0");
      ("fraction", Json.Num 3.5, "3.5");
      ("nan becomes null", Json.Num Float.nan, "null");
      ("infinity becomes null", Json.Num Float.infinity, "null");
      ("plain string", Json.Str "hi", {|"hi"|});
      ("empty array", Json.Arr [], "[]");
      ("empty object", Json.Obj [], "{}");
      ( "nested",
        Json.Obj [ ("a", Json.Arr [ Json.Num 1.; Json.Null ]) ],
        {|{"a": [1.0, null]}|} );
    ]

let test_writer_escaping () =
  Alcotest.(check string) "named escapes" {|"a\"b\\c\nd\te\rf\bg\fh"|}
    (Json.to_string (Json.Str "a\"b\\c\nd\te\rf\bg\012h"));
  Alcotest.(check string) "control characters as \\u00XX" "\"\\u0000\\u001f\""
    (Json.to_string (Json.Str "\000\031"));
  Alcotest.(check string) "UTF-8 passes through" "\"\xc3\xa9\""
    (Json.to_string (Json.Str "\xc3\xa9"));
  (* The writer's escaping must invert the reader's unescaping exactly. *)
  let hostile = "quote\" slash\\ nl\n tab\t ctl\001 é" in
  Alcotest.(check (result json string)) "escape round-trip"
    (Ok (Json.Str hostile))
    (Json.parse (Json.to_string (Json.Str hostile)))

let test_float_round_trip () =
  List.iter
    (fun f ->
      let s = Json.number_string f in
      Alcotest.(check (float 0.)) (Printf.sprintf "%h round-trips" f) f
        (float_of_string s))
    [
      0.1; 1. /. 3.; Float.pi; 1e-300; 1.7976931348623157e308; 4e-323;
      0.30000000000000004; 123456789.123456789; -2.5e-8;
    ]

let json_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun f -> Json.Num f) float;
        map (fun f -> Json.Num (float_of_int f)) int;
        map (fun s -> Json.Str s) string_printable;
        map (fun s -> Json.Str s) string;
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        oneof
          [
            scalar;
            map (fun l -> Json.Arr l) (list_size (0 -- 4) (self (n / 2)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (0 -- 4) (pair string_printable (self (n / 2))));
          ])

(* NaN can't survive (emitted as null), so normalize both sides. *)
let rec finite = function
  | Json.Num f when not (Float.is_finite f) -> Json.Null
  | Json.Arr l -> Json.Arr (List.map finite l)
  | Json.Obj kvs -> Json.Obj (List.map (fun (k, v) -> (k, finite v)) kvs)
  | j -> j

let prop_write_parse_identity =
  QCheck2.Test.make ~name:"parse (to_string j) = j" ~count:500 json_gen
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> j' = finite j
      | Error e -> QCheck2.Test.fail_reportf "writer output unparseable: %s" e)

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "arrays and objects" `Quick test_structures;
    Alcotest.test_case "string escapes" `Quick test_escapes;
    Alcotest.test_case "malformed input is rejected" `Quick test_errors;
    Alcotest.test_case "typed accessors" `Quick test_accessors;
    Alcotest.test_case "reads the project's own reports" `Quick
      test_reads_own_report;
    Alcotest.test_case "writer scalars" `Quick test_writer_scalars;
    Alcotest.test_case "writer escaping" `Quick test_writer_escaping;
    Alcotest.test_case "float round-trip" `Quick test_float_round_trip;
    QCheck_alcotest.to_alcotest prop_write_parse_identity;
  ]
