(* Tests for the minimal JSON reader (Dtr_util.Json) backing the trace
   tooling: value grammar, string escapes, error positions as Result, and
   a round-trip against the documents the project itself emits. *)

module Json = Dtr_util.Json

let json = Alcotest.testable (fun fmt _ -> Format.fprintf fmt "<json>") ( = )

let test_scalars () =
  Alcotest.(check (result json string)) "null" (Ok Json.Null) (Json.parse "null");
  Alcotest.(check (result json string)) "true" (Ok (Json.Bool true))
    (Json.parse "true");
  Alcotest.(check (result json string)) "int" (Ok (Json.Num 42.))
    (Json.parse " 42 ");
  Alcotest.(check (result json string)) "negative exponent"
    (Ok (Json.Num (-1.5e3)))
    (Json.parse "-1.5e3");
  Alcotest.(check (result json string)) "string" (Ok (Json.Str "hi"))
    (Json.parse "\"hi\"")

let test_structures () =
  let doc = {| {"a": [1, 2, {"b": null}], "c": "x", "a": 9} |} in
  match Json.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
      (* Duplicate keys are kept; member returns the first. *)
      (match Json.member "a" j with
      | Some (Json.Arr [ Json.Num 1.; Json.Num 2.; Json.Obj [ ("b", Json.Null) ] ])
        -> ()
      | _ -> Alcotest.fail "first \"a\" member mismatch");
      Alcotest.(check (list string)) "member order preserved" [ "a"; "c"; "a" ]
        (List.map fst (Json.to_obj j));
      Alcotest.(check string) "string accessor" "x"
        (Json.string_member "c" j ~default:"?")

let test_escapes () =
  Alcotest.(check (result json string)) "standard escapes"
    (Ok (Json.Str "a\"b\\c\nd\te"))
    (Json.parse {|"a\"b\\c\nd\te"|});
  Alcotest.(check (result json string)) "unicode escape to UTF-8"
    (Ok (Json.Str "\xc3\xa9"))
    (Json.parse "\"\\u00e9\"");
  Alcotest.(check bool) "unknown escape rejected" true
    (Result.is_error (Json.parse {|"\q"|}))

let test_errors () =
  List.iter
    (fun (label, doc) ->
      Alcotest.(check bool) label true (Result.is_error (Json.parse doc)))
    [
      ("empty input", "");
      ("unterminated string", "\"abc");
      ("trailing garbage", "1 2");
      ("bare comma", "[1,]");
      ("missing colon", "{\"a\" 1}");
      ("unclosed object", "{\"a\": 1");
      ("bad number", "-");
    ];
  match Json.parse_exn "[" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "parse_exn must raise on malformed input"

let test_accessors () =
  let j = Json.parse_exn {| {"i": 3, "f": 3.5, "s": "t", "b": false} |} in
  Alcotest.(check (option int)) "int member" (Some 3)
    (Option.bind (Json.member "i" j) Json.to_int_opt);
  Alcotest.(check (option int)) "non-integral rejected by to_int_opt" None
    (Option.bind (Json.member "f" j) Json.to_int_opt);
  Alcotest.(check (float 0.)) "float member" 3.5
    (Json.float_member "f" j ~default:0.);
  Alcotest.(check (option bool)) "bool member" (Some false)
    (Option.bind (Json.member "b" j) Json.to_bool_opt);
  Alcotest.(check int) "defaults pass through" 7
    (Json.int_member "missing" j ~default:7);
  Alcotest.(check (list json)) "to_list on non-array" [] (Json.to_list j)

(* The reader must accept what the project writes: an actual obs report. *)
let test_reads_own_report () =
  let was = Dtr_obs.Metric.enabled () in
  Dtr_obs.Report.reset ();
  Dtr_obs.Metric.set_enabled true;
  Fun.protect ~finally:(fun () -> Dtr_obs.Metric.set_enabled was) @@ fun () ->
  Dtr_obs.Span.with_ ~name:"outer" (fun () ->
      Dtr_obs.Span.with_ ~name:"inner" (fun () -> ()));
  Dtr_obs.Report.set_instance [ ("topology", Dtr_obs.Report.S "rand") ];
  let j = Json.parse_exn (Dtr_obs.Report.to_string ()) in
  Alcotest.(check string) "schema readable" "dtr-obs-report/2"
    (Json.string_member "schema" j ~default:"?");
  match Json.to_list (Option.get (Json.member "spans" j)) with
  | [ outer ] ->
      Alcotest.(check string) "span name" "outer"
        (Json.string_member "name" outer ~default:"?");
      Alcotest.(check int) "span count" 1
        (Json.int_member "count" outer ~default:0)
  | spans -> Alcotest.failf "expected one root span, got %d" (List.length spans)

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "arrays and objects" `Quick test_structures;
    Alcotest.test_case "string escapes" `Quick test_escapes;
    Alcotest.test_case "malformed input is rejected" `Quick test_errors;
    Alcotest.test_case "typed accessors" `Quick test_accessors;
    Alcotest.test_case "reads the project's own reports" `Quick
      test_reads_own_report;
  ]
