(* Tests for the move-space pruning engine: lexicographic early-abort
   pricing (try_arc_bounded / compound_sweep_bounded) must be *exact* —
   [Some] carries the bit-identical full cost, [None] certifies the
   candidate would have been rejected — the delta cache must only ever
   return previously computed values, end-to-end optimization must be
   bit-identical with pruning on and off, and --fast must stay within its
   documented quality envelope. *)

module Rng = Dtr_util.Rng
module Gen = Dtr_topology.Gen
module Failure = Dtr_topology.Failure
module Lexico = Dtr_cost.Lexico
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Eval_incr = Dtr_core.Eval_incr
module Delta_cache = Dtr_core.Delta_cache
module Prune = Dtr_core.Prune
module Phase1 = Dtr_core.Phase1
module Phase2 = Dtr_core.Phase2
module Optimizer = Dtr_core.Optimizer

let scenario_of_seed seed =
  let rng = Rng.create seed in
  let nodes = 8 + Rng.int rng 8 in
  Scenario.random_instance ~params:Fixtures.tiny_params ~nodes ~degree:4.
    ~avg_util:(0.3 +. Rng.float rng 0.3)
    rng Gen.Rand_topo

let same_cost a b = a.Lexico.lambda = b.Lexico.lambda && a.Lexico.phi = b.Lexico.phi

(* Lexico.prunes soundness: whenever it fires on a partial, no completion
   (componentwise >= the partial) can be accepted against the bound. *)
let prop_prunes_sound =
  QCheck.Test.make ~name:"prunes partial => completion rejected" ~count:500
    QCheck.(
      quad (float_range 0. 20.) (float_range 0. 1000.) (float_range 0. 20.)
        (pair (float_range 0. 1000.) (pair (float_range 0. 5.) (float_range 0. 500.))))
    (fun (pl, pp, bl, (bp, (dl, dp))) ->
      let partial = Lexico.make ~lambda:pl ~phi:pp in
      let bound = Lexico.make ~lambda:bl ~phi:bp in
      let completion = Lexico.make ~lambda:(pl +. dl) ~phi:(pp +. dp) in
      QCheck.assume (Lexico.prunes partial ~than:bound);
      not (Lexico.is_better completion ~than:bound))

(* The engine property, exercised in the exact shape the searches use it:
   two engines walk the same perturbation sequence, one pricing in full and
   one bounded by the running incumbent.  [Some] must be bitwise the full
   cost; [None] may only appear when the full cost would have been
   rejected; accepted moves (which are always [Some]) keep the two engines
   anchored at the same state. *)
let prop_try_arc_bounded_exact =
  QCheck.Test.make ~name:"try_arc_bounded = try_arc or certified reject"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let scenario = scenario_of_seed seed in
      let m = Scenario.num_arcs scenario in
      let p = scenario.Scenario.params in
      let rng = Rng.create (seed + 1) in
      let w = Weights.random rng ~num_arcs:m ~wmax:p.Scenario.wmax in
      let e_ref = Eval_incr.create scenario in
      let e_b = Eval_incr.create scenario in
      let cur = ref (Eval_incr.anchor e_ref w) in
      let (_ : Lexico.t) = Eval_incr.anchor e_b w in
      let pruned = ref 0 and ok = ref true in
      for _ = 1 to 40 do
        if !ok then begin
          let arc = Rng.int rng m in
          let saved = Weights.save_arc w arc in
          Weights.perturb_arc rng w ~arc ~wmax:p.Scenario.wmax;
          let full = Eval_incr.try_arc e_ref w ~arc in
          let bounded =
            Eval_incr.try_arc_bounded e_b
              ~prune:(fun partial -> Lexico.prunes partial ~than:!cur)
              w ~arc
          in
          (match bounded with
          | Some c -> if not (same_cost c full) then ok := false
          | None ->
              incr pruned;
              if Lexico.is_better full ~than:!cur then ok := false);
          if Lexico.is_better full ~than:!cur then begin
            Eval_incr.commit e_ref;
            Eval_incr.commit e_b;
            cur := full
          end
          else begin
            Eval_incr.rollback e_ref;
            Eval_incr.rollback e_b;
            Weights.restore_arc w saved
          end
        end
      done;
      (* settled states agree after the mixed walk *)
      !ok && same_cost (Eval_incr.cost e_ref) (Eval_incr.cost e_b))

let prop_sweep_bounded_exact =
  QCheck.Test.make ~name:"compound_sweep_bounded = add init full sweep"
    ~count:20
    QCheck.(pair (int_range 0 100_000) (int_range 0 2))
    (fun (seed, mode) ->
      let scenario = scenario_of_seed seed in
      let m = Scenario.num_arcs scenario in
      let p = scenario.Scenario.params in
      let rng = Rng.create (seed + 3) in
      let w = Weights.random rng ~num_arcs:m ~wmax:p.Scenario.wmax in
      let e = Eval_incr.create scenario in
      let normal = Eval_incr.anchor e w in
      let routing_d, routing_t = Eval_incr.current_routing e in
      let failures =
        List.init (min m 6) (fun _ -> Failure.Arc (Rng.int rng m))
        |> List.sort_uniq compare
      in
      let full =
        Eval.compound_sweep_from scenario ~routing_d ~routing_t w ~failures
      in
      (* three bound regimes: prune nothing, prune everything, realistic *)
      let init, bound =
        match mode with
        | 0 -> (Lexico.zero, Lexico.make ~lambda:infinity ~phi:infinity)
        | 1 -> (normal, Lexico.zero)
        | _ ->
            ( Lexico.zero,
              Lexico.make ~lambda:full.Lexico.lambda
                ~phi:(full.Lexico.phi /. 2.) )
      in
      let bounded =
        Eval.compound_sweep_bounded scenario ~routing_d ~routing_t ~init
          ~prune:(fun partial -> Lexico.prunes partial ~than:bound)
          w ~failures
      in
      let expected = Lexico.add init full in
      match bounded with
      | Eval.Swept c -> same_cost c expected
      | Eval.Aborted_at partial ->
          (* the abort partial is a certified componentwise lower bound,
             and the abort itself proves the full compound can't win *)
          partial.Lexico.lambda <= expected.Lexico.lambda
          && partial.Lexico.phi <= expected.Lexico.phi
          && not (Lexico.is_better expected ~than:bound))

let test_delta_cache () =
  let rng = Rng.create 31 in
  let m = 12 in
  let w = Weights.random rng ~num_arcs:m ~wmax:20 in
  (* rolling-hash shift agrees with a from-scratch hash *)
  let h0 = Delta_cache.hash_of w in
  let arc = 5 in
  let old_wd = w.Weights.wd.(arc) and old_wt = w.Weights.wt.(arc) in
  w.Weights.wd.(arc) <- old_wd + 1;
  w.Weights.wt.(arc) <- old_wt + 2;
  let shifted =
    Delta_cache.shift h0 ~arc ~old_wd ~old_wt ~new_wd:w.Weights.wd.(arc)
      ~new_wt:w.Weights.wt.(arc)
  in
  Alcotest.(check bool) "shift = hash_of" true (shifted = Delta_cache.hash_of w);
  (* exactness: only the very vector that was stored hits *)
  let t = Delta_cache.create ~capacity:4 in
  let cost = Lexico.make ~lambda:1.5 ~phi:42. in
  (* a lower-bound entry upgrades to the exact cost, never the reverse *)
  let partial = Lexico.make ~lambda:1.5 ~phi:17. in
  Delta_cache.add_lower t ~hash:shifted w partial;
  (match Delta_cache.find t ~hash:shifted w with
  | Some (Delta_cache.Lower p) ->
      Alcotest.(check bool) "lower hit returns stored partial" true
        (same_cost p partial)
  | Some (Delta_cache.Full _) -> Alcotest.fail "expected a lower-bound entry"
  | None -> Alcotest.fail "expected a lower-bound hit");
  Delta_cache.add t ~hash:shifted w cost;
  Delta_cache.add_lower t ~hash:shifted w partial;
  (match Delta_cache.find t ~hash:shifted w with
  | Some (Delta_cache.Full c) ->
      Alcotest.(check bool) "hit returns stored cost" true (same_cost c cost)
  | Some (Delta_cache.Lower _) ->
      Alcotest.fail "add_lower must not downgrade a full entry"
  | None -> Alcotest.fail "expected a hit");
  w.Weights.wd.(0) <- w.Weights.wd.(0) + 1;
  Alcotest.(check bool) "mutated vector misses even on a forced hash" true
    (Delta_cache.find t ~hash:shifted w = None);
  w.Weights.wd.(0) <- w.Weights.wd.(0) - 1;
  Delta_cache.bump t;
  Alcotest.(check bool) "bump invalidates resident entries" true
    (Delta_cache.find t ~hash:shifted w = None);
  let s = Delta_cache.stats t in
  Alcotest.(check int) "one verified full hit" 1 s.Delta_cache.hits;
  Alcotest.(check int) "one verified lower hit" 1 s.Delta_cache.lower_hits;
  Alcotest.(check int) "two misses" 2 s.Delta_cache.misses

(* Pin the pruning flag for one run and restore the ambient state after:
   the suite must behave identically under DTR_NO_PRUNE=1 (the CI leg runs
   everything that way), so the "on" arms enable explicitly rather than
   assuming the process default. *)
let with_prune enabled f =
  let was = Prune.enabled () in
  Prune.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Prune.set_enabled was) f

(* End-to-end: the full two-phase optimization is bit-identical with
   pruning on (early aborts + delta cache) and off (reference pricing). *)
let test_optimize_prune_identity () =
  let scenario = Fixtures.small ~seed:7 () in
  let on =
    with_prune true (fun () -> Optimizer.optimize ~rng:(Rng.create 99) scenario)
  in
  let off =
    with_prune false (fun () -> Optimizer.optimize ~rng:(Rng.create 99) scenario)
  in
  Alcotest.(check bool) "same robust weights" true
    (Weights.equal on.Optimizer.robust off.Optimizer.robust);
  Alcotest.(check bool) "same regular weights" true
    (Weights.equal on.Optimizer.regular off.Optimizer.regular);
  Alcotest.(check bool) "same fail cost" true
    (same_cost on.Optimizer.robust_fail_cost off.Optimizer.robust_fail_cost);
  Alcotest.(check bool) "same normal cost" true
    (same_cost on.Optimizer.robust_normal_cost off.Optimizer.robust_normal_cost);
  Alcotest.(check (list int)) "same critical set" on.Optimizer.critical
    off.Optimizer.critical;
  Alcotest.(check int) "same phase2 eval count"
    on.Optimizer.phase2.Phase2.stats.Phase2.evals
    off.Optimizer.phase2.Phase2.stats.Phase2.evals;
  Alcotest.(check int) "no aborts when disabled" 0
    (off.Optimizer.phase1.Phase1.stats.Phase1.pruned
    + off.Optimizer.phase2.Phase2.stats.Phase2.pruned)

let test_warm_start_prune_identity () =
  let scenario = Fixtures.small ~seed:13 () in
  let phase1 = Phase1.run ~rng:(Rng.create 3) scenario in
  let failures =
    List.map (fun a -> Failure.Arc a) (Phase1.critical_set scenario phase1)
  in
  (* Capacity must cover the run's fully-priced vectors: a too-small LRU
     thrashes under the cyclic re-probe of a repeated trajectory (0 hits)
     without ever affecting exactness. *)
  let cache = Delta_cache.create ~capacity:4096 in
  let run () =
    Optimizer.warm_start ~rng:(Rng.create 23) ~failures ~cache
      ~incumbent:phase1.Phase1.best scenario
  in
  let on = with_prune true run in
  (* second run on a warm cache must follow the identical trajectory *)
  let again = with_prune true run in
  let off = with_prune false run in
  Alcotest.(check bool) "same weights (prune on/off)" true
    (Weights.equal on.Optimizer.weights off.Optimizer.weights);
  Alcotest.(check bool) "same objective (prune on/off)" true
    (same_cost on.Optimizer.objective off.Optimizer.objective);
  Alcotest.(check bool) "same weights (warm cache)" true
    (Weights.equal on.Optimizer.weights again.Optimizer.weights);
  Alcotest.(check bool) "same objective (warm cache)" true
    (same_cost on.Optimizer.objective again.Optimizer.objective);
  let s = Delta_cache.stats cache in
  Alcotest.(check bool) "warm cache produced hits" true (s.Delta_cache.hits > 0)

(* --fast changes the trajectory by design; it must still (a) satisfy the
   normal-conditions constraints, (b) never end above its own starting
   point, and (c) stay within a coarse quality envelope of the exact
   search. *)
let test_fast_quality () =
  let scenario = Fixtures.small ~seed:21 () in
  let phase1 = Phase1.run ~rng:(Rng.create 8) scenario in
  let failures =
    List.map (fun a -> Failure.Arc a) (Phase1.critical_set scenario phase1)
  in
  let exact = Phase2.run ~rng:(Rng.create 14) scenario ~phase1 ~failures in
  let fast = Phase2.run ~rng:(Rng.create 14) ~fast:true scenario ~phase1 ~failures in
  let p = scenario.Scenario.params in
  let best = phase1.Phase1.best_cost in
  Alcotest.(check bool) "fast solution satisfies Eq. (5)" true
    (fast.Phase2.normal_cost.Lexico.lambda
    <= best.Lexico.lambda +. Lexico.lambda_tolerance);
  Alcotest.(check bool) "fast solution satisfies Eq. (6)" true
    (fast.Phase2.normal_cost.Lexico.phi
    <= (1. +. p.Scenario.chi) *. best.Lexico.phi +. 1e-9);
  (* no worse than the best Phase-1 start it searched from *)
  let start_w, _ = List.hd phase1.Phase1.acceptable in
  let start_kfail =
    Eval.compound (Eval.sweep scenario start_w failures)
  in
  Alcotest.(check bool) "fast improves on its starting point" true
    (not (Lexico.is_better start_kfail ~than:fast.Phase2.fail_cost));
  Alcotest.(check bool) "fast quality within 2x of exact (phi)" true
    (fast.Phase2.fail_cost.Lexico.phi
    <= (2. *. exact.Phase2.fail_cost.Lexico.phi) +. 1e-9)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_prunes_sound;
    QCheck_alcotest.to_alcotest prop_try_arc_bounded_exact;
    QCheck_alcotest.to_alcotest prop_sweep_bounded_exact;
    Alcotest.test_case "delta cache exactness" `Quick test_delta_cache;
    Alcotest.test_case "optimize identical with pruning on/off" `Quick
      test_optimize_prune_identity;
    Alcotest.test_case "warm start identical with pruning on/off" `Quick
      test_warm_start_prune_identity;
    Alcotest.test_case "--fast quality envelope" `Quick test_fast_quality;
  ]
