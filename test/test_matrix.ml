(* Tests for Dtr_traffic.Matrix. *)

module Matrix = Dtr_traffic.Matrix

let test_create_and_access () =
  let m = Matrix.create 4 in
  Alcotest.(check int) "size" 4 (Matrix.size m);
  Alcotest.(check (float 0.)) "initially zero" 0. (Matrix.get m ~src:1 ~dst:2);
  Matrix.set m ~src:1 ~dst:2 5.5;
  Alcotest.(check (float 0.)) "set/get" 5.5 (Matrix.get m ~src:1 ~dst:2)

let test_validation () =
  let m = Matrix.create 3 in
  Alcotest.check_raises "diagonal" (Invalid_argument "Matrix.set: diagonal must stay zero")
    (fun () -> Matrix.set m ~src:1 ~dst:1 1.);
  Alcotest.check_raises "negative" (Invalid_argument "Matrix.set: negative demand")
    (fun () -> Matrix.set m ~src:0 ~dst:1 (-1.));
  Alcotest.check_raises "range" (Invalid_argument "Matrix: index out of range") (fun () ->
      ignore (Matrix.get m ~src:0 ~dst:9))

let test_total_and_scale () =
  let m = Matrix.create 3 in
  Matrix.set m ~src:0 ~dst:1 2.;
  Matrix.set m ~src:2 ~dst:0 3.;
  Alcotest.(check (float 1e-9)) "total" 5. (Matrix.total m);
  let doubled = Matrix.scale m 2. in
  Alcotest.(check (float 1e-9)) "scaled total" 10. (Matrix.total doubled);
  Alcotest.(check (float 1e-9)) "original untouched" 5. (Matrix.total m);
  Matrix.scale_in_place m 0.;
  Alcotest.(check (float 1e-9)) "zeroed" 0. (Matrix.total m)

let test_copy_independent () =
  let m = Matrix.create 2 in
  Matrix.set m ~src:0 ~dst:1 1.;
  let c = Matrix.copy m in
  Matrix.set m ~src:0 ~dst:1 9.;
  Alcotest.(check (float 0.)) "copy unchanged" 1. (Matrix.get c ~src:0 ~dst:1)

let test_map_clamps () =
  let m = Matrix.create 2 in
  Matrix.set m ~src:0 ~dst:1 1.;
  let neg = Matrix.map m (fun ~src:_ ~dst:_ v -> v -. 10.) in
  Alcotest.(check (float 0.)) "clamped at zero" 0. (Matrix.get neg ~src:0 ~dst:1)

let test_iter_and_pairs () =
  let m = Matrix.create 3 in
  Matrix.set m ~src:0 ~dst:1 1.;
  Matrix.set m ~src:2 ~dst:1 4.;
  Alcotest.(check int) "num_pairs" 2 (Matrix.num_pairs m);
  Alcotest.(check (list (pair int int))) "pairs in row order" [ (0, 1); (2, 1) ]
    (Matrix.pairs m);
  let sum = ref 0. in
  Matrix.iter m (fun ~src:_ ~dst:_ v -> sum := !sum +. v);
  Alcotest.(check (float 1e-9)) "iter visits non-zeros" 5. !sum

let test_dense_roundtrip () =
  let m = Matrix.create 3 in
  Matrix.set m ~src:0 ~dst:2 7.;
  let d = Matrix.dense m in
  Alcotest.(check (float 0.)) "dense view" 7. d.(0).(2);
  let m2 = Matrix.of_dense d in
  Alcotest.(check (float 0.)) "roundtrip" 7. (Matrix.get m2 ~src:0 ~dst:2)

let test_of_dense_validation () =
  Alcotest.check_raises "diagonal" (Invalid_argument "Matrix.of_dense: non-zero diagonal")
    (fun () -> ignore (Matrix.of_dense [| [| 1.; 0. |]; [| 0.; 0. |] |]));
  Alcotest.check_raises "negative" (Invalid_argument "Matrix.of_dense: negative demand")
    (fun () -> ignore (Matrix.of_dense [| [| 0.; -1. |]; [| 0.; 0. |] |]));
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_dense: ragged rows")
    (fun () -> ignore (Matrix.of_dense [| [| 0.; 0. |]; [| 0. |] |]))

let test_add () =
  let a = Matrix.create 2 and b = Matrix.create 2 in
  Matrix.set a ~src:0 ~dst:1 1.;
  Matrix.set b ~src:0 ~dst:1 2.;
  Matrix.set b ~src:1 ~dst:0 3.;
  let s = Matrix.add a b in
  Alcotest.(check (float 0.)) "sum 0->1" 3. (Matrix.get s ~src:0 ~dst:1);
  Alcotest.(check (float 0.)) "sum 1->0" 3. (Matrix.get s ~src:1 ~dst:0)

let prop_scale_linear =
  QCheck.Test.make ~name:"total is linear under scale" ~count:100
    QCheck.(pair (float_range 0. 10.) (int_range 2 8))
    (fun (f, n) ->
      let m = Matrix.create n in
      for s = 0 to n - 1 do
        for t = 0 to n - 1 do
          if s <> t then Matrix.set m ~src:s ~dst:t (float_of_int ((s * n) + t))
        done
      done;
      let scaled = Matrix.scale m f in
      Float.abs (Matrix.total scaled -. (f *. Matrix.total m)) < 1e-6 *. (1. +. Matrix.total m))

let suite =
  [
    Alcotest.test_case "create and access" `Quick test_create_and_access;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "total and scale" `Quick test_total_and_scale;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "map clamps at zero" `Quick test_map_clamps;
    Alcotest.test_case "iter and pairs" `Quick test_iter_and_pairs;
    Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
    Alcotest.test_case "of_dense validation" `Quick test_of_dense_validation;
    Alcotest.test_case "add" `Quick test_add;
    QCheck_alcotest.to_alcotest prop_scale_linear;
  ]
