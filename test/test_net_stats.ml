(* Tests for Dtr_topology.Net_stats (degrees, diameters, path diversity). *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Net_stats = Dtr_topology.Net_stats

let edge u v = Graph.{ u; v; cap = 500.; prop = 0.005 }

let ring n =
  Graph.of_edges ~n (List.init n (fun i -> edge i ((i + 1) mod n)))

let test_degrees () =
  let g = ring 5 in
  let d = Net_stats.degrees g in
  Alcotest.(check int) "min" 2 d.Net_stats.min_degree;
  Alcotest.(check int) "max" 2 d.Net_stats.max_degree;
  Alcotest.(check (float 1e-9)) "mean" 2. d.Net_stats.mean_degree

let test_hop_diameter () =
  Alcotest.(check int) "ring of 6" 3 (Net_stats.hop_diameter (ring 6));
  Alcotest.(check int) "ring of 5" 2 (Net_stats.hop_diameter (ring 5));
  let line = Graph.of_edges ~n:4 [ edge 0 1; edge 1 2; edge 2 3 ] in
  Alcotest.(check int) "line of 4" 3 (Net_stats.hop_diameter line)

let test_prop_diameter () =
  let line =
    Graph.of_edges ~n:3
      [ Graph.{ u = 0; v = 1; cap = 1.; prop = 0.004 };
        Graph.{ u = 1; v = 2; cap = 1.; prop = 0.007 } ]
  in
  Alcotest.(check (float 1e-12)) "sum of delays" 0.011 (Net_stats.prop_diameter line)

let test_disjoint_paths_ring () =
  let g = ring 6 in
  (* a bidirectional ring offers exactly two arc-disjoint paths per pair *)
  Alcotest.(check int) "two ways around" 2 (Net_stats.arc_disjoint_paths g ~src:0 ~dst:3);
  Alcotest.(check int) "self" 0 (Net_stats.arc_disjoint_paths g ~src:2 ~dst:2)

let test_disjoint_paths_line () =
  let line = Graph.of_edges ~n:3 [ edge 0 1; edge 1 2 ] in
  Alcotest.(check int) "single path" 1 (Net_stats.arc_disjoint_paths line ~src:0 ~dst:2)

let test_disjoint_paths_complete () =
  (* K4: 0->3 has three arc-disjoint routes (direct, via 1, via 2) *)
  let g =
    Graph.of_edges ~n:4
      [ edge 0 1; edge 0 2; edge 0 3; edge 1 2; edge 1 3; edge 2 3 ]
  in
  Alcotest.(check int) "K4 diversity" 3 (Net_stats.arc_disjoint_paths g ~src:0 ~dst:3)

let test_disjoint_needs_flow_cancellation () =
  (* A graph where greedy path choice without residual cancellation finds
     only one path; max-flow finds two:
         0 -> 1 -> 3
         0 -> 2 -> 1 ... the classic crossing construction. *)
  let g =
    Graph.of_edges ~n:4 [ edge 0 1; edge 1 3; edge 0 2; edge 2 3; edge 1 2 ]
  in
  Alcotest.(check int) "two disjoint paths despite the chord" 2
    (Net_stats.arc_disjoint_paths g ~src:0 ~dst:3)

let test_diversity_ordering () =
  (* the paper's qualitative claim: RandTopo offers more path diversity than
     NearTopo at equal size/degree *)
  let rand = Gen.rand (Rng.create 5) ~nodes:16 ~degree:5. in
  let near = Gen.near (Rng.create 5) ~nodes:16 ~degree:5. in
  let dr = Net_stats.mean_path_diversity rand in
  let dn = Net_stats.mean_path_diversity near in
  Alcotest.(check bool)
    (Printf.sprintf "rand %.2f >= near %.2f" dr dn)
    true (dr >= dn)

let test_diversity_bounded_by_degree () =
  let g = Gen.rand (Rng.create 6) ~nodes:12 ~degree:4. in
  let stats = Net_stats.degrees g in
  for src = 0 to 11 do
    for dst = 0 to 11 do
      if src <> dst then begin
        let k = Net_stats.arc_disjoint_paths g ~src ~dst in
        Alcotest.(check bool) "bounded by max degree" true
          (k <= stats.Net_stats.max_degree)
      end
    done
  done

let suite =
  [
    Alcotest.test_case "degree stats" `Quick test_degrees;
    Alcotest.test_case "hop diameter" `Quick test_hop_diameter;
    Alcotest.test_case "propagation diameter" `Quick test_prop_diameter;
    Alcotest.test_case "disjoint paths on a ring" `Quick test_disjoint_paths_ring;
    Alcotest.test_case "disjoint paths on a line" `Quick test_disjoint_paths_line;
    Alcotest.test_case "disjoint paths on K4" `Quick test_disjoint_paths_complete;
    Alcotest.test_case "flow cancellation" `Quick test_disjoint_needs_flow_cancellation;
    Alcotest.test_case "RandTopo beats NearTopo on diversity" `Quick test_diversity_ordering;
    Alcotest.test_case "diversity bounded by degree" `Quick test_diversity_bounded_by_degree;
  ]
