(* Test entry point: every module's suite under one Alcotest runner. *)

let () =
  Alcotest.run "dtr"
    [
      ("util.rng", Test_rng.suite);
      ("util.stat", Test_stat.suite);
      ("util.heap", Test_heap.suite);
      ("util.table", Test_table.suite);
      ("topology.graph", Test_graph.suite);
      ("topology.gen", Test_gen.suite);
      ("topology.failure", Test_failure.suite);
      ("topology.net_stats", Test_net_stats.suite);
      ("topology.srlg", Test_srlg.suite);
      ("spf.dijkstra", Test_dijkstra.suite);
      ("spf.routing", Test_routing.suite);
      ("spf.csr", Test_csr.suite);
      ("traffic.matrix", Test_matrix.suite);
      ("traffic.models", Test_traffic.suite);
      ("cost", Test_cost.suite);
      ("core.weights", Test_weights.suite);
      ("core.eval", Test_eval.suite);
      ("exec", Test_exec.suite);
      ("obs", Test_obs.suite);
      ("obs.histogram", Test_histogram.suite);
      ("obs.trace", Test_trace.suite);
      ("util.json", Test_json.suite);
      ("cli", Test_cli.suite);
      ("core.eval_incr", Test_eval_incr.suite);
      ("core.dspf", Test_dspf.suite);
      ("core.criticality", Test_criticality.suite);
      ("core.search", Test_search.suite);
      ("core.metrics", Test_metrics.suite);
      ("core.annealing", Test_annealing.suite);
      ("core.prune", Test_prune.suite);
      ("core.joint", Test_joint.suite);
      ("spf.paths", Test_paths.suite);
      ("spf.oracle", Test_oracle.suite);
      ("io", Test_io.suite);
      ("serve", Test_serve.suite);
      ("extensions", Test_extensions.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("integration", Test_integration.suite);
    ]
