(* Oracle tests: compare the production DP implementations against brute
   force on small random instances.

   - expected ECMP delay: enumerate every shortest path together with its
     even-split probability (product of 1/|next hops| at each node) and
     average the path delays;
   - max ECMP delay: maximum path delay over the enumeration;
   - ECMP loads: push each demand along the enumeration and accumulate
     per-arc loads;
   - Lambda: recompute Eq. (2) from the delay oracle. *)

module Rng = Dtr_util.Rng
module Graph = Dtr_topology.Graph
module Gen = Dtr_topology.Gen
module Routing = Dtr_spf.Routing
module Dijkstra = Dtr_spf.Dijkstra

(* All (probability, delay, arcs) triples for the ECMP paths src -> dst. *)
let enumerate_paths g routing ~arc_delay ~src ~dst =
  let rec walk node prob delay arcs =
    if node = dst then [ (prob, delay, List.rev arcs) ]
    else begin
      let nh = Routing.next_hops routing ~dest:dst ~node in
      let k = Array.length nh in
      if k = 0 then []
      else
        Array.to_list nh
        |> List.concat_map (fun id ->
               let a = Graph.arc g id in
               walk a.Graph.dst
                 (prob /. float_of_int k)
                 (delay +. arc_delay.(id))
                 (id :: arcs))
    end
  in
  walk src 1.0 0. []

let random_setup seed =
  let rng = Rng.create seed in
  let g = Gen.rand rng ~nodes:9 ~degree:3.5 in
  let m = Graph.num_arcs g in
  (* small weights to force plenty of ECMP ties *)
  let weights = Array.init m (fun _ -> 1 + Rng.int rng 3) in
  let routing = Routing.compute g ~weights () in
  let arc_delay = Array.init m (fun _ -> Rng.float rng 0.01) in
  (g, rng, routing, arc_delay)

let test_expected_delay_oracle () =
  for seed = 0 to 14 do
    let g, _, routing, arc_delay = random_setup seed in
    let n = Graph.num_nodes g in
    for dst = 0 to n - 1 do
      let del = Routing.expected_delays_to routing ~arc_delay ~dest:dst in
      for src = 0 to n - 1 do
        if src <> dst && Routing.reachable routing ~src ~dst then begin
          let paths = enumerate_paths g routing ~arc_delay ~src ~dst in
          let total_prob = List.fold_left (fun acc (p, _, _) -> acc +. p) 0. paths in
          Alcotest.(check (float 1e-9)) "probabilities sum to 1" 1. total_prob;
          let expected =
            List.fold_left (fun acc (p, d, _) -> acc +. (p *. d)) 0. paths
          in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "seed %d pair %d->%d" seed src dst)
            expected del.(src)
        end
      done
    done
  done

let test_max_delay_oracle () =
  for seed = 0 to 9 do
    let g, _, routing, arc_delay = random_setup (100 + seed) in
    let n = Graph.num_nodes g in
    for dst = 0 to n - 1 do
      let del = Routing.max_delays_to routing ~arc_delay ~dest:dst in
      for src = 0 to n - 1 do
        if src <> dst && Routing.reachable routing ~src ~dst then begin
          let paths = enumerate_paths g routing ~arc_delay ~src ~dst in
          let worst = List.fold_left (fun acc (_, d, _) -> Float.max acc d) 0. paths in
          Alcotest.(check (float 1e-9)) "max over paths" worst del.(src)
        end
      done
    done
  done

let test_load_oracle () =
  for seed = 0 to 9 do
    let g, rng, routing, arc_delay = random_setup (200 + seed) in
    let n = Graph.num_nodes g in
    let m = Graph.num_arcs g in
    (* a handful of random demands *)
    let demands = Array.make_matrix n n 0. in
    for _ = 1 to 12 do
      let s = Rng.int rng n and t = Rng.int rng n in
      if s <> t then demands.(s).(t) <- demands.(s).(t) +. Rng.float rng 20.
    done;
    let loads, unrouted = Routing.loads routing ~graph:g ~demands () in
    (* oracle: push every demand along its enumerated paths *)
    let oracle = Array.make m 0. in
    let dropped = ref 0. in
    for s = 0 to n - 1 do
      for t = 0 to n - 1 do
        let v = demands.(s).(t) in
        if v > 0. then begin
          if Routing.reachable routing ~src:s ~dst:t then
            List.iter
              (fun (p, _, arcs) ->
                List.iter (fun id -> oracle.(id) <- oracle.(id) +. (p *. v)) arcs)
              (enumerate_paths g routing ~arc_delay ~src:s ~dst:t)
          else dropped := !dropped +. v
        end
      done
    done;
    Alcotest.(check (float 1e-6)) "unrouted agrees" !dropped unrouted;
    for id = 0 to m - 1 do
      Alcotest.(check (float 1e-6)) (Printf.sprintf "load arc %d" id) oracle.(id) loads.(id)
    done
  done

(* Lambda from Eval vs a recomputation on top of the delay oracle. *)
let test_lambda_oracle () =
  for seed = 0 to 4 do
    let scenario = Fixtures.small ~seed:(300 + seed) () in
    let g = scenario.Dtr_core.Scenario.graph in
    let rng = Rng.create (400 + seed) in
    let w =
      Dtr_core.Weights.random rng ~num_arcs:(Graph.num_arcs g) ~wmax:20
    in
    let detail = Dtr_core.Eval.evaluate scenario ~want_pair_delays:true w in
    let sla = scenario.Dtr_core.Scenario.params.Dtr_core.Scenario.sla in
    let lambda_oracle =
      Array.fold_left
        (fun acc (_, _, xi) -> acc +. Dtr_cost.Sla.pair_penalty sla xi)
        0. detail.Dtr_core.Eval.pair_delays
    in
    Alcotest.(check (float 1e-6)) "lambda equals sum of pair penalties" lambda_oracle
      detail.Dtr_core.Eval.cost.Dtr_cost.Lexico.lambda;
    (* violation count agrees with the profile *)
    let violations =
      Array.fold_left
        (fun acc (_, _, xi) -> if Dtr_cost.Sla.is_violation sla xi then acc + 1 else acc)
        0 detail.Dtr_core.Eval.pair_delays
    in
    Alcotest.(check int) "violation count agrees" violations
      detail.Dtr_core.Eval.violations
  done

let suite =
  [
    Alcotest.test_case "expected ECMP delay vs path enumeration" `Quick
      test_expected_delay_oracle;
    Alcotest.test_case "max ECMP delay vs path enumeration" `Quick test_max_delay_oracle;
    Alcotest.test_case "ECMP loads vs path enumeration" `Quick test_load_oracle;
    Alcotest.test_case "Lambda vs pair-penalty recomputation" `Quick test_lambda_oracle;
  ]
