(* Tests for Dtr_core.Annealing. *)

module Rng = Dtr_util.Rng
module Weights = Dtr_core.Weights
module Annealing = Dtr_core.Annealing
module Lexico = Dtr_cost.Lexico

(* Synthetic objective: L1 distance of wd to a hidden target vector. *)
let target_objective target (w : Weights.t) =
  let dist = ref 0. in
  Array.iteri
    (fun i x -> dist := !dist +. Float.abs (float_of_int (x - target.(i))))
    w.Weights.wd;
  Some (Lexico.make ~lambda:0. ~phi:!dist)

let test_reaches_target () =
  let rng = Rng.create 1 in
  let num_arcs = 10 and wmax = 8 in
  let target = Array.init num_arcs (fun i -> 1 + (i mod wmax)) in
  let config =
    { (Annealing.default_config ~wmax) with Annealing.moves_per_stage = 400 }
  in
  let result =
    Annealing.minimize ~rng ~eval:(target_objective target)
      ~init:(Weights.create ~num_arcs ~init:1)
      config
  in
  Alcotest.(check (float 1e-9)) "finds the target" 0.
    result.Annealing.best_cost.Lexico.phi;
  Weights.validate result.Annealing.best ~wmax;
  Alcotest.(check bool) "bookkeeping sane" true
    (result.Annealing.accepted <= result.Annealing.proposals
    && result.Annealing.uphill <= result.Annealing.accepted)

let test_uphill_moves_happen () =
  let rng = Rng.create 2 in
  let num_arcs = 6 and wmax = 8 in
  let target = Array.make num_arcs 4 in
  let result =
    Annealing.minimize ~rng ~eval:(target_objective target)
      ~init:(Weights.create ~num_arcs ~init:1)
      (Annealing.default_config ~wmax)
  in
  (* at temperature 1000 with unit-scale deltas, worsening moves are accepted *)
  Alcotest.(check bool) "annealing accepts uphill moves" true
    (result.Annealing.uphill > 0)

let test_respects_feasibility () =
  let rng = Rng.create 3 in
  let num_arcs = 6 and wmax = 8 in
  (* arc 0 must keep weight 1; objective prefers large totals *)
  let eval (w : Weights.t) =
    if w.Weights.wd.(0) <> 1 then None
    else begin
      let total = Array.fold_left ( + ) 0 w.Weights.wd in
      Some (Lexico.make ~lambda:0. ~phi:(-.float_of_int total))
    end
  in
  let result =
    Annealing.minimize ~rng ~eval
      ~init:(Weights.create ~num_arcs ~init:1)
      (Annealing.default_config ~wmax)
  in
  Alcotest.(check int) "constraint held at the optimum" 1
    result.Annealing.best.Weights.wd.(0)

let test_lexicographic_priority () =
  let rng = Rng.create 4 in
  let num_arcs = 4 and wmax = 6 in
  (* lambda counts weights above 3, phi prefers high weights: the annealer
     must zero lambda first even though phi pulls the other way *)
  let eval (w : Weights.t) =
    let lambda =
      Array.fold_left (fun acc x -> if x > 3 then acc +. 100. else acc) 0. w.Weights.wd
    in
    let phi = -.float_of_int (Array.fold_left ( + ) 0 w.Weights.wd) in
    Some (Lexico.make ~lambda ~phi)
  in
  let result =
    Annealing.minimize ~rng ~eval
      ~init:(Weights.create ~num_arcs ~init:5)
      (Annealing.default_config ~wmax)
  in
  Alcotest.(check (float 0.)) "lambda zeroed" 0. result.Annealing.best_cost.Lexico.lambda;
  Array.iter
    (fun x -> Alcotest.(check bool) "weights at the lambda boundary" true (x <= 3))
    result.Annealing.best.Weights.wd

let test_validation () =
  let rng = Rng.create 5 in
  let init = Weights.create ~num_arcs:2 ~init:1 in
  let eval w = target_objective [| 1; 1 |] w in
  Alcotest.check_raises "bad cooling" (Invalid_argument "Annealing: cooling outside (0, 1)")
    (fun () ->
      ignore
        (Annealing.minimize ~rng ~eval ~init
           { (Annealing.default_config ~wmax:5) with Annealing.cooling = 1.5 }));
  Alcotest.check_raises "infeasible start"
    (Invalid_argument "Annealing: infeasible starting point") (fun () ->
      ignore
        (Annealing.minimize ~rng ~eval:(fun _ -> None) ~init
           (Annealing.default_config ~wmax:5)))

let test_real_instance_improves () =
  (* on a real scenario, annealing from a random setting should not end
     worse than it started *)
  let scenario = Fixtures.small ~seed:81 ~nodes:8 () in
  let rng = Rng.create 82 in
  let init =
    Weights.random rng ~num_arcs:(Dtr_core.Scenario.num_arcs scenario) ~wmax:20
  in
  let eval w = Some (Dtr_core.Eval.cost scenario w) in
  let start_cost = Dtr_core.Eval.cost scenario init in
  let config =
    { (Annealing.default_config ~wmax:20) with
      Annealing.moves_per_stage = 60;
      cooling = 0.7;
    }
  in
  let result = Annealing.minimize ~rng ~eval ~init config in
  Alcotest.(check bool) "no worse than the start" true
    (Lexico.compare result.Annealing.best_cost start_cost <= 0)

(* The delta cache memoizes re-visited weight vectors inside
   [minimize_incremental]; cache decisions consume no randomness and cached
   costs are exact, so a fixed seed must land on bit-identical results with
   the cache on and off ([Prune] gates it, like every pruning layer). *)
let test_delta_cache_identity () =
  let scenario = Fixtures.small ~seed:91 ~nodes:8 () in
  let num_arcs = Dtr_core.Scenario.num_arcs scenario in
  let config =
    { (Annealing.default_config ~wmax:16) with
      Annealing.moves_per_stage = 120;
      cooling = 0.7;
    }
  in
  let solve () =
    Annealing.minimize_incremental ~rng:(Rng.create 92) scenario
      ~init:(Weights.create ~num_arcs ~init:1)
      config
  in
  let was = Dtr_core.Prune.enabled () in
  let cached, uncached =
    Fun.protect
      ~finally:(fun () -> Dtr_core.Prune.set_enabled was)
      (fun () ->
        Dtr_core.Prune.set_enabled true;
        let cached = solve () in
        Dtr_core.Prune.set_enabled false;
        (cached, solve ()))
  in
  Alcotest.(check bool) "best weights identical" true
    (cached.Annealing.best.Weights.wd = uncached.Annealing.best.Weights.wd
    && cached.Annealing.best.Weights.wt = uncached.Annealing.best.Weights.wt);
  Alcotest.(check bool) "best cost identical" true
    (cached.Annealing.best_cost = uncached.Annealing.best_cost);
  Alcotest.(check int) "same proposals" cached.Annealing.proposals
    uncached.Annealing.proposals;
  Alcotest.(check int) "same accepted" cached.Annealing.accepted
    uncached.Annealing.accepted;
  Alcotest.(check int) "same uphill" cached.Annealing.uphill
    uncached.Annealing.uphill

let suite =
  [
    Alcotest.test_case "reaches a synthetic target" `Quick test_reaches_target;
    Alcotest.test_case "uphill moves accepted" `Quick test_uphill_moves_happen;
    Alcotest.test_case "feasibility respected" `Quick test_respects_feasibility;
    Alcotest.test_case "lexicographic priority" `Quick test_lexicographic_priority;
    Alcotest.test_case "configuration validation" `Quick test_validation;
    Alcotest.test_case "improves a real instance" `Slow test_real_instance_improves;
    Alcotest.test_case "delta cache keeps fixed-seed identity" `Slow
      test_delta_cache_identity;
  ]
