(* Tests for Dtr_cost: delay model (Eq. 1), SLA penalty (Eq. 2),
   Fortz-Thorup congestion cost, and the lexicographic order. *)

module Delay_model = Dtr_cost.Delay_model
module Sla = Dtr_cost.Sla
module Congestion = Dtr_cost.Congestion
module Lexico = Dtr_cost.Lexico

(* Delay model *)

let p = Delay_model.default

let test_delay_below_threshold () =
  (* utilization <= mu: propagation delay only (Eq. 1a) *)
  let d = Delay_model.arc_delay p ~capacity:500. ~prop:0.010 ~load:(0.5 *. 500.) in
  Alcotest.(check (float 1e-12)) "pure propagation" 0.010 d;
  let d = Delay_model.arc_delay p ~capacity:500. ~prop:0.010 ~load:(0.95 *. 500.) in
  Alcotest.(check (float 1e-12)) "at mu still pure propagation" 0.010 d

let test_delay_mm1 () =
  (* just above mu the M/M/1 term kicks in: kappa/C * (x/(C-x) + 1) *)
  let load = 0.96 *. 500. in
  let expected = (p.Delay_model.kappa /. 500.) *. ((load /. (500. -. load)) +. 1.) in
  let d = Delay_model.arc_delay p ~capacity:500. ~prop:0.010 ~load in
  Alcotest.(check (float 1e-12)) "M/M/1 queueing added" (0.010 +. expected) d

let test_delay_95_percent_magnitude () =
  (* the paper: at 95% load, queueing < 0.5 ms on a 500 Mb/s link *)
  let q = Delay_model.queueing_delay p ~capacity:500. ~load:(0.951 *. 500.) in
  Alcotest.(check bool) "under half a millisecond" true (q < 0.0005 && q > 0.)

let test_delay_linearization_continuous () =
  (* value continuity at the linearisation point *)
  let just_below = Delay_model.queueing_delay p ~capacity:500. ~load:(0.99 *. 500. -. 1e-6) in
  let just_above = Delay_model.queueing_delay p ~capacity:500. ~load:(0.99 *. 500. +. 1e-6) in
  Alcotest.(check bool) "continuous at 0.99C" true
    (Float.abs (just_above -. just_below) < 1e-6);
  (* and no singularity at or beyond capacity *)
  let at_cap = Delay_model.queueing_delay p ~capacity:500. ~load:500. in
  let beyond = Delay_model.queueing_delay p ~capacity:500. ~load:600. in
  Alcotest.(check bool) "finite at capacity" true (Float.is_finite at_cap);
  Alcotest.(check bool) "increasing beyond capacity" true (beyond > at_cap)

let prop_delay_monotone =
  QCheck.Test.make ~name:"queueing delay is monotone in load" ~count:200
    QCheck.(pair (float_range 0. 800.) (float_range 0. 800.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Delay_model.queueing_delay p ~capacity:500. ~load:lo
      <= Delay_model.queueing_delay p ~capacity:500. ~load:hi +. 1e-15)

let test_delay_validation () =
  Alcotest.check_raises "bad capacity" (Invalid_argument "Delay_model: non-positive capacity")
    (fun () -> ignore (Delay_model.queueing_delay p ~capacity:0. ~load:1.));
  Alcotest.check_raises "bad load" (Invalid_argument "Delay_model: negative load")
    (fun () -> ignore (Delay_model.queueing_delay p ~capacity:1. ~load:(-1.)))

(* SLA penalty *)

let s = Sla.default

let test_sla_no_violation () =
  Alcotest.(check (float 0.)) "below bound" 0. (Sla.pair_penalty s 0.020);
  Alcotest.(check (float 0.)) "exactly at bound" 0. (Sla.pair_penalty s 0.025);
  Alcotest.(check bool) "not a violation at bound" false (Sla.is_violation s 0.025)

let test_sla_violation () =
  (* 5 ms over: B1 + B2 * 5 = 105 *)
  Alcotest.(check (float 1e-9)) "B1 plus proportional" 105. (Sla.pair_penalty s 0.030);
  Alcotest.(check bool) "is a violation" true (Sla.is_violation s 0.030)

let test_sla_unreachable () =
  Alcotest.(check (float 1e-9)) "disconnected pair charge"
    (Sla.unreachable_penalty s)
    (Sla.pair_penalty s Float.infinity);
  Alcotest.(check (float 1e-9)) "B1 + B2*theta_ms" 125. (Sla.unreachable_penalty s)

let test_sla_with_theta () =
  let s45 = Sla.with_theta 0.045 in
  Alcotest.(check (float 0.)) "looser bound passes" 0. (Sla.pair_penalty s45 0.030);
  Alcotest.check_raises "invalid bound"
    (Invalid_argument "Sla.with_theta: bound must be positive") (fun () ->
      ignore (Sla.with_theta 0.))

let prop_sla_monotone =
  QCheck.Test.make ~name:"SLA penalty is monotone in delay" ~count:200
    QCheck.(pair (float_range 0. 0.2) (float_range 0. 0.2))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Sla.pair_penalty s lo <= Sla.pair_penalty s hi +. 1e-12)

(* Congestion cost *)

let test_congestion_segments () =
  (* slope 1 in the first third: phi(x) = x *)
  Alcotest.(check (float 1e-9)) "light load" 50. (Congestion.arc_cost ~capacity:300. ~load:50.);
  (* at exactly c/3: 100 *)
  Alcotest.(check (float 1e-9)) "first breakpoint" 100.
    (Congestion.arc_cost ~capacity:300. ~load:100.);
  (* mid second segment: 100 + 3 * 50 *)
  Alcotest.(check (float 1e-9)) "second segment" 250.
    (Congestion.arc_cost ~capacity:300. ~load:150.)

let test_congestion_derivative () =
  Alcotest.(check (float 0.)) "slope 1" 1. (Congestion.derivative ~capacity:300. ~load:10.);
  Alcotest.(check (float 0.)) "slope 3" 3. (Congestion.derivative ~capacity:300. ~load:150.);
  Alcotest.(check (float 0.)) "slope 10" 10. (Congestion.derivative ~capacity:300. ~load:250.);
  Alcotest.(check (float 0.)) "slope 70" 70. (Congestion.derivative ~capacity:300. ~load:290.);
  Alcotest.(check (float 0.)) "slope 500" 500. (Congestion.derivative ~capacity:300. ~load:310.);
  Alcotest.(check (float 0.)) "slope 5000" 5000. (Congestion.derivative ~capacity:300. ~load:400.)

let prop_congestion_convex =
  QCheck.Test.make ~name:"congestion cost is convex and increasing" ~count:200
    QCheck.(triple (float_range 0. 600.) (float_range 0. 600.) (float_range 0.01 0.99))
    (fun (a, b, t) ->
      let c = 300. in
      let f x = Congestion.arc_cost ~capacity:c ~load:x in
      let mid = (t *. a) +. ((1. -. t) *. b) in
      (* convexity *)
      f mid <= (t *. f a) +. ((1. -. t) *. f b) +. 1e-6
      (* monotonicity *)
      && f (Float.min a b) <= f (Float.max a b) +. 1e-9)

let test_congestion_total_filters () =
  let g =
    Dtr_topology.Graph.of_edges ~n:2
      [ Dtr_topology.Graph.{ u = 0; v = 1; cap = 300.; prop = 0.001 } ]
  in
  let loads = [| 50.; 50. |] in
  let all = Congestion.total g ~loads ~carries_throughput:(fun _ -> true) in
  let none = Congestion.total g ~loads ~carries_throughput:(fun _ -> false) in
  let fwd = Congestion.total g ~loads ~carries_throughput:(fun id -> id = 0) in
  Alcotest.(check (float 1e-9)) "both arcs" 100. all;
  Alcotest.(check (float 1e-9)) "no arcs" 0. none;
  Alcotest.(check (float 1e-9)) "one arc" 50. fwd

let test_uncapacitated_bound () =
  (* line 0-1-2: demand 0->2 must cross two arcs *)
  let g =
    Dtr_topology.Graph.of_edges ~n:3
      [
        Dtr_topology.Graph.{ u = 0; v = 1; cap = 1.; prop = 0.001 };
        Dtr_topology.Graph.{ u = 1; v = 2; cap = 1.; prop = 0.001 };
      ]
  in
  let demands = [| [| 0.; 0.; 5. |]; [| 0.; 0.; 0. |]; [| 0.; 0.; 0. |] |] in
  Alcotest.(check (float 1e-9)) "2 hops * 5 units" 10.
    (Congestion.uncapacitated_bound g ~demands)

(* Lexicographic order *)

let k l ph = Lexico.make ~lambda:l ~phi:ph

let test_lexico_order () =
  Alcotest.(check bool) "lambda dominates" true
    (Lexico.is_better (k 1. 100.) ~than:(k 2. 1.));
  Alcotest.(check bool) "phi breaks ties" true
    (Lexico.is_better (k 1. 1.) ~than:(k 1. 2.));
  Alcotest.(check bool) "not better than itself" false
    (Lexico.is_better (k 1. 1.) ~than:(k 1. 1.));
  Alcotest.(check bool) "tolerance on lambda" true
    (Lexico.is_better (k (1. +. 1e-9) 1.) ~than:(k 1. 2.))

let test_lexico_compare_consistent () =
  let a = k 1. 5. and b = k 1. 7. in
  Alcotest.(check bool) "compare negative" true (Lexico.compare a b < 0);
  Alcotest.(check bool) "compare positive" true (Lexico.compare b a > 0);
  Alcotest.(check int) "compare zero" 0 (Lexico.compare a a);
  Alcotest.(check bool) "equal" true (Lexico.equal a (k 1. 5.))

let test_lexico_add () =
  let s = Lexico.add (k 1. 2.) (k 3. 4.) in
  Alcotest.(check (float 0.)) "lambda sum" 4. s.Lexico.lambda;
  Alcotest.(check (float 0.)) "phi sum" 6. s.Lexico.phi;
  Alcotest.(check bool) "zero is neutral" true (Lexico.equal (Lexico.add Lexico.zero (k 1. 2.)) (k 1. 2.))

let test_lexico_improvement () =
  Alcotest.(check (float 1e-9)) "lambda improvement" 0.5
    (Lexico.improvement ~from:(k 10. 5.) ~to_:(k 5. 5.));
  Alcotest.(check (float 1e-9)) "phi improvement when lambda tied" 0.2
    (Lexico.improvement ~from:(k 1. 10.) ~to_:(k 1. 8.));
  Alcotest.(check (float 0.)) "no improvement" 0.
    (Lexico.improvement ~from:(k 1. 1.) ~to_:(k 2. 0.))

let prop_lexico_total_order =
  QCheck.Test.make ~name:"lexicographic compare is antisymmetric and transitive" ~count:300
    QCheck.(
      triple
        (pair (float_range 0. 10.) (float_range 0. 10.))
        (pair (float_range 0. 10.) (float_range 0. 10.))
        (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun ((l1, p1), (l2, p2), (l3, p3)) ->
      let a = k l1 p1 and b = k l2 p2 and c = k l3 p3 in
      let sign x = compare x 0 in
      sign (Lexico.compare a b) = -sign (Lexico.compare b a)
      && (not (Lexico.compare a b <= 0 && Lexico.compare b c <= 0)
         || Lexico.compare a c <= 0))

let suite =
  [
    Alcotest.test_case "delay below threshold" `Quick test_delay_below_threshold;
    Alcotest.test_case "M/M/1 queueing" `Quick test_delay_mm1;
    Alcotest.test_case "queueing magnitude at 95%" `Quick test_delay_95_percent_magnitude;
    Alcotest.test_case "linearisation continuity" `Quick test_delay_linearization_continuous;
    QCheck_alcotest.to_alcotest prop_delay_monotone;
    Alcotest.test_case "delay validation" `Quick test_delay_validation;
    Alcotest.test_case "SLA no violation" `Quick test_sla_no_violation;
    Alcotest.test_case "SLA violation penalty" `Quick test_sla_violation;
    Alcotest.test_case "SLA unreachable" `Quick test_sla_unreachable;
    Alcotest.test_case "SLA custom theta" `Quick test_sla_with_theta;
    QCheck_alcotest.to_alcotest prop_sla_monotone;
    Alcotest.test_case "congestion segments" `Quick test_congestion_segments;
    Alcotest.test_case "congestion derivative" `Quick test_congestion_derivative;
    QCheck_alcotest.to_alcotest prop_congestion_convex;
    Alcotest.test_case "congestion filter" `Quick test_congestion_total_filters;
    Alcotest.test_case "uncapacitated bound" `Quick test_uncapacitated_bound;
    Alcotest.test_case "lexicographic order" `Quick test_lexico_order;
    Alcotest.test_case "compare consistency" `Quick test_lexico_compare_consistent;
    Alcotest.test_case "lexicographic add" `Quick test_lexico_add;
    Alcotest.test_case "improvement measure" `Quick test_lexico_improvement;
    QCheck_alcotest.to_alcotest prop_lexico_total_order;
  ]
