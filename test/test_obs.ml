(* Tests for the dtr_obs observability layer: exactness of the per-domain
   sharded metrics under concurrent writers (the old Sweep_stats global lost
   updates there), the overlapping-sweep regression on Eval's compatibility
   view, span-tree structure and gating, report serialization, and that
   turning instrumentation on never perturbs fixed-seed optimizer results. *)

module Rng = Dtr_util.Rng
module Failure = Dtr_topology.Failure
module Scenario = Dtr_core.Scenario
module Weights = Dtr_core.Weights
module Eval = Dtr_core.Eval
module Optimizer = Dtr_core.Optimizer
module Exec = Dtr_exec.Exec
module Metric = Dtr_obs.Metric
module Span = Dtr_obs.Span
module Report = Dtr_obs.Report

let with_obs enabled f =
  let was = Metric.enabled () in
  Metric.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Metric.set_enabled was) f

(* Four domains hammering one counter and one accumulator: the sharded
   design must account for every single update.  The old read-modify-write
   on a shared cell lost updates under exactly this workload. *)
let test_sharded_exactness () =
  let c = Metric.Counter.create "test.obs.counter" in
  let a = Metric.Accum.create "test.obs.accum" in
  Metric.Counter.reset c;
  Metric.Accum.reset a;
  let n = 20_000 and extra_domains = 3 in
  let worker () =
    for _ = 1 to n do
      Metric.Counter.incr c;
      Metric.Accum.add a 1.0
    done
  in
  let ds = Array.init extra_domains (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join ds;
  let total = (extra_domains + 1) * n in
  Alcotest.(check int) "counter exact" total (Metric.Counter.value c);
  (* Each shard sums integers-as-floats well below 2^53, so the merged
     accumulator is exact, not merely close. *)
  Alcotest.(check (float 0.)) "accumulator exact" (float_of_int total)
    (Metric.Accum.value a);
  let per_dom = Metric.Counter.per_domain c in
  Alcotest.(check int)
    "per-domain values sum to the total" total
    (List.fold_left (fun acc (_, v) -> acc + v) 0 per_dom);
  Alcotest.(check bool) "more than one shard contributed" true
    (List.length per_dom > 1)

(* Regression for the torn Sweep_stats.seconds update: two domains running
   overlapping serial sweeps must account for every sweep, every failure
   evaluation, and a strictly positive wall-time total.  The old
   [Atomic.set (Atomic.get + dt)] pair dropped updates on this workload. *)
let test_overlapping_sweep_totals () =
  let scenario = Fixtures.small ~seed:9 ~nodes:8 () in
  let w =
    Weights.random (Rng.create 3) ~num_arcs:(Scenario.num_arcs scenario) ~wmax:16
  in
  let failures = Failure.all_single_arcs scenario.Scenario.graph in
  Eval.Sweep_stats.reset ();
  let reps = 6 in
  let run () =
    for _ = 1 to reps do
      ignore
        (Eval.sweep_details scenario ~exec:Exec.serial w failures
          : Eval.detail list)
    done
  in
  let d = Domain.spawn run in
  run ();
  Domain.join d;
  let s = Eval.Sweep_stats.snapshot () in
  Alcotest.(check int) "sweep count exact under concurrency" (2 * reps)
    s.Eval.Sweep_stats.sweeps;
  Alcotest.(check int)
    "every failure evaluation accounted for"
    (2 * reps * List.length failures)
    (s.Eval.Sweep_stats.cached_evals + s.Eval.Sweep_stats.full_evals);
  Alcotest.(check bool) "wall time recorded" true (s.Eval.Sweep_stats.seconds > 0.);
  Eval.Sweep_stats.reset ();
  let s = Eval.Sweep_stats.snapshot () in
  Alcotest.(check int) "reset clears sweeps" 0 s.Eval.Sweep_stats.sweeps;
  Alcotest.(check (float 0.)) "reset clears seconds" 0. s.Eval.Sweep_stats.seconds

let test_span_nesting () =
  with_obs true @@ fun () ->
  Span.reset ();
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner" (fun () -> ignore (Sys.opaque_identity 1));
      Span.with_ ~name:"inner" (fun () -> ()));
  Span.with_ ~name:"outer" (fun () -> ());
  match Span.merged () with
  | [ v ] ->
      Alcotest.(check string) "root span name" "outer" v.Span.vname;
      Alcotest.(check int) "outer entered twice" 2 v.Span.count;
      (match v.Span.children with
      | [ c ] ->
          Alcotest.(check string) "child name" "inner" c.Span.vname;
          Alcotest.(check int) "inner entered twice" 2 c.Span.count;
          Alcotest.(check bool) "child time within parent" true
            (c.Span.seconds <= v.Span.seconds +. 1e-6)
      | cs -> Alcotest.failf "expected one merged child, got %d" (List.length cs));
      Alcotest.(check bool) "exclusive <= inclusive" true
        (v.Span.exclusive <= v.Span.seconds +. 1e-9);
      Span.reset ();
      Alcotest.(check int) "reset drops spans" 0 (List.length (Span.merged ()))
  | vs -> Alcotest.failf "expected one merged root span, got %d" (List.length vs)

(* Exclusive-time accounting under recursion: a span nested inside itself
   builds a chain of same-name nodes, one per depth.  No double counting
   means the exclusives telescope — summed over the whole chain they equal
   the outermost inclusive time — and every level stays non-negative. *)
let test_span_recursion_exclusive () =
  with_obs true @@ fun () ->
  Span.reset ();
  let sink = ref 0 in
  let burn () =
    for i = 1 to 100_000 do
      sink := !sink + Sys.opaque_identity i
    done
  in
  (* Binary recursion: depth d calls depth (d-1) twice, so level counts must
     come out 1, 2, 4 while every call burns comparable time. *)
  let rec recurse d =
    Span.with_ ~name:"rec" (fun () ->
        burn ();
        if d > 0 then begin
          recurse (d - 1);
          recurse (d - 1)
        end)
  in
  recurse 2;
  let rec chain acc = function
    | { Span.vname = "rec"; _ } as v -> (
        let acc = v :: acc in
        match v.Span.children with
        | [] -> List.rev acc
        | [ c ] -> chain acc c
        | cs ->
            Alcotest.failf "recursion must merge per depth, got %d siblings"
              (List.length cs))
    | v -> Alcotest.failf "unexpected span %s" v.Span.vname
  in
  match Span.merged () with
  | [ top ] ->
      let levels = chain [] top in
      Alcotest.(check (list int))
        "one merged node per depth, counts 1/2/4" [ 1; 2; 4 ]
        (List.map (fun v -> v.Span.count) levels);
      List.iter
        (fun v ->
          Alcotest.(check bool) "exclusive non-negative" true
            (v.Span.exclusive >= 0.);
          Alcotest.(check bool) "exclusive <= inclusive" true
            (v.Span.exclusive <= v.Span.seconds +. 1e-9))
        levels;
      let sum_exclusive =
        List.fold_left (fun a v -> a +. v.Span.exclusive) 0. levels
      in
      (* The telescoping identity: any double-counted nested time would push
         the exclusive sum above the outer inclusive. *)
      Alcotest.(check bool)
        "exclusives sum to the outer inclusive" true
        (Float.abs (sum_exclusive -. top.Span.seconds) < 1e-6);
      Span.reset ()
  | vs -> Alcotest.failf "expected one root span, got %d" (List.length vs)

(* A span raised through must still be recorded and the stack unwound. *)
let test_span_exception_safety () =
  with_obs true @@ fun () ->
  Span.reset ();
  (try Span.with_ ~name:"raises" (fun () -> failwith "boom") with Failure _ -> ());
  Span.with_ ~name:"after" (fun () -> ());
  let names = List.map (fun v -> v.Span.vname) (Span.merged ()) in
  Alcotest.(check (list string))
    "both spans at top level, in order" [ "raises"; "after" ] names;
  Span.reset ()

let test_span_disabled_is_noop () =
  with_obs false @@ fun () ->
  Span.reset ();
  Span.with_ ~name:"ghost" (fun () -> ());
  Alcotest.(check int) "nothing recorded when disabled" 0
    (List.length (Span.merged ()))

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= hn && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_report_json () =
  with_obs true @@ fun () ->
  Report.reset ();
  Span.with_ ~name:"phase_x" (fun () -> Span.with_ ~name:"sub" (fun () -> ()));
  let c = Metric.Counter.create "test.obs.report_counter" in
  Metric.Counter.add c 7;
  Report.set_instance
    [ ("topology", Report.S "rand \"quoted\""); ("nodes", Report.I 8) ];
  Report.set_results [ ("lambda", Report.F 1.5); ("converged", Report.B true) ];
  let s = Report.to_string () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report contains %s" needle) true
        (contains s needle))
    [
      "\"schema\": \"dtr-obs-report/3\"";
      "\"name\": \"phase_x\"";
      "\"name\": \"sub\"";
      "\"topology\": \"rand \\\"quoted\\\"\"";
      "\"nodes\": 8";
      "\"lambda\": 1.5";
      "\"converged\": true";
      "\"test.obs.report_counter\": 7";
      "\"domains\"";
      (* /2 additions: flight-recorder accounting and convergence series are
         always present, even when empty. *)
      "\"trace\"";
      "\"dropped\"";
      "\"capacity\"";
      "\"convergence\"";
      (* /3 additions: latency histograms and rolling-window gauges are
         always present, even when empty. *)
      "\"histograms\"";
      "\"rolling\"";
    ];
  Report.reset ();
  let s = Report.to_string () in
  Alcotest.(check bool) "reset clears results" false (contains s "\"lambda\": 1.5")

(* Telemetry must never perturb the optimization: the fixed-seed run with
   full instrumentation on is bit-identical to the run with it off. *)
let test_obs_never_perturbs () =
  let scenario = Fixtures.small ~seed:2008 ~nodes:8 ~avg_util:0.45 () in
  let solve () = Optimizer.optimize ~rng:(Rng.create 7) ~exec:Exec.serial scenario in
  let off = with_obs false solve in
  let on = with_obs true solve in
  Alcotest.(check bool) "robust weights identical" true
    (on.Optimizer.robust.Weights.wd = off.Optimizer.robust.Weights.wd
    && on.Optimizer.robust.Weights.wt = off.Optimizer.robust.Weights.wt);
  Alcotest.(check bool) "costs identical" true
    (on.Optimizer.regular_cost = off.Optimizer.regular_cost
    && on.Optimizer.robust_normal_cost = off.Optimizer.robust_normal_cost
    && on.Optimizer.robust_fail_cost = off.Optimizer.robust_fail_cost);
  Alcotest.(check (list int))
    "critical set identical" on.Optimizer.critical off.Optimizer.critical;
  (* And the instrumented run actually recorded the phase structure. *)
  let merged = with_obs true (fun () -> Span.merged ()) in
  let rec names acc = function
    | [] -> acc
    | v :: rest -> names (v.Span.vname :: names acc v.Span.children) rest
  in
  let all = names [] merged in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span recorded") true (List.mem n all))
    [ "optimize"; "phase1"; "phase1a"; "phase1b"; "phase1c"; "phase2" ];
  Span.reset ()

let suite =
  [
    Alcotest.test_case "sharded metrics are exact under concurrency" `Quick
      test_sharded_exactness;
    Alcotest.test_case "overlapping sweeps keep exact totals" `Quick
      test_overlapping_sweep_totals;
    Alcotest.test_case "span nesting and merge" `Quick test_span_nesting;
    Alcotest.test_case "recursive spans keep exclusive time exact" `Quick
      test_span_recursion_exclusive;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "spans are no-ops when disabled" `Quick
      test_span_disabled_is_noop;
    Alcotest.test_case "report JSON shape" `Quick test_report_json;
    Alcotest.test_case "instrumentation never perturbs results" `Slow
      test_obs_never_perturbs;
  ]
