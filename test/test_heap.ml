(* Unit and property tests for Dtr_util.Heap (binary min-heap). *)

module Heap = Dtr_util.Heap

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "size 0" 0 (Heap.size h);
  Alcotest.(check bool) "pop None" true (Heap.pop h = None);
  Alcotest.(check bool) "peek None" true (Heap.peek h = None)

let test_push_pop_order () =
  let h = Heap.create () in
  List.iter (fun (k, v) -> Heap.push h k v) [ (3., "c"); (1., "a"); (2., "b") ];
  Alcotest.(check bool) "peek smallest" true (Heap.peek h = Some (1., "a"));
  Alcotest.(check bool) "pop a" true (Heap.pop h = Some (1., "a"));
  Alcotest.(check bool) "pop b" true (Heap.pop h = Some (2., "b"));
  Alcotest.(check bool) "pop c" true (Heap.pop h = Some (3., "c"));
  Alcotest.(check bool) "exhausted" true (Heap.pop h = None)

let test_duplicates () =
  let h = Heap.create () in
  Heap.push h 1. 10;
  Heap.push h 1. 20;
  Heap.push h 1. 30;
  let xs = List.init 3 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "all three present" [ 10; 20; 30 ] (List.sort compare xs)

let test_clear () =
  let h = Heap.create () in
  Heap.push h 5. ();
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Heap.push h 2. ();
  Alcotest.(check bool) "usable after clear" true (Heap.pop h = Some (2., ()))

let test_growth () =
  let h = Heap.create ~capacity:2 () in
  for i = 1000 downto 1 do
    Heap.push h (float_of_int i) i
  done;
  Alcotest.(check int) "size" 1000 (Heap.size h);
  for i = 1 to 1000 do
    match Heap.pop h with
    | Some (k, v) ->
        Alcotest.(check int) "value order" i v;
        Alcotest.(check (float 0.)) "key order" (float_of_int i) k
    | None -> Alcotest.fail "heap exhausted early"
  done

let test_heapsort_property =
  QCheck.Test.make ~name:"heap pops in sorted key order" ~count:300
    QCheck.(list (float_range (-1000.) 1000.))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort Float.compare keys)

(* Model-based test: the heap must agree with a naive multiset under an
   arbitrary interleaving of pushes and pops. *)
let test_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop matches a multiset model" ~count:200
    QCheck.(list (pair bool (float_range 0. 100.)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let remove_one x xs =
        let rec go = function
          | [] -> []
          | y :: rest -> if y = x then rest else y :: go rest
        in
        go xs
      in
      List.for_all
        (fun (is_pop, k) ->
          if is_pop then begin
            match (Heap.pop h, !model) with
            | None, [] -> true
            | None, _ :: _ | Some _, [] -> false
            | Some (kk, ()), xs ->
                let expected = List.fold_left Float.min Float.infinity xs in
                model := remove_one expected xs;
                kk = expected
          end
          else begin
            Heap.push h k ();
            model := k :: !model;
            true
          end)
        ops)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "push/pop ordering" `Quick test_push_pop_order;
    Alcotest.test_case "duplicate keys" `Quick test_duplicates;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "growth to 1000 entries" `Quick test_growth;
    QCheck_alcotest.to_alcotest test_heapsort_property;
    QCheck_alcotest.to_alcotest test_interleaved;
  ]
